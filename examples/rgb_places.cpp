/**
 * @file
 * Multi-channel RGB-DONN classification (paper Section 5.6.1, Figure 12):
 * the RGB scene is split into R/G/B grayscale planes feeding three
 * parallel optical stacks whose outputs merge on one shared detector.
 * A grayscale single-stack baseline quantifies the multi-channel gain.
 *
 * Uses the Task/Session front end: RgbTask rides the same data-parallel
 * replica engine as classification (--workers=N).
 *
 * Run:  ./rgb_places [--size=40] [--depth=3] [--epochs=3] [--train=360]
 *                    [--workers=0]
 */
#include <cstdio>

#include "core/session.hpp"
#include "data/synth_scenes.hpp"
#include "utils/cli.hpp"

using namespace lightridge;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::size_t size = args.getInt("size", 40);
    const std::size_t depth = args.getInt("depth", 3);
    const int epochs = args.getInt("epochs", 3);
    const std::size_t n_train = args.getInt("train", 360);

    SceneConfig scfg;
    scfg.image_size = size;
    RgbDataset train = makeSynthScenes(n_train, 1, scfg);
    RgbDataset test = makeSynthScenes(n_train / 3, 2, scfg);

    SystemSpec spec;
    spec.size = size;
    spec.pixel = 36e-6;
    Laser laser;
    spec.distance = idealDistanceHalfCone(spec.grid(), laser.wavelength);

    // Three-channel RGB-DONN.
    Rng rng(3);
    std::vector<std::unique_ptr<DonnModel>> channels;
    for (int ch = 0; ch < 3; ++ch)
        channels.push_back(std::make_unique<DonnModel>(
            ModelBuilder(spec, laser)
                .diffractiveLayers(depth, 1.0, &rng)
                .detectorGrid(train.num_classes, size / 8)
                .build()));
    MultiChannelDonn rgb(std::move(channels));

    TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.lr = 0.03;
    cfg.verbose = true;
    cfg.workers = args.getInt("workers", 0);
    RgbTask rgb_task(rgb, train, &test);
    Session(rgb_task, cfg).fit();

    std::printf("\n=== RGB-DONN (Table 5 style) ===\n");
    for (std::size_t k : {std::size_t(1), std::size_t(3)})
        std::printf("top-%zu accuracy: %.3f\n", k,
                    evaluateRgbTopK(rgb, test, k));

    // Grayscale single-stack baseline for comparison.
    ClassDataset gray_train, gray_test;
    gray_train.num_classes = train.num_classes;
    gray_test.num_classes = test.num_classes;
    for (std::size_t i = 0; i < train.size(); ++i) {
        gray_train.images.push_back(toGrayscale(train.images[i]));
        gray_train.labels.push_back(train.labels[i]);
    }
    for (std::size_t i = 0; i < test.size(); ++i) {
        gray_test.images.push_back(toGrayscale(test.images[i]));
        gray_test.labels.push_back(test.labels[i]);
    }
    Rng grng(5);
    DonnModel gray = ModelBuilder(spec, laser)
                         .diffractiveLayers(depth, 1.0, &grng)
                         .detectorGrid(train.num_classes, size / 8)
                         .build();
    ClassificationTask gray_task(gray, gray_train);
    Session(gray_task, cfg).fit();
    std::printf("grayscale single-stack baseline top-1: %.3f\n",
                evaluateAccuracy(gray, gray_test));
    return 0;
}
