/**
 * @file
 * End-to-end agile design flow (paper Figure 3) on the digit task:
 *
 *   1. LightRidge-DSE proposes (distance, unit size) for the target
 *      wavelength via the analytic half-cone rule + quick emulations;
 *   2. raw-model training (diffractlayer_raw, minutes-scale);
 *   3. codesign training against the SLM's measured response LUT
 *      (diffractlayer, Gumbel-softmax quantization-aware);
 *   4. out-of-box deployment comparison: raw-quantized vs codesign on
 *      the simulated hardware (device response + fabrication variation +
 *      CMOS noise), reproducing the Fig. 1 gap;
 *   5. fabrication dump via lr.model.to_system.
 *
 * Run:  ./mnist_classification [--size=40] [--depth=3] [--epochs=2]
 */
#include <cstdio>

#include "core/session.hpp"
#include "data/synth_digits.hpp"
#include "dse/dse.hpp"
#include "hardware/deploy.hpp"
#include "hardware/to_system.hpp"
#include "utils/cli.hpp"

using namespace lightridge;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::size_t size = args.getInt("size", 40);
    const std::size_t depth = args.getInt("depth", 3);
    const int epochs = args.getInt("epochs", 2);

    // ---- Step 1: design space exploration -------------------------------
    Laser laser; // 532 nm
    DesignPoint design;
    design.wavelength = laser.wavelength;
    design.unit_size = 36e-6;
    design.distance =
        idealDistanceHalfCone(Grid{size, design.unit_size}, laser.wavelength);
    std::printf("[dse] half-cone ideal distance: %.4f m\n", design.distance);

    QuickEvalConfig qe;
    qe.system_size = size;
    qe.depth = 2;
    qe.train_samples = 150;
    qe.test_samples = 80;
    qe.det_size = size / 10;
    Real dse_acc = evaluateDesign(design, qe);
    std::printf("[dse] quick emulation at proposed point: acc %.3f\n",
                dse_acc);

    SystemSpec spec;
    spec.size = size;
    spec.pixel = design.unit_size;
    spec.distance = design.distance;

    ClassDataset train = makeSynthDigits(500, 1);
    ClassDataset test = makeSynthDigits(200, 2);

    // ---- Step 2: raw training -------------------------------------------
    Rng rng(11);
    DonnModel raw = ModelBuilder(spec, laser)
                        .diffractiveLayers(depth, 1.0, &rng)
                        .detectorGrid(10, size / 10)
                        .build();
    TrainConfig tc;
    tc.epochs = epochs;
    tc.lr = 0.03;
    tc.verbose = true;
    ClassificationTask raw_task(raw, train);
    Session(raw_task, tc).fit();
    Real raw_sim = evaluateAccuracy(raw, test);
    std::printf("[raw] simulation accuracy: %.3f\n", raw_sim);

    // ---- Step 3: codesign training against the device LUT ----------------
    SlmDevice slm = SlmDevice::holoeyeLc2012(16);
    Rng grng(13);
    DonnModel codesign = ModelBuilder(spec, laser)
                             .codesignLayers(depth, slm.lut(), 1.0, 1.0,
                                             &grng)
                             .detectorGrid(10, size / 10)
                             .build();
    // Warm start from the raw phases (Fig. 3 step 2: co-design update).
    for (std::size_t i = 0; i < depth; ++i)
        static_cast<CodesignLayer *>(codesign.layer(i))
            ->initFromPhase(
                static_cast<DiffractiveLayer *>(raw.layer(i))->phase());
    ClassificationTask cd_task(codesign, train);
    Session(cd_task, tc).fit();
    // Codesign inference uses exact argmax device states.
    Real codesign_sim = evaluateAccuracy(codesign, test);
    std::printf("[codesign] simulation accuracy: %.3f\n", codesign_sim);

    // ---- Step 4: out-of-box hardware deployment --------------------------
    FabricationVariation fab = FabricationVariation::typical();
    CmosDetector cmos = CmosDetector::cs165mu1();
    Rng hw_rng(17);
    DonnModel raw_oob =
        deployRaw(raw, slm, fab, &hw_rng, CalibrationMode::OutOfBox);
    Real raw_oob_acc = evaluateDeployed(raw_oob, test, cmos, &hw_rng);
    DonnModel raw_cal =
        deployRaw(raw, slm, fab, &hw_rng, CalibrationMode::Calibrated);
    Real raw_cal_acc = evaluateDeployed(raw_cal, test, cmos, &hw_rng);
    DonnModel cd_hw = deployCodesign(codesign, fab, &hw_rng);
    Real cd_hw_acc = evaluateDeployed(cd_hw, test, cmos, &hw_rng);

    std::printf("\n=== out-of-box deployment (Fig. 1 reproduction) ===\n");
    std::printf("raw out-of-box:       sim %.3f -> hw %.3f (drop %.1f%%)\n",
                raw_sim, raw_oob_acc, 100 * (raw_sim - raw_oob_acc));
    std::printf("raw + manual calib.:  sim %.3f -> hw %.3f (drop %.1f%%)\n",
                raw_sim, raw_cal_acc, 100 * (raw_sim - raw_cal_acc));
    std::printf("codesign out-of-box:  sim %.3f -> hw %.3f (drop %.1f%%)\n",
                codesign_sim, cd_hw_acc, 100 * (codesign_sim - cd_hw_acc));

    // ---- Step 5: fabrication dump ----------------------------------------
    if (toSystem(codesign, slm, "fab_out"))
        std::printf("wrote fabrication bundle to fab_out/\n");
    return 0;
}
