/**
 * @file
 * Monolithic on-chip DONN integration case study (paper Section 5.5,
 * Figure 11): target a CMOS detector chip (CS165MU1-style, 3.45 um
 * pixels) and let LightRidge-DSE search the valid 3-D fabrication
 * dimensions (diffraction distance, resolution) for it; then train,
 * report emulated accuracy, and emit the nano-printing fabrication bundle
 * (mask thickness per layer + chip dimension summary).
 *
 * Run:  ./onchip_integration [--size=48] [--depth=3] [--epochs=2]
 */
#include <cstdio>

#include "core/session.hpp"
#include "data/synth_digits.hpp"
#include "dse/dse.hpp"
#include "hardware/to_system.hpp"
#include "utils/cli.hpp"

using namespace lightridge;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::size_t size = args.getInt("size", 48);
    const std::size_t depth = args.getInt("depth", 3);
    const int epochs = args.getInt("epochs", 2);

    // Fixed by the chip: CMOS pixel pitch and laser wavelength.
    const Real pixel = 3.45e-6;
    Laser laser; // 532 nm

    std::printf("=== on-chip DONN integration case study ===\n");
    std::printf("CMOS pixel: %.2f um, wavelength: %.0f nm, resolution "
                "%zux%zu\n",
                pixel * 1e6, laser.wavelength * 1e9, size, size);

    // DSE over the remaining free parameter: the diffraction distance.
    // The half-cone rule gives the analytic proposal; quick emulations
    // around it confirm (the paper finds 532 um at 200x200 / 3.45 um).
    Grid grid{size, pixel};
    Real ideal = idealDistanceHalfCone(grid, laser.wavelength);
    std::printf("half-cone analytic distance: %.1f um\n", ideal * 1e6);

    QuickEvalConfig qe;
    qe.system_size = size;
    qe.depth = depth;
    qe.train_samples = 200;
    qe.test_samples = 100;
    qe.det_size = size / 10;
    Real best_acc = -1, best_dist = ideal;
    for (Real scale : {0.5, 1.0, 2.0}) {
        DesignPoint p{laser.wavelength, pixel, ideal * scale};
        Real acc = evaluateDesign(p, qe);
        std::printf("  distance %.1f um -> emulated acc %.3f\n",
                    p.distance * 1e6, acc);
        if (acc > best_acc) {
            best_acc = acc;
            best_dist = p.distance;
        }
    }

    // Train the integration model at the selected distance.
    SystemSpec spec;
    spec.size = size;
    spec.pixel = pixel;
    spec.distance = best_dist;
    Rng rng(5);
    DonnModel model = ModelBuilder(spec, laser)
                          .diffractiveLayers(depth, 1.0, &rng)
                          .detectorGrid(10, size / 10)
                          .build();
    ClassDataset train = makeSynthDigits(400, 1);
    ClassDataset test = makeSynthDigits(150, 2);
    TrainConfig tc;
    tc.epochs = epochs;
    tc.lr = 0.03;
    ClassificationTask task(model, train);
    Session(task, tc).fit();
    std::printf("trained emulation accuracy: %.3f\n",
                evaluateAccuracy(model, test));

    // Fabrication dimensions (Fig. 11): flat dim = n * pixel; height =
    // depth+1 hops of optical clear adhesive at the chosen distance.
    Real flat = size * pixel * 1e6;
    Real height = (depth + 1) * best_dist * 1e6;
    std::printf("\nfabrication dimensions: %.0f um x %.0f um x %.0f um\n",
                flat, flat, height);

    // Nano-printing bundle: per-layer printed mask thickness arrays.
    ToSystemOptions opts;
    opts.target = DeployTarget::ThzMaskThickness; // thickness encoding
    opts.refractive_index = 1.7;
    if (toSystem(model, SlmDevice::idealPhaseOnly(256), "onchip_fab", opts))
        std::printf("wrote nano-printing bundle to onchip_fab/\n");
    return 0;
}
