/**
 * @file
 * First all-optical image segmentation (paper Section 5.6.2, Figure 13):
 * a 5-layer DONN with an optical skip connection around the middle block
 * and a training-only LayerNorm before the detector plane, trained to map
 * street scenes to binary building masks. Compared against the [34]/[68]
 * baseline (no skip, no LayerNorm). Writes input/target/prediction PGMs.
 *
 * Uses the Task/Session front end: SegmentationTask rides the same
 * data-parallel replica engine as classification (--workers=N).
 *
 * Run:  ./segmentation [--size=48] [--epochs=4] [--train=200] [--workers=0]
 */
#include <cstdio>

#include "core/layer_norm.hpp"
#include "core/session.hpp"
#include "core/skip.hpp"
#include "data/synth_city.hpp"
#include "utils/cli.hpp"
#include "utils/image_io.hpp"

using namespace lightridge;

namespace {

/**
 * 5-layer segmentation DONN (Fig. 13a): the optical skip connection taps
 * the encoded input at a beam splitter and rejoins just before the
 * detector plane, bypassing the whole diffractive stack; LayerNorm is
 * training-only.
 */
DonnModel
buildSegModel(const SystemSpec &spec, const Laser &laser, bool with_skip,
              bool with_layernorm, Rng *rng)
{
    const std::size_t depth = 5;
    DonnModel model(spec, laser);
    auto hop = model.hopPropagator();
    std::vector<LayerPtr> stack;
    for (std::size_t l = 0; l < depth; ++l)
        stack.push_back(std::make_unique<DiffractiveLayer>(hop, 1.0, rng));
    if (with_skip) {
        PropagatorConfig sc;
        sc.grid = spec.grid();
        sc.wavelength = laser.wavelength;
        sc.distance = depth * spec.distance;
        model.addLayer(std::make_unique<OpticalSkipLayer>(
            std::move(stack), std::make_shared<Propagator>(sc)));
    } else {
        for (auto &layer : stack)
            model.addLayer(std::move(layer));
    }
    if (with_layernorm)
        model.addLayer(std::make_unique<LayerNormLayer>());
    // Detector regions unused for image-to-image output, but configure a
    // placeholder so serialization stays uniform.
    model.setDetector(
        DetectorPlane(DetectorPlane::gridLayout(spec.size, 2, 2)));
    return model;
}

void
dumpMap(const RealMap &map, const std::string &path)
{
    writePgm(path, toGray(map.raw(), map.rows(), map.cols()));
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::size_t size = args.getInt("size", 48);
    const int epochs = args.getInt("epochs", 4);
    const std::size_t n_train = args.getInt("train", 200);

    CityConfig ccfg;
    ccfg.image_size = size;
    SegDataset train = makeSynthCity(n_train, 1, ccfg);
    SegDataset test = makeSynthCity(n_train / 4, 2, ccfg);

    SystemSpec spec;
    spec.size = size;
    spec.pixel = 36e-6;
    Laser laser;
    spec.distance = idealDistanceHalfCone(spec.grid(), laser.wavelength);

    TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.lr = 0.08;
    cfg.batch = 8;
    cfg.verbose = true;
    cfg.workers = args.getInt("workers", 0);

    // Ours: optical skip + LayerNorm.
    Rng rng_a(3);
    DonnModel ours = buildSegModel(spec, laser, true, true, &rng_a);
    SegmentationTask ours_task(ours, train, &test);
    Session(ours_task, cfg).fit();

    // Baseline [34]/[68]: plain stack.
    Rng rng_b(3);
    DonnModel base = buildSegModel(spec, laser, false, false, &rng_b);
    TrainConfig base_cfg = cfg;
    base_cfg.calibrate = false; // baseline training recipe
    SegmentationTask base_task(base, train);
    Session(base_task, base_cfg).fit();

    std::printf("\n=== all-optical segmentation (Fig. 13 style) ===\n");
    std::printf("ours (skip+LN):  IoU %.3f  MSE %.4f\n",
                ours_task.evaluateIou(test), ours_task.evaluateMse(test));
    std::printf("baseline:        IoU %.3f  MSE %.4f\n",
                base_task.evaluateIou(test), base_task.evaluateMse(test));

    // Dump a few qualitative results.
    for (std::size_t i = 0; i < 3 && i < test.size(); ++i) {
        dumpMap(test.images[i], "seg_input" + std::to_string(i) + ".pgm");
        dumpMap(test.masks[i], "seg_target" + std::to_string(i) + ".pgm");
        dumpMap(ours_task.predictMask(test.images[i]),
                "seg_ours" + std::to_string(i) + ".pgm");
        dumpMap(base_task.predictMask(test.images[i]),
                "seg_baseline" + std::to_string(i) + ".pgm");
    }
    std::printf("wrote seg_*.pgm qualitative results\n");
    return 0;
}
