/**
 * @file
 * Quickstart: build, train, and evaluate a 5-layer DONN in ~30 lines of
 * API surface, mirroring the paper's Colab tutorial flow (Appendix A):
 *
 *   1. configure the optical system (wavelength, pixel size, distance),
 *   2. stack diffractive layers and a 10-class detector,
 *   3. train through the Task/Session engine (the complex-valued
 *      regularized recipe, data-parallel when workers allow),
 *   4. report accuracy and dump phase-mask visualizations.
 *
 * Run:  ./quickstart [--size=48] [--depth=5] [--epochs=3] [--train=600]
 *                    [--workers=0]
 */
#include <cstdio>

#include "core/session.hpp"
#include "data/synth_digits.hpp"
#include "hardware/to_system.hpp"
#include "utils/cli.hpp"

using namespace lightridge;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::size_t size = args.getInt("size", 48);
    const std::size_t depth = args.getInt("depth", 5);
    const int epochs = args.getInt("epochs", 3);
    const std::size_t n_train = args.getInt("train", 600);

    // 1. Optical system specification (the DSE parameters of Section 4).
    SystemSpec spec;
    spec.size = size;
    spec.pixel = 36e-6;            // diffraction unit size
    Laser laser;                   // 532 nm plane-wave source
    spec.distance = idealDistanceHalfCone(spec.grid(), laser.wavelength);
    std::printf("system: %zux%zu, pixel %.1f um, distance %.3f m\n", size,
                size, spec.pixel * 1e6, spec.distance);

    // 2. Model: D diffractive layers + evenly spaced 10-class detector.
    Rng rng(7);
    DonnModel model = ModelBuilder(spec, laser)
                          .diffractiveLayers(depth, 1.0, &rng)
                          .detectorGrid(10, size / 10)
                          .build();

    // 3. Data + training through the unified Task/Session front end.
    ClassDataset train = makeSynthDigits(n_train, 1);
    ClassDataset test = makeSynthDigits(n_train / 3, 2);

    TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.lr = 0.03;
    cfg.batch = 32;
    cfg.verbose = true;
    cfg.workers = args.getInt("workers", 0);
    ClassificationTask task(model, train, &test);
    Session session(task, cfg);
    std::vector<EpochStats> history = session.fit();

    // 4. Results + visualization (lr.layers.view()). fit() already
    // evaluated the bound test set after the final epoch.
    if (history.empty()) {
        EvalResult untrained = evaluateWithConfidence(model, test);
        std::printf("untrained test accuracy: %.3f\n", untrained.accuracy);
    } else {
        std::printf("final test accuracy: %.3f  (top-3 %.3f)\n",
                    history.back().test_acc, history.back().test_top3);
    }
    for (std::size_t i = 0; i < model.depth(); ++i) {
        auto *layer = dynamic_cast<DiffractiveLayer *>(model.layer(i));
        if (layer == nullptr)
            continue;
        std::string path = "quickstart_phase" + std::to_string(i) + ".pgm";
        writePhaseView(layer->phase(), path);
        std::printf("wrote %s\n", path.c_str());
    }
    model.save("quickstart_model.json");
    std::printf("wrote quickstart_model.json\n");
    return 0;
}
