/**
 * @file
 * Shared helpers for the benchmark harnesses: banner printing, results
 * directory management, and the quick/full scale switch.
 */
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

#include "utils/cli.hpp"
#include "utils/csv.hpp"

namespace lightridge {
namespace bench {

/** Directory all bench CSV artifacts land in. */
inline std::string
resultsDir()
{
    const std::string dir = "bench_results";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir;
}

/** Standard banner: name, paper anchor, scale mode. */
inline void
banner(const char *name, const char *anchor)
{
    std::printf("==============================================================\n");
    std::printf("%s  (%s)\n", name, anchor);
    std::printf("scale: %s   (set LR_BENCH_FULL=1 for paper-scale runs)\n",
                benchFullScale() ? "FULL (paper)" : "QUICK (CI)");
    std::printf("==============================================================\n");
}

/** Save a CSV and announce where it went. */
inline void
saveCsv(const CsvWriter &csv, const std::string &stem)
{
    std::string path = resultsDir() + "/" + stem + ".csv";
    if (csv.save(path))
        std::printf("[csv] %s\n", path.c_str());
}

} // namespace bench
} // namespace lightridge
