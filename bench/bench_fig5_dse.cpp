/**
 * @file
 * Figure 5 reproduction: architectural DSE heatmaps.
 *
 * (a)/(b): emulated accuracy over the (unit size, distance) grid at 432 nm
 * and 632 nm (GBRT training data). (c): analytical-model prediction of the
 * 532 nm design space. (d): grid-search validation at 532 nm. The star
 * point is the guided search's best verified design; the DSE speedup is
 * grid points / emulations actually run.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "dse/dse.hpp"
#include "utils/timer.hpp"

using namespace lightridge;

namespace {

void
printHeatmap(const char *title, const std::vector<DsePoint> &points,
             const SweepGrid &grid)
{
    std::printf("\n%s\n", title);
    std::printf("%10s", "unit\\dist");
    for (std::size_t di = 0; di < grid.dist_steps; ++di) {
        Real dist = grid.dist_min + (grid.dist_max - grid.dist_min) * di /
                                        (grid.dist_steps - 1);
        std::printf(" %6.2fm", dist);
    }
    std::printf("\n");
    for (std::size_t ui = 0; ui < grid.unit_steps; ++ui) {
        Real mult = grid.unit_min + (grid.unit_max - grid.unit_min) * ui /
                                        (grid.unit_steps - 1);
        std::printf("%8.0flam", mult);
        for (std::size_t di = 0; di < grid.dist_steps; ++di)
            std::printf(" %6.2f ",
                        points[ui * grid.dist_steps + di].accuracy);
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 5: DSE heatmaps + analytical model transfer",
                  "paper Fig. 5: predict 532 nm from 432/632 nm sweeps");

    SweepGrid grid;
    grid.unit_steps = scaled<std::size_t>(5, 11);
    grid.dist_steps = scaled<std::size_t>(5, 11);
    grid.dist_min = 0.02;
    grid.dist_max = 0.60;

    QuickEvalConfig qe;
    qe.system_size = scaled<std::size_t>(32, 64);
    qe.depth = scaled<std::size_t>(2, 5);
    qe.train_samples = scaled<std::size_t>(240, 600);
    qe.test_samples = scaled<std::size_t>(120, 300);
    qe.det_size = qe.system_size / 10;
    qe.epochs = scaled(2, 3);

    WallTimer timer;
    std::printf("sweeping training wavelengths (this is the expensive "
                "grid the analytical model replaces)...\n");
    auto sweep_432 = sweepDesignSpace(432e-9, grid, qe);
    auto sweep_632 = sweepDesignSpace(632e-9, grid, qe);
    double sweep_s = timer.seconds();
    printHeatmap("(a) emulated accuracy @ 432 nm (training data)",
                 sweep_432, grid);
    printHeatmap("(b) emulated accuracy @ 632 nm (training data)",
                 sweep_632, grid);

    DseEngine engine(GbrtConfig{scaled(200, 1000), 0.2, 3, 1});
    engine.addTrainingData(sweep_432);
    engine.addTrainingData(sweep_632);
    engine.fitModel();

    auto predicted = engine.predictGrid(532e-9, grid);
    printHeatmap("(c) PREDICTED accuracy @ 532 nm (analytical model)",
                 predicted, grid);

    timer.reset();
    auto validated = sweepDesignSpace(532e-9, grid, qe);
    double validate_s = timer.seconds();
    printHeatmap("(d) grid-search VALIDATION @ 532 nm", validated, grid);

    // Agreement between prediction and validation.
    Real mean_pred = 0, mean_true = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        mean_pred += predicted[i].accuracy;
        mean_true += validated[i].accuracy;
    }
    mean_pred /= predicted.size();
    mean_true /= validated.size();
    Real cov = 0, vp = 0, vt = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        Real dp = predicted[i].accuracy - mean_pred;
        Real dt = validated[i].accuracy - mean_true;
        cov += dp * dt;
        vp += dp * dp;
        vt += dt * dt;
    }
    Real corr = (vp > 0 && vt > 0) ? cov / std::sqrt(vp * vt) : 0;

    // Guided search: few emulations instead of the whole grid.
    std::size_t emulations = 0;
    DsePoint star = engine.guidedSearch(532e-9, grid, qe, 2, &emulations);
    Real best_grid = 0;
    for (const DsePoint &p : validated)
        best_grid = std::max(best_grid, p.accuracy);

    std::printf("\nprediction-vs-validation correlation: %.3f\n", corr);
    std::printf("star point: unit %.0f um, distance %.2f m -> verified acc "
                "%.3f (grid best %.3f)\n",
                star.design.unit_size * 1e6, star.design.distance,
                star.accuracy, best_grid);
    std::printf("DSE speedup: %zu grid emulations replaced by %zu guided "
                "emulations = %.0fx (paper: 60x with 2 of 121)\n",
                validated.size(), emulations,
                static_cast<Real>(validated.size()) / emulations);
    std::printf("(sweep time %.1f s per wavelength grid, validation %.1f "
                "s)\n", sweep_s / 2, validate_s);

    CsvWriter csv;
    csv.header({"wavelength_nm", "unit_um", "distance_m", "kind",
                "accuracy"});
    auto dump = [&](const std::vector<DsePoint> &pts, const char *kind) {
        for (const DsePoint &p : pts)
            csv.row({std::to_string(p.design.wavelength * 1e9),
                     std::to_string(p.design.unit_size * 1e6),
                     std::to_string(p.design.distance), kind,
                     std::to_string(p.accuracy)});
    };
    dump(sweep_432, "emulated");
    dump(sweep_632, "emulated");
    dump(predicted, "predicted");
    dump(validated, "validated");
    bench::saveCsv(csv, "fig5_dse");
    return 0;
}
