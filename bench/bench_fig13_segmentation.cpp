/**
 * @file
 * Figure 13 reproduction: all-optical image segmentation.
 *
 * Paper: a 5-layer DONN with an optical skip connection and training-only
 * LayerNorm segments CityScapes buildings markedly better than the
 * [34]/[68] baseline (no skip, no LayerNorm), especially on edges and
 * small objects. Here: the same architecture pair on the synthetic street
 * scenes, scored by IoU and per-pixel MSE; qualitative PGMs dumped to
 * bench_results/.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "core/layer_norm.hpp"
#include "core/skip.hpp"
#include "core/trainer.hpp"
#include "data/synth_city.hpp"
#include "utils/image_io.hpp"

using namespace lightridge;

namespace {

/**
 * Figure 13a architecture: the beam splitter sits right after the input
 * encoding plane and the shortcut (mirror path over the equivalent
 * optical distance) rejoins just before the detector, bypassing the whole
 * diffractive stack and restoring less-diffracted input features.
 */
DonnModel
buildSeg(const SystemSpec &spec, const Laser &laser, bool with_skip,
         bool with_layernorm, uint64_t seed)
{
    const std::size_t depth = 5;
    Rng rng(seed);
    DonnModel model(spec, laser);
    auto hop = model.hopPropagator();
    std::vector<LayerPtr> stack;
    for (std::size_t l = 0; l < depth; ++l)
        stack.push_back(std::make_unique<DiffractiveLayer>(hop, 1.0, &rng));
    if (with_skip) {
        PropagatorConfig sc;
        sc.grid = spec.grid();
        sc.wavelength = laser.wavelength;
        sc.distance = depth * spec.distance;
        model.addLayer(std::make_unique<OpticalSkipLayer>(
            std::move(stack), std::make_shared<Propagator>(sc)));
    } else {
        for (auto &layer : stack)
            model.addLayer(std::move(layer));
    }
    if (with_layernorm)
        model.addLayer(std::make_unique<LayerNormLayer>());
    model.setDetector(
        DetectorPlane(DetectorPlane::gridLayout(spec.size, 2, 2)));
    return model;
}

} // namespace

int
main()
{
    bench::banner("Figure 13: all-optical segmentation",
                  "paper Fig. 13: skip + LayerNorm beats baseline");

    const std::size_t size = scaled<std::size_t>(48, 350);
    const int epochs = scaled(10, 20);
    const std::size_t n_train = scaled<std::size_t>(200, 1500);

    CityConfig ccfg;
    ccfg.image_size = size;
    SegDataset train = makeSynthCity(n_train, 1, ccfg);
    SegDataset test = makeSynthCity(n_train / 4, 2, ccfg);

    SystemSpec spec;
    spec.size = size;
    spec.pixel = 36e-6;
    Laser laser;
    spec.distance = idealDistanceHalfCone(spec.grid(), laser.wavelength);

    TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.lr = 0.08;
    cfg.batch = 8;

    std::printf("training ours (optical skip + LayerNorm)...\n");
    DonnModel ours = buildSeg(spec, laser, true, true, 3);
    SegTrainer ours_trainer(ours, cfg);
    ours_trainer.fit(train);

    std::printf("training baseline [34]/[68] (no skip, no LayerNorm)...\n");
    DonnModel base = buildSeg(spec, laser, false, false, 3);
    TrainConfig base_cfg = cfg;
    base_cfg.calibrate = false;
    SegTrainer base_trainer(base, base_cfg);
    base_trainer.fit(train);

    Real ours_iou = ours_trainer.evaluateIou(test);
    Real ours_mse = ours_trainer.evaluateMse(test);
    Real base_iou = base_trainer.evaluateIou(test);
    Real base_mse = base_trainer.evaluateMse(test);

    std::printf("\n%-28s %-8s %s\n", "model", "IoU", "pixel MSE");
    std::printf("%-28s %-8.3f %.4f\n", "ours (skip + LayerNorm)", ours_iou,
                ours_mse);
    std::printf("%-28s %-8.3f %.4f\n", "baseline [34]/[68]", base_iou,
                base_mse);
    std::printf("\npaper shape: ours clearly sharper (better IoU / lower "
                "MSE), biggest gains on edges and small objects.\n");

    for (std::size_t i = 0; i < 3 && i < test.size(); ++i) {
        std::string stem =
            bench::resultsDir() + "/fig13_sample" + std::to_string(i);
        writePgm(stem + "_input.pgm",
                 toGray(test.images[i].raw(), size, size));
        writePgm(stem + "_target.pgm",
                 toGray(test.masks[i].raw(), size, size));
        RealMap p_ours = ours_trainer.predictMask(test.images[i]);
        RealMap p_base = base_trainer.predictMask(test.images[i]);
        writePgm(stem + "_ours.pgm", toGray(p_ours.raw(), size, size));
        writePgm(stem + "_baseline.pgm", toGray(p_base.raw(), size, size));
    }
    std::printf("qualitative PGMs in %s/\n", bench::resultsDir().c_str());

    CsvWriter csv;
    csv.header({"model", "iou", "mse"});
    csv.row({"ours", std::to_string(ours_iou), std::to_string(ours_mse)});
    csv.row({"baseline", std::to_string(base_iou), std::to_string(base_mse)});
    bench::saveCsv(csv, "fig13_segmentation");
    return 0;
}
