/**
 * @file
 * Table 5 reproduction: multi-channel RGB-DONN scene classification.
 *
 * Paper: the 3-channel RGB-DONN (Fig. 12) reaches 0.52/0.73/0.84
 * top-1/3/5 on Places365 environment types vs 0.23/0.48/0.67 for the
 * [68]-trained baseline. Here: the same architecture pair on the
 * synthetic scene dataset - ours = multi-channel + regularized recipe,
 * baseline = same multi-channel architecture trained with the [68]
 * recipe (no calibration/regularization).
 */
#include <cstdio>

#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "data/synth_scenes.hpp"

using namespace lightridge;

namespace {

MultiChannelDonn
buildRgb(const SystemSpec &spec, const Laser &laser, std::size_t depth,
         std::size_t classes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::unique_ptr<DonnModel>> channels;
    for (int ch = 0; ch < 3; ++ch)
        channels.push_back(std::make_unique<DonnModel>(
            ModelBuilder(spec, laser)
                .diffractiveLayers(depth, 1.0, &rng)
                .detectorGrid(classes, spec.size / 8)
                .build()));
    return MultiChannelDonn(std::move(channels));
}

} // namespace

int
main()
{
    bench::banner("Table 5: RGB-DONN top-1/3/5 classification",
                  "paper Table 5: 0.52/0.73/0.84 vs 0.23/0.48/0.67");

    const std::size_t size = scaled<std::size_t>(40, 200);
    const std::size_t depth = scaled<std::size_t>(3, 5);
    const int epochs = scaled(4, 20);
    const std::size_t n_train = scaled<std::size_t>(360, 3000);

    SceneConfig scfg;
    scfg.image_size = size;
    scfg.noise = 0.08; // harden the task: avoid a 1.0 ceiling
    RgbDataset train = makeSynthScenes(n_train, 1, scfg);
    RgbDataset test = makeSynthScenes(n_train / 3, 2, scfg);

    SystemSpec spec;
    spec.size = size;
    spec.pixel = 36e-6;
    Laser laser;
    spec.distance = idealDistanceHalfCone(spec.grid(), laser.wavelength);

    TrainConfig ours_cfg;
    ours_cfg.epochs = epochs;
    ours_cfg.lr = 0.03;

    TrainConfig base_cfg = ours_cfg;
    base_cfg.calibrate = false; // [68]-style training

    std::printf("training ours (regularized multi-channel)...\n");
    MultiChannelDonn ours = buildRgb(spec, laser, depth,
                                     train.num_classes, 3);
    RgbTrainer(ours, ours_cfg).fit(train);

    std::printf("training baseline ([68] recipe)...\n");
    MultiChannelDonn base = buildRgb(spec, laser, depth,
                                     train.num_classes, 3);
    RgbTrainer(base, base_cfg).fit(train);

    std::printf("\n%-24s %-8s %-8s %-8s\n", "model", "top-1", "top-3",
                "top-5");
    CsvWriter csv;
    csv.header({"model", "top1", "top3", "top5"});
    for (auto entry : {std::make_pair(&ours, "ours (Fig. 12)"),
                       std::make_pair(&base, "baseline [68]")}) {
        MultiChannelDonn *model = entry.first;
        const char *name = entry.second;
        Real t1 = evaluateRgbTopK(*model, test, 1);
        Real t3 = evaluateRgbTopK(*model, test, 3);
        Real t5 = evaluateRgbTopK(*model, test, 5);
        std::printf("%-24s %-8.3f %-8.3f %-8.3f\n", name, t1, t3, t5);
        csv.row({name, std::to_string(t1), std::to_string(t3),
                 std::to_string(t5)});
    }
    std::printf("\npaper shape: ours > baseline at every k; largest gap "
                "at top-1.\n");
    bench::saveCsv(csv, "table5_rgb");
    return 0;
}
