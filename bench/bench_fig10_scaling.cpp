/**
 * @file
 * Figure 10 reproduction: large-DONN training runtime scaling.
 *
 * The paper trains up to 30-layer DONNs and reports per-epoch runtime vs
 * depth {5..30} and system size (up to 500^2 on one GPU, ~280 s/epoch at
 * 30 layers). Expected shape: runtime roughly linear in depth; superlinear
 * jump with system size. We measure seconds per epoch for a fixed batch
 * of training samples on this CPU.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "data/synth_digits.hpp"
#include "utils/timer.hpp"

using namespace lightridge;

int
main()
{
    bench::banner("Figure 10: training runtime scaling",
                  "paper Fig. 10: ~linear in depth, jump with size");

    std::vector<std::size_t> sizes =
        benchFullScale() ? std::vector<std::size_t>{100, 200, 300}
                         : std::vector<std::size_t>{32, 64};
    std::vector<std::size_t> depths =
        benchFullScale() ? std::vector<std::size_t>{5, 10, 20, 30}
                         : std::vector<std::size_t>{5, 10, 20, 30};
    const std::size_t samples_per_epoch = scaled<std::size_t>(32, 200);

    ClassDataset train = makeSynthDigits(samples_per_epoch, 1);

    CsvWriter csv;
    csv.header({"size", "depth", "seconds_per_epoch"});

    std::printf("\nseconds per epoch (%zu samples):\n", samples_per_epoch);
    std::printf("%-8s", "depth\\n");
    for (std::size_t n : sizes)
        std::printf(" %9zu", n);
    std::printf("\n");

    for (std::size_t depth : depths) {
        std::printf("%-8zu", depth);
        for (std::size_t n : sizes) {
            SystemSpec spec;
            spec.size = n;
            spec.pixel = 36e-6;
            Laser laser;
            spec.distance =
                idealDistanceHalfCone(spec.grid(), laser.wavelength);
            Rng rng(depth);
            DonnModel model = ModelBuilder(spec, laser)
                                  .diffractiveLayers(depth, 1.0, &rng)
                                  .detectorGrid(10, n / 10)
                                  .build();
            TrainConfig tc;
            tc.epochs = 1;
            tc.lr = 0.03;
            tc.calibrate = false; // measure the epoch only
            Trainer trainer(model, tc);
            WallTimer timer;
            trainer.trainEpoch(train);
            double s = timer.seconds();
            std::printf(" %8.2fs", s);
            std::fflush(stdout);
            csv.rowNumeric({static_cast<double>(n),
                            static_cast<double>(depth), s});
        }
        std::printf("\n");
    }
    std::printf("\npaper shape: near-linear growth with depth at fixed "
                "size; disproportionate jump as size grows past the "
                "machine's cache/memory capacity.\n");
    bench::saveCsv(csv, "fig10_scaling");
    return 0;
}
