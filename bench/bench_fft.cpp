/**
 * @file
 * FFT kernel-engine benchmark: the SIMD-vectorized SoA kernel set versus
 * the scalar reference kernels on the propagation hot path (paper Section
 * 5.3 / Fig. 8: FFT2 -> transfer-function Hadamard -> iFFT2), plus the
 * row-parallel FFT2 scaling of one large grid across the thread pool.
 *
 * Emits bench_results/BENCH_fft.json with three sections:
 *  - "single_thread": per-size scalar vs SIMD timings of the fused
 *    fft2 + Hadamard + ifft2 pass, run strictly serially. Gate: >= 1.5x
 *    at 512x512 when the SIMD kernel set is compiled in.
 *  - "one_d": per-length 1-D plan timings covering the radix-2/4
 *    (pow-2), generic mixed-radix, and Bluestein code paths.
 *  - "row_parallel": fft2 wall time with 1/2/4-worker pools. The scaling
 *    gate (>= 1.3x at 4 workers) only applies when the host has >= 4
 *    hardware threads, so single-CPU runners report without failing.
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "fft/fft.hpp"
#include "fft/kernels.hpp"
#include "tensor/field.hpp"
#include "utils/json.hpp"
#include "utils/rng.hpp"
#include "utils/thread_pool.hpp"
#include "utils/timer.hpp"

using namespace lightridge;

namespace {

Field
randomField(std::size_t n, uint64_t seed)
{
    Rng rng(seed);
    Field f(n, n);
    for (std::size_t i = 0; i < f.size(); ++i)
        f[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    return f;
}

/** Unit-modulus pseudo transfer function (what propagation multiplies). */
Field
randomKernel(std::size_t n, uint64_t seed)
{
    Rng rng(seed);
    Field f(n, n);
    for (std::size_t i = 0; i < f.size(); ++i) {
        Real phase = rng.uniform(0, kTwoPi);
        f[i] = Complex{std::cos(phase), std::sin(phase)};
    }
    return f;
}

/** One fused hot-path pass: fft2 -> Hadamard -> ifft2, serial. */
void
convolvePass(const Fft2d &fft, Field *work, const Field &kernel,
             ThreadPool *pool)
{
    fft.forward(work, pool);
    work->hadamard(kernel);
    fft.inverse(work, pool);
}

double
medianMs(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

/** Median wall time of reps passes over the same warm state. */
template <typename Fn>
double
timeMs(int reps, Fn &&fn)
{
    std::vector<double> samples;
    for (int r = 0; r < reps; ++r) {
        WallTimer timer;
        fn();
        samples.push_back(timer.milliseconds());
    }
    return medianMs(std::move(samples));
}

} // namespace

int
main()
{
    bench::banner("FFT kernel engine: SIMD SoA kernels + row-parallel FFT2",
                  "ROADMAP perf item; paper Sec. 5.3 hot path");

    const std::size_t hw_threads = std::thread::hardware_concurrency();
    std::printf("simd kernels compiled: %s   hardware threads: %zu\n\n",
                simdKernelsCompiled() ? "yes" : "no", hw_threads);

    Json artifact;
    artifact["bench"] = Json("fft_kernels");
    artifact["scale"] = Json(benchFullScale() ? "full" : "quick");
    artifact["simd_compiled"] = Json(simdKernelsCompiled());
    artifact["hw_threads"] = Json(hw_threads);

    // ThreadPool(1) is coerced to inline (0-worker) execution, which
    // forces the strictly serial path even on many-core hosts, so the
    // single-thread section isolates kernel quality. (ThreadPool(0) would
    // instead size the pool from hardware_concurrency.)
    ThreadPool serial_pool(1);

    // ----------------------------------------------------------------
    // Section 1: single-thread kernel speedup on the fused hot path.
    // ----------------------------------------------------------------
    const std::size_t gate_size = 512;
    std::vector<std::size_t> sizes{128, 256, gate_size};
    if (benchFullScale())
        sizes.push_back(1024);

    std::printf("single-thread fft2 + Hadamard + ifft2 "
                "(scalar vs simd kernels)\n");
    std::printf("%-8s %12s %12s %9s\n", "size", "scalar_ms", "simd_ms",
                "speedup");

    Json single_rows;
    double gate_speedup = 0;
    for (std::size_t n : sizes) {
        Fft2d fft(n, n);
        Field kernel = randomKernel(n, 7);
        Field input = randomField(n, 11);
        const int reps = n <= 256 ? 9 : 5;

        // The fused pass is forward + unit-modulus Hadamard + inverse, so
        // repeated application keeps magnitudes bounded: the timed region
        // is pure transform work with no staging copies.
        Field work = input;
        double scalar_ms, simd_ms = 0;
        {
            FftKernelModeGuard guard(FftKernelMode::Scalar);
            convolvePass(fft, &work, kernel, &serial_pool); // warm scratch
            scalar_ms = timeMs(reps, [&] {
                convolvePass(fft, &work, kernel, &serial_pool);
            });
        }
        if (simdKernelsCompiled()) {
            FftKernelModeGuard guard(FftKernelMode::Simd);
            work = input;
            convolvePass(fft, &work, kernel, &serial_pool);
            simd_ms = timeMs(reps, [&] {
                convolvePass(fft, &work, kernel, &serial_pool);
            });
        }

        double speedup = simd_ms > 0 ? scalar_ms / simd_ms : 0;
        if (n == gate_size)
            gate_speedup = speedup;
        std::printf("%-8zu %12.2f %12.2f %8.2fx\n", n, scalar_ms, simd_ms,
                    speedup);
        Json row;
        row["size"] = Json(n);
        row["scalar_ms"] = Json(scalar_ms);
        row["simd_ms"] = Json(simd_ms);
        row["speedup"] = Json(speedup);
        single_rows.push(std::move(row));
    }
    artifact["single_thread"] = std::move(single_rows);

    // ----------------------------------------------------------------
    // Section 2: 1-D plan kernels across algorithm paths.
    // ----------------------------------------------------------------
    struct OneD
    {
        const char *path;
        std::size_t n;
    };
    std::vector<OneD> lengths{{"radix24_pow2", 512},
                              {"mixed_radix", 500},
                              {"bluestein_prime", 509}};
    std::printf("\n1-D plan forward (batch of 512 transforms)\n");
    std::printf("%-18s %6s %12s %12s %9s\n", "path", "n", "scalar_ms",
                "simd_ms", "speedup");

    Json one_d_rows;
    for (const OneD &c : lengths) {
        auto plan = acquireFftPlan(c.n);
        std::vector<Complex> work(c.n);
        Rng rng(13);
        for (auto &v : work)
            v = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
        const int batch = 256;

        // Forward/inverse pairs keep the signal scale fixed across reps
        // (an unnormalized forward grows by sqrt(n) per application) and
        // exercise both transform directions of the same kernels.
        auto run_batch = [&] {
            for (int b = 0; b < batch; ++b) {
                plan->forward(work.data());
                plan->inverse(work.data());
            }
        };
        double scalar_ms, simd_ms = 0;
        {
            FftKernelModeGuard guard(FftKernelMode::Scalar);
            run_batch();
            scalar_ms = timeMs(5, run_batch);
        }
        if (simdKernelsCompiled()) {
            FftKernelModeGuard guard(FftKernelMode::Simd);
            run_batch();
            simd_ms = timeMs(5, run_batch);
        }
        double speedup = simd_ms > 0 ? scalar_ms / simd_ms : 0;
        std::printf("%-18s %6zu %12.2f %12.2f %8.2fx\n", c.path, c.n,
                    scalar_ms, simd_ms, speedup);
        Json row;
        row["path"] = Json(c.path);
        row["n"] = Json(c.n);
        row["scalar_ms"] = Json(scalar_ms);
        row["simd_ms"] = Json(simd_ms);
        row["speedup"] = Json(speedup);
        one_d_rows.push(std::move(row));
    }
    artifact["one_d"] = std::move(one_d_rows);

    // ----------------------------------------------------------------
    // Section 3: row-parallel FFT2 scaling of one large grid.
    // ----------------------------------------------------------------
    const std::size_t par_n = benchFullScale() ? 1024 : 512;
    Fft2d par_fft(par_n, par_n);
    Field par_kernel = randomKernel(par_n, 3);
    Field par_input = randomField(par_n, 5);
    std::printf("\nrow-parallel fft2 + Hadamard + ifft2 at %zu^2 "
                "(default kernel mode)\n",
                par_n);
    std::printf("%-10s %12s %9s\n", "workers", "ms", "speedup");

    Json parallel_rows;
    double serial_ms = 0, four_worker_speedup = 0;
    for (std::size_t workers : {std::size_t(1), std::size_t(2),
                                std::size_t(4)}) {
        ThreadPool pool(workers);
        Field work = par_input;
        convolvePass(par_fft, &work, par_kernel, &pool); // warm
        double ms = timeMs(5, [&] {
            convolvePass(par_fft, &work, par_kernel, &pool);
        });
        if (workers == 1)
            serial_ms = ms;
        double speedup = serial_ms / ms;
        if (workers == 4)
            four_worker_speedup = speedup;
        std::printf("%-10zu %12.2f %8.2fx\n", workers, ms, speedup);
        Json row;
        row["workers"] = Json(workers);
        row["ms"] = Json(ms);
        row["speedup_vs_serial"] = Json(speedup);
        parallel_rows.push(std::move(row));
    }
    artifact["row_parallel"] = std::move(parallel_rows);

    // ----------------------------------------------------------------
    // Hardware-conditioned gates.
    // ----------------------------------------------------------------
    const bool simd_gate_applies = simdKernelsCompiled();
    const bool simd_gate_pass = !simd_gate_applies || gate_speedup >= 1.5;
    const bool scaling_gate_applies = hw_threads >= 4;
    const bool scaling_gate_pass =
        !scaling_gate_applies || four_worker_speedup >= 1.3;

    std::printf("\ngate: simd >= 1.5x at %zu^2 single-thread -> %s "
                "(%.2fx%s)\n",
                gate_size, simd_gate_pass ? "PASS" : "FAIL", gate_speedup,
                simd_gate_applies ? "" : ", skipped: simd not compiled");
    std::printf("gate: row-parallel >= 1.3x at 4 workers -> %s (%.2fx%s)\n",
                scaling_gate_pass ? "PASS" : "FAIL", four_worker_speedup,
                scaling_gate_applies ? ""
                                     : ", skipped: < 4 hardware threads");

    Json gates;
    gates["simd_gate_applies"] = Json(simd_gate_applies);
    gates["simd_speedup_512"] = Json(gate_speedup);
    gates["simd_gate_pass"] = Json(simd_gate_pass);
    gates["scaling_gate_applies"] = Json(scaling_gate_applies);
    gates["scaling_speedup_4w"] = Json(four_worker_speedup);
    gates["scaling_gate_pass"] = Json(scaling_gate_pass);
    artifact["gates"] = std::move(gates);
    const bool pass = simd_gate_pass && scaling_gate_pass;
    artifact["pass"] = Json(pass);

    const std::string json_path = bench::resultsDir() + "/BENCH_fft.json";
    if (artifact.save(json_path))
        std::printf("[json] %s\n", json_path.c_str());

    return pass ? 0 : 1;
}
