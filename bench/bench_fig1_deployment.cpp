/**
 * @file
 * Figure 1 reproduction: model performance and time-to-deployment.
 *
 * Paper: SOTA hardware-in-loop flows deploy at 63.9% out of box (33.7%
 * below simulation) and need days-to-weeks of manual calibration to reach
 * 95.2%; LightRidge's codesign training deploys out of box with only a
 * 2.9% gap and a minutes-to-hours design cycle.
 *
 * Here: train a raw model and a codesign model on the same task, then
 * deploy both onto the simulated SLM (nonlinear response + amplitude
 * coupling + fabrication variation + CMOS noise) and measure the
 * simulation-to-hardware accuracy drop of (a) raw out-of-box, (b) raw
 * after manual response calibration, (c) codesign out-of-box. Wall-clock
 * training/deployment times are reported as the design-cycle proxy.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "data/synth_digits.hpp"
#include "hardware/deploy.hpp"
#include "utils/timer.hpp"

using namespace lightridge;

int
main()
{
    bench::banner("Figure 1: out-of-box deployment gap",
                  "paper Fig. 1: 33.7% SOTA drop vs 2.9% LightRidge");

    const std::size_t size = scaled<std::size_t>(40, 100);
    const std::size_t depth = scaled<std::size_t>(3, 5);
    const int epochs = scaled(3, 10);
    const std::size_t n_train = scaled<std::size_t>(500, 2000);

    SystemSpec spec;
    spec.size = size;
    spec.pixel = 36e-6;
    Laser laser;
    spec.distance = idealDistanceHalfCone(spec.grid(), laser.wavelength);

    ClassDataset train = makeSynthDigits(n_train, 1);
    ClassDataset test = makeSynthDigits(n_train / 3, 2);

    // An aggressive uncharacterized panel: strong response nonlinearity
    // and amplitude coupling, 16 levels (the SOTA setups the paper
    // compares against fight exactly this kind of miscorrelation).
    SlmDevice slm(16, 0.9 * kTwoPi, 2.0, 0.35);
    FabricationVariation fab = FabricationVariation::typical();
    CmosDetector cmos = CmosDetector::cs165mu1();

    TrainConfig tc;
    tc.epochs = epochs;
    tc.lr = 0.03;

    // Raw training.
    WallTimer raw_timer;
    Rng rng(11);
    DonnModel raw = ModelBuilder(spec, laser)
                        .diffractiveLayers(depth, 1.0, &rng)
                        .detectorGrid(10, size / 10)
                        .build();
    Trainer(raw, tc).fit(train);
    double raw_train_s = raw_timer.seconds();
    Real raw_sim = evaluateAccuracy(raw, test);

    // Codesign training (warm-started from raw, as the Fig. 3 flow does).
    WallTimer cd_timer;
    Rng grng(13);
    DonnModel codesign = ModelBuilder(spec, laser)
                             .codesignLayers(depth, slm.lut(), 1.0, 1.0,
                                             &grng)
                             .detectorGrid(10, size / 10)
                             .build();
    for (std::size_t i = 0; i < depth; ++i)
        static_cast<CodesignLayer *>(codesign.layer(i))
            ->initFromPhase(
                static_cast<DiffractiveLayer *>(raw.layer(i))->phase());
    Trainer(codesign, tc).fit(train);
    double cd_train_s = cd_timer.seconds();
    Real cd_sim = evaluateAccuracy(codesign, test);

    // Deployments.
    Rng hw_rng(17);
    DonnModel raw_oob =
        deployRaw(raw, slm, fab, &hw_rng, CalibrationMode::OutOfBox);
    Real acc_oob = evaluateDeployed(raw_oob, test, cmos, &hw_rng);
    DonnModel raw_cal =
        deployRaw(raw, slm, fab, &hw_rng, CalibrationMode::Calibrated);
    Real acc_cal = evaluateDeployed(raw_cal, test, cmos, &hw_rng);
    DonnModel cd_hw = deployCodesign(codesign, fab, &hw_rng);
    Real acc_cd = evaluateDeployed(cd_hw, test, cmos, &hw_rng);

    std::printf("\n%-36s %-10s %-10s %s\n", "flow", "sim acc", "hw acc",
                "drop");
    std::printf("%-36s %-10.3f %-10.3f %.1f%%\n",
                "SOTA-style raw, out-of-box", raw_sim, acc_oob,
                100 * (raw_sim - acc_oob));
    std::printf("%-36s %-10.3f %-10.3f %.1f%%\n",
                "SOTA-style raw + manual calibration", raw_sim, acc_cal,
                100 * (raw_sim - acc_cal));
    std::printf("%-36s %-10.3f %-10.3f %.1f%%\n",
                "LightRidge codesign, out-of-box", cd_sim, acc_cd,
                100 * (cd_sim - acc_cd));

    std::printf("\ndesign-cycle proxy (wall clock, this machine):\n");
    std::printf("  raw training:        %.1f s\n", raw_train_s);
    std::printf("  codesign training:   %.1f s (no manual HW calibration "
                "step needed)\n", cd_train_s);
    std::printf("  paper reference: SOTA days-weeks (hardware-in-loop + "
                "manual calibration) vs LightRidge mins-hours\n");
    std::printf("\npaper shape check: drop(raw OOB) >> drop(codesign OOB); "
                "manual calibration recovers most of the raw gap.\n");

    CsvWriter csv;
    csv.header({"flow", "sim_acc", "hw_acc", "drop"});
    csv.rowNumeric({0, raw_sim, acc_oob, raw_sim - acc_oob});
    csv.rowNumeric({1, raw_sim, acc_cal, raw_sim - acc_cal});
    csv.rowNumeric({2, cd_sim, acc_cd, cd_sim - acc_cd});
    bench::saveCsv(csv, "fig1_deployment");
    return 0;
}
