/**
 * @file
 * Figure 6 reproduction: detector patterns, simulation vs hardware.
 *
 * The paper's prototype (3-layer visible-range DONN, binarized MNIST,
 * SLM-deployed) shows the emulated detector pattern precisely matching
 * the experimentally measured one for each digit. Here: train a 3-layer
 * model on binarized digits, deploy it onto the simulated hardware stack
 * (SLM quantization + fabrication variation + CMOS capture), and report
 * per-digit simulation-to-"measurement" pattern correlation and
 * prediction agreement. Patterns are dumped as PGMs for inspection.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "data/synth_digits.hpp"
#include "hardware/deploy.hpp"
#include "utils/image_io.hpp"

using namespace lightridge;

int
main()
{
    bench::banner("Figure 6: detector patterns sim vs hardware",
                  "paper Fig. 6: emulation matches measurements");

    const std::size_t size = scaled<std::size_t>(48, 200);
    const std::size_t depth = 3; // the paper prototype is 3-layer
    const int epochs = scaled(3, 20);

    SystemSpec spec;
    spec.size = size;
    spec.pixel = 36e-6;
    Laser laser; // 532 nm, matching the CPS532 source
    spec.distance = idealDistanceHalfCone(spec.grid(), laser.wavelength);

    DigitConfig dcfg;
    dcfg.binarize = true; // the prototype uses binarized inputs
    ClassDataset train = makeSynthDigits(scaled<std::size_t>(500, 2000), 1,
                                         dcfg);
    ClassDataset test = makeSynthDigits(scaled<std::size_t>(10, 10), 2,
                                        dcfg); // one per digit

    Rng rng(5);
    DonnModel model = ModelBuilder(spec, laser)
                          .diffractiveLayers(depth, 1.0, &rng)
                          .detectorGrid(10, size / 10)
                          .build();
    TrainConfig tc;
    tc.epochs = epochs;
    tc.lr = 0.03;
    Trainer(model, tc).fit(train);
    std::printf("emulated accuracy after training: %.3f\n",
                evaluateAccuracy(model, test));

    // Hardware: calibrated SLM deployment (the prototype measures its
    // SLM response, so nearest-level mapping is the faithful model).
    SlmDevice slm = SlmDevice::holoeyeLc2012(256);
    Rng hw_rng(7);
    DonnModel hw = deployRaw(model, slm, FabricationVariation::typical(),
                             &hw_rng, CalibrationMode::Calibrated);
    CmosDetector cmos = CmosDetector::cs165mu1();

    std::printf("\n%-7s %-14s %-12s %-12s %s\n", "digit", "correlation",
                "sim pred", "hw pred", "agree");
    CsvWriter csv;
    csv.header({"digit", "correlation", "sim_pred", "hw_pred"});
    Real mean_corr = 0;
    int agree = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
        Field input = model.encode(test.images[i]);
        Field u_sim = model.forwardField(input, false);
        RealMap sim_pattern = u_sim.intensity();
        RealMap hw_pattern =
            captureDetectorImage(hw, test.images[i], cmos, &hw_rng);

        Real corr = correlation(sim_pattern, hw_pattern);
        mean_corr += corr;

        std::vector<Real> sim_logits = model.detector().readout(u_sim);
        std::vector<Real> hw_logits =
            hw.detector().readoutFromIntensity(hw_pattern);
        int sim_pred = static_cast<int>(
            std::max_element(sim_logits.begin(), sim_logits.end()) -
            sim_logits.begin());
        int hw_pred = static_cast<int>(
            std::max_element(hw_logits.begin(), hw_logits.end()) -
            hw_logits.begin());
        agree += (sim_pred == hw_pred) ? 1 : 0;

        std::printf("%-7d %-14.3f %-12d %-12d %s\n", test.labels[i], corr,
                    sim_pred, hw_pred, sim_pred == hw_pred ? "yes" : "NO");
        csv.rowNumeric({static_cast<double>(test.labels[i]), corr,
                        static_cast<double>(sim_pred),
                        static_cast<double>(hw_pred)});

        // Qualitative dumps (simulation vs "experiment" per digit).
        std::string stem = bench::resultsDir() + "/fig6_digit" +
                           std::to_string(test.labels[i]);
        writePgm(stem + "_sim.pgm",
                 toGray(sim_pattern.raw(), size, size));
        writePgm(stem + "_hw.pgm", toGray(hw_pattern.raw(), size, size));
    }
    std::printf("\nmean pattern correlation: %.3f   prediction agreement: "
                "%d/%zu\n", mean_corr / test.size(), agree, test.size());
    std::printf("paper shape: simulation precisely matches measurement "
                "(visual match per digit).\n");
    bench::saveCsv(csv, "fig6_detector");
    return 0;
}
