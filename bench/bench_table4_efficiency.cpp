/**
 * @file
 * Table 4 reproduction: energy efficiency (fps/Watt) and accuracy of the
 * DONN prototype vs conventional NNs.
 *
 * Locally measured: DONN emulated accuracy, MLP/CNN accuracy and
 * single-sample CPU inference fps (this machine). Quoted from the paper:
 * GPU/EdgeTPU fps/Watt reference rows (hardware unavailable offline).
 * DONN fps/Watt comes from the all-optical energy model: ~5 mW laser +
 * ~1 W CMOS @ 1000 fps => ~995 fps/Watt.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "data/synth_digits.hpp"
#include "data/synth_fashion.hpp"
#include "hardware/energy.hpp"
#include "nn/network.hpp"
#include "utils/timer.hpp"

using namespace lightridge;

namespace {

/** Assumed CPU package power for local fps/Watt rows. */
constexpr double kCpuWatts = 65.0;

struct TaskResult
{
    Real donn_acc, mlp_acc, cnn_acc, mlp_fps, cnn_fps, donn_fps;
};

TaskResult
runTask(const ClassDataset &train, const ClassDataset &test,
        std::size_t donn_size, int epochs)
{
    TaskResult out{};

    // DONN.
    SystemSpec spec;
    spec.size = donn_size;
    spec.pixel = 36e-6;
    Laser laser;
    spec.distance = idealDistanceHalfCone(spec.grid(), laser.wavelength);
    Rng rng(5);
    DonnModel donn = ModelBuilder(spec, laser)
                         .diffractiveLayers(5, 1.0, &rng)
                         .detectorGrid(10, donn_size / 10)
                         .build();
    TrainConfig tc;
    tc.epochs = epochs;
    tc.lr = 0.03;
    Trainer(donn, tc).fit(train);
    out.donn_acc = evaluateAccuracy(donn, test);
    {
        // Emulated DONN inference fps on this CPU (for context only; the
        // physical prototype runs at camera rate).
        WallTimer t;
        int reps = 16;
        for (int i = 0; i < reps; ++i)
            donn.predict(donn.encode(test.images[i % test.size()]));
        out.donn_fps = reps / t.seconds();
    }

    // MLP (paper: flattened input -> 128 -> 10).
    Rng mrng(7);
    nn::Network mlp = nn::makePaperMlp(
        train.images[0].rows() * train.images[0].cols(), 10, &mrng);
    nn::NnTrainConfig ncfg;
    ncfg.epochs = epochs;
    nn::NnTrainer mlp_trainer(mlp, ncfg);
    for (int e = 0; e < ncfg.epochs; ++e)
        mlp_trainer.trainEpoch(train);
    out.mlp_acc = mlp_trainer.evaluate(test);
    out.mlp_fps = mlp_trainer.measureFps(test);

    // CNN (paper: 2x Conv5x5 + MaxPool3 + 2 linear).
    Rng crng(9);
    nn::Network cnn = nn::makePaperCnn(train.images[0].rows(), 10, &crng);
    nn::NnTrainer cnn_trainer(cnn, ncfg);
    for (int e = 0; e < ncfg.epochs; ++e)
        cnn_trainer.trainEpoch(train);
    out.cnn_acc = cnn_trainer.evaluate(test);
    out.cnn_fps = cnn_trainer.measureFps(test);
    return out;
}

} // namespace

int
main()
{
    bench::banner("Table 4: fps/Watt and accuracy, DONN vs NNs",
                  "paper Table 4: DONN ~995 fps/W, ~1% accuracy gap");

    const std::size_t donn_size = scaled<std::size_t>(48, 200);
    const int epochs = scaled(3, 10);
    const std::size_t n_train = scaled<std::size_t>(600, 5000);
    const std::size_t n_test = scaled<std::size_t>(200, 1000);

    // Paper-scale NN baselines flatten the 200x200 system-resolution
    // input (MLP: 40000 -> 128 -> 10); quick mode keeps native 28x28.
    DigitConfig dcfg;
    dcfg.image_size = scaled<std::size_t>(28, 200);
    FashionConfig fcfg;
    fcfg.image_size = dcfg.image_size;
    ClassDataset mnist_train = makeSynthDigits(n_train, 1, dcfg);
    ClassDataset mnist_test = makeSynthDigits(n_test, 2, dcfg);
    ClassDataset fash_train = makeSynthFashion(n_train, 3, fcfg);
    ClassDataset fash_test = makeSynthFashion(n_test, 4, fcfg);

    std::printf("training DONN + MLP + CNN on synth-mnist...\n");
    TaskResult mnist = runTask(mnist_train, mnist_test, donn_size, epochs);
    std::printf("training DONN + MLP + CNN on synth-fmnist...\n");
    TaskResult fash = runTask(fash_train, fash_test, donn_size, epochs);

    DonnEnergyModel donn_energy;

    std::printf("\n%-30s %-12s %-10s %-10s\n", "platform", "fps/Watt",
                "MNIST", "FMNIST");
    std::printf("%-30s %-12.1f %-10.3f %-10.3f   <- all-optical model\n",
                "DONN prototype (optical)", donn_energy.fpsPerWatt(),
                mnist.donn_acc, fash.donn_acc);
    std::printf("%-30s %-12.2f %-10.3f %-10.3f   <- measured here\n",
                "CPU this machine (MLP)", mnist.mlp_fps / kCpuWatts,
                mnist.mlp_acc, fash.mlp_acc);
    std::printf("%-30s %-12.2f %-10.3f %-10.3f   <- measured here\n",
                "CPU this machine (CNN)", mnist.cnn_fps / kCpuWatts,
                mnist.cnn_acc, fash.cnn_acc);
    for (const PlatformPoint &p : paperDigitalReference())
        std::printf("%-30s %-12.1f %-10s %-10s   <- quoted from paper\n",
                    p.name.c_str(), p.fpsPerWatt(), "-", "-");

    Real best_nn_mnist = std::max(mnist.mlp_acc, mnist.cnn_acc);
    Real best_nn_fash = std::max(fash.mlp_acc, fash.cnn_acc);
    std::printf("\naccuracy gap (NN - DONN): MNIST %.3f, FMNIST %.3f "
                "(paper: ~0.01 / ~0.02)\n",
                best_nn_mnist - mnist.donn_acc,
                best_nn_fash - fash.donn_acc);
    std::printf("efficiency ratio DONN vs this CPU (MLP): %.0fx "
                "(paper: 2 orders vs desktop CPU/GPU)\n",
                donn_energy.fpsPerWatt() / (mnist.mlp_fps / kCpuWatts));

    CsvWriter csv;
    csv.header({"platform", "fps_per_watt", "mnist_acc", "fmnist_acc"});
    csv.row({"donn", std::to_string(donn_energy.fpsPerWatt()),
             std::to_string(mnist.donn_acc), std::to_string(fash.donn_acc)});
    csv.row({"cpu_mlp", std::to_string(mnist.mlp_fps / kCpuWatts),
             std::to_string(mnist.mlp_acc), std::to_string(fash.mlp_acc)});
    csv.row({"cpu_cnn", std::to_string(mnist.cnn_fps / kCpuWatts),
             std::to_string(mnist.cnn_acc), std::to_string(fash.cnn_acc)});
    bench::saveCsv(csv, "table4_efficiency");
    return 0;
}
