/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out:
 *
 *  A1  numerical route: analytic angular-spectrum TF vs the paper's
 *      sampled impulse-response kernel (accuracy + runtime parity);
 *  A2  spectral-domain padding: same-size circular algorithm (paper) vs
 *      2x guard band (energy-lossy physics) on trained accuracy;
 *  A3  complex-valued regularization (calibration) on/off across depths
 *      (the core of the Fig. 7 claim, isolated);
 *  A4  codesign warm start: random logits vs raw-phase initialization;
 *  A5  device level count: deployment accuracy of the codesign flow as
 *      the SLM precision shrinks (256 -> 4 levels).
 */
#include <cstdio>

#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "data/synth_digits.hpp"
#include "hardware/deploy.hpp"
#include "utils/timer.hpp"

using namespace lightridge;

namespace {

Real
trainEval(SystemSpec spec, const ClassDataset &train,
          const ClassDataset &test, std::size_t depth, bool calibrate,
          double *seconds = nullptr)
{
    Rng rng(7);
    DonnModel model = ModelBuilder(spec, Laser{})
                          .diffractiveLayers(depth, 1.0, &rng)
                          .detectorGrid(10, spec.size / 10)
                          .build();
    TrainConfig tc;
    tc.epochs = scaled(2, 6);
    tc.lr = 0.03;
    tc.calibrate = calibrate;
    WallTimer timer;
    Trainer(model, tc).fit(train);
    if (seconds != nullptr)
        *seconds = timer.seconds();
    return evaluateAccuracy(model, test);
}

} // namespace

int
main()
{
    bench::banner("Ablations: numerical route, padding, regularization, "
                  "warm start, device precision",
                  "design choices from DESIGN.md");

    const std::size_t size = scaled<std::size_t>(40, 100);
    ClassDataset train = makeSynthDigits(scaled<std::size_t>(400, 2000), 1);
    ClassDataset test = makeSynthDigits(scaled<std::size_t>(200, 800), 2);

    SystemSpec spec;
    spec.size = size;
    spec.pixel = 36e-6;
    Laser laser;
    spec.distance = idealDistanceHalfCone(spec.grid(), laser.wavelength);

    CsvWriter csv;
    csv.header({"ablation", "variant", "accuracy", "seconds"});

    // A1: TF vs IR numerical route.
    std::printf("\n[A1] numerical route (accuracy should match closely)\n");
    for (auto method : {PropagationMethod::TransferFunction,
                        PropagationMethod::ImpulseResponse}) {
        SystemSpec s = spec;
        s.method = method;
        double secs = 0;
        Real acc = trainEval(s, train, test, 3, true, &secs);
        const char *name = method == PropagationMethod::TransferFunction
                               ? "angular-spectrum TF"
                               : "sampled-kernel IR (paper Eq. 1)";
        std::printf("  %-34s acc %.3f  (%.1f s)\n", name, acc, secs);
        csv.row({"route", name, std::to_string(acc), std::to_string(secs)});
    }

    // A2: padding.
    std::printf("\n[A2] spectral padding\n");
    for (std::size_t pad : {std::size_t(1), std::size_t(2)}) {
        SystemSpec s = spec;
        s.pad_factor = pad;
        double secs = 0;
        Real acc = trainEval(s, train, test, 3, true, &secs);
        std::printf("  pad_factor=%zu %-22s acc %.3f  (%.1f s)\n", pad,
                    pad == 1 ? "(paper: circular)" : "(guard band)", acc,
                    secs);
        csv.row({"padding", std::to_string(pad), std::to_string(acc),
                 std::to_string(secs)});
    }

    // A3: regularization across depth.
    std::printf("\n[A3] complex-valued regularization (calibration)\n");
    for (std::size_t depth : {std::size_t(1), std::size_t(5)}) {
        for (bool calibrate : {true, false}) {
            Real acc = trainEval(spec, train, test, depth, calibrate);
            std::printf("  depth %zu, %-14s acc %.3f\n", depth,
                        calibrate ? "regularized" : "baseline", acc);
            csv.row({"regularization",
                     std::to_string(depth) +
                         (calibrate ? "_reg" : "_base"),
                     std::to_string(acc), "0"});
        }
    }

    // A4: codesign warm start.
    std::printf("\n[A4] codesign warm start\n");
    SlmDevice slm = SlmDevice::holoeyeLc2012(16);
    Rng raw_rng(9);
    DonnModel raw = ModelBuilder(spec, laser)
                        .diffractiveLayers(3, 1.0, &raw_rng)
                        .detectorGrid(10, size / 10)
                        .build();
    TrainConfig tc;
    tc.epochs = scaled(2, 6);
    tc.lr = 0.03;
    Trainer(raw, tc).fit(train);
    for (bool warm : {false, true}) {
        Rng grng(11);
        DonnModel cd = ModelBuilder(spec, laser)
                           .codesignLayers(3, slm.lut(), 1.0, 1.0, &grng)
                           .detectorGrid(10, size / 10)
                           .build();
        if (warm)
            for (std::size_t i = 0; i < 3; ++i)
                static_cast<CodesignLayer *>(cd.layer(i))
                    ->initFromPhase(static_cast<DiffractiveLayer *>(
                                        raw.layer(i))
                                        ->phase());
        Trainer(cd, tc).fit(train);
        Real acc = evaluateAccuracy(cd, test);
        std::printf("  %-24s acc %.3f\n",
                    warm ? "warm start (raw phases)" : "cold start", acc);
        csv.row({"warmstart", warm ? "warm" : "cold", std::to_string(acc),
                 "0"});
    }

    // A5: device precision sweep for the codesign flow.
    std::printf("\n[A5] device level count (codesign, deployed)\n");
    for (std::size_t levels : {std::size_t(256), std::size_t(16),
                               std::size_t(8), std::size_t(4)}) {
        SlmDevice device = SlmDevice::holoeyeLc2012(levels);
        Rng grng(13);
        DonnModel cd = ModelBuilder(spec, laser)
                           .codesignLayers(3, device.lut(), 1.0, 1.0, &grng)
                           .detectorGrid(10, size / 10)
                           .build();
        // Warm start (A4 shows cold-start codesign underperforms badly).
        for (std::size_t i = 0; i < 3; ++i)
            static_cast<CodesignLayer *>(cd.layer(i))
                ->initFromPhase(
                    static_cast<DiffractiveLayer *>(raw.layer(i))->phase());
        Trainer(cd, tc).fit(train);
        DonnModel hw =
            deployCodesign(cd, FabricationVariation::none(), nullptr);
        Real acc =
            evaluateDeployed(hw, test, CmosDetector::ideal(), nullptr);
        std::printf("  %3zu levels: deployed acc %.3f\n", levels, acc);
        csv.row({"levels", std::to_string(levels), std::to_string(acc),
                 "0"});
    }

    bench::saveCsv(csv, "ablations");
    return 0;
}
