/**
 * @file
 * Figure 8 reproduction: kernel-level speedup breakdown (google-benchmark).
 *
 * The paper decomposes the 5-layer DONN emulation into its three dominant
 * tensor operators - FFT2, iFFT2, and complex matrix (Hadamard) multiply -
 * and reports per-kernel speedups of the optimized LightRidge kernels over
 * LightPipes (CPU: 11x / 10x / 4x, 6.4x overall). This binary benchmarks
 * each operator in both engines at the same size and prints the same
 * breakdown; a custom reporter computes the speedup summary at exit.
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "baseline/lightpipes_like.hpp"
#include "fft/fft.hpp"
#include "utils/cli.hpp"
#include "utils/rng.hpp"

using namespace lightridge;

namespace {

std::size_t
benchSize()
{
    return scaled<std::size_t>(128, 500);
}

/** Shared random field for every kernel benchmark. */
Field
makeField(std::size_t n)
{
    Rng rng(3);
    Field f(n, n);
    for (std::size_t i = 0; i < f.size(); ++i)
        f[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    return f;
}

void
LightRidge_FFT2(benchmark::State &state)
{
    const std::size_t n = benchSize();
    Fft2d fft(n, n);
    Field f = makeField(n);
    for (auto _ : state) {
        fft.forward(&f);
        benchmark::DoNotOptimize(f.data());
    }
}

void
LightRidge_iFFT2(benchmark::State &state)
{
    const std::size_t n = benchSize();
    Fft2d fft(n, n);
    Field f = makeField(n);
    for (auto _ : state) {
        fft.inverse(&f);
        benchmark::DoNotOptimize(f.data());
    }
}

/**
 * Phase-mask multiplier: unit modulus, so repeated in-place application
 * neither overflows nor decays (representative of DONN modulation).
 */
Field
makeMask(std::size_t n)
{
    Rng rng(5);
    Field f(n, n);
    for (std::size_t i = 0; i < f.size(); ++i)
        f[i] = std::polar(Real(1), rng.uniform(0, kTwoPi));
    return f;
}

void
LightRidge_ComplexMM(benchmark::State &state)
{
    const std::size_t n = benchSize();
    Field a = makeField(n);
    Field b = makeMask(n);
    for (auto _ : state) {
        a.hadamard(b);
        benchmark::DoNotOptimize(a.data());
    }
}

void
LightPipes_FFT2(benchmark::State &state)
{
    const std::size_t n = benchSize();
    Rng rng(3);
    std::vector<Real> re(n * n), im(n * n);
    for (std::size_t i = 0; i < n * n; ++i) {
        re[i] = rng.uniform(-1, 1);
        im[i] = rng.uniform(-1, 1);
    }
    for (auto _ : state) {
        baseline::lpFft2d(n, &re, &im, -1);
        benchmark::DoNotOptimize(re.data());
    }
}

void
LightPipes_iFFT2(benchmark::State &state)
{
    const std::size_t n = benchSize();
    Rng rng(3);
    std::vector<Real> re(n * n), im(n * n);
    for (std::size_t i = 0; i < n * n; ++i) {
        re[i] = rng.uniform(-1, 1);
        im[i] = rng.uniform(-1, 1);
    }
    for (auto _ : state) {
        baseline::lpFft2d(n, &re, &im, +1);
        benchmark::DoNotOptimize(re.data());
    }
}

void
LightPipes_ComplexMM(benchmark::State &state)
{
    const std::size_t n = benchSize();
    Rng rng(3);
    Field mask = makeMask(n);
    std::vector<Real> ar(n * n), ai(n * n), br(n * n), bi(n * n);
    for (std::size_t i = 0; i < n * n; ++i) {
        ar[i] = rng.uniform(-1, 1);
        ai[i] = rng.uniform(-1, 1);
        br[i] = mask[i].real();
        bi[i] = mask[i].imag();
    }
    for (auto _ : state) {
        baseline::lpComplexMultiply(&ar, &ai, br, bi);
        benchmark::DoNotOptimize(ar.data());
    }
}

BENCHMARK(LightRidge_FFT2)->Unit(benchmark::kMillisecond);
BENCHMARK(LightPipes_FFT2)->Unit(benchmark::kMillisecond);
BENCHMARK(LightRidge_iFFT2)->Unit(benchmark::kMillisecond);
BENCHMARK(LightPipes_iFFT2)->Unit(benchmark::kMillisecond);
BENCHMARK(LightRidge_ComplexMM)->Unit(benchmark::kMillisecond);
BENCHMARK(LightPipes_ComplexMM)->Unit(benchmark::kMillisecond);

/** Reporter that also accumulates per-kernel means for the summary. */
class SpeedupReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs)
            means_[run.benchmark_name()] = run.GetAdjustedRealTime();
        benchmark::ConsoleReporter::ReportRuns(runs);
    }

    void
    Finalize() override
    {
        benchmark::ConsoleReporter::Finalize();
        auto speedup = [&](const char *lr, const char *lp) -> double {
            auto a = means_.find(lr), b = means_.find(lp);
            if (a == means_.end() || b == means_.end() || a->second <= 0)
                return 0;
            return b->second / a->second;
        };
        double s_fft = speedup("LightRidge_FFT2", "LightPipes_FFT2");
        double s_ifft = speedup("LightRidge_iFFT2", "LightPipes_iFFT2");
        double s_mm = speedup("LightRidge_ComplexMM",
                              "LightPipes_ComplexMM");
        // Workload-weighted overall speedup for a 5-layer DONN: 6 FFT2 +
        // 6 iFFT2 + 11 complex MM per forward pass (hops + masks).
        auto t = [&](const char *k) { return means_.count(k) ? means_[k] : 0; };
        double lr_total = 6 * t("LightRidge_FFT2") +
                          6 * t("LightRidge_iFFT2") +
                          11 * t("LightRidge_ComplexMM");
        double lp_total = 6 * t("LightPipes_FFT2") +
                          6 * t("LightPipes_iFFT2") +
                          11 * t("LightPipes_ComplexMM");
        std::printf("\n=== Fig. 8 speedup breakdown (CPU, %zux%zu) ===\n",
                    benchSize(), benchSize());
        std::printf("FFT2: %.1fx   iFFT2: %.1fx   Complex MM: %.1fx   "
                    "overall (5-layer workload): %.1fx\n", s_fft, s_ifft,
                    s_mm, lr_total > 0 ? lp_total / lr_total : 0.0);
        std::printf("paper (CPU, 500^2): FFT2 11x, iFFT2 10x, MM 4x, "
                    "overall 6.4x\n");
    }

  private:
    std::map<std::string, double> means_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    SpeedupReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return 0;
}
