/**
 * @file
 * Figure 7 reproduction: complex-valued regularization vs baseline
 * training across DONN depths, plus detector-noise robustness.
 *
 * Paper findings to reproduce in shape:
 *  - with the regularized recipe, accuracy is roughly depth-independent
 *    (0.98 MNIST / 0.89 FMNIST), while the [34]/[68] baseline recipe
 *    loses badly at shallow depth (-31% MNIST, -34% FMNIST at D=1);
 *  - prediction confidence grows with depth;
 *  - deep models shrug off 1-5% detector noise while single-layer models
 *    collapse.
 */
#include <cstdio>

#include "api/robustness.hpp"
#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "data/synth_digits.hpp"
#include "data/synth_fashion.hpp"

using namespace lightridge;

namespace {

struct RunResult
{
    Real acc = 0;
    Real confidence = 0;
    Real acc_noise[3] = {0, 0, 0}; // 1%, 3%, 5%
};

RunResult
runOne(const ClassDataset &train, const ClassDataset &test,
       std::size_t size, std::size_t depth, int epochs, bool regularized)
{
    SystemSpec spec;
    spec.size = size;
    spec.pixel = 36e-6;
    Laser laser;
    spec.distance = idealDistanceHalfCone(spec.grid(), laser.wavelength);

    Rng rng(depth * 100 + (regularized ? 1 : 2));
    DonnModel model = ModelBuilder(spec, laser)
                          .diffractiveLayers(depth, 1.0, &rng)
                          .detectorGrid(10, size / 10)
                          .build();
    TrainConfig tc;
    tc.epochs = epochs;
    tc.lr = 0.03;
    tc.calibrate = regularized; // baseline [34]/[68]: no regularization
    Trainer(model, tc).fit(train);

    RunResult out;
    EvalResult clean = evaluateWithConfidence(model, test);
    out.acc = clean.accuracy;
    out.confidence = clean.confidence;
    // Detector-noise curve via the shared robustness engine (same seeded
    // readout draws the old hand-rolled loop used).
    RobustnessSweepConfig sweep;
    sweep.detector_noise = {0.01, 0.03, 0.05};
    sweep.seed = 7;
    RobustnessReport report = robustnessSweep(model, test, sweep);
    for (int k = 0; k < 3; ++k)
        out.acc_noise[k] =
            report.accuracyAt("detector", sweep.detector_noise[k]);
    return out;
}

} // namespace

int
main()
{
    bench::banner("Figure 7: regularization vs baseline across depths",
                  "paper Fig. 7: +31%/+34% at D=1; confidence grows with D");

    const std::size_t size = scaled<std::size_t>(40, 200);
    const int epochs = scaled(3, 10);
    const std::size_t n_train = scaled<std::size_t>(500, 5000);
    const std::size_t n_test = scaled<std::size_t>(200, 1000);
    std::vector<std::size_t> depths = benchFullScale()
                                          ? std::vector<std::size_t>{1, 3, 5, 7}
                                          : std::vector<std::size_t>{1, 3, 5};

    CsvWriter csv;
    csv.header({"dataset", "depth", "recipe", "acc", "confidence",
                "acc_noise1", "acc_noise3", "acc_noise5"});

    for (const char *dataset : {"synth-mnist", "synth-fmnist"}) {
        ClassDataset train, test;
        if (std::string(dataset) == "synth-mnist") {
            train = makeSynthDigits(n_train, 1);
            test = makeSynthDigits(n_test, 2);
        } else {
            train = makeSynthFashion(n_train, 3);
            test = makeSynthFashion(n_test, 4);
        }

        std::printf("\n--- %s ---\n", dataset);
        std::printf("%-6s %-12s %-7s %-11s %-8s %-8s %-8s\n", "depth",
                    "recipe", "acc", "confidence", "n=1%", "n=3%", "n=5%");
        for (std::size_t depth : depths) {
            for (bool reg : {true, false}) {
                RunResult r =
                    runOne(train, test, size, depth, epochs, reg);
                const char *name = reg ? "ours(reg)" : "baseline";
                std::printf("%-6zu %-12s %-7.3f %-11.3f %-8.3f %-8.3f "
                            "%-8.3f\n", depth, name, r.acc, r.confidence,
                            r.acc_noise[0], r.acc_noise[1], r.acc_noise[2]);
                csv.row({dataset, std::to_string(depth), name,
                         std::to_string(r.acc), std::to_string(r.confidence),
                         std::to_string(r.acc_noise[0]),
                         std::to_string(r.acc_noise[1]),
                         std::to_string(r.acc_noise[2])});
            }
        }
    }

    std::printf("\npaper shape checks: (1) ours beats baseline most at "
                "D=1; (2) ours roughly depth-flat; (3) confidence and "
                "noise robustness grow with depth.\n");
    bench::saveCsv(csv, "fig7_confidence");
    return 0;
}
