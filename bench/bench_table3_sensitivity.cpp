/**
 * @file
 * Table 3 reproduction: single-parameter sensitivity analysis.
 *
 * The paper shifts the DSE-explored best design by +-5% / +-10% in
 * wavelength, distance, and unit size (weights trained at the base point
 * held fixed) and reports accuracy. Expected shape: unit size is by far
 * the most sensitive parameter; wavelength and distance are roughly
 * equally (and less) sensitive.
 */
#include <cstdio>

#include "bench_common.hpp"
#include "dse/dse.hpp"

using namespace lightridge;

int
main()
{
    bench::banner("Table 3: parameter sensitivity",
                  "paper Table 3: unit size most sensitive");

    QuickEvalConfig qe;
    qe.system_size = scaled<std::size_t>(40, 200);
    qe.depth = scaled<std::size_t>(3, 5);
    qe.train_samples = scaled<std::size_t>(400, 2000);
    qe.test_samples = scaled<std::size_t>(200, 1000);
    qe.det_size = qe.system_size / 10;
    qe.epochs = scaled(2, 10);

    DesignPoint base;
    base.wavelength = 532e-9;
    base.unit_size = 36e-6;
    base.distance = idealDistanceHalfCone(
        Grid{qe.system_size, base.unit_size}, base.wavelength);
    std::printf("base design: lambda 532 nm, unit 36 um, distance %.3f m "
                "(half-cone ideal)\n", base.distance);

    const std::vector<Real> shifts{-0.10, -0.05, 0.0, 0.05, 0.10};
    auto rows = sensitivityAnalysis(base, qe, shifts);

    std::printf("\n%-12s", "parameter");
    for (Real s : shifts)
        std::printf(" %+5.0f%%", s * 100);
    std::printf("\n");
    CsvWriter csv;
    csv.header({"parameter", "-10%", "-5%", "0%", "+5%", "+10%"});
    for (const auto &row : rows) {
        std::printf("%-12s", row.parameter.c_str());
        std::vector<std::string> cells{row.parameter};
        for (Real a : row.accuracies) {
            std::printf(" %5.2f ", a);
            cells.push_back(std::to_string(a));
        }
        std::printf("\n");
        csv.row(cells);
    }

    // Shape check: relative accuracy retained at +-5%.
    auto retained = [&](const SensitivityRow &row) {
        Real base_acc = row.accuracies[2];
        return base_acc > 0
                   ? (row.accuracies[1] + row.accuracies[3]) / (2 * base_acc)
                   : 0;
    };
    std::printf("\naccuracy retained at +-5%% shift: wavelength %.2f, "
                "distance %.2f, unit size %.2f\n",
                retained(rows[0]), retained(rows[1]), retained(rows[2]));
    std::printf("paper shape: unit size drops hardest (0.97 -> ~0.3 at "
                "+-5%%), wavelength/distance milder (~0.7)\n");
    std::printf("applied perturbation at +10%%: wavelength %.3g m, "
                "distance %.3g m, unit size %.3g m\n",
                rows[0].applied.back(), rows[1].applied.back(),
                rows[2].applied.back());

    bench::saveCsv(csv, "table3_sensitivity");

    Json artifact;
    artifact["bench"] = Json("table3_sensitivity");
    artifact["scale"] = Json(benchFullScale() ? "full" : "quick");
    Json base_j;
    base_j["wavelength"] = Json(base.wavelength);
    base_j["unit_size"] = Json(base.unit_size);
    base_j["distance"] = Json(base.distance);
    artifact["base"] = std::move(base_j);
    Json rows_j;
    for (const auto &row : rows)
        rows_j.push(row.toJson());
    artifact["rows"] = std::move(rows_j);
    const std::string json_path =
        bench::resultsDir() + "/BENCH_table3_sensitivity.json";
    if (artifact.save(json_path))
        std::printf("[json] %s\n", json_path.c_str());
    return 0;
}
