/**
 * @file
 * Robustness gate: misalignment-vaccinated training beats (or matches)
 * nominal training under deployment-scale lateral misalignment.
 *
 * Two identical tiny-digits DONNs train from the same initialization —
 * one with per-batch lateral-shift vaccination, one without — and both
 * are swept over a lateral misalignment grid with the shared robustness
 * engine. Gates (single-threaded, so they apply on any host):
 *
 *  - vaccinated accuracy >= unvaccinated at the largest tested shift;
 *  - vaccinated mean accuracy over the curve >= unvaccinated mean.
 *
 * Writes bench_results/BENCH_robustness.json and exits nonzero when a
 * gate fails.
 */
#include <cstdio>

#include "api/robustness.hpp"
#include "bench_common.hpp"
#include "core/session.hpp"
#include "data/synth_digits.hpp"

using namespace lightridge;

namespace {

DonnModel
buildTiny(std::size_t size, Real pixel, uint64_t seed)
{
    SystemSpec spec;
    spec.size = size;
    spec.pixel = pixel;
    Laser laser;
    spec.distance = idealDistanceHalfCone(spec.grid(), laser.wavelength);
    Rng rng(seed);
    return ModelBuilder(spec, laser)
        .diffractiveLayers(3, 1.0, &rng)
        .detectorGrid(10, size / 10)
        .build();
}

} // namespace

int
main()
{
    bench::banner("Robustness: vaccinated vs nominal training",
                  "Mengu et al. 2020: misalignment vaccination");

    const std::size_t size = scaled<std::size_t>(32, 64);
    const Real pixel = 36e-6;
    const std::size_t n_train = scaled<std::size_t>(300, 1200);
    const std::size_t n_test = scaled<std::size_t>(240, 500);
    const int epochs = scaled(5, 8);

    ClassDataset train = makeSynthDigits(n_train, 1);
    ClassDataset test = makeSynthDigits(n_test, 2);

    TrainConfig tc;
    tc.epochs = epochs;
    tc.batch = 24;
    tc.lr = 0.05;
    tc.seed = 11;
    tc.workers = 1; // bit-reproducible serial reference on any host

    // The sweep applies the same shift to every hop (coherent stack-up:
    // a 0.5 px/hop shift wanders the detector-plane output by ~2 px on
    // this 4-hop stack). Beyond ~0.5 px/hop the translated output leaves
    // its detector regions entirely and every model sits at chance, so
    // the grid stops where accuracy still carries signal.
    RobustnessSweepConfig sweep;
    sweep.lateral_shifts = {0.0, 0.125 * pixel, 0.25 * pixel,
                            0.375 * pixel, 0.5 * pixel};

    // Per-hop shifts compound through the stack, so the per-hop
    // vaccination dose stays small: gaussian sigma = 0.1 px/hop exposes
    // training to roughly the sweep's total misalignment range (3-sigma
    // tails x 4 hops) without destroying the clean signal under the
    // quick-scale training budget.
    PerturbationSpec vaccine;
    vaccine.lateral.kind = ErrorDist::Kind::Gaussian;
    vaccine.lateral.scale = 0.1 * pixel;

    auto runOne = [&](bool vaccinated) {
        DonnModel model = buildTiny(size, pixel, 5);
        ClassificationTask task(model, train, &test);
        if (vaccinated)
            task.setPerturbationSpec(vaccine);
        Session(task, tc).fit();
        return robustnessSweep(model, test, sweep);
    };

    std::printf("training nominal model...\n");
    RobustnessReport plain = runOne(false);
    std::printf("training vaccinated model (lateral gaussian sigma %.1f um"
                "/hop)...\n", vaccine.lateral.scale * 1e6);
    RobustnessReport vacc = runOne(true);

    std::printf("\n%-14s %-10s %-10s\n", "shift [um]", "nominal",
                "vaccinated");
    for (Real s : sweep.lateral_shifts)
        std::printf("%-14.1f %-10.3f %-10.3f\n", s * 1e6,
                    plain.accuracyAt("lateral", s),
                    vacc.accuracyAt("lateral", s));

    const Real max_shift = sweep.lateral_shifts.back();
    const Real plain_at_max = plain.accuracyAt("lateral", max_shift);
    const Real vacc_at_max = vacc.accuracyAt("lateral", max_shift);
    const Real plain_mean = plain.meanAccuracy("lateral");
    const Real vacc_mean = vacc.meanAccuracy("lateral");

    const bool gate_max = vacc_at_max >= plain_at_max;
    const bool gate_mean = vacc_mean >= plain_mean;
    std::printf("\ngate: vaccinated >= nominal at %.1f um -> %s "
                "(%.3f vs %.3f)\n",
                max_shift * 1e6, gate_max ? "PASS" : "FAIL", vacc_at_max,
                plain_at_max);
    std::printf("gate: vaccinated mean >= nominal mean -> %s "
                "(%.3f vs %.3f)\n",
                gate_mean ? "PASS" : "FAIL", vacc_mean, plain_mean);

    Json artifact;
    artifact["bench"] = Json("robustness");
    artifact["scale"] = Json(benchFullScale() ? "full" : "quick");
    artifact["vaccine"] = vaccine.toJson();
    artifact["nominal"] = plain.toJson();
    artifact["vaccinated"] = vacc.toJson();
    artifact["gate_max_shift"] = Json(gate_max);
    artifact["gate_mean"] = Json(gate_mean);
    const std::string json_path =
        bench::resultsDir() + "/BENCH_robustness.json";
    if (artifact.save(json_path))
        std::printf("[json] %s\n", json_path.c_str());

    return (gate_max && gate_mean) ? 0 : 1;
}
