/**
 * @file
 * Figure 9 reproduction: end-to-end emulation speedups of LightRidge over
 * the LightPipes-like baseline across DONN depth {1,3,5,7,10} and system
 * size (quick: 64..128; full: 100..500). Paper CPU result: up to 6.4x at
 * depth 5, size 500^2, consistently > 1 everywhere.
 */
#include <cstdio>

#include "baseline/lightpipes_like.hpp"
#include "bench_common.hpp"
#include "core/model.hpp"
#include "utils/timer.hpp"

using namespace lightridge;

int
main()
{
    bench::banner("Figure 9: end-to-end emulation speedups",
                  "paper Fig. 9a: up to 6.4x CPU");

    std::vector<std::size_t> sizes =
        benchFullScale() ? std::vector<std::size_t>{100, 200, 300, 400, 500}
                         : std::vector<std::size_t>{64, 100, 128};
    std::vector<std::size_t> depths{1, 3, 5, 7, 10};
    const Real pitch = 36e-6, lambda = 532e-9;

    CsvWriter csv;
    csv.header({"size", "depth", "lightridge_ms", "lightpipes_ms",
                "speedup"});

    std::printf("\n%-8s", "depth\\n");
    for (std::size_t n : sizes)
        std::printf(" %8zu", n);
    std::printf("   (speedup = baseline / lightridge)\n");

    for (std::size_t depth : depths) {
        std::printf("%-8zu", depth);
        for (std::size_t n : sizes) {
            Real z = idealDistanceHalfCone(Grid{n, pitch}, lambda);
            Rng rng(1);
            RealMap input(n, n);
            for (std::size_t i = 0; i < input.size(); ++i)
                input[i] = rng.uniform(0, 1);
            std::vector<RealMap> phases;
            for (std::size_t l = 0; l < depth; ++l) {
                RealMap phase(n, n);
                for (std::size_t i = 0; i < phase.size(); ++i)
                    phase[i] = rng.uniform(0, kTwoPi);
                phases.push_back(phase);
            }

            // LightRidge path.
            SystemSpec spec;
            spec.size = n;
            spec.pixel = pitch;
            spec.distance = z;
            DonnModel model(spec, Laser{});
            for (std::size_t l = 0; l < depth; ++l) {
                auto layer = std::make_unique<DiffractiveLayer>(
                    model.hopPropagator());
                layer->phase() = phases[l];
                model.addLayer(std::move(layer));
            }
            Field encoded = Field::fromAmplitude(input);
            model.forwardField(encoded, false); // warm plans
            const int reps = n <= 128 ? 5 : 2;
            WallTimer lr_timer;
            for (int r = 0; r < reps; ++r)
                model.forwardField(encoded, false);
            double lr_ms = lr_timer.milliseconds() / reps;

            // Baseline path (expensive: single reps at large sizes).
            const int lp_reps = n <= 100 ? 2 : 1;
            WallTimer lp_timer;
            for (int r = 0; r < lp_reps; ++r)
                baseline::lpDonnForward(input, phases, pitch, lambda, z);
            double lp_ms = lp_timer.milliseconds() / lp_reps;

            double speedup = lp_ms / lr_ms;
            std::printf(" %7.1fx", speedup);
            std::fflush(stdout);
            csv.rowNumeric({static_cast<double>(n),
                            static_cast<double>(depth), lr_ms, lp_ms,
                            speedup});
        }
        std::printf("\n");
    }
    std::printf("\npaper shape: speedup > 1 across the whole sweep, "
                "growing with system size.\n");
    bench::saveCsv(csv, "fig9_speedups");
    return 0;
}
