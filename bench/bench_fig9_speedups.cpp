/**
 * @file
 * Figure 9 reproduction: end-to-end emulation speedups of LightRidge over
 * the LightPipes-like baseline across DONN depth {1,3,5,7,10} and system
 * size (quick: 64..128; full: 100..500). Paper CPU result: up to 6.4x at
 * depth 5, size 500^2, consistently > 1 everywhere.
 *
 * A second section benchmarks the batched propagation engine (plan +
 * transfer-function caches, thread-pool sample parallelism) against the
 * single-threaded uncached baseline, verifies the cached path is
 * bitwise-identical to recomputing everything from scratch, and emits the
 * combined results as bench_results/BENCH_fig9.json for CI artifacts.
 *
 * A third section benchmarks the Session engine's shared data-parallel
 * training pipeline (workers=4 vs the workers=1 serial reference) on the
 * segmentation and RGB tasks — the two paths that were serial-only before
 * the Task/Session redesign — gating >= 2x at equal losses when the host
 * has enough hardware threads.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "baseline/lightpipes_like.hpp"
#include "bench_common.hpp"
#include "core/model.hpp"
#include "core/session.hpp"
#include "data/synth_city.hpp"
#include "data/synth_scenes.hpp"
#include "utils/json.hpp"
#include "utils/thread_pool.hpp"
#include "utils/timer.hpp"

using namespace lightridge;

int
main()
{
    bench::banner("Figure 9: end-to-end emulation speedups",
                  "paper Fig. 9a: up to 6.4x CPU");

    std::vector<std::size_t> sizes =
        benchFullScale() ? std::vector<std::size_t>{100, 200, 300, 400, 500}
                         : std::vector<std::size_t>{64, 100, 128};
    std::vector<std::size_t> depths{1, 3, 5, 7, 10};
    const Real pitch = 36e-6, lambda = 532e-9;

    CsvWriter csv;
    csv.header({"size", "depth", "lightridge_ms", "lightpipes_ms",
                "speedup"});
    Json sweep_rows;

    std::printf("\n%-8s", "depth\\n");
    for (std::size_t n : sizes)
        std::printf(" %8zu", n);
    std::printf("   (speedup = baseline / lightridge)\n");

    for (std::size_t depth : depths) {
        std::printf("%-8zu", depth);
        for (std::size_t n : sizes) {
            Real z = idealDistanceHalfCone(Grid{n, pitch}, lambda);
            Rng rng(1);
            RealMap input(n, n);
            for (std::size_t i = 0; i < input.size(); ++i)
                input[i] = rng.uniform(0, 1);
            std::vector<RealMap> phases;
            for (std::size_t l = 0; l < depth; ++l) {
                RealMap phase(n, n);
                for (std::size_t i = 0; i < phase.size(); ++i)
                    phase[i] = rng.uniform(0, kTwoPi);
                phases.push_back(phase);
            }

            // LightRidge path.
            SystemSpec spec;
            spec.size = n;
            spec.pixel = pitch;
            spec.distance = z;
            DonnModel model(spec, Laser{});
            for (std::size_t l = 0; l < depth; ++l) {
                auto layer = std::make_unique<DiffractiveLayer>(
                    model.hopPropagator());
                layer->phase() = phases[l];
                model.addLayer(std::move(layer));
            }
            Field encoded = Field::fromAmplitude(input);
            model.forwardField(encoded, false); // warm plans
            const int reps = n <= 128 ? 5 : 2;
            WallTimer lr_timer;
            for (int r = 0; r < reps; ++r)
                model.forwardField(encoded, false);
            double lr_ms = lr_timer.milliseconds() / reps;

            // Baseline path (expensive: single reps at large sizes).
            const int lp_reps = n <= 100 ? 2 : 1;
            WallTimer lp_timer;
            for (int r = 0; r < lp_reps; ++r)
                baseline::lpDonnForward(input, phases, pitch, lambda, z);
            double lp_ms = lp_timer.milliseconds() / lp_reps;

            double speedup = lp_ms / lr_ms;
            std::printf(" %7.1fx", speedup);
            std::fflush(stdout);
            csv.rowNumeric({static_cast<double>(n),
                            static_cast<double>(depth), lr_ms, lp_ms,
                            speedup});
            Json row;
            row["size"] = Json(n);
            row["depth"] = Json(depth);
            row["lightridge_ms"] = Json(lr_ms);
            row["lightpipes_ms"] = Json(lp_ms);
            row["speedup"] = Json(speedup);
            sweep_rows.push(std::move(row));
        }
        std::printf("\n");
    }
    std::printf("\npaper shape: speedup > 1 across the whole sweep, "
                "growing with system size.\n");
    bench::saveCsv(csv, "fig9_speedups");

    // ----------------------------------------------------------------
    // Batched propagation: cached + thread-pool engine vs the
    // single-threaded uncached baseline, batch >= 16, threads >= 4.
    // ----------------------------------------------------------------
    const std::size_t batch = 16;
    const std::size_t threads = 4;
    const std::size_t depth = 5;
    ThreadPool pool(threads);
    std::printf("\nbatched propagation (batch=%zu, threads=%zu, depth=%zu) "
                "vs single-threaded uncached baseline\n",
                batch, threads, depth);
    std::printf("%-8s %12s %12s %9s %9s\n", "size", "batched_ms",
                "baseline_ms", "speedup", "bitwise");

    Json batched_rows;
    bool all_identical = true;
    Real min_speedup = 1e300;
    for (std::size_t n : sizes) {
        Real z = idealDistanceHalfCone(Grid{n, pitch}, lambda);
        Rng rng(2);
        std::vector<RealMap> phases;
        for (std::size_t l = 0; l < depth; ++l) {
            RealMap phase(n, n);
            for (std::size_t i = 0; i < phase.size(); ++i)
                phase[i] = rng.uniform(0, kTwoPi);
            phases.push_back(phase);
        }

        SystemSpec spec;
        spec.size = n;
        spec.pixel = pitch;
        spec.distance = z;
        DonnModel model(spec, Laser{});
        for (std::size_t l = 0; l < depth; ++l) {
            auto layer =
                std::make_unique<DiffractiveLayer>(model.hopPropagator());
            layer->phase() = phases[l];
            model.addLayer(std::move(layer));
        }

        std::vector<RealMap> images;
        std::vector<Field> inputs;
        for (std::size_t b = 0; b < batch; ++b) {
            RealMap image(n, n);
            for (std::size_t i = 0; i < image.size(); ++i)
                image[i] = rng.uniform(0, 1);
            inputs.push_back(Field::fromAmplitude(image));
            images.push_back(std::move(image));
        }

        // Cached + batched engine (warm the caches first).
        std::vector<Field> outputs = model.forwardFieldBatch(inputs, &pool);
        const int reps = n <= 128 ? 3 : 1;
        WallTimer batched_timer;
        for (int r = 0; r < reps; ++r)
            outputs = model.forwardFieldBatch(inputs, &pool);
        double batched_ms = batched_timer.milliseconds() / reps;

        // Identical numerics: the batched cached path must match a serial
        // pass through the same stack bit for bit.
        Real diff = 0;
        for (std::size_t b = 0; b < batch; ++b)
            diff = std::max(diff,
                            maxAbsDiff(outputs[b], model.inferField(inputs[b])));
        bool identical = diff == 0.0;
        all_identical = all_identical && identical;

        // Single-threaded uncached baseline over the same batch.
        const int lp_reps = 1;
        WallTimer lp_timer;
        for (int r = 0; r < lp_reps; ++r)
            for (std::size_t b = 0; b < batch; ++b)
                baseline::lpDonnForward(images[b], phases, pitch, lambda, z);
        double lp_batch_ms = lp_timer.milliseconds() / lp_reps;

        double speedup = lp_batch_ms / batched_ms;
        min_speedup = std::min<Real>(min_speedup, speedup);
        std::printf("%-8zu %12.1f %12.1f %8.1fx %9s\n", n, batched_ms,
                    lp_batch_ms, speedup, identical ? "yes" : "NO");

        Json row;
        row["size"] = Json(n);
        row["depth"] = Json(depth);
        row["batch"] = Json(batch);
        row["threads"] = Json(threads);
        row["batched_ms"] = Json(batched_ms);
        row["baseline_ms"] = Json(lp_batch_ms);
        row["speedup"] = Json(speedup);
        row["bitwise_identical"] = Json(identical);
        batched_rows.push(std::move(row));
    }
    std::printf("target: >= 2x everywhere, bitwise-identical cached path "
                "-> %s (min %.1fx)\n",
                (min_speedup >= 2.0 && all_identical) ? "PASS" : "FAIL",
                min_speedup);

    // ----------------------------------------------------------------
    // Data-parallel training across task kinds: the Session engine's
    // replica pipeline (workers=4) vs the serial reference (workers=1)
    // on segmentation and RGB epochs — the two paths that used to be
    // serial-only. Requires >= 4 hardware threads to show a speedup.
    // ----------------------------------------------------------------
    const std::size_t train_workers = 4;
    std::printf("\ndata-parallel training (Session, workers=%zu vs 1)\n",
                train_workers);
    std::printf("%-14s %12s %12s %9s %12s\n", "task", "serial_ms",
                "parallel_ms", "speedup", "loss_match");

    Json training_rows;
    Real min_train_speedup = 1e300;
    bool all_losses_match = true;

    auto recordTraining = [&](const char *task_name, double serial_ms,
                              double parallel_ms, Real serial_loss,
                              Real parallel_loss) {
        double speedup = serial_ms / parallel_ms;
        bool match = std::abs(parallel_loss - serial_loss) <=
                     0.5 * std::abs(serial_loss) + 0.05;
        min_train_speedup = std::min<Real>(min_train_speedup, speedup);
        all_losses_match = all_losses_match && match;
        std::printf("%-14s %12.1f %12.1f %8.1fx %12s\n", task_name,
                    serial_ms, parallel_ms, speedup, match ? "yes" : "NO");
        Json row;
        row["task"] = Json(task_name);
        row["workers"] = Json(train_workers);
        row["serial_ms"] = Json(serial_ms);
        row["parallel_ms"] = Json(parallel_ms);
        row["speedup"] = Json(speedup);
        row["serial_loss"] = Json(serial_loss);
        row["parallel_loss"] = Json(parallel_loss);
        row["loss_match"] = Json(match);
        training_rows.push(std::move(row));
    };

    const std::size_t train_n = scaled<std::size_t>(64, 128);
    {
        // Segmentation workload: 5-layer stack, image-to-image loss.
        CityConfig ccfg;
        ccfg.image_size = train_n;
        SegDataset seg_train = makeSynthCity(48, 1, ccfg);
        auto runSeg = [&](std::size_t workers) {
            SystemSpec sspec;
            sspec.size = train_n;
            sspec.pixel = pitch;
            sspec.distance = idealDistanceHalfCone(Grid{train_n, pitch},
                                                   lambda);
            Rng srng(3);
            DonnModel model(sspec, Laser{});
            for (int l = 0; l < 5; ++l)
                model.addLayer(std::make_unique<DiffractiveLayer>(
                    model.hopPropagator(), 1.0, &srng));
            model.setDetector(DetectorPlane(
                DetectorPlane::gridLayout(train_n, 2, 2)));
            TrainConfig cfg;
            cfg.epochs = 2;
            cfg.batch = 24;
            cfg.lr = 0.08;
            cfg.workers = workers;
            SegmentationTask task(model, seg_train);
            return Session(task, cfg).fit();
        };
        auto serial = runSeg(1);
        auto parallel = runSeg(train_workers);
        recordTraining(
            "segmentation",
            1e3 * std::min(serial[0].seconds, serial[1].seconds),
            1e3 * std::min(parallel[0].seconds, parallel[1].seconds),
            serial.back().train_loss, parallel.back().train_loss);
    }
    {
        // RGB workload: three parallel 3-layer stacks, shared detector.
        const std::size_t rgb_n = scaled<std::size_t>(48, 96);
        SceneConfig scfg;
        scfg.image_size = rgb_n;
        RgbDataset rgb_train = makeSynthScenes(24, 1, scfg);
        auto runRgb = [&](std::size_t workers) {
            SystemSpec rspec;
            rspec.size = rgb_n;
            rspec.pixel = pitch;
            rspec.distance = idealDistanceHalfCone(Grid{rgb_n, pitch},
                                                   lambda);
            Rng rrng(3);
            std::vector<std::unique_ptr<DonnModel>> channels;
            for (int ch = 0; ch < 3; ++ch)
                channels.push_back(std::make_unique<DonnModel>(
                    ModelBuilder(rspec, Laser{})
                        .diffractiveLayers(3, 1.0, &rrng)
                        .detectorGrid(rgb_train.num_classes, rgb_n / 8)
                        .build()));
            MultiChannelDonn model(std::move(channels));
            TrainConfig cfg;
            cfg.epochs = 2;
            cfg.batch = 12;
            cfg.lr = 0.03;
            cfg.workers = workers;
            RgbTask task(model, rgb_train);
            return Session(task, cfg).fit();
        };
        auto serial = runRgb(1);
        auto parallel = runRgb(train_workers);
        recordTraining(
            "rgb",
            1e3 * std::min(serial[0].seconds, serial[1].seconds),
            1e3 * std::min(parallel[0].seconds, parallel[1].seconds),
            serial.back().train_loss, parallel.back().train_loss);
    }

    const std::size_t hw_threads = ThreadPool::global().workerCount();
    const bool train_gate_applies = hw_threads >= train_workers;
    const bool train_pass =
        (!train_gate_applies || min_train_speedup >= 2.0) &&
        all_losses_match;
    std::printf("target: >= 2x on both tasks at equal losses "
                "(gated when >= %zu hw threads; have %zu) -> %s "
                "(min %.1fx)\n",
                train_workers, hw_threads, train_pass ? "PASS" : "FAIL",
                min_train_speedup);

    Json artifact;
    artifact["bench"] = Json("fig9_speedups");
    artifact["scale"] = Json(benchFullScale() ? "full" : "quick");
    artifact["per_sample_sweep"] = std::move(sweep_rows);
    artifact["batched"] = std::move(batched_rows);
    artifact["min_batched_speedup"] = Json(min_speedup);
    artifact["bitwise_identical"] = Json(all_identical);
    artifact["training"] = std::move(training_rows);
    artifact["min_training_speedup"] = Json(min_train_speedup);
    artifact["training_losses_match"] = Json(all_losses_match);
    artifact["hw_threads"] = Json(hw_threads);
    const std::string json_path = bench::resultsDir() + "/BENCH_fig9.json";
    if (artifact.save(json_path))
        std::printf("[json] %s\n", json_path.c_str());

    return (min_speedup >= 2.0 && all_identical && train_pass) ? 0 : 1;
}
