/**
 * @file
 * Serving-engine benchmark: dynamic micro-batching versus sequential
 * per-request dispatch, with bitwise parity against direct inference.
 *
 * Emits bench_results/BENCH_serve.json with three sections:
 *
 *  - "throughput": requests/sec of the micro-batched engine (submit the
 *    whole stream asynchronously, gather) versus one-request-at-a-time
 *    dispatch through the same engine, per model size. Gate: batched
 *    >= 2x sequential — conditioned on >= 4 hardware threads per the
 *    repo's hardware-conditioning convention (a single-CPU host has no
 *    parallelism for the batcher to exploit; it reports without failing).
 *  - "parity": engine responses are bitwise-equal to direct
 *    `detector().readout(model.inferField(model.encode(frame)))` calls,
 *    for every request, both dispatch modes, both registered models.
 *    Unconditional gate.
 *  - "alloc": steady-state Field heap allocations of a batched burst
 *    (only meaningful under LIGHTRIDGE_ALLOC_STATS). One shared
 *    DonnModel instance serves every worker: zero allocations means no
 *    per-request clones and no per-request propagation buffers.
 *    Gate applies only when the counter is compiled in.
 */
#include <algorithm>
#include <cstdio>
#include <future>
#include <vector>

#include "bench_common.hpp"
#include "core/model.hpp"
#include "data/synth_digits.hpp"
#include "optics/laser.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "utils/json.hpp"
#include "utils/thread_pool.hpp"
#include "utils/timer.hpp"

using namespace lightridge;

namespace {

DonnModel
makeServeModel(std::size_t n, std::size_t depth, uint64_t seed)
{
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = idealDistanceHalfCone(Grid{n, 36e-6}, 532e-9);
    Rng rng(seed);
    return ModelBuilder(spec, Laser{})
        .diffractiveLayers(depth, 1.0, &rng)
        .detectorGrid(10, std::max<std::size_t>(n / 8, 1))
        .build();
}

/** Direct single-request reference path the engine must match bitwise. */
std::vector<Real>
directLogits(const DonnModel &model, const RealMap &frame)
{
    Field u = model.inferField(model.encode(frame));
    return model.detector().readout(u);
}

double
medianMs(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

} // namespace

int
main()
{
    bench::banner("Serving engine: micro-batching vs sequential dispatch",
                  "ISSUE 5 / ROADMAP scale: multi-model serving front end");

    const std::size_t hw_threads = ThreadPool::global().workerCount();
    const std::size_t depth = 3;
    const std::size_t requests = scaled<std::size_t>(48, 192);
    const std::vector<std::size_t> sizes{32, 48};

    // Request frames: deterministic synthetic digits at native 28x28.
    ClassDataset frames = makeSynthDigits(requests, 11);

    ModelRegistry registry;
    for (std::size_t n : sizes)
        registry.registerModel("digits" + std::to_string(n),
                               makeServeModel(n, depth, 7 + n));

    CsvWriter csv;
    csv.header({"size", "requests", "sequential_ms", "batched_ms",
                "speedup", "batched_rps", "mean_batch"});
    std::printf("\n%zu requests per model, depth=%zu, hw_threads=%zu\n",
                requests, depth, hw_threads);
    std::printf("%-8s %14s %12s %9s %12s %11s\n", "size", "sequential_ms",
                "batched_ms", "speedup", "batched_rps", "mean_batch");

    Json throughput_rows;
    bool parity_ok = true;
    Real best_speedup = 0;
    std::uint64_t steady_allocs = 0;
    bool alloc_measured = false;

    for (std::size_t n : sizes) {
        const std::string name = "digits" + std::to_string(n);
        std::shared_ptr<const DonnModel> model = registry.acquire(name);

        // Reference logits for every frame (also warms the FFT-plan and
        // transfer-function caches the engine shares).
        std::vector<std::vector<Real>> direct(requests);
        for (std::size_t i = 0; i < requests; ++i)
            direct[i] = directLogits(*model, frames.images[i]);

        BatchingConfig batching;
        batching.max_batch = 32;
        InferenceEngine engine(registry, batching);

        auto makeRequest = [&](std::size_t i) {
            InferRequest request;
            request.model = name;
            request.image = frames.images[i];
            request.id = i;
            return request;
        };

        // Warm both dispatch paths (worker arenas, modulation tables).
        for (std::size_t i = 0; i < std::min<std::size_t>(requests, 8); ++i)
            parity_ok = parity_ok &&
                        engine.inferNow(makeRequest(i)).logits == direct[i];

        auto runSequential = [&] {
            for (std::size_t i = 0; i < requests; ++i) {
                InferResponse response = engine.inferNow(makeRequest(i));
                parity_ok = parity_ok && response.logits == direct[i];
            }
        };
        double batched_mean_batch = 0;
        auto runBatched = [&] {
            std::vector<std::future<InferResponse>> futures;
            futures.reserve(requests);
            for (std::size_t i = 0; i < requests; ++i)
                futures.push_back(engine.submit(makeRequest(i)));
            double batch_sum = 0;
            for (std::size_t i = 0; i < requests; ++i) {
                InferResponse response = futures[i].get();
                parity_ok = parity_ok && response.logits == direct[i];
                batch_sum += static_cast<double>(response.batch_size);
            }
            batched_mean_batch = batch_sum / requests;
        };

        // Steady-state allocation audit on the warmed engine: a batched
        // burst must lease every buffer from the per-thread arenas and
        // never clone the shared model (which would rebuild modulation
        // tables). Only meaningful when the counter is compiled in.
        if (fieldAllocStatsEnabled() && n == sizes.front()) {
            runBatched();
            engine.drain();
            resetFieldAllocCount();
            runBatched();
            engine.drain();
            steady_allocs = fieldAllocCount();
            alloc_measured = true;
        }

        const int reps = 3;
        std::vector<double> seq_ms, batch_ms;
        for (int r = 0; r < reps; ++r) {
            WallTimer t1;
            runSequential();
            seq_ms.push_back(t1.milliseconds());
            WallTimer t2;
            runBatched();
            batch_ms.push_back(t2.milliseconds());
        }
        const double seq = medianMs(seq_ms);
        const double bat = medianMs(batch_ms);
        const double speedup = seq / bat;
        const double rps = 1e3 * static_cast<double>(requests) / bat;
        best_speedup = std::max<Real>(best_speedup, speedup);
        std::printf("%-8zu %14.2f %12.2f %8.2fx %12.1f %11.1f\n", n, seq,
                    bat, speedup, rps, batched_mean_batch);
        csv.rowNumeric({static_cast<double>(n),
                        static_cast<double>(requests), seq, bat, speedup,
                        rps, batched_mean_batch});
        Json row;
        row["size"] = Json(n);
        row["requests"] = Json(requests);
        row["sequential_ms"] = Json(seq);
        row["batched_ms"] = Json(bat);
        row["speedup"] = Json(speedup);
        row["batched_rps"] = Json(rps);
        row["mean_batch"] = Json(batched_mean_batch);
        throughput_rows.push(std::move(row));
    }

    std::printf("parity (engine == direct inferField, both modes): %s\n",
                parity_ok ? "yes" : "NO");
    if (alloc_measured)
        std::printf("steady-state field allocs (batched burst): %llu\n",
                    static_cast<unsigned long long>(steady_allocs));

    // Gates per the hardware-conditioning convention: parity is
    // unconditional; the throughput gate needs real cores; the alloc
    // gate needs the counter compiled in.
    const bool throughput_gate_applies = hw_threads >= 4;
    const bool throughput_gate_pass =
        !throughput_gate_applies || best_speedup >= 2.0;
    const bool alloc_gate_pass = !alloc_measured || steady_allocs == 0;

    std::printf("\ngate: parity bitwise -> %s\n",
                parity_ok ? "PASS" : "FAIL");
    std::printf("gate: batched >= 2x sequential at >= 4 hw threads -> %s "
                "(%.2fx%s)\n",
                throughput_gate_pass ? "PASS" : "FAIL", best_speedup,
                throughput_gate_applies ? "" : ", skipped: < 4 hw threads");
    std::printf("gate: zero steady-state allocs (shared instance, no "
                "clones) -> %s%s\n",
                alloc_gate_pass ? "PASS" : "FAIL",
                alloc_measured ? "" : " (skipped: alloc stats compiled out)");

    bench::saveCsv(csv, "serve");
    Json artifact;
    artifact["bench"] = Json("serve");
    artifact["scale"] = Json(benchFullScale() ? "full" : "quick");
    artifact["hw_threads"] = Json(hw_threads);
    artifact["alloc_stats_compiled"] = Json(fieldAllocStatsEnabled());
    artifact["throughput"] = std::move(throughput_rows);
    Json gates;
    gates["parity_pass"] = Json(parity_ok);
    gates["throughput_gate_applies"] = Json(throughput_gate_applies);
    gates["best_speedup"] = Json(best_speedup);
    gates["throughput_gate_pass"] = Json(throughput_gate_pass);
    gates["alloc_gate_applies"] = Json(alloc_measured);
    gates["steady_state_field_allocs"] =
        Json(static_cast<std::size_t>(steady_allocs));
    gates["alloc_gate_pass"] = Json(alloc_gate_pass);
    artifact["gates"] = std::move(gates);
    const std::string json_path = bench::resultsDir() + "/BENCH_serve.json";
    if (artifact.save(json_path))
        std::printf("[json] %s\n", json_path.c_str());

    return (parity_ok && throughput_gate_pass && alloc_gate_pass) ? 0 : 1;
}
