/**
 * @file
 * Serving-engine benchmark: dynamic micro-batching versus sequential
 * per-request dispatch, with bitwise parity against direct inference.
 *
 * Emits bench_results/BENCH_serve.json with three sections:
 *
 *  - "throughput": requests/sec of the micro-batched engine (submit the
 *    whole stream asynchronously, gather) versus one-request-at-a-time
 *    dispatch through the same engine, per model size. Gate: batched
 *    >= 2x sequential — conditioned on >= 4 hardware threads per the
 *    repo's hardware-conditioning convention (a single-CPU host has no
 *    parallelism for the batcher to exploit; it reports without failing).
 *  - "parity": engine responses are bitwise-equal to direct
 *    `detector().readout(model.inferField(model.encode(frame)))` calls,
 *    for every request, both dispatch modes, both registered models.
 *    Unconditional gate.
 *  - "alloc": steady-state Field heap allocations of a batched burst
 *    (only meaningful under LIGHTRIDGE_ALLOC_STATS). One shared
 *    DonnModel instance serves every worker: zero allocations means no
 *    per-request clones and no per-request propagation buffers.
 *    Gate applies only when the counter is compiled in.
 *  - "socket": closed-loop load through the HTTP front end on loopback —
 *    K keep-alive clients drive the full request stream through
 *    POST /v1/models/<name>/infer and every JSON logit must be
 *    bitwise-equal to direct inference (unconditional gate; %.17g JSON
 *    numbers round-trip doubles exactly). Sustained RPS and client-side
 *    p50/p99 are recorded; the bounded-p99 gate is conditioned on >= 4
 *    hardware threads (single-CPU hosts report without failing).
 *  - "overload": deterministic 4x admission overload (quota 1, engine
 *    paused) must degrade gracefully — excess requests answered
 *    immediately with 503 + Retry-After while /healthz stays live, the
 *    survivor served after resume. Unconditional gate.
 *  - "ensemble": fan-out throughput of a 2-member ensemble over both
 *    registered models, with every fused response bitwise-equal to
 *    offline fuseLogits over the members' direct inference outputs
 *    (unconditional gate). Records the engine's ensemble/fan-out
 *    counters so the artifact exposes the amplification factor.
 *
 * The artifact's "execution" block records the resolved acceptor/IO
 * thread and engine worker counts the run actually used.
 */
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/model.hpp"
#include "data/synth_digits.hpp"
#include "optics/laser.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "utils/json.hpp"
#include "utils/thread_pool.hpp"
#include "utils/timer.hpp"

using namespace lightridge;

namespace {

DonnModel
makeServeModel(std::size_t n, std::size_t depth, uint64_t seed)
{
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = idealDistanceHalfCone(Grid{n, 36e-6}, 532e-9);
    Rng rng(seed);
    return ModelBuilder(spec, Laser{})
        .diffractiveLayers(depth, 1.0, &rng)
        .detectorGrid(10, std::max<std::size_t>(n / 8, 1))
        .build();
}

/** Direct single-request reference path the engine must match bitwise. */
std::vector<Real>
directLogits(const DonnModel &model, const RealMap &frame)
{
    Field u = model.inferField(model.encode(frame));
    return model.detector().readout(u);
}

double
medianMs(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

double
percentileMs(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0;
    std::sort(samples.begin(), samples.end());
    const std::size_t at = static_cast<std::size_t>(
        p * static_cast<double>(samples.size() - 1));
    return samples[at];
}

Json
imageJson(const RealMap &frame)
{
    Json image;
    image["rows"] = Json(frame.rows());
    image["cols"] = Json(frame.cols());
    Json data;
    for (std::size_t i = 0; i < frame.size(); ++i)
        data.push(Json(frame[i]));
    image["data"] = std::move(data);
    return image;
}

} // namespace

int
main()
{
    bench::banner("Serving engine: micro-batching vs sequential dispatch",
                  "ISSUE 5 / ROADMAP scale: multi-model serving front end");

    const std::size_t hw_threads = ThreadPool::global().workerCount();
    const std::size_t depth = 3;
    const std::size_t requests = scaled<std::size_t>(48, 192);
    const std::vector<std::size_t> sizes{32, 48};

    // Request frames: deterministic synthetic digits at native 28x28.
    ClassDataset frames = makeSynthDigits(requests, 11);

    ModelRegistry registry;
    for (std::size_t n : sizes)
        registry.registerModel("digits" + std::to_string(n),
                               makeServeModel(n, depth, 7 + n));

    CsvWriter csv;
    csv.header({"size", "requests", "sequential_ms", "batched_ms",
                "speedup", "batched_rps", "mean_batch"});
    std::printf("\n%zu requests per model, depth=%zu, hw_threads=%zu\n",
                requests, depth, hw_threads);
    std::printf("%-8s %14s %12s %9s %12s %11s\n", "size", "sequential_ms",
                "batched_ms", "speedup", "batched_rps", "mean_batch");

    Json throughput_rows;
    bool parity_ok = true;
    Real best_speedup = 0;
    std::uint64_t steady_allocs = 0;
    bool alloc_measured = false;
    double direct_ms_per_request = 0; // smallest model, sequential path

    for (std::size_t n : sizes) {
        const std::string name = "digits" + std::to_string(n);
        std::shared_ptr<const DonnModel> model = registry.acquire(name);

        // Reference logits for every frame (also warms the FFT-plan and
        // transfer-function caches the engine shares).
        std::vector<std::vector<Real>> direct(requests);
        for (std::size_t i = 0; i < requests; ++i)
            direct[i] = directLogits(*model, frames.images[i]);

        BatchingConfig batching;
        batching.max_batch = 32;
        InferenceEngine engine(registry, batching);

        auto makeRequest = [&](std::size_t i) {
            InferRequest request;
            request.model = name;
            request.image = frames.images[i];
            request.id = i;
            return request;
        };

        // Warm both dispatch paths (worker arenas, modulation tables).
        for (std::size_t i = 0; i < std::min<std::size_t>(requests, 8); ++i)
            parity_ok = parity_ok &&
                        engine.inferNow(makeRequest(i)).logits == direct[i];

        auto runSequential = [&] {
            for (std::size_t i = 0; i < requests; ++i) {
                InferResponse response = engine.inferNow(makeRequest(i));
                parity_ok = parity_ok && response.logits == direct[i];
            }
        };
        double batched_mean_batch = 0;
        auto runBatched = [&] {
            std::vector<std::future<InferResponse>> futures;
            futures.reserve(requests);
            for (std::size_t i = 0; i < requests; ++i)
                futures.push_back(engine.submit(makeRequest(i)));
            double batch_sum = 0;
            for (std::size_t i = 0; i < requests; ++i) {
                InferResponse response = futures[i].get();
                parity_ok = parity_ok && response.logits == direct[i];
                batch_sum += static_cast<double>(response.batch_size);
            }
            batched_mean_batch = batch_sum / requests;
        };

        // Steady-state allocation audit on the warmed engine: a batched
        // burst must lease every buffer from the per-thread arenas and
        // never clone the shared model (which would rebuild modulation
        // tables). Only meaningful when the counter is compiled in.
        if (fieldAllocStatsEnabled() && n == sizes.front()) {
            runBatched();
            engine.drain();
            resetFieldAllocCount();
            runBatched();
            engine.drain();
            steady_allocs = fieldAllocCount();
            alloc_measured = true;
        }

        const int reps = 3;
        std::vector<double> seq_ms, batch_ms;
        for (int r = 0; r < reps; ++r) {
            WallTimer t1;
            runSequential();
            seq_ms.push_back(t1.milliseconds());
            WallTimer t2;
            runBatched();
            batch_ms.push_back(t2.milliseconds());
        }
        const double seq = medianMs(seq_ms);
        const double bat = medianMs(batch_ms);
        if (n == sizes.front())
            direct_ms_per_request = seq / static_cast<double>(requests);
        const double speedup = seq / bat;
        const double rps = 1e3 * static_cast<double>(requests) / bat;
        best_speedup = std::max<Real>(best_speedup, speedup);
        std::printf("%-8zu %14.2f %12.2f %8.2fx %12.1f %11.1f\n", n, seq,
                    bat, speedup, rps, batched_mean_batch);
        csv.rowNumeric({static_cast<double>(n),
                        static_cast<double>(requests), seq, bat, speedup,
                        rps, batched_mean_batch});
        Json row;
        row["size"] = Json(n);
        row["requests"] = Json(requests);
        row["sequential_ms"] = Json(seq);
        row["batched_ms"] = Json(bat);
        row["speedup"] = Json(speedup);
        row["batched_rps"] = Json(rps);
        row["mean_batch"] = Json(batched_mean_batch);
        throughput_rows.push(std::move(row));
    }

    // ---- socket section: closed-loop load through the HTTP front end ---
    const std::string socket_model = "digits" + std::to_string(sizes.front());
    std::shared_ptr<const DonnModel> socket_ref =
        registry.acquire(socket_model);
    BatchingConfig socket_batching;
    socket_batching.max_batch = 32;
    socket_batching.max_queued_per_model = 256;
    InferenceEngine socket_engine(registry, socket_batching);
    ServingService service(registry, socket_engine);
    HttpServer server(HttpServerConfig{},
                      [&service](HttpRequest &&request) {
                          return service.handle(std::move(request));
                      });
    server.start();

    const std::size_t socket_clients =
        std::min<std::size_t>(4, std::max<std::size_t>(1, hw_threads));
    const std::size_t socket_requests =
        requests - requests % socket_clients; // equal share per client
    std::vector<std::string> socket_bodies(socket_requests);
    for (std::size_t i = 0; i < socket_requests; ++i) {
        Json body;
        body["id"] = Json(i + 1);
        body["image"] = imageJson(frames.images[i]);
        socket_bodies[i] = body.dump();
    }

    std::atomic<std::size_t> socket_mismatches{0};
    std::atomic<std::size_t> socket_failures{0};
    std::vector<std::vector<double>> client_latency(socket_clients);
    const std::string route = "/v1/models/" + socket_model + "/infer";

    WallTimer socket_wall;
    {
        std::vector<std::thread> clients;
        for (std::size_t c = 0; c < socket_clients; ++c) {
            clients.emplace_back([&, c] {
                HttpClient client("127.0.0.1", server.port());
                const std::size_t share = socket_requests / socket_clients;
                client_latency[c].reserve(share);
                for (std::size_t k = 0; k < share; ++k) {
                    const std::size_t i = c * share + k;
                    WallTimer timer;
                    const HttpResponse response =
                        client.request("POST", route, socket_bodies[i]);
                    client_latency[c].push_back(timer.milliseconds());
                    if (response.status != 200) {
                        socket_failures.fetch_add(1);
                        continue;
                    }
                    const Json j = Json::parse(response.body);
                    const Json::Array &logits = j.at("logits").asArray();
                    const std::vector<Real> expected =
                        directLogits(*socket_ref, frames.images[i]);
                    bool same = logits.size() == expected.size();
                    for (std::size_t v = 0; same && v < expected.size();
                         ++v)
                        same = logits[v].asNumber() == expected[v];
                    if (!same)
                        socket_mismatches.fetch_add(1);
                }
            });
        }
        for (std::thread &t : clients)
            t.join();
    }
    const double socket_wall_ms = socket_wall.milliseconds();
    std::vector<double> all_latency;
    for (const std::vector<double> &per_client : client_latency)
        all_latency.insert(all_latency.end(), per_client.begin(),
                           per_client.end());
    const double socket_rps =
        socket_wall_ms > 0
            ? 1e3 * static_cast<double>(socket_requests) / socket_wall_ms
            : 0.0;
    const double socket_p50 = percentileMs(all_latency, 0.50);
    const double socket_p99 = percentileMs(all_latency, 0.99);
    const bool socket_parity_ok =
        socket_mismatches.load() == 0 && socket_failures.load() == 0;
    std::printf("\nsocket: %zu requests, %zu clients, %zu io threads -> "
                "%.1f rps, p50 %.2f ms, p99 %.2f ms\n",
                socket_requests, socket_clients, server.ioThreads(),
                socket_rps, socket_p50, socket_p99);
    std::printf("socket parity (HTTP JSON logits == direct): %s\n",
                socket_parity_ok ? "yes" : "NO");

    // ---- overload section: deterministic 4x admission overload --------
    // Quota 1 + paused engine: of 4 concurrent requests exactly one is
    // admitted; the rest shed immediately as 503 + Retry-After while the
    // server stays live. Resume serves the survivor.
    socket_engine.setModelQuota(socket_model, 1);
    socket_engine.pause();
    const std::size_t overload_clients = 4;
    std::atomic<std::size_t> overload_ok{0};
    std::atomic<std::size_t> overload_shed{0};
    std::atomic<std::size_t> overload_retry_after{0};
    std::atomic<std::size_t> overload_other{0};
    {
        std::vector<std::thread> clients;
        for (std::size_t c = 0; c < overload_clients; ++c) {
            clients.emplace_back([&, c] {
                HttpClient client("127.0.0.1", server.port());
                const HttpResponse response =
                    client.request("POST", route, socket_bodies[c]);
                if (response.status == 200) {
                    overload_ok.fetch_add(1);
                } else if (response.status == 503) {
                    overload_shed.fetch_add(1);
                    if (response.headers.count("retry-after"))
                        overload_retry_after.fetch_add(1);
                } else {
                    overload_other.fetch_add(1);
                }
            });
        }
        // Health stays live mid-overload; resume once the survivor is
        // parked and every other client has been shed.
        HttpClient probe("127.0.0.1", server.port());
        bool healthz_live = false;
        for (int i = 0; i < 5000; ++i) {
            healthz_live =
                probe.request("GET", "/healthz").status == 200;
            if (socket_engine.metrics().queueDepth() == 1 &&
                socket_engine.stats().shed >= overload_clients - 1)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        socket_engine.resume();
        for (std::thread &t : clients)
            t.join();
        if (!healthz_live)
            overload_other.fetch_add(1);
    }
    const bool overload_pass = overload_ok.load() == 1 &&
                               overload_shed.load() ==
                                   overload_clients - 1 &&
                               overload_retry_after.load() ==
                                   overload_shed.load() &&
                               overload_other.load() == 0;
    std::printf("overload (4x, quota 1): %zu served, %zu shed (503, "
                "Retry-After on %zu) -> %s\n",
                overload_ok.load(), overload_shed.load(),
                overload_retry_after.load(),
                overload_pass ? "graceful" : "NOT GRACEFUL");
    const std::size_t server_io_threads = server.ioThreads();
    server.stop();
    socket_engine.drain();

    // ---- ensemble section: fan-out over both models, fused bitwise ----
    EnsembleSpec ensemble_spec;
    ensemble_spec.name = "digits_duo";
    for (std::size_t n : sizes)
        ensemble_spec.members.push_back("digits" + std::to_string(n));
    ensemble_spec.fusion = FusionRule::MeanLogits;
    registry.registerEnsemble(ensemble_spec);
    std::vector<std::shared_ptr<const DonnModel>> duo_members;
    for (std::size_t n : sizes)
        duo_members.push_back(registry.acquire("digits" + std::to_string(n)));

    BatchingConfig ensemble_batching;
    ensemble_batching.max_batch = 32;
    InferenceEngine ensemble_engine(registry, ensemble_batching);
    auto ensembleRequest = [&](std::size_t i) {
        InferRequest request;
        request.model = "digits_duo";
        request.image = frames.images[i];
        request.id = i;
        return request;
    };
    // Warm the fan-out path, then time one full asynchronous burst.
    for (std::size_t i = 0; i < std::min<std::size_t>(requests, 8); ++i)
        ensemble_engine.inferNow(ensembleRequest(i));
    bool ensemble_parity_ok = true;
    WallTimer ensemble_wall;
    {
        std::vector<std::future<InferResponse>> futures;
        futures.reserve(requests);
        for (std::size_t i = 0; i < requests; ++i)
            futures.push_back(ensemble_engine.submit(ensembleRequest(i)));
        for (std::size_t i = 0; i < requests; ++i) {
            InferResponse response = futures[i].get();
            std::vector<std::vector<Real>> member_logits;
            for (const auto &member : duo_members)
                member_logits.push_back(
                    directLogits(*member, frames.images[i]));
            std::vector<Real> expected;
            fuseLogits(ensemble_spec.fusion, member_logits, expected);
            ensemble_parity_ok = ensemble_parity_ok &&
                                 response.status == ServeStatus::Ok &&
                                 response.fan_out == duo_members.size() &&
                                 response.logits == expected;
        }
    }
    const double ensemble_ms = ensemble_wall.milliseconds();
    ensemble_engine.drain();
    const EngineStats ensemble_stats = ensemble_engine.stats();
    const double ensemble_rps =
        ensemble_ms > 0 ? 1e3 * static_cast<double>(requests) / ensemble_ms
                        : 0.0;
    const double ensemble_mean_fan_out =
        ensemble_stats.ensembles > 0
            ? static_cast<double>(ensemble_stats.fan_out) /
                  static_cast<double>(ensemble_stats.ensembles)
            : 0.0;
    std::printf("\nensemble (%zu members, %s): %zu requests -> %.1f "
                "fused rps, fan-out %llu over %llu calls (mean %.1f)\n",
                duo_members.size(), fusionRuleName(ensemble_spec.fusion),
                requests, ensemble_rps,
                static_cast<unsigned long long>(ensemble_stats.fan_out),
                static_cast<unsigned long long>(ensemble_stats.ensembles),
                ensemble_mean_fan_out);
    std::printf("ensemble parity (fused == offline fuseLogits): %s\n",
                ensemble_parity_ok ? "yes" : "NO");

    std::printf("parity (engine == direct inferField, both modes): %s\n",
                parity_ok ? "yes" : "NO");
    if (alloc_measured)
        std::printf("steady-state field allocs (batched burst): %llu\n",
                    static_cast<unsigned long long>(steady_allocs));

    // Gates per the hardware-conditioning convention: parity (in-process
    // and over the socket) and graceful overload are unconditional; the
    // throughput and bounded-p99 gates need real cores; the alloc gate
    // needs the counter compiled in.
    const bool throughput_gate_applies = hw_threads >= 4;
    const bool throughput_gate_pass =
        !throughput_gate_applies || best_speedup >= 2.0;
    const bool alloc_gate_pass = !alloc_measured || steady_allocs == 0;
    // Bounded tail: a closed loop of K clients keeps at most K requests
    // in flight, so p99 should stay within a small multiple of one
    // direct inference (batching amortizes, the event loop adds at most
    // its poll tick). Generous bound; it catches pathologies (a stuck
    // connection, a lost wakeup), not regressions of a few percent.
    const double socket_p99_bound_ms =
        20.0 * static_cast<double>(socket_clients) * direct_ms_per_request +
        100.0;
    const bool socket_gate_applies = hw_threads >= 4;
    const bool socket_gate_pass =
        !socket_gate_applies || socket_p99 <= socket_p99_bound_ms;

    std::printf("\ngate: parity bitwise -> %s\n",
                parity_ok ? "PASS" : "FAIL");
    std::printf("gate: socket-path parity bitwise -> %s\n",
                socket_parity_ok ? "PASS" : "FAIL");
    std::printf("gate: batched >= 2x sequential at >= 4 hw threads -> %s "
                "(%.2fx%s)\n",
                throughput_gate_pass ? "PASS" : "FAIL", best_speedup,
                throughput_gate_applies ? "" : ", skipped: < 4 hw threads");
    std::printf("gate: closed-loop socket p99 <= %.1f ms at >= 4 hw "
                "threads -> %s (%.2f ms%s)\n",
                socket_p99_bound_ms, socket_gate_pass ? "PASS" : "FAIL",
                socket_p99,
                socket_gate_applies ? "" : ", skipped: < 4 hw threads");
    std::printf("gate: 4x overload degrades gracefully (503 + "
                "Retry-After, health live) -> %s\n",
                overload_pass ? "PASS" : "FAIL");
    std::printf("gate: ensemble fusion bitwise == offline -> %s\n",
                ensemble_parity_ok ? "PASS" : "FAIL");
    std::printf("gate: zero steady-state allocs (shared instance, no "
                "clones) -> %s%s\n",
                alloc_gate_pass ? "PASS" : "FAIL",
                alloc_measured ? "" : " (skipped: alloc stats compiled out)");

    bench::saveCsv(csv, "serve");
    Json artifact;
    artifact["bench"] = Json("serve");
    artifact["scale"] = Json(benchFullScale() ? "full" : "quick");
    artifact["hw_threads"] = Json(hw_threads);
    artifact["alloc_stats_compiled"] = Json(fieldAllocStatsEnabled());
    artifact["throughput"] = std::move(throughput_rows);

    Json socket_section;
    socket_section["requests"] = Json(socket_requests);
    socket_section["clients"] = Json(socket_clients);
    socket_section["rps"] = Json(socket_rps);
    socket_section["p50_ms"] = Json(socket_p50);
    socket_section["p99_ms"] = Json(socket_p99);
    socket_section["mismatches"] = Json(socket_mismatches.load());
    socket_section["failures"] = Json(socket_failures.load());
    artifact["socket"] = std::move(socket_section);

    Json overload_section;
    overload_section["clients"] = Json(overload_clients);
    overload_section["served"] = Json(overload_ok.load());
    overload_section["shed_503"] = Json(overload_shed.load());
    overload_section["retry_after_seen"] =
        Json(overload_retry_after.load());
    artifact["overload"] = std::move(overload_section);

    Json ensemble_section;
    ensemble_section["model"] = Json(ensemble_spec.name);
    Json ensemble_members;
    for (const std::string &member : ensemble_spec.members)
        ensemble_members.push(Json(member));
    ensemble_section["members"] = std::move(ensemble_members);
    ensemble_section["fusion"] =
        Json(std::string(fusionRuleName(ensemble_spec.fusion)));
    ensemble_section["requests"] = Json(requests);
    ensemble_section["fused_rps"] = Json(ensemble_rps);
    ensemble_section["ensembles"] =
        Json(static_cast<std::size_t>(ensemble_stats.ensembles));
    ensemble_section["fan_out"] =
        Json(static_cast<std::size_t>(ensemble_stats.fan_out));
    ensemble_section["mean_fan_out"] = Json(ensemble_mean_fan_out);
    artifact["ensemble"] = std::move(ensemble_section);

    // Resolved execution shape of this run (not the configured knobs):
    // how many acceptor/IO threads the server actually span up and how
    // many workers the engine's pool fans batches across.
    Json execution;
    execution["io_threads"] = Json(server_io_threads);
    execution["engine_workers"] =
        Json(ThreadPool::global().workerCount());
    execution["hw_threads"] = Json(hw_threads);
    execution["socket_clients"] = Json(socket_clients);
    artifact["execution"] = std::move(execution);

    Json gates;
    gates["parity_pass"] = Json(parity_ok);
    gates["socket_parity_pass"] = Json(socket_parity_ok);
    gates["throughput_gate_applies"] = Json(throughput_gate_applies);
    gates["best_speedup"] = Json(best_speedup);
    gates["throughput_gate_pass"] = Json(throughput_gate_pass);
    gates["socket_gate_applies"] = Json(socket_gate_applies);
    gates["socket_p99_bound_ms"] = Json(socket_p99_bound_ms);
    gates["socket_gate_pass"] = Json(socket_gate_pass);
    gates["overload_gate_pass"] = Json(overload_pass);
    gates["ensemble_parity_pass"] = Json(ensemble_parity_ok);
    gates["alloc_gate_applies"] = Json(alloc_measured);
    gates["steady_state_field_allocs"] =
        Json(static_cast<std::size_t>(steady_allocs));
    gates["alloc_gate_pass"] = Json(alloc_gate_pass);
    artifact["gates"] = std::move(gates);
    const std::string json_path = bench::resultsDir() + "/BENCH_serve.json";
    if (artifact.save(json_path))
        std::printf("[json] %s\n", json_path.c_str());

    return (parity_ok && socket_parity_ok && ensemble_parity_ok &&
            throughput_gate_pass && socket_gate_pass && overload_pass &&
            alloc_gate_pass)
               ? 0
               : 1;
}
