/**
 * @file
 * Streaming-dataset benchmark: decode/compute overlap of the
 * double-buffered prefetcher.
 *
 * Packs a synthesized digits dataset into equal shards, then drives one
 * epoch of the ShardStream staging protocol per prefetch depth with a
 * calibrated per-shard consume load (spun to roughly one shard's decode
 * cost, the regime double buffering is designed for). With prefetch=0
 * every shard decodes synchronously inside stageRange; with prefetch=1
 * the pool decodes shard t+1 while the main thread consumes shard t, so
 * the epoch approaches max(decode, consume) per shard instead of their
 * sum.
 *
 * Emits bench_results/BENCH_data.json. Gate: prefetch=1 over prefetch=0
 * epoch speedup >= 1.3x, applied only on hosts with >= 4 hardware
 * threads (overlap needs a real spare core; single-CPU runners report
 * without failing, per the hardware-conditioning convention).
 */
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "data/shard.hpp"
#include "data/stream.hpp"
#include "data/synth_digits.hpp"
#include "utils/json.hpp"
#include "utils/thread_pool.hpp"
#include "utils/timer.hpp"

using namespace lightridge;

namespace {

/** Consume every staged sample once; the simulated train-step load. */
Real
consumeRange(const ShardedClassSource &source, std::size_t lo,
             std::size_t hi, const std::vector<std::size_t> &order)
{
    Real sum = 0;
    for (std::size_t pos = lo; pos < hi; ++pos) {
        const RealMap &image = source.image(order[pos]);
        for (std::size_t p = 0; p < image.size(); ++p)
            sum += image[p];
    }
    return sum;
}

/**
 * One epoch over the stream: stage each shard-sized batch, then spin the
 * consume load `reps` times. Returns the wall seconds (checksum printed
 * so the work cannot be optimized away).
 */
double
epochSeconds(ShardedClassSource &source, std::size_t shard_samples,
             std::size_t reps, const std::vector<std::size_t> &order,
             Real *checksum)
{
    WallTimer timer;
    source.beginEpoch(&order);
    Real sum = 0;
    for (std::size_t lo = 0; lo < order.size(); lo += shard_samples) {
        const std::size_t hi =
            std::min(lo + shard_samples, order.size());
        source.stageRange(lo, hi);
        for (std::size_t r = 0; r < reps; ++r)
            sum += consumeRange(source, lo, hi, order);
    }
    source.endEpoch();
    *checksum += sum;
    return timer.seconds();
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    (void)args;
    bench::banner("bench_data: streaming prefetch overlap",
                  "out-of-core training input pipeline");

    const std::size_t hw_threads = ThreadPool::global().workerCount();
    const std::size_t shards = scaled(6, 16);
    const std::size_t shard_samples = scaled(48, 192);
    const std::size_t samples = shards * shard_samples;

    const std::string dir = bench::resultsDir() + "/data_shards";
    std::filesystem::remove_all(dir);
    ClassDataset data = makeSynthDigits(samples, 7);
    PackOptions options;
    options.shard_samples = shard_samples;
    DatasetManifest manifest = writeShards(data, dir, options);
    std::uint64_t shard_bytes = manifest.shards[0].bytes;
    std::printf("dataset: %zu samples in %zu shards (%.1f KiB payload "
                "each)\n",
                samples, shards, shard_bytes / 1024.0);

    std::vector<std::size_t> order(samples);
    std::iota(order.begin(), order.end(), std::size_t{0});
    Real checksum = 0;

    // Calibrate the consume load to ~one shard's decode cost: time a
    // bare synchronous epoch (decode only), then a single consume pass,
    // and size reps so overlap has decode-scale work to hide behind.
    double decode_s = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        ShardedClassSource bare(manifest, 0);
        decode_s = std::min(
            decode_s, epochSeconds(bare, shard_samples, 0, order,
                                   &checksum));
    }
    double consume_once_s;
    {
        ShardedClassSource probe(manifest, 0);
        WallTimer timer;
        probe.beginEpoch(&order);
        probe.stageRange(0, shard_samples);
        timer.reset();
        checksum += consumeRange(probe, 0, shard_samples, order);
        consume_once_s = timer.seconds();
        probe.endEpoch();
    }
    const double decode_per_shard =
        decode_s / static_cast<double>(shards);
    const std::size_t reps = std::max<std::size_t>(
        1, static_cast<std::size_t>(decode_per_shard /
                                    std::max(consume_once_s, 1e-9)));
    std::printf("calibration: decode %.2f ms/shard, consume pass %.2f ms "
                "-> %zu reps/shard\n",
                1e3 * decode_per_shard, 1e3 * consume_once_s, reps);

    CsvWriter csv;
    csv.header({"prefetch", "epoch_ms", "bytes_read", "speedup_vs_sync"});
    Json rows;
    double sync_ms = 0;
    double best_speedup = 0;
    for (std::size_t prefetch : {std::size_t{0}, std::size_t{1},
                                 std::size_t{2}}) {
        ShardedClassSource source(manifest, prefetch);
        double seconds = 1e300;
        for (int rep = 0; rep < 3; ++rep)
            seconds = std::min(
                seconds, epochSeconds(source, shard_samples, reps, order,
                                      &checksum));
        const double ms = 1e3 * seconds;
        if (prefetch == 0)
            sync_ms = ms;
        const double speedup = prefetch == 0 ? 1.0 : sync_ms / ms;
        if (prefetch > 0)
            best_speedup = std::max(best_speedup, speedup);
        std::printf("prefetch=%zu: %8.1f ms/epoch  %8.2fx vs sync  "
                    "(%.1f MiB read)\n",
                    prefetch, ms, speedup,
                    source.bytesRead() / (1024.0 * 1024.0));
        csv.rowNumeric({static_cast<double>(prefetch), ms,
                        static_cast<double>(source.bytesRead()), speedup});
        Json row;
        row["prefetch"] = Json(prefetch);
        row["epoch_ms"] = Json(ms);
        row["bytes_read"] = Json(source.bytesRead());
        row["speedup_vs_sync"] = Json(speedup);
        rows.push(std::move(row));
    }

    const bool gate_applies = hw_threads >= 4;
    const bool gate_pass = !gate_applies || best_speedup >= 1.3;
    std::printf("\ngate: prefetch overlap >= 1.3x vs synchronous at >= 4 "
                "hw threads -> %s (%.2fx%s)\n",
                gate_pass ? "PASS" : "FAIL", best_speedup,
                gate_applies ? "" : ", skipped: < 4 hw threads");
    std::printf("checksum: %.6g\n", static_cast<double>(checksum));

    bench::saveCsv(csv, "data_stream");
    Json artifact;
    artifact["bench"] = Json("data");
    artifact["scale"] = Json(benchFullScale() ? "full" : "quick");
    artifact["hw_threads"] = Json(hw_threads);
    artifact["shards"] = Json(shards);
    artifact["shard_samples"] = Json(shard_samples);
    artifact["shard_bytes"] = Json(shard_bytes);
    artifact["consume_reps"] = Json(reps);
    artifact["epochs"] = std::move(rows);
    Json gates;
    gates["prefetch_best_speedup"] = Json(best_speedup);
    gates["gate_applies"] = Json(gate_applies);
    gates["gate_pass"] = Json(gate_pass);
    artifact["gates"] = std::move(gates);
    const std::string json_path = bench::resultsDir() + "/BENCH_data.json";
    if (artifact.save(json_path))
        std::printf("[json] %s\n", json_path.c_str());
    std::filesystem::remove_all(dir);

    return gate_pass ? 0 : 1;
}
