/**
 * @file
 * Table 1 reproduction: framework comparison for DONN compilation.
 *
 * Measures the pre-fabrication emulation runtime of a 5-layer DONN on the
 * LightRidge kernels vs the LightPipes-like baseline (same machine, same
 * physics), and prints the feature matrix the paper tabulates (optics
 * kernels, DSE support, LoC ratios - LoC ratios quoted from the paper's
 * measurement of a 5-layer DONN implementation effort).
 */
#include <cstdio>

#include "baseline/lightpipes_like.hpp"
#include "bench_common.hpp"
#include "core/model.hpp"
#include "data/synth_digits.hpp"
#include "utils/timer.hpp"

using namespace lightridge;

int
main()
{
    bench::banner("Table 1: DONN framework comparison",
                  "paper Table 1: runtime days -> mins-hrs");

    const std::size_t n = scaled<std::size_t>(100, 200);
    const std::size_t depth = 5;
    const int reps = scaled(3, 5);
    const Real pitch = 36e-6, lambda = 532e-9;
    const Real z = idealDistanceHalfCone(Grid{n, pitch}, lambda);

    // Shared workload: one input, 5 random phase masks.
    Rng rng(3);
    RealMap input(n, n);
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = rng.uniform(0, 1);
    std::vector<RealMap> phases;
    for (std::size_t l = 0; l < depth; ++l) {
        RealMap phase(n, n);
        for (std::size_t i = 0; i < phase.size(); ++i)
            phase[i] = rng.uniform(0, kTwoPi);
        phases.push_back(phase);
    }

    // LightRidge emulation (planned, cached, fused).
    SystemSpec spec;
    spec.size = n;
    spec.pixel = pitch;
    spec.distance = z;
    DonnModel model(spec, Laser{});
    for (std::size_t l = 0; l < depth; ++l) {
        auto layer =
            std::make_unique<DiffractiveLayer>(model.hopPropagator());
        layer->phase() = phases[l];
        model.addLayer(std::move(layer));
    }
    Field encoded = Field::fromAmplitude(input);
    model.forwardField(encoded, false); // warm the plans
    WallTimer lr_timer;
    for (int r = 0; r < reps; ++r)
        model.forwardField(encoded, false);
    double lr_ms = lr_timer.milliseconds() / reps;

    // LightPipes-like emulation (plan-less, uncached, unfused).
    WallTimer lp_timer;
    for (int r = 0; r < reps; ++r)
        baseline::lpDonnForward(input, phases, pitch, lambda, z);
    double lp_ms = lp_timer.milliseconds() / reps;

    std::printf("\n5-layer %zux%zu DONN emulation (one forward pass):\n", n,
                n);
    std::printf("%-28s %-8s %-5s %-9s %-10s %s\n", "framework",
                "optics", "DSE", "LoC(val)", "LoC(train)", "runtime/pass");
    std::printf("%-28s %-8s %-5s %-9s %-10s %.2f ms\n", "LightRidge (this)",
                "yes", "yes", "1x", "1x", lr_ms);
    std::printf("%-28s %-8s %-5s %-9s %-10s %.2f ms (%.1fx slower)\n",
                "LightPipes-like baseline", "yes", "no", "2x", "n/a", lp_ms,
                lp_ms / lr_ms);
    std::printf("%-28s %-8s %-5s %-9s %-10s %s\n",
                "customized PyTorch/TF*", "no", "no", "20x", "50x",
                "days (paper)");
    std::printf("* row quoted from the paper; not reproducible offline.\n");
    std::printf("\npaper shape: LightRidge mins-hrs vs LightPipes days "
                "(ratio >> 1). measured ratio: %.1fx\n", lp_ms / lr_ms);

    CsvWriter csv;
    csv.header({"framework", "runtime_ms_per_pass", "ratio"});
    csv.row({"lightridge", std::to_string(lr_ms), "1"});
    csv.row({"lightpipes_like", std::to_string(lp_ms),
             std::to_string(lp_ms / lr_ms)});
    bench::saveCsv(csv, "table1_frameworks");
    return 0;
}
