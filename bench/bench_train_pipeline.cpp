/**
 * @file
 * Training hot-path benchmark for the zero-allocation workspace engine
 * and the pipelined data-parallel session.
 *
 * Emits bench_results/BENCH_train.json with two sections:
 *
 *  - "workspace": steady-state single-thread train-step throughput
 *    (samples/sec) of the in-place workspace pipeline versus a faithful
 *    re-implementation of the pre-workspace allocating path (per-sample
 *    source-profile recompute, fresh pad/crop/return buffers and cache
 *    copies per layer — exactly the churn the workspace engine removes).
 *    Both paths compute bitwise-identical losses, which the harness
 *    asserts. Gate: >= 1.2x at the best measured size, single-thread, so
 *    it applies on every host.
 *  - "pipeline": epoch wall time of TrainConfig::pipeline on vs off at
 *    several worker counts. The gate (no regression, equal losses) only
 *    applies when the host has >= 4 hardware threads; single-CPU runners
 *    report without failing, per the hardware-conditioning convention.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/model.hpp"
#include "core/session.hpp"
#include "data/synth_digits.hpp"
#include "optics/laser.hpp"
#include "utils/json.hpp"
#include "utils/thread_pool.hpp"
#include "utils/timer.hpp"

using namespace lightridge;

namespace {

struct BenchModel
{
    DonnModel model;
    std::vector<RealMap> images;
    std::vector<int> labels;
};

BenchModel
makeBenchModel(std::size_t n, std::size_t depth, std::size_t samples)
{
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = idealDistanceHalfCone(Grid{n, 36e-6}, 532e-9);
    Laser laser;
    laser.profile = BeamProfile::Gaussian; // realistic non-trivial beam
    Rng rng(7);
    DonnModel model = ModelBuilder(spec, laser)
                          .diffractiveLayers(depth, 1.0, &rng)
                          .detectorGrid(10, std::max<std::size_t>(n / 8, 1))
                          .build();
    std::vector<RealMap> images;
    std::vector<int> labels;
    for (std::size_t s = 0; s < samples; ++s) {
        RealMap image(n, n);
        for (std::size_t i = 0; i < image.size(); ++i)
            image[i] = rng.uniform(0, 1);
        images.push_back(std::move(image));
        labels.push_back(static_cast<int>(s % 10));
    }
    return BenchModel{std::move(model), std::move(images),
                      std::move(labels)};
}

/**
 * One train step over every sample through the in-place workspace
 * pipeline (what ClassificationTask::sampleStep runs). Returns the loss
 * sum for the cross-check against the allocating path.
 */
Real
workspaceSweep(BenchModel &bm)
{
    PropagationWorkspace &workspace = PropagationWorkspace::threadLocal();
    const Grid grid = bm.model.spec().grid();
    Real loss_sum = 0;
    for (std::size_t s = 0; s < bm.images.size(); ++s) {
        WorkspaceField u(workspace, grid.n, grid.n);
        bm.model.encodeInto(bm.images[s], u.get());
        std::vector<Real> logits =
            bm.model.forwardLogitsInPlace(u.get(), true, workspace);
        LossResult loss = classificationLoss(LossKind::SoftmaxMse, logits,
                                             bm.labels[s]);
        loss_sum += loss.value;
        bm.model.backwardFromLogitsInPlace(loss.dlogits, u.get(),
                                           workspace);
    }
    bm.model.zeroGrad();
    return loss_sum;
}

/**
 * Faithful re-creation of the pre-workspace per-sample train step: the
 * source profile is recomputed per encode, every layer allocates its
 * diffracted/output fields and copies them into activation caches, and
 * the backward pass allocates a fresh gradient field per hop — the exact
 * data flow (and allocation pattern) of the seed DiffractiveLayer /
 * DonnModel code. Numerics are bitwise-identical to the workspace path.
 */
struct AllocatingLayerCache
{
    Field diffracted;
    Field out;
    RealMap phase_grad;
};

Real
allocatingSweep(BenchModel &bm, std::vector<AllocatingLayerCache> &caches)
{
    const Grid grid = bm.model.spec().grid();
    const Laser &laser = bm.model.laser();
    const Propagator &prop = *bm.model.hopPropagator();
    const std::size_t depth = bm.model.depth();
    caches.resize(depth);
    Real loss_sum = 0;

    for (std::size_t s = 0; s < bm.images.size(); ++s) {
        // Seed encode: profile transcendentals evaluated per sample.
        Field input = encodeInput(bm.images[s], laser, grid);

        // Forward: fresh buffers + cache copies per layer, as the
        // pre-workspace DiffractiveLayer::forward did.
        Field u = input;
        for (std::size_t l = 0; l < depth; ++l) {
            auto *layer =
                dynamic_cast<DiffractiveLayer *>(bm.model.layer(l));
            // Baseline reproduces the pre-workspace allocating path
            // on purpose.
            // lint:allow(deprecated-api)
            Field diffracted = prop.forward(u);
            Field out(grid.n, grid.n);
            const RealMap &phase = layer->phase();
            for (std::size_t i = 0; i < out.size(); ++i)
                out[i] = diffracted[i] * std::polar(Real(1), phase[i]);
            caches[l].diffracted = std::move(diffracted);
            caches[l].out = out;
            u = std::move(out);
        }
        Field det = prop.forward(u); // lint:allow(deprecated-api)

        std::vector<Real> logits = bm.model.detector().forward(det);
        LossResult loss = classificationLoss(LossKind::SoftmaxMse, logits,
                                             bm.labels[s]);
        loss_sum += loss.value;

        // Backward: fresh gradient field per hop, as the seed did.
        Field g = bm.model.detector().backward(loss.dlogits);
        g = prop.adjoint(g); // lint:allow(deprecated-api)
        for (std::size_t l = depth; l-- > 0;) {
            auto *layer =
                dynamic_cast<DiffractiveLayer *>(bm.model.layer(l));
            const RealMap &phase = layer->phase();
            RealMap &pg = caches[l].phase_grad;
            if (pg.size() != phase.size())
                pg = RealMap(grid.n, grid.n);
            for (std::size_t i = 0; i < pg.size(); ++i) {
                Complex tangent = kJ * caches[l].out[i];
                pg[i] += std::real(std::conj(g[i]) * tangent);
            }
            Field grad_diff(grid.n, grid.n);
            for (std::size_t i = 0; i < grad_diff.size(); ++i)
                grad_diff[i] = g[i] * std::polar(Real(1), -phase[i]);
            g = prop.adjoint(grad_diff); // lint:allow(deprecated-api)
        }
    }
    for (AllocatingLayerCache &cache : caches)
        cache.phase_grad.fill(0);
    return loss_sum;
}

double
medianMs(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

} // namespace

int
main()
{
    bench::banner("Train pipeline: workspace reuse + overlapped replicas",
                  "ROADMAP perf: zero-alloc hot path, merge/forward overlap");

    const std::size_t depth = 5;
    const std::size_t sweep_samples = scaled<std::size_t>(12, 24);
    std::vector<std::size_t> sizes =
        benchFullScale() ? std::vector<std::size_t>{32, 64, 96, 128}
                         : std::vector<std::size_t>{32, 64, 96};

    CsvWriter csv;
    csv.header({"size", "allocating_ms", "workspace_ms", "speedup",
                "workspace_samples_per_sec"});

    std::printf("\nsingle-thread steady-state train step, depth=%zu "
                "(per-sample ms)\n",
                depth);
    std::printf("%-8s %14s %14s %9s %14s\n", "size", "allocating_ms",
                "workspace_ms", "speedup", "samples/sec");

    Json workspace_rows;
    Real best_speedup = 0;
    bool losses_identical = true;
    for (std::size_t n : sizes) {
        BenchModel bm = makeBenchModel(n, depth, sweep_samples);
        std::vector<AllocatingLayerCache> caches;

        // Warm both paths (plans, kernels, caches, arena) and pin the
        // bitwise cross-check before timing.
        Real ws_loss = workspaceSweep(bm);
        Real alloc_loss = allocatingSweep(bm, caches);
        bm.model.zeroGrad();
        losses_identical = losses_identical && (ws_loss == alloc_loss);

        const int reps = n <= 64 ? 5 : 3;
        std::vector<double> ws_ms, alloc_ms;
        for (int r = 0; r < reps; ++r) {
            WallTimer t1;
            workspaceSweep(bm);
            ws_ms.push_back(t1.milliseconds());
            WallTimer t2;
            allocatingSweep(bm, caches);
            alloc_ms.push_back(t2.milliseconds());
            bm.model.zeroGrad();
        }
        double ws_per_sample = medianMs(ws_ms) / sweep_samples;
        double alloc_per_sample = medianMs(alloc_ms) / sweep_samples;
        double speedup = alloc_per_sample / ws_per_sample;
        double samples_per_sec = 1e3 / ws_per_sample;
        best_speedup = std::max<Real>(best_speedup, speedup);
        std::printf("%-8zu %14.3f %14.3f %8.2fx %14.1f\n", n,
                    alloc_per_sample, ws_per_sample, speedup,
                    samples_per_sec);

        csv.rowNumeric({static_cast<double>(n), alloc_per_sample,
                        ws_per_sample, speedup, samples_per_sec});
        Json row;
        row["size"] = Json(n);
        row["depth"] = Json(depth);
        row["allocating_ms_per_sample"] = Json(alloc_per_sample);
        row["workspace_ms_per_sample"] = Json(ws_per_sample);
        row["speedup"] = Json(speedup);
        row["workspace_samples_per_sec"] = Json(samples_per_sec);
        row["loss_bitwise_identical"] = Json(ws_loss == alloc_loss);
        workspace_rows.push(std::move(row));
    }
    std::printf("paths bitwise-identical: %s\n",
                losses_identical ? "yes" : "NO");

    // ----------------------------------------------------------------
    // Pipelined session: TrainConfig::pipeline on vs off. The overlap
    // hides the main thread's gradient merge + Adam step behind the next
    // batch's forwards, so the win grows with parameter count and worker
    // count; on oversubscribed or single-CPU hosts it degrades to the
    // synchronous schedule.
    // ----------------------------------------------------------------
    const std::size_t hw_threads = ThreadPool::global().workerCount();
    const std::size_t train_n = 48;
    const std::size_t train_depth = 3;
    ClassDataset train = makeSynthDigits(scaled<std::size_t>(48, 96), 1);

    auto runSession = [&](std::size_t workers, bool pipeline) {
        SystemSpec spec;
        spec.size = train_n;
        spec.pixel = 36e-6;
        spec.distance =
            idealDistanceHalfCone(Grid{train_n, 36e-6}, 532e-9);
        Rng rng(3);
        DonnModel model = ModelBuilder(spec, Laser{})
                              .diffractiveLayers(train_depth, 1.0, &rng)
                              .detectorGrid(10, train_n / 8)
                              .build();
        TrainConfig cfg;
        cfg.epochs = 2;
        cfg.batch = 24;
        cfg.lr = 0.05;
        cfg.workers = workers;
        cfg.pipeline = pipeline;
        ClassificationTask task(model, train);
        return Session(task, cfg).fit();
    };

    std::printf("\npipelined session (pipeline on vs off, n=%zu depth=%zu, "
                "hw_threads=%zu)\n",
                train_n, train_depth, hw_threads);
    std::printf("%-10s %12s %12s %9s %12s\n", "workers", "sync_ms",
                "pipeline_ms", "speedup", "loss_match");

    Json pipeline_rows;
    Real best_pipeline_speedup = 0;
    bool pipeline_losses_match = true;
    // workers = hw-1 leaves a core free for the merging main thread;
    // workers = 4 shows the fully subscribed schedule. The gate takes
    // the best of two timing repetitions per config so one noisy run on
    // a shared CI box cannot fail it.
    std::vector<std::size_t> worker_counts{4};
    if (hw_threads >= 4 && hw_threads - 1 != 4)
        worker_counts.push_back(hw_threads - 1);
    for (std::size_t workers : worker_counts) {
        double sync_ms = 1e300, pipe_ms = 1e300;
        Real sync_loss = 0, pipe_loss = 0;
        bool match = true;
        for (int rep = 0; rep < 2; ++rep) {
            auto sync = runSession(workers, false);
            auto pipelined = runSession(workers, true);
            sync_ms = std::min(
                sync_ms, 1e3 * std::min(sync[0].seconds,
                                        sync[1].seconds));
            pipe_ms = std::min(
                pipe_ms, 1e3 * std::min(pipelined[0].seconds,
                                        pipelined[1].seconds));
            sync_loss = sync.back().train_loss;
            pipe_loss = pipelined.back().train_loss;
            match = match && std::abs(pipe_loss - sync_loss) <=
                                 0.5 * std::abs(sync_loss) + 0.05;
        }
        double speedup = sync_ms / pipe_ms;
        best_pipeline_speedup =
            std::max<Real>(best_pipeline_speedup, speedup);
        pipeline_losses_match = pipeline_losses_match && match;
        std::printf("%-10zu %12.1f %12.1f %8.2fx %12s\n", workers, sync_ms,
                    pipe_ms, speedup, match ? "yes" : "NO");
        Json row;
        row["workers"] = Json(workers);
        row["sync_ms"] = Json(sync_ms);
        row["pipeline_ms"] = Json(pipe_ms);
        row["speedup"] = Json(speedup);
        row["sync_loss"] = Json(sync_loss);
        row["pipeline_loss"] = Json(pipe_loss);
        row["loss_match"] = Json(match);
        pipeline_rows.push(std::move(row));
    }

    // Gates. Workspace reuse is single-thread, so it applies everywhere;
    // the pipeline gate needs real cores to mean anything.
    const bool workspace_gate_pass =
        best_speedup >= 1.2 && losses_identical;
    const bool pipeline_gate_applies = hw_threads >= 4;
    const bool pipeline_gate_pass =
        !pipeline_gate_applies ||
        (best_pipeline_speedup >= 0.9 && pipeline_losses_match);

    std::printf("\ngate: workspace >= 1.2x single-thread (best size), "
                "bitwise losses -> %s (%.2fx)\n",
                workspace_gate_pass ? "PASS" : "FAIL", best_speedup);
    std::printf("gate: pipeline no-regression + equal losses at >= 4 hw "
                "threads -> %s (%.2fx%s)\n",
                pipeline_gate_pass ? "PASS" : "FAIL",
                best_pipeline_speedup,
                pipeline_gate_applies ? ""
                                      : ", skipped: < 4 hw threads");

    bench::saveCsv(csv, "train_pipeline");
    Json artifact;
    artifact["bench"] = Json("train_pipeline");
    artifact["scale"] = Json(benchFullScale() ? "full" : "quick");
    artifact["hw_threads"] = Json(hw_threads);
    artifact["alloc_stats_compiled"] = Json(fieldAllocStatsEnabled());
    artifact["workspace"] = std::move(workspace_rows);
    artifact["pipeline"] = std::move(pipeline_rows);
    Json gates;
    gates["workspace_best_speedup"] = Json(best_speedup);
    gates["workspace_losses_bitwise"] = Json(losses_identical);
    gates["workspace_gate_pass"] = Json(workspace_gate_pass);
    gates["pipeline_gate_applies"] = Json(pipeline_gate_applies);
    gates["pipeline_best_speedup"] = Json(best_pipeline_speedup);
    gates["pipeline_losses_match"] = Json(pipeline_losses_match);
    gates["pipeline_gate_pass"] = Json(pipeline_gate_pass);
    artifact["gates"] = std::move(gates);
    const std::string json_path = bench::resultsDir() + "/BENCH_train.json";
    if (artifact.save(json_path))
        std::printf("[json] %s\n", json_path.c_str());

    return (workspace_gate_pass && pipeline_gate_pass) ? 0 : 1;
}
