#!/usr/bin/env python3
"""LightRidge repo-invariant linter.

Enforces project conventions that neither the compiler nor clang-tidy
checks, with file/line diagnostics:

  serve-steady-clock   std::chrono::system_clock in src/serve/ timing code
                       (SLA deadlines must use the monotonic clock; wall
                       time jumps under NTP slew and breaks latency math).
  banned-function      rand()/strtok()/gets()/printf() in library code:
                       non-reentrant, or bypasses the logging layer.
  deprecated-api       by-value propagation entry points (`x->forward(...)`
                       on a propagation object, `submitLegacy`) outside the
                       pinned compatibility shims and tests. New code uses
                       the zero-allocation *Into / *InPlace APIs (PR 4) and
                       the v2 submit() API.
  zero-alloc-hot-path  naked `Field` construction inside *Into / *InPlace
                       function bodies, inside the perturbation-sampler
                       hot path (fillHopPerturbation, samplePerturbation,
                       PerturbationSampler::sample/sampleHop, redrawn every
                       training batch), or inside the streaming-prefetcher
                       decode path (stageRange, stageIndices; decodeShardInto
                       is covered by the *Into convention, runs once per
                       shard per epoch) - these are the zero-allocation
                       steady-state paths; buffers must come from the
                       PropagationWorkspace, ensureFieldShape, or member
                       caches.
  include-guard        headers must start with `#pragma once` (exactly one).

Escape hatch: append `// lint:allow(<rule-id>)` to the offending line (or
put it on the line directly above) with a justification nearby.

Usage:
  tools/lint/run_lint.py [--json REPORT] [PATH...]   (default: src tests bench)

Exit codes: 0 = clean, 1 = violations found, 2 = usage/IO error.
"""

import argparse
import json
import os
import re
import sys

C_EXTENSIONS = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh"}
HEADER_EXTENSIONS = {".hpp", ".h", ".hh"}

# Directories never linted (fixture corpus contains deliberate violations).
SKIP_DIR_PARTS = {"fixtures", "build", ".git", "third_party"}

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")


def find_repo_root(start):
    """Nearest ancestor containing .git, else the start directory."""
    path = os.path.abspath(start)
    while True:
        if os.path.isdir(os.path.join(path, ".git")):
            return path
        parent = os.path.dirname(path)
        if parent == path:
            return os.path.abspath(start)
        path = parent


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def as_dict(self):
        return {
            "rule": self.rule,
            "file": self.path,
            "line": self.line,
            "message": self.message,
        }

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def mask_comments_and_strings(text):
    """Replace comment/string contents with spaces, preserving newlines.

    Keeps every byte offset stable so line/column math on the masked text
    maps 1:1 onto the original file. Good enough for a convention linter:
    no raw-string or trigraph support (the codebase uses neither).
    """
    out = list(text)
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = STRING
                i += 1
                continue
            if c == "'":
                state = CHAR
                i += 1
                continue
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
            elif c != "\n":
                out[i] = " "
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c != "\n":
                out[i] = " "
        elif state in (STRING, CHAR):
            quote = '"' if state == STRING else "'"
            if c == "\\":
                out[i] = " "
                if nxt and nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                state = NORMAL
            elif c != "\n":
                out[i] = " "
        i += 1
    return "".join(out)


class FileContext:
    """One parsed source file: raw lines + comment/string-masked lines."""

    def __init__(self, path, rel_path, text):
        self.path = path
        self.rel = rel_path
        self.raw_lines = text.splitlines()
        self.masked_lines = mask_comments_and_strings(text).splitlines()
        self.allows = self._collect_allows()

    def _collect_allows(self):
        """Map line number -> set of rule ids allowed on that line."""
        allows = {}
        for idx, line in enumerate(self.raw_lines, start=1):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            rules = {r.strip() for r in m.group(1).split(",")}
            # The directive covers its own line and the one below, so it
            # can ride on the statement or stand alone above it.
            allows.setdefault(idx, set()).update(rules)
            allows.setdefault(idx + 1, set()).update(rules)
        return allows

    def allowed(self, rule, line):
        return rule in self.allows.get(line, set())


def rel_parts(ctx):
    return ctx.rel.replace(os.sep, "/")


# --------------------------------------------------------------------------
# Rules. Each takes a FileContext and yields Violation objects.
# --------------------------------------------------------------------------

SYSTEM_CLOCK_RE = re.compile(r"\bsystem_clock\b")


def rule_serve_steady_clock(ctx):
    """system_clock in src/serve/: SLA math needs a monotonic clock."""
    if not rel_parts(ctx).startswith("src/serve/"):
        return
    for idx, line in enumerate(ctx.masked_lines, start=1):
        if SYSTEM_CLOCK_RE.search(line):
            yield Violation(
                "serve-steady-clock", ctx.rel, idx,
                "std::chrono::system_clock in serving code; deadlines and "
                "latency accounting must use std::chrono::steady_clock")


BANNED_FUNCTIONS = [
    (re.compile(r"(?<![A-Za-z0-9_])rand\s*\("),
     "rand() shares hidden global state; use lightridge::Rng"),
    (re.compile(r"(?<![A-Za-z0-9_])strtok\s*\("),
     "strtok() is not reentrant; use string_view parsing or strtok_r"),
    (re.compile(r"(?<![A-Za-z0-9_])gets\s*\("),
     "gets() cannot bound its write; use fgets or iostreams"),
    (re.compile(r"(?<![A-Za-z0-9_])printf\s*\("),
     "printf in library code bypasses the logging layer; use LR_LOG"),
]

# Tool entry points (not part of the library) may talk to stdout directly.
BANNED_FUNCTION_EXEMPT_FILES = {
    "src/api/run_main.cpp",
    "src/serve/serve_main.cpp",
    "src/data/data_main.cpp",
}


def rule_banned_function(ctx):
    rel = rel_parts(ctx)
    if not rel.startswith("src/"):
        return
    if rel in BANNED_FUNCTION_EXEMPT_FILES:
        return
    for idx, line in enumerate(ctx.masked_lines, start=1):
        for pattern, why in BANNED_FUNCTIONS:
            if pattern.search(line):
                yield Violation("banned-function", ctx.rel, idx, why)


# Receivers whose .forward()/.adjoint() are NOT propagation entry points:
# FFT plans (FftPlan::forward is the transform itself) and the detector
# head (Detector::forward is its canonical training-path name).
DEPRECATED_API_RECEIVER_ALLOW = re.compile(
    r"(fft|plan|inner|detector)", re.IGNORECASE)

# The pinned by-value compatibility shims themselves (PR 4 / v1 API): the
# deprecated entry points are *defined* (and delegated from) here.
DEPRECATED_API_EXEMPT_FILES = {
    "src/serve/engine.hpp",
    "src/serve/engine.cpp",
}

DEPRECATED_CALL_RE = re.compile(
    r"(?P<recv>[A-Za-z_][A-Za-z0-9_]*)\s*(?:\.|->)\s*"
    r"(?P<meth>forward|adjoint)\s*\(")
SUBMIT_LEGACY_RE = re.compile(r"\bsubmitLegacy\s*\(")

DEPRECATED_API_SCOPES = ("src/core/", "src/optics/", "src/hardware/",
                         "src/serve/", "bench/")


def rule_deprecated_api(ctx):
    rel = rel_parts(ctx)
    if not rel.startswith(DEPRECATED_API_SCOPES):
        return
    if rel in DEPRECATED_API_EXEMPT_FILES:
        return
    for idx, line in enumerate(ctx.masked_lines, start=1):
        for m in DEPRECATED_CALL_RE.finditer(line):
            if DEPRECATED_API_RECEIVER_ALLOW.search(m.group("recv")):
                continue
            yield Violation(
                "deprecated-api", ctx.rel, idx,
                f"by-value {m.group('meth')}() on '{m.group('recv')}' "
                "allocates per call; use the "
                f"{m.group('meth')}Into/{m.group('meth')}InPlace API with a "
                "PropagationWorkspace")
        if SUBMIT_LEGACY_RE.search(line):
            yield Violation(
                "deprecated-api", ctx.rel, idx,
                "submitLegacy() is the pinned v1 exception-style shim; new "
                "code uses InferenceEngine::submit() and Expected results")


# Function definitions whose body is a zero-allocation steady-state path:
# the *Into/*InPlace naming convention, plus the perturbation-sampler
# functions (redrawn once per training batch) and the streaming-prefetcher
# staging entry points (called between every training batch) - steady-state
# even though their names predate the convention.
HOT_PATH_NAME_RE = re.compile(
    r"\b(?:[A-Za-z_][A-Za-z0-9_]*(?:Into|InPlace)|fillHopPerturbation|"
    r"samplePerturbation|PerturbationSampler::sample|sampleHop|"
    r"stageRange|stageIndices)\s*\(")
NAKED_FIELD_RE = re.compile(
    r"(?<![A-Za-z0-9_:])Field\s+[A-Za-z_][A-Za-z0-9_]*\s*[({=]|"
    r"(?<![A-Za-z0-9_:])Field\s*\(")


def iter_hot_path_bodies(masked_lines):
    """Yield (name_line, body_start, body_end) for hot-path definitions.

    A definition is a line mentioning a HOT_PATH_NAME_RE function that is
    not a declaration (no trailing ';' before the body opens). Bodies are
    found by brace counting on the masked text.
    """
    n = len(masked_lines)
    i = 0
    while i < n:
        line = masked_lines[i]
        m = HOT_PATH_NAME_RE.search(line)
        if not m:
            i += 1
            continue
        # Scan forward (max a few lines) for the first of '{' or ';'.
        j = i
        depth = 0
        body_start = None
        while j < n and j < i + 8:
            for ch in masked_lines[j]:
                if ch == ";" and body_start is None:
                    body_start = -1  # declaration; no body
                    break
                if ch == "{":
                    body_start = j
                    break
            if body_start is not None:
                break
            j += 1
        if body_start is None or body_start == -1:
            i += 1
            continue
        # Brace-match to find the end of the body.
        k = body_start
        opened = False
        while k < n:
            for ch in masked_lines[k]:
                if ch == "{":
                    depth += 1
                    opened = True
                elif ch == "}":
                    depth -= 1
            if opened and depth == 0:
                break
            k += 1
        yield i, body_start, min(k, n - 1)
        i = min(k, n - 1) + 1


def rule_zero_alloc_hot_path(ctx):
    rel = rel_parts(ctx)
    if not rel.startswith("src/"):
        return
    for _, body_start, body_end in iter_hot_path_bodies(ctx.masked_lines):
        for idx in range(body_start, body_end + 1):
            line = ctx.masked_lines[idx]
            if NAKED_FIELD_RE.search(line):
                yield Violation(
                    "zero-alloc-hot-path", ctx.rel, idx + 1,
                    "naked Field construction inside a zero-allocation "
                    "hot-path body (*Into/*InPlace or perturbation sampler); "
                    "steady-state paths must reuse PropagationWorkspace, "
                    "ensureFieldShape, or member buffers (PR 4 "
                    "zero-allocation contract)")


PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\s*$")


def rule_include_guard(ctx):
    rel = rel_parts(ctx)
    ext = os.path.splitext(rel)[1]
    if ext not in HEADER_EXTENSIONS or not rel.startswith(
            ("src/", "tests/", "bench/")):
        return
    pragma_lines = [idx for idx, line in enumerate(ctx.masked_lines, start=1)
                    if PRAGMA_ONCE_RE.match(line)]
    if not pragma_lines:
        yield Violation(
            "include-guard", ctx.rel, 1,
            "header is missing '#pragma once' (repo convention; no "
            "ifndef-style guards)")
        return
    for idx in pragma_lines[1:]:
        yield Violation("include-guard", ctx.rel, idx,
                        "duplicate '#pragma once'")
    # The pragma must precede any code (comments/blank lines are fine).
    first = pragma_lines[0]
    for idx in range(first - 1):
        if ctx.masked_lines[idx].strip():
            yield Violation(
                "include-guard", ctx.rel, first,
                "'#pragma once' must precede all code in the header")
            break


RULES = [
    rule_serve_steady_clock,
    rule_banned_function,
    rule_deprecated_api,
    rule_zero_alloc_hot_path,
    rule_include_guard,
]

RULE_IDS = [
    "serve-steady-clock",
    "banned-function",
    "deprecated-api",
    "zero-alloc-hot-path",
    "include-guard",
]


def lint_file(path, rel):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as err:
        raise RuntimeError(f"cannot read {path}: {err}") from err
    ctx = FileContext(path, rel, text)
    violations = []
    for rule in RULES:
        for v in rule(ctx):
            if not ctx.allowed(v.rule, v.line):
                violations.append(v)
    return violations


def collect_files(root, paths):
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            files.append(full)
            continue
        if not os.path.isdir(full):
            raise RuntimeError(f"no such file or directory: {p}")
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in SKIP_DIR_PARTS)
            for name in sorted(filenames):
                if os.path.splitext(name)[1] in C_EXTENSIONS:
                    files.append(os.path.join(dirpath, name))
    return files


def run(root, paths, json_path=None, out=sys.stdout):
    files = collect_files(root, paths)
    violations = []
    for path in files:
        rel = os.path.relpath(path, root)
        violations.extend(lint_file(path, rel))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    for v in violations:
        print(v, file=out)
    summary = {
        "files_checked": len(files),
        "violations": [v.as_dict() for v in violations],
        "counts": {
            rule: sum(1 for v in violations if v.rule == rule)
            for rule in RULE_IDS
        },
        "clean": not violations,
    }
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")
    print(f"lint: {len(files)} files checked, "
          f"{len(violations)} violation(s)", file=out)
    return violations


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="LightRidge repo-invariant linter")
    parser.add_argument("paths", nargs="*", default=["src", "tests", "bench"],
                        help="files or directories to lint "
                             "(default: src tests bench)")
    parser.add_argument("--json", metavar="REPORT",
                        help="write a JSON report to this path")
    parser.add_argument("--root", default=None,
                        help="repo root (default: auto-detect from script)")
    args = parser.parse_args(argv)
    root = args.root or find_repo_root(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    paths = args.paths or ["src", "tests", "bench"]
    try:
        violations = run(root, paths, json_path=args.json)
    except RuntimeError as err:
        print(f"lint: error: {err}", file=sys.stderr)
        return 2
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
