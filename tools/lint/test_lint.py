#!/usr/bin/env python3
"""Self-test for the repo-invariant linter.

Runs the linter over the seeded fixture corpus (tools/lint/fixtures/, laid
out like the real repo) and asserts the exact rule IDs and file/line
diagnostics, plus the escape hatch, the JSON report, and the exit-code
contract. Stdlib only: python3 tools/lint/test_lint.py
"""

import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")

spec = importlib.util.spec_from_file_location(
    "run_lint", os.path.join(HERE, "run_lint.py"))
run_lint = importlib.util.module_from_spec(spec)
spec.loader.exec_module(run_lint)


def fixture_violations(paths=("src",)):
    out = io.StringIO()
    return run_lint.run(FIXTURES, list(paths), out=out)


def as_tuples(violations):
    return sorted((v.rule, v.path.replace(os.sep, "/"), v.line)
                  for v in violations)


class FixtureCorpusTest(unittest.TestCase):
    """The seeded corpus produces exactly the expected diagnostics."""

    def test_exact_rule_ids_and_locations(self):
        expected = [
            ("banned-function", "src/core/banned.cpp", 7),
            ("banned-function", "src/core/banned.cpp", 8),
            ("deprecated-api", "src/core/api.cpp", 6),
            ("deprecated-api", "src/core/api.cpp", 7),
            ("deprecated-api", "src/serve/legacy.cpp", 6),
            ("include-guard", "src/utils/guard.hpp", 1),
            ("include-guard", "src/utils/late_guard.hpp", 4),
            ("serve-steady-clock", "src/serve/clock.cpp", 6),
            ("zero-alloc-hot-path", "src/data/stream.cpp", 9),
            ("zero-alloc-hot-path", "src/optics/hot.cpp", 8),
            ("zero-alloc-hot-path", "src/optics/perturb.cpp", 10),
        ]
        self.assertEqual(as_tuples(fixture_violations()), sorted(expected))

    def test_escape_hatch_suppresses_both_styles(self):
        violations = fixture_violations(paths=("src/serve/allowed.cpp",))
        self.assertEqual(as_tuples(violations), [])

    def test_clean_file_is_clean(self):
        violations = fixture_violations(paths=("src/core/clean.cpp",))
        self.assertEqual(as_tuples(violations), [])

    def test_comments_and_strings_not_flagged(self):
        violations = fixture_violations(paths=("src/serve/legacy.cpp",))
        self.assertEqual([v.line for v in violations], [6])


class JsonReportTest(unittest.TestCase):
    def test_report_contents(self):
        with tempfile.TemporaryDirectory() as tmp:
            report = os.path.join(tmp, "lint.json")
            out = io.StringIO()
            run_lint.run(FIXTURES, ["src"], json_path=report, out=out)
            with open(report, encoding="utf-8") as fh:
                data = json.load(fh)
        self.assertFalse(data["clean"])
        self.assertEqual(data["counts"]["banned-function"], 2)
        self.assertEqual(data["counts"]["deprecated-api"], 3)
        self.assertEqual(data["counts"]["include-guard"], 2)
        self.assertEqual(data["counts"]["serve-steady-clock"], 1)
        self.assertEqual(data["counts"]["zero-alloc-hot-path"], 3)
        entry = [v for v in data["violations"]
                 if v["rule"] == "serve-steady-clock"][0]
        self.assertEqual(entry["file"].replace(os.sep, "/"),
                         "src/serve/clock.cpp")
        self.assertEqual(entry["line"], 6)
        self.assertIn("steady_clock", entry["message"])


class ExitCodeTest(unittest.TestCase):
    def _main(self, argv):
        stdout, sys.stdout = sys.stdout, io.StringIO()
        try:
            return run_lint.main(argv)
        finally:
            sys.stdout = stdout

    def test_violations_exit_1(self):
        self.assertEqual(self._main(["--root", FIXTURES, "src"]), 1)

    def test_clean_exit_0(self):
        self.assertEqual(
            self._main(["--root", FIXTURES, "src/core/clean.cpp"]), 0)

    def test_missing_path_exit_2(self):
        self.assertEqual(
            self._main(["--root", FIXTURES, "no/such/dir"]), 2)


class MaskingTest(unittest.TestCase):
    """The comment/string masker keeps offsets stable and strips content."""

    def test_masking_preserves_shape(self):
        src = 'int x = rand(); // rand()\nconst char *s = "rand()";\n'
        masked = run_lint.mask_comments_and_strings(src)
        self.assertEqual(len(masked), len(src))
        self.assertEqual(masked.count("\n"), src.count("\n"))
        lines = masked.splitlines()
        # Code survives; the comment copy and the string literal are gone.
        self.assertEqual(lines[0].count("rand"), 1)
        self.assertNotIn("rand", lines[1])

    def test_block_comment_spans_lines(self):
        src = "a /* one\n two */ b\n"
        masked = run_lint.mask_comments_and_strings(src)
        self.assertEqual(masked.splitlines()[0].strip(), "a")
        self.assertEqual(masked.splitlines()[1].strip(), "b")


if __name__ == "__main__":
    unittest.main(verbosity=2)
