#include <cstdio>
#include <cstdlib>

// Seeded violations: rand() and printf() in library code.
int noise()
{
    int x = rand();
    printf("x=%d\n", x);
    // rand() in a comment must NOT be flagged, nor these relatives:
    std::srand(7);
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%d", x);
    return x;
}
