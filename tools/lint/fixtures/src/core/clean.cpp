#include "fft/fft.hpp"

// Deliberately clean: allowlisted receivers and Into-style calls.
void cleanCalls(lightridge::Fft2d *fft_, lightridge::Field &u)
{
    fft_->forward(&u);
    // detector_.forward(...) is the detector head, not a propagation hop.
}

void cleanInto(lightridge::Field &u, lightridge::Field &scratch)
{
    // Reusing caller-provided buffers inside an Into body is the contract.
    scratch = u;
}
