#include "optics/propagator.hpp"

// Seeded violations: by-value propagation calls in library code.
void runHop(const lightridge::Propagator *prop, lightridge::Field &u)
{
    auto out = prop->forward(u);
    auto back = prop->adjoint(out);
    (void)back;
}
