struct Early
{
};
#pragma once
