// Seeded violation: header without #pragma once.
struct Nothing
{
};
