#include "data/stream.hpp"

using lightridge::Field;

// Seeded violation: naked Field construction in the streaming-prefetcher
// staging path (called between every training batch).
void stageRange(std::size_t lo, std::size_t hi)
{
    Field scratch(8, 8);
    (void)lo;
    (void)hi;
    (void)scratch;
}

// Clean: staging that leases decode buffers arena-style allocates no
// Fields in steady state.
void stageIndices(std::size_t lo, std::size_t hi)
{
    (void)lo;
    (void)hi;
}

// Clean: shard packing is a one-time tool path, not a staging entry
// point, so it may build Fields freely.
Field packShard()
{
    Field ok(8, 8);
    return ok;
}
