#include "optics/propagator.hpp"

using lightridge::Field;

// Seeded violation: naked Field construction in a hot-path body.
void stepInto(Field &u)
{
    Field scratch(8, 8);
    u = scratch;
}

// Clean: Field construction outside any *Into / *InPlace body.
Field makeBuffer()
{
    Field ok(8, 8);
    return ok;
}

// Clean: declaration only, no body to scan.
void declaredInPlace(Field &u);
