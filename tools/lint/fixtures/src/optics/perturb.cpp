#include "optics/perturbation.hpp"

using lightridge::Field;
using lightridge::HopPerturbation;

// Seeded violation: naked Field construction in the perturbation-sampler
// hot path (redrawn every training batch).
void fillHopPerturbation(HopPerturbation &out)
{
    Field screen(8, 8);
    out.kernel = nullptr;
    (void)screen;
}

// Clean: perturbation code outside the hot-path functions may build
// Fields (one-time setup, not a per-batch redraw).
Field makeNoiseTemplate()
{
    Field screen(8, 8);
    return screen;
}
