#include <chrono>

// Seeded violation: wall clock used for a serving deadline.
long deadlineMs()
{
    auto now = std::chrono::system_clock::now();
    auto ok = std::chrono::steady_clock::now();
    (void)ok;
    return now.time_since_epoch().count();
}
