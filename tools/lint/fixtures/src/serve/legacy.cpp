#include "serve/engine.hpp"

// Seeded violation: v1 shim called from new serving code.
void submitOne(lightridge::InferenceEngine &engine)
{
    engine.submitLegacy("model", {});
    // submitLegacy( in a comment must NOT be flagged.
    const char *s = "submitLegacy(";
    (void)s;
}
