#include <chrono>

namespace sc = std::chrono;

// Deliberately clean: the escape hatch suppresses both directive styles.
long allowedStamp()
{
    // Epoch timestamps for request logging genuinely need wall time.
    // lint:allow(serve-steady-clock)
    auto a = std::chrono::system_clock::now();
    auto b = sc::system_clock::now(); // lint:allow(serve-steady-clock)
    return a.time_since_epoch().count() + b.time_since_epoch().count();
}
