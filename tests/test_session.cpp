/**
 * @file
 * Session engine behaviours across task kinds: bit-for-bit parity of the
 * workers=1 serial path against the legacy trainer recipes (reimplemented
 * here as explicit reference loops), data-parallel replica training for
 * segmentation/RGB, top-k reporting, per-epoch callbacks, and the
 * deprecated trainer shims delegating faithfully.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "core/session.hpp"
#include "core/trainer.hpp"
#include "data/synth_city.hpp"
#include "data/synth_digits.hpp"
#include "data/synth_scenes.hpp"
#include "optics/diffraction.hpp"

namespace lightridge {
namespace {

SystemSpec
spec16()
{
    SystemSpec spec;
    spec.size = 16;
    spec.pixel = 36e-6;
    spec.distance = idealDistanceHalfCone(Grid{16, 36e-6}, 532e-9);
    return spec;
}

DonnModel
classModel(uint64_t seed)
{
    Rng rng(seed);
    return ModelBuilder(spec16(), Laser{})
        .diffractiveLayers(2, 1.0, &rng)
        .detectorGrid(10, 1)
        .build();
}

DonnModel
segModel(uint64_t seed)
{
    Rng rng(seed);
    DonnModel model(spec16(), Laser{});
    for (int l = 0; l < 2; ++l)
        model.addLayer(std::make_unique<DiffractiveLayer>(
            model.hopPropagator(), 1.0, &rng));
    model.setDetector(DetectorPlane(DetectorPlane::gridLayout(16, 2, 2)));
    return model;
}

MultiChannelDonn
rgbModel(uint64_t seed, std::size_t classes)
{
    Rng rng(seed);
    std::vector<std::unique_ptr<DonnModel>> channels;
    for (int ch = 0; ch < 3; ++ch)
        channels.push_back(std::make_unique<DonnModel>(
            ModelBuilder(spec16(), Laser{})
                .diffractiveLayers(1, 1.0, &rng)
                .detectorGrid(classes, 1)
                .build()));
    return MultiChannelDonn(std::move(channels));
}

/** Shuffled index order, identical to the engine's per-epoch recipe. */
std::vector<std::size_t>
refOrder(std::size_t n, Rng *rng)
{
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::shuffle(order.begin(), order.end(), rng->engine());
    return order;
}

/**
 * Reference reimplementation of the legacy serial SegTrainer:
 * calibration (probe 8), shuffled per-sample forward/backward with
 * batch-accumulated gradients and an Adam step per batch.
 */
std::vector<Real>
legacySegLosses(DonnModel &model, const SegDataset &train,
                const TrainConfig &cfg)
{
    Adam optimizer(cfg.lr);
    optimizer.attach(model.params());
    Rng rng(cfg.seed);

    Real intensity_scale = 1.0;
    Real mask_mean = 0.25;
    std::size_t probe = std::min<std::size_t>(8, train.size());
    Real mean_intensity = 0, mean_mask = 0;
    for (std::size_t i = 0; i < probe; ++i) {
        Field u = model.forwardField(model.encode(train.images[i]), true);
        mean_intensity += u.intensity().mean();
        mean_mask += train.masks[i].mean();
    }
    mean_intensity /= static_cast<Real>(probe);
    mean_mask /= static_cast<Real>(probe);
    if (mean_mask > 0)
        mask_mean = mean_mask;
    if (mean_intensity > 0)
        intensity_scale = mask_mean / mean_intensity;

    const Grid grid = model.spec().grid();
    std::vector<Real> losses;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        std::vector<std::size_t> order = refOrder(train.size(), &rng);
        Real loss_sum = 0;
        std::size_t in_batch = 0;
        model.zeroGrad();
        for (std::size_t idx : order) {
            Field u = model.forwardField(model.encode(train.images[idx]),
                                         true);
            RealMap target = (train.masks[idx].rows() == grid.n)
                                 ? train.masks[idx]
                                 : resizeBilinear(train.masks[idx], grid.n,
                                                  grid.n);
            FieldLossResult loss =
                intensityMseLoss(u, target, intensity_scale);
            loss_sum += loss.value;
            model.backwardField(loss.grad);
            if (++in_batch == cfg.batch) {
                optimizer.step();
                model.zeroGrad();
                in_batch = 0;
            }
        }
        if (in_batch > 0) {
            optimizer.step();
            model.zeroGrad();
        }
        losses.push_back(loss_sum / train.size());
    }
    return losses;
}

/**
 * Reference reimplementation of the legacy serial RgbTrainer:
 * calibration (probe 8, shared amp factor), shuffled per-sample
 * forward/backward, Adam step per batch.
 */
std::vector<Real>
legacyRgbLosses(MultiChannelDonn &model, const RgbDataset &train,
                const TrainConfig &cfg)
{
    Adam optimizer(cfg.lr);
    optimizer.attach(model.params());
    Rng rng(cfg.seed);

    std::size_t probe = std::min<std::size_t>(8, train.size());
    Real mean_top = 0;
    for (std::size_t ch = 0; ch < model.numChannels(); ++ch)
        model.channel(ch).detector().setAmpFactor(1.0);
    for (std::size_t i = 0; i < probe; ++i) {
        std::vector<Real> logits =
            model.forwardLogits(model.encode(train.images[i]), false);
        mean_top += *std::max_element(logits.begin(), logits.end());
    }
    mean_top /= static_cast<Real>(probe);
    if (mean_top > 0)
        for (std::size_t ch = 0; ch < model.numChannels(); ++ch)
            model.channel(ch).detector().setAmpFactor(cfg.calib_target /
                                                      mean_top);

    std::vector<Real> losses;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        std::vector<std::size_t> order = refOrder(train.size(), &rng);
        Real loss_sum = 0;
        std::size_t in_batch = 0;
        model.zeroGrad();
        for (std::size_t idx : order) {
            std::vector<Real> logits =
                model.forwardLogits(model.encode(train.images[idx]), true);
            LossResult loss =
                classificationLoss(cfg.loss, logits, train.labels[idx]);
            loss_sum += loss.value;
            model.backwardFromLogits(loss.dlogits);
            if (++in_batch == cfg.batch) {
                optimizer.step();
                model.zeroGrad();
                in_batch = 0;
            }
        }
        if (in_batch > 0) {
            optimizer.step();
            model.zeroGrad();
        }
        losses.push_back(loss_sum / train.size());
    }
    return losses;
}

TEST(SessionParity, SegmentationSerialMatchesLegacyBitForBit)
{
    CityConfig ccfg;
    ccfg.image_size = 16;
    SegDataset train = makeSynthCity(10, 1, ccfg);

    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch = 4;
    cfg.lr = 0.08;
    cfg.seed = 11;
    cfg.workers = 1;

    DonnModel ref_model = segModel(5);
    std::vector<Real> ref = legacySegLosses(ref_model, train, cfg);

    DonnModel model = segModel(5);
    SegmentationTask task(model, train);
    std::vector<EpochStats> history = Session(task, cfg).fit();

    ASSERT_EQ(history.size(), ref.size());
    for (std::size_t e = 0; e < ref.size(); ++e)
        EXPECT_EQ(history[e].train_loss, ref[e]) << "epoch " << e;
}

TEST(SessionParity, RgbSerialMatchesLegacyBitForBit)
{
    SceneConfig scfg;
    scfg.image_size = 16;
    RgbDataset train = makeSynthScenes(12, 1, scfg);

    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch = 4;
    cfg.lr = 0.03;
    cfg.seed = 13;
    cfg.workers = 1;

    MultiChannelDonn ref_model = rgbModel(5, train.num_classes);
    std::vector<Real> ref = legacyRgbLosses(ref_model, train, cfg);

    MultiChannelDonn model = rgbModel(5, train.num_classes);
    RgbTask task(model, train);
    std::vector<EpochStats> history = Session(task, cfg).fit();

    ASSERT_EQ(history.size(), ref.size());
    for (std::size_t e = 0; e < ref.size(); ++e)
        EXPECT_EQ(history[e].train_loss, ref[e]) << "epoch " << e;
}

TEST(SessionParity, ShimsDelegateToSession)
{
    // The deprecated trainers must produce bit-identical histories to a
    // directly constructed Task + Session.
    ClassDataset train = makeSynthDigits(30, 3);

    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch = 8;
    cfg.workers = 1;

    DonnModel direct_model = classModel(9);
    ClassificationTask task(direct_model, train);
    std::vector<EpochStats> direct = Session(task, cfg).fit();

    DonnModel shim_model = classModel(9);
    std::vector<EpochStats> shim = Trainer(shim_model, cfg).fit(train);

    ASSERT_EQ(direct.size(), shim.size());
    for (std::size_t e = 0; e < direct.size(); ++e) {
        EXPECT_EQ(direct[e].train_loss, shim[e].train_loss);
        EXPECT_EQ(direct[e].train_acc, shim[e].train_acc);
    }
}

TEST(SessionParallel, SegmentationWorkersTrainAsWellAsSerial)
{
    CityConfig ccfg;
    ccfg.image_size = 16;
    SegDataset train = makeSynthCity(16, 1, ccfg);

    auto run = [&](std::size_t workers) {
        DonnModel model = segModel(7);
        TrainConfig cfg;
        cfg.epochs = 2;
        cfg.batch = 8;
        cfg.lr = 0.08;
        cfg.workers = workers;
        SegmentationTask task(model, train);
        return Session(task, cfg).fit();
    };

    auto serial = run(1);
    auto parallel = run(3);
    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_LE(parallel.back().train_loss, parallel.front().train_loss);
    for (const EpochStats &stats : parallel)
        EXPECT_TRUE(std::isfinite(stats.train_loss));
    EXPECT_NEAR(parallel.back().train_loss, serial.back().train_loss,
                0.5 * std::abs(serial.back().train_loss) + 0.05);
}

TEST(SessionParallel, RgbWorkersTrainAsWellAsSerial)
{
    SceneConfig scfg;
    scfg.image_size = 16;
    RgbDataset train = makeSynthScenes(18, 1, scfg);

    auto run = [&](std::size_t workers) {
        MultiChannelDonn model = rgbModel(7, train.num_classes);
        TrainConfig cfg;
        cfg.epochs = 2;
        cfg.batch = 6;
        cfg.lr = 0.03;
        cfg.workers = workers;
        RgbTask task(model, train);
        return Session(task, cfg).fit();
    };

    auto serial = run(1);
    auto parallel = run(3);
    ASSERT_EQ(serial.size(), parallel.size());
    for (const EpochStats &stats : parallel)
        EXPECT_TRUE(std::isfinite(stats.train_loss));
    EXPECT_NEAR(parallel.back().train_loss, serial.back().train_loss,
                0.5 * std::abs(serial.back().train_loss) + 0.05);
}

TEST(SessionMetrics, TopKReportedAndMonotone)
{
    ClassDataset train = makeSynthDigits(40, 1);
    ClassDataset test = makeSynthDigits(20, 2);
    DonnModel model = classModel(3);

    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.workers = 1;
    ClassificationTask task(model, train, &test);
    std::vector<EpochStats> history = Session(task, cfg).fit();

    for (const EpochStats &stats : history) {
        EXPECT_GE(stats.test_top3, stats.test_acc);
        EXPECT_LE(stats.test_top3, 1.0);
    }

    Real top1 = evaluateTopK(model, test, 1);
    Real top3 = evaluateTopK(model, test, 3);
    EXPECT_EQ(top1, evaluateAccuracy(model, test));
    EXPECT_GE(top3, top1);
    EXPECT_EQ(evaluateTopK(model, test, 10), 1.0); // k = all classes
}

TEST(SessionCallbacks, EarlyStopTruncatesHistory)
{
    ClassDataset train = makeSynthDigits(20, 1);
    DonnModel model = classModel(3);

    TrainConfig cfg;
    cfg.epochs = 5;
    cfg.workers = 1;
    ClassificationTask task(model, train);
    Session session(task, cfg);
    session.addCallback(
        [](const EpochStats &stats, Session &) { return stats.epoch < 1; });
    std::vector<EpochStats> history = session.fit();
    EXPECT_EQ(history.size(), 2u); // stopped after epoch 1
}

TEST(SessionCallbacks, CheckpointCallbackSavesModel)
{
    ClassDataset train = makeSynthDigits(20, 1);
    ClassDataset test = makeSynthDigits(10, 2);
    DonnModel model = classModel(3);

    const std::string path = "/tmp/lr_session_checkpoint.json";
    std::remove(path.c_str());

    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.workers = 1;
    ClassificationTask task(model, train, &test);
    Session session(task, cfg);
    session.addCallback(checkpointBestCallback(path));
    session.fit();

    DonnModel restored = DonnModel::load(path);
    EXPECT_EQ(restored.depth(), model.depth());
    std::remove(path.c_str());
}

TEST(SessionCallbacks, EarlyStopCallbackStopsOnPlateau)
{
    ClassDataset train = makeSynthDigits(20, 1);
    DonnModel model = classModel(3);

    TrainConfig cfg;
    cfg.epochs = 40;
    cfg.lr = 0.0;        // zero step size: loss plateaus immediately
    cfg.shuffle = false; // fixed accumulation order => exactly equal loss
    cfg.workers = 1;
    ClassificationTask task(model, train);
    Session session(task, cfg);
    session.addCallback(earlyStopCallback(2));
    std::vector<EpochStats> history = session.fit();
    EXPECT_LT(history.size(), 40u);
}

TEST(SessionParity, ShimCalibrateZeroProbeIsNoOp)
{
    // Legacy trainers treated probe = 0 as "skip": no amp calibration,
    // and fit() still calibrates later.
    ClassDataset data = makeSynthDigits(20, 1);
    DonnModel model = classModel(3);
    Real amp_before = model.detector().ampFactor();

    TrainConfig cfg;
    Trainer trainer(model, cfg);
    trainer.calibrate(data, 0);
    EXPECT_EQ(model.detector().ampFactor(), amp_before);
}

TEST(SessionParity, SegShimCarriesCalibrationAcrossDatasetRebind)
{
    // calibrate(A) then fit(B) must train with A's intensity scale, like
    // the legacy SegTrainer whose calibration lived in member state.
    CityConfig ccfg;
    ccfg.image_size = 16;
    SegDataset calib_set = makeSynthCity(8, 1, ccfg);
    SegDataset train_set = makeSynthCity(8, 2, ccfg);

    DonnModel model = segModel(5);
    TrainConfig cfg;
    cfg.epochs = 1;
    cfg.workers = 1;
    SegTrainer trainer(model, cfg);
    trainer.calibrate(calib_set);
    Real scale = trainer.intensityScale();
    EXPECT_NE(scale, 1.0);
    trainer.fit(train_set);
    EXPECT_EQ(trainer.intensityScale(), scale);
}

TEST(SessionPipeline, EqualLossConvergenceAcrossWorkerCounts)
{
    // The pipelined engine trains with one-step-stale replica parameters;
    // it must converge to essentially the same loss as the synchronous
    // schedule at every worker count (workers=1 falls back to the serial
    // reference loop, so pipeline must be a no-op there).
    ClassDataset train = makeSynthDigits(32, 1);

    auto run = [&](std::size_t workers, bool pipeline) {
        DonnModel model = classModel(9);
        TrainConfig cfg;
        cfg.epochs = 3;
        cfg.batch = 8;
        cfg.lr = 0.05;
        cfg.workers = workers;
        cfg.pipeline = pipeline;
        ClassificationTask task(model, train);
        return Session(task, cfg).fit();
    };

    auto reference = run(1, false);
    for (std::size_t workers : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}}) {
        auto pipelined = run(workers, true);
        ASSERT_EQ(pipelined.size(), reference.size()) << workers;
        for (const EpochStats &stats : pipelined)
            EXPECT_TRUE(std::isfinite(stats.train_loss)) << workers;
        EXPECT_LE(pipelined.back().train_loss,
                  pipelined.front().train_loss)
            << workers << " workers: loss did not decrease";
        EXPECT_NEAR(pipelined.back().train_loss,
                    reference.back().train_loss,
                    0.5 * std::abs(reference.back().train_loss) + 0.05)
            << workers;
    }
}

TEST(SessionPipeline, PipelinedRunsAreDeterministic)
{
    // Staleness is part of the schedule, not a race: two pipelined runs
    // with the same config must agree bit for bit, regardless of thread
    // timing.
    ClassDataset train = makeSynthDigits(24, 2);
    auto run = [&] {
        DonnModel model = classModel(11);
        TrainConfig cfg;
        cfg.epochs = 2;
        cfg.batch = 6;
        cfg.workers = 3;
        cfg.pipeline = true;
        ClassificationTask task(model, train);
        return Session(task, cfg).fit();
    };
    auto a = run();
    auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t e = 0; e < a.size(); ++e) {
        EXPECT_EQ(a[e].train_loss, b[e].train_loss) << "epoch " << e;
        EXPECT_EQ(a[e].train_acc, b[e].train_acc) << "epoch " << e;
    }
}

/**
 * Reference reimplementation of the synchronous data-parallel schedule
 * (the pre-pipeline engine): per epoch, fresh replicas clone the primary;
 * per batch, replica r trains samples r, r+active, ... sequentially;
 * replica gradients merge into the primary in fixed replica order; one
 * Adam step; parameters redistributed. Noise-free layers only, so clone
 * seeds do not matter.
 */
std::vector<Real>
referenceSyncParallelLosses(DonnModel &model, const ClassDataset &train,
                            const TrainConfig &cfg, std::size_t workers)
{
    Adam optimizer(cfg.lr);
    optimizer.attach(model.params());
    Rng rng(cfg.seed);
    std::vector<ParamView> main_params = model.params();

    std::vector<Real> losses;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        std::vector<std::size_t> order = refOrder(train.size(), &rng);
        std::vector<DonnModel> replicas;
        for (std::size_t r = 0; r < workers; ++r)
            replicas.push_back(model.clone());
        Real loss_sum = 0;
        model.zeroGrad();
        for (std::size_t start = 0; start < order.size();
             start += cfg.batch) {
            std::size_t batch = std::min(cfg.batch, order.size() - start);
            std::size_t active = std::min(workers, batch);
            std::vector<Real> part(active, 0);
            for (std::size_t r = 0; r < active; ++r) {
                for (std::size_t j = r; j < batch; j += active) {
                    std::size_t idx = order[start + j];
                    Field input = replicas[r].encode(train.images[idx]);
                    std::vector<Real> logits =
                        replicas[r].forwardLogits(input, true);
                    LossResult loss = classificationLoss(
                        cfg.loss, logits, train.labels[idx]);
                    part[r] += loss.value;
                    replicas[r].backwardFromLogits(loss.dlogits);
                }
            }
            for (std::size_t r = 0; r < active; ++r) {
                loss_sum += part[r];
                std::vector<ParamView> rep_params = replicas[r].params();
                for (std::size_t p = 0; p < main_params.size(); ++p) {
                    const std::vector<Real> &src = *rep_params[p].grad;
                    std::vector<Real> &dst = *main_params[p].grad;
                    for (std::size_t i = 0; i < dst.size(); ++i)
                        dst[i] += src[i];
                }
                replicas[r].zeroGrad();
            }
            optimizer.step();
            model.zeroGrad();
            for (std::size_t r = 0; r < workers; ++r) {
                std::vector<ParamView> rep_params = replicas[r].params();
                for (std::size_t p = 0; p < main_params.size(); ++p)
                    *rep_params[p].value = *main_params[p].value;
            }
        }
        losses.push_back(loss_sum / train.size());
    }
    return losses;
}

TEST(SessionPipeline, PipelineOffMatchesSynchronousReferenceBitwise)
{
    // The escape hatch: pipeline=false must reproduce the synchronous
    // replica schedule bit for bit, pinned against an independent
    // reimplementation of that schedule (not against itself).
    ClassDataset train = makeSynthDigits(13, 1); // ragged final batch

    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch = 5;
    cfg.lr = 0.05;
    cfg.seed = 17;
    cfg.workers = 2;
    cfg.calibrate = false; // keep the reference loop minimal
    EXPECT_FALSE(cfg.pipeline) << "pipeline must default to off";

    DonnModel ref_model = classModel(9);
    std::vector<Real> reference =
        referenceSyncParallelLosses(ref_model, train, cfg, cfg.workers);

    DonnModel model = classModel(9);
    ClassificationTask task(model, train);
    std::vector<EpochStats> history = Session(task, cfg).fit();

    ASSERT_EQ(history.size(), reference.size());
    for (std::size_t e = 0; e < reference.size(); ++e)
        EXPECT_EQ(history[e].train_loss, reference[e]) << "epoch " << e;
}

TEST(SessionPipeline, SegmentationAndRgbPipelineConverge)
{
    CityConfig ccfg;
    ccfg.image_size = 16;
    SegDataset seg_train = makeSynthCity(12, 1, ccfg);
    {
        DonnModel serial_model = segModel(7);
        DonnModel pipe_model = segModel(7);
        TrainConfig cfg;
        cfg.epochs = 2;
        cfg.batch = 6;
        cfg.lr = 0.08;
        cfg.workers = 1;
        SegmentationTask serial_task(serial_model, seg_train);
        auto serial = Session(serial_task, cfg).fit();
        cfg.workers = 3;
        cfg.pipeline = true;
        SegmentationTask pipe_task(pipe_model, seg_train);
        auto pipelined = Session(pipe_task, cfg).fit();
        EXPECT_NEAR(pipelined.back().train_loss, serial.back().train_loss,
                    0.5 * std::abs(serial.back().train_loss) + 0.05);
    }
    {
        SceneConfig scfg;
        scfg.image_size = 16;
        RgbDataset rgb_train = makeSynthScenes(12, 1, scfg);
        MultiChannelDonn serial_model = rgbModel(5, rgb_train.num_classes);
        MultiChannelDonn pipe_model = rgbModel(5, rgb_train.num_classes);
        TrainConfig cfg;
        cfg.epochs = 2;
        cfg.batch = 6;
        cfg.lr = 0.03;
        cfg.workers = 1;
        RgbTask serial_task(serial_model, rgb_train);
        auto serial = Session(serial_task, cfg).fit();
        cfg.workers = 3;
        cfg.pipeline = true;
        RgbTask pipe_task(pipe_model, rgb_train);
        auto pipelined = Session(pipe_task, cfg).fit();
        EXPECT_NEAR(pipelined.back().train_loss, serial.back().train_loss,
                    0.5 * std::abs(serial.back().train_loss) + 0.05);
    }
}

TEST(SessionMultiChannel, CloneIsIndependent)
{
    MultiChannelDonn model = rgbModel(1, 6);
    MultiChannelDonn copy = model.clone();
    ASSERT_EQ(copy.numChannels(), model.numChannels());

    // Perturb the copy; the original's parameters stay untouched.
    std::vector<ParamView> params = copy.params();
    ASSERT_FALSE(params.empty());
    (*params[0].value)[0] += 1.0;
    std::vector<ParamView> orig = model.params();
    EXPECT_NE((*params[0].value)[0], (*orig[0].value)[0]);
}

} // namespace
} // namespace lightridge
