/**
 * @file
 * Serving subsystem tests: checkpoint header contract, model registry
 * semantics (ref-counted unload/hot-swap), and the micro-batching
 * inference engine — concurrent multi-client requests against multiple
 * registered models must be deterministic and bitwise-equal to direct
 * single-model inference, and unload-while-busy must be safe (this
 * suite runs under the TSan CI leg).
 *
 * Serving API v2 coverage: typed ServeStatus failures, the deprecated
 * exception-style submitLegacy alias pinned bitwise against submit(),
 * deadline expiry (an expired request never reaches a batch slot),
 * priority-major batch formation, per-model admission quotas shedding
 * lowest-priority-youngest first, and metrics-counter consistency.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "data/synth_digits.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"

namespace lightridge {
namespace {

DonnModel
tinyModel(std::size_t n, uint64_t seed)
{
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = 0.02;
    Rng rng(seed);
    return ModelBuilder(spec, Laser{})
        .diffractiveLayers(2, 1.0, &rng)
        .detectorGrid(4, 3)
        .build();
}

std::vector<Real>
directLogits(const DonnModel &model, const RealMap &frame)
{
    Field u = model.inferField(model.encode(frame));
    return model.detector().readout(u);
}

std::vector<RealMap>
testFrames(std::size_t count)
{
    ClassDataset data = makeSynthDigits(count, 5);
    return data.images;
}

/** RAII temp file that is removed on scope exit. */
struct TempFile
{
    std::string path;
    explicit TempFile(std::string p) : path(std::move(p)) {}
    ~TempFile() { std::remove(path.c_str()); }
};

// ---------------------------------------------------------------------
// Checkpoint header
// ---------------------------------------------------------------------

TEST(Checkpoint, SaveWritesMagicAndVersion)
{
    TempFile file("ckpt_header_test.json");
    DonnModel model = tinyModel(16, 1);
    ASSERT_TRUE(model.save(file.path));

    Json j = Json::load(file.path);
    EXPECT_EQ(j.at("format").asString(), kCheckpointMagic);
    EXPECT_EQ(j.at("version").asInt(), kCheckpointVersion);

    DonnModel loaded = DonnModel::load(file.path);
    EXPECT_EQ(loaded.depth(), model.depth());
    EXPECT_EQ(directLogits(loaded, testFrames(1)[0]),
              directLogits(model, testFrames(1)[0]));
}

TEST(Checkpoint, LegacyHeaderlessFileStillLoads)
{
    TempFile file("ckpt_legacy_test.json");
    DonnModel model = tinyModel(16, 2);
    // A pre-header checkpoint is exactly toJson() saved raw.
    ASSERT_TRUE(model.toJson().save(file.path));
    DonnModel loaded = DonnModel::load(file.path);
    EXPECT_EQ(loaded.depth(), model.depth());
    EXPECT_EQ(directLogits(loaded, testFrames(1)[0]),
              directLogits(model, testFrames(1)[0]));
}

TEST(Checkpoint, TruncatedFileGivesClearError)
{
    TempFile file("ckpt_truncated_test.json");
    DonnModel model = tinyModel(16, 3);
    ASSERT_TRUE(model.save(file.path));
    // Truncate mid-document.
    std::string text;
    {
        std::ifstream in(file.path);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }
    {
        std::ofstream out(file.path, std::ios::trunc);
        out << text.substr(0, text.size() / 2);
    }
    try {
        DonnModel::load(file.path);
        FAIL() << "expected JsonError";
    } catch (const JsonError &e) {
        EXPECT_NE(std::string(e.what()).find("checkpoint"),
                  std::string::npos);
    }
}

TEST(Checkpoint, WrongMagicAndFutureVersionRejected)
{
    TempFile file("ckpt_magic_test.json");
    Json j = tinyModel(16, 4).toJson();
    j["format"] = Json("not-a-lightridge-checkpoint");
    j["version"] = Json(1);
    ASSERT_TRUE(j.save(file.path));
    EXPECT_THROW(DonnModel::load(file.path), JsonError);

    j["format"] = Json(kCheckpointMagic);
    j["version"] = Json(kCheckpointVersion + 1);
    ASSERT_TRUE(j.save(file.path));
    EXPECT_THROW(DonnModel::load(file.path), JsonError);
}

TEST(Checkpoint, MissingFileGivesClearError)
{
    try {
        DonnModel::load("no_such_checkpoint_file.json");
        FAIL() << "expected JsonError";
    } catch (const JsonError &e) {
        EXPECT_NE(std::string(e.what()).find("no_such_checkpoint_file"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// ModelRegistry
// ---------------------------------------------------------------------

TEST(ModelRegistry, RegisterAcquireUnload)
{
    ModelRegistry registry;
    registry.registerModel("a", tinyModel(16, 1));
    registry.registerModel("b", tinyModel(20, 2));
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_TRUE(registry.has("a"));
    EXPECT_EQ(registry.names(), (std::vector<std::string>{"a", "b"}));

    std::shared_ptr<const DonnModel> a = registry.acquire("a");
    EXPECT_EQ(a->spec().size, 16u);
    EXPECT_EQ(registry.externalRefCount("a"), 1u);

    EXPECT_TRUE(registry.unload("a"));
    EXPECT_FALSE(registry.unload("a"));
    EXPECT_FALSE(registry.has("a"));
    EXPECT_THROW(registry.acquire("a"), UnknownModelError);

    // The acquired reference outlives the unload.
    EXPECT_EQ(a->spec().size, 16u);
    EXPECT_EQ(directLogits(*a, testFrames(1)[0]).size(), 4u);
}

TEST(ModelRegistry, HotSwapPublishesNewInstance)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    std::shared_ptr<const DonnModel> old_instance = registry.acquire("m");
    registry.registerModel("m", tinyModel(20, 2)); // hot-swap
    std::shared_ptr<const DonnModel> new_instance = registry.acquire("m");
    EXPECT_EQ(old_instance->spec().size, 16u);
    EXPECT_EQ(new_instance->spec().size, 20u);
}

TEST(ModelRegistry, CheckpointRoundTripServesIdentically)
{
    TempFile file("registry_ckpt_test.json");
    DonnModel model = tinyModel(16, 6);
    ASSERT_TRUE(model.save(file.path));
    ModelRegistry registry;
    registry.registerCheckpoint("m", file.path);
    RealMap frame = testFrames(1)[0];
    EXPECT_EQ(directLogits(*registry.acquire("m"), frame),
              directLogits(model, frame));
}

// ---------------------------------------------------------------------
// InferenceEngine
// ---------------------------------------------------------------------

TEST(InferenceEngine, MatchesDirectInferenceAcrossModels)
{
    ModelRegistry registry;
    registry.registerModel("small", tinyModel(16, 1));
    registry.registerModel("large", tinyModel(24, 2));
    std::shared_ptr<const DonnModel> small = registry.acquire("small");
    std::shared_ptr<const DonnModel> large = registry.acquire("large");

    const std::vector<RealMap> frames = testFrames(12);
    InferenceEngine engine(registry);

    for (int run = 0; run < 2; ++run) { // twice: deterministic
        std::vector<std::future<InferResponse>> futures;
        for (std::size_t i = 0; i < frames.size(); ++i) {
            InferRequest request;
            request.model = i % 2 == 0 ? "small" : "large";
            request.image = frames[i];
            request.id = i;
            futures.push_back(engine.submit(std::move(request)));
        }
        for (std::size_t i = 0; i < frames.size(); ++i) {
            InferResponse response = futures[i].get();
            const DonnModel &model = i % 2 == 0 ? *small : *large;
            EXPECT_EQ(response.logits, directLogits(model, frames[i]))
                << "request " << i << " run " << run;
            EXPECT_EQ(response.id, i);
            EXPECT_GE(response.batch_size, 1u);
        }
    }

    EngineStats stats = engine.stats();
    EXPECT_EQ(stats.requests, 2 * frames.size());
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_GE(stats.meanBatch(), 1.0);
}

TEST(InferenceEngine, SequentialDispatchMatchesToo)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 3));
    std::shared_ptr<const DonnModel> model = registry.acquire("m");
    const std::vector<RealMap> frames = testFrames(6);

    InferenceEngine engine(registry);
    for (std::size_t i = 0; i < frames.size(); ++i) {
        InferRequest request;
        request.model = "m";
        request.image = frames[i];
        InferResponse response = engine.inferNow(std::move(request));
        EXPECT_EQ(response.logits, directLogits(*model, frames[i]));
        EXPECT_EQ(response.batch_size, 1u);
    }
}

TEST(InferenceEngine, UnknownModelIsATypedStatus)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    InferenceEngine engine(registry);
    InferRequest request;
    request.model = "ghost";
    request.image = testFrames(1)[0];
    InferResponse response = engine.submit(std::move(request)).get();
    EXPECT_FALSE(response.ok());
    EXPECT_EQ(response.status, ServeStatus::UnknownModel);
    EXPECT_NE(response.error.find("ghost"), std::string::npos);
    EXPECT_TRUE(response.logits.empty());
    EXPECT_EQ(response.prediction, -1);
    EXPECT_EQ(engine.stats().failed, 1u);
    EXPECT_EQ(engine.metrics().statusCount(ServeStatus::UnknownModel),
              1u);
}

TEST(InferenceEngine, LegacySubmitKeepsV1ExceptionSemantics)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    InferenceEngine engine(registry);
    const RealMap frame = testFrames(1)[0];

    // Pinned bitwise: the deprecated alias schedules and computes
    // exactly like submit(), only the failure channel differs.
    InferRequest v2;
    v2.model = "m";
    v2.image = frame;
    InferRequest v1;
    v1.model = "m";
    v1.image = frame;
    const InferResponse v2_response = engine.submit(std::move(v2)).get();
    const InferResponse v1_response =
        engine.submitLegacy(std::move(v1)).get();
    EXPECT_EQ(v1_response.logits, v2_response.logits);
    EXPECT_EQ(v1_response.prediction, v2_response.prediction);
    EXPECT_EQ(v1_response.status, ServeStatus::Ok);

    InferRequest ghost;
    ghost.model = "ghost";
    ghost.image = frame;
    std::future<InferResponse> future =
        engine.submitLegacy(std::move(ghost));
    EXPECT_THROW(future.get(), UnknownModelError);

    InferRequest expired;
    expired.model = "m";
    expired.image = frame;
    expired.deadline = std::chrono::milliseconds(-1);
    std::future<InferResponse> expired_future =
        engine.submitLegacy(std::move(expired));
    try {
        expired_future.get();
        FAIL() << "expected ServeStatusError";
    } catch (const ServeStatusError &e) {
        EXPECT_EQ(e.status(), ServeStatus::DeadlineExceeded);
    }
}

TEST(InferenceEngine, ExpiredOnArrivalNeverReachesABatch)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    InferenceEngine engine(registry);
    engine.pause(); // deterministic: both queued before any dispatch

    InferRequest doomed;
    doomed.model = "m";
    doomed.image = testFrames(1)[0];
    doomed.deadline = std::chrono::milliseconds(-1); // expired on arrival
    std::future<InferResponse> doomed_future =
        engine.submit(std::move(doomed));

    InferRequest healthy;
    healthy.model = "m";
    healthy.image = testFrames(1)[0];
    healthy.deadline = std::chrono::hours(1);
    std::future<InferResponse> healthy_future =
        engine.submit(std::move(healthy));

    engine.resume(); // sweep runs before batch formation
    const InferResponse expired = doomed_future.get();
    EXPECT_EQ(expired.status, ServeStatus::DeadlineExceeded);
    EXPECT_EQ(expired.batch_size, 0u); // never occupied a batch slot
    EXPECT_TRUE(expired.logits.empty());

    const InferResponse served = healthy_future.get();
    EXPECT_EQ(served.status, ServeStatus::Ok);
    EXPECT_EQ(served.batch_size, 1u); // the expired one was not in it

    engine.drain();
    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.expired, 1u);
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(
        engine.metrics().statusCount(ServeStatus::DeadlineExceeded), 1u);
}

TEST(InferenceEngine, PriorityShapesBatchFormation)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    BatchingConfig config;
    config.max_batch = 2;
    InferenceEngine engine(registry, config);
    engine.pause();

    // Queue order: BE, BE, Interactive. Priority-major formation makes
    // batch 1 = {Interactive, oldest BE} and batch 2 = {BE}; FIFO
    // formation would leave the Interactive request in a singleton.
    auto submit = [&](Priority priority) {
        InferRequest request;
        request.model = "m";
        request.image = testFrames(1)[0];
        request.priority = priority;
        return engine.submit(std::move(request));
    };
    std::future<InferResponse> be_old = submit(Priority::BestEffort);
    std::future<InferResponse> be_young = submit(Priority::BestEffort);
    std::future<InferResponse> urgent = submit(Priority::Interactive);
    engine.resume();

    EXPECT_EQ(urgent.get().batch_size, 2u);
    EXPECT_EQ(be_old.get().batch_size, 2u);
    EXPECT_EQ(be_young.get().batch_size, 1u);
}

TEST(InferenceEngine, AdmissionQuotaShedsLowestPriorityFirst)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    InferenceEngine engine(registry);
    engine.setModelQuota("m", 2);
    engine.pause();

    auto submit = [&](Priority priority) {
        InferRequest request;
        request.model = "m";
        request.image = testFrames(1)[0];
        request.priority = priority;
        return engine.submit(std::move(request));
    };
    std::future<InferResponse> be_old = submit(Priority::BestEffort);
    std::future<InferResponse> be_young = submit(Priority::BestEffort);

    // Quota full; an equal-priority newcomer is shed immediately...
    std::future<InferResponse> be_extra = submit(Priority::BestEffort);
    const InferResponse shed_newcomer = be_extra.get(); // resolves now
    EXPECT_EQ(shed_newcomer.status, ServeStatus::Overloaded);
    EXPECT_NE(shed_newcomer.error.find("quota"), std::string::npos);
    EXPECT_EQ(shed_newcomer.batch_size, 0u);

    // ...but an Interactive newcomer evicts the youngest BestEffort.
    std::future<InferResponse> urgent = submit(Priority::Interactive);
    const InferResponse evicted = be_young.get();
    EXPECT_EQ(evicted.status, ServeStatus::Overloaded);

    engine.resume();
    EXPECT_EQ(urgent.get().status, ServeStatus::Ok);
    EXPECT_EQ(be_old.get().status, ServeStatus::Ok);

    engine.drain();
    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.requests, 4u);
    EXPECT_EQ(stats.shed, 2u);
    EXPECT_EQ(stats.failed, 2u);
    EXPECT_EQ(engine.metrics().statusCount(ServeStatus::Overloaded), 2u);
}

TEST(InferenceEngine, MetricsCountersStayConsistent)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    InferenceEngine engine(registry);

    std::vector<std::future<InferResponse>> futures;
    const std::vector<RealMap> frames = testFrames(8);
    for (const RealMap &frame : frames) {
        InferRequest request;
        request.model = "m";
        request.image = frame;
        futures.push_back(engine.submit(std::move(request)));
    }
    InferRequest ghost;
    ghost.model = "ghost";
    ghost.image = frames[0];
    futures.push_back(engine.submit(std::move(ghost)));
    for (auto &future : futures)
        future.get();
    engine.drain();

    const EngineStats stats = engine.stats();
    const ServeMetrics &metrics = engine.metrics();
    EXPECT_EQ(metrics.requestCount(), stats.requests);
    EXPECT_EQ(metrics.statusCount(ServeStatus::Ok),
              stats.requests - stats.failed);
    EXPECT_EQ(metrics.queueDepth(), 0);
    EXPECT_EQ(metrics.latency().count(), frames.size());
    EXPECT_GT(metrics.latency().percentileMs(0.99), 0.0);
    EXPECT_GE(metrics.latency().percentileMs(0.99),
              metrics.latency().percentileMs(0.50));
    EXPECT_EQ(metrics.batches().count(), stats.batches);

    const std::string page = engine.metrics().renderPrometheus("extra 1\n");
    EXPECT_NE(page.find("lightridge_requests_total{status=\"ok\"}"),
              std::string::npos);
    EXPECT_NE(page.find("lightridge_latency_ms_bucket"),
              std::string::npos);
    EXPECT_NE(page.find("extra 1"), std::string::npos);
}

TEST(InferenceEngine, ConcurrentClientsGetBitwiseResults)
{
    ModelRegistry registry;
    registry.registerModel("small", tinyModel(16, 1));
    registry.registerModel("large", tinyModel(24, 2));
    std::shared_ptr<const DonnModel> small = registry.acquire("small");
    std::shared_ptr<const DonnModel> large = registry.acquire("large");

    const std::vector<RealMap> frames = testFrames(8);
    std::vector<std::vector<Real>> expect_small, expect_large;
    for (const RealMap &frame : frames) {
        expect_small.push_back(directLogits(*small, frame));
        expect_large.push_back(directLogits(*large, frame));
    }

    InferenceEngine engine(registry);
    const std::size_t clients = 4;
    std::vector<int> mismatches(clients, 0);
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            for (std::size_t i = 0; i < frames.size(); ++i) {
                InferRequest request;
                request.model = (c + i) % 2 == 0 ? "small" : "large";
                request.image = frames[i];
                InferResponse response =
                    engine.inferNow(std::move(request));
                const auto &expected = (c + i) % 2 == 0
                                           ? expect_small[i]
                                           : expect_large[i];
                if (response.logits != expected)
                    ++mismatches[c];
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (std::size_t c = 0; c < clients; ++c)
        EXPECT_EQ(mismatches[c], 0) << "client " << c;
    EXPECT_EQ(engine.stats().failed, 0u);
}

TEST(InferenceEngine, UnloadWhileBusyIsSafe)
{
    ModelRegistry registry;
    DonnModel original = tinyModel(16, 1);
    DonnModel replacement = original.clone(); // same weights: results
                                              // stay bitwise comparable
    registry.registerModel("m", std::move(original));
    std::shared_ptr<const DonnModel> reference = registry.acquire("m");

    const std::vector<RealMap> frames = testFrames(4);
    std::vector<std::vector<Real>> expected;
    for (const RealMap &frame : frames)
        expected.push_back(directLogits(*reference, frame));

    InferenceEngine engine(registry);
    std::atomic<int> wrong{0};
    std::atomic<int> rejected{0};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < 3; ++c) {
        clients.emplace_back([&, c] {
            for (int round = 0; round < 12; ++round) {
                const std::size_t i = (c + round) % frames.size();
                InferRequest request;
                request.model = "m";
                request.image = frames[i];
                InferResponse response =
                    engine.inferNow(std::move(request));
                if (response.status == ServeStatus::UnknownModel)
                    ++rejected; // raced an unload window: acceptable
                else if (response.logits != expected[i])
                    ++wrong;
            }
        });
    }

    // Hot-swap and briefly unload while clients hammer the engine.
    for (int round = 0; round < 6; ++round) {
        registry.registerModel("m", replacement.clone());
        std::this_thread::yield();
        registry.unload("m");
        registry.registerModel("m", replacement.clone());
    }
    for (std::thread &t : clients)
        t.join();

    // Every response that was produced matched bitwise; unload windows
    // may reject requests but never corrupt or crash.
    EXPECT_EQ(wrong.load(), 0);
    EXPECT_EQ(engine.stats().failed,
              static_cast<std::uint64_t>(rejected.load()));
}

TEST(InferenceEngine, DrainWaitsForAllWork)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 2));
    InferenceEngine engine(registry);
    std::vector<std::future<InferResponse>> futures;
    const std::vector<RealMap> frames = testFrames(6);
    for (const RealMap &frame : frames) {
        InferRequest request;
        request.model = "m";
        request.image = frame;
        futures.push_back(engine.submit(std::move(request)));
    }
    engine.drain();
    EngineStats stats = engine.stats();
    EXPECT_EQ(stats.requests, frames.size());
    for (auto &future : futures)
        EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
}

#if defined(LIGHTRIDGE_ALLOC_STATS)
TEST(InferenceEngine, SteadyStateServingAllocatesNoFields)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    InferenceEngine engine(registry);
    const std::vector<RealMap> frames = testFrames(6);

    auto burst = [&] {
        std::vector<std::future<InferResponse>> futures;
        for (const RealMap &frame : frames) {
            InferRequest request;
            request.model = "m";
            request.image = frame;
            futures.push_back(engine.submit(std::move(request)));
        }
        for (auto &future : futures)
            future.get();
    };

    burst(); // warm arenas, plans, modulation tables
    engine.drain();
    resetFieldAllocCount();
    burst(); // steady state: one shared instance, zero clones/buffers
    engine.drain();
    EXPECT_EQ(fieldAllocCount(), 0u);
}
#endif

} // namespace
} // namespace lightridge
