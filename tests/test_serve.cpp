/**
 * @file
 * Serving subsystem tests: checkpoint header contract, model registry
 * semantics (ref-counted unload/hot-swap), and the micro-batching
 * inference engine — concurrent multi-client requests against multiple
 * registered models must be deterministic and bitwise-equal to direct
 * single-model inference, and unload-while-busy must be safe (this
 * suite runs under the TSan CI leg).
 *
 * Serving API v2 coverage: typed ServeStatus failures, the deprecated
 * exception-style submitLegacy alias pinned bitwise against submit(),
 * deadline expiry (an expired request never reaches a batch slot),
 * priority-major batch formation, per-model admission quotas shedding
 * lowest-priority-youngest first, and metrics-counter consistency.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "data/synth_digits.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"

namespace lightridge {
namespace {

DonnModel
tinyModel(std::size_t n, uint64_t seed)
{
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = 0.02;
    Rng rng(seed);
    return ModelBuilder(spec, Laser{})
        .diffractiveLayers(2, 1.0, &rng)
        .detectorGrid(4, 3)
        .build();
}

std::vector<Real>
directLogits(const DonnModel &model, const RealMap &frame)
{
    Field u = model.inferField(model.encode(frame));
    return model.detector().readout(u);
}

std::vector<RealMap>
testFrames(std::size_t count)
{
    ClassDataset data = makeSynthDigits(count, 5);
    return data.images;
}

/** RAII temp file that is removed on scope exit. */
struct TempFile
{
    std::string path;
    explicit TempFile(std::string p) : path(std::move(p)) {}
    ~TempFile() { std::remove(path.c_str()); }
};

// ---------------------------------------------------------------------
// Checkpoint header
// ---------------------------------------------------------------------

TEST(Checkpoint, SaveWritesMagicAndVersion)
{
    TempFile file("ckpt_header_test.json");
    DonnModel model = tinyModel(16, 1);
    ASSERT_TRUE(model.save(file.path));

    Json j = Json::load(file.path);
    EXPECT_EQ(j.at("format").asString(), kCheckpointMagic);
    EXPECT_EQ(j.at("version").asInt(), kCheckpointVersion);

    DonnModel loaded = DonnModel::load(file.path);
    EXPECT_EQ(loaded.depth(), model.depth());
    EXPECT_EQ(directLogits(loaded, testFrames(1)[0]),
              directLogits(model, testFrames(1)[0]));
}

TEST(Checkpoint, LegacyHeaderlessFileStillLoads)
{
    TempFile file("ckpt_legacy_test.json");
    DonnModel model = tinyModel(16, 2);
    // A pre-header checkpoint is exactly toJson() saved raw.
    ASSERT_TRUE(model.toJson().save(file.path));
    DonnModel loaded = DonnModel::load(file.path);
    EXPECT_EQ(loaded.depth(), model.depth());
    EXPECT_EQ(directLogits(loaded, testFrames(1)[0]),
              directLogits(model, testFrames(1)[0]));
}

TEST(Checkpoint, TruncatedFileGivesClearError)
{
    TempFile file("ckpt_truncated_test.json");
    DonnModel model = tinyModel(16, 3);
    ASSERT_TRUE(model.save(file.path));
    // Truncate mid-document.
    std::string text;
    {
        std::ifstream in(file.path);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }
    {
        std::ofstream out(file.path, std::ios::trunc);
        out << text.substr(0, text.size() / 2);
    }
    try {
        DonnModel::load(file.path);
        FAIL() << "expected JsonError";
    } catch (const JsonError &e) {
        EXPECT_NE(std::string(e.what()).find("checkpoint"),
                  std::string::npos);
    }
}

TEST(Checkpoint, WrongMagicAndFutureVersionRejected)
{
    TempFile file("ckpt_magic_test.json");
    Json j = tinyModel(16, 4).toJson();
    j["format"] = Json("not-a-lightridge-checkpoint");
    j["version"] = Json(1);
    ASSERT_TRUE(j.save(file.path));
    EXPECT_THROW(DonnModel::load(file.path), JsonError);

    j["format"] = Json(kCheckpointMagic);
    j["version"] = Json(kCheckpointVersion + 1);
    ASSERT_TRUE(j.save(file.path));
    EXPECT_THROW(DonnModel::load(file.path), JsonError);
}

TEST(Checkpoint, MissingFileGivesClearError)
{
    try {
        DonnModel::load("no_such_checkpoint_file.json");
        FAIL() << "expected JsonError";
    } catch (const JsonError &e) {
        EXPECT_NE(std::string(e.what()).find("no_such_checkpoint_file"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// ModelRegistry
// ---------------------------------------------------------------------

TEST(ModelRegistry, RegisterAcquireUnload)
{
    ModelRegistry registry;
    registry.registerModel("a", tinyModel(16, 1));
    registry.registerModel("b", tinyModel(20, 2));
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_TRUE(registry.has("a"));
    EXPECT_EQ(registry.names(), (std::vector<std::string>{"a", "b"}));

    std::shared_ptr<const DonnModel> a = registry.acquire("a");
    EXPECT_EQ(a->spec().size, 16u);
    EXPECT_EQ(registry.externalRefCount("a"), 1u);

    EXPECT_TRUE(registry.unload("a"));
    EXPECT_FALSE(registry.unload("a"));
    EXPECT_FALSE(registry.has("a"));
    EXPECT_THROW(registry.acquire("a"), UnknownModelError);

    // The acquired reference outlives the unload.
    EXPECT_EQ(a->spec().size, 16u);
    EXPECT_EQ(directLogits(*a, testFrames(1)[0]).size(), 4u);
}

TEST(ModelRegistry, HotSwapPublishesNewInstance)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    std::shared_ptr<const DonnModel> old_instance = registry.acquire("m");
    registry.registerModel("m", tinyModel(20, 2)); // hot-swap
    std::shared_ptr<const DonnModel> new_instance = registry.acquire("m");
    EXPECT_EQ(old_instance->spec().size, 16u);
    EXPECT_EQ(new_instance->spec().size, 20u);
}

TEST(ModelRegistry, CheckpointRoundTripServesIdentically)
{
    TempFile file("registry_ckpt_test.json");
    DonnModel model = tinyModel(16, 6);
    ASSERT_TRUE(model.save(file.path));
    ModelRegistry registry;
    registry.registerCheckpoint("m", file.path);
    RealMap frame = testFrames(1)[0];
    EXPECT_EQ(directLogits(*registry.acquire("m"), frame),
              directLogits(model, frame));
}

// ---------------------------------------------------------------------
// InferenceEngine
// ---------------------------------------------------------------------

TEST(InferenceEngine, MatchesDirectInferenceAcrossModels)
{
    ModelRegistry registry;
    registry.registerModel("small", tinyModel(16, 1));
    registry.registerModel("large", tinyModel(24, 2));
    std::shared_ptr<const DonnModel> small = registry.acquire("small");
    std::shared_ptr<const DonnModel> large = registry.acquire("large");

    const std::vector<RealMap> frames = testFrames(12);
    InferenceEngine engine(registry);

    for (int run = 0; run < 2; ++run) { // twice: deterministic
        std::vector<std::future<InferResponse>> futures;
        for (std::size_t i = 0; i < frames.size(); ++i) {
            InferRequest request;
            request.model = i % 2 == 0 ? "small" : "large";
            request.image = frames[i];
            request.id = i;
            futures.push_back(engine.submit(std::move(request)));
        }
        for (std::size_t i = 0; i < frames.size(); ++i) {
            InferResponse response = futures[i].get();
            const DonnModel &model = i % 2 == 0 ? *small : *large;
            EXPECT_EQ(response.logits, directLogits(model, frames[i]))
                << "request " << i << " run " << run;
            EXPECT_EQ(response.id, i);
            EXPECT_GE(response.batch_size, 1u);
        }
    }

    EngineStats stats = engine.stats();
    EXPECT_EQ(stats.requests, 2 * frames.size());
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_GE(stats.meanBatch(), 1.0);
}

TEST(InferenceEngine, SequentialDispatchMatchesToo)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 3));
    std::shared_ptr<const DonnModel> model = registry.acquire("m");
    const std::vector<RealMap> frames = testFrames(6);

    InferenceEngine engine(registry);
    for (std::size_t i = 0; i < frames.size(); ++i) {
        InferRequest request;
        request.model = "m";
        request.image = frames[i];
        InferResponse response = engine.inferNow(std::move(request));
        EXPECT_EQ(response.logits, directLogits(*model, frames[i]));
        EXPECT_EQ(response.batch_size, 1u);
    }
}

TEST(InferenceEngine, UnknownModelIsATypedStatus)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    InferenceEngine engine(registry);
    InferRequest request;
    request.model = "ghost";
    request.image = testFrames(1)[0];
    InferResponse response = engine.submit(std::move(request)).get();
    EXPECT_FALSE(response.ok());
    EXPECT_EQ(response.status, ServeStatus::UnknownModel);
    EXPECT_NE(response.error.find("ghost"), std::string::npos);
    EXPECT_TRUE(response.logits.empty());
    EXPECT_EQ(response.prediction, -1);
    EXPECT_EQ(engine.stats().failed, 1u);
    EXPECT_EQ(engine.metrics().statusCount(ServeStatus::UnknownModel),
              1u);
}

TEST(InferenceEngine, LegacySubmitKeepsV1ExceptionSemantics)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    InferenceEngine engine(registry);
    const RealMap frame = testFrames(1)[0];

    // Pinned bitwise: the deprecated alias schedules and computes
    // exactly like submit(), only the failure channel differs.
    InferRequest v2;
    v2.model = "m";
    v2.image = frame;
    InferRequest v1;
    v1.model = "m";
    v1.image = frame;
    const InferResponse v2_response = engine.submit(std::move(v2)).get();
    const InferResponse v1_response =
        engine.submitLegacy(std::move(v1)).get();
    EXPECT_EQ(v1_response.logits, v2_response.logits);
    EXPECT_EQ(v1_response.prediction, v2_response.prediction);
    EXPECT_EQ(v1_response.status, ServeStatus::Ok);

    InferRequest ghost;
    ghost.model = "ghost";
    ghost.image = frame;
    std::future<InferResponse> future =
        engine.submitLegacy(std::move(ghost));
    EXPECT_THROW(future.get(), UnknownModelError);

    InferRequest expired;
    expired.model = "m";
    expired.image = frame;
    expired.deadline = std::chrono::milliseconds(-1);
    std::future<InferResponse> expired_future =
        engine.submitLegacy(std::move(expired));
    try {
        expired_future.get();
        FAIL() << "expected ServeStatusError";
    } catch (const ServeStatusError &e) {
        EXPECT_EQ(e.status(), ServeStatus::DeadlineExceeded);
    }
}

TEST(InferenceEngine, ExpiredOnArrivalNeverReachesABatch)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    InferenceEngine engine(registry);
    engine.pause(); // deterministic: both queued before any dispatch

    InferRequest doomed;
    doomed.model = "m";
    doomed.image = testFrames(1)[0];
    doomed.deadline = std::chrono::milliseconds(-1); // expired on arrival
    std::future<InferResponse> doomed_future =
        engine.submit(std::move(doomed));

    InferRequest healthy;
    healthy.model = "m";
    healthy.image = testFrames(1)[0];
    healthy.deadline = std::chrono::hours(1);
    std::future<InferResponse> healthy_future =
        engine.submit(std::move(healthy));

    engine.resume(); // sweep runs before batch formation
    const InferResponse expired = doomed_future.get();
    EXPECT_EQ(expired.status, ServeStatus::DeadlineExceeded);
    EXPECT_EQ(expired.batch_size, 0u); // never occupied a batch slot
    EXPECT_TRUE(expired.logits.empty());

    const InferResponse served = healthy_future.get();
    EXPECT_EQ(served.status, ServeStatus::Ok);
    EXPECT_EQ(served.batch_size, 1u); // the expired one was not in it

    engine.drain();
    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.expired, 1u);
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(
        engine.metrics().statusCount(ServeStatus::DeadlineExceeded), 1u);
}

TEST(InferenceEngine, PriorityShapesBatchFormation)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    BatchingConfig config;
    config.max_batch = 2;
    InferenceEngine engine(registry, config);
    engine.pause();

    // Queue order: BE, BE, Interactive. Priority-major formation makes
    // batch 1 = {Interactive, oldest BE} and batch 2 = {BE}; FIFO
    // formation would leave the Interactive request in a singleton.
    auto submit = [&](Priority priority) {
        InferRequest request;
        request.model = "m";
        request.image = testFrames(1)[0];
        request.priority = priority;
        return engine.submit(std::move(request));
    };
    std::future<InferResponse> be_old = submit(Priority::BestEffort);
    std::future<InferResponse> be_young = submit(Priority::BestEffort);
    std::future<InferResponse> urgent = submit(Priority::Interactive);
    engine.resume();

    EXPECT_EQ(urgent.get().batch_size, 2u);
    EXPECT_EQ(be_old.get().batch_size, 2u);
    EXPECT_EQ(be_young.get().batch_size, 1u);
}

TEST(InferenceEngine, AdmissionQuotaShedsLowestPriorityFirst)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    InferenceEngine engine(registry);
    engine.setModelQuota("m", 2);
    engine.pause();

    auto submit = [&](Priority priority) {
        InferRequest request;
        request.model = "m";
        request.image = testFrames(1)[0];
        request.priority = priority;
        return engine.submit(std::move(request));
    };
    std::future<InferResponse> be_old = submit(Priority::BestEffort);
    std::future<InferResponse> be_young = submit(Priority::BestEffort);

    // Quota full; an equal-priority newcomer is shed immediately...
    std::future<InferResponse> be_extra = submit(Priority::BestEffort);
    const InferResponse shed_newcomer = be_extra.get(); // resolves now
    EXPECT_EQ(shed_newcomer.status, ServeStatus::Overloaded);
    EXPECT_NE(shed_newcomer.error.find("quota"), std::string::npos);
    EXPECT_EQ(shed_newcomer.batch_size, 0u);

    // ...but an Interactive newcomer evicts the youngest BestEffort.
    std::future<InferResponse> urgent = submit(Priority::Interactive);
    const InferResponse evicted = be_young.get();
    EXPECT_EQ(evicted.status, ServeStatus::Overloaded);

    engine.resume();
    EXPECT_EQ(urgent.get().status, ServeStatus::Ok);
    EXPECT_EQ(be_old.get().status, ServeStatus::Ok);

    engine.drain();
    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.requests, 4u);
    EXPECT_EQ(stats.shed, 2u);
    EXPECT_EQ(stats.failed, 2u);
    EXPECT_EQ(engine.metrics().statusCount(ServeStatus::Overloaded), 2u);
}

TEST(InferenceEngine, MetricsCountersStayConsistent)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    InferenceEngine engine(registry);

    std::vector<std::future<InferResponse>> futures;
    const std::vector<RealMap> frames = testFrames(8);
    for (const RealMap &frame : frames) {
        InferRequest request;
        request.model = "m";
        request.image = frame;
        futures.push_back(engine.submit(std::move(request)));
    }
    InferRequest ghost;
    ghost.model = "ghost";
    ghost.image = frames[0];
    futures.push_back(engine.submit(std::move(ghost)));
    for (auto &future : futures)
        future.get();
    engine.drain();

    const EngineStats stats = engine.stats();
    const ServeMetrics &metrics = engine.metrics();
    EXPECT_EQ(metrics.requestCount(), stats.requests);
    EXPECT_EQ(metrics.statusCount(ServeStatus::Ok),
              stats.requests - stats.failed);
    EXPECT_EQ(metrics.queueDepth(), 0);
    EXPECT_EQ(metrics.latency().count(), frames.size());
    EXPECT_GT(metrics.latency().percentileMs(0.99), 0.0);
    EXPECT_GE(metrics.latency().percentileMs(0.99),
              metrics.latency().percentileMs(0.50));
    EXPECT_EQ(metrics.batches().count(), stats.batches);

    const std::string page = engine.metrics().renderPrometheus("extra 1\n");
    EXPECT_NE(page.find("lightridge_requests_total{status=\"ok\"}"),
              std::string::npos);
    EXPECT_NE(page.find("lightridge_latency_ms_bucket"),
              std::string::npos);
    EXPECT_NE(page.find("extra 1"), std::string::npos);
}

TEST(InferenceEngine, ConcurrentClientsGetBitwiseResults)
{
    ModelRegistry registry;
    registry.registerModel("small", tinyModel(16, 1));
    registry.registerModel("large", tinyModel(24, 2));
    std::shared_ptr<const DonnModel> small = registry.acquire("small");
    std::shared_ptr<const DonnModel> large = registry.acquire("large");

    const std::vector<RealMap> frames = testFrames(8);
    std::vector<std::vector<Real>> expect_small, expect_large;
    for (const RealMap &frame : frames) {
        expect_small.push_back(directLogits(*small, frame));
        expect_large.push_back(directLogits(*large, frame));
    }

    InferenceEngine engine(registry);
    const std::size_t clients = 4;
    std::vector<int> mismatches(clients, 0);
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            for (std::size_t i = 0; i < frames.size(); ++i) {
                InferRequest request;
                request.model = (c + i) % 2 == 0 ? "small" : "large";
                request.image = frames[i];
                InferResponse response =
                    engine.inferNow(std::move(request));
                const auto &expected = (c + i) % 2 == 0
                                           ? expect_small[i]
                                           : expect_large[i];
                if (response.logits != expected)
                    ++mismatches[c];
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (std::size_t c = 0; c < clients; ++c)
        EXPECT_EQ(mismatches[c], 0) << "client " << c;
    EXPECT_EQ(engine.stats().failed, 0u);
}

TEST(InferenceEngine, UnloadWhileBusyIsSafe)
{
    ModelRegistry registry;
    DonnModel original = tinyModel(16, 1);
    DonnModel replacement = original.clone(); // same weights: results
                                              // stay bitwise comparable
    registry.registerModel("m", std::move(original));
    std::shared_ptr<const DonnModel> reference = registry.acquire("m");

    const std::vector<RealMap> frames = testFrames(4);
    std::vector<std::vector<Real>> expected;
    for (const RealMap &frame : frames)
        expected.push_back(directLogits(*reference, frame));

    InferenceEngine engine(registry);
    std::atomic<int> wrong{0};
    std::atomic<int> rejected{0};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < 3; ++c) {
        clients.emplace_back([&, c] {
            for (int round = 0; round < 12; ++round) {
                const std::size_t i = (c + round) % frames.size();
                InferRequest request;
                request.model = "m";
                request.image = frames[i];
                InferResponse response =
                    engine.inferNow(std::move(request));
                if (response.status == ServeStatus::UnknownModel)
                    ++rejected; // raced an unload window: acceptable
                else if (response.logits != expected[i])
                    ++wrong;
            }
        });
    }

    // Hot-swap and briefly unload while clients hammer the engine.
    for (int round = 0; round < 6; ++round) {
        registry.registerModel("m", replacement.clone());
        std::this_thread::yield();
        registry.unload("m");
        registry.registerModel("m", replacement.clone());
    }
    for (std::thread &t : clients)
        t.join();

    // Every response that was produced matched bitwise; unload windows
    // may reject requests but never corrupt or crash.
    EXPECT_EQ(wrong.load(), 0);
    EXPECT_EQ(engine.stats().failed,
              static_cast<std::uint64_t>(rejected.load()));
}

TEST(InferenceEngine, DrainWaitsForAllWork)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 2));
    InferenceEngine engine(registry);
    std::vector<std::future<InferResponse>> futures;
    const std::vector<RealMap> frames = testFrames(6);
    for (const RealMap &frame : frames) {
        InferRequest request;
        request.model = "m";
        request.image = frame;
        futures.push_back(engine.submit(std::move(request)));
    }
    engine.drain();
    EngineStats stats = engine.stats();
    EXPECT_EQ(stats.requests, frames.size());
    for (auto &future : futures)
        EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
}

// ---------------------------------------------------------------------
// Ensemble mode
// ---------------------------------------------------------------------

/** Every non-Ok response obeys the documented InferResponse invariant:
 *  empty logits, prediction -1, non-empty error. */
void
expectFailureContract(const InferResponse &response)
{
    ASSERT_NE(response.status, ServeStatus::Ok);
    EXPECT_TRUE(response.logits.empty())
        << serveStatusName(response.status);
    EXPECT_EQ(response.prediction, -1)
        << serveStatusName(response.status);
    EXPECT_FALSE(response.error.empty())
        << serveStatusName(response.status);
}

TEST(Fusion, RulesAreDeterministicAndDocumented)
{
    const std::vector<std::vector<Real>> members = {
        {Real(1), Real(3), Real(2)},
        {Real(2), Real(0), Real(4)},
    };
    std::vector<Real> fused;

    // mean_logits: class-wise sum, then one scale by 1/N.
    fuseLogits(FusionRule::MeanLogits, members, fused);
    ASSERT_EQ(fused.size(), 3u);
    for (std::size_t c = 0; c < 3; ++c)
        EXPECT_EQ(fused[c],
                  (members[0][c] + members[1][c]) * (Real(1) / Real(2)));

    // mean_probs: a probability distribution (sums to ~1).
    fuseLogits(FusionRule::MeanProbs, members, fused);
    Real total = 0;
    for (Real p : fused) {
        EXPECT_GT(p, Real(0));
        total += p;
    }
    EXPECT_NEAR(static_cast<double>(total), 1.0, 1e-6);

    // vote: per-member argmax counts; ties break to the lowest class.
    fuseLogits(FusionRule::Vote, members, fused);
    EXPECT_EQ(fused, (std::vector<Real>{Real(0), Real(1), Real(1)}));
    const std::vector<std::vector<Real>> tied = {
        {Real(5), Real(5), Real(1)},
    };
    fuseLogits(FusionRule::Vote, tied, fused);
    EXPECT_EQ(fused, (std::vector<Real>{Real(1), Real(0), Real(0)}));

    EXPECT_THROW(fuseLogits(FusionRule::MeanLogits, {}, fused),
                 std::invalid_argument);
    const std::vector<std::vector<Real>> ragged = {
        {Real(1), Real(2)},
        {Real(1), Real(2), Real(3)},
    };
    EXPECT_THROW(fuseLogits(FusionRule::MeanLogits, ragged, fused),
                 std::invalid_argument);

    for (const FusionRule rule :
         {FusionRule::MeanLogits, FusionRule::MeanProbs, FusionRule::Vote})
        EXPECT_EQ(fusionRuleFromName(fusionRuleName(rule)), rule);
    EXPECT_THROW(fusionRuleFromName("median"), std::invalid_argument);
}

TEST(ModelRegistry, EnsembleDeclarationAndValidation)
{
    ModelRegistry registry;
    registry.registerModel("a", tinyModel(16, 1));
    registry.registerModel("b", tinyModel(16, 2));

    EnsembleSpec spec;
    spec.name = "duo";
    spec.members = {"a", "b"};
    registry.registerEnsemble(spec);

    EXPECT_TRUE(registry.isEnsemble("duo"));
    EXPECT_FALSE(registry.isEnsemble("a"));
    EXPECT_TRUE(registry.has("duo"));
    EXPECT_EQ(registry.size(), 3u);
    const std::vector<std::string> names = registry.names();
    EXPECT_NE(std::find(names.begin(), names.end(), "duo"), names.end());

    // An ensemble name has no single instance to acquire.
    EXPECT_THROW(registry.acquire("duo"), UnknownModelError);

    ResolvedEnsemble resolved = registry.resolveEnsemble("duo");
    ASSERT_EQ(resolved.members.size(), 2u);
    EXPECT_EQ(resolved.spec.name, "duo");
    EXPECT_EQ(resolved.members[0], registry.acquire("a"));

    // Validation: empty members, self-reference, missing member,
    // nesting, model/ensemble name collisions (both directions).
    EnsembleSpec bad;
    bad.name = "empty";
    EXPECT_THROW(registry.registerEnsemble(bad), std::invalid_argument);
    bad.name = "selfish";
    bad.members = {"a", "selfish"};
    EXPECT_THROW(registry.registerEnsemble(bad), std::invalid_argument);
    bad.name = "ghostly";
    bad.members = {"a", "ghost"};
    EXPECT_THROW(registry.registerEnsemble(bad), std::invalid_argument);
    bad.name = "nested";
    bad.members = {"duo"};
    EXPECT_THROW(registry.registerEnsemble(bad), std::invalid_argument);
    bad.name = "a"; // collides with a registered model
    bad.members = {"b"};
    EXPECT_THROW(registry.registerEnsemble(bad), std::invalid_argument);
    EXPECT_THROW(registry.registerModel("duo", tinyModel(16, 3)),
                 std::invalid_argument);

    // Unloading a member keeps the ensemble declared but unresolvable.
    EXPECT_TRUE(registry.unload("a"));
    EXPECT_TRUE(registry.isEnsemble("duo"));
    EXPECT_THROW(registry.resolveEnsemble("duo"), UnknownModelError);
    registry.registerModel("a", tinyModel(16, 1));
    EXPECT_NO_THROW(registry.resolveEnsemble("duo"));

    EXPECT_TRUE(registry.unload("duo"));
    EXPECT_FALSE(registry.has("duo"));
    EXPECT_THROW(registry.resolveEnsemble("duo"), UnknownModelError);
}

TEST(InferenceEngine, EnsembleFusionMatchesOfflineFusion)
{
    ModelRegistry registry;
    registry.registerModel("m1", tinyModel(16, 11));
    registry.registerModel("m2", tinyModel(16, 12));
    registry.registerModel("m3", tinyModel(16, 13));
    const std::vector<std::shared_ptr<const DonnModel>> members = {
        registry.acquire("m1"), registry.acquire("m2"),
        registry.acquire("m3")};
    const std::vector<FusionRule> rules = {
        FusionRule::MeanLogits, FusionRule::MeanProbs, FusionRule::Vote};
    for (const FusionRule rule : rules) {
        EnsembleSpec spec;
        spec.name = std::string("ens_") + fusionRuleName(rule);
        spec.members = {"m1", "m2", "m3"};
        spec.fusion = rule;
        registry.registerEnsemble(spec);
    }

    InferenceEngine engine(registry);
    const std::vector<RealMap> frames = testFrames(6);
    for (const FusionRule rule : rules) {
        const std::string name =
            std::string("ens_") + fusionRuleName(rule);
        std::vector<std::future<InferResponse>> futures;
        for (std::size_t i = 0; i < frames.size(); ++i) {
            InferRequest request;
            request.model = name;
            request.image = frames[i];
            request.id = i + 1;
            futures.push_back(engine.submit(std::move(request)));
        }
        for (std::size_t i = 0; i < frames.size(); ++i) {
            const InferResponse response = futures[i].get();
            ASSERT_EQ(response.status, ServeStatus::Ok)
                << fusionRuleName(rule) << ": " << response.error;
            EXPECT_EQ(response.id, i + 1);
            EXPECT_EQ(response.model, name);
            EXPECT_EQ(response.fan_out, 3u);
            EXPECT_GE(response.batch_size, 1u);

            // Bitwise parity: the engine's fused logits equal offline
            // fusion of the members' direct inference outputs.
            std::vector<std::vector<Real>> member_logits;
            for (const auto &member : members)
                member_logits.push_back(directLogits(*member, frames[i]));
            std::vector<Real> expected;
            fuseLogits(rule, member_logits, expected);
            EXPECT_EQ(response.logits, expected) << fusionRuleName(rule);
            EXPECT_EQ(response.prediction,
                      static_cast<int>(
                          std::max_element(expected.begin(),
                                           expected.end()) -
                          expected.begin()));
        }
    }
    engine.drain();

    const EngineStats stats = engine.stats();
    const std::size_t calls = rules.size() * frames.size();
    EXPECT_EQ(stats.ensembles, calls);
    EXPECT_EQ(stats.fan_out, calls * 3);
    // Each ensemble call = 3 member sub-requests + 1 fused response.
    EXPECT_EQ(stats.requests, calls * 4);
    EXPECT_EQ(stats.failed, 0u);
    const ServeMetrics &metrics = engine.metrics();
    EXPECT_EQ(metrics.requestCount(), stats.requests);
    EXPECT_EQ(metrics.ensembleCount(), stats.ensembles);
    EXPECT_EQ(metrics.ensembleFanOut(), stats.fan_out);
    EXPECT_NE(metrics.renderPrometheus().find(
                  "lightridge_ensemble_fan_out_total"),
              std::string::npos);
}

TEST(InferenceEngine, EnsembleMemberShedFailsTheFusedResponse)
{
    ModelRegistry registry;
    registry.registerModel("a", tinyModel(16, 1));
    registry.registerModel("b", tinyModel(16, 2));
    EnsembleSpec spec;
    spec.name = "duo";
    spec.members = {"a", "b"};
    registry.registerEnsemble(spec);

    InferenceEngine engine(registry);
    engine.setModelQuota("a", 1);
    engine.pause();

    // Fill member a's quota with a plain request, then fan out: the
    // ensemble's sub-request for a is shed (equal priority never
    // evicts), so the fused response fails Overloaded.
    InferRequest plain;
    plain.model = "a";
    plain.image = testFrames(1)[0];
    std::future<InferResponse> plain_future =
        engine.submit(std::move(plain));

    InferRequest fanout;
    fanout.model = "duo";
    fanout.image = testFrames(1)[0];
    std::future<InferResponse> fused_future =
        engine.submit(std::move(fanout));

    engine.resume();
    const InferResponse fused = fused_future.get();
    EXPECT_EQ(fused.status, ServeStatus::Overloaded);
    expectFailureContract(fused);
    EXPECT_NE(fused.error.find("\"a\""), std::string::npos)
        << fused.error;
    EXPECT_EQ(plain_future.get().status, ServeStatus::Ok);

    engine.drain();
    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(stats.failed, 2u); // the shed member + the fused parent
    EXPECT_EQ(engine.metrics().requestCount(), stats.requests);
}

TEST(InferenceEngine, EnsembleDeadlineExpiryMapsToDeadlineExceeded)
{
    ModelRegistry registry;
    registry.registerModel("a", tinyModel(16, 1));
    registry.registerModel("b", tinyModel(16, 2));
    EnsembleSpec spec;
    spec.name = "duo";
    spec.members = {"a", "b"};
    registry.registerEnsemble(spec);

    InferenceEngine engine(registry);
    engine.pause(); // both members queued, then swept on resume

    InferRequest doomed;
    doomed.model = "duo";
    doomed.image = testFrames(1)[0];
    doomed.deadline = std::chrono::milliseconds(-1);
    std::future<InferResponse> future = engine.submit(std::move(doomed));

    engine.resume();
    const InferResponse response = future.get();
    EXPECT_EQ(response.status, ServeStatus::DeadlineExceeded);
    expectFailureContract(response);
    EXPECT_EQ(response.batch_size, 0u);

    engine.drain();
    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.expired, 2u); // both member sub-requests
    EXPECT_EQ(stats.failed, 3u);
    EXPECT_EQ(stats.requests, 3u);
    EXPECT_EQ(stats.batches, 0u); // nothing reached a batch slot
}

TEST(InferenceEngine, EnsembleAfterMemberUnloadIsUnknownModel)
{
    ModelRegistry registry;
    registry.registerModel("a", tinyModel(16, 1));
    registry.registerModel("b", tinyModel(16, 2));
    EnsembleSpec spec;
    spec.name = "duo";
    spec.members = {"a", "b"};
    registry.registerEnsemble(spec);
    registry.unload("b");

    InferenceEngine engine(registry);
    InferRequest request;
    request.model = "duo";
    request.image = testFrames(1)[0];
    const InferResponse response = engine.inferNow(std::move(request));
    EXPECT_EQ(response.status, ServeStatus::UnknownModel);
    expectFailureContract(response);
    EXPECT_NE(response.error.find("b"), std::string::npos);
}

TEST(InferenceEngine, UnloadMemberWhileEnsembleBusyIsSafe)
{
    ModelRegistry registry;
    DonnModel original = tinyModel(16, 1);
    DonnModel replacement = original.clone(); // same weights: fused
                                              // results stay comparable
    registry.registerModel("a", std::move(original));
    registry.registerModel("b", tinyModel(16, 2));
    EnsembleSpec spec;
    spec.name = "duo";
    spec.members = {"a", "b"};
    registry.registerEnsemble(spec);

    const std::vector<RealMap> frames = testFrames(4);
    std::vector<std::vector<Real>> expected;
    {
        std::shared_ptr<const DonnModel> a = registry.acquire("a");
        std::shared_ptr<const DonnModel> b = registry.acquire("b");
        for (const RealMap &frame : frames) {
            std::vector<Real> fused;
            fuseLogits(FusionRule::MeanLogits,
                       {directLogits(*a, frame), directLogits(*b, frame)},
                       fused);
            expected.push_back(std::move(fused));
        }
    }

    InferenceEngine engine(registry);
    std::atomic<int> wrong{0};
    std::atomic<int> rejected{0};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < 3; ++c) {
        clients.emplace_back([&, c] {
            for (int round = 0; round < 12; ++round) {
                const std::size_t i = (c + round) % frames.size();
                InferRequest request;
                request.model = "duo";
                request.image = frames[i];
                InferResponse response =
                    engine.inferNow(std::move(request));
                if (response.status == ServeStatus::UnknownModel) {
                    ++rejected; // raced an unload window: acceptable
                } else if (response.status != ServeStatus::Ok ||
                           response.logits != expected[i]) {
                    ++wrong;
                }
            }
        });
    }

    // Hot-swap and briefly unload a member while clients hammer the
    // ensemble. In-flight requests finish on their pinned instances.
    for (int round = 0; round < 6; ++round) {
        registry.registerModel("a", replacement.clone());
        std::this_thread::yield();
        registry.unload("a");
        registry.registerModel("a", replacement.clone());
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(wrong.load(), 0);
    engine.drain();
}

TEST(InferenceEngine, RetryAfterSecondsStaysClamped)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    InferenceEngine engine(registry);
    EXPECT_EQ(engine.retryAfterSeconds(), 1); // idle engine: minimum

    InferRequest request;
    request.model = "m";
    request.image = testFrames(1)[0];
    engine.inferNow(std::move(request));
    const int after = engine.retryAfterSeconds();
    EXPECT_GE(after, 1);
    EXPECT_LE(after, 60);
}

TEST(InferenceEngine, NonOkResponsesKeepTheContract)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    InferenceEngine engine(registry);

    InferRequest ghost;
    ghost.model = "ghost";
    ghost.image = testFrames(1)[0];
    expectFailureContract(engine.inferNow(std::move(ghost)));

    InferRequest late;
    late.model = "m";
    late.image = testFrames(1)[0];
    late.deadline = std::chrono::milliseconds(-1);
    expectFailureContract(engine.inferNow(std::move(late)));

    engine.setModelQuota("m", 1);
    engine.pause();
    InferRequest fill;
    fill.model = "m";
    fill.image = testFrames(1)[0];
    std::future<InferResponse> queued = engine.submit(std::move(fill));
    InferRequest extra;
    extra.model = "m";
    extra.image = testFrames(1)[0];
    std::future<InferResponse> shed = engine.submit(std::move(extra));
    expectFailureContract(shed.get());
    engine.resume();
    EXPECT_EQ(queued.get().status, ServeStatus::Ok);
    engine.drain();
}

#if defined(LIGHTRIDGE_ALLOC_STATS)
TEST(InferenceEngine, SteadyStateEnsembleServingAllocatesNoFields)
{
    ModelRegistry registry;
    registry.registerModel("a", tinyModel(16, 1));
    registry.registerModel("b", tinyModel(16, 2));
    EnsembleSpec spec;
    spec.name = "duo";
    spec.members = {"a", "b"};
    registry.registerEnsemble(spec);
    InferenceEngine engine(registry);
    const std::vector<RealMap> frames = testFrames(6);

    auto burst = [&] {
        std::vector<std::future<InferResponse>> futures;
        for (const RealMap &frame : frames) {
            InferRequest request;
            request.model = "duo";
            request.image = frame;
            futures.push_back(engine.submit(std::move(request)));
        }
        for (auto &future : futures)
            ASSERT_EQ(future.get().status, ServeStatus::Ok);
    };

    burst(); // warm arenas, plans, modulation tables
    engine.drain();
    resetFieldAllocCount();
    burst(); // steady state: fan-out borrows the parent frame in place
    engine.drain();
    EXPECT_EQ(fieldAllocCount(), 0u);
}
#endif

#if defined(LIGHTRIDGE_ALLOC_STATS)
TEST(InferenceEngine, SteadyStateServingAllocatesNoFields)
{
    ModelRegistry registry;
    registry.registerModel("m", tinyModel(16, 1));
    InferenceEngine engine(registry);
    const std::vector<RealMap> frames = testFrames(6);

    auto burst = [&] {
        std::vector<std::future<InferResponse>> futures;
        for (const RealMap &frame : frames) {
            InferRequest request;
            request.model = "m";
            request.image = frame;
            futures.push_back(engine.submit(std::move(request)));
        }
        for (auto &future : futures)
            future.get();
    };

    burst(); // warm arenas, plans, modulation tables
    engine.drain();
    resetFieldAllocCount();
    burst(); // steady state: one shared instance, zero clones/buffers
    engine.drain();
    EXPECT_EQ(fieldAllocCount(), 0u);
}
#endif

} // namespace
} // namespace lightridge
