/**
 * @file
 * Optical physics kernel validation: transfer-function properties, energy
 * conservation, agreement between numerical routes, analytic Gaussian-beam
 * diffraction, Fraunhofer far-field structure, and adjoint correctness.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "optics/diffraction.hpp"
#include "optics/laser.hpp"
#include "optics/propagator.hpp"
#include "utils/rng.hpp"

namespace lightridge {
namespace {

Field
randomField(std::size_t n, uint64_t seed)
{
    Rng rng(seed);
    Field f(n, n);
    for (std::size_t i = 0; i < f.size(); ++i)
        f[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    return f;
}

PropagatorConfig
baseConfig(std::size_t n = 64)
{
    PropagatorConfig cfg;
    cfg.grid = Grid{n, 36e-6};
    cfg.wavelength = 532e-9;
    cfg.distance = 0.05;
    return cfg;
}

TEST(Grid, CoordinatesAndFrequencies)
{
    Grid g{8, 1e-3};
    EXPECT_DOUBLE_EQ(g.aperture(), 8e-3);
    EXPECT_DOUBLE_EQ(g.coord(4), 0.0);
    EXPECT_DOUBLE_EQ(g.coord(0), -4e-3);
    EXPECT_DOUBLE_EQ(g.freq(0), 0.0);
    EXPECT_DOUBLE_EQ(g.freq(1), 1.0 / 8e-3);
    EXPECT_DOUBLE_EQ(g.freq(7), -1.0 / 8e-3);  // wrapped negative bin
    EXPECT_DOUBLE_EQ(g.freq(4), -4.0 / 8e-3);  // Nyquist
}

TEST(TransferFunction, AngularSpectrumHasUnitModulus)
{
    Grid g{32, 36e-6};
    Field h = transferFunction(Diffraction::RayleighSommerfeld,
                               PropagationMethod::TransferFunction, g,
                               532e-9, 0.05);
    // All sampled frequencies here are propagating (pitch >> lambda).
    for (std::size_t i = 0; i < h.size(); ++i)
        EXPECT_NEAR(std::abs(h[i]), 1.0, 1e-12);
}

TEST(TransferFunction, FresnelHasUnitModulus)
{
    Grid g{32, 36e-6};
    Field h = transferFunction(Diffraction::Fresnel,
                               PropagationMethod::TransferFunction, g,
                               532e-9, 0.05);
    for (std::size_t i = 0; i < h.size(); ++i)
        EXPECT_NEAR(std::abs(h[i]), 1.0, 1e-12);
}

TEST(TransferFunction, DcBinIsPlaneWavePhase)
{
    Grid g{16, 36e-6};
    Real z = 0.02, lambda = 532e-9;
    Field h = transferFunction(Diffraction::RayleighSommerfeld,
                               PropagationMethod::TransferFunction, g,
                               lambda, z);
    Complex expected = std::polar(Real(1), waveNumber(lambda) * z);
    EXPECT_NEAR(std::abs(h(0, 0) - expected), 0.0, 1e-9);
}

TEST(TransferFunction, FraunhoferRouteThrows)
{
    Grid g{16, 36e-6};
    EXPECT_THROW(transferFunction(Diffraction::Fraunhofer,
                                  PropagationMethod::TransferFunction, g,
                                  532e-9, 0.05),
                 std::invalid_argument);
}

TEST(TransferFunction, BadArgumentsThrow)
{
    Grid g{16, 36e-6};
    EXPECT_THROW(transferFunction(Diffraction::Fresnel,
                                  PropagationMethod::TransferFunction, g,
                                  -1.0, 0.05),
                 std::invalid_argument);
    EXPECT_THROW(transferFunction(Diffraction::Fresnel,
                                  PropagationMethod::TransferFunction, g,
                                  532e-9, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(transferFunction(Diffraction::Fresnel,
                                  PropagationMethod::TransferFunction,
                                  Grid{0, 1e-6}, 532e-9, 0.05),
                 std::invalid_argument);
}

TEST(Propagator, ConservesEnergyUnpadded)
{
    Propagator prop(baseConfig());
    Field u = randomField(64, 1);
    Real before = u.power();
    Field out = prop.forward(u);
    EXPECT_NEAR(out.power(), before, 1e-8 * before);
}

TEST(Propagator, ZeroFieldStaysZero)
{
    Propagator prop(baseConfig(32));
    Field u(32, 32, Complex{0, 0});
    Field out = prop.forward(u);
    EXPECT_NEAR(out.power(), 0.0, 1e-20);
}

TEST(Propagator, LinearInInput)
{
    Propagator prop(baseConfig(32));
    Field a = randomField(32, 2);
    Field b = randomField(32, 3);
    Complex ca{0.3, 0.7};

    Field combined(32, 32);
    for (std::size_t i = 0; i < combined.size(); ++i)
        combined[i] = ca * a[i] + b[i];
    Field out_combined = prop.forward(combined);

    Field out_a = prop.forward(a);
    Field out_b = prop.forward(b);
    Field expected(32, 32);
    for (std::size_t i = 0; i < expected.size(); ++i)
        expected[i] = ca * out_a[i] + out_b[i];
    EXPECT_LT(maxAbsDiff(out_combined, expected), 1e-10);
}

TEST(Propagator, ComposesAcrossDistance)
{
    // Propagating z then z must equal propagating 2z (group property).
    PropagatorConfig cfg = baseConfig(48);
    Propagator one(cfg);
    cfg.distance *= 2;
    Propagator two(cfg);

    Field u = randomField(48, 4);
    Field via_two_hops = one.forward(one.forward(u));
    Field direct = two.forward(u);
    EXPECT_LT(maxAbsDiff(via_two_hops, direct), 1e-8);
}

TEST(Propagator, AdjointMatchesInnerProduct)
{
    for (auto approx : {Diffraction::RayleighSommerfeld,
                        Diffraction::Fresnel, Diffraction::Fraunhofer}) {
        PropagatorConfig cfg = baseConfig(24);
        cfg.approx = approx;
        cfg.distance = 0.3; // far enough for fraunhofer to be sane
        Propagator prop(cfg);
        Field x = randomField(24, 5);
        Field y = randomField(24, 6);
        Field fx = prop.forward(x);
        Field aty = prop.adjoint(y);
        Complex lhs{0, 0}, rhs{0, 0};
        for (std::size_t i = 0; i < x.size(); ++i) {
            lhs += std::conj(fx[i]) * y[i];
            rhs += std::conj(x[i]) * aty[i];
        }
        EXPECT_NEAR(std::abs(lhs - rhs), 0.0,
                    1e-6 * std::max<Real>(1.0, std::abs(lhs)))
            << diffractionName(approx);
    }
}

TEST(Propagator, AdjointMatchesInnerProductWithPadding)
{
    PropagatorConfig cfg = baseConfig(20);
    cfg.pad_factor = 2;
    Propagator prop(cfg);
    Field x = randomField(20, 7);
    Field y = randomField(20, 8);
    Field fx = prop.forward(x);
    Field aty = prop.adjoint(y);
    Complex lhs{0, 0}, rhs{0, 0};
    for (std::size_t i = 0; i < x.size(); ++i) {
        lhs += std::conj(fx[i]) * y[i];
        rhs += std::conj(x[i]) * aty[i];
    }
    EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-8);
}

TEST(Propagator, ImpulseResponseAgreesWithAngularSpectrum)
{
    // In a well-sampled regime the paper's Eq. 1 sampled-kernel route and
    // the analytic angular spectrum must coincide on the bulk field.
    PropagatorConfig cfg;
    cfg.grid = Grid{128, 36e-6};
    cfg.wavelength = 532e-9;
    cfg.distance = 0.10;
    cfg.pad_factor = 2;
    cfg.method = PropagationMethod::TransferFunction;
    Propagator as(cfg);
    cfg.method = PropagationMethod::ImpulseResponse;
    Propagator ir(cfg);

    // Small centered Gaussian spot.
    Field u(128, 128, Complex{0, 0});
    for (std::size_t r = 54; r < 74; ++r)
        for (std::size_t c = 54; c < 74; ++c) {
            Real dr = static_cast<Real>(r) - 64, dc = static_cast<Real>(c) - 64;
            u(r, c) = std::exp(-(dr * dr + dc * dc) / 50.0);
        }

    Field a = as.forward(u);
    Field b = ir.forward(u);
    Real corr = correlation(a.intensity(), b.intensity());
    EXPECT_GT(corr, 0.98);
}

TEST(Propagator, FresnelAgreesWithRayleighSommerfeldParaxial)
{
    // Paraxial regime: large z relative to aperture -> Fresnel is valid.
    PropagatorConfig cfg;
    cfg.grid = Grid{96, 36e-6};
    cfg.wavelength = 532e-9;
    cfg.distance = 0.30;
    cfg.approx = Diffraction::RayleighSommerfeld;
    Propagator rs(cfg);
    cfg.approx = Diffraction::Fresnel;
    Propagator fr(cfg);

    Field u(96, 96, Complex{0, 0});
    for (std::size_t r = 40; r < 56; ++r)
        for (std::size_t c = 40; c < 56; ++c)
            u(r, c) = Complex{1, 0};

    Field a = rs.forward(u);
    Field b = fr.forward(u);
    EXPECT_GT(correlation(a.intensity(), b.intensity()), 0.995);
}

TEST(Propagator, GaussianBeamSpreadsPerAnalyticFormula)
{
    // Launch a Gaussian beam and compare the second-moment width after
    // propagation against w(z) = w0 sqrt(1 + (z/zR)^2).
    const std::size_t n = 256;
    const Real pitch = 10e-6;
    const Real lambda = 532e-9;
    const Real w0 = 120e-6;
    const Real z = 0.2;

    PropagatorConfig cfg;
    cfg.grid = Grid{n, pitch};
    cfg.wavelength = lambda;
    cfg.distance = z;
    cfg.pad_factor = 2;
    Propagator prop(cfg);

    Grid grid = cfg.grid;
    Field u(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) {
            Real x = grid.coord(c), y = grid.coord(r);
            u(r, c) = std::exp(-(x * x + y * y) / (w0 * w0));
        }

    Field out = prop.forward(u);
    RealMap intensity = out.intensity();

    // Second moment along x: for I ~ exp(-2 r^2 / w^2), <x^2> = w^2/4.
    Real total = 0, mx2 = 0;
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) {
            Real x = grid.coord(c);
            total += intensity(r, c);
            mx2 += intensity(r, c) * x * x;
        }
    Real w_measured = 2.0 * std::sqrt(mx2 / total);
    Real w_expected = gaussianBeamRadius(w0, lambda, z);
    EXPECT_NEAR(w_measured, w_expected, 0.03 * w_expected);
}

TEST(Propagator, FraunhoferOutputPitchMatchesFormula)
{
    PropagatorConfig cfg = baseConfig(100);
    cfg.approx = Diffraction::Fraunhofer;
    cfg.distance = 1.0;
    Propagator prop(cfg);
    Real expected = cfg.wavelength * cfg.distance /
                    (100 * cfg.grid.pitch);
    EXPECT_NEAR(prop.outputPitch(), expected, 1e-15);
}

TEST(Propagator, FraunhoferCircularApertureGivesAiryPattern)
{
    // The far field of a circular aperture is the Airy disk: first zero at
    // radius 1.22 * lambda * z / D.
    const std::size_t n = 200;
    const Real pitch = 10e-6;
    const Real lambda = 532e-9;
    const Real z = 2.0;
    const Real aperture_d = 0.6e-3; // diameter

    PropagatorConfig cfg;
    cfg.grid = Grid{n, pitch};
    cfg.wavelength = lambda;
    cfg.distance = z;
    cfg.approx = Diffraction::Fraunhofer;
    Propagator prop(cfg);

    Grid grid = cfg.grid;
    Field u(n, n, Complex{0, 0});
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) {
            Real x = grid.coord(c), y = grid.coord(r);
            if (x * x + y * y <= aperture_d * aperture_d / 4)
                u(r, c) = Complex{1, 0};
        }

    Field out = prop.forward(u);
    RealMap intensity = out.intensity();

    // Peak must be at the center.
    std::size_t peak_r = 0, peak_c = 0;
    Real peak = -1;
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            if (intensity(r, c) > peak) {
                peak = intensity(r, c);
                peak_r = r;
                peak_c = c;
            }
    EXPECT_EQ(peak_r, n / 2);
    EXPECT_EQ(peak_c, n / 2);

    // First minimum along the +x axis near 1.22 lambda z / D.
    Real expected_zero = 1.22 * lambda * z / aperture_d;
    Real out_pitch = prop.outputPitch();
    std::size_t idx_min = 0;
    Real min_val = 1e300;
    for (std::size_t c = n / 2 + 1; c < n - 1; ++c) {
        Real val = intensity(n / 2, c);
        if (val < min_val) {
            min_val = val;
            idx_min = c;
        }
        if (val > 10 * min_val)
            break; // passed the first ring
    }
    Real measured_zero = (static_cast<Real>(idx_min) - n / 2) * out_pitch;
    EXPECT_NEAR(measured_zero, expected_zero, 0.1 * expected_zero);
}

TEST(Laser, PlaneProfileIsUniform)
{
    Laser laser;
    Field p = sourceProfile(laser, Grid{16, 1e-5});
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_EQ(p[i], (Complex{1, 0}));
}

TEST(Laser, GaussianProfilePeaksAtCenter)
{
    Laser laser;
    laser.profile = BeamProfile::Gaussian;
    laser.waist = 2e-4;
    Grid g{32, 2e-5};
    Field p = sourceProfile(laser, g);
    Real center = std::abs(p(16, 16));
    Real corner = std::abs(p(0, 0));
    EXPECT_GT(center, 0.9);
    EXPECT_LT(corner, center);
}

TEST(Laser, BesselProfileHasCentralLobeAndRings)
{
    Laser laser;
    laser.profile = BeamProfile::Bessel;
    Grid g{64, 2e-5};
    Field p = sourceProfile(laser, g);
    EXPECT_NEAR(std::abs(p(32, 32)), 1.0, 0.05);
    // J0 goes negative between rings somewhere along the axis.
    bool has_negative = false;
    for (std::size_t c = 32; c < 64; ++c)
        if (p(32, c).real() < -0.01)
            has_negative = true;
    EXPECT_TRUE(has_negative);
}

TEST(Laser, EncodeInputPutsImageOnAmplitude)
{
    Laser laser;
    Grid g{8, 1e-5};
    RealMap image(8, 8, 0.0);
    image(3, 4) = 0.7;
    Field f = encodeInput(image, laser, g);
    EXPECT_EQ(f(3, 4), (Complex{0.7, 0}));
    EXPECT_EQ(f(0, 0), (Complex{0, 0}));
}

TEST(Validity, FresnelAndFraunhoferBounds)
{
    Grid g{64, 36e-6};
    Real lambda = 532e-9;
    // Very close: neither valid.
    EXPECT_FALSE(fresnelValid(g, lambda, 1e-4));
    EXPECT_FALSE(fraunhoferValid(g, lambda, 1e-4));
    // Very far: both valid.
    EXPECT_TRUE(fresnelValid(g, lambda, 100.0));
    EXPECT_TRUE(fraunhoferValid(g, lambda, 100.0));
}

TEST(Validity, HalfConeIdealDistanceScalesWithPitch)
{
    Real lambda = 532e-9;
    Real d_small = idealDistanceHalfCone(Grid{100, 10e-6}, lambda);
    Real d_large = idealDistanceHalfCone(Grid{100, 40e-6}, lambda);
    EXPECT_GT(d_large, d_small); // bigger units diffract less -> need more z
    EXPECT_GT(d_small, 0.0);
}

TEST(Validity, SubWavelengthUnitsReturnZeroDistance)
{
    EXPECT_DOUBLE_EQ(idealDistanceHalfCone(Grid{10, 200e-9}, 532e-9), 0.0);
}

} // namespace
} // namespace lightridge
