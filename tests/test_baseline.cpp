/**
 * @file
 * LightPipes-like baseline engine tests. The baseline must compute the
 * SAME physics as LightRidge (it differs only in computational structure),
 * so the key property is numerical agreement with the optimized kernels.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/lightpipes_like.hpp"
#include "fft/fft.hpp"
#include "optics/propagator.hpp"
#include "oracle/dft_oracle.hpp"
#include "utils/rng.hpp"

namespace lightridge {
namespace {

using namespace baseline;

TEST(LpFft, MatchesPlannedFft1d)
{
    const std::size_t n = 60;
    Rng rng(2);
    std::vector<Real> re(n), im(n);
    std::vector<Complex> reference(n);
    for (std::size_t i = 0; i < n; ++i) {
        re[i] = rng.uniform(-1, 1);
        im[i] = rng.uniform(-1, 1);
        reference[i] = Complex{re[i], im[i]};
    }
    lpFft1d(&re, &im, -1);
    FftPlan plan(n);
    plan.forward(reference.data());
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(re[i], reference[i].real(), 1e-9);
        EXPECT_NEAR(im[i], reference[i].imag(), 1e-9);
    }
}

TEST(LpFft, InverseRoundTrip)
{
    const std::size_t n = 50;
    Rng rng(3);
    std::vector<Real> re(n), im(n), orig_re, orig_im;
    for (std::size_t i = 0; i < n; ++i) {
        re[i] = rng.uniform(-1, 1);
        im[i] = rng.uniform(-1, 1);
    }
    orig_re = re;
    orig_im = im;
    lpFft1d(&re, &im, -1);
    lpFft1d(&re, &im, +1);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(re[i], orig_re[i], 1e-9);
        EXPECT_NEAR(im[i], orig_im[i], 1e-9);
    }
}

TEST(LpFft, PrimeSizeFallback)
{
    const std::size_t n = 31;
    Rng rng(4);
    std::vector<Real> re(n), im(n);
    std::vector<Complex> reference(n);
    for (std::size_t i = 0; i < n; ++i) {
        re[i] = rng.uniform(-1, 1);
        im[i] = rng.uniform(-1, 1);
        reference[i] = Complex{re[i], im[i]};
    }
    lpFft1d(&re, &im, -1);
    auto slow = oracle::dft1d(reference, -1);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(re[i], slow[i].real(), 1e-9);
        EXPECT_NEAR(im[i], slow[i].imag(), 1e-9);
    }
}

TEST(LpFft2d, MatchesPlanned2d)
{
    const std::size_t n = 20;
    Rng rng(5);
    std::vector<Real> re(n * n), im(n * n);
    Field reference(n, n);
    for (std::size_t i = 0; i < n * n; ++i) {
        re[i] = rng.uniform(-1, 1);
        im[i] = rng.uniform(-1, 1);
        reference[i] = Complex{re[i], im[i]};
    }
    lpFft2d(n, &re, &im, -1);
    Fft2d fft(n, n);
    fft.forward(&reference);
    for (std::size_t i = 0; i < n * n; ++i) {
        EXPECT_NEAR(re[i], reference[i].real(), 1e-8);
        EXPECT_NEAR(im[i], reference[i].imag(), 1e-8);
    }
}

TEST(LpComplexMultiply, MatchesComplexArithmetic)
{
    Rng rng(6);
    const std::size_t n = 17;
    std::vector<Real> ar(n), ai(n), br(n), bi(n);
    std::vector<Complex> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
        ar[i] = rng.uniform(-1, 1);
        ai[i] = rng.uniform(-1, 1);
        br[i] = rng.uniform(-1, 1);
        bi[i] = rng.uniform(-1, 1);
        a[i] = Complex{ar[i], ai[i]};
        b[i] = Complex{br[i], bi[i]};
    }
    lpComplexMultiply(&ar, &ai, br, bi);
    for (std::size_t i = 0; i < n; ++i) {
        Complex expected = a[i] * b[i];
        EXPECT_NEAR(ar[i], expected.real(), 1e-12);
        EXPECT_NEAR(ai[i], expected.imag(), 1e-12);
    }
}

TEST(LpForvard, MatchesLightRidgePropagator)
{
    const std::size_t n = 48;
    const Real pitch = 36e-6, lambda = 532e-9, z = 0.05;

    Rng rng(7);
    RealMap amplitude(n, n);
    for (std::size_t i = 0; i < amplitude.size(); ++i)
        amplitude[i] = rng.uniform(0, 1);

    // Baseline path.
    LpField lp = lpBegin(n, pitch, lambda);
    lpSetAmplitude(&lp, amplitude);
    lpForvard(&lp, z);
    Field lp_out = lpToField(lp);

    // LightRidge path.
    PropagatorConfig cfg;
    cfg.grid = Grid{n, pitch};
    cfg.wavelength = lambda;
    cfg.distance = z;
    Propagator prop(cfg);
    Field lr_out = prop.forward(Field::fromAmplitude(amplitude));

    EXPECT_LT(maxAbsDiff(lp_out, lr_out), 1e-8);
}

TEST(LpSubPhase, AppliesPhaseRotation)
{
    LpField lp = lpBegin(4, 1e-5, 532e-9);
    RealMap phase(4, 4, kPi / 2);
    lpSubPhase(&lp, phase);
    // 1 * e^{j pi/2} = j.
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_NEAR(lp.re[i], 0.0, 1e-12);
        EXPECT_NEAR(lp.im[i], 1.0, 1e-12);
    }
}

TEST(LpDonnForward, MatchesLightRidgeEndToEnd)
{
    const std::size_t n = 32;
    const Real pitch = 36e-6, lambda = 532e-9;
    const Real z = idealDistanceHalfCone(Grid{n, pitch}, lambda);

    Rng rng(8);
    RealMap input(n, n);
    std::vector<RealMap> phases;
    for (int l = 0; l < 3; ++l) {
        RealMap phase(n, n);
        for (std::size_t i = 0; i < phase.size(); ++i)
            phase[i] = rng.uniform(0, kTwoPi);
        phases.push_back(phase);
    }
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = rng.uniform(0, 1);

    RealMap lp_intensity = lpDonnForward(input, phases, pitch, lambda, z);

    // Equivalent LightRidge stack.
    PropagatorConfig cfg;
    cfg.grid = Grid{n, pitch};
    cfg.wavelength = lambda;
    cfg.distance = z;
    auto prop = std::make_shared<Propagator>(cfg);
    Field u = Field::fromAmplitude(input);
    for (const RealMap &phase : phases) {
        u = prop->forward(u);
        for (std::size_t i = 0; i < u.size(); ++i)
            u[i] *= std::polar(Real(1), phase[i]);
    }
    u = prop->forward(u);
    RealMap lr_intensity = u.intensity();

    EXPECT_GT(correlation(lp_intensity, lr_intensity), 0.999999);
    EXPECT_LT(maxAbsDiff(lp_intensity, lr_intensity), 1e-7);
}

TEST(LpField, ShapeMismatchThrows)
{
    LpField lp = lpBegin(8, 1e-5, 532e-9);
    RealMap wrong(4, 4, 0.0);
    EXPECT_THROW(lpSetAmplitude(&lp, wrong), std::invalid_argument);
    EXPECT_THROW(lpSubPhase(&lp, wrong), std::invalid_argument);
}

} // namespace
} // namespace lightridge
