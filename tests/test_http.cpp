/**
 * @file
 * HTTP layer tests: the incremental request parser (split, pipelined,
 * oversized and malformed input; chunked rejected cleanly with a typed
 * status), keep-alive negotiation, and the socket server end to end on
 * loopback — routing, typed error mapping (404/400/503/504), deadline
 * and admission semantics over the wire, pipelining, and bitwise parity
 * of the socket path against direct inference. Runs under the ASan and
 * TSan CI legs.
 */
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "data/synth_digits.hpp"
#include "serve/engine.hpp"
#include "serve/http.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace lightridge {
namespace {

using State = HttpParser::State;

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

TEST(HttpParser, ReassemblesARequestFedByteByByte)
{
    const std::string wire = "POST /v1/models/digits/infer HTTP/1.1\r\n"
                             "Host: localhost\r\n"
                             "Content-Type: application/json\r\n"
                             "Content-Length: 4\r\n"
                             "\r\n"
                             "{\"\"}";
    HttpParser parser;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        ASSERT_EQ(parser.feed(wire.data() + i, 1), State::NeedMore)
            << "byte " << i;
    }
    ASSERT_EQ(parser.feed(wire.data() + wire.size() - 1, 1),
              State::Complete);
    const HttpRequest &request = parser.request();
    EXPECT_EQ(request.method, "POST");
    EXPECT_EQ(request.target, "/v1/models/digits/infer");
    EXPECT_EQ(request.version, "HTTP/1.1");
    EXPECT_EQ(request.header("content-type"), "application/json");
    EXPECT_EQ(request.body, "{\"\"}");
    EXPECT_TRUE(request.keepAlive());
}

TEST(HttpParser, PipelinedRequestsParseInSequence)
{
    const std::string wire = "GET /healthz HTTP/1.1\r\n\r\n"
                             "POST /x HTTP/1.1\r\nContent-Length: 2\r\n"
                             "\r\nhi"
                             "GET /metrics HTTP/1.1\r\n\r\n";
    HttpParser parser;
    ASSERT_EQ(parser.feed(wire.data(), wire.size()), State::Complete);
    EXPECT_EQ(parser.request().target, "/healthz");

    ASSERT_EQ(parser.next(), State::Complete);
    EXPECT_EQ(parser.request().method, "POST");
    EXPECT_EQ(parser.request().body, "hi");

    ASSERT_EQ(parser.next(), State::Complete);
    EXPECT_EQ(parser.request().target, "/metrics");
    ASSERT_EQ(parser.next(), State::NeedMore);
    EXPECT_EQ(parser.bufferedBytes(), 0u);
}

TEST(HttpParser, RejectsOversizedRequestLine)
{
    HttpParser::Limits limits;
    limits.max_request_line = 64;
    HttpParser parser(limits);
    const std::string long_target(1000, 'a');
    const std::string wire = "GET /" + long_target + " HTTP/1.1\r\n\r\n";
    EXPECT_EQ(parser.feed(wire.data(), wire.size()), State::Error);
    EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpParser, RejectsOversizedBodyUpFront)
{
    HttpParser::Limits limits;
    limits.max_body = 16;
    HttpParser parser(limits);
    const std::string wire =
        "POST /x HTTP/1.1\r\nContent-Length: 17\r\n\r\n";
    EXPECT_EQ(parser.feed(wire.data(), wire.size()), State::Error);
    EXPECT_EQ(parser.errorStatus(), 413);
}

TEST(HttpParser, RejectsMalformedInputWithTypedStatuses)
{
    struct Case
    {
        const char *wire;
        int status;
    };
    const Case cases[] = {
        {"NOT A VALID REQUEST LINE AT ALL\r\n\r\n", 400},
        {"GET noslash HTTP/1.1\r\n\r\n", 400},
        {"GET /x HTTP/2.0\r\n\r\n", 400},
        {"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n", 400},
        {"POST /x HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n", 400},
        {"POST /x HTTP/1.1\r\nContent-Length: 9999999999999\r\n\r\n",
         400},
    };
    for (const Case &c : cases) {
        HttpParser parser;
        EXPECT_EQ(parser.feed(c.wire, std::strlen(c.wire)), State::Error)
            << c.wire;
        EXPECT_EQ(parser.errorStatus(), c.status) << c.wire;
    }
}

TEST(HttpParser, RejectsChunkedTransferEncodingCleanly)
{
    const std::string wire = "POST /x HTTP/1.1\r\n"
                             "Transfer-Encoding: chunked\r\n\r\n"
                             "5\r\nhello\r\n0\r\n\r\n";
    HttpParser parser;
    EXPECT_EQ(parser.feed(wire.data(), wire.size()), State::Error);
    EXPECT_EQ(parser.errorStatus(), 501);
    EXPECT_NE(parser.errorReason().find("content-length"),
              std::string::npos);
}

TEST(HttpParser, KeepAliveFollowsVersionAndConnectionHeader)
{
    auto parse = [](const std::string &wire) {
        HttpParser parser;
        EXPECT_EQ(parser.feed(wire.data(), wire.size()), State::Complete);
        return parser.request().keepAlive();
    };
    EXPECT_TRUE(parse("GET / HTTP/1.1\r\n\r\n"));
    EXPECT_FALSE(parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
    EXPECT_FALSE(parse("GET / HTTP/1.0\r\n\r\n"));
    EXPECT_TRUE(parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
    EXPECT_FALSE(
        parse("GET / HTTP/1.1\r\nConnection: Close, upgrade\r\n\r\n"));
}

TEST(HttpResponseSerialization, FramesWithContentLength)
{
    HttpResponse response;
    response.status = 503;
    response.content_type = "text/plain";
    response.headers["Retry-After"] = "1";
    response.body = "overloaded\n";
    const std::string wire = serializeHttpResponse(response, false);
    EXPECT_EQ(wire.compare(0, 25, "HTTP/1.1 503 Service Unav"), 0);
    EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
    EXPECT_EQ(wire.substr(wire.size() - 11), "overloaded\n");
}

// ---------------------------------------------------------------------
// Loopback server
// ---------------------------------------------------------------------

DonnModel
tinyModel(std::size_t n, uint64_t seed)
{
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = 0.02;
    Rng rng(seed);
    return ModelBuilder(spec, Laser{})
        .diffractiveLayers(2, 1.0, &rng)
        .detectorGrid(4, 3)
        .build();
}

std::vector<Real>
directLogits(const DonnModel &model, const RealMap &frame)
{
    Field u = model.inferField(model.encode(frame));
    return model.detector().readout(u);
}

Json
imageJson(const RealMap &frame)
{
    Json image;
    image["rows"] = Json(frame.rows());
    image["cols"] = Json(frame.cols());
    Json data;
    for (std::size_t i = 0; i < frame.size(); ++i)
        data.push(Json(frame[i]));
    image["data"] = std::move(data);
    return image;
}

/** One registry + engine + service + listening server on loopback. */
struct ServerFixture
{
    ModelRegistry registry;
    InferenceEngine engine;
    ServingService service;
    HttpServer server;

    explicit ServerFixture(BatchingConfig batching = {},
                           HttpServerConfig http = {})
        : engine((registerModels(registry), registry), batching),
          service(registry, engine),
          server(std::move(http),
                 [this](HttpRequest &&request) {
                     return service.handle(std::move(request));
                 })
    {
        service.setExtraMetrics(
            [this] { return server.transportMetricsText(); });
        server.start();
    }

    static void
    registerModels(ModelRegistry &registry)
    {
        registry.registerModel("digits", tinyModel(16, 1));
    }

    /** Raw byte exchange: connect, send, read until the server closes
     *  the connection (every error response closes). */
    std::string
    rawExchange(const std::string &bytes)
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server.port());
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        EXPECT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(bytes.size()));
        std::string reply;
        char buf[4096];
        for (;;) {
            const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
            if (got <= 0)
                break;
            reply.append(buf, static_cast<std::size_t>(got));
        }
        ::close(fd);
        return reply;
    }
};

TEST(HttpServer, HealthzAndMetricsRoutes)
{
    ServerFixture fx;
    HttpClient client("127.0.0.1", fx.server.port());

    const HttpResponse health = client.request("GET", "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(health.body, "ok\n");

    const HttpResponse metrics = client.request("GET", "/metrics");
    EXPECT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find("lightridge_requests_total"),
              std::string::npos);
    EXPECT_NE(metrics.body.find("lightridge_queue_depth"),
              std::string::npos);
    EXPECT_NE(metrics.body.find("lightridge_http_requests_total"),
              std::string::npos);
}

TEST(HttpServer, SocketInferenceIsBitwiseEqualToDirect)
{
    ServerFixture fx;
    HttpClient client("127.0.0.1", fx.server.port());
    std::shared_ptr<const DonnModel> model =
        fx.registry.acquire("digits");

    const ClassDataset data = makeSynthDigits(4, 7);
    for (std::size_t i = 0; i < data.size(); ++i) {
        Json body;
        body["id"] = Json(i + 1);
        body["image"] = imageJson(data.images[i]);
        const HttpResponse response = client.request(
            "POST", "/v1/models/digits/infer", body.dump());
        ASSERT_EQ(response.status, 200) << response.body;

        const Json j = Json::parse(response.body);
        EXPECT_EQ(j.at("status").asString(), "ok");
        EXPECT_EQ(static_cast<std::size_t>(j.at("id").asNumber()), i + 1);

        // %.17g JSON numbers round-trip doubles exactly, so the socket
        // path must reproduce direct inference bit for bit.
        const std::vector<Real> expected =
            directLogits(*model, data.images[i]);
        const Json::Array &logits = j.at("logits").asArray();
        ASSERT_EQ(logits.size(), expected.size());
        for (std::size_t k = 0; k < expected.size(); ++k)
            EXPECT_EQ(logits[k].asNumber(), expected[k]) << "logit " << k;
        EXPECT_EQ(j.at("prediction").asInt(),
                  static_cast<int>(
                      std::max_element(expected.begin(), expected.end()) -
                      expected.begin()));
    }
}

TEST(HttpServer, SampleRequestsCarryGroundTruthLabels)
{
    ServerFixture fx;
    HttpClient client("127.0.0.1", fx.server.port());
    const ClassDataset data = makeSynthDigits(3, 11);
    for (std::size_t i = 0; i < data.size(); ++i) {
        Json sample;
        sample["dataset"] = Json("digits");
        sample["seed"] = Json(11);
        sample["index"] = Json(i);
        Json body;
        body["sample"] = std::move(sample);
        const HttpResponse response = client.request(
            "POST", "/v1/models/digits/infer", body.dump());
        ASSERT_EQ(response.status, 200) << response.body;
        const Json j = Json::parse(response.body);
        EXPECT_EQ(j.at("label").asInt(), data.labels[i]);
    }
}

TEST(HttpServer, TypedErrorsMapToHttpStatuses)
{
    ServerFixture fx;
    HttpClient client("127.0.0.1", fx.server.port());
    const RealMap frame = makeSynthDigits(1, 3).images[0];

    Json body;
    body["image"] = imageJson(frame);
    const HttpResponse unknown = client.request(
        "POST", "/v1/models/ghost/infer", body.dump());
    EXPECT_EQ(unknown.status, 404);
    EXPECT_EQ(Json::parse(unknown.body).at("status").asString(),
              "unknown_model");

    const HttpResponse bad_json = client.request(
        "POST", "/v1/models/digits/infer", "this is not json");
    EXPECT_EQ(bad_json.status, 400);
    EXPECT_EQ(Json::parse(bad_json.body).at("status").asString(),
              "bad_input");

    Json bad_priority;
    bad_priority["image"] = imageJson(frame);
    bad_priority["priority"] = Json("turbo");
    const HttpResponse bad = client.request(
        "POST", "/v1/models/digits/infer", bad_priority.dump());
    EXPECT_EQ(bad.status, 400);

    const HttpResponse wrong_method =
        client.request("GET", "/v1/models/digits/infer");
    EXPECT_EQ(wrong_method.status, 405);

    const HttpResponse no_route = client.request("GET", "/nope");
    EXPECT_EQ(no_route.status, 404);

    Json expired;
    expired["image"] = imageJson(frame);
    expired["deadline_ms"] = Json(-1.0);
    const HttpResponse late = client.request(
        "POST", "/v1/models/digits/infer", expired.dump());
    EXPECT_EQ(late.status, 504);
    EXPECT_EQ(Json::parse(late.body).at("status").asString(),
              "deadline_exceeded");
}

TEST(HttpServer, AdmissionShedsAs503WithRetryAfter)
{
    ServerFixture fx;
    fx.engine.setModelQuota("digits", 1);
    fx.engine.pause(); // the first request parks in the queue
    const RealMap frame = makeSynthDigits(1, 3).images[0];
    Json body;
    body["image"] = imageJson(frame);
    const std::string payload = body.dump();

    HttpResponse first_response;
    std::thread first([&] {
        HttpClient client("127.0.0.1", fx.server.port());
        first_response = client.request(
            "POST", "/v1/models/digits/infer", payload);
    });
    // Wait until the parked request occupies the quota.
    for (int i = 0; i < 2000 && fx.engine.metrics().queueDepth() < 1;
         ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(fx.engine.metrics().queueDepth(), 1);

    HttpClient client("127.0.0.1", fx.server.port());
    const HttpResponse shed = client.request(
        "POST", "/v1/models/digits/infer", payload);
    EXPECT_EQ(shed.status, 503);
    ASSERT_TRUE(shed.headers.count("retry-after"));
    EXPECT_EQ(shed.headers.at("retry-after"), "1");
    EXPECT_EQ(Json::parse(shed.body).at("status").asString(),
              "overloaded");

    fx.engine.resume();
    first.join();
    EXPECT_EQ(first_response.status, 200);
}

TEST(HttpServer, PipelinedRequestsAnswerInOrder)
{
    ServerFixture fx;
    const std::string wire =
        "GET /healthz HTTP/1.1\r\n\r\n"
        "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
    const std::string reply = fx.rawExchange(wire);
    std::size_t responses = 0;
    for (std::size_t at = reply.find("HTTP/1.1 200");
         at != std::string::npos;
         at = reply.find("HTTP/1.1 200", at + 1))
        ++responses;
    EXPECT_EQ(responses, 2u);
    EXPECT_NE(reply.find("Connection: close"), std::string::npos);
}

TEST(HttpServer, MalformedAndOversizedRequestsCloseCleanly)
{
    HttpServerConfig http;
    http.limits.max_body = 1024;
    ServerFixture fx({}, http);

    const std::string malformed =
        fx.rawExchange("THIS IS NOT HTTP AT ALL\r\n\r\n");
    EXPECT_NE(malformed.find("HTTP/1.1 400"), std::string::npos);
    EXPECT_NE(malformed.find("Connection: close"), std::string::npos);

    const std::string oversized = fx.rawExchange(
        "POST /v1/models/digits/infer HTTP/1.1\r\n"
        "Content-Length: 2048\r\n\r\n");
    EXPECT_NE(oversized.find("HTTP/1.1 413"), std::string::npos);

    const std::string chunked = fx.rawExchange(
        "POST /v1/models/digits/infer HTTP/1.1\r\n"
        "Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n");
    EXPECT_NE(chunked.find("HTTP/1.1 501"), std::string::npos);

    EXPECT_EQ(fx.server.transportStats().parse_errors, 3u);
}

TEST(HttpServer, StopIsCleanAndIdempotent)
{
    ServerFixture fx;
    {
        HttpClient client("127.0.0.1", fx.server.port());
        EXPECT_EQ(client.request("GET", "/healthz").status, 200);
    }
    EXPECT_TRUE(fx.server.running());
    fx.server.stop();
    EXPECT_FALSE(fx.server.running());
    fx.server.stop(); // idempotent
    EXPECT_THROW(
        HttpClient("127.0.0.1", fx.server.port()).request("GET", "/"),
        std::runtime_error);
}

} // namespace
} // namespace lightridge
