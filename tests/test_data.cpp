/**
 * @file
 * Synthetic dataset generator tests: determinism, class balance, value
 * ranges, intra/inter-class structure, mask consistency.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "data/synth_city.hpp"
#include "data/synth_digits.hpp"
#include "data/synth_fashion.hpp"
#include "data/synth_scenes.hpp"

namespace lightridge {
namespace {

Real
l2diff(const RealMap &a, const RealMap &b)
{
    Real total = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        Real d = a[i] - b[i];
        total += d * d;
    }
    return std::sqrt(total);
}

TEST(SynthDigits, DeterministicBySeed)
{
    ClassDataset a = makeSynthDigits(20, 42);
    ClassDataset b = makeSynthDigits(20, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.labels[i], b.labels[i]);
        EXPECT_EQ(maxAbsDiff(a.images[i], b.images[i]), 0.0);
    }
}

TEST(SynthDigits, DifferentSeedsDiffer)
{
    ClassDataset a = makeSynthDigits(10, 1);
    ClassDataset b = makeSynthDigits(10, 2);
    Real total = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        total += l2diff(a.images[i], b.images[i]);
    EXPECT_GT(total, 0.1);
}

TEST(SynthDigits, BalancedLabelsAndRange)
{
    ClassDataset data = makeSynthDigits(100, 7);
    std::vector<int> counts(10, 0);
    for (std::size_t i = 0; i < data.size(); ++i) {
        ++counts[data.labels[i]];
        EXPECT_GE(data.images[i].min(), 0.0);
        EXPECT_LE(data.images[i].max(), 1.0);
        EXPECT_GT(data.images[i].sum(), 0.0) << "blank image at " << i;
    }
    for (int c : counts)
        EXPECT_EQ(c, 10);
    EXPECT_EQ(data.num_classes, 10u);
}

TEST(SynthDigits, IntraClassVariationExists)
{
    DigitConfig cfg;
    Rng rng(3);
    RealMap a = renderDigit(5, cfg, &rng);
    RealMap b = renderDigit(5, cfg, &rng);
    EXPECT_GT(l2diff(a, b), 0.01);
}

TEST(SynthDigits, ClassesAreGeometricallyDistinct)
{
    // Mean inter-class distance must exceed mean intra-class distance.
    DigitConfig cfg;
    cfg.noise = 0;
    Rng rng(9);
    std::vector<std::vector<RealMap>> by_class(10);
    for (int label = 0; label < 10; ++label)
        for (int s = 0; s < 3; ++s)
            by_class[label].push_back(renderDigit(label, cfg, &rng));

    Real intra = 0, inter = 0;
    int intra_n = 0, inter_n = 0;
    for (int a = 0; a < 10; ++a)
        for (int b = a; b < 10; ++b)
            for (std::size_t i = 0; i < 3; ++i)
                for (std::size_t j = (a == b ? i + 1 : 0); j < 3; ++j) {
                    Real d = l2diff(by_class[a][i], by_class[b][j]);
                    if (a == b) {
                        intra += d;
                        ++intra_n;
                    } else {
                        inter += d;
                        ++inter_n;
                    }
                }
    EXPECT_GT(inter / inter_n, 1.05 * (intra / intra_n));
}

TEST(SynthDigits, BinarizeProducesBinaryPixels)
{
    DigitConfig cfg;
    cfg.binarize = true;
    ClassDataset data = makeSynthDigits(10, 5, cfg);
    for (const RealMap &img : data.images)
        for (std::size_t i = 0; i < img.size(); ++i)
            EXPECT_TRUE(img[i] == 0.0 || img[i] == 1.0);
}

TEST(SynthDigits, CustomImageSize)
{
    DigitConfig cfg;
    cfg.image_size = 56;
    ClassDataset data = makeSynthDigits(5, 1, cfg);
    EXPECT_EQ(data.images[0].rows(), 56u);
    EXPECT_EQ(data.images[0].cols(), 56u);
}

TEST(SynthFashion, BalancedDeterministicAndInRange)
{
    ClassDataset a = makeSynthFashion(40, 11);
    ClassDataset b = makeSynthFashion(40, 11);
    std::vector<int> counts(10, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        ++counts[a.labels[i]];
        EXPECT_EQ(maxAbsDiff(a.images[i], b.images[i]), 0.0);
        EXPECT_GE(a.images[i].min(), 0.0);
        EXPECT_LE(a.images[i].max(), 1.0);
        EXPECT_GT(a.images[i].sum(), 0.5) << "empty garment at " << i;
    }
    for (int c : counts)
        EXPECT_EQ(c, 4);
}

TEST(SynthFashion, ClassesDistinct)
{
    FashionConfig cfg;
    cfg.noise = 0;
    Rng rng(2);
    RealMap trouser = renderFashion(1, cfg, &rng);
    RealMap bag = renderFashion(8, cfg, &rng);
    EXPECT_GT(l2diff(trouser, bag), 1.0);
}

TEST(SynthScenes, ChannelsCarryDistinctInformation)
{
    SceneConfig cfg;
    cfg.noise = 0;
    Rng rng(4);
    // Beach: blue channel much stronger than red in the sky region.
    auto beach = renderScene(0, cfg, &rng);
    Real red_sky = 0, blue_sky = 0;
    for (std::size_t r = 0; r < 10; ++r)
        for (std::size_t c = 0; c < cfg.image_size; ++c) {
            red_sky += beach[0](r, c);
            blue_sky += beach[2](r, c);
        }
    EXPECT_GT(blue_sky, 2 * red_sky);

    // Forest: green dominates overall.
    auto forest = renderScene(1, cfg, &rng);
    EXPECT_GT(forest[1].sum(), forest[0].sum());
    EXPECT_GT(forest[1].sum(), forest[2].sum());
}

TEST(SynthScenes, DatasetShapeAndDeterminism)
{
    RgbDataset a = makeSynthScenes(12, 3);
    RgbDataset b = makeSynthScenes(12, 3);
    EXPECT_EQ(a.num_classes, 6u);
    for (std::size_t i = 0; i < a.size(); ++i)
        for (int ch = 0; ch < 3; ++ch)
            EXPECT_EQ(maxAbsDiff(a.images[i][ch], b.images[i][ch]), 0.0);
}

TEST(SynthScenes, GrayscaleIsWeightedSum)
{
    SceneConfig cfg;
    Rng rng(8);
    auto rgb = renderScene(2, cfg, &rng);
    RealMap gray = toGrayscale(rgb);
    std::size_t i = gray.size() / 2;
    EXPECT_NEAR(gray[i],
                0.299 * rgb[0][i] + 0.587 * rgb[1][i] + 0.114 * rgb[2][i],
                1e-12);
}

TEST(SynthScenes, ClassNamesResolve)
{
    EXPECT_STREQ(sceneClassName(0), "beach");
    EXPECT_STREQ(sceneClassName(5), "night");
    EXPECT_STREQ(sceneClassName(17), "?");
}

TEST(SynthCity, MaskMatchesBuildings)
{
    SegDataset data = makeSynthCity(6, 21);
    for (std::size_t i = 0; i < data.size(); ++i) {
        const RealMap &mask = data.masks[i];
        Real frac = mask.sum() / mask.size();
        EXPECT_GT(frac, 0.02) << "no buildings in sample " << i;
        EXPECT_LT(frac, 0.9) << "all-building sample " << i;
        for (std::size_t p = 0; p < mask.size(); ++p)
            EXPECT_TRUE(mask[p] == 0.0 || mask[p] == 1.0);
    }
}

TEST(SynthCity, DeterministicAndTruncate)
{
    SegDataset a = makeSynthCity(8, 33);
    SegDataset b = makeSynthCity(8, 33);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(maxAbsDiff(a.images[i], b.images[i]), 0.0);
        EXPECT_EQ(maxAbsDiff(a.masks[i], b.masks[i]), 0.0);
    }
    a.truncate(3);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.masks.size(), 3u);
}

TEST(Datasets, TruncateHelpers)
{
    ClassDataset c = makeSynthDigits(10, 1);
    c.truncate(4);
    EXPECT_EQ(c.size(), 4u);
    c.truncate(100); // no-op
    EXPECT_EQ(c.size(), 4u);

    RgbDataset r = makeSynthScenes(6, 1);
    r.truncate(2);
    EXPECT_EQ(r.size(), 2u);
}

} // namespace
} // namespace lightridge
