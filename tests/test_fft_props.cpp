/**
 * @file
 * Property-based spectral harness for the kernel-dispatch FFT engine.
 *
 * Randomized transform lengths drawn from the three algorithm families
 * (power-of-two radix-2/4, smooth mixed-radix, prime > 31 Bluestein) are
 * checked against the shared oracle for the DFT properties that matter to
 * propagation numerics — oracle agreement, inverse round-trip, Parseval
 * energy conservation, linearity — and every property runs under both the
 * Scalar and the Simd kernel sets. A final suite pins the scalar-vs-SIMD
 * agreement contract (kFftKernelTolerance) and the bitwise determinism of
 * the row-parallel FFT2 split.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "fft/fft.hpp"
#include "fft/kernels.hpp"
#include "oracle/dft_oracle.hpp"
#include "utils/rng.hpp"
#include "utils/thread_pool.hpp"

namespace lightridge {
namespace {

std::vector<Complex>
randomSignal(std::size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Complex> x(n);
    for (auto &v : x)
        v = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    return x;
}

/**
 * Deterministic randomized size generators, one per algorithm family.
 * Seeded per family so failures reproduce; each run covers the same
 * sizes, which keeps CI stable while still sampling awkward lengths.
 */
std::vector<std::size_t>
powerOfTwoSizes()
{
    Rng rng(101);
    std::vector<std::size_t> sizes;
    for (int i = 0; i < 6; ++i)
        sizes.push_back(std::size_t(1) << rng.randint(1, 9)); // 2..512
    return sizes;
}

std::vector<std::size_t>
mixedRadixSizes()
{
    Rng rng(202);
    std::vector<std::size_t> sizes;
    while (sizes.size() < 8) {
        // Random smooth composite from factors {2,3,5,7}, bounded so the
        // O(n^2) oracle stays fast; odd-only products exercise plans with
        // no radix-2/4 level at all.
        std::size_t n = 1;
        const std::size_t primes[] = {2, 3, 5, 7};
        for (int f = 0; f < 5 && n < 400; ++f)
            n *= primes[rng.randint(0, 3)];
        if (n >= 6 && n <= 700)
            sizes.push_back(n);
    }
    return sizes;
}

std::vector<std::size_t>
bluesteinPrimeSizes()
{
    // Primes > kMaxDirectRadix = 31: every one takes the chirp-z path.
    Rng rng(303);
    const std::vector<std::size_t> primes{37,  41,  53,  61,  79,  101,
                                          127, 149, 211, 257, 331, 401};
    std::vector<std::size_t> sizes;
    for (int i = 0; i < 6; ++i)
        sizes.push_back(
            primes[rng.randint(0, static_cast<int64_t>(primes.size()) - 1)]);
    return sizes;
}

struct FamilyParam
{
    const char *family;
    FftKernelMode mode;
};

std::string
paramName(const ::testing::TestParamInfo<FamilyParam> &info)
{
    std::string name = info.param.family;
    name += info.param.mode == FftKernelMode::Simd ? "_Simd" : "_Scalar";
    return name;
}

class FftPropertyTest : public ::testing::TestWithParam<FamilyParam>
{
  protected:
    void
    SetUp() override
    {
        // In a SIMD-off build, requesting Simd falls back to Scalar; the
        // properties must hold there too, so the suite still runs (the
        // cross-kernel comparison suite is the one that skips instead).
        guard_.emplace(GetParam().mode);
    }

    std::vector<std::size_t>
    sizes() const
    {
        std::string family = GetParam().family;
        if (family == "PowerOfTwo")
            return powerOfTwoSizes();
        if (family == "MixedRadix")
            return mixedRadixSizes();
        return bluesteinPrimeSizes();
    }

  private:
    std::optional<FftKernelModeGuard> guard_;
};

TEST_P(FftPropertyTest, ForwardMatchesOracle)
{
    for (std::size_t n : sizes()) {
        FftPlan plan(n);
        auto x = randomSignal(n, 1000 + n);
        auto fast = x;
        plan.forward(fast.data());
        auto slow = oracle::dft1d(x, -1);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(std::abs(fast[i] - slow[i]), 0.0, 1e-8 * n)
                << "n=" << n << " i=" << i;
    }
}

TEST_P(FftPropertyTest, InverseRoundTripRecoversInput)
{
    for (std::size_t n : sizes()) {
        FftPlan plan(n);
        auto x = randomSignal(n, 2000 + n);
        auto y = x;
        plan.forward(y.data());
        plan.inverse(y.data());
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-9)
                << "n=" << n << " i=" << i;
    }
}

TEST_P(FftPropertyTest, ParsevalEnergyConserved)
{
    for (std::size_t n : sizes()) {
        FftPlan plan(n);
        auto x = randomSignal(n, 3000 + n);
        Real time_energy = 0;
        for (const auto &v : x)
            time_energy += std::norm(v);
        plan.forward(x.data());
        Real freq_energy = 0;
        for (const auto &v : x)
            freq_energy += std::norm(v);
        EXPECT_NEAR(freq_energy, time_energy * n, 1e-7 * n * n)
            << "n=" << n;
    }
}

TEST_P(FftPropertyTest, TransformIsLinear)
{
    for (std::size_t n : sizes()) {
        FftPlan plan(n);
        auto a = randomSignal(n, 4000 + n);
        auto b = randomSignal(n, 5000 + n);
        const Complex ca{0.7, -0.3}, cb{-1.1, 0.2};
        std::vector<Complex> combined(n);
        for (std::size_t i = 0; i < n; ++i)
            combined[i] = ca * a[i] + cb * b[i];
        plan.forward(combined.data());
        plan.forward(a.data());
        plan.forward(b.data());
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(std::abs(combined[i] - (ca * a[i] + cb * b[i])),
                        0.0, 1e-8 * n)
                << "n=" << n << " i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Families, FftPropertyTest,
    ::testing::Values(FamilyParam{"PowerOfTwo", FftKernelMode::Scalar},
                      FamilyParam{"PowerOfTwo", FftKernelMode::Simd},
                      FamilyParam{"MixedRadix", FftKernelMode::Scalar},
                      FamilyParam{"MixedRadix", FftKernelMode::Simd},
                      FamilyParam{"BluesteinPrime", FftKernelMode::Scalar},
                      FamilyParam{"BluesteinPrime", FftKernelMode::Simd}),
    paramName);

/**
 * Cross-kernel contract: Scalar and Simd kernels agree within
 * kFftKernelTolerance * n for unit-magnitude inputs (fft/kernels.hpp).
 * Only meaningful when both kernel sets are compiled in.
 */
class ScalarVsSimd : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!simdKernelsCompiled())
            GTEST_SKIP() << "SIMD kernels not compiled (LIGHTRIDGE_SIMD=OFF)";
    }
};

TEST_F(ScalarVsSimd, OneDTransformsWithinPinnedTolerance)
{
    std::vector<std::size_t> all;
    for (auto sizes : {powerOfTwoSizes(), mixedRadixSizes(),
                       bluesteinPrimeSizes()})
        all.insert(all.end(), sizes.begin(), sizes.end());
    for (std::size_t n : all) {
        FftPlan plan(n);
        auto x = randomSignal(n, 6000 + n);
        auto scalar = x;
        auto simd = x;
        {
            FftKernelModeGuard guard(FftKernelMode::Scalar);
            plan.forward(scalar.data());
        }
        {
            FftKernelModeGuard guard(FftKernelMode::Simd);
            plan.forward(simd.data());
        }
        Real worst = 0;
        for (std::size_t i = 0; i < n; ++i)
            worst = std::max(worst, std::abs(scalar[i] - simd[i]));
        EXPECT_LE(worst, kFftKernelTolerance * static_cast<Real>(n))
            << "n=" << n;
    }
}

TEST_F(ScalarVsSimd, HadamardWithinPinnedTolerance)
{
    const std::size_t n = 96;
    Rng rng(42);
    Field a(n, n), b(n, n);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
        b[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
    Field scalar = a, simd = a;
    {
        FftKernelModeGuard guard(FftKernelMode::Scalar);
        scalar.hadamard(b);
    }
    {
        FftKernelModeGuard guard(FftKernelMode::Simd);
        simd.hadamard(b);
    }
    // The element-wise product has no reassociated reduction, so the two
    // kernels agree far below the transform-level bound; hold them to it.
    EXPECT_LE(maxAbsDiff(scalar, simd), kFftKernelTolerance);

    Field scalar_conj = a, simd_conj = a;
    {
        FftKernelModeGuard guard(FftKernelMode::Scalar);
        scalar_conj.hadamardConj(b);
    }
    {
        FftKernelModeGuard guard(FftKernelMode::Simd);
        simd_conj.hadamardConj(b);
    }
    EXPECT_LE(maxAbsDiff(scalar_conj, simd_conj), kFftKernelTolerance);
}

/** Row-parallel FFT2 must be bitwise-identical to the serial split. */
TEST(Fft2dRowParallel, BitwiseIdenticalToSerialAcrossPools)
{
    const std::size_t n = 128; // >= kFft2dParallelMinElements when squared
    ASSERT_GE(n * n, kFft2dParallelMinElements);
    Fft2d fft(n, n);
    Rng rng(7);
    Field base(n, n);
    for (std::size_t i = 0; i < base.size(); ++i)
        base[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};

    ThreadPool serial(1); // coerced to inline execution
    Field reference = base;
    fft.forward(&reference, &serial);

    for (std::size_t workers : {std::size_t(2), std::size_t(4)}) {
        ThreadPool pool(workers);
        Field parallel = base;
        fft.forward(&parallel, &pool);
        ASSERT_EQ(parallel.size(), reference.size());
        for (std::size_t i = 0; i < parallel.size(); ++i) {
            ASSERT_EQ(parallel[i].real(), reference[i].real())
                << "workers=" << workers << " i=" << i;
            ASSERT_EQ(parallel[i].imag(), reference[i].imag())
                << "workers=" << workers << " i=" << i;
        }
    }

    // Round trip through the parallel path recovers the input.
    ThreadPool pool(4);
    Field round = base;
    fft.forward(&round, &pool);
    fft.inverse(&round, &pool);
    EXPECT_LT(maxAbsDiff(round, base), 1e-10);
}

/** The 2-D engine agrees with the 2-D oracle under both kernel sets. */
TEST(Fft2dKernels, MatchesOracleUnderBothModes)
{
    const std::size_t rows = 12, cols = 10;
    Rng rng(9);
    Field base(rows, cols);
    for (std::size_t i = 0; i < base.size(); ++i)
        base[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    Field ref = oracle::dft2d(base, -1);

    Fft2d fft(rows, cols);
    for (FftKernelMode mode : {FftKernelMode::Scalar, FftKernelMode::Simd}) {
        FftKernelModeGuard guard(mode);
        Field f = base;
        fft.forward(&f);
        EXPECT_LT(maxAbsDiff(f, ref), 1e-8)
            << (mode == FftKernelMode::Simd ? "simd" : "scalar");
    }
}

} // namespace
} // namespace lightridge
