/**
 * @file
 * Session-level behaviours on the classification task: calibration
 * effects, epoch accounting, evaluation metrics, DSE sweep/guided-search
 * plumbing.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/session.hpp"
#include "data/synth_digits.hpp"
#include "dse/dse.hpp"

namespace lightridge {
namespace {

SystemSpec
spec16()
{
    SystemSpec spec;
    spec.size = 16;
    spec.pixel = 36e-6;
    spec.distance = idealDistanceHalfCone(Grid{16, 36e-6}, 532e-9);
    return spec;
}

TEST(SessionBehaviour, CalibrationSetsHealthyLogitScale)
{
    ClassDataset data = makeSynthDigits(40, 1);
    Rng rng(2);
    DonnModel model = ModelBuilder(spec16(), Laser{})
                          .diffractiveLayers(2, 1.0, &rng)
                          .detectorGrid(10, 1)
                          .build();
    TrainConfig tc;
    tc.calib_target = 4.0;
    ClassificationTask task(model, data);
    Session session(task, tc);
    session.calibrate();

    // Mean top logit over probe samples lands near the target.
    Real mean_top = 0;
    for (std::size_t i = 0; i < 16; ++i) {
        Field input = model.encode(data.images[i]);
        std::vector<Real> logits = model.forwardLogits(input, false);
        mean_top += *std::max_element(logits.begin(), logits.end());
    }
    mean_top /= 16;
    EXPECT_NEAR(mean_top, 4.0, 1.5);
}

TEST(SessionBehaviour, ParallelWorkersTrainAsWellAsSerial)
{
    ClassDataset train = makeSynthDigits(60, 3);

    auto runFit = [&](std::size_t workers) {
        Rng rng(5);
        DonnModel model = ModelBuilder(spec16(), Laser{})
                              .diffractiveLayers(2, 1.0, &rng)
                              .detectorGrid(10, 1)
                              .build();
        TrainConfig tc;
        tc.epochs = 3;
        tc.batch = 8;
        tc.workers = workers;
        ClassificationTask task(model, train);
        return Session(task, tc).fit();
    };

    auto serial = runFit(1);
    auto parallel = runFit(3);
    ASSERT_EQ(serial.size(), parallel.size());

    // Same data, same init: the data-parallel pipeline reorders gradient
    // accumulation (and per-replica noise streams) but must train to a
    // comparable loss, not diverge.
    EXPECT_LT(parallel.back().train_loss, parallel.front().train_loss);
    EXPECT_NEAR(parallel.back().train_loss, serial.back().train_loss,
                0.5 * std::abs(serial.back().train_loss) + 0.05);
    for (const EpochStats &stats : parallel) {
        EXPECT_TRUE(std::isfinite(stats.train_loss));
        EXPECT_GE(stats.train_acc, 0.0);
        EXPECT_LE(stats.train_acc, 1.0);
    }
}

TEST(SessionBehaviour, FitReturnsOneStatPerEpoch)
{
    ClassDataset train = makeSynthDigits(30, 3);
    ClassDataset test = makeSynthDigits(20, 4);
    Rng rng(5);
    DonnModel model = ModelBuilder(spec16(), Laser{})
                          .diffractiveLayers(1, 1.0, &rng)
                          .detectorGrid(10, 1)
                          .build();
    TrainConfig tc;
    tc.epochs = 4;
    ClassificationTask task(model, train, &test);
    auto history = Session(task, tc).fit();
    ASSERT_EQ(history.size(), 4u);
    for (int e = 0; e < 4; ++e) {
        EXPECT_EQ(history[e].epoch, e);
        EXPECT_GE(history[e].test_acc, 0.0);
        EXPECT_LE(history[e].test_acc, 1.0);
        EXPECT_GT(history[e].seconds, 0.0);
    }
}

TEST(SessionBehaviour, EvaluateOnEmptyDatasetIsZero)
{
    Rng rng(7);
    DonnModel model = ModelBuilder(spec16(), Laser{})
                          .diffractiveLayers(1, 1.0, &rng)
                          .detectorGrid(10, 1)
                          .build();
    ClassDataset empty;
    empty.num_classes = 10;
    EXPECT_EQ(evaluateAccuracy(model, empty), 0.0);
}

TEST(SessionBehaviour, ConfidenceIsProbability)
{
    ClassDataset data = makeSynthDigits(20, 9);
    Rng rng(11);
    DonnModel model = ModelBuilder(spec16(), Laser{})
                          .diffractiveLayers(1, 1.0, &rng)
                          .detectorGrid(10, 1)
                          .build();
    EvalResult r = evaluateWithConfidence(model, data);
    EXPECT_GE(r.confidence, 0.1); // at least uniform (1/classes)
    EXPECT_LE(r.confidence, 1.0);
}

TEST(DsePlumbing, SweepCoversTheRequestedGrid)
{
    SweepGrid grid;
    grid.unit_steps = 2;
    grid.dist_steps = 3;
    grid.unit_min = 30;
    grid.unit_max = 90;
    grid.dist_min = 0.05;
    grid.dist_max = 0.15;
    QuickEvalConfig qe;
    qe.system_size = 16;
    qe.depth = 1;
    qe.train_samples = 40;
    qe.test_samples = 20;
    qe.det_size = 1;
    qe.pad_factor = 1;
    auto points = sweepDesignSpace(532e-9, grid, qe);
    ASSERT_EQ(points.size(), 6u);
    EXPECT_DOUBLE_EQ(points.front().design.unit_size, 30 * 532e-9);
    EXPECT_DOUBLE_EQ(points.back().design.unit_size, 90 * 532e-9);
    EXPECT_DOUBLE_EQ(points.front().design.distance, 0.05);
    EXPECT_DOUBLE_EQ(points.back().design.distance, 0.15);
    for (const DsePoint &p : points) {
        EXPECT_GE(p.accuracy, 0.0);
        EXPECT_LE(p.accuracy, 1.0);
    }
}

TEST(DsePlumbing, GuidedSearchReportsEmulationBudget)
{
    DseEngine engine;
    std::vector<DsePoint> data;
    for (int i = 0; i < 12; ++i) {
        DsePoint p;
        p.design = DesignPoint{500e-9, (20.0 + 8 * i) * 500e-9,
                               0.05 + 0.01 * i};
        p.accuracy = 0.2 + 0.05 * (i % 4);
        data.push_back(p);
    }
    engine.addTrainingData(data);
    engine.fitModel();

    SweepGrid grid;
    grid.unit_steps = 3;
    grid.dist_steps = 3;
    QuickEvalConfig qe;
    qe.system_size = 16;
    qe.depth = 1;
    qe.train_samples = 30;
    qe.test_samples = 20;
    qe.det_size = 1;
    qe.pad_factor = 1;
    std::size_t used = 0;
    DsePoint star = engine.guidedSearch(532e-9, grid, qe, 2, &used);
    EXPECT_EQ(used, 2u);
    EXPECT_GE(star.accuracy, 0.0);
    EXPECT_DOUBLE_EQ(star.design.wavelength, 532e-9);
}

TEST(DsePlumbing, EngineTrainingSizeAccumulates)
{
    DseEngine engine;
    EXPECT_EQ(engine.trainingSize(), 0u);
    std::vector<DsePoint> batch(5);
    engine.addTrainingData(batch);
    engine.addTrainingData(batch);
    EXPECT_EQ(engine.trainingSize(), 10u);
}

} // namespace
} // namespace lightridge
