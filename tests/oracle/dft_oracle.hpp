/**
 * @file
 * Shared test oracle: reference O(n^2) / O(n^4) DFTs.
 *
 * Every suite that validates a fast transform (the planned FFT engine,
 * the SIMD kernel set, the LightPipes-like baseline) checks against this
 * single reference implementation, so a bug in the oracle cannot hide in
 * one suite what it forgives in another. The implementation is the
 * textbook direct sum with per-term modular angle reduction — slow, but
 * numerically transparent and independent of every code path under test.
 */
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "tensor/field.hpp"
#include "utils/types.hpp"

namespace lightridge {
namespace oracle {

/**
 * Direct 1-D DFT: X_k = sum_t x_t * exp(sign * j*2*pi*k*t/n).
 * sign = -1 is the engine's forward convention, +1 the (unscaled)
 * inverse.
 */
inline std::vector<Complex>
dft1d(const std::vector<Complex> &input, int sign)
{
    const std::size_t n = input.size();
    std::vector<Complex> output(n, Complex{0, 0});
    for (std::size_t k = 0; k < n; ++k) {
        Complex acc{0, 0};
        for (std::size_t t = 0; t < n; ++t) {
            Real angle = sign * kTwoPi * static_cast<Real>((k * t) % n) /
                         static_cast<Real>(n);
            acc += input[t] * Complex{std::cos(angle), std::sin(angle)};
        }
        output[k] = acc;
    }
    return output;
}

/**
 * Direct 2-D DFT over a Field (O(n^4): keep test grids small).
 * sign = -1 forward, +1 unscaled inverse, matching dft1d.
 */
inline Field
dft2d(const Field &input, int sign)
{
    const std::size_t rows = input.rows();
    const std::size_t cols = input.cols();
    Field output(rows, cols);
    for (std::size_t kr = 0; kr < rows; ++kr)
        for (std::size_t kc = 0; kc < cols; ++kc) {
            Complex acc{0, 0};
            for (std::size_t r = 0; r < rows; ++r)
                for (std::size_t c = 0; c < cols; ++c) {
                    Real angle =
                        sign * kTwoPi *
                        (static_cast<Real>((kr * r) % rows) /
                             static_cast<Real>(rows) +
                         static_cast<Real>((kc * c) % cols) /
                             static_cast<Real>(cols));
                    acc += input(r, c) *
                           Complex{std::cos(angle), std::sin(angle)};
                }
            output(kr, kc) = acc;
        }
    return output;
}

} // namespace oracle
} // namespace lightridge
