/**
 * @file
 * Loss function tests: values, gradients (finite differences), softmax
 * identities, confidence metric, detector readout behaviour.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/detector.hpp"
#include "core/loss.hpp"
#include "utils/rng.hpp"

namespace lightridge {
namespace {

TEST(Softmax, SumsToOneAndOrdersPreserved)
{
    std::vector<Real> logits{1.0, 3.0, 2.0, -1.0};
    std::vector<Real> s = softmax(logits);
    Real total = 0;
    for (Real v : s)
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_GT(s[1], s[2]);
    EXPECT_GT(s[2], s[0]);
    EXPECT_GT(s[0], s[3]);
}

TEST(Softmax, InvariantToConstantShift)
{
    std::vector<Real> a{0.5, 1.5, -0.2};
    std::vector<Real> b{100.5, 101.5, 99.8};
    std::vector<Real> sa = softmax(a), sb = softmax(b);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(sa[i], sb[i], 1e-12);
}

TEST(SoftmaxMse, PerfectPredictionHasLowLoss)
{
    std::vector<Real> logits{10.0, 0.0, 0.0, 0.0};
    LossResult r = softmaxMseLoss(logits, 0);
    EXPECT_LT(r.value, 1e-3);
}

TEST(SoftmaxMse, UniformLogitsLossMatchesClosedForm)
{
    // softmax = 1/k everywhere: L = (1 - 1/k)^2 + (k-1)/k^2.
    const std::size_t k = 5;
    std::vector<Real> logits(k, 0.7);
    LossResult r = softmaxMseLoss(logits, 2);
    Real p = 1.0 / k;
    Real expected = (1 - p) * (1 - p) + (k - 1) * p * p;
    EXPECT_NEAR(r.value, expected, 1e-12);
}

TEST(SoftmaxMse, GradientMatchesFiniteDifference)
{
    Rng rng(3);
    std::vector<Real> logits(6);
    for (Real &v : logits)
        v = rng.uniform(-2, 2);
    const int target = 4;
    LossResult r = softmaxMseLoss(logits, target);
    const Real eps = 1e-6;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        std::vector<Real> lp = logits, lm = logits;
        lp[i] += eps;
        lm[i] -= eps;
        Real numeric = (softmaxMseLoss(lp, target).value -
                        softmaxMseLoss(lm, target).value) /
                       (2 * eps);
        EXPECT_NEAR(r.dlogits[i], numeric, 1e-7);
    }
}

TEST(CrossEntropy, GradientMatchesFiniteDifference)
{
    Rng rng(5);
    std::vector<Real> logits(5);
    for (Real &v : logits)
        v = rng.uniform(-1, 1);
    const int target = 1;
    LossResult r = crossEntropyLoss(logits, target);
    const Real eps = 1e-6;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        std::vector<Real> lp = logits, lm = logits;
        lp[i] += eps;
        lm[i] -= eps;
        Real numeric = (crossEntropyLoss(lp, target).value -
                        crossEntropyLoss(lm, target).value) /
                       (2 * eps);
        EXPECT_NEAR(r.dlogits[i], numeric, 1e-7);
    }
}

TEST(CrossEntropy, CorrectClassLowersLoss)
{
    std::vector<Real> good{5.0, 0.0, 0.0};
    std::vector<Real> bad{0.0, 5.0, 0.0};
    EXPECT_LT(crossEntropyLoss(good, 0).value,
              crossEntropyLoss(bad, 0).value);
}

TEST(Loss, BadTargetThrows)
{
    std::vector<Real> logits{1.0, 2.0};
    EXPECT_THROW(softmaxMseLoss(logits, -1), std::invalid_argument);
    EXPECT_THROW(softmaxMseLoss(logits, 2), std::invalid_argument);
    EXPECT_THROW(crossEntropyLoss(logits, 5), std::invalid_argument);
}

TEST(IntensityMse, ZeroWhenIntensityMatchesTarget)
{
    Field u(2, 2, Complex{1, 0});
    RealMap target(2, 2, 1.0);
    FieldLossResult r = intensityMseLoss(u, target, 1.0);
    EXPECT_NEAR(r.value, 0.0, 1e-12);
    for (std::size_t i = 0; i < r.grad.size(); ++i)
        EXPECT_NEAR(std::abs(r.grad[i]), 0.0, 1e-12);
}

TEST(IntensityMse, GradientMatchesFiniteDifference)
{
    Rng rng(11);
    Field u(3, 3);
    RealMap target(3, 3);
    for (std::size_t i = 0; i < u.size(); ++i) {
        u[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
        target[i] = rng.uniform(0, 1);
    }
    const Real scale = 1.3;
    FieldLossResult r = intensityMseLoss(u, target, scale);
    const Real eps = 1e-6;
    for (std::size_t i = 0; i < u.size(); ++i) {
        Field up = u, um = u;
        up[i] += Complex{eps, 0};
        um[i] -= Complex{eps, 0};
        Real d_re = (intensityMseLoss(up, target, scale).value -
                     intensityMseLoss(um, target, scale).value) /
                    (2 * eps);
        up = u;
        um = u;
        up[i] += Complex{0, eps};
        um[i] -= Complex{0, eps};
        Real d_im = (intensityMseLoss(up, target, scale).value -
                     intensityMseLoss(um, target, scale).value) /
                    (2 * eps);
        EXPECT_NEAR(r.grad[i].real(), d_re, 1e-6);
        EXPECT_NEAR(r.grad[i].imag(), d_im, 1e-6);
    }
}

TEST(Confidence, SharperLogitsAreMoreConfident)
{
    EXPECT_GT(predictionConfidence({5.0, 0.0, 0.0}),
              predictionConfidence({1.0, 0.0, 0.0}));
    EXPECT_NEAR(predictionConfidence({1.0, 1.0, 1.0, 1.0}), 0.25, 1e-12);
}

TEST(Detector, ReadoutSumsRegionIntensity)
{
    Field u(8, 8, Complex{0, 0});
    u(1, 1) = Complex{2, 0}; // |.|^2 = 4
    u(1, 2) = Complex{0, 1}; // |.|^2 = 1
    u(6, 6) = Complex{3, 0}; // outside both regions below
    std::vector<DetectorRegion> regions{{0, 0, 3, 3}, {4, 4, 2, 2}};
    DetectorPlane det(regions, 2.0);
    std::vector<Real> logits = det.readout(u);
    EXPECT_NEAR(logits[0], 2.0 * 5.0, 1e-12);
    EXPECT_NEAR(logits[1], 0.0, 1e-12);
}

TEST(Detector, GridLayoutFitsAndIsDisjoint)
{
    auto regions = DetectorPlane::gridLayout(64, 10, 6);
    ASSERT_EQ(regions.size(), 10u);
    for (const auto &r : regions) {
        EXPECT_LE(r.r0 + r.h, 64u);
        EXPECT_LE(r.c0 + r.w, 64u);
    }
    // Pairwise disjoint.
    for (std::size_t i = 0; i < regions.size(); ++i)
        for (std::size_t j = i + 1; j < regions.size(); ++j) {
            bool overlap_r = regions[i].r0 < regions[j].r0 + regions[j].h &&
                             regions[j].r0 < regions[i].r0 + regions[i].h;
            bool overlap_c = regions[i].c0 < regions[j].c0 + regions[j].w &&
                             regions[j].c0 < regions[i].c0 + regions[i].w;
            EXPECT_FALSE(overlap_r && overlap_c)
                << "regions " << i << " and " << j << " overlap";
        }
}

TEST(Detector, GridLayoutRejectsImpossibleFit)
{
    EXPECT_THROW(DetectorPlane::gridLayout(8, 10, 6), std::invalid_argument);
    EXPECT_THROW(DetectorPlane::gridLayout(64, 0, 4), std::invalid_argument);
}

TEST(Detector, NoisyReadoutIsBiasedUpButBounded)
{
    Field u(16, 16, Complex{1, 0});
    DetectorPlane det(DetectorPlane::gridLayout(16, 4, 3));
    Rng rng(2);
    std::vector<Real> clean = det.readout(u);
    std::vector<Real> noisy = det.readoutNoisy(u, 0.05, &rng);
    for (std::size_t i = 0; i < clean.size(); ++i) {
        EXPECT_GE(noisy[i], clean[i]);
        EXPECT_LE(noisy[i], clean[i] * 1.06); // bound: 5% of max intensity
    }
}

TEST(Detector, BackwardBeforeForwardThrows)
{
    DetectorPlane det(DetectorPlane::gridLayout(16, 4, 3));
    EXPECT_THROW(det.backward({1, 0, 0, 0}), std::logic_error);
}

} // namespace
} // namespace lightridge
