/**
 * @file
 * Conventional-NN baseline tests: layer shapes, finite-difference gradient
 * checks for Dense/Conv/Pool/ReLU, and end-to-end training sanity.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "data/synth_digits.hpp"
#include "nn/network.hpp"

namespace lightridge {
namespace {

using nn::Conv2d;
using nn::Dense;
using nn::MaxPool2d;
using nn::Network;
using nn::Relu;
using nn::Shape;

/** Scalar test loss: weighted sum of outputs (linear => exact gradients). */
Real
weightedSum(const std::vector<Real> &out, const std::vector<Real> &w)
{
    Real total = 0;
    for (std::size_t i = 0; i < out.size(); ++i)
        total += w[i] * out[i];
    return total;
}

void
checkLayerGradients(nn::NnLayer &layer, std::size_t in_size, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Real> input(in_size);
    for (Real &v : input)
        v = rng.uniform(-1, 1);
    std::vector<Real> out = layer.forward(input);
    std::vector<Real> w(out.size());
    for (Real &v : w)
        v = rng.uniform(-1, 1);

    // Analytic input gradient.
    std::vector<Real> grad_in = layer.backward(w);

    const Real eps = 1e-6;
    for (std::size_t idx :
         {std::size_t(0), in_size / 3, in_size / 2, in_size - 1}) {
        std::vector<Real> ip = input, im = input;
        ip[idx] += eps;
        im[idx] -= eps;
        Real numeric = (weightedSum(layer.forward(ip), w) -
                        weightedSum(layer.forward(im), w)) /
                       (2 * eps);
        EXPECT_NEAR(grad_in[idx], numeric, 1e-5) << "input index " << idx;
    }

    // Analytic parameter gradients (re-run forward/backward cleanly).
    for (ParamView p : layer.params())
        std::fill(p.grad->begin(), p.grad->end(), Real(0));
    layer.forward(input);
    layer.backward(w);
    for (ParamView p : layer.params()) {
        for (std::size_t idx : {std::size_t(0), p.value->size() / 2,
                                p.value->size() - 1}) {
            Real saved = (*p.value)[idx];
            (*p.value)[idx] = saved + eps;
            Real plus = weightedSum(layer.forward(input), w);
            (*p.value)[idx] = saved - eps;
            Real minus = weightedSum(layer.forward(input), w);
            (*p.value)[idx] = saved;
            Real numeric = (plus - minus) / (2 * eps);
            EXPECT_NEAR((*p.grad)[idx], numeric, 1e-5)
                << p.name << "[" << idx << "]";
        }
    }
}

TEST(NnDense, GradientsMatchFiniteDifference)
{
    Rng rng(1);
    Dense layer(12, 7, &rng);
    checkLayerGradients(layer, 12, 2);
}

TEST(NnConv2d, OutputShapeFormula)
{
    Rng rng(1);
    Conv2d conv(Shape{1, 28, 28}, 32, 5, 2, 2, &rng);
    EXPECT_EQ(conv.outputShape().c, 32u);
    EXPECT_EQ(conv.outputShape().h, 14u);
    EXPECT_EQ(conv.outputShape().w, 14u);
}

TEST(NnConv2d, GradientsMatchFiniteDifference)
{
    Rng rng(3);
    Conv2d conv(Shape{2, 6, 6}, 3, 3, 1, 1, &rng);
    checkLayerGradients(conv, 2 * 6 * 6, 4);
}

TEST(NnConv2d, StridedGradients)
{
    Rng rng(5);
    Conv2d conv(Shape{1, 8, 8}, 2, 3, 2, 1, &rng);
    checkLayerGradients(conv, 64, 6);
}

TEST(NnMaxPool, ForwardPicksMaxAndBackwardRoutes)
{
    MaxPool2d pool(Shape{1, 4, 4}, 2, 2);
    std::vector<Real> in(16, 0.0);
    in[5] = 3.0;  // window (0,0)..(1,1) includes idx 5
    in[2] = 1.0;
    std::vector<Real> out = pool.forward(in);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_DOUBLE_EQ(out[0], 3.0);
    std::vector<Real> g = pool.backward({1.0, 0.5, 0.25, 0.125});
    EXPECT_DOUBLE_EQ(g[5], 1.0);
    EXPECT_DOUBLE_EQ(g[0], 0.0);
}

TEST(NnRelu, ZeroesNegativesAndGradients)
{
    Relu relu(Shape{4, 1, 1});
    std::vector<Real> out = relu.forward({-1.0, 2.0, 0.0, -0.5});
    EXPECT_DOUBLE_EQ(out[0], 0.0);
    EXPECT_DOUBLE_EQ(out[1], 2.0);
    std::vector<Real> g = relu.backward({1.0, 1.0, 1.0, 1.0});
    EXPECT_DOUBLE_EQ(g[0], 0.0);
    EXPECT_DOUBLE_EQ(g[1], 1.0);
}

TEST(NnNetwork, PaperArchitecturesBuild)
{
    Rng rng(7);
    Network mlp = nn::makePaperMlp(28 * 28, 10, &rng);
    EXPECT_EQ(mlp.forward(std::vector<Real>(784, 0.1)).size(), 10u);
    // Paper MLP at 200x200: 40000 -> 128 -> 10.
    Network big = nn::makePaperMlp(40000, 10, &rng);
    EXPECT_EQ(big.parameterCount(), 40000u * 128 + 128 + 128 * 10 + 10);

    Network cnn = nn::makePaperCnn(28, 10, &rng);
    EXPECT_EQ(cnn.forward(std::vector<Real>(784, 0.1)).size(), 10u);
}

TEST(NnNetwork, TrainsOnSynthDigits)
{
    Rng rng(11);
    Network mlp = nn::makePaperMlp(28 * 28, 10, &rng);
    ClassDataset train = makeSynthDigits(300, 5);
    ClassDataset test = makeSynthDigits(100, 6);

    nn::NnTrainConfig cfg;
    cfg.epochs = 1;
    cfg.lr = 1e-3;
    nn::NnTrainer trainer(mlp, cfg);
    Real loss0 = trainer.trainEpoch(train);
    Real loss1 = trainer.trainEpoch(train);
    EXPECT_LT(loss1, loss0);
    EXPECT_GT(trainer.evaluate(test), 0.5); // well above 10% chance
}

TEST(NnNetwork, FpsMeasurementPositive)
{
    Rng rng(13);
    Network mlp = nn::makePaperMlp(28 * 28, 10, &rng);
    ClassDataset data = makeSynthDigits(32, 9);
    nn::NnTrainer trainer(mlp, {});
    EXPECT_GT(trainer.measureFps(data, 16), 0.0);
}

} // namespace
} // namespace lightridge
