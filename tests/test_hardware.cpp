/**
 * @file
 * Hardware stack tests: SLM response model, quantization, thickness
 * conversion, CMOS digitization, deployment simulators, fabrication dump.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/session.hpp"
#include "data/synth_digits.hpp"
#include "hardware/deploy.hpp"
#include "hardware/energy.hpp"
#include "hardware/to_system.hpp"

namespace lightridge {
namespace {

TEST(Slm, LutSizeAndMonotonicPhase)
{
    SlmDevice slm = SlmDevice::holoeyeLc2012(64);
    EXPECT_EQ(slm.levels(), 64u);
    for (std::size_t k = 1; k < slm.levels(); ++k)
        EXPECT_GT(slm.phaseOfLevel(k) >= 0
                      ? slm.phaseOfLevel(k)
                      : slm.phaseOfLevel(k) + kTwoPi,
                  -1e-12);
    // Response is monotonically increasing in retardation.
    Real prev = 0;
    for (std::size_t k = 0; k < slm.levels(); ++k) {
        Real phi = std::arg(slm.lut().levels[k]);
        if (phi < 0)
            phi += kTwoPi;
        EXPECT_GE(phi + 1e-9, prev);
        prev = phi;
    }
}

TEST(Slm, AmplitudeCouplingDipsMidRange)
{
    SlmDevice slm = SlmDevice::holoeyeLc2012(256);
    Real amp_first = std::abs(slm.lut().levels.front());
    Real amp_mid = std::abs(slm.lut().levels[128]);
    EXPECT_NEAR(amp_first, 1.0, 1e-9);
    EXPECT_LT(amp_mid, 0.95); // coupled transmission dip
}

TEST(Slm, IdealDeviceHasUnitAmplitude)
{
    SlmDevice slm = SlmDevice::idealPhaseOnly(16);
    for (const Complex &m : slm.lut().levels)
        EXPECT_NEAR(std::abs(m), 1.0, 1e-12);
}

TEST(Slm, NearestLevelQuantization)
{
    SlmDevice slm = SlmDevice::idealPhaseOnly(4); // phases 0, pi/2, pi, 3pi/2
    EXPECT_EQ(slm.levelForPhase(0.1), 0u);
    EXPECT_EQ(slm.levelForPhase(kPi / 2 + 0.1), 1u);
    EXPECT_EQ(slm.levelForPhase(-kPi / 2), 3u); // wraps
}

TEST(Slm, ThicknessForPhaseFormula)
{
    // t = phi * lambda / (2*pi*(n-1)); full 2*pi at n=1.7 -> lambda/0.7.
    Real lambda = 532e-9;
    EXPECT_NEAR(SlmDevice::thicknessForPhase(kTwoPi - 1e-9, lambda, 1.7),
                lambda / 0.7, 1e-12);
    EXPECT_NEAR(SlmDevice::thicknessForPhase(0.0, lambda, 1.7), 0.0, 1e-15);
    // Phase wraps modulo 2*pi.
    EXPECT_NEAR(SlmDevice::thicknessForPhase(kTwoPi + 1.0, lambda, 1.7),
                SlmDevice::thicknessForPhase(1.0, lambda, 1.7), 1e-15);
}

TEST(Cmos, NoiselessQuantizationPreservesPattern)
{
    CmosDetector cmos = CmosDetector::ideal();
    RealMap intensity(8, 8);
    for (std::size_t i = 0; i < intensity.size(); ++i)
        intensity[i] = static_cast<Real>(i) / intensity.size();
    RealMap out = cmos.measure(intensity, nullptr);
    EXPECT_GT(correlation(intensity, out), 0.999);
}

TEST(Cmos, EightBitAdcQuantizes)
{
    CmosDetector cmos; // 8-bit
    RealMap intensity(4, 4, 0.0);
    intensity(0, 0) = 1.0;
    intensity(1, 1) = 0.5;
    RealMap out = cmos.measure(intensity, nullptr);
    // Quantized codes: ratios preserved to within one LSB of 255.
    EXPECT_NEAR(out(1, 1) / out(0, 0), 0.5, 0.01);
}

TEST(Cmos, NoiseIsBoundedAndSeedDeterministic)
{
    CmosDetector cmos;
    RealMap intensity(16, 16, 0.5);
    Rng a(3), b(3);
    RealMap out_a = cmos.measure(intensity, &a);
    RealMap out_b = cmos.measure(intensity, &b);
    EXPECT_EQ(maxAbsDiff(out_a, out_b), 0.0);
    EXPECT_GT(correlation(intensity, out_a), -1.1);
}

/** Small trained raw model + dataset shared by deployment tests. */
struct DeployFixture
{
    SystemSpec spec;
    ClassDataset train = makeSynthDigits(160, 3);
    ClassDataset test = makeSynthDigits(80, 4);
    Rng rng{9};

    DeployFixture()
    {
        spec.size = 32;
        spec.pixel = 36e-6;
        spec.distance =
            idealDistanceHalfCone(Grid{32, 36e-6}, 532e-9);
    }

    DonnModel
    trainedRaw()
    {
        DonnModel model = ModelBuilder(spec, Laser{})
                              .diffractiveLayers(2, 1.0, &rng)
                              .detectorGrid(10, 4)
                              .build();
        TrainConfig tc;
        tc.epochs = 2;
        tc.lr = 0.05;
        ClassificationTask task(model, train);
        Session(task, tc).fit();
        return model;
    }
};

TEST(Deploy, RawDeploymentDegradesOnCoarseDevice)
{
    DeployFixture fx;
    DonnModel model = fx.trainedRaw();
    Real sim_acc = evaluateAccuracy(model, fx.test);

    // Very coarse (4-level), strongly coupled device: big gap expected.
    SlmDevice coarse(4, 0.9 * kTwoPi, 1.6, 0.5);
    Rng rng(5);
    DonnModel hw = deployRaw(model, coarse,
                             FabricationVariation{0.3, 0.1}, &rng);
    Real hw_acc = evaluateDeployed(hw, fx.test, CmosDetector::cs165mu1(),
                                   &rng);
    EXPECT_LT(hw_acc, sim_acc + 1e-9);
}

TEST(Deploy, FineIdealDeviceBarelyDegrades)
{
    DeployFixture fx;
    DonnModel model = fx.trainedRaw();
    Real sim_acc = evaluateAccuracy(model, fx.test);

    SlmDevice fine = SlmDevice::idealPhaseOnly(256);
    Rng rng(6);
    DonnModel hw =
        deployRaw(model, fine, FabricationVariation::none(), nullptr);
    Real hw_acc =
        evaluateDeployed(hw, fx.test, CmosDetector::ideal(), nullptr);
    EXPECT_NEAR(hw_acc, sim_acc, 0.06);
}

TEST(Deploy, CodesignDeploymentIsExact)
{
    DeployFixture fx;
    DeviceLut lut = SlmDevice::holoeyeLc2012(8).lut();
    DonnModel model = ModelBuilder(fx.spec, Laser{})
                          .codesignLayers(2, lut, 1.0, 1.0, nullptr)
                          .detectorGrid(10, 4)
                          .build();
    // Randomize logits so argmax states are nontrivial.
    Rng lrng(2);
    for (ParamView p : model.params())
        for (Real &v : *p.value)
            v = lrng.uniform(-1, 1);

    Rng rng(7);
    DonnModel hw =
        deployCodesign(model, FabricationVariation::none(), nullptr);
    // Deployment of codesign weights with no fabrication error must match
    // the model's own inference path (training=false) exactly.
    Field input = model.encode(fx.test.images[0]);
    Field sim = model.forwardField(input, false);
    Field dep = hw.forwardField(input, false);
    EXPECT_LT(maxAbsDiff(sim, dep), 1e-9);
}

TEST(Deploy, RejectsWrongLayerKinds)
{
    DeployFixture fx;
    DeviceLut lut = DeviceLut::idealPhase(4);
    DonnModel codesign = ModelBuilder(fx.spec, Laser{})
                             .codesignLayers(1, lut)
                             .detectorGrid(10, 4)
                             .build();
    SlmDevice slm = SlmDevice::idealPhaseOnly(4);
    EXPECT_THROW(
        deployRaw(codesign, slm, FabricationVariation::none(), nullptr),
        std::invalid_argument);

    Rng rng(1);
    DonnModel raw = ModelBuilder(fx.spec, Laser{})
                        .diffractiveLayers(1, 1.0, &rng)
                        .detectorGrid(10, 4)
                        .build();
    EXPECT_THROW(deployCodesign(raw, FabricationVariation::none(), nullptr),
                 std::invalid_argument);
}

TEST(ToSystem, WritesBundleForRawModel)
{
    DeployFixture fx;
    Rng rng(1);
    DonnModel model = ModelBuilder(fx.spec, Laser{})
                          .diffractiveLayers(2, 1.0, &rng)
                          .detectorGrid(10, 4)
                          .build();
    const std::string dir = "/tmp/lr_tosystem_test";
    std::filesystem::remove_all(dir);
    SlmDevice slm = SlmDevice::holoeyeLc2012(16);
    ASSERT_TRUE(toSystem(model, slm, dir));
    EXPECT_TRUE(std::filesystem::exists(dir + "/manifest.json"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/layer0.csv"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/layer1.csv"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/layer0.pgm"));

    Json manifest = Json::load(dir + "/manifest.json");
    EXPECT_EQ(manifest.at("layers").asArray().size(), 2u);
    EXPECT_EQ(manifest.at("target").asString(), "slm_voltages");
    std::filesystem::remove_all(dir);
}

TEST(ToSystem, ThzThicknessExport)
{
    DeployFixture fx;
    Rng rng(2);
    DonnModel model = ModelBuilder(fx.spec, Laser{})
                          .diffractiveLayers(1, 1.0, &rng)
                          .detectorGrid(10, 4)
                          .build();
    const std::string dir = "/tmp/lr_tosystem_thz";
    std::filesystem::remove_all(dir);
    ToSystemOptions opts;
    opts.target = DeployTarget::ThzMaskThickness;
    opts.write_views = false;
    ASSERT_TRUE(toSystem(model, SlmDevice::idealPhaseOnly(256), dir, opts));
    Json manifest = Json::load(dir + "/manifest.json");
    EXPECT_EQ(manifest.at("target").asString(), "thz_mask_thickness");
    std::filesystem::remove_all(dir);
}

TEST(Energy, DonnModelMatchesPaperScale)
{
    DonnEnergyModel donn;
    // Paper: ~995 fps/Watt for the prototype (1000 fps, ~1.005 W).
    EXPECT_NEAR(donn.fpsPerWatt(), 995.0, 1.0);
    // DONN beats every digital platform in the reference table.
    for (const PlatformPoint &p : paperDigitalReference())
        EXPECT_GT(donn.fpsPerWatt(), p.fpsPerWatt());
}

TEST(FixedModulation, AdjointConsistency)
{
    PropagatorConfig cfg;
    cfg.grid = Grid{16, 36e-6};
    cfg.wavelength = 532e-9;
    cfg.distance = 0.01;
    auto prop = std::make_shared<Propagator>(cfg);
    Rng rng(4);
    Field mod(16, 16);
    for (std::size_t i = 0; i < mod.size(); ++i)
        mod[i] = std::polar(rng.uniform(0.5, 1.0), rng.uniform(0, kTwoPi));
    FixedModulationLayer layer(prop, mod);

    Field x(16, 16), y(16, 16);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
        y[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
    Field fx = layer.forward(x, false);
    Field aty = layer.backward(y);
    Complex lhs{0, 0}, rhs{0, 0};
    for (std::size_t i = 0; i < x.size(); ++i) {
        lhs += std::conj(fx[i]) * y[i];
        rhs += std::conj(x[i]) * aty[i];
    }
    EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-9);
}

TEST(FixedModulation, InPlacePathsMatchByValuePathsBitwise)
{
    // The in-place overrides must be pure aliases of the by-value math:
    // deployed models run through the zero-allocation serving path, and
    // any drift here would silently change hardware-simulation results.
    PropagatorConfig cfg;
    cfg.grid = Grid{16, 36e-6};
    cfg.wavelength = 532e-9;
    cfg.distance = 0.01;
    auto prop = std::make_shared<Propagator>(cfg);
    Rng rng(11);
    Field mod(16, 16);
    for (std::size_t i = 0; i < mod.size(); ++i)
        mod[i] = std::polar(rng.uniform(0.5, 1.0), rng.uniform(0, kTwoPi));
    FixedModulationLayer layer(prop, mod);

    Field x(16, 16);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};

    // infer() (by-value reference math) vs inferInPlace on an alias.
    Field reference(16, 16);
    {
        Field tmp = prop->forward(x);
        tmp.hadamard(mod);
        reference = tmp;
    }
    Field in_place = x;
    layer.inferInPlace(in_place, PropagationWorkspace::threadLocal());
    ASSERT_EQ(in_place.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(in_place[i], reference[i]);

    Field via_infer = layer.infer(x);
    for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(via_infer[i], reference[i]);

    Field via_forward =
        layer.forward(x, /*training=*/true); // frozen layer: same path
    for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(via_forward[i], reference[i]);

    // backward() vs backwardInPlace on an alias.
    Field g(16, 16);
    for (std::size_t i = 0; i < g.size(); ++i)
        g[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    Field grad_reference(16, 16);
    {
        Field tmp = g;
        tmp.hadamardConj(mod);
        grad_reference = prop->adjoint(tmp);
    }
    Field grad_in_place = g;
    layer.backwardInPlace(grad_in_place, PropagationWorkspace::threadLocal());
    for (std::size_t i = 0; i < grad_reference.size(); ++i)
        EXPECT_EQ(grad_in_place[i], grad_reference[i]);

    Field via_backward = layer.backward(g);
    for (std::size_t i = 0; i < grad_reference.size(); ++i)
        EXPECT_EQ(via_backward[i], grad_reference[i]);
}

} // namespace
} // namespace lightridge
