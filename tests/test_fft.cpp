/**
 * @file
 * FFT engine validation: round trips, reference-DFT agreement, transform
 * identities (Parseval, linearity, shift), 2-D behaviour, Bluestein path.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "fft/fft.hpp"
#include "oracle/dft_oracle.hpp"
#include "utils/rng.hpp"

namespace lightridge {
namespace {

std::vector<Complex>
randomSignal(std::size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Complex> x(n);
    for (auto &v : x)
        v = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    return x;
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(FftSizeTest, RoundTripRecoversInput)
{
    const std::size_t n = GetParam();
    FftPlan plan(n);
    std::vector<Complex> x = randomSignal(n, 11 + n);
    std::vector<Complex> y = x;
    plan.forward(y.data());
    plan.inverse(y.data());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-9) << "i=" << i;
}

TEST_P(FftSizeTest, MatchesNaiveDft)
{
    const std::size_t n = GetParam();
    FftPlan plan(n);
    std::vector<Complex> x = randomSignal(n, 23 + n);
    std::vector<Complex> fast = x;
    plan.forward(fast.data());
    std::vector<Complex> slow = oracle::dft1d(x, -1);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(std::abs(fast[i] - slow[i]), 0.0, 1e-8 * n)
            << "i=" << i;
}

TEST_P(FftSizeTest, ParsevalHolds)
{
    const std::size_t n = GetParam();
    FftPlan plan(n);
    std::vector<Complex> x = randomSignal(n, 31 + n);
    Real time_energy = 0;
    for (const auto &v : x)
        time_energy += std::norm(v);
    plan.forward(x.data());
    Real freq_energy = 0;
    for (const auto &v : x)
        freq_energy += std::norm(v);
    EXPECT_NEAR(freq_energy, time_energy * n, 1e-7 * n * n);
}

// Mixed-radix smooth sizes, awkward sizes, primes (Bluestein), paper sizes.
INSTANTIATE_TEST_SUITE_P(
    Sizes, FftSizeTest,
    ::testing::Values<std::size_t>(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 16, 20,
                                   25, 27, 28, 32, 35, 49, 50, 64, 81, 100,
                                   101, 121, 125, 127, 128, 200, 243, 251,
                                   256, 350, 500));

TEST(Fft, ImpulseGivesFlatSpectrum)
{
    FftPlan plan(16);
    std::vector<Complex> x(16, Complex{0, 0});
    x[0] = Complex{1, 0};
    plan.forward(x.data());
    for (const auto &v : x) {
        EXPECT_NEAR(v.real(), 1.0, 1e-12);
        EXPECT_NEAR(v.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, SingleToneLandsInOneBin)
{
    const std::size_t n = 60;
    const std::size_t bin = 7;
    FftPlan plan(n);
    std::vector<Complex> x(n);
    for (std::size_t t = 0; t < n; ++t) {
        Real angle = kTwoPi * bin * t / static_cast<Real>(n);
        x[t] = Complex{std::cos(angle), std::sin(angle)};
    }
    plan.forward(x.data());
    for (std::size_t k = 0; k < n; ++k) {
        Real expected = (k == bin) ? static_cast<Real>(n) : 0.0;
        EXPECT_NEAR(std::abs(x[k]), expected, 1e-8) << "k=" << k;
    }
}

TEST(Fft, LinearityOfTransform)
{
    const std::size_t n = 54;
    FftPlan plan(n);
    auto a = randomSignal(n, 1);
    auto b = randomSignal(n, 2);
    const Complex ca{0.7, -0.3}, cb{-1.1, 0.2};

    std::vector<Complex> combined(n);
    for (std::size_t i = 0; i < n; ++i)
        combined[i] = ca * a[i] + cb * b[i];
    plan.forward(combined.data());
    plan.forward(a.data());
    plan.forward(b.data());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(std::abs(combined[i] - (ca * a[i] + cb * b[i])), 0.0,
                    1e-9);
}

TEST(Fft, TimeShiftBecomesLinearPhase)
{
    const std::size_t n = 40;
    const std::size_t shift = 3;
    FftPlan plan(n);
    auto x = randomSignal(n, 5);
    std::vector<Complex> shifted(n);
    for (std::size_t i = 0; i < n; ++i)
        shifted[i] = x[(i + n - shift) % n];
    plan.forward(x.data());
    plan.forward(shifted.data());
    for (std::size_t k = 0; k < n; ++k) {
        Real angle = -kTwoPi * static_cast<Real>(shift * k) / n;
        Complex expected = x[k] * Complex{std::cos(angle), std::sin(angle)};
        EXPECT_NEAR(std::abs(shifted[k] - expected), 0.0, 1e-9);
    }
}

TEST(Fft2d, RoundTrip)
{
    Fft2d fft(24, 36);
    Rng rng(3);
    Field f(24, 36);
    for (std::size_t i = 0; i < f.size(); ++i)
        f[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    Field orig = f;
    fft.forward(&f);
    fft.inverse(&f);
    EXPECT_LT(maxAbsDiff(f, orig), 1e-10);
}

TEST(Fft2d, MatchesSeparableNaiveDft)
{
    const std::size_t n = 8;
    Fft2d fft(n, n);
    Rng rng(9);
    Field f(n, n);
    for (std::size_t i = 0; i < f.size(); ++i)
        f[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};

    Field ref = oracle::dft2d(f, -1);

    fft.forward(&f);
    EXPECT_LT(maxAbsDiff(f, ref), 1e-8);
}

TEST(Fft2d, ImpulseAtOriginIsFlat)
{
    Fft2d fft(10, 14);
    Field f(10, 14, Complex{0, 0});
    f(0, 0) = Complex{1, 0};
    fft.forward(&f);
    for (std::size_t i = 0; i < f.size(); ++i)
        EXPECT_NEAR(std::abs(f[i] - Complex{1, 0}), 0.0, 1e-10);
}

TEST(FftShift, EvenSizeIsInvolution)
{
    Field f(8, 8);
    for (std::size_t i = 0; i < f.size(); ++i)
        f[i] = Complex{static_cast<Real>(i), 0};
    Field shifted = fftshift(f);
    EXPECT_NE(maxAbsDiff(shifted, f), 0.0);
    Field back = fftshift(shifted);
    EXPECT_EQ(maxAbsDiff(back, f), 0.0);
}

TEST(FftShift, OddSizeInverseUndoesShift)
{
    Field f(7, 9);
    Rng rng(4);
    for (std::size_t i = 0; i < f.size(); ++i)
        f[i] = Complex{rng.uniform(), rng.uniform()};
    Field back = ifftshift(fftshift(f));
    EXPECT_EQ(maxAbsDiff(back, f), 0.0);
}

TEST(FftShift, CentersTheOriginBin)
{
    Field f(4, 4, Complex{0, 0});
    f(0, 0) = Complex{1, 0};
    Field shifted = fftshift(f);
    EXPECT_EQ(shifted(2, 2), (Complex{1, 0}));
}

TEST(NextFastLength, ReturnsSmoothLengths)
{
    EXPECT_EQ(nextFastLength(1), 1u);
    EXPECT_EQ(nextFastLength(7), 7u);
    EXPECT_EQ(nextFastLength(11), 12u);
    EXPECT_EQ(nextFastLength(13), 14u);
    EXPECT_EQ(nextFastLength(101), 105u);
    EXPECT_EQ(nextFastLength(257), 270u);
}

TEST(FftPlan, ZeroLengthThrows)
{
    EXPECT_THROW(FftPlan(0), std::invalid_argument);
}

} // namespace
} // namespace lightridge
