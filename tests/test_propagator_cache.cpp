/**
 * @file
 * Regression tests for the propagation caching layer introduced with the
 * batched engine: the process-wide FFT plan cache, the transfer-function
 * cache, and the batched/threaded forward path. The contract under test is
 * strict: every cached path must be *bitwise-identical* to recomputing
 * from scratch, and the caches must actually be hit (and be faster) so a
 * refactor cannot silently fall back to the uncached path.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/diffractive_layer.hpp"
#include "core/model.hpp"
#include "fft/fft.hpp"
#include "fft/kernels.hpp"
#include "optics/propagator.hpp"
#include "utils/rng.hpp"
#include "utils/thread_pool.hpp"
#include "utils/timer.hpp"

namespace lightridge {
namespace {

PropagatorConfig
referenceConfig(std::size_t n = 64)
{
    PropagatorConfig config;
    config.grid = Grid{n, 36e-6};
    config.wavelength = 532e-9;
    config.distance = 0.25;
    return config;
}

Field
randomField(std::size_t n, uint64_t seed)
{
    Rng rng(seed);
    Field f(n, n);
    for (std::size_t i = 0; i < f.size(); ++i)
        f[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    return f;
}

/** True only if every sample matches bit for bit. */
bool
bitwiseEqual(const Field &a, const Field &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].real() != b[i].real() || a[i].imag() != b[i].imag())
            return false;
    return true;
}

TEST(TransferFunctionCache, SecondPropagatorHitsCache)
{
    clearTransferFunctionCache();
    PropagatorConfig config = referenceConfig();

    Propagator first(config);
    TransferFunctionCacheStats after_first = transferFunctionCacheStats();
    EXPECT_EQ(after_first.entries, 1u);
    EXPECT_EQ(after_first.misses, 1u);

    Propagator second(config);
    TransferFunctionCacheStats after_second = transferFunctionCacheStats();
    EXPECT_EQ(after_second.entries, 1u);
    EXPECT_EQ(after_second.hits, after_first.hits + 1);

    // The shared kernel is one object, not merely an equal copy.
    EXPECT_EQ(&first.kernel(), &second.kernel());
}

TEST(TransferFunctionCache, CachedKernelBitwiseMatchesUncached)
{
    clearTransferFunctionCache();
    PropagatorConfig config = referenceConfig();
    Propagator cached(config);

    Field uncached = transferFunction(config.approx, config.method,
                                      config.grid, config.wavelength,
                                      config.distance);
    EXPECT_TRUE(bitwiseEqual(cached.kernel(), uncached));
}

TEST(TransferFunctionCache, CachedForwardBitwiseMatchesUncachedPath)
{
    PropagatorConfig config = referenceConfig();
    Field input = randomField(config.grid.n, 17);

    // Uncached reference: fresh caches, first propagator computes its
    // kernel from scratch.
    clearTransferFunctionCache();
    clearFftPlanCache();
    Field reference = Propagator(config).forward(input);

    // Cached path: a second propagator takes the kernel and plans from
    // the warm caches.
    Propagator warm(config);
    EXPECT_GT(transferFunctionCacheStats().hits, 0u);
    EXPECT_TRUE(bitwiseEqual(warm.forward(input), reference));
    EXPECT_TRUE(bitwiseEqual(warm.adjoint(input),
                             Propagator(config).adjoint(input)));
}

/**
 * The cached-vs-uncached bitwise contract must hold under every kernel
 * set: within one mode the engine is deterministic, so warm-cache and
 * cold-cache propagation stay bit-for-bit equal whether the inner loops
 * are the scalar reference or the vectorized SoA kernels.
 */
class KernelModeCacheParity : public ::testing::TestWithParam<FftKernelMode>
{};

TEST_P(KernelModeCacheParity, CachedForwardBitwiseMatchesUncached)
{
    FftKernelModeGuard guard(GetParam());
    PropagatorConfig config = referenceConfig();
    Field input = randomField(config.grid.n, 29);

    clearTransferFunctionCache();
    clearFftPlanCache();
    Field reference = Propagator(config).forward(input);

    Propagator warm(config);
    EXPECT_GT(transferFunctionCacheStats().hits, 0u);
    EXPECT_TRUE(bitwiseEqual(warm.forward(input), reference));
    EXPECT_TRUE(bitwiseEqual(warm.adjoint(input),
                             Propagator(config).adjoint(input)));
}

INSTANTIATE_TEST_SUITE_P(
    BothKernelSets, KernelModeCacheParity,
    ::testing::Values(FftKernelMode::Scalar, FftKernelMode::Simd),
    [](const ::testing::TestParamInfo<FftKernelMode> &info) {
        return info.param == FftKernelMode::Simd ? std::string("Simd")
                                                 : std::string("Scalar");
    });

/**
 * Scalar-vs-SIMD propagation is NOT bitwise (the SoA kernels reassociate
 * reductions); the contract is the explicit kFftKernelTolerance bound
 * from fft/kernels.hpp, scaled by the transform length. Unit-magnitude
 * inputs through one hop stay well inside it.
 */
TEST(KernelModeCacheParity, ScalarVsSimdWithinPinnedTolerance)
{
    if (!simdKernelsCompiled())
        GTEST_SKIP() << "SIMD kernels not compiled (LIGHTRIDGE_SIMD=OFF)";
    PropagatorConfig config = referenceConfig();
    Field input = randomField(config.grid.n, 31);
    Propagator prop(config);

    Field scalar_out, simd_out;
    {
        FftKernelModeGuard guard(FftKernelMode::Scalar);
        scalar_out = prop.forward(input);
    }
    {
        FftKernelModeGuard guard(FftKernelMode::Simd);
        simd_out = prop.forward(input);
    }
    const Real bound =
        kFftKernelTolerance * static_cast<Real>(config.grid.n);
    EXPECT_GT(maxAbsDiff(scalar_out, simd_out), 0.0)
        << "modes produced identical bits; the SIMD path is likely not "
           "being exercised";
    EXPECT_LE(maxAbsDiff(scalar_out, simd_out), bound);
}

/**
 * Eviction follows true LRU order through the O(1) intrusive recency
 * list: touching an entry protects it, and overflow always drops the
 * least recently used key — observable through hit/miss deltas at a
 * small test capacity.
 */
TEST(TransferFunctionCache, EvictionFollowsLruOrder)
{
    clearTransferFunctionCache();
    std::size_t previous = setTransferFunctionCacheCapacity(3);

    auto config_at = [](Real distance) {
        PropagatorConfig config = referenceConfig(8);
        config.distance = distance;
        return config;
    };
    auto touch = [&](Real distance) {
        PropagatorConfig c = config_at(distance);
        acquireTransferFunction(c.approx, c.method, c.grid, c.wavelength,
                                c.distance);
    };
    auto misses = [] { return transferFunctionCacheStats().misses; };

    touch(0.10); // k0
    touch(0.11); // k1
    touch(0.12); // k2  -> cache [k2 k1 k0], 3 misses
    EXPECT_EQ(transferFunctionCacheStats().entries, 3u);
    EXPECT_EQ(misses(), 3u);

    touch(0.10); // hit: k0 becomes most recent -> [k0 k2 k1]
    EXPECT_EQ(misses(), 3u);
    EXPECT_EQ(transferFunctionCacheStats().hits, 1u);

    touch(0.13); // k3 evicts k1 (the LRU), not the just-touched k0
    EXPECT_EQ(transferFunctionCacheStats().entries, 3u);
    EXPECT_EQ(misses(), 4u);

    touch(0.10); // k0 still resident
    touch(0.12); // k2 still resident
    touch(0.13); // k3 still resident
    EXPECT_EQ(misses(), 4u);

    touch(0.11); // k1 was evicted -> miss (and k0, LRU by now, goes)
    EXPECT_EQ(misses(), 5u);
    EXPECT_EQ(transferFunctionCacheStats().entries, 3u);

    setTransferFunctionCacheCapacity(previous);
    clearTransferFunctionCache();
}

TEST(TransferFunctionCache, CapacityShrinkEvictsImmediately)
{
    clearTransferFunctionCache();
    std::size_t previous = setTransferFunctionCacheCapacity(4);
    for (int i = 0; i < 4; ++i) {
        PropagatorConfig config = referenceConfig(8);
        config.distance = 0.2 + 0.01 * i;
        acquireTransferFunction(config.approx, config.method, config.grid,
                                config.wavelength, config.distance);
    }
    EXPECT_EQ(transferFunctionCacheStats().entries, 4u);
    setTransferFunctionCacheCapacity(2);
    EXPECT_EQ(transferFunctionCacheStats().entries, 2u);
    EXPECT_THROW(setTransferFunctionCacheCapacity(0), std::invalid_argument);
    setTransferFunctionCacheCapacity(previous);
    clearTransferFunctionCache();
}

TEST(TransferFunctionCache, DistinctConfigsGetDistinctKernels)
{
    clearTransferFunctionCache();
    PropagatorConfig a = referenceConfig();
    PropagatorConfig b = referenceConfig();
    b.distance = 0.35;

    Propagator pa(a);
    Propagator pb(b);
    EXPECT_EQ(transferFunctionCacheStats().entries, 2u);
    EXPECT_FALSE(bitwiseEqual(pa.kernel(), pb.kernel()));
}

TEST(FftPlanCache, PlansAreSharedPerLength)
{
    clearFftPlanCache();
    auto a = acquireFftPlan(96);
    auto b = acquireFftPlan(96);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(fftPlanCacheSize(), 1u);

    auto c = acquireFftPlan(100);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(fftPlanCacheSize(), 2u);
}

TEST(FftPlanCache, SharedPlanTransformsIdenticallyToFresh)
{
    const std::size_t n = 60;
    clearFftPlanCache();
    FftPlan fresh(n);
    auto shared = acquireFftPlan(n);

    Rng rng(5);
    std::vector<Complex> x(n);
    for (auto &v : x)
        v = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    std::vector<Complex> via_fresh = x;
    std::vector<Complex> via_shared = x;
    fresh.forward(via_fresh.data());
    shared->forward(via_shared.data());
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(via_fresh[i].real(), via_shared[i].real()) << "i=" << i;
        EXPECT_EQ(via_fresh[i].imag(), via_shared[i].imag()) << "i=" << i;
    }
}

/**
 * Micro-benchmark-backed regression: constructing a propagator from the
 * warm cache must be faster than computing the kernel from scratch. The
 * margin is enormous in practice (a hit is a map lookup, a miss is O(n^2)
 * transcendentals plus plan construction), so comparing medians of a few
 * repetitions is robust even on loaded CI machines.
 */
TEST(TransferFunctionCache, WarmConstructionFasterThanCold)
{
    PropagatorConfig config = referenceConfig(128);
    auto median_ms = [](std::vector<double> samples) {
        std::sort(samples.begin(), samples.end());
        return samples[samples.size() / 2];
    };

    std::vector<double> cold_ms;
    for (int r = 0; r < 3; ++r) {
        clearTransferFunctionCache();
        clearFftPlanCache();
        WallTimer timer;
        Propagator p(config);
        cold_ms.push_back(timer.milliseconds());
    }

    std::vector<double> warm_ms;
    Propagator keep_warm(config); // ensure the caches stay populated
    for (int r = 0; r < 3; ++r) {
        WallTimer timer;
        Propagator p(config);
        warm_ms.push_back(timer.milliseconds());
    }

    EXPECT_LT(median_ms(warm_ms), median_ms(cold_ms))
        << "cold=" << median_ms(cold_ms) << "ms warm=" << median_ms(warm_ms)
        << "ms";
}

TEST(BatchedForward, MatchesSerialInferenceBitwise)
{
    const std::size_t n = 48;
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = 0.2;
    Rng rng(9);
    DonnModel model(spec, Laser{});
    for (std::size_t l = 0; l < 3; ++l)
        model.addLayer(std::make_unique<DiffractiveLayer>(
            model.hopPropagator(), 1.0, &rng));

    std::vector<Field> inputs;
    for (std::size_t b = 0; b < 8; ++b)
        inputs.push_back(randomField(n, 100 + b));

    ThreadPool pool(4); // real threads even on single-core hosts
    std::vector<Field> batched = model.forwardFieldBatch(inputs, &pool);
    ASSERT_EQ(batched.size(), inputs.size());
    for (std::size_t b = 0; b < inputs.size(); ++b)
        EXPECT_TRUE(bitwiseEqual(batched[b], model.inferField(inputs[b])))
            << "sample " << b;

    // The default-pool overload must agree as well.
    std::vector<Field> global_pool = model.forwardFieldBatch(inputs);
    for (std::size_t b = 0; b < inputs.size(); ++b)
        EXPECT_TRUE(bitwiseEqual(global_pool[b], batched[b]))
            << "sample " << b;
}

TEST(BatchedForward, InferFieldMatchesForwardField)
{
    const std::size_t n = 32;
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = 0.15;
    Rng rng(21);
    DonnModel model(spec, Laser{});
    model.addLayer(std::make_unique<DiffractiveLayer>(model.hopPropagator(),
                                                      1.0, &rng));
    Field input = randomField(n, 33);
    EXPECT_TRUE(bitwiseEqual(model.inferField(input),
                             model.forwardField(input, false)));
}

} // namespace
} // namespace lightridge
