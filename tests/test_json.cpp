/**
 * @file
 * Minimal JSON implementation tests: parsing, serialization, round trips,
 * error handling.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "utils/json.hpp"

namespace lightridge {
namespace {

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(Json::parse("null").isNull());
    EXPECT_EQ(Json::parse("true").asBool(), true);
    EXPECT_EQ(Json::parse("false").asBool(), false);
    EXPECT_DOUBLE_EQ(Json::parse("3.25").asNumber(), 3.25);
    EXPECT_DOUBLE_EQ(Json::parse("-1e3").asNumber(), -1000.0);
    EXPECT_EQ(Json::parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesNestedStructures)
{
    Json j = Json::parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
    EXPECT_EQ(j.at("a").asArray().size(), 3u);
    EXPECT_DOUBLE_EQ(j.at("a").asArray()[1].asNumber(), 2.0);
    EXPECT_EQ(j.at("a").asArray()[2].at("b").asString(), "c");
    EXPECT_TRUE(j.at("d").at("e").isNull());
}

TEST(Json, ParsesEscapes)
{
    Json j = Json::parse(R"("line\nbreak \"quoted\" A")");
    EXPECT_EQ(j.asString(), "line\nbreak \"quoted\" A");
}

TEST(Json, RoundTripsThroughDump)
{
    Json j;
    j["name"] = Json("lightridge");
    j["size"] = Json(200);
    j["pixel"] = Json(3.6e-5);
    j["flags"] = Json(Json::Array{Json(true), Json(false), Json(nullptr)});
    Json k = Json::parse(j.dump());
    EXPECT_EQ(k.at("name").asString(), "lightridge");
    EXPECT_DOUBLE_EQ(k.at("size").asNumber(), 200);
    EXPECT_DOUBLE_EQ(k.at("pixel").asNumber(), 3.6e-5);
    EXPECT_EQ(k.at("flags").asArray()[0].asBool(), true);
    EXPECT_TRUE(k.at("flags").asArray()[2].isNull());
}

TEST(Json, PreservesDoublePrecision)
{
    double value = 0.1234567890123456;
    Json j(value);
    Json k = Json::parse(j.dump());
    EXPECT_DOUBLE_EQ(k.asNumber(), value);
}

TEST(Json, PrettyOutputParses)
{
    Json j;
    j["outer"]["inner"] = Json(Json::Array{Json(1), Json(2)});
    Json k = Json::parse(j.pretty());
    EXPECT_EQ(k.at("outer").at("inner").asArray().size(), 2u);
}

TEST(Json, MalformedInputThrows)
{
    EXPECT_THROW(Json::parse(""), JsonError);
    EXPECT_THROW(Json::parse("{"), JsonError);
    EXPECT_THROW(Json::parse("[1,]"), JsonError);
    EXPECT_THROW(Json::parse("nul"), JsonError);
    EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
    EXPECT_THROW(Json::parse("{}extra"), JsonError);
}

TEST(Json, TypeMismatchThrows)
{
    Json j = Json::parse("[1]");
    EXPECT_THROW(j.asObject(), JsonError);
    EXPECT_THROW(j.asString(), JsonError);
    EXPECT_THROW(j.at("x"), JsonError);
}

TEST(Json, MissingKeyThrowsAndNumberOrDefaults)
{
    Json j = Json::parse(R"({"a": 1})");
    EXPECT_THROW(j.at("b"), JsonError);
    EXPECT_DOUBLE_EQ(j.numberOr("a", 9.0), 1.0);
    EXPECT_DOUBLE_EQ(j.numberOr("b", 9.0), 9.0);
    EXPECT_TRUE(j.has("a"));
    EXPECT_FALSE(j.has("b"));
}

TEST(Json, PushPromotesNullToArray)
{
    Json j;
    j.push(Json(1));
    j.push(Json(2));
    EXPECT_EQ(j.asArray().size(), 2u);
}

TEST(Json, SaveLoadRoundTrip)
{
    Json j;
    j["k"] = Json(3.5);
    const std::string path = "/tmp/lr_json_test.json";
    ASSERT_TRUE(j.save(path));
    Json k = Json::load(path);
    EXPECT_DOUBLE_EQ(k.at("k").asNumber(), 3.5);
    std::remove(path.c_str());
}

TEST(Json, LoadMissingFileThrows)
{
    EXPECT_THROW(Json::load("/nonexistent/path.json"), JsonError);
}

} // namespace
} // namespace lightridge
