/**
 * @file
 * Field / RealMap container tests: arithmetic, readouts, resizing,
 * correlation.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/field.hpp"

namespace lightridge {
namespace {

TEST(RealMap, FillSumMeanMinMax)
{
    RealMap m(3, 4, 2.0);
    EXPECT_DOUBLE_EQ(m.sum(), 24.0);
    EXPECT_DOUBLE_EQ(m.mean(), 2.0);
    m(1, 2) = -5.0;
    m(0, 0) = 9.0;
    EXPECT_DOUBLE_EQ(m.min(), -5.0);
    EXPECT_DOUBLE_EQ(m.max(), 9.0);
    m.fill(0.0);
    EXPECT_DOUBLE_EQ(m.sum(), 0.0);
}

TEST(RealMap, ElementwiseOps)
{
    RealMap a(2, 2, 1.0);
    RealMap b(2, 2, 3.0);
    a += b;
    EXPECT_DOUBLE_EQ(a(0, 0), 4.0);
    a -= b;
    EXPECT_DOUBLE_EQ(a(1, 1), 1.0);
    a *= 2.5;
    EXPECT_DOUBLE_EQ(a(0, 1), 2.5);
}

TEST(Field, IntensityAmplitudePhase)
{
    Field f(1, 2);
    f(0, 0) = Complex{3, 4};
    f(0, 1) = std::polar(2.0, 0.5);
    RealMap intensity = f.intensity();
    EXPECT_DOUBLE_EQ(intensity(0, 0), 25.0);
    EXPECT_NEAR(f.amplitude()(0, 1), 2.0, 1e-12);
    EXPECT_NEAR(f.phase()(0, 1), 0.5, 1e-12);
    EXPECT_NEAR(f.power(), 29.0, 1e-12);
}

TEST(Field, PolarConstruction)
{
    RealMap amp(2, 2, 2.0);
    RealMap phase(2, 2, kPi / 2);
    Field f = Field::fromPolar(amp, phase);
    EXPECT_NEAR(f(0, 0).real(), 0.0, 1e-12);
    EXPECT_NEAR(f(0, 0).imag(), 2.0, 1e-12);

    Field g = Field::fromAmplitude(amp);
    EXPECT_NEAR(g(1, 1).real(), 2.0, 1e-12);
    EXPECT_NEAR(g(1, 1).imag(), 0.0, 1e-12);
}

TEST(Field, HadamardAndConjugate)
{
    Field a(1, 1), b(1, 1);
    a(0, 0) = Complex{1, 2};
    b(0, 0) = Complex{3, -1};
    Field c = a;
    c.hadamard(b);
    EXPECT_EQ(c(0, 0), Complex(1, 2) * Complex(3, -1));
    Field d = a;
    d.hadamardConj(b);
    EXPECT_EQ(d(0, 0), Complex(1, 2) * Complex(3, 1));
}

TEST(Field, ScaleAddSubtract)
{
    Field a(2, 2, Complex{1, 1});
    a *= 2.0;
    EXPECT_EQ(a(0, 0), (Complex{2, 2}));
    a *= Complex{0, 1};
    EXPECT_EQ(a(0, 0), (Complex{-2, 2}));
    Field b(2, 2, Complex{1, 0});
    a += b;
    EXPECT_EQ(a(1, 1), (Complex{-1, 2}));
    a -= b;
    EXPECT_EQ(a(1, 1), (Complex{-2, 2}));
}

TEST(Correlation, IdenticalMapsGiveOne)
{
    RealMap a(4, 4);
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<Real>(i % 5);
    EXPECT_NEAR(correlation(a, a), 1.0, 1e-12);
}

TEST(Correlation, AntiCorrelatedMapsGiveMinusOne)
{
    RealMap a(2, 8), b(2, 8);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = static_cast<Real>(i);
        b[i] = -static_cast<Real>(i);
    }
    EXPECT_NEAR(correlation(a, b), -1.0, 1e-12);
}

TEST(Correlation, ScaleAndOffsetInvariant)
{
    RealMap a(3, 3), b(3, 3);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = std::sin(static_cast<Real>(i));
        b[i] = 3.0 * a[i] + 7.0;
    }
    EXPECT_NEAR(correlation(a, b), 1.0, 1e-12);
}

TEST(ResizeBilinear, IdentityWhenSameSize)
{
    RealMap a(5, 5);
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<Real>(i);
    RealMap b = resizeBilinear(a, 5, 5);
    EXPECT_NEAR(maxAbsDiff(a, b), 0.0, 1e-12);
}

TEST(ResizeBilinear, PreservesConstantImages)
{
    RealMap a(4, 4, 3.5);
    RealMap up = resizeBilinear(a, 13, 9);
    EXPECT_NEAR(up.min(), 3.5, 1e-12);
    EXPECT_NEAR(up.max(), 3.5, 1e-12);
}

TEST(ResizeBilinear, UpscaleKeepsValueRange)
{
    RealMap a(2, 2);
    a(0, 0) = 0;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 0;
    RealMap up = resizeBilinear(a, 8, 8);
    EXPECT_GE(up.min(), 0.0);
    EXPECT_LE(up.max(), 1.0);
}

TEST(EmbedCentered, PlacesInputInMiddle)
{
    RealMap a(2, 2, 1.0);
    RealMap big = embedCentered(a, 6, 6);
    EXPECT_DOUBLE_EQ(big.sum(), 4.0);
    EXPECT_DOUBLE_EQ(big(2, 2), 1.0);
    EXPECT_DOUBLE_EQ(big(3, 3), 1.0);
    EXPECT_DOUBLE_EQ(big(0, 0), 0.0);
}

TEST(EmbedCentered, ThrowsWhenTargetTooSmall)
{
    RealMap a(4, 4, 1.0);
    EXPECT_THROW(embedCentered(a, 3, 8), std::invalid_argument);
}

TEST(MaxAbsDiff, DetectsLargestDeviation)
{
    Field a(2, 2, Complex{0, 0});
    Field b = a;
    b(1, 0) = Complex{0, 3};
    EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 3.0);
}

} // namespace
} // namespace lightridge
