/**
 * @file
 * Out-of-core streaming dataset subsystem: bitwise shard round trips,
 * streamed-vs-preloaded training parity across worker counts and the
 * pipelined schedule, the deterministic two-level shuffle, strict
 * manifest/shard validation errors naming the offending shard, the
 * mid-epoch dev-eval cadence, and — in LIGHTRIDGE_ALLOC_STATS builds —
 * zero-Field-allocation steady-state streamed train steps.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "data/shard.hpp"
#include "data/stream.hpp"
#include "data/synth_city.hpp"
#include "data/synth_digits.hpp"
#include "data/synth_scenes.hpp"
#include "optics/diffraction.hpp"

namespace lightridge {
namespace {

/** Self-cleaning scratch directory for packed datasets. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/lightridge_data_XXXXXX";
        char *made = mkdtemp(tmpl);
        EXPECT_NE(made, nullptr);
        path = made != nullptr ? made : "/tmp";
    }
    ~TempDir() { std::filesystem::remove_all(path); }

    std::string sub(const std::string &name) const
    {
        return path + "/" + name;
    }
};

SystemSpec
spec16()
{
    SystemSpec spec;
    spec.size = 16;
    spec.pixel = 36e-6;
    spec.distance = idealDistanceHalfCone(Grid{16, 36e-6}, 532e-9);
    return spec;
}

DonnModel
classModel(uint64_t seed)
{
    Rng rng(seed);
    return ModelBuilder(spec16(), Laser{})
        .diffractiveLayers(2, 1.0, &rng)
        .detectorGrid(10, 1)
        .build();
}

/** Train a classification source and return the end-of-epoch losses. */
std::vector<Real>
lossHistory(ClassSource &source, const ClassDataset *test, TrainConfig cfg)
{
    DonnModel model = classModel(11);
    ClassificationTask task(model, source, test);
    Session session(task, cfg);
    std::vector<Real> losses;
    for (const EpochStats &stats : session.fit())
        if (!stats.mid_epoch)
            losses.push_back(stats.train_loss);
    return losses;
}

TrainConfig
smallConfig(std::size_t workers, bool pipeline)
{
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch = 6;
    cfg.seed = 3;
    cfg.workers = workers;
    cfg.pipeline = pipeline;
    cfg.verbose = false;
    return cfg;
}

/** Element-exact RealMap comparison (the bitwise round-trip check). */
bool
bitwiseEqual(const RealMap &a, const RealMap &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

/** Expect `fn` to throw DataError whose message names `needle`. */
template <typename Fn>
void
expectDataError(Fn fn, const std::string &needle)
{
    try {
        fn();
        FAIL() << "expected DataError mentioning \"" << needle << "\"";
    } catch (const DataError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "DataError message \"" << e.what()
            << "\" does not name \"" << needle << "\"";
    }
}

/** Overwrite bytes at `offset` of a file in place. */
void
patchFile(const std::string &path, std::size_t offset, const void *bytes,
          std::size_t count)
{
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << path;
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(static_cast<const char *>(bytes),
            static_cast<std::streamsize>(count));
    ASSERT_TRUE(f.good()) << path;
}

// --------------------------------------------------------------------------
// Shard format round trips
// --------------------------------------------------------------------------

TEST(ShardFormat, ClassRoundTripIsBitwise)
{
    TempDir dir;
    ClassDataset data = makeSynthDigits(25, 7);
    PackOptions options;
    options.shard_samples = 8; // 8+8+8+1: uneven tail shard
    DatasetManifest manifest = writeShards(data, dir.sub("d"), options);
    EXPECT_EQ(manifest.samples, 25u);
    EXPECT_EQ(manifest.shards.size(), 4u);
    EXPECT_EQ(manifest.shardSizes(),
              (std::vector<std::size_t>{8, 8, 8, 1}));

    DatasetManifest loaded = DatasetManifest::load(
        dir.sub("d") + "/manifest.json");
    EXPECT_EQ(loaded.num_classes, data.num_classes);
    ClassDataset back = materializeClassDataset(loaded);
    ASSERT_EQ(back.size(), data.size());
    EXPECT_EQ(back.labels, data.labels);
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_TRUE(bitwiseEqual(back.images[i], data.images[i]))
            << "sample " << i << " must round-trip bitwise";
}

TEST(ShardFormat, SegRoundTripIsBitwise)
{
    TempDir dir;
    SegDataset data = makeSynthCity(10, 5);
    PackOptions options;
    options.shard_samples = 4;
    writeShards(data, dir.sub("d"), options);
    SegDataset back = materializeSegDataset(
        DatasetManifest::load(dir.sub("d") + "/manifest.json"));
    ASSERT_EQ(back.size(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_TRUE(bitwiseEqual(back.images[i], data.images[i]));
        EXPECT_TRUE(bitwiseEqual(back.masks[i], data.masks[i]));
    }
}

TEST(ShardFormat, RgbRoundTripIsBitwise)
{
    TempDir dir;
    RgbDataset data = makeSynthScenes(9, 3);
    PackOptions options;
    options.shard_samples = 4;
    writeShards(data, dir.sub("d"), options);
    RgbDataset back = materializeRgbDataset(
        DatasetManifest::load(dir.sub("d") + "/manifest.json"));
    ASSERT_EQ(back.size(), data.size());
    EXPECT_EQ(back.labels, data.labels);
    EXPECT_EQ(back.num_classes, data.num_classes);
    for (std::size_t i = 0; i < data.size(); ++i)
        for (int c = 0; c < 3; ++c)
            EXPECT_TRUE(bitwiseEqual(back.images[i][c], data.images[i][c]));
}

TEST(ShardFormat, DecodeShardIntoReusesStorage)
{
    TempDir dir;
    ClassDataset data = makeSynthDigits(12, 2);
    PackOptions options;
    options.shard_samples = 6;
    DatasetManifest manifest = writeShards(data, dir.sub("d"), options);

    ShardBuffer buffer;
    decodeShardInto(manifest, 1, buffer);
    ASSERT_EQ(buffer.images.size(), 6u);
    EXPECT_EQ(buffer.labels[0], data.labels[6]);
    EXPECT_TRUE(bitwiseEqual(buffer.images[2], data.images[8]));

    // A second decode into the warm buffer lands the other shard's data.
    decodeShardInto(manifest, 0, buffer);
    EXPECT_EQ(buffer.labels[0], data.labels[0]);
    EXPECT_TRUE(bitwiseEqual(buffer.images[5], data.images[5]));
}

// --------------------------------------------------------------------------
// Deterministic two-level shuffle
// --------------------------------------------------------------------------

TEST(TwoLevelShuffle, SingleShardMatchesFlatShuffle)
{
    for (uint64_t seed : {1u, 7u, 42u}) {
        Rng flat_rng(seed);
        std::vector<std::size_t> flat(20);
        std::iota(flat.begin(), flat.end(), std::size_t{0});
        std::shuffle(flat.begin(), flat.end(), flat_rng.engine());

        Rng rng(seed);
        EXPECT_EQ(twoLevelEpochOrder({20}, true, &rng), flat)
            << "single-shard order must equal the historical flat shuffle "
               "(seed " << seed << ")";
    }
}

TEST(TwoLevelShuffle, DeterministicAndShardMajor)
{
    const std::vector<std::size_t> sizes{8, 8, 4};
    Rng rng_a(9), rng_b(9), rng_c(10);
    std::vector<std::size_t> a = twoLevelEpochOrder(sizes, true, &rng_a);
    std::vector<std::size_t> b = twoLevelEpochOrder(sizes, true, &rng_b);
    std::vector<std::size_t> c = twoLevelEpochOrder(sizes, true, &rng_c);
    EXPECT_EQ(a, b) << "same seed must give the same order";
    EXPECT_NE(a, c) << "different seeds must give different orders";

    // A permutation of 0..n-1 ...
    std::vector<std::size_t> sorted = a;
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::size_t> iota(20);
    std::iota(iota.begin(), iota.end(), std::size_t{0});
    EXPECT_EQ(sorted, iota);

    // ... grouped shard-major: each shard occupies one contiguous span.
    auto shard_of = [](std::size_t i) {
        return i < 8 ? 0 : (i < 16 ? 1 : 2);
    };
    std::vector<int> seen_shards;
    for (std::size_t pos = 0; pos < a.size(); ++pos) {
        int s = shard_of(a[pos]);
        if (seen_shards.empty() || seen_shards.back() != s)
            seen_shards.push_back(s);
    }
    EXPECT_EQ(seen_shards.size(), sizes.size())
        << "each shard's samples must be contiguous in the epoch order";
}

TEST(TwoLevelShuffle, NoShuffleIsIdentity)
{
    Rng rng(4);
    std::vector<std::size_t> order = twoLevelEpochOrder({5, 3}, false, &rng);
    std::vector<std::size_t> iota(8);
    std::iota(iota.begin(), iota.end(), std::size_t{0});
    EXPECT_EQ(order, iota);
}

// --------------------------------------------------------------------------
// Streamed-vs-preloaded training parity
// --------------------------------------------------------------------------

TEST(StreamedTraining, MatchesPreloadedBitwiseAcrossSchedules)
{
    TempDir dir;
    ClassDataset raw = makeSynthDigits(24, 7);
    PackOptions options;
    options.shard_samples = 8;
    DatasetManifest manifest = writeShards(raw, dir.sub("train"), options);

    ClassDataset preloaded = materializeClassDataset(manifest);
    for (std::size_t workers : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}}) {
        for (bool pipeline : {false, true}) {
            InMemoryClassSource memory(preloaded, manifest.shardSizes());
            ShardedClassSource streamed(manifest, 1);
            std::vector<Real> a = lossHistory(
                memory, nullptr, smallConfig(workers, pipeline));
            std::vector<Real> b = lossHistory(
                streamed, nullptr, smallConfig(workers, pipeline));
            EXPECT_EQ(a, b)
                << "streamed and preloaded training must be bitwise "
                   "identical (workers=" << workers
                << " pipeline=" << pipeline << ")";
        }
    }
}

TEST(StreamedTraining, SingleShardMatchesLegacyInMemoryTraining)
{
    TempDir dir;
    ClassDataset raw = makeSynthDigits(18, 5);
    DatasetManifest manifest = writeShards(raw, dir.sub("train"));
    ASSERT_EQ(manifest.shards.size(), 1u);

    // Default flat layout (the engine's historical shuffle) ...
    InMemoryClassSource flat(raw);
    std::vector<Real> legacy =
        lossHistory(flat, nullptr, smallConfig(1, false));
    // ... equals the streamed single-shard run: shuffling a one-element
    // shard list draws nothing, so the rng stream is identical.
    ShardedClassSource streamed(manifest, 1);
    std::vector<Real> stream =
        lossHistory(streamed, nullptr, smallConfig(1, false));
    EXPECT_EQ(legacy, stream);
}

TEST(StreamedTraining, PrefetchDepthDoesNotChangeNumbers)
{
    TempDir dir;
    ClassDataset raw = makeSynthDigits(24, 9);
    PackOptions options;
    options.shard_samples = 6;
    DatasetManifest manifest = writeShards(raw, dir.sub("train"), options);

    std::vector<std::vector<Real>> runs;
    for (std::size_t prefetch : {std::size_t{0}, std::size_t{1},
                                 std::size_t{3}}) {
        ShardedClassSource source(manifest, prefetch);
        runs.push_back(lossHistory(source, nullptr, smallConfig(2, false)));
        EXPECT_EQ(source.prefetchDepth(), prefetch);
    }
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[1], runs[2]);
}

TEST(StreamedTraining, BytesReadCountsDecodedPayload)
{
    TempDir dir;
    ClassDataset raw = makeSynthDigits(16, 3);
    PackOptions options;
    options.shard_samples = 4;
    DatasetManifest manifest = writeShards(raw, dir.sub("train"), options);
    std::uint64_t payload = 0;
    for (const ShardInfo &shard : manifest.shards)
        payload += shard.bytes;

    ShardedClassSource source(manifest, 1);
    EXPECT_EQ(source.bytesRead(), 0u);
    std::vector<Real> losses =
        lossHistory(source, nullptr, smallConfig(1, false));
    ASSERT_FALSE(losses.empty());
    // Every shard decodes at least once; the slot cache may save some
    // re-decodes across epochs, so the exact count is schedule-dependent.
    EXPECT_GE(source.bytesRead(), payload);
    EXPECT_EQ(source.bytesRead() % manifest.shards[0].bytes, 0u);
}

TEST(StreamedTraining, StageIndicesServesRandomAccess)
{
    TempDir dir;
    ClassDataset raw = makeSynthDigits(20, 6);
    PackOptions options;
    options.shard_samples = 8;
    DatasetManifest manifest = writeShards(raw, dir.sub("train"), options);

    // The calibration-probe path: random access outside any epoch.
    ShardedClassSource source(manifest, 0);
    source.stageIndices(4, 12); // spans shards 0 and 1
    for (std::size_t i = 4; i < 12; ++i) {
        EXPECT_EQ(source.label(i), raw.labels[i]);
        EXPECT_TRUE(bitwiseEqual(source.image(i), raw.images[i]));
    }
    EXPECT_EQ(source.numClasses(), raw.num_classes);
}

// --------------------------------------------------------------------------
// Strict validation error paths
// --------------------------------------------------------------------------

TEST(ShardValidation, MissingShardNamesTheFile)
{
    TempDir dir;
    ClassDataset raw = makeSynthDigits(12, 4);
    PackOptions options;
    options.shard_samples = 4;
    DatasetManifest manifest = writeShards(raw, dir.sub("d"), options);
    std::filesystem::remove(manifest.shardPath(1));
    expectDataError([&] { verifyShardHeaders(manifest); },
                    "shard_00001.bin");
    expectDataError([&] { ShardedClassSource source(manifest, 1); },
                    "shard_00001.bin");
}

TEST(ShardValidation, ChecksumMismatchNamesTheShard)
{
    TempDir dir;
    ClassDataset raw = makeSynthDigits(12, 4);
    PackOptions options;
    options.shard_samples = 4;
    DatasetManifest manifest = writeShards(raw, dir.sub("d"), options);
    // Flip one payload byte past the 56-byte header: the header-only scan
    // stays happy, the checksummed decode must fail.
    const unsigned char garbage = 0xa5;
    patchFile(manifest.shardPath(2), 56 + 11, &garbage, 1);
    verifyShardHeaders(manifest);
    expectDataError([&] { validateManifest(manifest); }, "shard_00002.bin");
    expectDataError([&] { validateManifest(manifest); }, "checksum");
    ShardBuffer buffer;
    expectDataError([&] { decodeShardInto(manifest, 2, buffer); },
                    "shard_00002.bin");
}

TEST(ShardValidation, TruncatedShardNamesTheShard)
{
    TempDir dir;
    ClassDataset raw = makeSynthDigits(8, 4);
    PackOptions options;
    options.shard_samples = 4;
    DatasetManifest manifest = writeShards(raw, dir.sub("d"), options);
    std::filesystem::resize_file(manifest.shardPath(0), 56 + 40);
    expectDataError([&] { validateManifest(manifest); }, "shard_00000.bin");
}

TEST(ShardValidation, FutureFormatVersionIsRejected)
{
    TempDir dir;
    ClassDataset raw = makeSynthDigits(8, 4);
    DatasetManifest manifest = writeShards(raw, dir.sub("d"));
    // The version word sits right after the 8-byte magic.
    const std::uint32_t future = kShardVersion + 7;
    patchFile(manifest.shardPath(0), 8, &future, sizeof(future));
    expectDataError([&] { verifyShardHeaders(manifest); },
                    "shard_00000.bin");
    expectDataError([&] { verifyShardHeaders(manifest); }, "version");
}

TEST(ShardValidation, StreamPoisonsOnMidEpochCorruption)
{
    TempDir dir;
    ClassDataset raw = makeSynthDigits(16, 4);
    PackOptions options;
    options.shard_samples = 4;
    DatasetManifest manifest = writeShards(raw, dir.sub("d"), options);

    // Headers verify at construction; corrupt a payload afterwards so the
    // failure surfaces from the decode jobs during staging.
    ShardedClassSource source(manifest, 1);
    for (std::size_t s = 0; s < manifest.shards.size(); ++s) {
        const unsigned char garbage = 0x5a;
        patchFile(manifest.shardPath(s), 56 + 3, &garbage, 1);
    }
    std::vector<std::size_t> order(raw.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    source.beginEpoch(&order);
    expectDataError([&] { source.stageRange(0, 8); }, "checksum");
    source.endEpoch();
}

TEST(ShardValidation, ManifestRejectsUnknownKeysAndWrongFormat)
{
    TempDir dir;
    ClassDataset raw = makeSynthDigits(8, 4);
    DatasetManifest manifest = writeShards(raw, dir.sub("d"));
    const std::string path = dir.sub("d") + "/manifest.json";

    Json j = manifest.toJson();
    j["surprise"] = Json(true);
    ASSERT_TRUE(j.save(path));
    expectDataError([&] { DatasetManifest::load(path); }, "surprise");

    Json wrong = manifest.toJson();
    wrong["format"] = Json(std::string("not-a-dataset"));
    ASSERT_TRUE(wrong.save(path));
    expectDataError([&] { DatasetManifest::load(path); },
                    "lightridge-dataset");
}

// --------------------------------------------------------------------------
// Mid-epoch dev evaluation
// --------------------------------------------------------------------------

TEST(DevEval, OffByDefaultIsBitwiseNoOp)
{
    ClassDataset train = makeSynthDigits(24, 7);
    ClassDataset test = makeSynthDigits(8, 8);

    InMemoryClassSource source_a(train);
    TrainConfig base = smallConfig(1, false);
    std::vector<Real> plain = lossHistory(source_a, &test, base);

    InMemoryClassSource source_b(train);
    TrainConfig cadence = base;
    cadence.dev_eval_every_batches = 2;
    std::vector<Real> with_eval = lossHistory(source_b, &test, cadence);
    EXPECT_EQ(plain, with_eval)
        << "mid-epoch dev eval must not change the training numbers";
}

TEST(DevEval, SnapshotsInterleaveWithCadence)
{
    ClassDataset train = makeSynthDigits(24, 7);
    ClassDataset test = makeSynthDigits(8, 8);
    InMemoryClassSource source(train);

    DonnModel model = classModel(11);
    ClassificationTask task(model, source, &test);
    TrainConfig cfg = smallConfig(1, false);
    cfg.dev_eval_every_batches = 2;
    Session session(task, cfg);

    std::size_t callback_mid = 0;
    session.addCallback([&](const EpochStats &stats, Session &) {
        callback_mid += stats.mid_epoch ? 1 : 0;
        return true;
    });
    std::vector<EpochStats> history = session.fit();

    // 24 samples / batch 6 = 4 batches/epoch; cadence 2 fires after
    // batches 2 and 4 -> 2 snapshots per epoch, 2 epochs.
    std::size_t mid = 0, full = 0;
    int last_epoch = -1;
    for (const EpochStats &stats : history) {
        if (stats.mid_epoch) {
            ++mid;
            EXPECT_TRUE(stats.batch == 2 || stats.batch == 4);
            EXPECT_GE(stats.epoch, last_epoch)
                << "snapshots must precede their epoch's final entry";
        } else {
            ++full;
            last_epoch = stats.epoch;
        }
    }
    EXPECT_EQ(mid, 4u);
    EXPECT_EQ(full, 2u);
    EXPECT_EQ(callback_mid, 4u)
        << "mid-epoch snapshots must flow through the callback machinery";
}

TEST(DevEval, PipelinedScheduleIsEvalInvariant)
{
    ClassDataset train = makeSynthDigits(24, 7);
    ClassDataset test = makeSynthDigits(8, 8);

    // The pipelined schedule stalls the prefetched launch around an eval
    // but must not change the numbers relative to eval-off at the same
    // worker count.
    TrainConfig cfg = smallConfig(2, true);
    InMemoryClassSource source_a(train);
    std::vector<Real> plain = lossHistory(source_a, &test, cfg);

    cfg.dev_eval_every_batches = 1;
    InMemoryClassSource source_b(train);
    std::vector<Real> with_eval = lossHistory(source_b, &test, cfg);
    EXPECT_EQ(plain, with_eval);
}

// --------------------------------------------------------------------------
// Zero-allocation steady state (LIGHTRIDGE_ALLOC_STATS builds only)
// --------------------------------------------------------------------------

TEST(AllocStats, SteadyStateStreamedStepAllocatesNoFields)
{
    if (!fieldAllocStatsEnabled())
        GTEST_SKIP() << "build with -DLIGHTRIDGE_ALLOC_STATS=ON";
    TempDir dir;
    ClassDataset raw = makeSynthDigits(18, 3);
    PackOptions options;
    options.shard_samples = 6;
    DatasetManifest manifest = writeShards(raw, dir.sub("train"), options);

    DonnModel model = classModel(11);
    ShardedClassSource source(manifest, 1);
    ClassificationTask task(model, source); // no test set: pure train loop
    Session session(task, smallConfig(1, false));
    session.calibrate();

    // Warm epoch: sizes the slot ring, layer caches, and workspaces.
    session.trainEpoch();

    resetFieldAllocCount();
    session.trainEpoch();
    EXPECT_EQ(fieldAllocCount(), 0u)
        << "steady-state streamed train steps (decode included) must not "
           "allocate Fields";
}

} // namespace
} // namespace lightridge
