/**
 * @file
 * Cross-module integration tests: whole design-flow scenarios exercised
 * end to end at miniature scale - train/save/load/deploy round trips,
 * codesign recovering the deployment gap, segmentation and RGB training
 * improving over their initializations, tau annealing, determinism.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/layer_norm.hpp"
#include "core/skip.hpp"
#include "core/session.hpp"
#include "data/synth_city.hpp"
#include "data/synth_digits.hpp"
#include "data/synth_scenes.hpp"
#include "hardware/deploy.hpp"
#include "hardware/to_system.hpp"

namespace lightridge {
namespace {

SystemSpec
miniSpec(std::size_t n = 32)
{
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = idealDistanceHalfCone(Grid{n, 36e-6}, 532e-9);
    return spec;
}

TEST(Integration, TrainBeatsUntrainedAndChance)
{
    ClassDataset train = makeSynthDigits(300, 1);
    ClassDataset test = makeSynthDigits(150, 2);

    Rng rng(3);
    DonnModel model = ModelBuilder(miniSpec(), Laser{})
                          .diffractiveLayers(3, 1.0, &rng)
                          .detectorGrid(10, 3)
                          .build();
    Real before = evaluateAccuracy(model, test);

    TrainConfig tc;
    tc.epochs = 3;
    tc.lr = 0.03;
    ClassificationTask task(model, train);
    Session(task, tc).fit();
    Real after = evaluateAccuracy(model, test);

    EXPECT_GT(after, before);
    EXPECT_GT(after, 0.5); // well above 10-class chance
}

TEST(Integration, SaveLoadPreservesTrainedAccuracy)
{
    ClassDataset train = makeSynthDigits(200, 3);
    ClassDataset test = makeSynthDigits(100, 4);
    Rng rng(5);
    DonnModel model = ModelBuilder(miniSpec(), Laser{})
                          .diffractiveLayers(2, 1.0, &rng)
                          .detectorGrid(10, 3)
                          .build();
    TrainConfig tc;
    tc.epochs = 2;
    tc.lr = 0.03;
    ClassificationTask task(model, train);
    Session(task, tc).fit();
    Real acc = evaluateAccuracy(model, test);

    const std::string path = "/tmp/lr_integration_model.json";
    ASSERT_TRUE(model.save(path));
    DonnModel loaded = DonnModel::load(path);
    EXPECT_NEAR(evaluateAccuracy(loaded, test), acc, 1e-12);
    std::remove(path.c_str());
}

TEST(Integration, TrainingIsSeedDeterministic)
{
    ClassDataset train = makeSynthDigits(120, 7);
    auto run = [&]() -> std::vector<Real> {
        Rng rng(9);
        DonnModel model = ModelBuilder(miniSpec(), Laser{})
                              .diffractiveLayers(2, 1.0, &rng)
                              .detectorGrid(10, 3)
                              .build();
        TrainConfig tc;
        tc.epochs = 1;
        tc.lr = 0.05;
        tc.seed = 42;
        ClassificationTask task(model, train);
        Session(task, tc).fit();
        Field input = model.encode(train.images[0]);
        return model.forwardLogits(input, false);
    };
    std::vector<Real> a = run();
    std::vector<Real> b = run();
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Integration, CodesignClosesTheDeploymentGap)
{
    // The Fig. 1 mechanism at miniature scale: out-of-box deployment of a
    // raw model onto a nasty device loses clearly more accuracy than the
    // codesign model deployed onto the same device.
    ClassDataset train = makeSynthDigits(300, 11);
    ClassDataset test = makeSynthDigits(150, 12);
    SystemSpec spec = miniSpec(32);
    SlmDevice device(8, 0.9 * kTwoPi, 2.0, 0.35);

    TrainConfig tc;
    tc.epochs = 3;
    tc.lr = 0.03;

    Rng rng(13);
    DonnModel raw = ModelBuilder(spec, Laser{})
                        .diffractiveLayers(2, 1.0, &rng)
                        .detectorGrid(10, 3)
                        .build();
    ClassificationTask raw_task(raw, train);
    Session(raw_task, tc).fit();
    Real raw_sim = evaluateAccuracy(raw, test);

    Rng grng(15);
    DonnModel codesign = ModelBuilder(spec, Laser{})
                             .codesignLayers(2, device.lut(), 1.0, 1.0,
                                             &grng)
                             .detectorGrid(10, 3)
                             .build();
    for (std::size_t i = 0; i < 2; ++i)
        static_cast<CodesignLayer *>(codesign.layer(i))
            ->initFromPhase(
                static_cast<DiffractiveLayer *>(raw.layer(i))->phase());
    ClassificationTask cd_task(codesign, train);
    Session(cd_task, tc).fit();
    Real cd_sim = evaluateAccuracy(codesign, test);

    Rng hw_rng(17);
    DonnModel raw_hw = deployRaw(raw, device, FabricationVariation::none(),
                                 nullptr, CalibrationMode::OutOfBox);
    Real raw_hw_acc =
        evaluateDeployed(raw_hw, test, CmosDetector::ideal(), nullptr);
    DonnModel cd_hw =
        deployCodesign(codesign, FabricationVariation::none(), nullptr);
    Real cd_hw_acc =
        evaluateDeployed(cd_hw, test, CmosDetector::ideal(), nullptr);

    Real raw_drop = raw_sim - raw_hw_acc;
    Real cd_drop = cd_sim - cd_hw_acc;
    EXPECT_GT(raw_drop, cd_drop + 0.02)
        << "raw " << raw_sim << "->" << raw_hw_acc << ", codesign "
        << cd_sim << "->" << cd_hw_acc;
    // Codesign deployment with no fabrication error is numerically exact.
    EXPECT_NEAR(cd_drop, 0.0, 1e-9);
}

TEST(Integration, CodesignTauAnnealsAcrossFit)
{
    ClassDataset train = makeSynthDigits(60, 19);
    DeviceLut lut = DeviceLut::idealPhase(4);
    Rng rng(21);
    DonnModel model = ModelBuilder(miniSpec(16), Laser{})
                          .codesignLayers(1, lut, 1.0, 1.0, &rng)
                          .detectorGrid(10, 1)
                          .build();
    TrainConfig tc;
    tc.epochs = 3;
    tc.lr = 0.05;
    tc.tau_start = 2.0;
    tc.tau_end = 0.5;
    ClassificationTask task(model, train);
    Session(task, tc).fit();
    auto *layer = dynamic_cast<CodesignLayer *>(model.layer(0));
    ASSERT_NE(layer, nullptr);
    EXPECT_NEAR(layer->tau(), 0.5, 1e-9); // ended at tau_end
}

TEST(Integration, SegmentationTrainingReducesLoss)
{
    CityConfig ccfg;
    ccfg.image_size = 32;
    SegDataset train = makeSynthCity(60, 1, ccfg);

    SystemSpec spec = miniSpec(32);
    Laser laser;
    Rng rng(23);
    DonnModel model(spec, laser);
    auto hop = model.hopPropagator();
    std::vector<LayerPtr> stack;
    for (int l = 0; l < 3; ++l)
        stack.push_back(
            std::make_unique<DiffractiveLayer>(hop, 1.0, &rng));
    PropagatorConfig sc;
    sc.grid = spec.grid();
    sc.wavelength = laser.wavelength;
    sc.distance = 3 * spec.distance;
    model.addLayer(std::make_unique<OpticalSkipLayer>(
        std::move(stack), std::make_shared<Propagator>(sc)));
    model.addLayer(std::make_unique<LayerNormLayer>());
    model.setDetector(DetectorPlane(DetectorPlane::gridLayout(32, 2, 2)));

    TrainConfig tc;
    tc.epochs = 4;
    tc.lr = 0.08;
    tc.batch = 8;
    SegmentationTask task(model, train);
    auto history = Session(task, tc).fit();
    EXPECT_LT(history.back().train_loss, history.front().train_loss);
    // Predicted masks are valid probability-ish maps.
    RealMap mask = task.predictMask(train.images[0]);
    EXPECT_GE(mask.min(), 0.0);
}

TEST(Integration, RgbTrainingBeatsChance)
{
    SceneConfig scfg;
    scfg.image_size = 32;
    RgbDataset train = makeSynthScenes(120, 1, scfg);
    RgbDataset test = makeSynthScenes(60, 2, scfg);

    SystemSpec spec = miniSpec(32);
    Rng rng(25);
    std::vector<std::unique_ptr<DonnModel>> channels;
    for (int ch = 0; ch < 3; ++ch)
        channels.push_back(std::make_unique<DonnModel>(
            ModelBuilder(spec, Laser{})
                .diffractiveLayers(2, 1.0, &rng)
                .detectorGrid(train.num_classes, 4)
                .build()));
    MultiChannelDonn model(std::move(channels));

    TrainConfig tc;
    tc.epochs = 3;
    tc.lr = 0.03;
    RgbTask task(model, train);
    Session(task, tc).fit();
    Real top1 = evaluateRgbTopK(model, test, 1);
    EXPECT_GT(top1, 1.5 / train.num_classes); // beats chance with margin
    // top-k is monotone in k.
    EXPECT_GE(evaluateRgbTopK(model, test, 3), top1);
    EXPECT_GE(evaluateRgbTopK(model, test, 5),
              evaluateRgbTopK(model, test, 3));
}

TEST(Integration, ToSystemBundleRoundTripsLevels)
{
    // Export a codesign model and check the CSV levels match the model's
    // own argmax decisions.
    SystemSpec spec = miniSpec(16);
    SlmDevice slm = SlmDevice::holoeyeLc2012(8);
    DonnModel model = ModelBuilder(spec, Laser{})
                          .codesignLayers(1, slm.lut())
                          .detectorGrid(10, 1)
                          .build();
    Rng lrng(27);
    for (ParamView p : model.params())
        for (Real &v : *p.value)
            v = lrng.uniform(-1, 1);

    const std::string dir = "/tmp/lr_integration_fab";
    std::filesystem::remove_all(dir);
    ASSERT_TRUE(toSystem(model, slm, dir));

    auto *layer = dynamic_cast<CodesignLayer *>(model.layer(0));
    std::vector<std::size_t> expected = layer->levelIndices();

    std::ifstream csv(dir + "/layer0.csv");
    ASSERT_TRUE(csv.good());
    std::vector<std::size_t> parsed;
    std::string line;
    while (std::getline(csv, line)) {
        std::size_t pos = 0;
        while (pos < line.size()) {
            std::size_t comma = line.find(',', pos);
            if (comma == std::string::npos)
                comma = line.size();
            parsed.push_back(std::stoul(line.substr(pos, comma - pos)));
            pos = comma + 1;
        }
    }
    EXPECT_EQ(parsed, expected);
    std::filesystem::remove_all(dir);
}

TEST(Integration, NoiseDegradationIsMonotoneOnAverage)
{
    ClassDataset train = makeSynthDigits(200, 31);
    ClassDataset test = makeSynthDigits(100, 32);
    Rng rng(33);
    DonnModel model = ModelBuilder(miniSpec(), Laser{})
                          .diffractiveLayers(2, 1.0, &rng)
                          .detectorGrid(10, 3)
                          .build();
    TrainConfig tc;
    tc.epochs = 2;
    tc.lr = 0.03;
    ClassificationTask task(model, train);
    Session(task, tc).fit();

    Rng n1(1), n2(1);
    Real clean = evaluateAccuracy(model, test);
    Real heavy = evaluateAccuracy(model, test, 2.0, &n2); // 200% noise
    EXPECT_LE(heavy, clean + 0.05);
}

} // namespace
} // namespace lightridge
