/**
 * @file
 * Utility tests: RNG determinism and distributions, image I/O round trips,
 * CSV formatting, CLI parsing, thread pool, timers.
 */
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "utils/cli.hpp"
#include "utils/csv.hpp"
#include "utils/image_io.hpp"
#include "utils/rng.hpp"
#include "utils/sync.hpp"
#include "utils/thread_pool.hpp"
#include "utils/timer.hpp"

namespace lightridge {
namespace {

TEST(Rng, DeterministicUnderSameSeed)
{
    Rng a(99), b(99);
    for (int i = 0; i < 32; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(5);
    Real first = a.uniform();
    a.uniform();
    a.reseed(5);
    EXPECT_DOUBLE_EQ(a.uniform(), first);
}

TEST(Rng, UniformRespectsBounds)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        Real v = rng.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, NormalHasApproxMoments)
{
    Rng rng(2);
    const int n = 20000;
    Real sum = 0, sq = 0;
    for (int i = 0; i < n; ++i) {
        Real v = rng.normal(1.0, 2.0);
        sum += v;
        sq += v * v;
    }
    Real mean = sum / n;
    Real var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 1.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, RandintCoversRangeInclusive)
{
    Rng rng(3);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.randint(0, 4));
    EXPECT_EQ(seen.size(), 5u);
    EXPECT_TRUE(seen.count(0));
    EXPECT_TRUE(seen.count(4));
}

TEST(Rng, GumbelHasEulerMascheroniMean)
{
    Rng rng(4);
    const int n = 50000;
    Real sum = 0;
    for (int i = 0; i < n; ++i)
        sum += rng.gumbel();
    EXPECT_NEAR(sum / n, 0.5772, 0.05);
}

TEST(ImageIo, PgmRoundTrip)
{
    GrayImage img;
    img.rows = 4;
    img.cols = 6;
    img.pixels.resize(24);
    for (std::size_t i = 0; i < img.pixels.size(); ++i)
        img.pixels[i] = static_cast<uint8_t>(i * 10);
    const std::string path = "/tmp/lr_test.pgm";
    ASSERT_TRUE(writePgm(path, img));
    GrayImage back;
    ASSERT_TRUE(readPgm(path, &back));
    EXPECT_EQ(back.rows, 4u);
    EXPECT_EQ(back.cols, 6u);
    EXPECT_EQ(back.pixels, img.pixels);
    std::remove(path.c_str());
}

TEST(ImageIo, PpmRoundTrip)
{
    RgbImage img;
    img.rows = 2;
    img.cols = 3;
    img.pixels.resize(18);
    for (std::size_t i = 0; i < img.pixels.size(); ++i)
        img.pixels[i] = static_cast<uint8_t>(255 - i);
    const std::string path = "/tmp/lr_test.ppm";
    ASSERT_TRUE(writePpm(path, img));
    RgbImage back;
    ASSERT_TRUE(readPpm(path, &back));
    EXPECT_EQ(back.pixels, img.pixels);
    std::remove(path.c_str());
}

TEST(ImageIo, ReadMissingFileFails)
{
    GrayImage img;
    EXPECT_FALSE(readPgm("/nonexistent/file.pgm", &img));
}

TEST(ImageIo, ToGrayNormalizesRange)
{
    std::vector<double> values{-1.0, 0.0, 1.0, 3.0};
    GrayImage img = toGray(values, 2, 2);
    EXPECT_EQ(img.pixels[0], 0);
    EXPECT_EQ(img.pixels[3], 255);
    EXPECT_EQ(img.pixels[1], 63); // (0 - -1)/4 * 255 = 63.75 -> clamp/floor
}

TEST(ImageIo, ToGrayConstantMapsToZero)
{
    std::vector<double> values(9, 5.0);
    GrayImage img = toGray(values, 3, 3);
    for (uint8_t p : img.pixels)
        EXPECT_EQ(p, 0);
}

TEST(Csv, FormatsHeaderRowsAndQuoting)
{
    CsvWriter csv;
    csv.header({"a", "b"});
    csv.row({"1", "with,comma"});
    csv.rowNumeric({2.5, -3});
    std::string text = csv.str();
    EXPECT_NE(text.find("a,b\n"), std::string::npos);
    EXPECT_NE(text.find("1,\"with,comma\"\n"), std::string::npos);
    EXPECT_NE(text.find("2.5,-3\n"), std::string::npos);
}

TEST(Cli, ParsesFlagsAndDefaults)
{
    const char *argv[] = {"prog", "--size=64", "--name", "demo", "--fast"};
    CliArgs args(5, const_cast<char **>(argv));
    EXPECT_EQ(args.getInt("size", 0), 64);
    EXPECT_EQ(args.getString("name", ""), "demo");
    EXPECT_TRUE(args.getBool("fast", false));
    EXPECT_FALSE(args.getBool("slow", false));
    EXPECT_EQ(args.getInt("missing", 7), 7);
    EXPECT_TRUE(args.has("fast"));
    EXPECT_FALSE(args.has("missing"));
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    ThreadPool pool(4);
    std::vector<int> hits(100, 0);
    pool.parallelFor(100, [&](std::size_t i) { hits[i] += 1; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, SerialFallbackWorks)
{
    ThreadPool pool(1); // degrades to inline execution
    EXPECT_EQ(pool.workerCount(), 0u);
    std::vector<int> hits(10, 0);
    pool.parallelFor(10, [&](std::size_t i) { hits[i] += 1; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EnqueueRunsJobsWithCallerSignalling)
{
    // The pipelined trainer's primitive: fire-and-forget jobs plus a
    // caller-owned latch. Every job must run exactly once and the wait
    // must observe all of their writes.
    ThreadPool pool(4);
    const std::size_t jobs = 32;
    std::vector<int> hits(jobs, 0);
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t pending = jobs;
    for (std::size_t j = 0; j < jobs; ++j) {
        pool.enqueue([&, j] {
            hits[j] += 1;
            std::lock_guard<std::mutex> lock(mutex);
            --pending;
            cv.notify_all();
        });
    }
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return pending == 0; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EnqueueRunsInlineWithoutWorkers)
{
    ThreadPool pool(1); // no worker threads: enqueue must run inline
    int ran = 0;
    pool.enqueue([&] { ++ran; });
    EXPECT_EQ(ran, 1);
}

TEST(Timer, MeasuresNonNegativeDurations)
{
    WallTimer t;
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i)
        x = x + i;
    EXPECT_GE(t.seconds(), 0.0);
    EXPECT_GE(t.milliseconds(), t.seconds() * 1000 - 1e-9);
}

TEST(Sync, MutexLockExcludesConcurrentCriticalSections)
{
    // Counter increments under the annotated Mutex from many threads must
    // not lose updates (i.e. MutexLock really locks, not just annotates).
    Mutex mutex;
    std::size_t counter = 0;
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIters = 2000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (std::size_t i = 0; i < kIters; ++i) {
                MutexLock lock(mutex);
                ++counter;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    MutexLock lock(mutex);
    EXPECT_EQ(counter, kThreads * kIters);
}

TEST(Sync, TryLockReportsContention)
{
    Mutex mutex;
    ASSERT_TRUE(mutex.try_lock());
    std::thread other([&] { EXPECT_FALSE(mutex.try_lock()); });
    other.join();
    mutex.unlock();
    ASSERT_TRUE(mutex.try_lock());
    mutex.unlock();
}

TEST(Sync, CondVarWakesExplicitWaitLoop)
{
    // The repo convention (explicit while-loops around CondVar::wait, no
    // predicate lambdas) must round-trip a producer/consumer handoff.
    Mutex mutex;
    CondVar cv;
    bool ready = false;
    int observed = 0;
    std::thread consumer([&] {
        MutexLock lock(mutex);
        while (!ready)
            cv.wait(mutex);
        observed = 42;
    });
    {
        MutexLock lock(mutex);
        ready = true;
        cv.notify_one();
    }
    consumer.join();
    EXPECT_EQ(observed, 42);
}

} // namespace
} // namespace lightridge
