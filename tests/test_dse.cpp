/**
 * @file
 * DSE engine tests: regression tree splits, gradient boosting convergence,
 * analytical-model prediction transfer, guided search, sensitivity rows.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "dse/dse.hpp"
#include "utils/rng.hpp"

namespace lightridge {
namespace {

TEST(RegressionTree, FitsStepFunction)
{
    std::vector<std::vector<Real>> x;
    std::vector<Real> y;
    for (int i = 0; i < 40; ++i) {
        Real v = i / 40.0;
        x.push_back({v});
        y.push_back(v < 0.5 ? 1.0 : 3.0);
    }
    RegressionTree tree(2);
    tree.fit(x, y);
    EXPECT_NEAR(tree.predict({0.2}), 1.0, 1e-9);
    EXPECT_NEAR(tree.predict({0.9}), 3.0, 1e-9);
}

TEST(RegressionTree, DepthZeroPredictsMean)
{
    std::vector<std::vector<Real>> x{{0.0}, {1.0}, {2.0}, {3.0}};
    std::vector<Real> y{1.0, 2.0, 3.0, 6.0};
    RegressionTree tree(0);
    tree.fit(x, y);
    EXPECT_NEAR(tree.predict({1.5}), 3.0, 1e-12);
    EXPECT_EQ(tree.nodeCount(), 1u);
}

TEST(RegressionTree, SplitsOnInformativeFeatureOnly)
{
    // Feature 0 is noise; feature 1 determines the target.
    Rng rng(5);
    std::vector<std::vector<Real>> x;
    std::vector<Real> y;
    for (int i = 0; i < 60; ++i) {
        Real noise = rng.uniform();
        Real signal = (i % 2) ? 1.0 : 0.0;
        x.push_back({noise, signal});
        y.push_back(signal * 10.0);
    }
    RegressionTree tree(1);
    tree.fit(x, y);
    EXPECT_NEAR(tree.predict({0.3, 0.0}), 0.0, 1e-9);
    EXPECT_NEAR(tree.predict({0.3, 1.0}), 10.0, 1e-9);
}

TEST(RegressionTree, HandlesConstantTargets)
{
    std::vector<std::vector<Real>> x{{1.0}, {2.0}, {3.0}};
    std::vector<Real> y{5.0, 5.0, 5.0};
    RegressionTree tree(3);
    tree.fit(x, y);
    EXPECT_NEAR(tree.predict({2.0}), 5.0, 1e-12);
}

TEST(RegressionTree, RejectsBadInput)
{
    RegressionTree tree(2);
    EXPECT_THROW(tree.fit({}, {}), std::invalid_argument);
    EXPECT_THROW(tree.fit({{1.0}}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Gbrt, FitsSmoothNonlinearFunction)
{
    Rng rng(7);
    std::vector<std::vector<Real>> x;
    std::vector<Real> y;
    for (int i = 0; i < 200; ++i) {
        Real a = rng.uniform(0, 1), b = rng.uniform(0, 1);
        x.push_back({a, b});
        y.push_back(std::sin(3 * a) * b + 0.5 * a * a);
    }
    GbrtConfig cfg;
    cfg.n_estimators = 200;
    cfg.learning_rate = 0.2;
    GradientBoostedTrees gbrt(cfg);
    gbrt.fit(x, y);
    EXPECT_LT(gbrt.mse(x, y), 5e-4);
    // Held-out points.
    Real err = 0;
    for (int i = 0; i < 50; ++i) {
        Real a = rng.uniform(0.05, 0.95), b = rng.uniform(0.05, 0.95);
        Real truth = std::sin(3 * a) * b + 0.5 * a * a;
        Real d = gbrt.predict({a, b}) - truth;
        err += d * d;
    }
    EXPECT_LT(err / 50, 6e-3);
}

TEST(Gbrt, MoreTreesReduceTrainingError)
{
    Rng rng(9);
    std::vector<std::vector<Real>> x;
    std::vector<Real> y;
    for (int i = 0; i < 100; ++i) {
        Real a = rng.uniform(-1, 1);
        x.push_back({a});
        y.push_back(a * a * a - a);
    }
    GbrtConfig small;
    small.n_estimators = 5;
    GbrtConfig large;
    large.n_estimators = 100;
    GradientBoostedTrees g_small(small), g_large(large);
    g_small.fit(x, y);
    g_large.fit(x, y);
    EXPECT_LT(g_large.mse(x, y), g_small.mse(x, y));
}

TEST(Gbrt, StopsEarlyOnPerfectFit)
{
    std::vector<std::vector<Real>> x{{0.0}, {1.0}};
    std::vector<Real> y{1.0, 2.0};
    GbrtConfig cfg;
    cfg.n_estimators = 1000;
    GradientBoostedTrees gbrt(cfg);
    gbrt.fit(x, y);
    EXPECT_LT(gbrt.treeCount(), 1000u);
}

/** Closed-form stand-in for emulated accuracy used to test the engine. */
Real
syntheticAccuracy(const DesignPoint &p)
{
    // Peak when D matches the half-cone ideal distance for (d, lambda);
    // falls off log-normally. Mimics the Fig. 5 ridge structure.
    Real sin_t = p.wavelength / (2 * p.unit_size);
    if (sin_t >= 1)
        return 0.1;
    Real ideal = 0.15 * sin_t / std::sqrt(1 - sin_t * sin_t) * 1e4;
    Real x = std::log(p.distance / (ideal + 1e-9));
    return 0.1 + 0.85 * std::exp(-2.0 * x * x);
}

TEST(DseEngine, TransfersAcrossWavelengths)
{
    // Train the analytical model at 432 nm and 632 nm, predict at 532 nm
    // (the paper's exact protocol) against the synthetic ground truth.
    DseEngine engine(GbrtConfig{300, 0.15, 3, 1});
    SweepGrid grid;
    grid.unit_steps = 8;
    grid.dist_steps = 8;
    for (Real lambda : {432e-9, 632e-9}) {
        std::vector<DsePoint> pts;
        for (std::size_t ui = 0; ui < grid.unit_steps; ++ui)
            for (std::size_t di = 0; di < grid.dist_steps; ++di) {
                DsePoint p;
                Real mult = grid.unit_min + (grid.unit_max - grid.unit_min) *
                                                ui / (grid.unit_steps - 1);
                Real dist = grid.dist_min + (grid.dist_max - grid.dist_min) *
                                                di / (grid.dist_steps - 1);
                p.design = DesignPoint{lambda, mult * lambda, dist};
                p.accuracy = syntheticAccuracy(p.design);
                pts.push_back(p);
            }
        engine.addTrainingData(pts);
    }
    engine.fitModel();

    // Predicted surface at 532 nm correlates with ground truth.
    auto predicted = engine.predictGrid(532e-9, grid);
    Real err = 0;
    Real best_pred = -1, best_true_at_pred = 0, best_true = -1;
    for (const DsePoint &p : predicted) {
        Real truth = syntheticAccuracy(p.design);
        err += (p.accuracy - truth) * (p.accuracy - truth);
        if (p.accuracy > best_pred) {
            best_pred = p.accuracy;
            best_true_at_pred = truth;
        }
        best_true = std::max(best_true, truth);
    }
    EXPECT_LT(err / predicted.size(), 0.02);
    // The model's argmax is a near-optimal real design.
    EXPECT_GT(best_true_at_pred, best_true - 0.15);
}

TEST(DseEngine, PredictGridShape)
{
    DseEngine engine;
    std::vector<DsePoint> pts;
    for (int i = 0; i < 10; ++i) {
        DsePoint p;
        p.design = DesignPoint{500e-9, (10.0 + i * 10) * 500e-9,
                               0.05 + 0.05 * i};
        p.accuracy = 0.5;
        pts.push_back(p);
    }
    engine.addTrainingData(pts);
    engine.fitModel();
    SweepGrid grid;
    grid.unit_steps = 3;
    grid.dist_steps = 4;
    auto predicted = engine.predictGrid(520e-9, grid);
    EXPECT_EQ(predicted.size(), 12u);
    for (const DsePoint &p : predicted)
        EXPECT_DOUBLE_EQ(p.design.wavelength, 520e-9);
}

TEST(DseQuickEval, TrainedDesignBeatsChance)
{
    // Real emulation smoke test with a tiny budget. 10 classes -> chance
    // is 0.1; even one epoch at a sane design point must beat it.
    DesignPoint p;
    p.wavelength = 532e-9;
    p.unit_size = 36e-6;
    QuickEvalConfig cfg;
    cfg.system_size = 32;
    cfg.depth = 2;
    cfg.train_samples = 120;
    cfg.test_samples = 80;
    cfg.det_size = 4;
    p.distance = idealDistanceHalfCone(Grid{cfg.system_size, p.unit_size},
                                       p.wavelength);
    Real acc = evaluateDesign(p, cfg);
    EXPECT_GT(acc, 0.2);
}

TEST(Sensitivity, ProducesThreeRowsWithBaseline)
{
    DesignPoint base;
    base.wavelength = 532e-9;
    base.unit_size = 36e-6;
    QuickEvalConfig cfg;
    cfg.system_size = 32;
    cfg.depth = 2;
    cfg.train_samples = 100;
    cfg.test_samples = 60;
    cfg.det_size = 4;
    base.distance = idealDistanceHalfCone(Grid{cfg.system_size,
                                               base.unit_size},
                                          base.wavelength);
    auto rows = sensitivityAnalysis(base, cfg, {-0.10, 0.0, 0.10});
    ASSERT_EQ(rows.size(), 3u);
    for (const auto &row : rows) {
        ASSERT_EQ(row.shifts.size(), 3u);
        ASSERT_EQ(row.accuracies.size(), 3u);
        for (Real a : row.accuracies) {
            EXPECT_GE(a, 0.0);
            EXPECT_LE(a, 1.0);
        }
    }
    // Zero shift must reproduce the trained accuracy in every row.
    EXPECT_NEAR(rows[0].accuracies[1], rows[1].accuracies[1], 1e-12);
    EXPECT_NEAR(rows[1].accuracies[1], rows[2].accuracies[1], 1e-12);
}

} // namespace
} // namespace lightridge
