/**
 * @file
 * Robustness subsystem: finite-difference gradients through perturbed
 * propagation (lateral / axial / phase noise, both FFT kernel sets),
 * the bitwise no-op pin when no spec is bound, per-seed sampler
 * determinism across worker counts, zero-Field-allocation perturbed
 * train steps, strict spec parsing, and the robustness sweep engine.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

#include "api/robustness.hpp"
#include "core/optimizer.hpp"
#include "core/session.hpp"
#include "data/synth_digits.hpp"
#include "fft/kernels.hpp"
#include "optics/propagator.hpp"
#include "utils/rng.hpp"

namespace lightridge {
namespace {

SystemSpec
tinySpec(std::size_t n = 12)
{
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = 0.01;
    return spec;
}

RealMap
randomImage(std::size_t n, uint64_t seed)
{
    Rng rng(seed);
    RealMap img(n, n);
    for (std::size_t i = 0; i < img.size(); ++i)
        img[i] = rng.uniform(0, 1);
    return img;
}

bool
bitwiseEqual(const std::vector<Real> &a, const std::vector<Real> &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(Real)) == 0;
}

bool
bitwiseEqual(const Field &a, const Field &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(Complex)) == 0;
}

/**
 * Compare the analytic gradient of `loss_fn` w.r.t. selected entries of a
 * parameter vector against central finite differences.
 */
void
checkParamGradient(std::vector<Real> *value, const std::vector<Real> &grad,
                   const std::function<Real()> &loss_fn,
                   std::initializer_list<std::size_t> probe_indices,
                   Real eps = 1e-6, Real tol = 2e-4)
{
    for (std::size_t idx : probe_indices) {
        ASSERT_LT(idx, value->size());
        Real saved = (*value)[idx];
        (*value)[idx] = saved + eps;
        Real plus = loss_fn();
        (*value)[idx] = saved - eps;
        Real minus = loss_fn();
        (*value)[idx] = saved;
        Real numeric = (plus - minus) / (2 * eps);
        Real scale = std::max({std::abs(numeric), std::abs(grad[idx]),
                               Real(1e-3)});
        EXPECT_NEAR(grad[idx], numeric, tol * scale) << "param index " << idx;
    }
}

/** Build, run forward+loss+backward once, return the loss closure. */
struct ModelHarness
{
    DonnModel model;
    RealMap image;
    int label;

    Real
    loss()
    {
        Field input = model.encode(image);
        std::vector<Real> logits = model.forwardLogits(input, false);
        return softmaxMseLoss(logits, label).value;
    }

    void
    backwardOnce()
    {
        model.zeroGrad();
        Field input = model.encode(image);
        std::vector<Real> logits = model.forwardLogits(input, true);
        LossResult lr = softmaxMseLoss(logits, label);
        model.backwardFromLogits(lr.dlogits);
    }
};

/**
 * Hand-build one fixed realization over a model: the same (dx, dy, dz)
 * on every free-space hop plus an optional per-layer phase screen. The
 * finite-difference probes hold it fixed while the phases vary, exactly
 * like one vaccinated training batch.
 */
PerturbationRealization
makeRealization(DonnModel &model, Real dx, Real dy, Real dz,
                Real phase_sigma, uint64_t noise_seed)
{
    PerturbationRealization r;
    const std::vector<const Propagator *> hops = modelLayerHops(model);
    r.layers.resize(hops.size());
    Rng rng(noise_seed);
    for (std::size_t i = 0; i < hops.size(); ++i) {
        if (hops[i] == nullptr)
            continue;
        fillHopPerturbation(*hops[i], dx, dy, dz, r.layers[i].hop);
        if (phase_sigma > 0.0) {
            const std::size_t n = hops[i]->config().grid.n;
            r.layers[i].has_noise = true;
            r.layers[i].noise = Field(n, n);
            r.layers[i].noise_conj = Field(n, n);
            for (std::size_t u = 0; u < r.layers[i].noise.size(); ++u) {
                const Real eps = rng.normal(0.0, phase_sigma);
                r.layers[i].noise[u] = std::polar<Real>(1.0, eps);
                r.layers[i].noise_conj[u] = std::polar<Real>(1.0, -eps);
            }
        }
    }
    fillHopPerturbation(*model.hopPropagator(), dx, dy, dz, r.final_hop);
    return r;
}

// --------------------------------------------------------------------------
// Finite-difference gradients through perturbed propagation
// --------------------------------------------------------------------------

/**
 * Vaccinated training relies on the perturbed forward having an exact
 * adjoint (conjugate ramp / conjugate kernel / conjugate phasor); any
 * mismatch shows up here as a gradient error far above FD noise. Checked
 * under both kernel sets the FFT dispatch layer can select.
 */
class PerturbedGradient : public ::testing::TestWithParam<FftKernelMode>
{
  protected:
    ModelHarness
    makeHarness()
    {
        Rng rng(42);
        ModelHarness h{ModelBuilder(tinySpec(), Laser{})
                           .diffractiveLayers(2, 1.0, &rng)
                           .detectorGrid(4, 2)
                           .build(),
                       randomImage(12, 1), 2};
        h.model.detector().setAmpFactor(25.0);
        return h;
    }

    void
    checkAll(ModelHarness &h)
    {
        h.backwardOnce();
        auto params = h.model.params();
        ASSERT_EQ(params.size(), 2u);
        for (auto &p : params)
            checkParamGradient(p.value, *p.grad, [&] { return h.loss(); },
                               {0, 5, 17, 50, 143});
    }
};

TEST_P(PerturbedGradient, LateralShift)
{
    FftKernelModeGuard guard(GetParam());
    ModelHarness h = makeHarness();
    PerturbationRealization r =
        makeRealization(h.model, 0.4 * 36e-6, -0.25 * 36e-6, 0.0, 0.0, 0);
    h.model.setPerturbation(&r);
    checkAll(h);
    h.model.setPerturbation(nullptr);
}

TEST_P(PerturbedGradient, AxialJitter)
{
    FftKernelModeGuard guard(GetParam());
    ModelHarness h = makeHarness();
    PerturbationRealization r =
        makeRealization(h.model, 0.0, 0.0, 0.002, 0.0, 0);
    h.model.setPerturbation(&r);
    checkAll(h);
    h.model.setPerturbation(nullptr);
}

TEST_P(PerturbedGradient, PhaseNoise)
{
    FftKernelModeGuard guard(GetParam());
    ModelHarness h = makeHarness();
    PerturbationRealization r =
        makeRealization(h.model, 0.0, 0.0, 0.0, 0.3, 77);
    h.model.setPerturbation(&r);
    checkAll(h);
    h.model.setPerturbation(nullptr);
}

TEST_P(PerturbedGradient, AllAxesFresnelPadded)
{
    FftKernelModeGuard guard(GetParam());
    SystemSpec spec = tinySpec();
    spec.approx = Diffraction::Fresnel;
    spec.pad_factor = 2;
    Rng rng(9);
    ModelHarness h{ModelBuilder(spec, Laser{})
                       .diffractiveLayers(2, 1.0, &rng)
                       .detectorGrid(4, 2)
                       .build(),
                   randomImage(12, 3), 1};
    h.model.detector().setAmpFactor(40.0);
    PerturbationRealization r = makeRealization(
        h.model, -0.5 * 36e-6, 0.3 * 36e-6, -0.0015, 0.2, 13);
    h.model.setPerturbation(&r);
    h.backwardOnce();
    auto params = h.model.params();
    for (auto &p : params)
        checkParamGradient(p.value, *p.grad, [&] { return h.loss(); },
                           {11, 77});
    h.model.setPerturbation(nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    BothKernelSets, PerturbedGradient,
    ::testing::Values(FftKernelMode::Scalar, FftKernelMode::Simd),
    [](const ::testing::TestParamInfo<FftKernelMode> &info) {
        return info.param == FftKernelMode::Simd ? std::string("Simd")
                                                 : std::string("Scalar");
    });

// --------------------------------------------------------------------------
// Perturbed forward/inference consistency
// --------------------------------------------------------------------------

TEST(Perturbation, TrainingAndInferenceForwardAgree)
{
    Rng rng(4);
    DonnModel model = ModelBuilder(tinySpec(), Laser{})
                          .diffractiveLayers(2, 1.0, &rng)
                          .detectorGrid(4, 2)
                          .build();
    PerturbationRealization r =
        makeRealization(model, 0.3 * 36e-6, 0.0, 0.001, 0.25, 3);
    model.setPerturbation(&r);
    Field input = model.encode(randomImage(12, 5));
    Field train_out = model.forwardField(input, true);
    Field infer_out = model.forwardField(input, false);
    model.setPerturbation(nullptr);
    EXPECT_LT(maxAbsDiff(train_out, infer_out), 1e-12);
}

TEST(Perturbation, LateralShiftTranslatesTheField)
{
    // A one-pixel frequency-domain ramp must reproduce an integer roll of
    // the unperturbed output (cyclic in the same-size path).
    SystemSpec spec = tinySpec(16);
    Laser laser;
    DonnModel model(spec, laser);
    const Propagator &prop = *model.hopPropagator();
    Field input(16, 16, Complex{0, 0});
    input[5 * 16 + 7] = Complex{1, 0}; // point source off-centre

    PropagationWorkspace workspace;
    Field nominal;
    prop.forwardInto(input, nominal, workspace);

    HopPerturbation hop;
    fillHopPerturbation(prop, spec.pixel, 0.0, 0.0, hop); // dx = +1 px
    Field shifted;
    prop.forwardInto(input, shifted, workspace, &hop);

    Real max_err = 0;
    for (std::size_t r = 0; r < 16; ++r)
        for (std::size_t c = 0; c < 16; ++c) {
            // dx shifts along the fast (column) axis by +1 cell.
            const std::size_t src_c = (c + 16 - 1) % 16;
            max_err = std::max(max_err,
                               std::abs(shifted[r * 16 + c] -
                                        nominal[r * 16 + src_c]));
        }
    EXPECT_LT(max_err, 1e-10);
}

TEST(Perturbation, AxialJitterMatchesRebuiltPropagator)
{
    // The LRU-acquired perturbed kernel must agree with a propagator
    // built outright at distance + dz.
    SystemSpec spec = tinySpec(16);
    Laser laser;
    DonnModel model(spec, laser);
    const Propagator &prop = *model.hopPropagator();
    Field input(16, 16);
    Rng rng(6);
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};

    const Real dz = 0.0025;
    HopPerturbation hop;
    fillHopPerturbation(prop, 0.0, 0.0, dz, hop);
    PropagationWorkspace workspace;
    Field perturbed;
    prop.forwardInto(input, perturbed, workspace, &hop);

    PropagatorConfig pc = prop.config();
    pc.distance += dz;
    Propagator rebuilt(pc);
    Field reference;
    rebuilt.forwardInto(input, reference, workspace);
    EXPECT_TRUE(bitwiseEqual(perturbed, reference));
}

// --------------------------------------------------------------------------
// Bitwise no-op pin: no spec / inactive spec == today's training
// --------------------------------------------------------------------------

std::vector<std::vector<Real>>
trainTinyAndSnapshot(const PerturbationSpec *spec)
{
    SystemSpec sys = tinySpec(16);
    Rng rng(1);
    DonnModel model = ModelBuilder(sys, Laser{})
                          .diffractiveLayers(2, 1.0, &rng)
                          .detectorGrid(10, 1)
                          .build();
    ClassDataset train = makeSynthDigits(12, 1);
    ClassificationTask task(model, train);
    if (spec != nullptr)
        task.setPerturbationSpec(*spec);
    TrainConfig cfg;
    cfg.epochs = 3;
    cfg.batch = 4;
    cfg.lr = 0.05;
    cfg.seed = 5;
    cfg.workers = 1;
    Session(task, cfg).fit();
    std::vector<std::vector<Real>> out;
    for (const ParamView &p : model.params())
        out.push_back(*p.value);
    return out;
}

TEST(Perturbation, DisabledSpecIsBitwiseNoOp)
{
    auto baseline = trainTinyAndSnapshot(nullptr);

    PerturbationSpec inactive; // enabled but no axis active
    auto with_inactive = trainTinyAndSnapshot(&inactive);

    PerturbationSpec switched_off; // axes configured, master switch off
    switched_off.enabled = false;
    switched_off.lateral.kind = ErrorDist::Kind::Uniform;
    switched_off.lateral.scale = 36e-6;
    auto with_switched_off = trainTinyAndSnapshot(&switched_off);

    ASSERT_EQ(baseline.size(), with_inactive.size());
    ASSERT_EQ(baseline.size(), with_switched_off.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_TRUE(bitwiseEqual(baseline[i], with_inactive[i]))
            << "param block " << i;
        EXPECT_TRUE(bitwiseEqual(baseline[i], with_switched_off[i]))
            << "param block " << i;
    }
}

// --------------------------------------------------------------------------
// Sampler determinism
// --------------------------------------------------------------------------

PerturbationSpec
fullSpec()
{
    PerturbationSpec spec;
    spec.lateral.kind = ErrorDist::Kind::Uniform;
    spec.lateral.scale = 36e-6;
    spec.axial.kind = ErrorDist::Kind::Gaussian;
    spec.axial.scale = 0.001;
    spec.axial_levels = 5;
    spec.phase_sigma = 0.2;
    return spec;
}

TEST(Perturbation, SamplerIsAPureFunctionOfTheSeed)
{
    Rng rng(2);
    DonnModel model = ModelBuilder(tinySpec(), Laser{})
                          .diffractiveLayers(2, 1.0, &rng)
                          .detectorGrid(4, 2)
                          .build();
    PerturbationSampler sampler(fullSpec(), modelLayerHops(model),
                                model.hopPropagator().get());

    PerturbationRealization a, b, c;
    sampler.sample(1234, a);
    sampler.sample(1234, b);
    sampler.sample(99, c);

    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t i = 0; i < a.layers.size(); ++i) {
        EXPECT_EQ(a.layers[i].hop.dx, b.layers[i].hop.dx);
        EXPECT_EQ(a.layers[i].hop.dy, b.layers[i].hop.dy);
        EXPECT_EQ(a.layers[i].hop.dz, b.layers[i].hop.dz);
        ASSERT_TRUE(a.layers[i].has_noise && b.layers[i].has_noise);
        EXPECT_TRUE(bitwiseEqual(a.layers[i].noise, b.layers[i].noise));
    }
    EXPECT_EQ(a.final_hop.dx, b.final_hop.dx);
    EXPECT_EQ(a.final_hop.dz, b.final_hop.dz);

    // A different seed must actually move the draw.
    EXPECT_NE(a.layers[0].hop.dx, c.layers[0].hop.dx);

    // dz lands exactly on a quantization level.
    const std::vector<Real> levels = fullSpec().axialLevels();
    for (const LayerPerturbation &layer : a.layers) {
        // fillHopPerturbation may clamp, but tiny dz never trips it here.
        bool on_level = false;
        for (Real level : levels)
            on_level = on_level ||
                       std::abs(layer.hop.dz - level) < 1e-15;
        EXPECT_TRUE(on_level) << "dz " << layer.hop.dz;
    }
}

TEST(Perturbation, DrawSeedsAreWorkerCountIndependent)
{
    // The per-batch draw seed depends only on (train seed, epoch, batch):
    // the error sequence is identical at any worker count by construction.
    const uint64_t s1 = Session::perturbationDrawSeed(7, 0, 0);
    const uint64_t s2 = Session::perturbationDrawSeed(7, 0, 1);
    const uint64_t s3 = Session::perturbationDrawSeed(7, 1, 0);
    EXPECT_NE(s1, s2);
    EXPECT_NE(s1, s3);
    EXPECT_NE(s2, s3);
    EXPECT_EQ(s1, Session::perturbationDrawSeed(7, 0, 0));
}

/** ClassificationTask that records every per-batch draw it receives. */
class RecordingTask : public ClassificationTask
{
  public:
    using ClassificationTask::ClassificationTask;

    void
    samplePerturbation(uint64_t draw_seed) override
    {
        ClassificationTask::samplePerturbation(draw_seed);
        seeds.push_back(draw_seed);
        const PerturbationRealization *r = currentPerturbation();
        ASSERT_NE(r, nullptr);
        ASSERT_FALSE(r->layers.empty());
        drawn_dx.push_back(r->layers[0].hop.dx);
    }

    std::vector<uint64_t> seeds;
    std::vector<Real> drawn_dx;
};

std::pair<std::vector<uint64_t>, std::vector<Real>>
recordDraws(std::size_t workers, bool pipeline)
{
    SystemSpec sys = tinySpec(16);
    Rng rng(1);
    DonnModel model = ModelBuilder(sys, Laser{})
                          .diffractiveLayers(2, 1.0, &rng)
                          .detectorGrid(10, 1)
                          .build();
    ClassDataset train = makeSynthDigits(12, 1);
    RecordingTask task(model, train);
    PerturbationSpec spec;
    spec.lateral.kind = ErrorDist::Kind::Uniform;
    spec.lateral.scale = 36e-6;
    task.setPerturbationSpec(spec);
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch = 4;
    cfg.lr = 0.05;
    cfg.seed = 5;
    cfg.workers = workers;
    cfg.pipeline = pipeline;
    Session(task, cfg).fit();
    return {task.seeds, task.drawn_dx};
}

TEST(Perturbation, DrawSequenceIdenticalAcrossWorkerCounts)
{
    auto serial = recordDraws(1, false);
    auto two = recordDraws(2, false);
    auto two_pipelined = recordDraws(2, true);
    auto four = recordDraws(4, false);

    // 12 samples / batch 4 = 3 batches per epoch, 2 epochs.
    ASSERT_EQ(serial.first.size(), 6u);
    EXPECT_EQ(serial.first, two.first);
    EXPECT_EQ(serial.first, two_pipelined.first);
    EXPECT_EQ(serial.first, four.first);
    EXPECT_TRUE(bitwiseEqual(serial.second, two.second));
    EXPECT_TRUE(bitwiseEqual(serial.second, two_pipelined.second));
    EXPECT_TRUE(bitwiseEqual(serial.second, four.second));
}

TEST(Perturbation, EvaluationRunsCleanAfterVaccinatedEpoch)
{
    SystemSpec sys = tinySpec(16);
    Rng rng(1);
    DonnModel model = ModelBuilder(sys, Laser{})
                          .diffractiveLayers(2, 1.0, &rng)
                          .detectorGrid(10, 1)
                          .build();
    ClassDataset train = makeSynthDigits(12, 1);
    ClassDataset test = makeSynthDigits(8, 2);
    ClassificationTask task(model, train, &test);
    task.setPerturbationSpec(fullSpec());
    TrainConfig cfg;
    cfg.epochs = 1;
    cfg.batch = 4;
    cfg.workers = 1;
    cfg.seed = 5;
    Session(task, cfg).fit();
    // The Session detaches the realization before test evaluation and at
    // epoch end; nothing may remain attached.
    EXPECT_EQ(task.currentPerturbation(), nullptr);
}

// --------------------------------------------------------------------------
// Zero-allocation: perturbed steady-state train steps
// --------------------------------------------------------------------------

TEST(AllocStats, VaccinatedTrainStepAllocatesNothing)
{
    if (!fieldAllocStatsEnabled())
        GTEST_SKIP() << "build with -DLIGHTRIDGE_ALLOC_STATS=ON";
    const std::size_t n = 16;
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = idealDistanceHalfCone(Grid{n, 36e-6}, 532e-9);
    Rng rng(5);
    DonnModel model = ModelBuilder(spec, Laser{})
                          .diffractiveLayers(3, 1.0, &rng)
                          .detectorGrid(10, 1)
                          .build();
    ClassDataset train = makeSynthDigits(12, 1);
    ClassificationTask task(model, train);

    PerturbationSpec pspec;
    pspec.lateral.kind = ErrorDist::Kind::Uniform;
    pspec.lateral.scale = 36e-6;
    pspec.axial.kind = ErrorDist::Kind::Uniform;
    pspec.axial.scale = 0.02 * spec.distance;
    pspec.axial_levels = 5;
    pspec.phase_sigma = 0.1;
    task.setPerturbationSpec(pspec);

    TrainConfig cfg;
    cfg.workers = 1;
    task.configure(cfg);

    Adam optimizer(cfg.lr);
    optimizer.attach(task.params());

    // Warm the perturbed-kernel working set: every quantized dz level
    // must be resident in the transfer-function LRU before the counted
    // window, or a cold draw would fault in a kernel allocation.
    const Propagator &hop = *model.hopPropagator();
    const PropagatorConfig &pc = hop.config();
    const Grid padded{hop.paddedSize(), pc.grid.pitch};
    std::vector<std::shared_ptr<const Field>> pinned;
    for (Real dz : pspec.axialLevels())
        pinned.push_back(acquireTransferFunction(
            pc.approx, pc.method, padded, pc.wavelength, pc.distance + dz));

    // Warm one full batch: sizes layer caches, ramps, noise screens.
    task.zeroGrad();
    for (std::size_t b = 0; b < 3; ++b) {
        task.samplePerturbation(Session::perturbationDrawSeed(7, 0, b));
        for (std::size_t i = 0; i < train.size(); ++i)
            task.trainSample(i);
    }
    optimizer.step();
    task.zeroGrad();

    resetFieldAllocCount();
    for (std::size_t b = 0; b < 3; ++b) {
        task.samplePerturbation(Session::perturbationDrawSeed(7, 1, b));
        for (std::size_t i = 0; i < train.size(); ++i)
            task.trainSample(i);
    }
    optimizer.step();
    task.zeroGrad();
    task.clearPerturbation();
    EXPECT_EQ(fieldAllocCount(), 0u)
        << "steady-state vaccinated train step must not allocate Fields";
}

// --------------------------------------------------------------------------
// Spec parsing
// --------------------------------------------------------------------------

TEST(PerturbationSpecJson, RoundTrip)
{
    PerturbationSpec spec = fullSpec();
    PerturbationSpec back = PerturbationSpec::fromJson(spec.toJson());
    EXPECT_EQ(back.enabled, spec.enabled);
    EXPECT_EQ(back.lateral.kind, spec.lateral.kind);
    EXPECT_EQ(back.lateral.scale, spec.lateral.scale);
    EXPECT_EQ(back.axial.kind, spec.axial.kind);
    EXPECT_EQ(back.axial.scale, spec.axial.scale);
    EXPECT_EQ(back.axial_levels, spec.axial_levels);
    EXPECT_EQ(back.phase_sigma, spec.phase_sigma);
    EXPECT_TRUE(back.active());
}

TEST(PerturbationSpecJson, StrictParsing)
{
    EXPECT_THROW(PerturbationSpec::fromJson(
                     Json::parse("{\"latteral\": {}}")),
                 JsonError);
    EXPECT_THROW(PerturbationSpec::fromJson(Json::parse(
                     "{\"lateral\": {\"dist\": \"uniform\", \"scale\": "
                     "1e-6, \"sigma\": 2}}")),
                 JsonError);
    EXPECT_THROW(PerturbationSpec::fromJson(Json::parse(
                     "{\"lateral\": {\"dist\": \"triangular\", "
                     "\"scale\": 1e-6}}")),
                 JsonError);
    EXPECT_THROW(PerturbationSpec::fromJson(Json::parse(
                     "{\"lateral\": {\"dist\": \"uniform\", \"scale\": "
                     "-1e-6}}")),
                 JsonError);
    EXPECT_THROW(PerturbationSpec::fromJson(Json::parse(
                     "{\"axial\": {\"dist\": \"uniform\", \"scale\": "
                     "1e-4, \"levels\": 1}}")),
                 JsonError);
    EXPECT_THROW(PerturbationSpec::fromJson(
                     Json::parse("{\"phase_sigma\": -0.1}")),
                 JsonError);
}

TEST(PerturbationSpecJson, QuantizationLevels)
{
    PerturbationSpec spec;
    spec.axial.kind = ErrorDist::Kind::Uniform;
    spec.axial.scale = 0.004;
    spec.axial_levels = 5;
    const std::vector<Real> levels = spec.axialLevels();
    ASSERT_EQ(levels.size(), 5u);
    EXPECT_DOUBLE_EQ(levels.front(), -0.004);
    EXPECT_DOUBLE_EQ(levels.back(), 0.004);
    EXPECT_DOUBLE_EQ(spec.quantizeAxial(0.0011), 0.002);
    EXPECT_DOUBLE_EQ(spec.quantizeAxial(-0.0009), 0.0); // round to even
    EXPECT_DOUBLE_EQ(spec.quantizeAxial(0.02), 0.004);  // clamped
}

// --------------------------------------------------------------------------
// Robustness sweep engine
// --------------------------------------------------------------------------

TEST(RobustnessSweep, CleanPointMatchesDirectEvaluation)
{
    SystemSpec sys = tinySpec(16);
    Rng rng(3);
    DonnModel model = ModelBuilder(sys, Laser{})
                          .diffractiveLayers(2, 1.0, &rng)
                          .detectorGrid(10, 1)
                          .build();
    ClassDataset test = makeSynthDigits(16, 2);

    RobustnessSweepConfig cfg;
    cfg.lateral_shifts = {0.0, 36e-6};
    cfg.phase_sigmas = {0.0, 0.5};
    RobustnessReport report = robustnessSweep(model, test, cfg);

    EXPECT_EQ(report.clean_accuracy, evaluateAccuracy(model, test));
    EXPECT_EQ(report.accuracyAt("lateral", 0.0), report.clean_accuracy);
    // The model must come back clean (no realization left attached).
    EXPECT_EQ(model.perturbation(), nullptr);

    // Sweeps are deterministic: rerunning reproduces every point.
    RobustnessReport again = robustnessSweep(model, test, cfg);
    ASSERT_EQ(report.points.size(), again.points.size());
    for (std::size_t i = 0; i < report.points.size(); ++i)
        EXPECT_EQ(report.points[i].accuracy, again.points[i].accuracy);

    // Report helpers agree with the raw points.
    Real mean = 0;
    std::size_t count = 0;
    Real worst = 1;
    for (const RobustnessPoint &p : report.points)
        if (p.axis == "lateral") {
            mean += p.accuracy;
            ++count;
            worst = std::min(worst, p.accuracy);
        }
    ASSERT_EQ(count, 2u);
    EXPECT_DOUBLE_EQ(report.meanAccuracy("lateral"), mean / count);
    EXPECT_DOUBLE_EQ(report.worstAccuracy("lateral"), worst);
}

TEST(RobustnessSweep, JsonShape)
{
    RobustnessReport report;
    report.clean_accuracy = 0.9;
    report.points.push_back({"lateral", 0.0, 0.9});
    report.points.push_back({"lateral", 1e-5, 0.8});
    report.points.push_back({"detector", 0.01, 0.85});
    Json j = report.toJson();
    EXPECT_EQ(j.at("clean_accuracy").asNumber(), 0.9);
    const Json &curves = j.at("curves");
    ASSERT_TRUE(curves.has("lateral"));
    ASSERT_TRUE(curves.has("detector"));
    EXPECT_FALSE(curves.has("axial"));
    EXPECT_EQ(curves.at("lateral").asArray().size(), 2u);
    EXPECT_EQ(curves.at("lateral").asArray()[1].at("accuracy").asNumber(),
              0.8);
}

} // namespace
} // namespace lightridge
