/**
 * @file
 * Model container tests: builder DSL, serialization round trips,
 * encode path, multichannel wiring, spec JSON, optimizers.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "core/layer_norm.hpp"
#include "core/model.hpp"
#include "core/skip.hpp"
#include "core/trainer.hpp"
#include "data/synth_digits.hpp"

namespace lightridge {
namespace {

SystemSpec
smallSpec()
{
    SystemSpec spec;
    spec.size = 16;
    spec.pixel = 36e-6;
    spec.distance = 0.02;
    return spec;
}

TEST(SystemSpec, JsonRoundTrip)
{
    SystemSpec spec;
    spec.size = 200;
    spec.pixel = 3.6e-5;
    spec.distance = 0.3;
    spec.approx = Diffraction::Fresnel;
    spec.method = PropagationMethod::ImpulseResponse;
    spec.pad_factor = 2;
    SystemSpec back = SystemSpec::fromJson(spec.toJson());
    EXPECT_EQ(back.size, spec.size);
    EXPECT_DOUBLE_EQ(back.pixel, spec.pixel);
    EXPECT_DOUBLE_EQ(back.distance, spec.distance);
    EXPECT_EQ(back.approx, spec.approx);
    EXPECT_EQ(back.method, spec.method);
    EXPECT_EQ(back.pad_factor, spec.pad_factor);
}

TEST(ModelBuilder, BuildsRequestedStack)
{
    Rng rng(1);
    DonnModel model = ModelBuilder(smallSpec(), Laser{})
                          .diffractiveLayers(3, 1.5, &rng)
                          .layerNorm()
                          .detectorGrid(4, 3)
                          .build();
    EXPECT_EQ(model.depth(), 4u);
    EXPECT_EQ(model.detector().numClasses(), 4u);
    auto *d0 = dynamic_cast<DiffractiveLayer *>(model.layer(0));
    ASSERT_NE(d0, nullptr);
    EXPECT_DOUBLE_EQ(d0->gamma(), 1.5);
    EXPECT_EQ(model.layer(3)->kind(), "layernorm");
}

TEST(ModelBuilder, BuildWithoutDetectorThrows)
{
    // The detector-less failure used to surface only at the first
    // forwardLogits call; build() now fails fast instead.
    Rng rng(1);
    ModelBuilder builder(smallSpec(), Laser{});
    builder.diffractiveLayers(2, 1.0, &rng);
    EXPECT_THROW(builder.build(), std::logic_error);
}

TEST(ModelBuilder, BuildWithDetectorSucceeds)
{
    Rng rng(1);
    ModelBuilder builder(smallSpec(), Laser{});
    builder.diffractiveLayers(1, 1.0, &rng).detectorGrid(4, 3);
    EXPECT_NO_THROW(builder.build());
}

TEST(DonnModel, EncodeResizesToSystemGrid)
{
    DonnModel model = ModelBuilder(smallSpec(), Laser{})
                          .diffractiveLayers(1)
                          .detectorGrid(4, 3)
                          .build();
    RealMap img(28, 28, 0.5);
    Field f = model.encode(img);
    EXPECT_EQ(f.rows(), 16u);
    EXPECT_EQ(f.cols(), 16u);
    EXPECT_NEAR(f(8, 8).real(), 0.5, 1e-9);
}

TEST(DonnModel, SerializationPreservesPredictions)
{
    Rng rng(5);
    DonnModel model = ModelBuilder(smallSpec(), Laser{})
                          .diffractiveLayers(2, 1.2, &rng)
                          .detectorGrid(4, 3)
                          .build();
    model.detector().setAmpFactor(7.5);

    ClassDataset data = makeSynthDigits(6, 9);
    const std::string path = "/tmp/lr_model_test.json";
    ASSERT_TRUE(model.save(path));
    DonnModel loaded = DonnModel::load(path);

    EXPECT_EQ(loaded.depth(), 2u);
    EXPECT_DOUBLE_EQ(loaded.detector().ampFactor(), 7.5);
    for (std::size_t i = 0; i < data.size(); ++i) {
        Field input = model.encode(data.images[i]);
        std::vector<Real> a = model.forwardLogits(input, false);
        std::vector<Real> b = loaded.forwardLogits(input, false);
        for (std::size_t k = 0; k < a.size(); ++k)
            EXPECT_NEAR(a[k], b[k], 1e-9 * std::max<Real>(1.0, a[k]));
    }
    std::remove(path.c_str());
}

TEST(DonnModel, CodesignSerializationRoundTrip)
{
    DeviceLut lut = DeviceLut::idealPhase(5);
    DonnModel model = ModelBuilder(smallSpec(), Laser{})
                          .codesignLayers(1, lut, 0.7, 1.1)
                          .detectorGrid(4, 3)
                          .build();
    Rng lrng(3);
    for (ParamView p : model.params())
        for (Real &v : *p.value)
            v = lrng.uniform(-1, 1);

    Json j = model.toJson();
    DonnModel loaded = DonnModel::fromJson(j);
    auto *cd = dynamic_cast<CodesignLayer *>(loaded.layer(0));
    ASSERT_NE(cd, nullptr);
    EXPECT_EQ(cd->lut().size(), 5u);
    EXPECT_DOUBLE_EQ(cd->tau(), 0.7);
    EXPECT_DOUBLE_EQ(cd->gamma(), 1.1);
    // Level decisions preserved.
    auto *orig = dynamic_cast<CodesignLayer *>(model.layer(0));
    EXPECT_EQ(cd->levelIndices(), orig->levelIndices());
}

TEST(DonnModel, SkipSerializationRoundTrip)
{
    SystemSpec spec = smallSpec();
    Laser laser;
    DonnModel model(spec, laser);
    Rng rng(11);
    std::vector<LayerPtr> inner;
    inner.push_back(std::make_unique<DiffractiveLayer>(model.hopPropagator(),
                                                       1.0, &rng));
    PropagatorConfig sc;
    sc.grid = spec.grid();
    sc.wavelength = laser.wavelength;
    sc.distance = spec.distance;
    model.addLayer(std::make_unique<OpticalSkipLayer>(
        std::move(inner), std::make_shared<Propagator>(sc), 0.8, 0.6));
    model.setDetector(DetectorPlane(DetectorPlane::gridLayout(16, 4, 3)));

    Json j = model.toJson();
    DonnModel loaded = DonnModel::fromJson(j);
    ASSERT_EQ(loaded.depth(), 1u);
    EXPECT_EQ(loaded.layer(0)->kind(), "skip");

    RealMap img(16, 16, 0.3);
    Field input = model.encode(img);
    Field a = model.forwardField(input, false);
    Field b = loaded.forwardField(input, false);
    EXPECT_LT(maxAbsDiff(a, b), 1e-9);
}

TEST(DonnModel, PredictsArgmaxClass)
{
    Rng rng(13);
    DonnModel model = ModelBuilder(smallSpec(), Laser{})
                          .diffractiveLayers(1, 1.0, &rng)
                          .detectorGrid(4, 3)
                          .build();
    RealMap img(16, 16, 0.5);
    Field input = model.encode(img);
    std::vector<Real> logits = model.forwardLogits(input, false);
    int pred = model.predict(input);
    EXPECT_EQ(logits[pred],
              *std::max_element(logits.begin(), logits.end()));
}

TEST(DonnModel, MissingDetectorThrows)
{
    DonnModel model(smallSpec(), Laser{});
    Field input(16, 16, Complex{1, 0});
    EXPECT_THROW(model.forwardLogits(input, false), std::logic_error);
}

TEST(MultiChannel, RequiresMatchingDetectors)
{
    std::vector<std::unique_ptr<DonnModel>> channels;
    channels.push_back(
        std::make_unique<DonnModel>(ModelBuilder(smallSpec(), Laser{})
                                        .diffractiveLayers(1)
                                        .detectorGrid(4, 3)
                                        .build()));
    channels.push_back(
        std::make_unique<DonnModel>(ModelBuilder(smallSpec(), Laser{})
                                        .diffractiveLayers(1)
                                        .detectorGrid(9, 2)
                                        .build()));
    EXPECT_THROW(MultiChannelDonn(std::move(channels)),
                 std::invalid_argument);
}

TEST(MultiChannel, LogitsAreChannelSums)
{
    std::vector<std::unique_ptr<DonnModel>> channels;
    for (int ch = 0; ch < 3; ++ch)
        channels.push_back(
            std::make_unique<DonnModel>(ModelBuilder(smallSpec(), Laser{})
                                            .diffractiveLayers(1)
                                            .detectorGrid(4, 3)
                                            .build()));
    std::vector<DonnModel *> raw;
    for (auto &c : channels)
        raw.push_back(c.get());
    MultiChannelDonn model(std::move(channels));

    std::array<RealMap, 3> rgb{RealMap(16, 16, 0.4), RealMap(16, 16, 0.2),
                               RealMap(16, 16, 0.7)};
    std::vector<Field> inputs = model.encode(rgb);
    std::vector<Real> merged = model.forwardLogits(inputs, false);

    std::vector<Real> expected(4, 0.0);
    for (int ch = 0; ch < 3; ++ch) {
        Field u = raw[ch]->forwardField(inputs[ch], false);
        std::vector<Real> part = raw[ch]->detector().readout(u);
        for (std::size_t k = 0; k < 4; ++k)
            expected[k] += part[k];
    }
    for (std::size_t k = 0; k < 4; ++k)
        EXPECT_NEAR(merged[k], expected[k], 1e-9);
}

TEST(DifferentialDetector, ReadoutIsNormalizedDifference)
{
    // One class: positive region covers (0,0)-(0,1), negative (2,0)-(2,1).
    std::vector<DetectorRegion> pos{{0, 0, 1, 2}};
    std::vector<DetectorRegion> neg{{2, 0, 1, 2}};
    DetectorPlane det(pos, neg, 3.0);
    EXPECT_TRUE(det.differential());
    EXPECT_EQ(det.numClasses(), 1u);

    Field u(4, 4, Complex{0, 0});
    u(0, 0) = Complex{2, 0}; // P = 4 + 1 = 5
    u(0, 1) = Complex{0, 1};
    u(2, 0) = Complex{1, 0}; // N = 1
    std::vector<Real> logits = det.readout(u);
    ASSERT_EQ(logits.size(), 1u);
    const Real expected = 3.0 * (5.0 - 1.0) / (5.0 + 1.0 + 1e-12);
    EXPECT_NEAR(logits[0], expected, 1e-9);

    // Same total power in both regions -> logit 0; readoutFromIntensity
    // agrees with the field path.
    u(2, 0) = Complex{0, 2};
    u(2, 1) = Complex{1, 0};
    logits = det.readout(u);
    EXPECT_NEAR(logits[0], 0.0, 1e-9);
    EXPECT_NEAR(det.readoutFromIntensity(u.intensity())[0], logits[0],
                1e-9);
}

TEST(DifferentialDetector, BackwardMatchesFiniteDifference)
{
    auto layout = DetectorPlane::differentialGridLayout(16, 2, 3);
    DetectorPlane det(layout.first, layout.second, 1.7);

    Rng rng(9);
    Field u(16, 16);
    for (std::size_t i = 0; i < u.size(); ++i)
        u[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};

    const std::vector<Real> dlogits{0.8, -1.3};
    Field grad = det.backwardFor(u, dlogits);

    // Wirtinger convention: dL/d re(u) = Re(G), dL/d im(u) = Im(G),
    // with L = sum_k dlogits[k] * logit_k.
    auto lossAt = [&](const Field &field) {
        std::vector<Real> logits = det.readout(field);
        Real total = 0;
        for (std::size_t k = 0; k < logits.size(); ++k)
            total += dlogits[k] * logits[k];
        return total;
    };
    const Real h = 1e-6;
    // Probe pixels inside the first positive and negative regions plus
    // one outside any region.
    std::vector<std::pair<std::size_t, std::size_t>> probes{
        {layout.first[0].r0, layout.first[0].c0},
        {layout.second[0].r0, layout.second[0].c0},
        {15, 15}};
    for (auto [r, c] : probes) {
        Field up = u, dn = u;
        up(r, c) += Complex{h, 0};
        dn(r, c) -= Complex{h, 0};
        Real d_re = (lossAt(up) - lossAt(dn)) / (2 * h);
        EXPECT_NEAR(d_re, std::real(grad(r, c)), 1e-5)
            << "re at " << r << "," << c;
        up = u;
        dn = u;
        up(r, c) += Complex{0, h};
        dn(r, c) -= Complex{0, h};
        Real d_im = (lossAt(up) - lossAt(dn)) / (2 * h);
        EXPECT_NEAR(d_im, std::imag(grad(r, c)), 1e-5)
            << "im at " << r << "," << c;
    }
}

TEST(DifferentialDetector, SerializationRoundTripPreservesMode)
{
    Rng rng(3);
    auto layout = DetectorPlane::differentialGridLayout(16, 4, 3);
    DonnModel model = ModelBuilder(smallSpec(), Laser{})
                          .diffractiveLayers(2, 1.0, &rng)
                          .detectorGrid(4, 3) // placeholder, replaced
                          .build();
    model.setDetector(
        DetectorPlane(layout.first, layout.second, 2.5));

    DonnModel back = DonnModel::fromJson(model.toJson());
    EXPECT_TRUE(back.detector().differential());
    EXPECT_EQ(back.detector().negRegions().size(), 4u);
    EXPECT_DOUBLE_EQ(back.detector().ampFactor(), 2.5);

    RealMap frame = makeSynthDigits(1, 8).images[0];
    Field u = model.encode(frame);
    EXPECT_EQ(model.detector().readout(model.inferField(u)),
              back.detector().readout(back.inferField(u)));
}

TEST(DifferentialDetector, MismatchedPairCountsThrow)
{
    std::vector<DetectorRegion> pos{{0, 0, 2, 2}, {4, 0, 2, 2}};
    std::vector<DetectorRegion> neg{{8, 0, 2, 2}};
    EXPECT_THROW(DetectorPlane(pos, neg), std::invalid_argument);
}

TEST(TopK, ContainsTargetSemantics)
{
    std::vector<Real> logits{0.1, 0.9, 0.5, 0.3};
    EXPECT_TRUE(topKContains(logits, 1, 1));
    EXPECT_FALSE(topKContains(logits, 0, 1));
    EXPECT_TRUE(topKContains(logits, 2, 2));
    EXPECT_TRUE(topKContains(logits, 0, 4));
}

TEST(Optimizers, SgdMomentumMovesParameters)
{
    std::vector<Real> value{1.0, 2.0};
    std::vector<Real> grad{0.5, -0.5};
    Sgd sgd(0.1, 0.9);
    sgd.attach({ParamView{"p", &value, &grad}});
    sgd.step();
    EXPECT_NEAR(value[0], 0.95, 1e-12);
    EXPECT_NEAR(value[1], 2.05, 1e-12);
    sgd.step(); // momentum compounds
    EXPECT_NEAR(value[0], 0.95 - 0.095, 1e-12);
}

TEST(Optimizers, AdamConvergesOnQuadratic)
{
    // Minimize (x - 3)^2 by gradient descent with Adam.
    std::vector<Real> x{0.0};
    std::vector<Real> g{0.0};
    Adam adam(0.1);
    adam.attach({ParamView{"x", &x, &g}});
    for (int i = 0; i < 300; ++i) {
        g[0] = 2 * (x[0] - 3.0);
        adam.step();
    }
    EXPECT_NEAR(x[0], 3.0, 0.05);
}

TEST(Optimizers, ZeroGradClearsAllGradients)
{
    std::vector<Real> v1{1.0}, g1{5.0}, v2{2.0, 3.0}, g2{6.0, 7.0};
    Adam adam(0.1);
    adam.attach({ParamView{"a", &v1, &g1}, ParamView{"b", &v2, &g2}});
    adam.zeroGrad();
    EXPECT_DOUBLE_EQ(g1[0], 0.0);
    EXPECT_DOUBLE_EQ(g2[1], 0.0);
}

} // namespace
} // namespace lightridge
