/**
 * @file
 * Declarative experiment front end: ExperimentSpec JSON round-trips,
 * strict-parsing error paths (unknown fields, bad layer kinds, bad enum
 * strings), the registry-based layer factory, and a miniature end-to-end
 * runExperiment() pass per task kind.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "api/experiment.hpp"
#include "data/shard.hpp"
#include "data/synth_digits.hpp"

namespace lightridge {
namespace {

ExperimentSpec
tinySpec()
{
    ExperimentSpec spec;
    spec.name = "tiny";
    spec.task = "classification";
    spec.dataset = "digits";
    spec.data.train_samples = 40;
    spec.data.test_samples = 20;
    spec.data.seed = 1;
    spec.system.size = 16;
    spec.system.distance = 0; // resolve via half-cone rule
    spec.model_seed = 5;
    Json layer;
    layer["kind"] = Json("diffractive");
    layer["count"] = Json(std::size_t{2});
    spec.layers.push(layer);
    spec.detector.classes = 10;
    spec.detector.det_size = 1;
    spec.train.epochs = 1;
    spec.train.batch = 8;
    spec.train.workers = 1;
    return spec;
}

TEST(ExperimentSpec, JsonRoundTripIsLossless)
{
    ExperimentSpec spec = tinySpec();
    spec.train.loss = LossKind::CrossEntropy;
    spec.system.approx = Diffraction::Fresnel;

    Json j = spec.toJson();
    ExperimentSpec back = ExperimentSpec::fromJson(j);
    EXPECT_EQ(back.toJson().dump(), j.dump());

    EXPECT_EQ(back.name, "tiny");
    EXPECT_EQ(back.task, "classification");
    EXPECT_EQ(back.data.train_samples, 40u);
    EXPECT_EQ(back.system.size, 16u);
    EXPECT_EQ(back.system.approx, Diffraction::Fresnel);
    EXPECT_EQ(back.train.loss, LossKind::CrossEntropy);
    EXPECT_EQ(back.detector.classes, 10u);
    ASSERT_TRUE(back.layers.isArray());
    EXPECT_EQ(back.layers.asArray().size(), 1u);
}

TEST(ExperimentSpec, UnknownTopLevelFieldThrows)
{
    Json j = tinySpec().toJson();
    j["epochz"] = Json(3); // typo'd key
    EXPECT_THROW(ExperimentSpec::fromJson(j), JsonError);
}

TEST(ExperimentSpec, UnknownTrainFieldThrows)
{
    Json j = tinySpec().toJson();
    j["train"]["learning_rate"] = Json(0.1); // not a TrainConfig key
    EXPECT_THROW(ExperimentSpec::fromJson(j), JsonError);
}

TEST(ExperimentSpec, UnknownLayerKindThrows)
{
    Json j = tinySpec().toJson();
    Json bad;
    bad["kind"] = Json("warp_drive");
    j["layers"].push(bad);
    EXPECT_THROW(ExperimentSpec::fromJson(j), JsonError);
}

TEST(ExperimentSpec, UnknownLayerParamThrows)
{
    // Strictness reaches inside layer entries: a typo'd parameter fails
    // at parse time, not at build time.
    Json j = tinySpec().toJson();
    j["layers"].asArray()[0]["cout"] = Json(3); // typo of "count"
    EXPECT_THROW(ExperimentSpec::fromJson(j), JsonError);

    Json nested = tinySpec().toJson();
    Json inner_bad;
    inner_bad["kind"] = Json("diffractive");
    inner_bad["gama"] = Json(1.0); // typo inside a skip interior
    Json inner;
    inner.push(inner_bad);
    Json skip;
    skip["kind"] = Json("skip");
    skip["inner"] = std::move(inner);
    nested["layers"].push(skip);
    EXPECT_THROW(ExperimentSpec::fromJson(nested), JsonError);
}

TEST(LayerFactory, SkipShortcutCountsHopsNotEntries)
{
    // LayerNorm is the identity at inference, so a layernorm inside the
    // skip interior must not change the shortcut's optical path length:
    // inference through both specs is bitwise identical. (Counting
    // entries instead of hops would give the first spec a 4-hop
    // shortcut.)
    auto buildWith = [](bool norm_inside) {
        ExperimentSpec spec = tinySpec();
        spec.layers = Json();
        Json diff;
        diff["kind"] = Json("diffractive");
        diff["count"] = Json(std::size_t{3});
        Json inner;
        inner.push(diff);
        if (norm_inside) {
            Json norm;
            norm["kind"] = Json("layernorm");
            inner.push(norm);
        }
        Json skip;
        skip["kind"] = Json("skip");
        skip["inner"] = std::move(inner);
        spec.layers.push(skip);
        Rng rng(11);
        return buildSpecModel(spec, 10, &rng);
    };

    DonnModel with_norm = buildWith(true);
    DonnModel without_norm = buildWith(false);

    RealMap image(16, 16, 0.0);
    image(8, 8) = 1.0;
    Field a = with_norm.inferField(with_norm.encode(image));
    Field b = without_norm.inferField(without_norm.encode(image));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].real(), b[i].real());
        EXPECT_EQ(a[i].imag(), b[i].imag());
    }
}

TEST(ExperimentSpec, BadEnumStringsThrow)
{
    {
        Json j = tinySpec().toJson();
        j["task"] = Json("regression");
        EXPECT_THROW(ExperimentSpec::fromJson(j), JsonError);
    }
    {
        Json j = tinySpec().toJson();
        j["system"]["approx"] = Json("geometric");
        EXPECT_THROW(ExperimentSpec::fromJson(j), JsonError);
    }
    {
        Json j = tinySpec().toJson();
        j["train"]["loss"] = Json("hinge");
        EXPECT_THROW(ExperimentSpec::fromJson(j), JsonError);
    }
}

TEST(ExperimentSpec, ResolvedSystemAppliesHalfConeRule)
{
    ExperimentSpec spec = tinySpec();
    SystemSpec resolved = spec.resolvedSystem();
    EXPECT_GT(resolved.distance, 0.0);
}

TEST(LayerFactory, BuildsRegisteredKindsAndRejectsUnknown)
{
    LayerFactory &factory = LayerFactory::instance();
    EXPECT_TRUE(factory.has("diffractive"));
    EXPECT_TRUE(factory.has("codesign"));
    EXPECT_TRUE(factory.has("layernorm"));
    EXPECT_TRUE(factory.has("skip"));
    EXPECT_FALSE(factory.has("warp_drive"));

    ExperimentSpec spec = tinySpec();
    Rng rng(1);
    DonnModel model = buildSpecModel(spec, 10, &rng);
    EXPECT_EQ(model.depth(), 2u);
    EXPECT_EQ(model.detector().numClasses(), 10u);

    LayerFactory::Context ctx;
    ctx.model = &model;
    ctx.rng = &rng;
    Json bad;
    bad["kind"] = Json("warp_drive");
    EXPECT_THROW(factory.build(bad, ctx), JsonError);
}

TEST(LayerFactory, SkipSpecNestsInnerLayers)
{
    ExperimentSpec spec = tinySpec();
    spec.task = "segmentation";
    spec.dataset = "city";
    spec.layers = Json();
    Json inner_diff;
    inner_diff["kind"] = Json("diffractive");
    inner_diff["count"] = Json(std::size_t{3});
    Json inner;
    inner.push(inner_diff);
    Json skip;
    skip["kind"] = Json("skip");
    skip["inner"] = std::move(inner);
    spec.layers.push(skip);
    Json norm;
    norm["kind"] = Json("layernorm");
    spec.layers.push(norm);

    Rng rng(1);
    DonnModel model = buildSpecModel(spec, 2, &rng);
    EXPECT_EQ(model.depth(), 2u); // skip block + layernorm
    EXPECT_EQ(model.layer(0)->kind(), "skip");
    EXPECT_EQ(model.layer(1)->kind(), "layernorm");
}

TEST(RunExperiment, ClassificationEndToEnd)
{
    ExperimentSpec spec = tinySpec();
    ExperimentResult result = runExperiment(spec);
    ASSERT_EQ(result.history.size(), 1u);
    EXPECT_GE(result.final_metrics.primary, 0.0);
    EXPECT_LE(result.final_metrics.primary, 1.0);
    EXPECT_GE(result.final_metrics.top3, result.final_metrics.primary);
    EXPECT_EQ(result.num_classes, 10u);

    // The report must itself be valid, parseable JSON with the spec echo.
    Json report = result.report(spec);
    Json parsed = Json::parse(report.dump());
    EXPECT_EQ(parsed.at("spec").at("name").asString(), "tiny");
    EXPECT_EQ(parsed.at("epochs").asArray().size(), 1u);
    EXPECT_TRUE(parsed.at("final").has("accuracy"));
    EXPECT_NEAR(parsed.at("final").at("chance").asNumber(), 0.1, 1e-12);
}

TEST(RunExperiment, SegmentationEndToEnd)
{
    ExperimentSpec spec = tinySpec();
    spec.task = "segmentation";
    spec.dataset = "city";
    spec.data.train_samples = 10;
    spec.data.test_samples = 4;
    spec.data.image_size = 16;
    spec.layers = Json(); // task-default architecture (skip + layernorm)
    ExperimentResult result = runExperiment(spec);
    ASSERT_EQ(result.history.size(), 1u);
    EXPECT_GE(result.final_metrics.primary, 0.0);
    EXPECT_LE(result.final_metrics.primary, 1.0);
    Json report = result.report(spec);
    EXPECT_TRUE(report.at("final").has("iou"));
    EXPECT_TRUE(report.at("final").has("mse"));
}

TEST(RunExperiment, RgbEndToEnd)
{
    ExperimentSpec spec = tinySpec();
    spec.task = "rgb";
    spec.dataset = "scenes";
    spec.data.train_samples = 12;
    spec.data.test_samples = 6;
    spec.data.image_size = 16;
    spec.detector.classes = 0; // dataset default (6 scene classes)
    spec.detector.det_size = 1;
    ExperimentResult result = runExperiment(spec);
    ASSERT_EQ(result.history.size(), 1u);
    EXPECT_EQ(result.num_classes, 6u);
    EXPECT_GE(result.final_metrics.top3, result.final_metrics.primary);
}

TEST(RunExperiment, MismatchedTaskDatasetThrows)
{
    ExperimentSpec spec = tinySpec();
    spec.task = "segmentation";
    spec.dataset = "digits";
    EXPECT_THROW(runExperiment(spec), JsonError);
}

TEST(ExperimentSpec, DetectorModeRoundTripAndValidation)
{
    ExperimentSpec spec = tinySpec();
    spec.detector.mode = "differential";
    ExperimentSpec back = ExperimentSpec::fromJson(spec.toJson());
    EXPECT_EQ(back.detector.mode, "differential");

    Json j = spec.toJson();
    j["detector"]["mode"] = Json("bogus");
    EXPECT_THROW(ExperimentSpec::fromJson(j), JsonError);
}

TEST(RunExperiment, DifferentialDetectionEndToEnd)
{
    ExperimentSpec spec = tinySpec();
    spec.detector.mode = "differential";
    spec.detector.det_size = 2; // 20 paired regions on a 16-plane

    Rng rng(spec.model_seed);
    DonnModel model = buildSpecModel(spec, 10, &rng);
    EXPECT_TRUE(model.detector().differential());
    EXPECT_EQ(model.detector().numClasses(), 10u);
    EXPECT_EQ(model.detector().negRegions().size(), 10u);

    ExperimentResult result = runExperiment(spec);
    ASSERT_EQ(result.history.size(), 1u);
    EXPECT_GE(result.final_metrics.primary, 0.0);
    EXPECT_LE(result.final_metrics.primary, 1.0);
}

TEST(RunExperiment, ReportRecordsExecutionMode)
{
    ExperimentSpec spec = tinySpec();
    spec.train.workers = 1;
    spec.train.pipeline = true;
    ExperimentResult result = runExperiment(spec);
    EXPECT_EQ(result.workers_used, 1u);
    EXPECT_EQ(result.workers_requested, 1u);
    EXPECT_TRUE(result.pipeline);

    Json report = result.report(spec);
    const Json &execution = report.at("execution");
    EXPECT_EQ(execution.at("workers").asInt(), 1);
    EXPECT_EQ(execution.at("workers_requested").asInt(), 1);
    EXPECT_TRUE(execution.at("pipeline").asBool());
    EXPECT_TRUE(execution.has("hw_threads"));
}

TEST(ExperimentSpec, DatasetObjectParsesShardedSource)
{
    Json j = tinySpec().toJson();
    Json ds;
    ds["kind"] = Json("sharded");
    ds["manifest"] = Json(std::string("packed/train/manifest.json"));
    ds["test_manifest"] = Json(std::string("packed/test/manifest.json"));
    ds["prefetch"] = Json(std::size_t{2});
    j["dataset"] = ds;

    ExperimentSpec spec = ExperimentSpec::fromJson(j);
    EXPECT_EQ(spec.source.kind, "sharded");
    EXPECT_EQ(spec.source.manifest, "packed/train/manifest.json");
    EXPECT_EQ(spec.source.test_manifest, "packed/test/manifest.json");
    EXPECT_EQ(spec.source.prefetch, 2u);
    EXPECT_FALSE(spec.source.preload);

    // Sharded specs round-trip through the object form.
    ExperimentSpec back = ExperimentSpec::fromJson(spec.toJson());
    EXPECT_EQ(back.toJson().dump(), spec.toJson().dump());
}

TEST(ExperimentSpec, DatasetObjectValidationErrors)
{
    // kind "sharded" without a manifest.
    Json j = tinySpec().toJson();
    Json ds;
    ds["kind"] = Json("sharded");
    j["dataset"] = ds;
    EXPECT_THROW(ExperimentSpec::fromJson(j), JsonError);

    // "name" on a sharded block.
    ds["manifest"] = Json(std::string("m.json"));
    ds["name"] = Json(std::string("digits"));
    j["dataset"] = ds;
    EXPECT_THROW(ExperimentSpec::fromJson(j), JsonError);

    // Unknown dataset kind.
    Json bad;
    bad["kind"] = Json(std::string("tape"));
    j["dataset"] = bad;
    EXPECT_THROW(ExperimentSpec::fromJson(j), JsonError);

    // Sharded keys on a synth block.
    Json synth;
    synth["kind"] = Json(std::string("synth"));
    synth["prefetch"] = Json(std::size_t{1});
    j["dataset"] = synth;
    EXPECT_THROW(ExperimentSpec::fromJson(j), JsonError);

    // Unknown key inside the block.
    Json unknown;
    unknown["kind"] = Json(std::string("sharded"));
    unknown["manifest"] = Json(std::string("m.json"));
    unknown["surprise"] = Json(true);
    j["dataset"] = unknown;
    EXPECT_THROW(ExperimentSpec::fromJson(j), JsonError);
}

TEST(ExperimentSpec, DatasetObjectSynthNameStillWorks)
{
    Json j = tinySpec().toJson();
    Json ds;
    ds["kind"] = Json(std::string("synth"));
    ds["name"] = Json(std::string("fashion"));
    j["dataset"] = ds;
    ExperimentSpec spec = ExperimentSpec::fromJson(j);
    EXPECT_EQ(spec.source.kind, "synth");
    EXPECT_EQ(spec.dataset, "fashion");
    // Synth specs keep emitting the historical string form.
    EXPECT_EQ(spec.toJson().at("dataset").asString(), "fashion");
}

TEST(RunExperiment, ShardedDatasetEndToEndRecordsSource)
{
    char tmpl[] = "/tmp/lightridge_api_XXXXXX";
    char *dir = mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);
    const std::string base = dir;

    ClassDataset train = makeSynthDigits(24, 7);
    ClassDataset test = makeSynthDigits(8, 8);
    PackOptions options;
    options.shard_samples = 8;
    writeShards(train, base + "/train", options);
    writeShards(test, base + "/test");

    ExperimentSpec spec = tinySpec();
    spec.source.kind = "sharded";
    spec.source.manifest = base + "/train/manifest.json";
    spec.source.test_manifest = base + "/test/manifest.json";
    spec.source.prefetch = 1;
    spec.data.train_samples = 0; // unused by sharded sources

    ExperimentResult streamed = runExperiment(spec);
    EXPECT_EQ(streamed.data_source, "sharded");
    EXPECT_EQ(streamed.data_shards, 3u);
    EXPECT_EQ(streamed.data_prefetch, 1u);
    EXPECT_GT(streamed.data_bytes_read, 0u);
    EXPECT_EQ(streamed.num_classes, 10u);
    ASSERT_EQ(streamed.history.size(), 1u);

    // Preload mode keeps the shard layout: bitwise-identical training.
    spec.source.preload = true;
    ExperimentResult preloaded = runExperiment(spec);
    EXPECT_EQ(preloaded.data_source, "memory");
    EXPECT_EQ(preloaded.data_shards, 3u);
    EXPECT_EQ(preloaded.data_bytes_read, 0u);
    ASSERT_EQ(preloaded.history.size(), 1u);
    EXPECT_EQ(preloaded.history[0].train_loss,
              streamed.history[0].train_loss);
    EXPECT_EQ(preloaded.final_metrics.primary,
              streamed.final_metrics.primary);

    Json report = streamed.report(spec);
    const Json &execution = report.at("execution");
    EXPECT_EQ(execution.at("data_source").asString(), "sharded");
    EXPECT_EQ(execution.at("data_shards").asInt(), 3);
    EXPECT_EQ(execution.at("data_prefetch").asInt(), 1);
    EXPECT_TRUE(execution.has("data_bytes_read"));

    std::filesystem::remove_all(base);
}

TEST(RunExperiment, MissingManifestExitsWithDataError)
{
    ExperimentSpec spec = tinySpec();
    spec.source.kind = "sharded";
    spec.source.manifest = "/nonexistent/manifest.json";
    EXPECT_THROW(runExperiment(spec), DataError);
}

TEST(RunExperiment, SaveModelWritesServableCheckpoint)
{
    ExperimentSpec spec = tinySpec();
    const std::string path = "api_saved_model_test.json";
    ExperimentResult result = runExperiment(spec, nullptr, path);
    (void)result;
    DonnModel loaded = DonnModel::load(path);
    EXPECT_EQ(loaded.detector().numClasses(), 10u);
    Json raw = Json::load(path);
    EXPECT_EQ(raw.at("format").asString(), kCheckpointMagic);
    std::remove(path.c_str());
}

} // namespace
} // namespace lightridge
