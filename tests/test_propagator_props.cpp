/**
 * @file
 * Property-based sweeps over the propagator configuration space: for every
 * combination of (approximation, numerical method, padding, size) the
 * linear-operator invariants must hold - adjoint consistency, linearity,
 * zero-preservation - plus per-configuration physical properties (energy
 * conservation for unitary kernels, energy dissipation with padding).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "optics/propagator.hpp"
#include "utils/rng.hpp"

namespace lightridge {
namespace {

using PropParam = std::tuple<Diffraction, PropagationMethod, std::size_t,
                             std::size_t>; // approx, method, pad, n

class PropagatorProperty : public ::testing::TestWithParam<PropParam>
{
  protected:
    Propagator
    make() const
    {
        auto [approx, method, pad, n] = GetParam();
        PropagatorConfig cfg;
        cfg.grid = Grid{n, 36e-6};
        cfg.wavelength = 532e-9;
        cfg.distance = 0.05;
        cfg.approx = approx;
        cfg.method = method;
        cfg.pad_factor = pad;
        return Propagator(cfg);
    }

    Field
    randomField(std::size_t n, uint64_t seed) const
    {
        Rng rng(seed);
        Field f(n, n);
        for (std::size_t i = 0; i < f.size(); ++i)
            f[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
        return f;
    }
};

TEST_P(PropagatorProperty, AdjointIsConjugateTranspose)
{
    auto [approx, method, pad, n] = GetParam();
    Propagator prop = make();
    Field x = randomField(n, 1);
    Field y = randomField(n, 2);
    Field fx = prop.forward(x);
    Field aty = prop.adjoint(y);
    Complex lhs{0, 0}, rhs{0, 0};
    for (std::size_t i = 0; i < x.size(); ++i) {
        lhs += std::conj(fx[i]) * y[i];
        rhs += std::conj(x[i]) * aty[i];
    }
    EXPECT_NEAR(std::abs(lhs - rhs), 0.0,
                1e-7 * std::max<Real>(1.0, std::abs(lhs)));
}

TEST_P(PropagatorProperty, LinearOperator)
{
    auto [approx, method, pad, n] = GetParam();
    Propagator prop = make();
    Field a = randomField(n, 3);
    Field b = randomField(n, 4);
    const Complex ca{0.4, -0.9};

    Field combined(n, n);
    for (std::size_t i = 0; i < combined.size(); ++i)
        combined[i] = ca * a[i] + b[i];
    Field lhs = prop.forward(combined);
    Field fa = prop.forward(a);
    Field fb = prop.forward(b);
    Field rhs(n, n);
    for (std::size_t i = 0; i < rhs.size(); ++i)
        rhs[i] = ca * fa[i] + fb[i];
    EXPECT_LT(maxAbsDiff(lhs, rhs), 1e-9);
}

TEST_P(PropagatorProperty, ZeroMapsToZero)
{
    auto [approx, method, pad, n] = GetParam();
    Propagator prop = make();
    Field zero(n, n, Complex{0, 0});
    EXPECT_NEAR(prop.forward(zero).power(), 0.0, 1e-24);
    EXPECT_NEAR(prop.adjoint(zero).power(), 0.0, 1e-24);
}

TEST_P(PropagatorProperty, EnergyBehaviour)
{
    auto [approx, method, pad, n] = GetParam();
    if (approx == Diffraction::Fraunhofer)
        GTEST_SKIP() << "fraunhofer rescales the output grid";
    Propagator prop = make();
    Field x = randomField(n, 5);
    Real in_power = x.power();
    Real out_power = prop.forward(x).power();
    if (pad == 1 && method == PropagationMethod::TransferFunction) {
        // Unit-modulus kernel on a circular domain: power conserved.
        EXPECT_NEAR(out_power, in_power, 1e-6 * in_power);
    } else if (pad > 1) {
        // With a guard band, light leaves the window: power only drops.
        EXPECT_LE(out_power, in_power * (1 + 1e-9));
    }
}

TEST_P(PropagatorProperty, DoublePassViaAdjointPreservesShape)
{
    // adjoint(forward(x)) is the normal operator; it must at least return
    // something of the right shape with finite values.
    auto [approx, method, pad, n] = GetParam();
    Propagator prop = make();
    Field x = randomField(n, 6);
    Field y = prop.adjoint(prop.forward(x));
    ASSERT_EQ(y.rows(), n);
    ASSERT_EQ(y.cols(), n);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_TRUE(std::isfinite(y[i].real()) &&
                    std::isfinite(y[i].imag()));
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, PropagatorProperty,
    ::testing::Combine(
        ::testing::Values(Diffraction::RayleighSommerfeld,
                          Diffraction::Fresnel, Diffraction::Fraunhofer),
        ::testing::Values(PropagationMethod::TransferFunction,
                          PropagationMethod::ImpulseResponse),
        ::testing::Values<std::size_t>(1, 2),
        ::testing::Values<std::size_t>(16, 25)),
    [](const ::testing::TestParamInfo<PropParam> &info) {
        std::string name = diffractionName(std::get<0>(info.param));
        for (char &c : name)
            if (c == '-')
                c = '_';
        name += std::get<1>(info.param) ==
                        PropagationMethod::TransferFunction
                    ? "_tf"
                    : "_ir";
        name += "_pad" + std::to_string(std::get<2>(info.param));
        name += "_n" + std::to_string(std::get<3>(info.param));
        return name;
    });

/** Unitary round trip: forward then backward over -z recovers input. */
TEST(PropagatorRoundTrip, BackwardDistanceInvertsForward)
{
    PropagatorConfig cfg;
    cfg.grid = Grid{32, 36e-6};
    cfg.wavelength = 532e-9;
    cfg.distance = 0.04;
    Propagator prop(cfg);

    Rng rng(9);
    Field x(32, 32);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};

    // For the unit-modulus angular-spectrum kernel the adjoint IS the
    // inverse (unitary operator) when unpadded.
    Field back = prop.adjoint(prop.forward(x));
    EXPECT_LT(maxAbsDiff(back, x), 1e-8);
}

/** Kernel caching: two propagators with identical config agree exactly. */
TEST(PropagatorRoundTrip, DeterministicAcrossInstances)
{
    PropagatorConfig cfg;
    cfg.grid = Grid{20, 36e-6};
    cfg.wavelength = 532e-9;
    cfg.distance = 0.03;
    Propagator a(cfg), b(cfg);
    Rng rng(11);
    Field x(20, 20);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    EXPECT_EQ(maxAbsDiff(a.forward(x), b.forward(x)), 0.0);
}

TEST(PropagatorRoundTrip, RejectsWrongShape)
{
    PropagatorConfig cfg;
    cfg.grid = Grid{16, 36e-6};
    Propagator prop(cfg);
    Field wrong(8, 8, Complex{1, 0});
    EXPECT_THROW(prop.forward(wrong), std::invalid_argument);
}

TEST(PropagatorRoundTrip, BadConfigThrows)
{
    PropagatorConfig cfg;
    cfg.grid = Grid{0, 36e-6};
    EXPECT_THROW(Propagator{cfg}, std::invalid_argument);
    cfg.grid = Grid{16, 36e-6};
    cfg.pad_factor = 0;
    EXPECT_THROW(Propagator{cfg}, std::invalid_argument);
}

} // namespace
} // namespace lightridge
