/**
 * @file
 * Propagation workspace engine: the in-place forwardInto/adjointInto and
 * layer/model *InPlace paths must be bitwise-identical to the by-value
 * wrappers (which are themselves pinned against the pre-workspace
 * behaviour by the numerics suites), the arena must reuse buffers across
 * calls, and — in LIGHTRIDGE_ALLOC_STATS builds — steady-state in-place
 * propagation and full train steps must perform zero Field allocations.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/codesign_layer.hpp"
#include "core/diffractive_layer.hpp"
#include "core/layer_norm.hpp"
#include "core/multichannel.hpp"
#include "core/session.hpp"
#include "core/skip.hpp"
#include "data/synth_city.hpp"
#include "data/synth_digits.hpp"
#include "data/synth_scenes.hpp"
#include "optics/diffraction.hpp"
#include "optics/workspace.hpp"
#include "utils/rng.hpp"

namespace lightridge {
namespace {

Field
randomField(std::size_t n, uint64_t seed)
{
    Rng rng(seed);
    Field f(n, n);
    for (std::size_t i = 0; i < f.size(); ++i)
        f[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    return f;
}

bool
bitwiseEqual(const Field &a, const Field &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].real() != b[i].real() || a[i].imag() != b[i].imag())
            return false;
    return true;
}

bool
bitwiseEqual(const std::vector<Real> &a, const std::vector<Real> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

PropagatorConfig
makeConfig(Diffraction approx, std::size_t pad_factor, std::size_t n = 32)
{
    PropagatorConfig config;
    config.grid = Grid{n, 36e-6};
    config.wavelength = 532e-9;
    config.distance = 0.2;
    config.approx = approx;
    config.pad_factor = pad_factor;
    return config;
}

/** Every approximation/padding combination the propagator supports. */
std::vector<PropagatorConfig>
allConfigs()
{
    return {makeConfig(Diffraction::RayleighSommerfeld, 1),
            makeConfig(Diffraction::RayleighSommerfeld, 2),
            makeConfig(Diffraction::Fresnel, 2),
            makeConfig(Diffraction::Fraunhofer, 1)};
}

class WorkspaceKernelModes : public ::testing::TestWithParam<FftKernelMode>
{};

TEST_P(WorkspaceKernelModes, ForwardIntoBitwiseMatchesByValue)
{
    FftKernelModeGuard guard(GetParam());
    PropagationWorkspace workspace;
    for (const PropagatorConfig &config : allConfigs()) {
        Propagator prop(config);
        Field input = randomField(config.grid.n, 11);

        Field by_value = prop.forward(input);
        Field into;
        prop.forwardInto(input, into, workspace);
        EXPECT_TRUE(bitwiseEqual(into, by_value))
            << diffractionName(config.approx) << " pad "
            << config.pad_factor;

        Field adj_by_value = prop.adjoint(input);
        Field adj_into;
        prop.adjointInto(input, adj_into, workspace);
        EXPECT_TRUE(bitwiseEqual(adj_into, adj_by_value))
            << diffractionName(config.approx) << " pad "
            << config.pad_factor;
    }
}

TEST_P(WorkspaceKernelModes, InPlaceAliasingMatchesOutOfPlace)
{
    FftKernelModeGuard guard(GetParam());
    PropagationWorkspace workspace;
    for (const PropagatorConfig &config : allConfigs()) {
        Propagator prop(config);
        Field input = randomField(config.grid.n, 23);

        Field out;
        prop.forwardInto(input, out, workspace);
        Field aliased = input;
        prop.forwardInto(aliased, aliased, workspace);
        EXPECT_TRUE(bitwiseEqual(aliased, out))
            << diffractionName(config.approx) << " pad "
            << config.pad_factor;

        Field adj;
        prop.adjointInto(input, adj, workspace);
        Field adj_aliased = input;
        prop.adjointInto(adj_aliased, adj_aliased, workspace);
        EXPECT_TRUE(bitwiseEqual(adj_aliased, adj))
            << diffractionName(config.approx) << " pad "
            << config.pad_factor;
    }
}

INSTANTIATE_TEST_SUITE_P(
    BothKernelSets, WorkspaceKernelModes,
    ::testing::Values(FftKernelMode::Scalar, FftKernelMode::Simd),
    [](const ::testing::TestParamInfo<FftKernelMode> &info) {
        return info.param == FftKernelMode::Simd ? std::string("Simd")
                                                 : std::string("Scalar");
    });

TEST(Workspace, ArenaReusesBuffersAcrossCalls)
{
    PropagationWorkspace workspace;
    PropagatorConfig config = makeConfig(Diffraction::RayleighSommerfeld, 2);
    Propagator prop(config);
    Field input = randomField(config.grid.n, 5);
    Field out;

    prop.forwardInto(input, out, workspace);
    const std::size_t pooled = workspace.pooledCount();
    EXPECT_GE(pooled, 1u);
    EXPECT_EQ(workspace.leasedCount(), 0u);

    for (int i = 0; i < 5; ++i)
        prop.forwardInto(input, out, workspace);
    EXPECT_EQ(workspace.pooledCount(), pooled)
        << "steady-state calls must not grow the arena";
}

TEST(Workspace, NestedLeasesGetDistinctBuffers)
{
    PropagationWorkspace workspace;
    Field &a = workspace.acquire(8, 8);
    Field &b = workspace.acquire(8, 8);
    EXPECT_NE(&a, &b);
    EXPECT_EQ(workspace.leasedCount(), 2u);
    workspace.release(a);
    Field &c = workspace.acquire(8, 8);
    EXPECT_EQ(&c, &a) << "released buffer should be reused";
    workspace.release(b);
    workspace.release(c);
    EXPECT_EQ(workspace.leasedCount(), 0u);
    EXPECT_EQ(workspace.pooledCount(), 2u);
}

TEST(Workspace, IdleBudgetTrimsLeastRecentlyUsedShapes)
{
    PropagationWorkspace workspace;
    // Budget of two 8x8 buffers (8*8 complex samples each).
    const std::size_t one = 8 * 8 * sizeof(Complex);
    workspace.setIdleByteBudget(2 * one);

    // Three concurrently leased buffers, then released oldest-first:
    // the third release overflows the budget and frees the LRU one.
    Field &a = workspace.acquire(8, 8);
    Field &b = workspace.acquire(8, 8);
    Field &c = workspace.acquire(8, 8);
    workspace.release(a);
    workspace.release(b);
    EXPECT_EQ(workspace.idleBytes(), 2 * one);
    EXPECT_EQ(workspace.pooledCount(), 3u);
    workspace.release(c);
    EXPECT_EQ(workspace.pooledCount(), 2u);
    EXPECT_LE(workspace.idleBytes(), 2 * one);

    // Leased buffers are never trimmed, whatever the budget.
    Field &keep = workspace.acquire(16, 16);
    workspace.setIdleByteBudget(0);
    EXPECT_EQ(workspace.leasedCount(), 1u);
    EXPECT_EQ(workspace.idleBytes(), 0u);
    workspace.release(keep); // budget 0: freed immediately
    EXPECT_EQ(workspace.pooledCount(), 0u);
}

TEST(Workspace, ReleasingForeignBufferThrows)
{
    PropagationWorkspace workspace;
    Field foreign(4, 4);
    EXPECT_THROW(workspace.release(foreign), std::logic_error);
}

/**
 * The full training stack — diffractive + codesign + skip + layernorm —
 * must produce bitwise-identical activations, parameter gradients, and
 * input gradients through the in-place pipeline and the by-value one.
 */
TEST(WorkspaceLayers, InPlaceStackMatchesByValueBitwise)
{
    const std::size_t n = 16;
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = idealDistanceHalfCone(Grid{n, 36e-6}, 532e-9);

    auto build = [&](uint64_t seed, Rng *noise) {
        Rng rng(seed);
        DonnModel model(spec, Laser{});
        model.addLayer(std::make_unique<DiffractiveLayer>(
            model.hopPropagator(), 1.0, &rng));
        std::vector<LayerPtr> inner;
        inner.push_back(std::make_unique<DiffractiveLayer>(
            model.hopPropagator(), 1.0, &rng));
        PropagatorConfig sc = model.hopPropagator()->config();
        model.addLayer(std::make_unique<OpticalSkipLayer>(
            std::move(inner), std::make_shared<Propagator>(sc)));
        model.addLayer(std::make_unique<CodesignLayer>(
            model.hopPropagator(), DeviceLut::idealPhase(4), 1.0, 1.0,
            noise));
        model.addLayer(std::make_unique<LayerNormLayer>());
        model.setDetector(DetectorPlane(DetectorPlane::gridLayout(n, 4, 2)));
        return model;
    };

    // Identical models with identical (private) noise streams: the two
    // paths must consume Gumbel noise in the same order.
    Rng noise_a(99), noise_b(99);
    DonnModel by_value = build(7, &noise_a);
    DonnModel in_place = build(7, &noise_b);

    Field input = randomField(n, 13);

    Field out_a = by_value.forwardField(input, true);
    Field u = input;
    PropagationWorkspace workspace;
    in_place.forwardFieldInPlace(u, true, workspace);
    EXPECT_TRUE(bitwiseEqual(u, out_a));

    Field grad = randomField(n, 17);
    by_value.backwardField(grad);
    Field g = grad;
    in_place.backwardFieldInPlace(g, workspace);

    std::vector<ParamView> pa = by_value.params();
    std::vector<ParamView> pb = in_place.params();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t p = 0; p < pa.size(); ++p)
        EXPECT_TRUE(bitwiseEqual(*pa[p].grad, *pb[p].grad))
            << "param " << p << " (" << pa[p].name << ")";

    // Inference paths agree too.
    EXPECT_TRUE(bitwiseEqual(by_value.inferField(input),
                             [&] {
                                 Field v = input;
                                 in_place.inferFieldInPlace(v, workspace);
                                 return v;
                             }()));
}

TEST(WorkspaceModel, EncodeIntoMatchesEncode)
{
    SystemSpec spec;
    spec.size = 24;
    spec.pixel = 36e-6;
    spec.distance = 0.2;
    Laser laser;
    laser.profile = BeamProfile::Gaussian;
    DonnModel model(spec, laser);

    Rng rng(3);
    RealMap image(16, 16); // off-grid size: exercises the resize path
    for (std::size_t i = 0; i < image.size(); ++i)
        image[i] = rng.uniform(0, 1);

    Field by_value = model.encode(image);
    // Cached profile must match a from-scratch encode bit for bit.
    RealMap resized = resizeBilinear(image, 24, 24);
    Field reference = encodeInput(resized, laser, spec.grid());
    EXPECT_TRUE(bitwiseEqual(by_value, reference));

    Field into;
    model.encodeInto(image, into);
    EXPECT_TRUE(bitwiseEqual(into, by_value));
    model.encodeInto(image, into); // reuse, no reshape
    EXPECT_TRUE(bitwiseEqual(into, by_value));
}

// --------------------------------------------------------------------------
// Zero-allocation guarantees (LIGHTRIDGE_ALLOC_STATS builds only)
// --------------------------------------------------------------------------

TEST(AllocStats, SteadyStateForwardIntoAllocatesNothing)
{
    if (!fieldAllocStatsEnabled())
        GTEST_SKIP() << "build with -DLIGHTRIDGE_ALLOC_STATS=ON";
    PropagationWorkspace workspace;
    for (const PropagatorConfig &config : allConfigs()) {
        Propagator prop(config);
        Field input = randomField(config.grid.n, 31);
        Field out;
        // Warm: sizes the output, the arena, and the FFT scratch.
        for (int i = 0; i < 3; ++i) {
            prop.forwardInto(input, out, workspace);
            prop.adjointInto(input, out, workspace);
        }
        resetFieldAllocCount();
        for (int i = 0; i < 10; ++i) {
            prop.forwardInto(input, out, workspace);
            prop.adjointInto(input, out, workspace);
        }
        EXPECT_EQ(fieldAllocCount(), 0u)
            << diffractionName(config.approx) << " pad "
            << config.pad_factor;
    }
}

TEST(AllocStats, ClassificationTrainStepAllocatesNothing)
{
    if (!fieldAllocStatsEnabled())
        GTEST_SKIP() << "build with -DLIGHTRIDGE_ALLOC_STATS=ON";
    const std::size_t n = 16;
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = idealDistanceHalfCone(Grid{n, 36e-6}, 532e-9);
    Rng rng(5);
    DonnModel model = ModelBuilder(spec, Laser{})
                          .diffractiveLayers(3, 1.0, &rng)
                          .detectorGrid(10, 1)
                          .build();
    ClassDataset train = makeSynthDigits(12, 1);
    ClassificationTask task(model, train);
    TrainConfig cfg;
    cfg.workers = 1;
    task.configure(cfg);

    Adam optimizer(cfg.lr);
    optimizer.attach(task.params());

    // Warm one full batch: sizes layer caches, detector cache, arena.
    task.zeroGrad();
    for (std::size_t i = 0; i < train.size(); ++i)
        task.trainSample(i);
    optimizer.step();
    task.zeroGrad();

    resetFieldAllocCount();
    for (std::size_t i = 0; i < train.size(); ++i)
        task.trainSample(i);
    optimizer.step();
    task.zeroGrad();
    EXPECT_EQ(fieldAllocCount(), 0u)
        << "steady-state train step must not allocate Field buffers";
}

TEST(AllocStats, RgbTrainStepAllocatesNothing)
{
    if (!fieldAllocStatsEnabled())
        GTEST_SKIP() << "build with -DLIGHTRIDGE_ALLOC_STATS=ON";
    const std::size_t n = 16;
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = idealDistanceHalfCone(Grid{n, 36e-6}, 532e-9);
    Rng rng(5);
    std::vector<std::unique_ptr<DonnModel>> channels;
    for (int ch = 0; ch < 3; ++ch)
        channels.push_back(std::make_unique<DonnModel>(
            ModelBuilder(spec, Laser{})
                .diffractiveLayers(2, 1.0, &rng)
                .detectorGrid(6, 1)
                .build()));
    MultiChannelDonn model(std::move(channels));

    SceneConfig scfg;
    scfg.image_size = n;
    RgbDataset train = makeSynthScenes(8, 1, scfg);
    RgbTask task(model, train);
    TrainConfig cfg;
    cfg.workers = 1;
    task.configure(cfg);

    task.zeroGrad();
    for (std::size_t i = 0; i < train.size(); ++i)
        task.trainSample(i);
    task.zeroGrad();

    resetFieldAllocCount();
    for (std::size_t i = 0; i < train.size(); ++i)
        task.trainSample(i);
    EXPECT_EQ(fieldAllocCount(), 0u);
}

TEST(AllocStats, SegmentationTrainStepAllocatesNothing)
{
    if (!fieldAllocStatsEnabled())
        GTEST_SKIP() << "build with -DLIGHTRIDGE_ALLOC_STATS=ON";
    const std::size_t n = 16;
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = idealDistanceHalfCone(Grid{n, 36e-6}, 532e-9);
    Rng rng(5);
    DonnModel model(spec, Laser{});
    for (int l = 0; l < 2; ++l)
        model.addLayer(std::make_unique<DiffractiveLayer>(
            model.hopPropagator(), 1.0, &rng));
    model.addLayer(std::make_unique<LayerNormLayer>());
    model.setDetector(DetectorPlane(DetectorPlane::gridLayout(n, 2, 2)));

    CityConfig ccfg;
    ccfg.image_size = n;
    SegDataset train = makeSynthCity(8, 1, ccfg);
    SegmentationTask task(model, train);
    TrainConfig cfg;
    cfg.workers = 1;
    task.configure(cfg);

    task.zeroGrad();
    for (std::size_t i = 0; i < train.size(); ++i)
        task.trainSample(i);
    task.zeroGrad();

    resetFieldAllocCount();
    for (std::size_t i = 0; i < train.size(); ++i)
        task.trainSample(i);
    EXPECT_EQ(fieldAllocCount(), 0u);
}

} // namespace
} // namespace lightridge
