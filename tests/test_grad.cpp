/**
 * @file
 * Finite-difference verification of every hand-derived backward pass:
 * diffractive layer phases, codesign logits, layer norm, optical skip,
 * detector + loss chains, and whole-model end-to-end gradients.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/layer_norm.hpp"
#include "core/model.hpp"
#include "core/skip.hpp"
#include "core/session.hpp"
#include "fft/kernels.hpp"
#include "utils/rng.hpp"

namespace lightridge {
namespace {

SystemSpec
tinySpec(std::size_t n = 12)
{
    SystemSpec spec;
    spec.size = n;
    spec.pixel = 36e-6;
    spec.distance = 0.01;
    return spec;
}

RealMap
randomImage(std::size_t n, uint64_t seed)
{
    Rng rng(seed);
    RealMap img(n, n);
    for (std::size_t i = 0; i < img.size(); ++i)
        img[i] = rng.uniform(0, 1);
    return img;
}

/**
 * Compare the analytic gradient of `loss_fn` w.r.t. selected entries of a
 * parameter vector against central finite differences.
 */
void
checkParamGradient(std::vector<Real> *value, const std::vector<Real> &grad,
                   const std::function<Real()> &loss_fn,
                   std::initializer_list<std::size_t> probe_indices,
                   Real eps = 1e-6, Real tol = 2e-4)
{
    for (std::size_t idx : probe_indices) {
        ASSERT_LT(idx, value->size());
        Real saved = (*value)[idx];
        (*value)[idx] = saved + eps;
        Real plus = loss_fn();
        (*value)[idx] = saved - eps;
        Real minus = loss_fn();
        (*value)[idx] = saved;
        Real numeric = (plus - minus) / (2 * eps);
        Real scale = std::max({std::abs(numeric), std::abs(grad[idx]),
                               Real(1e-3)});
        EXPECT_NEAR(grad[idx], numeric, tol * scale) << "param index " << idx;
    }
}

/** Build, run forward+loss+backward once, return the loss closure. */
struct ModelHarness
{
    DonnModel model;
    RealMap image;
    int label;

    Real
    loss()
    {
        Field input = model.encode(image);
        std::vector<Real> logits = model.forwardLogits(input, false);
        return softmaxMseLoss(logits, label).value;
    }

    void
    backwardOnce()
    {
        model.zeroGrad();
        Field input = model.encode(image);
        std::vector<Real> logits = model.forwardLogits(input, true);
        LossResult lr = softmaxMseLoss(logits, label);
        model.backwardFromLogits(lr.dlogits);
    }
};

TEST(Gradients, DiffractiveLayerPhase)
{
    Rng rng(42);
    ModelHarness h{ModelBuilder(tinySpec(), Laser{})
                       .diffractiveLayers(2, 1.0, &rng)
                       .detectorGrid(4, 2)
                       .build(),
                   randomImage(12, 1), 2};
    h.model.detector().setAmpFactor(25.0); // healthy logit scale
    h.backwardOnce();

    auto params = h.model.params();
    ASSERT_EQ(params.size(), 2u);
    for (auto &p : params)
        checkParamGradient(p.value, *p.grad, [&] { return h.loss(); },
                           {0, 5, 17, 50, 143});
}

TEST(Gradients, DiffractiveLayerWithGamma)
{
    Rng rng(7);
    ModelHarness h{ModelBuilder(tinySpec(), Laser{})
                       .diffractiveLayers(1, 1.7, &rng)
                       .detectorGrid(4, 2)
                       .build(),
                   randomImage(12, 2), 0};
    h.model.detector().setAmpFactor(10.0);
    h.backwardOnce();
    auto params = h.model.params();
    checkParamGradient(params[0].value, *params[0].grad,
                       [&] { return h.loss(); }, {3, 66, 100});
}

TEST(Gradients, DiffractiveLayerFresnelAndPadded)
{
    SystemSpec spec = tinySpec();
    spec.approx = Diffraction::Fresnel;
    spec.pad_factor = 2;
    Rng rng(9);
    ModelHarness h{ModelBuilder(spec, Laser{})
                       .diffractiveLayers(2, 1.0, &rng)
                       .detectorGrid(4, 2)
                       .build(),
                   randomImage(12, 3), 1};
    h.model.detector().setAmpFactor(40.0);
    h.backwardOnce();
    auto params = h.model.params();
    for (auto &p : params)
        checkParamGradient(p.value, *p.grad, [&] { return h.loss(); },
                           {11, 77});
}

/**
 * The hand-derived adjoint chain must stay consistent with the primal
 * under every kernel set the dispatch layer can select: the vectorized
 * SoA butterflies reassociate reductions, and a mismatch between the
 * forward and adjoint numerics would show up here as a gradient error
 * far above finite-difference noise.
 */
class KernelModeGradient : public ::testing::TestWithParam<FftKernelMode>
{};

TEST_P(KernelModeGradient, DiffractivePhaseThroughDispatchedPropagator)
{
    FftKernelModeGuard guard(GetParam());
    Rng rng(42);
    ModelHarness h{ModelBuilder(tinySpec(), Laser{})
                       .diffractiveLayers(2, 1.0, &rng)
                       .detectorGrid(4, 2)
                       .build(),
                   randomImage(12, 1), 2};
    h.model.detector().setAmpFactor(25.0);
    h.backwardOnce();
    auto params = h.model.params();
    ASSERT_EQ(params.size(), 2u);
    for (auto &p : params)
        checkParamGradient(p.value, *p.grad, [&] { return h.loss(); },
                           {0, 5, 17, 50, 143});
}

TEST_P(KernelModeGradient, FresnelPaddedThroughDispatchedPropagator)
{
    FftKernelModeGuard guard(GetParam());
    SystemSpec spec = tinySpec();
    spec.approx = Diffraction::Fresnel;
    spec.pad_factor = 2;
    Rng rng(9);
    ModelHarness h{ModelBuilder(spec, Laser{})
                       .diffractiveLayers(2, 1.0, &rng)
                       .detectorGrid(4, 2)
                       .build(),
                   randomImage(12, 3), 1};
    h.model.detector().setAmpFactor(40.0);
    h.backwardOnce();
    auto params = h.model.params();
    for (auto &p : params)
        checkParamGradient(p.value, *p.grad, [&] { return h.loss(); },
                           {11, 77});
}

INSTANTIATE_TEST_SUITE_P(
    BothKernelSets, KernelModeGradient,
    ::testing::Values(FftKernelMode::Scalar, FftKernelMode::Simd),
    [](const ::testing::TestParamInfo<FftKernelMode> &info) {
        return info.param == FftKernelMode::Simd ? std::string("Simd")
                                                 : std::string("Scalar");
    });

TEST(Gradients, CodesignLayerLogits)
{
    SystemSpec spec = tinySpec();
    DeviceLut lut = DeviceLut::idealPhase(6);
    Rng init(3);
    // rng = nullptr: deterministic (no Gumbel noise) so finite differences
    // are well defined; noise is exercised in the training tests.
    ModelHarness h{ModelBuilder(spec, Laser{})
                       .codesignLayers(1, lut, 0.8, 1.0, nullptr)
                       .detectorGrid(4, 2)
                       .build(),
                   randomImage(12, 4), 3};
    h.model.detector().setAmpFactor(30.0);

    // Seed logits with structure so gradients are informative.
    auto params = h.model.params();
    Rng lrng(5);
    for (Real &v : *params[0].value)
        v = lrng.uniform(-0.5, 0.5);

    // Codesign deploy path (training=false) uses argmax, which is not
    // differentiable; evaluate the loss with the soft path instead.
    auto soft_loss = [&]() -> Real {
        Field input = h.model.encode(h.image);
        std::vector<Real> logits = h.model.forwardLogits(input, true);
        return softmaxMseLoss(logits, h.label).value;
    };
    h.model.zeroGrad();
    Field input = h.model.encode(h.image);
    std::vector<Real> logits = h.model.forwardLogits(input, true);
    LossResult lr = softmaxMseLoss(logits, h.label);
    h.model.backwardFromLogits(lr.dlogits);

    checkParamGradient(params[0].value, *params[0].grad, soft_loss,
                       {0, 7, 100, 500, 863});
}

class LayerNormModeTest : public ::testing::TestWithParam<bool>
{};

TEST_P(LayerNormModeTest, BackwardMatchesFiniteDifference)
{
    const bool subtract_mean = GetParam();
    // Isolated check against finite differences through a scalar readout.
    const std::size_t n = 6;
    Rng rng(12);
    Field x(n, n);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};

    // Scalar loss: weighted intensity of the normalized field.
    RealMap w(n, n);
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = rng.uniform(0, 1);

    LayerNormLayer layer(1e-12, subtract_mean);
    auto loss_of = [&](const Field &in) -> Real {
        LayerNormLayer probe(1e-12, subtract_mean);
        Field y = probe.forward(in, true);
        Real total = 0;
        for (std::size_t i = 0; i < y.size(); ++i)
            total += w[i] * std::norm(y[i]);
        return total;
    };

    Field y = layer.forward(x, true);
    Field gy(n, n);
    for (std::size_t i = 0; i < gy.size(); ++i)
        gy[i] = Real(2) * w[i] * y[i]; // dL/dY for L = sum w |y|^2
    Field gx = layer.backward(gy);

    // Finite differences on the real and imaginary parts of entries.
    const Real eps = 1e-6;
    for (std::size_t idx : {std::size_t(0), std::size_t(13),
                            std::size_t(27)}) {
        Field xp = x, xm = x;
        xp[idx] += Complex{eps, 0};
        xm[idx] -= Complex{eps, 0};
        Real d_re = (loss_of(xp) - loss_of(xm)) / (2 * eps);
        xp = x;
        xm = x;
        xp[idx] += Complex{0, eps};
        xm[idx] -= Complex{0, eps};
        Real d_im = (loss_of(xp) - loss_of(xm)) / (2 * eps);
        // Convention: dL = Re(conj(G) dx) => dL/dRe = Re(G), dL/dIm = Im(G).
        EXPECT_NEAR(gx[idx].real(), d_re, 1e-4);
        EXPECT_NEAR(gx[idx].imag(), d_im, 1e-4);
    }
}

INSTANTIATE_TEST_SUITE_P(BothModes, LayerNormModeTest,
                         ::testing::Values(false, true));

TEST(Gradients, LayerNormIsIdentityAtInference)
{
    LayerNormLayer layer;
    Field x(4, 4, Complex{2, -1});
    Field y = layer.forward(x, false);
    EXPECT_EQ(maxAbsDiff(x, y), 0.0);
    // backward after inference forward passes gradient through unchanged
    Field g(4, 4, Complex{0.5, 0.5});
    Field gx = layer.backward(g);
    EXPECT_EQ(maxAbsDiff(g, gx), 0.0);
}

TEST(Gradients, OpticalSkipLayer)
{
    SystemSpec spec = tinySpec();
    Laser laser;
    DonnModel model(spec, laser);
    Rng rng(21);

    std::vector<LayerPtr> inner;
    inner.push_back(std::make_unique<DiffractiveLayer>(model.hopPropagator(),
                                                       1.0, &rng));
    inner.push_back(std::make_unique<DiffractiveLayer>(model.hopPropagator(),
                                                       1.0, &rng));
    PropagatorConfig sc;
    sc.grid = spec.grid();
    sc.wavelength = laser.wavelength;
    sc.distance = 2 * spec.distance;
    model.addLayer(std::make_unique<OpticalSkipLayer>(
        std::move(inner), std::make_shared<Propagator>(sc)));
    model.setDetector(
        DetectorPlane(DetectorPlane::gridLayout(12, 4, 2), 25.0));

    ModelHarness h{std::move(model), randomImage(12, 6), 1};
    h.backwardOnce();
    auto params = h.model.params();
    ASSERT_EQ(params.size(), 2u);
    for (auto &p : params)
        checkParamGradient(p.value, *p.grad, [&] { return h.loss(); },
                           {4, 88, 120});
}

TEST(Gradients, SegmentationIntensityLoss)
{
    SystemSpec spec = tinySpec();
    Rng rng(31);
    DonnModel model = ModelBuilder(spec, Laser{})
                          .diffractiveLayers(2, 1.0, &rng)
                          .layerNorm()
                          .detectorGrid(4, 2)
                          .build();
    RealMap image = randomImage(12, 7);
    RealMap mask(12, 12);
    Rng mrng(8);
    for (std::size_t i = 0; i < mask.size(); ++i)
        mask[i] = mrng.bernoulli(0.5) ? 1.0 : 0.0;

    auto loss_fn = [&]() -> Real {
        Field u = model.forwardField(model.encode(image), true);
        return intensityMseLoss(u, mask, 3.0).value;
    };

    model.zeroGrad();
    Field u = model.forwardField(model.encode(image), true);
    FieldLossResult fl = intensityMseLoss(u, mask, 3.0);
    model.backwardField(fl.grad);

    auto params = model.params();
    for (auto &p : params)
        checkParamGradient(p.value, *p.grad, loss_fn, {2, 50, 99});
}

TEST(Gradients, MultiChannelShared)
{
    SystemSpec spec = tinySpec();
    Rng rng(17);
    std::vector<std::unique_ptr<DonnModel>> channels;
    for (int ch = 0; ch < 3; ++ch) {
        auto m = std::make_unique<DonnModel>(
            ModelBuilder(spec, Laser{})
                .diffractiveLayers(1, 1.0, &rng)
                .detectorGrid(4, 2)
                .build());
        m->detector().setAmpFactor(10.0);
        channels.push_back(std::move(m));
    }
    MultiChannelDonn model(std::move(channels));

    std::array<RealMap, 3> rgb{randomImage(12, 9), randomImage(12, 10),
                               randomImage(12, 11)};
    const int label = 2;

    auto loss_fn = [&]() -> Real {
        std::vector<Real> logits =
            model.forwardLogits(model.encode(rgb), false);
        return softmaxMseLoss(logits, label).value;
    };

    model.zeroGrad();
    std::vector<Real> logits = model.forwardLogits(model.encode(rgb), true);
    LossResult lr = softmaxMseLoss(logits, label);
    model.backwardFromLogits(lr.dlogits);

    auto params = model.params();
    ASSERT_EQ(params.size(), 3u);
    for (auto &p : params)
        checkParamGradient(p.value, *p.grad, loss_fn, {10, 70});
}

TEST(Gradients, TrainingReducesLossOnTinyProblem)
{
    // Overfit a 6-sample toy set; loss must drop substantially.
    SystemSpec spec = tinySpec(16);
    Rng rng(1);
    DonnModel model = ModelBuilder(spec, Laser{})
                          .diffractiveLayers(2, 1.0, &rng)
                          .detectorGrid(4, 3)
                          .build();

    ClassDataset data;
    data.num_classes = 4;
    for (int i = 0; i < 6; ++i) {
        data.images.push_back(randomImage(16, 100 + i));
        data.labels.push_back(i % 4);
    }

    TrainConfig cfg;
    cfg.epochs = 30;
    cfg.batch = 6;
    cfg.lr = 0.05;
    cfg.seed = 5;
    ClassificationTask task(model, data);
    auto history = Session(task, cfg).fit();
    EXPECT_LT(history.back().train_loss, history.front().train_loss * 0.7);
    EXPECT_GE(history.back().train_acc, 0.5);
}

} // namespace
} // namespace lightridge
