#include "optics/diffraction.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "fft/fft.hpp"

namespace lightridge {

const char *
diffractionName(Diffraction d)
{
    switch (d) {
      case Diffraction::RayleighSommerfeld: return "rayleigh-sommerfeld";
      case Diffraction::Fresnel: return "fresnel";
      case Diffraction::Fraunhofer: return "fraunhofer";
    }
    return "?";
}

namespace {

/** Exact angular-spectrum transfer function (Helmholtz propagator). */
Field
angularSpectrumTf(const Grid &grid, Real wavelength, Real z)
{
    Field h(grid.n, grid.n);
    const Real inv_lambda_sq = Real(1) / (wavelength * wavelength);
    const Real k = waveNumber(wavelength);
    for (std::size_t r = 0; r < grid.n; ++r) {
        Real fy = grid.freq(r);
        for (std::size_t c = 0; c < grid.n; ++c) {
            Real fx = grid.freq(c);
            Real arg = inv_lambda_sq - fx * fx - fy * fy;
            if (arg >= 0) {
                Real phase = kTwoPi * z * std::sqrt(arg);
                h(r, c) = Complex{std::cos(phase), std::sin(phase)};
            } else {
                // Evanescent components decay exponentially.
                Real decay = std::exp(-kTwoPi * z * std::sqrt(-arg));
                (void)k;
                h(r, c) = Complex{decay, 0};
            }
        }
    }
    return h;
}

/** Analytic Fresnel transfer function (Eq. 3 in frequency space). */
Field
fresnelTf(const Grid &grid, Real wavelength, Real z)
{
    Field h(grid.n, grid.n);
    const Real k = waveNumber(wavelength);
    const Real kz = k * z;
    for (std::size_t r = 0; r < grid.n; ++r) {
        Real fy = grid.freq(r);
        for (std::size_t c = 0; c < grid.n; ++c) {
            Real fx = grid.freq(c);
            Real phase = kz - kPi * wavelength * z * (fx * fx + fy * fy);
            h(r, c) = Complex{std::cos(phase), std::sin(phase)};
        }
    }
    return h;
}

/**
 * Sampled spatial impulse response, FFT'd to frequency space. This is the
 * paper's spectral algorithm (Eqs. 5-7) applied to the chosen kernel.
 */
Field
impulseResponseTf(Diffraction approx, const Grid &grid, Real wavelength,
                  Real z)
{
    const Real k = waveNumber(wavelength);
    Field h(grid.n, grid.n);
    const Real measure = grid.pitch * grid.pitch;

    // Valid-support window: beyond radius z*tan(theta_max) the sampled
    // kernel's local spatial frequency x/(lambda*r) exceeds the grid's
    // Nyquist limit 1/(2*pitch) and samples alias. theta_max is exactly
    // the maximum half-cone diffraction angle of a unit of size 2*pitch,
    // so windowing removes only physically unrepresentable components.
    const Real sin_max = std::min(Real(1), wavelength / (2 * grid.pitch));
    const Real r_window =
        sin_max >= 1 ? std::numeric_limits<Real>::infinity()
                     : z * sin_max / std::sqrt(1 - sin_max * sin_max);

    for (std::size_t r = 0; r < grid.n; ++r) {
        // Kernel is sampled in unshifted order: displacement wraps so the
        // origin sits at sample (0, 0) as the circular convolution expects.
        Real y = grid.freq(r) * grid.aperture() * grid.pitch;
        for (std::size_t c = 0; c < grid.n; ++c) {
            Real x = grid.freq(c) * grid.aperture() * grid.pitch;
            Complex value{0, 0};
            if (x * x + y * y > r_window * r_window) {
                h(r, c) = value;
                continue;
            }
            if (approx == Diffraction::RayleighSommerfeld) {
                // Paper Eq. 1 kernel: h = z * exp(jkr) / (j lambda r^2).
                Real r01 = std::sqrt(z * z + x * x + y * y);
                Complex num = std::polar(Real(1), k * r01);
                value = z * num /
                        (kJ * wavelength * r01 * r01);
            } else if (approx == Diffraction::Fresnel) {
                // Eq. 3 kernel: exp(jkz)/(j lambda z) exp(jk/(2z)(x^2+y^2)).
                Real quad = k / (2 * z) * (x * x + y * y);
                value = std::polar(Real(1), k * z + quad) /
                        (kJ * wavelength * z);
            } else {
                throw std::invalid_argument(
                    "impulse response undefined for fraunhofer");
            }
            h(r, c) = value * measure;
        }
    }
    Fft2d fft(grid.n, grid.n);
    fft.forward(&h);
    return h;
}

} // namespace

Field
transferFunction(Diffraction approx, PropagationMethod method,
                 const Grid &grid, Real wavelength, Real z)
{
    if (grid.n == 0 || grid.pitch <= 0)
        throw std::invalid_argument("transferFunction: bad grid");
    if (wavelength <= 0 || z <= 0)
        throw std::invalid_argument("transferFunction: bad lambda/z");

    switch (approx) {
      case Diffraction::RayleighSommerfeld:
        return method == PropagationMethod::TransferFunction
                   ? angularSpectrumTf(grid, wavelength, z)
                   : impulseResponseTf(approx, grid, wavelength, z);
      case Diffraction::Fresnel:
        return method == PropagationMethod::TransferFunction
                   ? fresnelTf(grid, wavelength, z)
                   : impulseResponseTf(approx, grid, wavelength, z);
      case Diffraction::Fraunhofer:
        throw std::invalid_argument(
            "fraunhofer propagation is not a transfer function; "
            "use Propagator with Diffraction::Fraunhofer");
    }
    throw std::invalid_argument("unknown approximation");
}

bool
fresnelValid(const Grid &grid, Real wavelength, Real z)
{
    Real half = grid.aperture() / 2;
    Real rmax_sq = 2 * half * half; // corner-to-corner worst case
    Real bound = kPi / (4 * wavelength) * rmax_sq * rmax_sq;
    return z * z * z > bound; // ">>": we accept > as the usable boundary
}

bool
fraunhoferValid(const Grid &grid, Real wavelength, Real z)
{
    Real half = grid.aperture() / 2;
    Real rmax_sq = 2 * half * half;
    Real bound = waveNumber(wavelength) * rmax_sq / 2;
    return z > bound;
}

Real
idealDistanceHalfCone(const Grid &grid, Real wavelength)
{
    Real sin_theta = wavelength / (2 * grid.pitch);
    if (sin_theta >= 1)
        return 0; // sub-wavelength units diffract into the full hemisphere
    Real tan_theta = sin_theta / std::sqrt(1 - sin_theta * sin_theta);
    // Cover half the aperture of the next layer from a center unit.
    return (grid.aperture() / 2) / tan_theta;
}

} // namespace lightridge
