/**
 * @file
 * Cached free-space propagator: the "diffraction operator" of a DONN.
 *
 * One Propagator models one hop of length z between planes (source->layer,
 * layer->layer, or layer->detector). Construction precomputes and caches
 * the frequency-domain kernel and FFT plans; forward() then runs the fused
 * FFT2 -> Hadamard -> iFFT2 pipeline of the paper's Eqs. 5-7 with no
 * intermediate allocations. adjoint() applies the conjugate-transposed
 * operator, which is exactly what error backpropagation through a linear
 * optical element requires (Section 2.1: "fully differentiable from the
 * detector to the laser source").
 */
#pragma once

#include <cstddef>
#include <memory>

#include "fft/fft.hpp"
#include "optics/diffraction.hpp"
#include "optics/grid.hpp"
#include "optics/workspace.hpp"
#include "tensor/field.hpp"

namespace lightridge {

struct HopPerturbation;

/** Full specification of one free-space hop. */
struct PropagatorConfig
{
    Grid grid;                 ///< plane sampling (n, pitch)
    Real wavelength = 532e-9;  ///< laser wavelength [m]
    Real distance = 0.3;       ///< hop length z [m]
    Diffraction approx = Diffraction::RayleighSommerfeld;
    PropagationMethod method = PropagationMethod::TransferFunction;
    /**
     * Zero-padding factor: 1 reproduces the paper's same-size circular
     * spectral algorithm; 2 guards against wraparound (linear convolution).
     */
    std::size_t pad_factor = 1;
};

/** Precomputed, immutable, thread-safe free-space propagation operator. */
class Propagator
{
  public:
    explicit Propagator(const PropagatorConfig &config);

    const PropagatorConfig &config() const { return config_; }

    /**
     * Propagate a field over the hop. Input shape must match the grid.
     *
     * Thin wrapper over forwardInto() using the calling thread's
     * workspace: it still allocates the returned Field, so hot loops
     * (per-sample training, batched inference) should prefer
     * forwardInto() with a reused output buffer. Bitwise-identical to
     * the in-place path.
     */
    Field forward(const Field &in) const;

    /**
     * Apply the conjugate transpose of forward() to a Wirtinger gradient
     * field. For unit-modulus kernels this equals propagation backward
     * over -z. Same deprecation status for hot loops as forward():
     * prefer adjointInto().
     */
    Field adjoint(const Field &grad_out) const;

    /**
     * Propagate `in` over the hop into `out`, running the full
     * pad -> FFT2 -> Hadamard -> iFFT2 -> crop pipeline with zero heap
     * allocations in steady state: padded scratch is leased from the
     * workspace and `out` is resized at most once. `out` may alias `in`
     * (the layer pipeline propagates fields fully in place).
     *
     * `hop` optionally applies one sampled misalignment realization
     * (see optics/perturbation.hpp): a non-null perturbed kernel
     * replaces the nominal transfer function (axial jitter at z + dz)
     * and the separable shift ramps multiply the spectrum after the
     * kernel Hadamard (lateral shift). Passing nullptr is
     * bitwise-identical to the unperturbed pipeline.
     */
    void forwardInto(const Field &in, Field &out,
                     PropagationWorkspace &workspace,
                     const HopPerturbation *hop = nullptr) const;

    /**
     * Adjoint counterpart of forwardInto(); `out` may alias the input.
     * With a perturbation, applies the exact adjoint of the perturbed
     * operator (conjugate kernel and conjugate shift ramps).
     */
    void adjointInto(const Field &grad_out, Field &out,
                     PropagationWorkspace &workspace,
                     const HopPerturbation *hop = nullptr) const;

    /** Sample pitch of the output plane (differs for Fraunhofer). */
    Real outputPitch() const;

    /** The cached frequency-domain kernel (empty for Fraunhofer). */
    const Field &kernel() const;

    /** Working (padded) transform size; shift ramps and perturbed
     *  kernels must be built at this size. */
    std::size_t paddedSize() const { return padded_n_; }

  private:
    void convolveInto(const Field &in, Field &out, bool conjugate_kernel,
                      PropagationWorkspace &workspace,
                      const HopPerturbation *hop) const;
    void applyShiftRamp(Complex *spectrum, const HopPerturbation &hop,
                        bool conjugate) const;
    void fraunhoferForwardInto(const Field &in, Field &out) const;
    void fraunhoferAdjointInto(const Field &grad_out, Field &out) const;

    PropagatorConfig config_;
    std::size_t padded_n_ = 0;  ///< working size (>= grid.n)
    std::shared_ptr<const Field> kernel_; ///< shared cached transfer function
    Field quad_phase_;          ///< Fraunhofer output factor K(a, b)
    std::shared_ptr<Fft2d> fft_;
};

/**
 * Process-wide transfer-function cache.
 *
 * Computing the angular-spectrum / Fresnel kernel is O(n^2) transcendental
 * work (plus a full FFT2 for impulse-response kernels); every Propagator
 * constructed for the same (approx, method, grid, wavelength, distance)
 * tuple shares one immutable kernel Field through this cache. Lookup is
 * keyed on the exact bit patterns of the physical parameters, so a hit is
 * bitwise-identical to recomputing the kernel from scratch.
 */
std::shared_ptr<const Field>
acquireTransferFunction(Diffraction approx, PropagationMethod method,
                        const Grid &grid, Real wavelength, Real z);

/** Hit/miss counters of the transfer-function cache (for tests/bench). */
struct TransferFunctionCacheStats
{
    std::size_t entries = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
};
TransferFunctionCacheStats transferFunctionCacheStats();

/** Drop all cached kernels and reset the hit/miss counters. */
void clearTransferFunctionCache();

/** Current transfer-function cache capacity (entries). */
std::size_t transferFunctionCacheCapacity();

/**
 * Set the cache capacity; returns the previous value. Excess entries are
 * evicted immediately in LRU order. Used by tests (to make eviction
 * observable at small sizes) and long DSE sweeps that want a larger
 * resident set.
 */
std::size_t setTransferFunctionCacheCapacity(std::size_t capacity);

} // namespace lightridge
