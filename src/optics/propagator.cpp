#include "optics/propagator.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <list>
#include <stdexcept>
#include <unordered_map>

#include "fft/kernels.hpp"
#include "optics/perturbation.hpp"
#include "utils/sync.hpp"

namespace lightridge {

namespace {

/** Exact-bit-pattern key for one (approx, method, grid, lambda, z) tuple. */
struct KernelKey
{
    int approx;
    int method;
    std::size_t n;
    uint64_t pitch_bits;
    uint64_t wavelength_bits;
    uint64_t z_bits;

    bool operator==(const KernelKey &) const = default;
};

uint64_t
realBits(Real v)
{
    uint64_t bits = 0;
    static_assert(sizeof(Real) == sizeof(uint64_t));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

struct KernelKeyHash
{
    std::size_t
    operator()(const KernelKey &k) const
    {
        // FNV-1a over the key fields.
        uint64_t h = 1469598103934665603ull;
        auto mix = [&h](uint64_t v) {
            h = (h ^ v) * 1099511628211ull;
        };
        mix(static_cast<uint64_t>(k.approx));
        mix(static_cast<uint64_t>(k.method));
        mix(static_cast<uint64_t>(k.n));
        mix(k.pitch_bits);
        mix(k.wavelength_bits);
        mix(k.z_bits);
        return static_cast<std::size_t>(h);
    }
};

/**
 * Bounded LRU: a long DSE sweep visits many (grid, wavelength, distance)
 * tuples it will never revisit; without a cap every padded n^2 kernel
 * would stay resident for the life of the process. Evicted kernels stay
 * alive as long as some Propagator still holds the shared_ptr.
 *
 * Recency is an intrusive list in MRU->LRU order; each map entry holds its
 * list position, so a hit is an O(1) splice and eviction pops the tail —
 * the old linear scan over every entry on insert is gone.
 */
constexpr std::size_t kMaxCachedKernels = 64;

struct KernelEntry
{
    std::shared_ptr<const Field> kernel;
    std::list<KernelKey>::iterator lru_pos;
};

struct KernelCache
{
    Mutex mutex;
    std::unordered_map<KernelKey, KernelEntry, KernelKeyHash> kernels
        LIGHTRIDGE_GUARDED_BY(mutex);
    std::list<KernelKey> lru
        LIGHTRIDGE_GUARDED_BY(mutex); // front = most recently used
    std::size_t capacity LIGHTRIDGE_GUARDED_BY(mutex) = kMaxCachedKernels;
    std::size_t hits LIGHTRIDGE_GUARDED_BY(mutex) = 0;
    std::size_t misses LIGHTRIDGE_GUARDED_BY(mutex) = 0;

    /** Drop least-recently-used entries down to the capacity. */
    void
    evictExcess() LIGHTRIDGE_REQUIRES(mutex)
    {
        while (kernels.size() > capacity && !lru.empty()) {
            kernels.erase(lru.back());
            lru.pop_back();
        }
    }
};

KernelCache &
kernelCache()
{
    static KernelCache cache;
    return cache;
}

} // namespace

std::shared_ptr<const Field>
acquireTransferFunction(Diffraction approx, PropagationMethod method,
                        const Grid &grid, Real wavelength, Real z)
{
    KernelKey key{static_cast<int>(approx), static_cast<int>(method), grid.n,
                  realBits(grid.pitch), realBits(wavelength), realBits(z)};
    KernelCache &cache = kernelCache();
    {
        MutexLock lock(cache.mutex);
        auto it = cache.kernels.find(key);
        if (it != cache.kernels.end()) {
            ++cache.hits;
            cache.lru.splice(cache.lru.begin(), cache.lru,
                             it->second.lru_pos);
            return it->second.kernel;
        }
        ++cache.misses;
    }
    // Compute outside the lock (O(n^2) transcendentals, possibly an FFT2);
    // concurrent first-touch of the same key wastes one computation but
    // stays correct because the result is deterministic.
    auto kernel = std::make_shared<const Field>(
        transferFunction(approx, method, grid, wavelength, z));
    MutexLock lock(cache.mutex);
    auto it = cache.kernels.find(key);
    if (it != cache.kernels.end()) {
        // Another thread won the race; adopt its entry.
        cache.lru.splice(cache.lru.begin(), cache.lru, it->second.lru_pos);
        return it->second.kernel;
    }
    cache.lru.push_front(key);
    it = cache.kernels
             .emplace(key, KernelEntry{std::move(kernel), cache.lru.begin()})
             .first;
    std::shared_ptr<const Field> result = it->second.kernel;
    cache.evictExcess();
    return result;
}

TransferFunctionCacheStats
transferFunctionCacheStats()
{
    KernelCache &cache = kernelCache();
    MutexLock lock(cache.mutex);
    return {cache.kernels.size(), cache.hits, cache.misses};
}

void
clearTransferFunctionCache()
{
    KernelCache &cache = kernelCache();
    MutexLock lock(cache.mutex);
    cache.kernels.clear();
    cache.lru.clear();
    cache.hits = 0;
    cache.misses = 0;
}

std::size_t
transferFunctionCacheCapacity()
{
    KernelCache &cache = kernelCache();
    MutexLock lock(cache.mutex);
    return cache.capacity;
}

std::size_t
setTransferFunctionCacheCapacity(std::size_t capacity)
{
    if (capacity == 0)
        throw std::invalid_argument(
            "setTransferFunctionCacheCapacity: capacity must be >= 1");
    KernelCache &cache = kernelCache();
    MutexLock lock(cache.mutex);
    std::size_t previous = cache.capacity;
    cache.capacity = capacity;
    cache.evictExcess();
    return previous;
}

Propagator::Propagator(const PropagatorConfig &config) : config_(config)
{
    const std::size_t n = config_.grid.n;
    if (n == 0)
        throw std::invalid_argument("Propagator: empty grid");
    if (config_.pad_factor == 0)
        throw std::invalid_argument("Propagator: pad_factor must be >= 1");

    if (config_.approx == Diffraction::Fraunhofer) {
        padded_n_ = n;
        fft_ = std::make_shared<Fft2d>(n, n);
        // Output-plane quadratic phase and scale of Eq. 4, folded together
        // with the centered-DFT sign factors (-1)^(a+b) and the constant
        // exp(-j*pi*n) from the half-sample shifts.
        const Real lambda = config_.wavelength;
        const Real z = config_.distance;
        const Real k = waveNumber(lambda);
        const Real out_pitch = outputPitch();
        quad_phase_ = Field(n, n);
        const Complex scale =
            std::polar(Real(1), k * z) / (kJ * lambda * z) *
            config_.grid.pitch * config_.grid.pitch *
            std::polar(Real(1), -kPi * static_cast<Real>(n));
        for (std::size_t a = 0; a < n; ++a) {
            Real v = (static_cast<Real>(a) - static_cast<Real>(n) / 2) *
                     out_pitch;
            for (std::size_t b = 0; b < n; ++b) {
                Real u = (static_cast<Real>(b) - static_cast<Real>(n) / 2) *
                         out_pitch;
                Real sign = ((a + b) % 2 == 0) ? Real(1) : Real(-1);
                quad_phase_(a, b) =
                    scale * sign *
                    std::polar(Real(1), k * (u * u + v * v) / (2 * z));
            }
        }
        return;
    }

    padded_n_ = config_.pad_factor == 1
                    ? n
                    : nextFastLength(config_.pad_factor * n);
    Grid padded{padded_n_, config_.grid.pitch};
    kernel_ = acquireTransferFunction(config_.approx, config_.method, padded,
                                      config_.wavelength, config_.distance);
    fft_ = std::make_shared<Fft2d>(padded_n_, padded_n_);
}

const Field &
Propagator::kernel() const
{
    static const Field empty;
    return kernel_ ? *kernel_ : empty;
}

Real
Propagator::outputPitch() const
{
    if (config_.approx == Diffraction::Fraunhofer) {
        return config_.wavelength * config_.distance /
               (static_cast<Real>(config_.grid.n) * config_.grid.pitch);
    }
    return config_.grid.pitch;
}

void
Propagator::applyShiftRamp(Complex *spectrum, const HopPerturbation &hop,
                           bool conjugate) const
{
    // Separable Fourier-shift phasor: spectrum[r][c] *= row[r] * col[c]
    // (conjugated in the adjoint so the perturbed operator stays exact).
    const std::size_t p = padded_n_;
    for (std::size_t r = 0; r < p; ++r) {
        const Complex row =
            conjugate ? std::conj(hop.ramp_row[r]) : hop.ramp_row[r];
        Complex *line = spectrum + r * p;
        if (conjugate) {
            for (std::size_t c = 0; c < p; ++c)
                line[c] *= row * std::conj(hop.ramp_col[c]);
        } else {
            for (std::size_t c = 0; c < p; ++c)
                line[c] *= row * hop.ramp_col[c];
        }
    }
}

void
Propagator::convolveInto(const Field &in, Field &out, bool conjugate_kernel,
                         PropagationWorkspace &workspace,
                         const HopPerturbation *hop) const
{
    const std::size_t n = config_.grid.n;
    if (in.rows() != n || in.cols() != n)
        throw std::invalid_argument("Propagator: field shape mismatch");

    const Field &kern =
        (hop && hop->kernel) ? *hop->kernel : *kernel_;
    const bool shift = hop && hop->has_shift;

    if (padded_n_ == n) {
        // Same-size spectral algorithm: transform directly in the output
        // buffer (after a copy when the caller passed distinct buffers).
        if (&out != &in) {
            ensureFieldShape(out, n, n);
            std::copy(in.data(), in.data() + in.size(), out.data());
        }
        fft_->forward(&out);
        if (conjugate_kernel)
            out.hadamardConj(kern);
        else
            out.hadamard(kern);
        if (shift)
            applyShiftRamp(out.data(), *hop, conjugate_kernel);
        fft_->inverse(&out);
        return;
    }

    // Padded path: lease the padded scratch from the workspace. The pad
    // region is rewritten to zero every call (the previous iFFT left
    // nonzero spill there), which matches the zero-initialized fresh
    // buffer of the allocating path bit for bit.
    WorkspaceField work(workspace, padded_n_, padded_n_);
    Complex *w = work->data();
    const Complex *src = in.data();
    for (std::size_t r = 0; r < n; ++r) {
        std::copy(src + r * n, src + (r + 1) * n, w + r * padded_n_);
        std::fill(w + r * padded_n_ + n, w + (r + 1) * padded_n_,
                  Complex{0, 0});
    }
    std::fill(w + n * padded_n_, w + padded_n_ * padded_n_, Complex{0, 0});

    // FFT2 -> transfer-function Hadamard -> iFFT2, all through the kernel
    // dispatch layer: the 2-D transforms shard rows/columns across the
    // thread pool for large grids, and the element-wise kernel multiply
    // runs the vectorized interleaved complex product in Simd mode.
    fft_->forward(&work.get());
    if (conjugate_kernel)
        work->hadamardConj(kern);
    else
        work->hadamard(kern);
    if (shift)
        applyShiftRamp(work->data(), *hop, conjugate_kernel);
    fft_->inverse(&work.get());

    ensureFieldShape(out, n, n);
    for (std::size_t r = 0; r < n; ++r)
        std::copy(w + r * padded_n_, w + r * padded_n_ + n,
                  out.data() + r * n);
}

void
Propagator::fraunhoferForwardInto(const Field &in, Field &out) const
{
    const std::size_t n = config_.grid.n;
    if (in.rows() != n || in.cols() != n)
        throw std::invalid_argument("Propagator: field shape mismatch");
    if (&out != &in)
        ensureFieldShape(out, n, n);
    if (fftKernelMode() == FftKernelMode::Simd) {
        for (std::size_t r = 0; r < n; ++r)
            kernels::copySignAlternating(
                reinterpret_cast<Real *>(out.data() + r * n),
                reinterpret_cast<const Real *>(in.data() + r * n), n,
                /*negate_first=*/(r % 2) != 0);
    } else {
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c) {
                Real sign = ((r + c) % 2 == 0) ? Real(1) : Real(-1);
                out(r, c) = in(r, c) * sign;
            }
    }
    fft_->forward(&out);
    out.hadamard(quad_phase_);
}

void
Propagator::fraunhoferAdjointInto(const Field &grad_out, Field &out) const
{
    const std::size_t n = config_.grid.n;
    if (grad_out.rows() != n || grad_out.cols() != n)
        throw std::invalid_argument("Propagator: field shape mismatch");
    if (&out != &grad_out) {
        ensureFieldShape(out, n, n);
        std::copy(grad_out.data(), grad_out.data() + grad_out.size(),
                  out.data());
    }
    out.hadamardConj(quad_phase_);
    fft_->inverse(&out);
    const Real n2 = static_cast<Real>(n) * static_cast<Real>(n);
    // inverse() scales by 1/N^2; the adjoint of an unnormalized forward
    // DFT is N^2 times the inverse, fused here with the sign checkerboard.
    if (fftKernelMode() == FftKernelMode::Simd) {
        for (std::size_t r = 0; r < n; ++r)
            kernels::scaleSignAlternating(
                reinterpret_cast<Real *>(out.data() + r * n), n2, n,
                /*negate_first=*/(r % 2) != 0);
    } else {
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c) {
                Real sign = ((r + c) % 2 == 0) ? Real(1) : Real(-1);
                out(r, c) *= sign * n2;
            }
    }
}

void
Propagator::forwardInto(const Field &in, Field &out,
                        PropagationWorkspace &workspace,
                        const HopPerturbation *hop) const
{
    if (config_.approx == Diffraction::Fraunhofer) {
        if (hop && hop->any())
            throw std::logic_error(
                "Propagator: perturbations are not supported on "
                "Fraunhofer hops");
        fraunhoferForwardInto(in, out);
        return;
    }
    convolveInto(in, out, /*conjugate_kernel=*/false, workspace, hop);
}

void
Propagator::adjointInto(const Field &grad_out, Field &out,
                        PropagationWorkspace &workspace,
                        const HopPerturbation *hop) const
{
    if (config_.approx == Diffraction::Fraunhofer) {
        if (hop && hop->any())
            throw std::logic_error(
                "Propagator: perturbations are not supported on "
                "Fraunhofer hops");
        fraunhoferAdjointInto(grad_out, out);
        return;
    }
    convolveInto(grad_out, out, /*conjugate_kernel=*/true, workspace, hop);
}

Field
Propagator::forward(const Field &in) const
{
    Field out;
    forwardInto(in, out, PropagationWorkspace::threadLocal());
    return out;
}

Field
Propagator::adjoint(const Field &grad_out) const
{
    Field out;
    adjointInto(grad_out, out, PropagationWorkspace::threadLocal());
    return out;
}

} // namespace lightridge
