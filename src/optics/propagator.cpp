#include "optics/propagator.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace lightridge {

namespace {

/** Exact-bit-pattern key for one (approx, method, grid, lambda, z) tuple. */
struct KernelKey
{
    int approx;
    int method;
    std::size_t n;
    uint64_t pitch_bits;
    uint64_t wavelength_bits;
    uint64_t z_bits;

    bool operator==(const KernelKey &) const = default;
};

uint64_t
realBits(Real v)
{
    uint64_t bits = 0;
    static_assert(sizeof(Real) == sizeof(uint64_t));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

struct KernelKeyHash
{
    std::size_t
    operator()(const KernelKey &k) const
    {
        // FNV-1a over the key fields.
        uint64_t h = 1469598103934665603ull;
        auto mix = [&h](uint64_t v) {
            h = (h ^ v) * 1099511628211ull;
        };
        mix(static_cast<uint64_t>(k.approx));
        mix(static_cast<uint64_t>(k.method));
        mix(static_cast<uint64_t>(k.n));
        mix(k.pitch_bits);
        mix(k.wavelength_bits);
        mix(k.z_bits);
        return static_cast<std::size_t>(h);
    }
};

/**
 * Bounded LRU: a long DSE sweep visits many (grid, wavelength, distance)
 * tuples it will never revisit; without a cap every padded n^2 kernel
 * would stay resident for the life of the process. Evicted kernels stay
 * alive as long as some Propagator still holds the shared_ptr.
 */
constexpr std::size_t kMaxCachedKernels = 64;

struct KernelEntry
{
    std::shared_ptr<const Field> kernel;
    std::uint64_t last_used = 0;
};

struct KernelCache
{
    std::mutex mutex;
    std::unordered_map<KernelKey, KernelEntry, KernelKeyHash> kernels;
    std::uint64_t clock = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
};

KernelCache &
kernelCache()
{
    static KernelCache cache;
    return cache;
}

} // namespace

std::shared_ptr<const Field>
acquireTransferFunction(Diffraction approx, PropagationMethod method,
                        const Grid &grid, Real wavelength, Real z)
{
    KernelKey key{static_cast<int>(approx), static_cast<int>(method), grid.n,
                  realBits(grid.pitch), realBits(wavelength), realBits(z)};
    KernelCache &cache = kernelCache();
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        auto it = cache.kernels.find(key);
        if (it != cache.kernels.end()) {
            ++cache.hits;
            it->second.last_used = ++cache.clock;
            return it->second.kernel;
        }
        ++cache.misses;
    }
    // Compute outside the lock (O(n^2) transcendentals, possibly an FFT2);
    // concurrent first-touch of the same key wastes one computation but
    // stays correct because the result is deterministic.
    auto kernel = std::make_shared<const Field>(
        transferFunction(approx, method, grid, wavelength, z));
    std::lock_guard<std::mutex> lock(cache.mutex);
    auto [it, inserted] =
        cache.kernels.emplace(key, KernelEntry{std::move(kernel), 0});
    it->second.last_used = ++cache.clock;
    if (inserted && cache.kernels.size() > kMaxCachedKernels) {
        auto lru = cache.kernels.begin();
        for (auto e = cache.kernels.begin(); e != cache.kernels.end(); ++e)
            if (e->second.last_used < lru->second.last_used)
                lru = e;
        if (lru != it)
            cache.kernels.erase(lru);
    }
    return it->second.kernel;
}

TransferFunctionCacheStats
transferFunctionCacheStats()
{
    KernelCache &cache = kernelCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return {cache.kernels.size(), cache.hits, cache.misses};
}

void
clearTransferFunctionCache()
{
    KernelCache &cache = kernelCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    cache.kernels.clear();
    cache.clock = 0;
    cache.hits = 0;
    cache.misses = 0;
}

Propagator::Propagator(const PropagatorConfig &config) : config_(config)
{
    const std::size_t n = config_.grid.n;
    if (n == 0)
        throw std::invalid_argument("Propagator: empty grid");
    if (config_.pad_factor == 0)
        throw std::invalid_argument("Propagator: pad_factor must be >= 1");

    if (config_.approx == Diffraction::Fraunhofer) {
        padded_n_ = n;
        fft_ = std::make_shared<Fft2d>(n, n);
        // Output-plane quadratic phase and scale of Eq. 4, folded together
        // with the centered-DFT sign factors (-1)^(a+b) and the constant
        // exp(-j*pi*n) from the half-sample shifts.
        const Real lambda = config_.wavelength;
        const Real z = config_.distance;
        const Real k = waveNumber(lambda);
        const Real out_pitch = outputPitch();
        quad_phase_ = Field(n, n);
        const Complex scale =
            std::polar(Real(1), k * z) / (kJ * lambda * z) *
            config_.grid.pitch * config_.grid.pitch *
            std::polar(Real(1), -kPi * static_cast<Real>(n));
        for (std::size_t a = 0; a < n; ++a) {
            Real v = (static_cast<Real>(a) - static_cast<Real>(n) / 2) *
                     out_pitch;
            for (std::size_t b = 0; b < n; ++b) {
                Real u = (static_cast<Real>(b) - static_cast<Real>(n) / 2) *
                         out_pitch;
                Real sign = ((a + b) % 2 == 0) ? Real(1) : Real(-1);
                quad_phase_(a, b) =
                    scale * sign *
                    std::polar(Real(1), k * (u * u + v * v) / (2 * z));
            }
        }
        return;
    }

    padded_n_ = config_.pad_factor == 1
                    ? n
                    : nextFastLength(config_.pad_factor * n);
    Grid padded{padded_n_, config_.grid.pitch};
    kernel_ = acquireTransferFunction(config_.approx, config_.method, padded,
                                      config_.wavelength, config_.distance);
    fft_ = std::make_shared<Fft2d>(padded_n_, padded_n_);
}

const Field &
Propagator::kernel() const
{
    static const Field empty;
    return kernel_ ? *kernel_ : empty;
}

Real
Propagator::outputPitch() const
{
    if (config_.approx == Diffraction::Fraunhofer) {
        return config_.wavelength * config_.distance /
               (static_cast<Real>(config_.grid.n) * config_.grid.pitch);
    }
    return config_.grid.pitch;
}

Field
Propagator::convolve(const Field &in, bool conjugate_kernel) const
{
    const std::size_t n = config_.grid.n;
    if (in.rows() != n || in.cols() != n)
        throw std::invalid_argument("Propagator: field shape mismatch");

    Field work;
    if (padded_n_ == n) {
        work = in;
    } else {
        work = Field(padded_n_, padded_n_);
        for (std::size_t r = 0; r < n; ++r)
            std::copy(in.data() + r * n, in.data() + (r + 1) * n,
                      work.data() + r * padded_n_);
    }

    // FFT2 -> transfer-function Hadamard -> iFFT2, all through the kernel
    // dispatch layer: the 2-D transforms shard rows/columns across the
    // thread pool for large grids, and the element-wise kernel multiply
    // runs the vectorized interleaved complex product in Simd mode.
    fft_->forward(&work);
    if (conjugate_kernel)
        work.hadamardConj(*kernel_);
    else
        work.hadamard(*kernel_);
    fft_->inverse(&work);

    if (padded_n_ == n)
        return work;
    Field out(n, n);
    for (std::size_t r = 0; r < n; ++r)
        std::copy(work.data() + r * padded_n_,
                  work.data() + r * padded_n_ + n, out.data() + r * n);
    return out;
}

Field
Propagator::fraunhoferForward(const Field &in) const
{
    const std::size_t n = config_.grid.n;
    if (in.rows() != n || in.cols() != n)
        throw std::invalid_argument("Propagator: field shape mismatch");
    Field work(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) {
            Real sign = ((r + c) % 2 == 0) ? Real(1) : Real(-1);
            work(r, c) = in(r, c) * sign;
        }
    fft_->forward(&work);
    work.hadamard(quad_phase_);
    return work;
}

Field
Propagator::fraunhoferAdjoint(const Field &grad_out) const
{
    const std::size_t n = config_.grid.n;
    Field work = grad_out;
    work.hadamardConj(quad_phase_);
    fft_->inverse(&work);
    const Real n2 = static_cast<Real>(n) * static_cast<Real>(n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) {
            Real sign = ((r + c) % 2 == 0) ? Real(1) : Real(-1);
            // inverse() scales by 1/N^2; the adjoint of an unnormalized
            // forward DFT is N^2 times the inverse.
            work(r, c) *= sign * n2;
        }
    return work;
}

Field
Propagator::forward(const Field &in) const
{
    if (config_.approx == Diffraction::Fraunhofer)
        return fraunhoferForward(in);
    return convolve(in, false);
}

Field
Propagator::adjoint(const Field &grad_out) const
{
    if (config_.approx == Diffraction::Fraunhofer)
        return fraunhoferAdjoint(grad_out);
    return convolve(grad_out, true);
}

} // namespace lightridge
