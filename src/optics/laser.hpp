/**
 * @file
 * Coherent laser source models (paper Table 2, "Laser source & profiles").
 *
 * The source defines the illumination wavefield onto which input images are
 * encoded (lr.laser in the DSL). Plane, Gaussian, and Bessel beam profiles
 * are provided with configurable wavelength and power.
 */
#pragma once

#include <cstddef>

#include "optics/grid.hpp"
#include "tensor/field.hpp"
#include "utils/types.hpp"

namespace lightridge {

/** Supported transverse beam profiles. */
enum class BeamProfile { Plane, Gaussian, Bessel };

/** Continuous-wave laser source description. */
struct Laser
{
    Real wavelength = 532e-9;              ///< [m]; 532 nm green by default
    BeamProfile profile = BeamProfile::Plane;
    Real waist = 0.0;       ///< Gaussian 1/e^2 amplitude waist [m]; 0 = auto
    Real bessel_cone = 0.5; ///< Bessel transverse scale as fraction of plane
    Real power_watts = 5e-3; ///< CW optical power (prototype: ~5 mW)

    /** Wave number 2*pi/lambda. */
    Real k() const { return waveNumber(wavelength); }
};

/**
 * Illumination amplitude profile of the source across a grid, normalized
 * to unit peak amplitude. Input images multiply this profile.
 */
Field sourceProfile(const Laser &laser, const Grid &grid);

/**
 * Analytic Gaussian beam radius after free-space distance z:
 * w(z) = w0 * sqrt(1 + (z/zR)^2), zR = pi*w0^2/lambda.
 * Used to validate the diffraction kernels against known physics.
 */
Real gaussianBeamRadius(Real w0, Real wavelength, Real z);

/**
 * Encode an intensity image onto the source beam as the paper prescribes
 * (Section 3.1: theta = 0, A = I): amplitude = image, phase = 0, windowed
 * by the source profile. This is the data_to_cplex training utility.
 */
Field encodeInput(const RealMap &image, const Laser &laser, const Grid &grid);

} // namespace lightridge
