/**
 * @file
 * Spatial sampling grid shared by all optics kernels.
 *
 * A grid is n-by-n diffraction units of physical pitch p (the paper's
 * "diffraction unit size", one of the two key DSE parameters). Coordinates
 * are centered: x_i = (i - n/2) * p. Spatial frequencies follow FFT
 * (unshifted) ordering so transfer functions can be applied without
 * fftshift round trips.
 */
#pragma once

#include <cstddef>

#include "utils/types.hpp"

namespace lightridge {

/** Square sampling grid: size in units and physical pitch in meters. */
struct Grid
{
    std::size_t n = 0;  ///< samples per side (system resolution)
    Real pitch = 0.0;   ///< diffraction unit size [m]

    /** Physical side length of the plane [m]. */
    Real aperture() const { return static_cast<Real>(n) * pitch; }

    /** Centered spatial coordinate of sample i [m]. */
    Real
    coord(std::size_t i) const
    {
        return (static_cast<Real>(i) - static_cast<Real>(n) / 2) * pitch;
    }

    /** Spatial frequency of FFT bin i in cycles/m (unshifted order). */
    Real
    freq(std::size_t i) const
    {
        Real k = static_cast<Real>(i);
        if (i >= (n + 1) / 2)
            k -= static_cast<Real>(n);
        return k / aperture();
    }

    /** Frequency-domain sample spacing (1 / aperture). */
    Real freqStep() const { return Real(1) / aperture(); }

    bool operator==(const Grid &other) const = default;
};

} // namespace lightridge
