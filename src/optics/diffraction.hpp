/**
 * @file
 * Scalar-diffraction approximations (paper Section 3.1.1, Equations 1-4).
 *
 * Three approximation families are provided, selectable per layer exactly
 * as in the paper's lr.layers API:
 *
 *  - Rayleigh-Sommerfeld (Eq. 1): handles near and far field. Two numeric
 *    routes: the analytic angular-spectrum transfer function (the exact
 *    solution of the Helmholtz equation), and the sampled impulse-response
 *    kernel h = z*exp(jkr)/(j*lambda*r^2) FFT'd once and cached (the
 *    paper's Eqs. 5-7 spectral algorithm).
 *  - Fresnel (Eq. 3): parabolic-wavefront transfer function
 *    H = exp(jkz) * exp(-j*pi*lambda*z*(fx^2+fy^2)).
 *  - Fraunhofer (Eq. 4): far-field single-FFT propagation with quadratic
 *    output phase and rescaled output pitch lambda*z/(n*pitch).
 */
#pragma once

#include <cstddef>

#include "optics/grid.hpp"
#include "tensor/field.hpp"
#include "utils/types.hpp"

namespace lightridge {

/** Diffraction approximation selector (paper Table 2). */
enum class Diffraction { RayleighSommerfeld, Fresnel, Fraunhofer };

/** Numerical route for convolution-type approximations. */
enum class PropagationMethod { TransferFunction, ImpulseResponse };

/** Human-readable name of a diffraction approximation. */
const char *diffractionName(Diffraction d);

/**
 * Frequency-domain transfer function H for one free-space hop of length z,
 * laid out in unshifted FFT order on the given grid.
 *
 * For RayleighSommerfeld with TransferFunction this is the angular
 * spectrum kernel; with ImpulseResponse it is FFT2 of the sampled Eq. 1
 * kernel (times pitch^2 for the integral measure). Fresnel supports both
 * routes analogously. Fraunhofer has no shift-invariant transfer function;
 * requesting one throws std::invalid_argument.
 */
Field transferFunction(Diffraction approx, PropagationMethod method,
                       const Grid &grid, Real wavelength, Real z);

/**
 * Validity heuristics from Goodman used by the DSE engine to prune the
 * search space: Fresnel requires z^3 >> pi/(4*lambda) * max(r^2)^2;
 * Fraunhofer requires z >> k * max(xi^2+eta^2) / 2.
 */
bool fresnelValid(const Grid &grid, Real wavelength, Real z);
bool fraunhoferValid(const Grid &grid, Real wavelength, Real z);

/**
 * Maximum half-cone diffraction angle theory [Chen et al. 2021], used by
 * LightRidge-DSE for analytic guidance: a diffraction unit of size p at
 * wavelength lambda spreads light into half-angle asin(lambda / (2 p)).
 * Returns the ideal inter-layer distance for full connectivity of an
 * n-by-n layer: the cone from one unit should cover the next layer's
 * half-aperture.
 */
Real idealDistanceHalfCone(const Grid &grid, Real wavelength);

} // namespace lightridge
