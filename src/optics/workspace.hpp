/**
 * @file
 * Reusable complex-buffer arena for allocation-free propagation.
 *
 * Every Propagator::forward/adjoint call used to allocate 2-3 fresh Field
 * buffers (pad copy, crop copy, return value); over a K-layer training
 * step the allocation plus memcpy traffic rivals the FFT arithmetic the
 * paper's Fig. 9 measures. A PropagationWorkspace is a per-thread arena
 * of padded/cropped complex buffers, sized once per (rows, cols) shape and
 * reused across calls: the in-place `forwardInto`/`adjointInto` entry
 * points and the layer/model `*InPlace` pipeline run with zero heap
 * allocations in steady state.
 *
 * Workspaces are single-threaded by design — each worker thread uses its
 * own (typically `threadLocal()`). Buffers are leased with `acquire()` and
 * returned with `release()`; the `WorkspaceField` RAII wrapper pairs the
 * two. Leases may nest (an optical skip block holds a shortcut buffer
 * while its inner layers lease propagation scratch of the same shape); the
 * arena grows to the maximum number of concurrently leased buffers per
 * shape and then stays put.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/field.hpp"

namespace lightridge {

/**
 * Size a destination field, allocating only when the shape changes.
 * Contents are unspecified after a reshape; unchanged shapes are left
 * untouched so steady-state callers never reallocate.
 */
inline void
ensureFieldShape(Field &field, std::size_t rows, std::size_t cols)
{
    if (field.rows() != rows || field.cols() != cols)
        field = Field(rows, cols);
}

/** Per-thread arena of reusable complex field buffers. */
class PropagationWorkspace
{
  public:
    PropagationWorkspace() = default;

    PropagationWorkspace(const PropagationWorkspace &) = delete;
    PropagationWorkspace &operator=(const PropagationWorkspace &) = delete;

    /**
     * Lease a rows-by-cols buffer. Contents are unspecified (callers
     * overwrite). Returns a stable reference: the arena never moves or
     * frees a buffer while it is leased. Allocates only when no free
     * buffer of this exact shape exists (first touch / new nesting
     * high-water mark); steady-state calls are allocation-free.
     */
    Field &acquire(std::size_t rows, std::size_t cols);

    /** Return a leased buffer to the arena (matched by address). */
    void release(const Field &buffer);

    /** Number of buffers currently held by the arena (leased + free). */
    std::size_t pooledCount() const;

    /** Number of currently leased buffers. */
    std::size_t leasedCount() const;

    /** Bytes held by currently idle (unleased) buffers. */
    std::size_t idleBytes() const;

    /**
     * Idle-memory budget: whenever a release leaves more than this many
     * bytes in unleased buffers, the least recently used idle buffers
     * are freed until the arena fits. A steady-state workload touching
     * one model's shapes stays far below the budget and never frees
     * (preserving the zero-allocation guarantee); a DSE sweep visiting
     * dozens of grid sizes no longer pins every shape it ever leased in
     * every thread's arena. Returns the previous budget.
     */
    std::size_t setIdleByteBudget(std::size_t bytes);
    std::size_t idleByteBudget() const { return idle_budget_; }

    /** Default idle budget per arena (applies per thread). */
    static constexpr std::size_t kDefaultIdleByteBudget =
        std::size_t{32} << 20; // 32 MiB

    /** Drop all free buffers (leased ones are kept). Test/debug hook. */
    void clear();

    /**
     * The calling thread's workspace. This is what the by-value
     * Propagator/Layer/DonnModel wrappers use, so even legacy call sites
     * stop churning internal scratch; thread-pool workers each get their
     * own arena automatically.
     */
    static PropagationWorkspace &threadLocal();

  private:
    struct Slot
    {
        std::unique_ptr<Field> buffer;
        bool leased = false;
        std::uint64_t last_used = 0;
    };

    void trimIdle();

    std::vector<Slot> slots_;
    std::uint64_t clock_ = 0;
    std::size_t idle_budget_ = kDefaultIdleByteBudget;
};

/** RAII lease of one workspace buffer. */
class WorkspaceField
{
  public:
    WorkspaceField(PropagationWorkspace &workspace, std::size_t rows,
                   std::size_t cols)
        : workspace_(workspace), field_(&workspace.acquire(rows, cols))
    {}
    ~WorkspaceField() { workspace_.release(*field_); }

    WorkspaceField(const WorkspaceField &) = delete;
    WorkspaceField &operator=(const WorkspaceField &) = delete;

    Field &operator*() { return *field_; }
    Field *operator->() { return field_; }
    Field &get() { return *field_; }

  private:
    PropagationWorkspace &workspace_;
    Field *field_;
};

} // namespace lightridge
