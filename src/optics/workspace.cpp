#include "optics/workspace.hpp"

#include <algorithm>
#include <stdexcept>

namespace lightridge {

namespace {

std::size_t
bufferBytes(const Field &buffer)
{
    return buffer.size() * sizeof(Complex);
}

} // namespace

Field &
PropagationWorkspace::acquire(std::size_t rows, std::size_t cols)
{
    for (Slot &slot : slots_) {
        if (!slot.leased && slot.buffer->rows() == rows &&
            slot.buffer->cols() == cols) {
            slot.leased = true;
            slot.last_used = ++clock_;
            return *slot.buffer;
        }
    }
    slots_.push_back(Slot{std::make_unique<Field>(rows, cols),
                          /*leased=*/true, ++clock_});
    return *slots_.back().buffer;
}

void
PropagationWorkspace::release(const Field &buffer)
{
    for (Slot &slot : slots_) {
        if (slot.buffer.get() == &buffer) {
            slot.leased = false;
            slot.last_used = ++clock_;
            trimIdle();
            return;
        }
    }
    throw std::logic_error(
        "PropagationWorkspace::release: buffer not owned by this arena");
}

void
PropagationWorkspace::trimIdle()
{
    // Free least-recently-used idle buffers until the idle set fits the
    // budget. Steady-state use of one model's shapes stays well under it
    // and never reaches this loop's body, so the zero-allocation
    // guarantee is unaffected; only long sweeps over many shapes shed
    // their stale scratch.
    std::size_t idle = idleBytes();
    while (idle > idle_budget_) {
        std::size_t victim = slots_.size();
        for (std::size_t s = 0; s < slots_.size(); ++s) {
            if (slots_[s].leased)
                continue;
            if (victim == slots_.size() ||
                slots_[s].last_used < slots_[victim].last_used)
                victim = s;
        }
        if (victim == slots_.size())
            return;
        idle -= bufferBytes(*slots_[victim].buffer);
        slots_.erase(slots_.begin() +
                     static_cast<std::ptrdiff_t>(victim));
    }
}

std::size_t
PropagationWorkspace::idleBytes() const
{
    std::size_t total = 0;
    for (const Slot &slot : slots_)
        if (!slot.leased)
            total += bufferBytes(*slot.buffer);
    return total;
}

std::size_t
PropagationWorkspace::setIdleByteBudget(std::size_t bytes)
{
    std::size_t previous = idle_budget_;
    idle_budget_ = bytes;
    trimIdle();
    return previous;
}

std::size_t
PropagationWorkspace::pooledCount() const
{
    return slots_.size();
}

std::size_t
PropagationWorkspace::leasedCount() const
{
    return static_cast<std::size_t>(
        std::count_if(slots_.begin(), slots_.end(),
                      [](const Slot &slot) { return slot.leased; }));
}

void
PropagationWorkspace::clear()
{
    std::erase_if(slots_, [](const Slot &slot) { return !slot.leased; });
}

PropagationWorkspace &
PropagationWorkspace::threadLocal()
{
    static thread_local PropagationWorkspace workspace;
    return workspace;
}

} // namespace lightridge
