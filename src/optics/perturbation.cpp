/**
 * @file
 * Perturbation model implementation: spec parsing, quantization, and the
 * per-batch realization sampler (see perturbation.hpp for the physics).
 */
#include "optics/perturbation.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <stdexcept>

#include "optics/propagator.hpp"
#include "optics/workspace.hpp"

namespace lightridge {

namespace {

/** Strict sub-block key check (mirrors the ExperimentSpec parser). */
void
expectBlockKeys(const Json &j, std::initializer_list<const char *> allowed,
                const std::string &where)
{
    for (const auto &entry : j.asObject()) {
        bool known = false;
        for (const char *key : allowed)
            known = known || entry.first == key;
        if (!known)
            throw JsonError("unknown key in " + where + ": " + entry.first);
    }
}

const char *
distName(ErrorDist::Kind kind)
{
    switch (kind) {
    case ErrorDist::Kind::Uniform:
        return "uniform";
    case ErrorDist::Kind::Gaussian:
        return "gaussian";
    case ErrorDist::Kind::None:
        break;
    }
    return "none";
}

ErrorDist::Kind
distFromName(const std::string &name, const std::string &where)
{
    if (name == "uniform")
        return ErrorDist::Kind::Uniform;
    if (name == "gaussian")
        return ErrorDist::Kind::Gaussian;
    if (name == "none")
        return ErrorDist::Kind::None;
    throw JsonError("unknown dist in " + where + ": " + name);
}

} // namespace

Real
ErrorDist::sample(Rng &rng) const
{
    if (!enabled())
        return 0.0;
    if (kind == Kind::Uniform)
        return rng.uniform(-scale, scale);
    return rng.normal(0.0, scale);
}

Real
ErrorDist::bound() const
{
    if (!enabled())
        return 0.0;
    return kind == Kind::Gaussian ? 3.0 * scale : scale;
}

Json
ErrorDist::toJson() const
{
    Json j;
    j["dist"] = distName(kind);
    j["scale"] = scale;
    return j;
}

ErrorDist
ErrorDist::fromJson(const Json &j, const std::string &where)
{
    expectBlockKeys(j, {"dist", "scale"}, where);
    ErrorDist dist;
    dist.kind = distFromName(j.at("dist").asString(), where);
    dist.scale = j.at("scale").asNumber();
    if (dist.scale < 0.0)
        throw JsonError(where + ": scale must be >= 0");
    return dist;
}

bool
PerturbationSpec::active() const
{
    return enabled &&
           (lateral.enabled() || axial.enabled() || phase_sigma > 0.0);
}

Real
PerturbationSpec::quantizeAxial(Real dz) const
{
    if (!axial.enabled() || axial_levels < 2)
        return 0.0;
    const Real bound = axial.bound();
    dz = std::clamp(dz, -bound, bound);
    const Real step =
        2.0 * bound / static_cast<Real>(axial_levels - 1);
    return std::round((dz + bound) / step) * step - bound;
}

std::vector<Real>
PerturbationSpec::axialLevels() const
{
    if (!axial.enabled() || axial_levels < 2)
        return {0.0};
    const Real bound = axial.bound();
    const Real step =
        2.0 * bound / static_cast<Real>(axial_levels - 1);
    std::vector<Real> levels(axial_levels);
    for (std::size_t k = 0; k < axial_levels; ++k)
        levels[k] = -bound + static_cast<Real>(k) * step;
    return levels;
}

Json
PerturbationSpec::toJson() const
{
    Json j;
    j["enabled"] = enabled;
    if (lateral.kind != ErrorDist::Kind::None)
        j["lateral"] = lateral.toJson();
    if (axial.kind != ErrorDist::Kind::None) {
        Json a = axial.toJson();
        a["levels"] = axial_levels;
        j["axial"] = a;
    }
    if (phase_sigma > 0.0)
        j["phase_sigma"] = phase_sigma;
    return j;
}

PerturbationSpec
PerturbationSpec::fromJson(const Json &j)
{
    expectBlockKeys(j, {"enabled", "lateral", "axial", "phase_sigma"},
                    "perturbation");
    PerturbationSpec spec;
    if (j.has("enabled"))
        spec.enabled = j.at("enabled").asBool();
    if (j.has("lateral"))
        spec.lateral =
            ErrorDist::fromJson(j.at("lateral"), "perturbation.lateral");
    if (j.has("axial")) {
        const Json &a = j.at("axial");
        expectBlockKeys(a, {"dist", "scale", "levels"},
                        "perturbation.axial");
        Json stripped;
        stripped["dist"] = a.at("dist");
        stripped["scale"] = a.at("scale");
        spec.axial = ErrorDist::fromJson(stripped, "perturbation.axial");
        if (a.has("levels")) {
            const int levels = a.at("levels").asInt();
            if (levels < 2)
                throw JsonError("perturbation.axial.levels must be >= 2");
            spec.axial_levels = static_cast<std::size_t>(levels);
        }
    }
    if (j.has("phase_sigma")) {
        spec.phase_sigma = j.at("phase_sigma").asNumber();
        if (spec.phase_sigma < 0.0)
            throw JsonError("perturbation.phase_sigma must be >= 0");
    }
    return spec;
}

void
HopPerturbation::clear()
{
    dx = dy = dz = 0.0;
    has_shift = false;
    kernel.reset();
}

void
LayerPerturbation::clear()
{
    hop.clear();
    has_noise = false;
}

bool
PerturbationRealization::any() const
{
    if (final_hop.any())
        return true;
    for (const LayerPerturbation &layer : layers)
        if (layer.any())
            return true;
    return false;
}

void
PerturbationRealization::clear()
{
    for (LayerPerturbation &layer : layers)
        layer.clear();
    final_hop.clear();
}

void
fillHopPerturbation(const Propagator &prop, Real dx, Real dy, Real dz,
                    HopPerturbation &out)
{
    const PropagatorConfig &pc = prop.config();
    if (pc.approx == Diffraction::Fraunhofer)
        throw std::logic_error(
            "fillHopPerturbation: Fraunhofer hops have no convolution "
            "kernel to perturb");

    // Keep the perturbed distance physical (strictly positive).
    const Real min_dz = -0.5 * pc.distance;
    dz = std::max(dz, min_dz);

    out.dx = dx;
    out.dy = dy;
    out.dz = dz;

    const std::size_t padded_n = prop.paddedSize();
    const Grid padded{padded_n, pc.grid.pitch};

    if (dz != 0.0)
        out.kernel = acquireTransferFunction(pc.approx, pc.method, padded,
                                             pc.wavelength,
                                             pc.distance + dz);
    else
        out.kernel.reset();

    out.has_shift = (dx != 0.0 || dy != 0.0);
    if (out.has_shift) {
        out.ramp_row.resize(padded_n);
        out.ramp_col.resize(padded_n);
        for (std::size_t i = 0; i < padded_n; ++i) {
            const Real f = padded.freq(i);
            // Fourier shift theorem: multiplying the spectrum by
            // exp(-j 2 pi f d) translates the spatial field by +d.
            out.ramp_row[i] = std::polar<Real>(1.0, -kTwoPi * f * dy);
            out.ramp_col[i] = std::polar<Real>(1.0, -kTwoPi * f * dx);
        }
    }
}

PerturbationSampler::PerturbationSampler(
    PerturbationSpec spec, std::vector<const Propagator *> layer_hops,
    const Propagator *final_hop)
    : spec_(std::move(spec)), layer_hops_(std::move(layer_hops)),
      final_hop_(final_hop)
{
    for (const Propagator *prop : layer_hops_)
        if (prop && prop->config().approx == Diffraction::Fraunhofer)
            throw std::logic_error(
                "PerturbationSampler: Fraunhofer hops are not supported");
    if (final_hop_ && final_hop_->config().approx == Diffraction::Fraunhofer)
        throw std::logic_error(
            "PerturbationSampler: Fraunhofer hops are not supported");
}

void
PerturbationSampler::sampleHop(Rng &rng, const Propagator &prop,
                               HopPerturbation &out) const
{
    Real dx = 0.0;
    Real dy = 0.0;
    Real dz = 0.0;
    if (spec_.lateral.enabled()) {
        dx = spec_.lateral.sample(rng);
        dy = spec_.lateral.sample(rng);
    }
    if (spec_.axial.enabled())
        dz = spec_.quantizeAxial(spec_.axial.sample(rng));
    fillHopPerturbation(prop, dx, dy, dz, out);
}

void
PerturbationSampler::sample(std::uint64_t draw_seed,
                            PerturbationRealization &out) const
{
    Rng rng(draw_seed);
    out.layers.resize(layer_hops_.size());
    for (std::size_t i = 0; i < layer_hops_.size(); ++i) {
        LayerPerturbation &layer = out.layers[i];
        const Propagator *prop = layer_hops_[i];
        if (!prop) {
            layer.clear();
            continue;
        }
        sampleHop(rng, *prop, layer.hop);
        layer.has_noise = spec_.phase_sigma > 0.0;
        if (layer.has_noise) {
            const std::size_t n = prop->config().grid.n;
            ensureFieldShape(layer.noise, n, n);
            ensureFieldShape(layer.noise_conj, n, n);
            for (std::size_t u = 0; u < layer.noise.size(); ++u) {
                const Real eps = rng.normal(0.0, spec_.phase_sigma);
                const Complex phasor = std::polar<Real>(1.0, eps);
                layer.noise[u] = phasor;
                layer.noise_conj[u] = std::conj(phasor);
            }
        }
    }
    if (final_hop_)
        sampleHop(rng, *final_hop_, out.final_hop);
    else
        out.final_hop.clear();
}

} // namespace lightridge
