#include "optics/laser.hpp"

#include <cmath>

namespace lightridge {

namespace {

/** Series evaluation of the Bessel function J0 (Abramowitz & Stegun 9.4). */
Real
besselJ0(Real x)
{
    Real ax = std::abs(x);
    if (ax < 8.0) {
        // Rational minimax approximation (Numerical-Recipes-style).
        Real y = x * x;
        Real p1 = 57568490574.0 + y * (-13362590354.0 + y * (651619640.7 +
                  y * (-11214424.18 + y * (77392.33017 +
                  y * (-184.9052456)))));
        Real p2 = 57568490411.0 + y * (1029532985.0 + y * (9494680.718 +
                  y * (59272.64853 + y * (267.8532712 + y))));
        return p1 / p2;
    }
    Real z = 8.0 / ax;
    Real y = z * z;
    Real xx = ax - 0.785398164;
    Real p1 = 1.0 + y * (-0.1098628627e-2 + y * (0.2734510407e-4 +
              y * (-0.2073370639e-5 + y * 0.2093887211e-6)));
    Real p2 = -0.1562499995e-1 + y * (0.1430488765e-3 +
              y * (-0.6911147651e-5 + y * (0.7621095161e-6 -
              y * 0.934935152e-7)));
    return std::sqrt(0.636619772 / ax) *
           (std::cos(xx) * p1 - z * std::sin(xx) * p2);
}

} // namespace

Field
sourceProfile(const Laser &laser, const Grid &grid)
{
    Field out(grid.n, grid.n, Complex{1, 0});
    switch (laser.profile) {
      case BeamProfile::Plane:
        return out;
      case BeamProfile::Gaussian: {
        Real w0 = laser.waist > 0 ? laser.waist : grid.aperture() / 4;
        for (std::size_t r = 0; r < grid.n; ++r) {
            Real y = grid.coord(r);
            for (std::size_t c = 0; c < grid.n; ++c) {
                Real x = grid.coord(c);
                Real a = std::exp(-(x * x + y * y) / (w0 * w0));
                out(r, c) = Complex{a, 0};
            }
        }
        return out;
      }
      case BeamProfile::Bessel: {
        // Transverse wave number chosen so the central lobe spans a
        // configurable fraction of the aperture.
        Real kr = 2.405 / (laser.bessel_cone * grid.aperture() / 2);
        for (std::size_t r = 0; r < grid.n; ++r) {
            Real y = grid.coord(r);
            for (std::size_t c = 0; c < grid.n; ++c) {
                Real x = grid.coord(c);
                Real rho = std::sqrt(x * x + y * y);
                out(r, c) = Complex{besselJ0(kr * rho), 0};
            }
        }
        return out;
      }
    }
    return out;
}

Real
gaussianBeamRadius(Real w0, Real wavelength, Real z)
{
    Real zr = kPi * w0 * w0 / wavelength;
    return w0 * std::sqrt(1.0 + (z / zr) * (z / zr));
}

Field
encodeInput(const RealMap &image, const Laser &laser, const Grid &grid)
{
    Field profile = sourceProfile(laser, grid);
    Field out(grid.n, grid.n);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = profile[i] * Complex{image[i], 0};
    return out;
}

} // namespace lightridge
