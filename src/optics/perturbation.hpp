/**
 * @file
 * Fabrication/alignment error model for misalignment-vaccinated training.
 *
 * Physical D2NNs degrade sharply under assembly error: a layer mounted a
 * few pixels off-axis, an inter-plane distance off by a fraction of a
 * millimetre, or phase-mask fabrication noise can erase most of the
 * simulated accuracy. Mengu et al. (arXiv:2005.11464) show that training
 * *with* modeled misalignment ("vaccination") recovers it, and Soshnikov
 * et al. (arXiv:2407.16456) extend the idea to transverse-shift-tolerant
 * designs.
 *
 * This header declares the three error axes and how one sampled
 * realization is represented so the optics hot path can apply it with
 * zero steady-state allocations:
 *
 *  - lateral shift (dx, dy): a frequency-domain linear phase ramp,
 *    exp(-j 2 pi (fx dx + fy dy)), fused into the existing
 *    pad -> FFT2 -> Hadamard -> iFFT2 pipeline as a separable
 *    row/column phasor product (Fourier shift theorem);
 *  - axial jitter (dz): the transfer function at z + dz, acquired through
 *    the process-wide kernel LRU with dz quantized to a small set of
 *    levels so the cache stays warm;
 *  - phase noise (sigma): an additive per-unit phase screen folded into
 *    the layer's modulation as a precomputed exp(+/- j eps) phasor pair.
 *
 * All three are exact linear operators with exact adjoints (conjugate
 * ramp / conjugate kernel / conjugate phasor), so vaccination trains with
 * FD-checked gradients.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/field.hpp"
#include "utils/json.hpp"
#include "utils/rng.hpp"
#include "utils/types.hpp"

namespace lightridge {

class Propagator;

/** One scalar error distribution declared in the spec. */
struct ErrorDist
{
    enum class Kind
    {
        None,     ///< axis disabled
        Uniform,  ///< uniform in [-scale, scale]
        Gaussian, ///< normal with stddev = scale
    };

    Kind kind = Kind::None;
    Real scale = 0.0; ///< half-width (uniform) or stddev (gaussian), in
                      ///< the axis' physical unit (metres / radians)

    bool enabled() const { return kind != Kind::None && scale > 0.0; }

    /** Draw one value (0 when disabled). */
    Real sample(Rng &rng) const;

    /**
     * Largest magnitude the axis is allowed to reach: scale for uniform,
     * 3*scale for gaussian (draws are clamped to the bound where a hard
     * limit matters, e.g. axial quantization).
     */
    Real bound() const;

    Json toJson() const;
    /** Strict parse of a {"dist": ..., "scale": ...} block. */
    static ErrorDist fromJson(const Json &j, const std::string &where);
};

/**
 * Spec-declared misalignment model: which error axes are active and how
 * large each is. Parsed strictly from the "perturbation" block of an
 * ExperimentSpec (unknown keys throw JsonError).
 */
struct PerturbationSpec
{
    /** Master switch; a disabled spec is a bitwise no-op in training. */
    bool enabled = true;
    /** Per-hop lateral shift [m]; dx and dy drawn independently. */
    ErrorDist lateral;
    /** Per-hop axial distance jitter [m], quantized to axial_levels. */
    ErrorDist axial;
    /**
     * Number of discrete dz levels across [-bound, bound]. Quantization
     * keeps the perturbed-kernel working set bounded so the
     * transfer-function LRU serves every steady-state draw from cache.
     */
    std::size_t axial_levels = 9;
    /** Per-unit phase-screen noise stddev [rad] on every layer. */
    Real phase_sigma = 0.0;

    /** True when enabled and at least one axis is active. */
    bool active() const;

    /** Snap a drawn dz to the nearest quantization level. */
    Real quantizeAxial(Real dz) const;

    /** All quantization levels ({0} when the axial axis is disabled). */
    std::vector<Real> axialLevels() const;

    Json toJson() const;
    static PerturbationSpec fromJson(const Json &j);
};

/**
 * One sampled realization of the error on a single free-space hop, in
 * the precomputed form the propagator consumes. Storage is reused draw
 * to draw: the ramp vectors keep their capacity and the kernel handle is
 * a shared_ptr into the transfer-function LRU, so refreshing a
 * realization allocates no Fields in steady state.
 */
struct HopPerturbation
{
    /** Applied lateral shift [m] (reporting; the ramps encode it). */
    Real dx = 0.0;
    Real dy = 0.0;
    /** Applied (quantized) axial jitter [m]. */
    Real dz = 0.0;

    bool has_shift = false;
    /** Separable frequency-domain shift phasors at the padded size:
     *  spectrum[r][c] *= ramp_row[r] * ramp_col[c]. */
    std::vector<Complex> ramp_row;
    std::vector<Complex> ramp_col;

    /** Transfer function at z + dz (null = nominal kernel). */
    std::shared_ptr<const Field> kernel;

    bool any() const { return has_shift || kernel != nullptr; }
    void clear();
};

/** Sampled error state of one modulation layer (its input hop plus an
 *  optional phase screen over the layer's units). */
struct LayerPerturbation
{
    HopPerturbation hop;

    bool has_noise = false;
    Field noise;      ///< exp(+j eps) per unit
    Field noise_conj; ///< exp(-j eps) per unit

    bool any() const { return has_noise || hop.any(); }
    void clear();
};

/** One full per-batch realization across the model: one entry per
 *  top-level layer plus the final layer->detector hop. */
struct PerturbationRealization
{
    std::vector<LayerPerturbation> layers;
    HopPerturbation final_hop;

    bool any() const;
    void clear();
};

/**
 * Precompute one hop's realization: the perturbed-distance kernel via the
 * transfer-function LRU and the separable shift ramps at the propagator's
 * padded size. dz is clamped so the perturbed distance stays positive.
 * Throws for Fraunhofer propagators (no convolution kernel to perturb).
 */
void fillHopPerturbation(const Propagator &prop, Real dx, Real dy, Real dz,
                         HopPerturbation &out);

/**
 * Draws per-batch perturbation realizations for a fixed model geometry.
 *
 * The sampler is constructed once per task from the model's hop
 * propagators (nullptr entries mark non-optical layer slots, e.g.
 * layer norms, which take no perturbation). sample() is a pure function
 * of the draw seed: the Session derives one seed per (seed, epoch,
 * batch) so every worker count sees the identical error sequence.
 */
class PerturbationSampler
{
  public:
    PerturbationSampler(PerturbationSpec spec,
                        std::vector<const Propagator *> layer_hops,
                        const Propagator *final_hop);

    const PerturbationSpec &spec() const { return spec_; }

    /**
     * Draw one realization into `out` (storage reused across calls).
     * Deterministic: equal seeds produce bitwise-equal realizations.
     */
    void sample(std::uint64_t draw_seed, PerturbationRealization &out) const;

  private:
    void sampleHop(Rng &rng, const Propagator &prop,
                   HopPerturbation &out) const;

    PerturbationSpec spec_;
    std::vector<const Propagator *> layer_hops_;
    const Propagator *final_hop_ = nullptr;
};

} // namespace lightridge
