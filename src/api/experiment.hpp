/**
 * @file
 * Declarative experiment front end (the paper's "agile design" DSL,
 * Figures 2-3, lifted to JSON).
 *
 * An ExperimentSpec captures one complete DONN workload — optical system,
 * model architecture, dataset, task kind, and training hyperparameters —
 * as a strict, versionable JSON document. runExperiment() executes a spec
 * end to end through the Task/Session engine and returns a structured
 * results report. Model architectures are described as a list of layer
 * specs resolved through the registry-based LayerFactory, so downstream
 * code (and tests) can plug in new layer kinds without touching the
 * parser.
 */
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/robustness.hpp"
#include "core/session.hpp"
#include "core/task.hpp"
#include "optics/perturbation.hpp"
#include "utils/json.hpp"

namespace lightridge {

/**
 * Registry of architecture layer builders keyed by the spec "kind"
 * string. Builders return the layers to append for one spec entry (a
 * single entry may expand to several stacked layers via "count").
 */
class LayerFactory
{
  public:
    /** Everything a builder may need to construct layers for a model. */
    struct Context
    {
        const DonnModel *model = nullptr; ///< for hop propagator + spec
        Rng *rng = nullptr;               ///< phase-initialization stream
    };

    using Builder =
        std::function<std::vector<LayerPtr>(const Json &, const Context &)>;

    /** Process-wide registry preloaded with the built-in kinds. */
    static LayerFactory &instance();

    /**
     * Register (or replace) a builder for a layer kind.
     * @param allowed_keys spec keys the kind accepts (always including
     *        "kind"); empty disables key checking for that kind
     */
    void registerKind(const std::string &kind, Builder builder,
                      std::vector<std::string> allowed_keys = {});

    bool has(const std::string &kind) const;

    /** Registered kind names (sorted). */
    std::vector<std::string> kinds() const;

    /**
     * Validate one spec entry without building: registered kind, no
     * unknown keys, recursing into skip interiors.
     * @throws JsonError on any violation
     */
    void validateSpec(const Json &layer_spec) const;

    /**
     * Build the layers for one spec entry (validates first).
     * @throws JsonError when the kind is missing or unregistered, or the
     *         entry carries unknown keys.
     */
    std::vector<LayerPtr> build(const Json &layer_spec,
                                const Context &context) const;

  private:
    struct Entry
    {
        Builder builder;
        std::vector<std::string> keys;
    };

    LayerFactory();
    std::map<std::string, Entry> builders_;
};

/** Dataset slice of an experiment (synthetic generators, seeded). */
struct DataSpec
{
    std::size_t train_samples = 300;
    std::size_t test_samples = 100;
    uint64_t seed = 1;
    std::size_t image_size = 0; ///< 0 = generator default
};

/**
 * Where training data comes from. The spec's "dataset" key accepts
 * either a plain string ("digits") — synthesized in memory, exactly as
 * before — or an object: {"kind": "sharded", "manifest": ".../
 * manifest.json", ...} trains out of core through the streaming
 * prefetcher (see data/stream.hpp). Streamed and preloaded training
 * over the same manifest are bitwise identical at any worker count.
 */
struct DatasetSourceSpec
{
    std::string kind = "synth"; ///< synth|sharded

    /** Train-split manifest path (sharded only). */
    std::string manifest;

    /** Held-out split manifest; empty trains without evaluation. */
    std::string test_manifest;

    /** Shards of decode lookahead (sharded only; 0 = synchronous). */
    std::size_t prefetch = 1;

    /**
     * Materialize the whole train split in memory instead of streaming,
     * keeping the manifest's shard layout so the epoch order — and
     * therefore training — matches the streamed run bitwise. The
     * parity-check mode.
     */
    bool preload = false;
};

/** Detector geometry of an experiment. */
struct DetectorSpec
{
    std::size_t classes = 0;  ///< 0 = dataset's class count
    std::size_t det_size = 0; ///< 0 = system_size / 10 heuristic

    /**
     * Readout mode: "intensity" (paper default) or "differential"
     * (paired positive/negative regions with normalized difference
     * logits, Li et al., arXiv:1906.03417).
     */
    std::string mode = "intensity";
};

/**
 * One complete, declarative DONN experiment. All fields have defaults;
 * fromJson() is strict (unknown keys are errors) so typos in spec files
 * fail loudly instead of silently training the wrong thing.
 */
struct ExperimentSpec
{
    /** Declarative default: distance auto-resolves via half-cone rule. */
    ExperimentSpec() { system.distance = 0; }

    std::string name = "experiment";
    std::string task = "classification"; ///< classification|segmentation|rgb
    std::string dataset = "digits";      ///< digits|fashion|city|scenes
    DatasetSourceSpec source;            ///< synth (default) or sharded
    DataSpec data;
    SystemSpec system;      ///< distance <= 0 resolves to half-cone ideal
    Real wavelength = 532e-9;
    uint64_t model_seed = 7;
    Json layers;            ///< array of layer specs (LayerFactory kinds)
    DetectorSpec detector;
    TrainConfig train;

    /**
     * Misalignment-vaccinated training: per-batch fabrication/alignment
     * errors injected into every free-space hop during training (lateral
     * shift, axial jitter, phase noise). Defaults to inactive — specs
     * without a "perturbation" block train exactly as before.
     */
    PerturbationSpec perturbation;

    /** Serialize (enums as strings, layers verbatim). */
    Json toJson() const;

    /**
     * Strict parse: unknown keys anywhere in the spec, unregistered layer
     * kinds, and bad enum strings all throw JsonError.
     */
    static ExperimentSpec fromJson(const Json &j);

    /** Load + parse a spec file. */
    static ExperimentSpec load(const std::string &path);

    /** System spec with distance resolved (half-cone rule when <= 0). */
    SystemSpec resolvedSystem() const;
};

/** Results of one executed experiment. */
struct ExperimentResult
{
    std::string name;
    std::string task;
    std::vector<EpochStats> history;
    TaskMetrics final_metrics;
    Real secondary = 0;         ///< task extra (segmentation: MSE)
    std::size_t num_classes = 0; ///< 0 for non-classification tasks
    double seconds = 0;

    /**
     * Execution mode the run actually used (bench artifacts need the
     * mode on record, not just the request): workers resolved per the
     * Session rule (0 -> pool size, clamped by batch/train size).
     */
    std::size_t workers_used = 1;
    std::size_t workers_requested = 0;
    bool pipeline = false;
    std::size_t hw_threads = 0;

    /**
     * Resolved data source the run trained from ("memory" covers synth
     * and preloaded manifests; "sharded" streamed off disk), with its
     * shard layout, prefetch depth, and total shard payload bytes
     * decoded during training.
     */
    std::string data_source = "memory";
    std::size_t data_shards = 1;
    std::size_t data_prefetch = 0;
    std::uint64_t data_bytes_read = 0;

    /**
     * Post-training accuracy-vs-error sweep (when requested); empty
     * points otherwise. Serialized as the report's "robustness" block.
     */
    RobustnessReport robustness;
    bool has_robustness = false;

    /** Full JSON report (spec echo + per-epoch stats + final metrics +
     *  execution block + optional robustness block). */
    Json report(const ExperimentSpec &spec) const;
};

/** TrainConfig <-> JSON (strict; loss kind as string). */
Json trainConfigToJson(const TrainConfig &config);
TrainConfig trainConfigFromJson(const Json &j);

/**
 * Build the single-stack model an experiment describes (layers through
 * the factory, detector per spec). Used for classification and
 * segmentation tasks; RGB builds one stack per channel.
 * @param num_classes detector class count after dataset defaulting
 */
DonnModel buildSpecModel(const ExperimentSpec &spec, std::size_t num_classes,
                         Rng *rng);

/**
 * Execute a spec end to end: synthesize data, build the model(s) and
 * task, train through a Session, and reduce final metrics.
 * @param epoch_callback optional per-epoch hook (progress reporting)
 * @param save_model_path when non-empty, the trained primary model is
 *        checkpointed here after training (the serving onboarding path:
 *        train with lightridge_run, register the checkpoint with
 *        lightridge_serve)
 * @param robustness_sweep when non-null, run an accuracy-vs-error sweep
 *        on the trained model over the test set (classification only;
 *        throws JsonError for other tasks)
 */
ExperimentResult
runExperiment(const ExperimentSpec &spec,
              const Session::Callback &epoch_callback = nullptr,
              const std::string &save_model_path = "",
              const RobustnessSweepConfig *robustness_sweep = nullptr);

} // namespace lightridge
