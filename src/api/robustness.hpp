/**
 * @file
 * Robustness scenario engine: accuracy-vs-error sweeps for trained DONNs.
 *
 * A deployed D2NN never sees its nominal geometry: layers sit laterally
 * off-axis, inter-plane distances drift, phase masks carry fabrication
 * noise, and detectors read out with shot noise. robustnessSweep()
 * measures a trained model's accuracy across a deterministic grid of
 * those errors — one curve per axis — reusing the same HopPerturbation
 * machinery that misalignment-vaccinated training injects per batch, so
 * the sweep measures exactly the error model training can vaccinate
 * against. The resulting RobustnessReport serializes to JSON for bench
 * artifacts, the lightridge_run results block, and the CI gates that
 * check vaccinated >= unvaccinated accuracy under misalignment.
 */
#pragma once

#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "core/model.hpp"
#include "utils/json.hpp"

namespace lightridge {

/**
 * Error grid for one sweep. Values are physical units: lateral/axial in
 * metres, phase in radians, detector noise as an intensity fraction.
 * Empty axes are skipped. Every lateral/axial value is applied to every
 * free-space hop simultaneously (worst-case coherent stack-up: each
 * plane offset by the value from its predecessor).
 */
struct RobustnessSweepConfig
{
    std::vector<Real> lateral_shifts; ///< per-hop lateral offset [m]
    std::vector<Real> axial_shifts;   ///< per-hop distance error [m]
    std::vector<Real> phase_sigmas;   ///< phase-screen stddev [rad]
    std::vector<Real> detector_noise; ///< detector noise fraction
    uint64_t seed = 7; ///< phase-screen / detector-noise draw seed

    /**
     * Default grid scaled to a system's geometry: lateral up to two
     * diffraction units, axial up to 5% of the hop distance, phase up to
     * 0.5 rad, detector noise up to 5% (the Fig. 7 levels).
     */
    static RobustnessSweepConfig defaults(const SystemSpec &system);
};

/** One measured point of a robustness curve. */
struct RobustnessPoint
{
    std::string axis; ///< "lateral" | "axial" | "phase" | "detector"
    Real value = 0;   ///< applied error (physical units)
    Real accuracy = 0;
};

/** Accuracy-vs-error curves of one model over one test set. */
struct RobustnessReport
{
    Real clean_accuracy = 0;
    std::vector<RobustnessPoint> points;

    /** Accuracy at the grid point of `axis` nearest to `value`. */
    Real accuracyAt(const std::string &axis, Real value) const;

    /** Mean accuracy over an axis' curve (0 when the axis is empty). */
    Real meanAccuracy(const std::string &axis) const;

    /** Minimum accuracy over an axis' curve (0 when empty). */
    Real worstAccuracy(const std::string &axis) const;

    /** {"clean_accuracy":..., "curves": {axis: [{value, accuracy}...]}} */
    Json toJson() const;
};

/**
 * Measure a trained model's accuracy across the config's error grids.
 * Deterministic: fixed (model, test, config) always produces the same
 * report, and the model is restored to its unperturbed state afterwards.
 * @throws std::logic_error for Fraunhofer models (no convolution kernel
 *         to perturb) when a lateral or axial axis is non-empty
 */
RobustnessReport robustnessSweep(DonnModel &model, const ClassDataset &test,
                                 const RobustnessSweepConfig &config);

} // namespace lightridge
