/**
 * @file
 * lightridge_run: execute a declarative JSON experiment spec end to end
 * and emit a JSON results report.
 *
 *   lightridge_run spec.json [--out=results.json] [--dump-spec]
 *                            [--workers=N] [--quiet]
 *
 * The spec format is documented in api/experiment.hpp (see
 * examples/specs/ for runnable samples). Exit codes: 0 success,
 * 1 usage error, 2 spec/parse error.
 */
#include <cstdio>
#include <string>

#include "api/experiment.hpp"
#include "utils/cli.hpp"

using namespace lightridge;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: lightridge_run <spec.json> [--out=results.json]\n"
        "                      [--dump-spec] [--workers=N] [--quiet]\n"
        "\n"
        "Executes a declarative DONN experiment spec (task: "
        "classification,\nsegmentation, or rgb) through the Task/Session "
        "engine and writes a\nJSON results report.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || argv[1][0] == '-') {
        usage();
        return 1;
    }
    const std::string spec_path = argv[1];
    CliArgs args(argc, argv);

    ExperimentSpec spec;
    try {
        spec = ExperimentSpec::load(spec_path);
    } catch (const JsonError &e) {
        std::fprintf(stderr, "lightridge_run: bad spec %s: %s\n",
                     spec_path.c_str(), e.what());
        return 2;
    }

    if (args.has("workers"))
        spec.train.workers =
            static_cast<std::size_t>(args.getInt("workers", 0));
    const bool quiet = args.getBool("quiet", false);

    if (args.has("dump-spec")) {
        std::printf("%s\n", spec.toJson().pretty().c_str());
        return 0;
    }

    std::printf("[lightridge_run] %s: task=%s dataset=%s size=%zu "
                "epochs=%d workers=%zu\n",
                spec.name.c_str(), spec.task.c_str(), spec.dataset.c_str(),
                spec.system.size, spec.train.epochs, spec.train.workers);

    Session::Callback progress;
    if (!quiet) {
        progress = [](const EpochStats &stats, Session &session) {
            std::printf("[epoch %d] loss=%.5f train_acc=%.3f test=%.3f "
                        "top3=%.3f (%.2fs)\n",
                        stats.epoch, stats.train_loss, stats.train_acc,
                        stats.test_acc, stats.test_top3, stats.seconds);
            (void)session;
            return true;
        };
    }

    ExperimentResult result;
    try {
        result = runExperiment(spec, progress);
    } catch (const JsonError &e) {
        std::fprintf(stderr, "lightridge_run: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "lightridge_run: %s\n", e.what());
        return 2;
    }

    Json report = result.report(spec);
    const std::string out =
        args.getString("out", spec.name + "_results.json");
    if (!report.save(out)) {
        std::fprintf(stderr, "lightridge_run: cannot write %s\n",
                     out.c_str());
        return 2;
    }

    if (spec.task == "segmentation") {
        std::printf("[done] iou=%.3f mse=%.4f (%.1fs) -> %s\n",
                    result.final_metrics.primary, result.secondary,
                    result.seconds, out.c_str());
    } else {
        std::printf("[done] accuracy=%.3f top3=%.3f chance=%.3f (%.1fs) "
                    "-> %s\n",
                    result.final_metrics.primary, result.final_metrics.top3,
                    result.num_classes > 0
                        ? 1.0 / static_cast<double>(result.num_classes)
                        : 0.0,
                    result.seconds, out.c_str());
    }
    return 0;
}
