/**
 * @file
 * lightridge_run: execute declarative JSON experiment specs end to end
 * and emit JSON results reports.
 *
 *   lightridge_run <spec.json> [spec2.json ...]
 *                  [--out=results.json] [--out-dir=DIR]
 *                  [--save-model=ckpt.json] [--dump-spec]
 *                  [--workers=N] [--quiet] [--robustness-sweep]
 *
 * Single-spec runs behave as before (--out names the report). Passing
 * several specs (listed before any flags) enters batch mode: the specs
 * run back to back in one process, so the process-wide FFT-plan and
 * transfer-function caches are shared across every experiment, and each
 * report lands in --out-dir (default ".") as <name>_results.json.
 * --save-model checkpoints the trained model (single-spec only) — the
 * handoff point to lightridge_serve. --robustness-sweep additionally
 * measures the trained model's accuracy-vs-misalignment curves (lateral,
 * axial, phase, detector noise; grid scaled to the system geometry) and
 * adds them to the report's "robustness" block (classification only).
 *
 * The spec format is documented in api/experiment.hpp (see
 * examples/specs/ for runnable samples). A spec's "dataset" key may be
 * an object ({"kind": "sharded", "manifest": ...}) to train out of core
 * from a sharded on-disk dataset written by lightridge_data; manifest
 * validation failures (missing shard, checksum mismatch, future format
 * version) exit 2 naming the offending shard. Exit codes: 0 success,
 * 1 usage error, 2 spec/parse/run error.
 */
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "utils/cli.hpp"

using namespace lightridge;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: lightridge_run <spec.json> [spec2.json ...]\n"
        "                      [--out=results.json] [--out-dir=DIR]\n"
        "                      [--save-model=ckpt.json] [--dump-spec]\n"
        "                      [--workers=N] [--quiet]\n"
        "                      [--robustness-sweep]\n"
        "\n"
        "Executes declarative DONN experiment specs (task: "
        "classification,\nsegmentation, or rgb) through the Task/Session "
        "engine and writes\nJSON results reports. Several specs run in "
        "one process sharing\nthe propagation caches (batch mode).\n"
        "--robustness-sweep adds accuracy-vs-misalignment curves to the\n"
        "report (classification specs only).\n");
}

/** Run one spec: train, report, optionally checkpoint. 0 on success. */
int
runOne(const ExperimentSpec &spec, const std::string &out_path,
       const std::string &save_model, bool quiet, bool sweep)
{
    std::printf("[lightridge_run] %s: task=%s dataset=%s size=%zu "
                "epochs=%d workers=%zu%s\n",
                spec.name.c_str(), spec.task.c_str(), spec.dataset.c_str(),
                spec.system.size, spec.train.epochs, spec.train.workers,
                spec.train.pipeline ? " pipeline" : "");

    Session::Callback progress;
    if (!quiet) {
        progress = [](const EpochStats &stats, Session &session) {
            std::printf("[epoch %d] loss=%.5f train_acc=%.3f test=%.3f "
                        "top3=%.3f (%.2fs)\n",
                        stats.epoch, stats.train_loss, stats.train_acc,
                        stats.test_acc, stats.test_top3, stats.seconds);
            (void)session;
            return true;
        };
    }

    ExperimentResult result;
    try {
        RobustnessSweepConfig sweep_config;
        if (sweep)
            sweep_config =
                RobustnessSweepConfig::defaults(spec.resolvedSystem());
        result = runExperiment(spec, progress, save_model,
                               sweep ? &sweep_config : nullptr);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "lightridge_run: %s: %s\n", spec.name.c_str(),
                     e.what());
        return 2;
    }

    Json report = result.report(spec);
    if (!report.save(out_path)) {
        std::fprintf(stderr, "lightridge_run: cannot write %s\n",
                     out_path.c_str());
        return 2;
    }

    if (spec.task == "segmentation") {
        std::printf("[done] iou=%.3f mse=%.4f workers=%zu (%.1fs) -> %s\n",
                    result.final_metrics.primary, result.secondary,
                    result.workers_used, result.seconds, out_path.c_str());
    } else {
        std::printf("[done] accuracy=%.3f top3=%.3f chance=%.3f "
                    "workers=%zu (%.1fs) -> %s\n",
                    result.final_metrics.primary, result.final_metrics.top3,
                    result.num_classes > 0
                        ? 1.0 / static_cast<double>(result.num_classes)
                        : 0.0,
                    result.workers_used, result.seconds, out_path.c_str());
    }
    if (sweep) {
        std::printf("[robustness] clean=%.3f lateral(worst)=%.3f "
                    "axial(worst)=%.3f phase(worst)=%.3f "
                    "detector(worst)=%.3f\n",
                    result.robustness.clean_accuracy,
                    result.robustness.worstAccuracy("lateral"),
                    result.robustness.worstAccuracy("axial"),
                    result.robustness.worstAccuracy("phase"),
                    result.robustness.worstAccuracy("detector"));
    }
    if (!save_model.empty())
        std::printf("[model] -> %s\n", save_model.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Spec paths are the leading positional arguments (before any flag).
    std::vector<std::string> spec_paths;
    int i = 1;
    while (i < argc && argv[i][0] != '-')
        spec_paths.push_back(argv[i++]);
    if (spec_paths.empty()) {
        usage();
        return 1;
    }
    // Reject bare tokens after the flag region: CliArgs would either
    // drop them or swallow them as a "--key value" flag value, and a
    // batch run would quietly skip those specs (e.g. "--quiet b.json"
    // eats b.json). Flags therefore use the --key=value form here.
    for (int j = i; j < argc; ++j) {
        if (std::strncmp(argv[j], "--", 2) == 0)
            continue;
        std::fprintf(stderr,
                     "lightridge_run: unexpected argument \"%s\" after "
                     "flags (list every spec file before any flag, and "
                     "write flags as --key=value)\n",
                     argv[j]);
        return 1;
    }
    CliArgs args(argc, argv);

    std::vector<ExperimentSpec> specs;
    for (const std::string &path : spec_paths) {
        try {
            specs.push_back(ExperimentSpec::load(path));
        } catch (const JsonError &e) {
            std::fprintf(stderr, "lightridge_run: bad spec %s: %s\n",
                         path.c_str(), e.what());
            return 2;
        }
    }

    if (args.has("workers"))
        for (ExperimentSpec &spec : specs)
            spec.train.workers =
                static_cast<std::size_t>(args.getInt("workers", 0));
    const bool quiet = args.getBool("quiet", false);
    const bool sweep = args.getBool("robustness-sweep", false);

    if (args.has("dump-spec")) {
        for (const ExperimentSpec &spec : specs)
            std::printf("%s\n", spec.toJson().pretty().c_str());
        return 0;
    }

    const std::string save_model = args.getString("save-model", "");
    if (!save_model.empty() && specs.size() > 1) {
        std::fprintf(stderr, "lightridge_run: --save-model needs a single "
                             "spec\n");
        return 1;
    }
    if (args.has("out") && specs.size() > 1) {
        std::fprintf(stderr, "lightridge_run: --out needs a single spec; "
                             "use --out-dir for batch runs\n");
        return 1;
    }

    // Batch-mode report paths derive from spec names; duplicate names
    // (the same spec swept at several settings) get an index suffix so
    // no report clobbers another.
    const std::string out_dir = args.getString("out-dir", ".");
    std::map<std::string, int> name_uses;
    for (const ExperimentSpec &spec : specs)
        ++name_uses[spec.name];
    std::map<std::string, int> name_seen;
    int failures = 0;
    for (std::size_t s = 0; s < specs.size(); ++s) {
        std::string stem = specs[s].name;
        if (specs.size() > 1 && name_uses[stem] > 1) {
            stem.push_back('_');
            stem.append(std::to_string(++name_seen[specs[s].name]));
        }
        std::string out_path =
            specs.size() == 1
                ? args.getString("out", stem + "_results.json")
                : out_dir + "/" + stem + "_results.json";
        failures +=
            runOne(specs[s], out_path, save_model, quiet, sweep) != 0;
    }

    if (specs.size() > 1)
        std::printf("[batch] %zu specs, %d failed (shared propagation "
                    "caches)\n",
                    specs.size(), failures);
    return failures == 0 ? 0 : 2;
}
