#include "api/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include <memory>

#include "core/layer_norm.hpp"
#include "core/skip.hpp"
#include "data/shard.hpp"
#include "data/stream.hpp"
#include "data/synth_city.hpp"
#include "data/synth_digits.hpp"
#include "data/synth_fashion.hpp"
#include "data/synth_scenes.hpp"
#include "utils/log.hpp"
#include "utils/thread_pool.hpp"
#include "utils/timer.hpp"

namespace lightridge {

namespace {

/** Strictness helper: every object key must be in the allowed set. */
template <typename Keys>
void
expectKeysIn(const Json &j, const Keys &allowed, const std::string &where)
{
    for (const auto &entry : j.asObject()) {
        bool known = false;
        for (const auto &key : allowed)
            known = known || entry.first == key;
        if (!known)
            throw JsonError("unknown key in " + where + ": " + entry.first);
    }
}

void
expectKeys(const Json &j, std::initializer_list<const char *> allowed,
           const std::string &where)
{
    expectKeysIn(j, allowed, where);
}

std::size_t
sizeOr(const Json &j, const std::string &key, std::size_t fallback)
{
    return j.has(key) ? static_cast<std::size_t>(j.at(key).asNumber())
                      : fallback;
}

// ---- enum <-> string maps ------------------------------------------------

const char *
approxTag(Diffraction d)
{
    switch (d) {
    case Diffraction::Fresnel:
        return "fresnel";
    case Diffraction::Fraunhofer:
        return "fraunhofer";
    default:
        return "rayleigh_sommerfeld";
    }
}

Diffraction
approxFromTag(const std::string &name)
{
    if (name == "rayleigh_sommerfeld")
        return Diffraction::RayleighSommerfeld;
    if (name == "fresnel")
        return Diffraction::Fresnel;
    if (name == "fraunhofer")
        return Diffraction::Fraunhofer;
    throw JsonError("unknown diffraction approximation: " + name);
}

const char *
methodName(PropagationMethod m)
{
    return m == PropagationMethod::ImpulseResponse ? "impulse_response"
                                                   : "transfer_function";
}

PropagationMethod
methodFromName(const std::string &name)
{
    if (name == "transfer_function")
        return PropagationMethod::TransferFunction;
    if (name == "impulse_response")
        return PropagationMethod::ImpulseResponse;
    throw JsonError("unknown propagation method: " + name);
}

const char *
lossName(LossKind loss)
{
    return loss == LossKind::CrossEntropy ? "cross_entropy" : "softmax_mse";
}

LossKind
lossFromName(const std::string &name)
{
    if (name == "softmax_mse")
        return LossKind::SoftmaxMse;
    if (name == "cross_entropy")
        return LossKind::CrossEntropy;
    throw JsonError("unknown loss kind: " + name);
}

/** Validate a layer-spec array against the factory (strict, recursive). */
void
validateLayerSpecs(const Json &layers)
{
    for (const Json &layer : layers.asArray())
        LayerFactory::instance().validateSpec(layer);
}

/**
 * Free-space hops a spec entry contributes to the through-path:
 * diffractive/codesign layers carry one hop each (times "count"),
 * layernorm carries none, and a skip block spans its interior's hops.
 * Unknown custom kinds are assumed to carry one hop per entry.
 */
std::size_t
specHops(const Json &layer_spec)
{
    const std::string &kind = layer_spec.at("kind").asString();
    if (kind == "layernorm")
        return 0;
    if (kind == "skip") {
        std::size_t hops = 0;
        for (const Json &inner : layer_spec.at("inner").asArray())
            hops += specHops(inner);
        return hops;
    }
    return sizeOr(layer_spec, "count", 1);
}

} // namespace

// --------------------------------------------------------------------------
// LayerFactory
// --------------------------------------------------------------------------

LayerFactory::LayerFactory()
{
    registerKind(
        "diffractive",
        [](const Json &j, const Context &ctx) {
            const std::size_t count = sizeOr(j, "count", 1);
            const Real gamma = j.numberOr("gamma", 1.0);
            std::vector<LayerPtr> layers;
            for (std::size_t i = 0; i < count; ++i)
                layers.push_back(std::make_unique<DiffractiveLayer>(
                    ctx.model->hopPropagator(), gamma, ctx.rng));
            return layers;
        },
        {"kind", "count", "gamma"});

    registerKind(
        "codesign",
        [](const Json &j, const Context &ctx) {
            const std::size_t count = sizeOr(j, "count", 1);
            const std::size_t levels = sizeOr(j, "levels", 16);
            const Real tau = j.numberOr("tau", 1.0);
            const Real gamma = j.numberOr("gamma", 1.0);
            DeviceLut lut = DeviceLut::idealPhase(levels);
            std::vector<LayerPtr> layers;
            for (std::size_t i = 0; i < count; ++i)
                layers.push_back(std::make_unique<CodesignLayer>(
                    ctx.model->hopPropagator(), lut, tau, gamma, ctx.rng));
            return layers;
        },
        {"kind", "count", "levels", "tau", "gamma"});

    registerKind(
        "layernorm",
        [](const Json &j, const Context &) {
            std::vector<LayerPtr> layers;
            layers.push_back(std::make_unique<LayerNormLayer>(
                j.numberOr("eps", 1e-12),
                j.has("subtract_mean") && j.at("subtract_mean").asBool()));
            return layers;
        },
        {"kind", "eps", "subtract_mean"});

    registerKind(
        "skip",
        [](const Json &j, const Context &ctx) {
            if (!j.has("inner"))
                throw JsonError("skip layer spec requires \"inner\"");
            // Shortcut path spans the inner block's total optical path:
            // count free-space hops, not layer entries (layernorm has no
            // propagator; nested skips span their own interiors).
            const std::size_t hops = specHops(j);
            std::vector<LayerPtr> inner;
            for (const Json &inner_spec : j.at("inner").asArray())
                for (LayerPtr &layer :
                     LayerFactory::instance().build(inner_spec, ctx))
                    inner.push_back(std::move(layer));
            PropagatorConfig sc = ctx.model->hopPropagator()->config();
            sc.distance *=
                static_cast<Real>(std::max<std::size_t>(hops, 1));
            std::vector<LayerPtr> layers;
            layers.push_back(std::make_unique<OpticalSkipLayer>(
                std::move(inner), std::make_shared<Propagator>(sc)));
            return layers;
        },
        {"kind", "inner"});
}

LayerFactory &
LayerFactory::instance()
{
    static LayerFactory factory;
    return factory;
}

void
LayerFactory::registerKind(const std::string &kind, Builder builder,
                           std::vector<std::string> allowed_keys)
{
    builders_[kind] = Entry{std::move(builder), std::move(allowed_keys)};
}

bool
LayerFactory::has(const std::string &kind) const
{
    return builders_.count(kind) > 0;
}

std::vector<std::string>
LayerFactory::kinds() const
{
    std::vector<std::string> names;
    names.reserve(builders_.size());
    for (const auto &entry : builders_)
        names.push_back(entry.first);
    return names;
}

void
LayerFactory::validateSpec(const Json &layer_spec) const
{
    if (!layer_spec.isObject() || !layer_spec.has("kind"))
        throw JsonError("layer spec without \"kind\"");
    const std::string &kind = layer_spec.at("kind").asString();
    auto it = builders_.find(kind);
    if (it == builders_.end())
        throw JsonError("unknown layer kind: " + kind);
    if (!it->second.keys.empty())
        expectKeysIn(layer_spec, it->second.keys, kind + " layer spec");
    if (kind == "skip" && layer_spec.has("inner"))
        for (const Json &inner : layer_spec.at("inner").asArray())
            validateSpec(inner);
}

std::vector<LayerPtr>
LayerFactory::build(const Json &layer_spec, const Context &context) const
{
    validateSpec(layer_spec);
    const std::string &kind = layer_spec.at("kind").asString();
    return builders_.at(kind).builder(layer_spec, context);
}

// --------------------------------------------------------------------------
// TrainConfig <-> JSON
// --------------------------------------------------------------------------

Json
trainConfigToJson(const TrainConfig &config)
{
    Json j;
    j["epochs"] = Json(config.epochs);
    j["batch"] = Json(config.batch);
    j["lr"] = Json(config.lr);
    j["loss"] = Json(lossName(config.loss));
    j["seed"] = Json(static_cast<std::size_t>(config.seed));
    j["shuffle"] = Json(config.shuffle);
    j["calibrate"] = Json(config.calibrate);
    j["calib_target"] = Json(config.calib_target);
    j["calib_probe"] = Json(config.calib_probe);
    j["gamma"] = Json(config.gamma);
    j["tau_start"] = Json(config.tau_start);
    j["tau_end"] = Json(config.tau_end);
    j["workers"] = Json(config.workers);
    j["pipeline"] = Json(config.pipeline);
    j["dev_eval_every_batches"] = Json(config.dev_eval_every_batches);
    j["verbose"] = Json(config.verbose);
    return j;
}

TrainConfig
trainConfigFromJson(const Json &j)
{
    expectKeys(j,
               {"epochs", "batch", "lr", "loss", "seed", "shuffle",
                "calibrate", "calib_target", "calib_probe", "gamma",
                "tau_start", "tau_end", "workers", "pipeline",
                "dev_eval_every_batches", "verbose"},
               "train config");
    TrainConfig config;
    config.epochs = static_cast<int>(j.numberOr("epochs", config.epochs));
    config.batch = sizeOr(j, "batch", config.batch);
    config.lr = j.numberOr("lr", config.lr);
    if (j.has("loss"))
        config.loss = lossFromName(j.at("loss").asString());
    config.seed = static_cast<uint64_t>(
        j.numberOr("seed", static_cast<double>(config.seed)));
    if (j.has("shuffle"))
        config.shuffle = j.at("shuffle").asBool();
    if (j.has("calibrate"))
        config.calibrate = j.at("calibrate").asBool();
    config.calib_target = j.numberOr("calib_target", config.calib_target);
    config.calib_probe = sizeOr(j, "calib_probe", config.calib_probe);
    config.gamma = j.numberOr("gamma", config.gamma);
    config.tau_start = j.numberOr("tau_start", config.tau_start);
    config.tau_end = j.numberOr("tau_end", config.tau_end);
    config.workers = sizeOr(j, "workers", config.workers);
    if (j.has("pipeline"))
        config.pipeline = j.at("pipeline").asBool();
    config.dev_eval_every_batches = sizeOr(j, "dev_eval_every_batches",
                                           config.dev_eval_every_batches);
    if (j.has("verbose"))
        config.verbose = j.at("verbose").asBool();
    return config;
}

// --------------------------------------------------------------------------
// ExperimentSpec
// --------------------------------------------------------------------------

Json
ExperimentSpec::toJson() const
{
    Json j;
    j["name"] = Json(name);
    j["task"] = Json(task);
    if (source.kind == "synth") {
        // The historical string form round-trips untouched.
        j["dataset"] = Json(dataset);
    } else {
        Json ds;
        ds["kind"] = Json(source.kind);
        ds["manifest"] = Json(source.manifest);
        if (!source.test_manifest.empty())
            ds["test_manifest"] = Json(source.test_manifest);
        ds["prefetch"] = Json(source.prefetch);
        if (source.preload)
            ds["preload"] = Json(true);
        j["dataset"] = std::move(ds);
    }

    Json dj;
    dj["train"] = Json(data.train_samples);
    dj["test"] = Json(data.test_samples);
    dj["seed"] = Json(static_cast<std::size_t>(data.seed));
    dj["image_size"] = Json(data.image_size);
    j["data"] = std::move(dj);

    Json sj;
    sj["size"] = Json(system.size);
    sj["pixel"] = Json(system.pixel);
    sj["distance"] = Json(system.distance);
    sj["approx"] = Json(approxTag(system.approx));
    sj["method"] = Json(methodName(system.method));
    sj["pad_factor"] = Json(system.pad_factor);
    j["system"] = std::move(sj);

    j["wavelength"] = Json(wavelength);
    j["model_seed"] = Json(static_cast<std::size_t>(model_seed));
    if (!layers.isNull())
        j["layers"] = layers;

    Json det;
    det["classes"] = Json(detector.classes);
    det["det_size"] = Json(detector.det_size);
    det["mode"] = Json(detector.mode);
    j["detector"] = std::move(det);

    j["train"] = trainConfigToJson(train);
    if (perturbation.active())
        j["perturbation"] = perturbation.toJson();
    return j;
}

ExperimentSpec
ExperimentSpec::fromJson(const Json &j)
{
    expectKeys(j,
               {"name", "task", "dataset", "data", "system", "wavelength",
                "model_seed", "layers", "detector", "train",
                "perturbation"},
               "experiment");
    ExperimentSpec spec;
    if (j.has("name"))
        spec.name = j.at("name").asString();
    if (j.has("task"))
        spec.task = j.at("task").asString();
    if (spec.task != "classification" && spec.task != "segmentation" &&
        spec.task != "rgb")
        throw JsonError("unknown task kind: " + spec.task);
    if (j.has("dataset") && j.at("dataset").isObject()) {
        const Json &ds = j.at("dataset");
        expectKeys(ds,
                   {"kind", "name", "manifest", "test_manifest", "prefetch",
                    "preload"},
                   "dataset");
        if (ds.has("kind"))
            spec.source.kind = ds.at("kind").asString();
        if (spec.source.kind == "sharded") {
            if (ds.has("name"))
                throw JsonError(
                    "dataset: \"name\" only applies to kind \"synth\"");
            if (!ds.has("manifest"))
                throw JsonError(
                    "dataset: kind \"sharded\" requires \"manifest\"");
            spec.source.manifest = ds.at("manifest").asString();
            if (ds.has("test_manifest"))
                spec.source.test_manifest =
                    ds.at("test_manifest").asString();
            spec.source.prefetch =
                sizeOr(ds, "prefetch", spec.source.prefetch);
            if (ds.has("preload"))
                spec.source.preload = ds.at("preload").asBool();
        } else if (spec.source.kind == "synth") {
            if (ds.has("manifest") || ds.has("test_manifest") ||
                ds.has("prefetch") || ds.has("preload"))
                throw JsonError("dataset: manifest/test_manifest/prefetch/"
                                "preload only apply to kind \"sharded\"");
            if (ds.has("name"))
                spec.dataset = ds.at("name").asString();
        } else {
            throw JsonError("unknown dataset kind: " + spec.source.kind);
        }
    } else if (j.has("dataset")) {
        spec.dataset = j.at("dataset").asString();
    }
    if (spec.source.kind == "synth" && spec.dataset != "digits" &&
        spec.dataset != "fashion" && spec.dataset != "city" &&
        spec.dataset != "scenes")
        throw JsonError("unknown dataset: " + spec.dataset);

    if (j.has("data")) {
        const Json &dj = j.at("data");
        expectKeys(dj, {"train", "test", "seed", "image_size"}, "data");
        spec.data.train_samples = sizeOr(dj, "train",
                                         spec.data.train_samples);
        spec.data.test_samples = sizeOr(dj, "test", spec.data.test_samples);
        spec.data.seed = static_cast<uint64_t>(
            dj.numberOr("seed", static_cast<double>(spec.data.seed)));
        spec.data.image_size = sizeOr(dj, "image_size",
                                      spec.data.image_size);
    }

    if (j.has("system")) {
        const Json &sj = j.at("system");
        expectKeys(sj,
                   {"size", "pixel", "distance", "approx", "method",
                    "pad_factor"},
                   "system");
        spec.system.size = sizeOr(sj, "size", spec.system.size);
        spec.system.pixel = sj.numberOr("pixel", spec.system.pixel);
        spec.system.distance =
            sj.numberOr("distance", spec.system.distance);
        if (sj.has("approx"))
            spec.system.approx =
                approxFromTag(sj.at("approx").asString());
        if (sj.has("method"))
            spec.system.method = methodFromName(sj.at("method").asString());
        spec.system.pad_factor = sizeOr(sj, "pad_factor",
                                        spec.system.pad_factor);
    }

    spec.wavelength = j.numberOr("wavelength", spec.wavelength);
    spec.model_seed = static_cast<uint64_t>(
        j.numberOr("model_seed", static_cast<double>(spec.model_seed)));

    if (j.has("layers")) {
        validateLayerSpecs(j.at("layers"));
        spec.layers = j.at("layers");
    }

    if (j.has("detector")) {
        const Json &det = j.at("detector");
        expectKeys(det, {"classes", "det_size", "mode"}, "detector");
        spec.detector.classes = sizeOr(det, "classes", 0);
        spec.detector.det_size = sizeOr(det, "det_size", 0);
        if (det.has("mode"))
            spec.detector.mode = det.at("mode").asString();
        if (spec.detector.mode != "intensity" &&
            spec.detector.mode != "differential")
            throw JsonError("unknown detector mode: " + spec.detector.mode);
    }

    if (j.has("train"))
        spec.train = trainConfigFromJson(j.at("train"));
    if (j.has("perturbation"))
        spec.perturbation = PerturbationSpec::fromJson(j.at("perturbation"));
    return spec;
}

ExperimentSpec
ExperimentSpec::load(const std::string &path)
{
    return fromJson(Json::load(path));
}

SystemSpec
ExperimentSpec::resolvedSystem() const
{
    SystemSpec resolved = system;
    if (resolved.distance <= 0)
        resolved.distance =
            idealDistanceHalfCone(resolved.grid(), wavelength);
    return resolved;
}

// --------------------------------------------------------------------------
// Execution
// --------------------------------------------------------------------------

namespace {

/** Task-default architecture when the spec omits "layers". */
Json
defaultLayers(const std::string &task)
{
    Json layers;
    if (task == "segmentation") {
        // Fig. 13 topology: optical skip around the stack + LayerNorm.
        Json inner;
        Json diff;
        diff["kind"] = Json("diffractive");
        diff["count"] = Json(std::size_t{5});
        inner.push(std::move(diff));
        Json skip;
        skip["kind"] = Json("skip");
        skip["inner"] = std::move(inner);
        layers.push(std::move(skip));
        Json norm;
        norm["kind"] = Json("layernorm");
        layers.push(std::move(norm));
    } else {
        Json diff;
        diff["kind"] = Json("diffractive");
        diff["count"] = Json(std::size_t{5});
        layers.push(std::move(diff));
    }
    return layers;
}

Json
epochStatsJson(const EpochStats &stats)
{
    Json j;
    j["epoch"] = Json(stats.epoch);
    j["train_loss"] = Json(stats.train_loss);
    j["train_acc"] = Json(stats.train_acc);
    j["test_acc"] = Json(stats.test_acc);
    j["test_top3"] = Json(stats.test_top3);
    j["seconds"] = Json(stats.seconds);
    if (stats.mid_epoch) {
        j["mid_epoch"] = Json(true);
        j["batch"] = Json(stats.batch);
    }
    return j;
}

} // namespace

DonnModel
buildSpecModel(const ExperimentSpec &spec, std::size_t num_classes,
               Rng *rng)
{
    SystemSpec system = spec.resolvedSystem();
    Laser laser;
    laser.wavelength = spec.wavelength;
    DonnModel model(system, laser);

    LayerFactory::Context ctx;
    ctx.model = &model;
    ctx.rng = rng;
    const Json layers =
        spec.layers.isNull() ? defaultLayers(spec.task) : spec.layers;
    for (const Json &layer_spec : layers.asArray())
        for (LayerPtr &layer :
             LayerFactory::instance().build(layer_spec, ctx))
            model.addLayer(std::move(layer));

    std::size_t det_size = spec.detector.det_size;
    if (det_size == 0)
        det_size = std::max<std::size_t>(system.size / 10, 1);
    if (spec.detector.mode == "differential") {
        auto layout = DetectorPlane::differentialGridLayout(
            system.size, num_classes, det_size);
        model.setDetector(DetectorPlane(std::move(layout.first),
                                        std::move(layout.second)));
    } else {
        model.setDetector(DetectorPlane(DetectorPlane::gridLayout(
            system.size, num_classes, det_size)));
    }
    return model;
}

ExperimentResult
runExperiment(const ExperimentSpec &spec,
              const Session::Callback &epoch_callback,
              const std::string &save_model_path,
              const RobustnessSweepConfig *robustness_sweep)
{
    if (robustness_sweep != nullptr && spec.task != "classification")
        throw JsonError("robustness sweep requires a classification task, "
                        "got: " + spec.task);
    ExperimentResult result;
    result.name = spec.name;
    result.task = spec.task;
    WallTimer timer;
    Rng rng(spec.model_seed);

    // Record the execution mode actually used, not just what the spec
    // asked for (Session::resolveWorkers is the engine's own rule).
    result.workers_requested = spec.train.workers;
    result.pipeline = spec.train.pipeline;
    result.hw_threads = ThreadPool::global().workerCount();

    auto runSession = [&](Task &task) {
        result.workers_used =
            Session::resolveWorkers(spec.train, task.trainSize());
        Session session(task, spec.train);
        if (epoch_callback)
            session.addCallback(epoch_callback);
        result.history = session.fit();
        if (!save_model_path.empty() && !task.save(save_model_path))
            throw std::runtime_error("cannot write model checkpoint: " +
                                     save_model_path);
    };

    // Resolved-source fields for the report's execution block, read off
    // the source after training so bytes_read reflects what actually
    // streamed.
    auto recordSource = [&](const DataSource &source) {
        result.data_source = source.sourceKind();
        result.data_shards = source.shardSizes().size();
        result.data_prefetch = source.prefetchDepth();
        result.data_bytes_read = source.bytesRead();
    };
    const bool sharded = spec.source.kind == "sharded";

    if (spec.task == "classification") {
        ClassDataset train, test;
        bool has_test = false;
        std::unique_ptr<ClassSource> source;
        if (sharded) {
            DatasetManifest manifest =
                DatasetManifest::load(spec.source.manifest);
            if (!spec.source.test_manifest.empty()) {
                test = materializeClassDataset(
                    DatasetManifest::load(spec.source.test_manifest));
                has_test = true;
            }
            if (spec.source.preload) {
                // Parity mode: whole split in memory, but with the
                // manifest's shard layout so the epoch order matches the
                // streamed run bitwise.
                train = materializeClassDataset(manifest);
                source = std::make_unique<InMemoryClassSource>(
                    train, manifest.shardSizes());
            } else {
                source = std::make_unique<ShardedClassSource>(
                    std::move(manifest), spec.source.prefetch);
            }
        } else {
            if (spec.dataset != "digits" && spec.dataset != "fashion")
                throw JsonError("classification task needs dataset digits "
                                "or fashion, got: " + spec.dataset);
            if (spec.dataset == "digits") {
                DigitConfig dc;
                if (spec.data.image_size > 0)
                    dc.image_size = spec.data.image_size;
                train = makeSynthDigits(spec.data.train_samples,
                                        spec.data.seed, dc);
                test = makeSynthDigits(spec.data.test_samples,
                                       spec.data.seed + 1, dc);
            } else {
                FashionConfig fc;
                if (spec.data.image_size > 0)
                    fc.image_size = spec.data.image_size;
                train = makeSynthFashion(spec.data.train_samples,
                                         spec.data.seed, fc);
                test = makeSynthFashion(spec.data.test_samples,
                                        spec.data.seed + 1, fc);
            }
            has_test = true;
            source = std::make_unique<InMemoryClassSource>(train);
        }
        std::size_t classes = spec.detector.classes > 0
                                  ? spec.detector.classes
                                  : source->numClasses();
        result.num_classes = classes;
        DonnModel model = buildSpecModel(spec, classes, &rng);
        ClassificationTask task(model, *source,
                                has_test ? &test : nullptr);
        task.setPerturbationSpec(spec.perturbation);
        runSession(task);
        recordSource(*source);
        result.final_metrics = task.evaluate();
        if (robustness_sweep != nullptr) {
            if (!has_test)
                throw JsonError("robustness sweep requires a test split "
                                "(dataset has no test_manifest)");
            result.robustness =
                robustnessSweep(model, test, *robustness_sweep);
            result.has_robustness = true;
        }
    } else if (spec.task == "segmentation") {
        SegDataset train, test;
        bool has_test = false;
        std::unique_ptr<SegSource> source;
        if (sharded) {
            DatasetManifest manifest =
                DatasetManifest::load(spec.source.manifest);
            if (!spec.source.test_manifest.empty()) {
                test = materializeSegDataset(
                    DatasetManifest::load(spec.source.test_manifest));
                has_test = true;
            }
            if (spec.source.preload) {
                train = materializeSegDataset(manifest);
                source = std::make_unique<InMemorySegSource>(
                    train, manifest.shardSizes());
            } else {
                source = std::make_unique<ShardedSegSource>(
                    std::move(manifest), spec.source.prefetch);
            }
        } else {
            if (spec.dataset != "city")
                throw JsonError("segmentation task needs dataset city, "
                                "got: " + spec.dataset);
            CityConfig cc;
            if (spec.data.image_size > 0)
                cc.image_size = spec.data.image_size;
            train = makeSynthCity(spec.data.train_samples, spec.data.seed,
                                  cc);
            test = makeSynthCity(spec.data.test_samples,
                                 spec.data.seed + 1, cc);
            has_test = true;
            source = std::make_unique<InMemorySegSource>(train);
        }
        // Placeholder detector keeps serialization uniform; the output is
        // the full detector-plane intensity map.
        DonnModel model = buildSpecModel(spec, 2, &rng);
        SegmentationTask task(model, *source, has_test ? &test : nullptr);
        task.setPerturbationSpec(spec.perturbation);
        runSession(task);
        recordSource(*source);
        result.final_metrics = task.evaluate();
        if (has_test)
            result.secondary = task.evaluateMse(test);
    } else if (spec.task == "rgb") {
        if (spec.perturbation.active())
            throw JsonError("perturbation-vaccinated training is not "
                            "supported for the rgb task");
        RgbDataset train, test;
        bool has_test = false;
        std::unique_ptr<RgbSource> source;
        if (sharded) {
            DatasetManifest manifest =
                DatasetManifest::load(spec.source.manifest);
            if (!spec.source.test_manifest.empty()) {
                test = materializeRgbDataset(
                    DatasetManifest::load(spec.source.test_manifest));
                has_test = true;
            }
            if (spec.source.preload) {
                train = materializeRgbDataset(manifest);
                source = std::make_unique<InMemoryRgbSource>(
                    train, manifest.shardSizes());
            } else {
                source = std::make_unique<ShardedRgbSource>(
                    std::move(manifest), spec.source.prefetch);
            }
        } else {
            if (spec.dataset != "scenes")
                throw JsonError("rgb task needs dataset scenes, got: " +
                                spec.dataset);
            SceneConfig sc;
            if (spec.data.image_size > 0)
                sc.image_size = spec.data.image_size;
            train = makeSynthScenes(spec.data.train_samples, spec.data.seed,
                                    sc);
            test = makeSynthScenes(spec.data.test_samples,
                                   spec.data.seed + 1, sc);
            has_test = true;
            source = std::make_unique<InMemoryRgbSource>(train);
        }
        std::size_t classes = spec.detector.classes > 0
                                  ? spec.detector.classes
                                  : source->numClasses();
        result.num_classes = classes;
        std::vector<std::unique_ptr<DonnModel>> channels;
        for (int ch = 0; ch < 3; ++ch)
            channels.push_back(std::make_unique<DonnModel>(
                buildSpecModel(spec, classes, &rng)));
        MultiChannelDonn model(std::move(channels));
        RgbTask task(model, *source, has_test ? &test : nullptr);
        runSession(task);
        recordSource(*source);
        result.final_metrics = task.evaluate();
    } else {
        throw JsonError("unknown task kind: " + spec.task);
    }

    result.seconds = timer.seconds();
    return result;
}

Json
ExperimentResult::report(const ExperimentSpec &spec) const
{
    Json j;
    j["spec"] = spec.toJson();
    Json epochs;
    for (const EpochStats &stats : history)
        epochs.push(epochStatsJson(stats));
    j["epochs"] = std::move(epochs);

    Json final;
    if (task == "segmentation") {
        final["iou"] = Json(final_metrics.primary);
        final["mse"] = Json(secondary);
    } else {
        final["accuracy"] = Json(final_metrics.primary);
        final["top3_accuracy"] = Json(final_metrics.top3);
        final["num_classes"] = Json(num_classes);
        final["chance"] =
            Json(num_classes > 0 ? 1.0 / static_cast<double>(num_classes)
                                 : 0.0);
    }
    j["final"] = std::move(final);

    Json execution;
    execution["workers"] = Json(workers_used);
    execution["workers_requested"] = Json(workers_requested);
    execution["pipeline"] = Json(pipeline);
    execution["hw_threads"] = Json(hw_threads);
    execution["data_source"] = Json(data_source);
    execution["data_shards"] = Json(data_shards);
    execution["data_prefetch"] = Json(data_prefetch);
    execution["data_bytes_read"] = Json(data_bytes_read);
    j["execution"] = std::move(execution);

    if (has_robustness)
        j["robustness"] = robustness.toJson();

    j["seconds"] = Json(seconds);
    return j;
}

} // namespace lightridge
