#include "api/robustness.hpp"

#include <algorithm>
#include <cmath>

#include "core/task.hpp"
#include "optics/perturbation.hpp"
#include "utils/rng.hpp"

namespace lightridge {

RobustnessSweepConfig
RobustnessSweepConfig::defaults(const SystemSpec &system)
{
    RobustnessSweepConfig config;
    const Real p = system.pixel;
    config.lateral_shifts = {0.0, 0.5 * p, 1.0 * p, 2.0 * p};
    const Real d = system.distance;
    config.axial_shifts = {0.0, 0.01 * d, 0.02 * d, 0.05 * d};
    config.phase_sigmas = {0.0, 0.1, 0.25, 0.5};
    config.detector_noise = {0.0, 0.01, 0.03, 0.05};
    return config;
}

Real
RobustnessReport::accuracyAt(const std::string &axis, Real value) const
{
    Real best_dist = 0;
    Real best_acc = 0;
    bool found = false;
    for (const RobustnessPoint &point : points) {
        if (point.axis != axis)
            continue;
        Real dist = std::abs(point.value - value);
        if (!found || dist < best_dist) {
            found = true;
            best_dist = dist;
            best_acc = point.accuracy;
        }
    }
    return best_acc;
}

Real
RobustnessReport::meanAccuracy(const std::string &axis) const
{
    Real sum = 0;
    std::size_t n = 0;
    for (const RobustnessPoint &point : points)
        if (point.axis == axis) {
            sum += point.accuracy;
            ++n;
        }
    return n > 0 ? sum / static_cast<Real>(n) : 0;
}

Real
RobustnessReport::worstAccuracy(const std::string &axis) const
{
    Real worst = 0;
    bool found = false;
    for (const RobustnessPoint &point : points)
        if (point.axis == axis && (!found || point.accuracy < worst)) {
            found = true;
            worst = point.accuracy;
        }
    return worst;
}

Json
RobustnessReport::toJson() const
{
    Json j;
    j["clean_accuracy"] = Json(clean_accuracy);
    Json curves;
    for (const char *axis : {"lateral", "axial", "phase", "detector"}) {
        Json curve;
        bool any = false;
        for (const RobustnessPoint &point : points) {
            if (point.axis != axis)
                continue;
            Json pj;
            pj["value"] = Json(point.value);
            pj["accuracy"] = Json(point.accuracy);
            curve.push(std::move(pj));
            any = true;
        }
        if (any)
            curves[axis] = std::move(curve);
    }
    j["curves"] = std::move(curves);
    return j;
}

namespace {

/** Detach-on-scope-exit so a throwing evaluation never leaves the model
 *  pointing at a dead realization. */
struct PerturbationGuard
{
    DonnModel &model;

    ~PerturbationGuard() { model.setPerturbation(nullptr); }
};

} // namespace

RobustnessReport
robustnessSweep(DonnModel &model, const ClassDataset &test,
                const RobustnessSweepConfig &config)
{
    RobustnessReport report;
    report.clean_accuracy = evaluateAccuracy(model, test);

    const std::vector<const Propagator *> hops = modelLayerHops(model);
    const Propagator *final_hop = model.hopPropagator().get();
    PerturbationRealization realization;
    realization.layers.resize(model.depth());
    PerturbationGuard guard{model};

    auto measure = [&](const char *axis, Real value) {
        model.setPerturbation(&realization);
        Real acc = evaluateAccuracy(model, test);
        model.setPerturbation(nullptr);
        report.points.push_back(RobustnessPoint{axis, value, acc});
    };

    auto fillHops = [&](Real dx, Real dz) {
        realization.clear();
        realization.layers.resize(model.depth());
        for (std::size_t i = 0; i < hops.size(); ++i)
            if (hops[i] != nullptr)
                fillHopPerturbation(*hops[i], dx, 0.0, dz,
                                    realization.layers[i].hop);
        fillHopPerturbation(*final_hop, dx, 0.0, dz,
                            realization.final_hop);
    };

    for (Real shift : config.lateral_shifts) {
        fillHops(shift, 0.0);
        measure("lateral", shift);
    }
    for (Real shift : config.axial_shifts) {
        fillHops(0.0, shift);
        measure("axial", shift);
    }

    const std::size_t n = model.spec().size;
    for (Real sigma : config.phase_sigmas) {
        realization.clear();
        realization.layers.resize(model.depth());
        // Fresh stream per sigma so each curve point stands alone
        // (reordering or subsetting the grid cannot change a value).
        Rng rng(config.seed);
        for (std::size_t i = 0; i < hops.size(); ++i) {
            if (hops[i] == nullptr || sigma <= 0)
                continue;
            LayerPerturbation &layer = realization.layers[i];
            layer.has_noise = true;
            layer.noise = Field(n, n);
            layer.noise_conj = Field(n, n);
            for (std::size_t u = 0; u < layer.noise.size(); ++u) {
                Real eps = rng.normal(0.0, sigma);
                layer.noise[u] = std::polar<Real>(1.0, eps);
                layer.noise_conj[u] = std::polar<Real>(1.0, -eps);
            }
        }
        measure("phase", sigma);
    }

    for (Real frac : config.detector_noise) {
        Rng nrng(config.seed);
        Real acc = evaluateAccuracy(model, test, frac, &nrng);
        report.points.push_back(RobustnessPoint{"detector", frac, acc});
    }

    return report;
}

} // namespace lightridge
