/**
 * @file
 * Socket serving front end: a poll-based HTTP/1.1 server with N
 * acceptor/IO threads in front of the ModelRegistry/InferenceEngine,
 * plus the ServingService request-handling core that the socket mode
 * and the JSON-lines stdin mode of `lightridge_serve` both share (one
 * JSON schema, one parser, one response renderer).
 *
 * The server never blocks an IO thread on inference: the infer route
 * submits to the engine's async queue and parks the future on the
 * connection; the event loop writes the response when it resolves,
 * keeping every IO thread free to accept, read, and flush other
 * connections meanwhile. SLA plumbing is end to end — request JSON
 * carries `deadline_ms`/`priority`, engine sheds map to 503 +
 * Retry-After, deadline expiries to 504, and `GET /metrics` renders
 * the engine's lock-cheap counters plus the transport's own.
 *
 * Routes:
 *   POST /v1/models/<name>/infer   body: {"id","image"|"sample",
 *                                         "deadline_ms","priority"}
 *   GET  /healthz                  liveness probe
 *   GET  /metrics                  Prometheus-style text exposition
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/dataset.hpp"
#include "serve/engine.hpp"
#include "serve/http.hpp"
#include "utils/json.hpp"
#include "utils/sync.hpp"

namespace lightridge {

// ---------------------------------------------------------------------
// Shared request-handling core (stdin JSON-lines mode + socket mode)
// ---------------------------------------------------------------------

/** Thread-safe lazily generated synthetic datasets keyed by
 *  "<dataset>:<seed>" — backs `"sample"` requests in both modes. */
class SampleSource
{
  public:
    struct Sample
    {
        RealMap image;
        int label = -1;
    };

    /** Sample `index` of the (dataset, seed) stream; grows the cached
     *  dataset geometrically when the index is past what was generated.
     *  @throws JsonError on an unknown dataset name */
    Sample sample(const std::string &name, std::uint64_t seed,
                  std::size_t index) LIGHTRIDGE_EXCLUDES(mutex_);

  private:
    Mutex mutex_;
    std::map<std::string, ClassDataset> cache_ LIGHTRIDGE_GUARDED_BY(mutex_);
};

/** One parsed serving request plus serve-side bookkeeping. */
struct ParsedServeRequest
{
    InferRequest request;
    int label = -1; ///< ground truth for "sample" requests, else -1
};

/**
 * Parse the one serving-request JSON schema both modes speak:
 * `{"id", "model", "image": {rows, cols, data} | "sample": {dataset,
 * seed, index}, "deadline_ms", "priority"}`. `model_hint` (the socket
 * path's URL model) backs an absent "model" field; when both are
 * present they must agree.
 * @throws JsonError on schema violations
 */
ParsedServeRequest
parseServeRequestJson(const Json &j, std::uint64_t fallback_id,
                      SampleSource &samples,
                      const std::string &model_hint = {});

/** Render one response in the shared schema (`status` is always
 *  present; `label` >= 0 adds ground truth; logits optional). */
Json serveResponseJson(const InferResponse &response, int label,
                       bool with_logits);

/** HTTP status code a ServeStatus maps to (200/504/503/404/400). */
int httpStatusForServeStatus(ServeStatus status);

// ---------------------------------------------------------------------
// HTTP server
// ---------------------------------------------------------------------

/** A response that is not ready yet: the event loop polls `ready()`
 *  and writes `take()` once it resolves. */
class PendingHttpReply
{
  public:
    virtual ~PendingHttpReply() = default;
    virtual bool ready() = 0;
    virtual HttpResponse take() = 0;
};

/** What a handler returns: an immediate response, or a deferred one. */
struct HttpHandlerResult
{
    HttpResponse response;
    std::unique_ptr<PendingHttpReply> deferred; ///< wins when set
};

using HttpHandler = std::function<HttpHandlerResult(HttpRequest &&)>;

struct HttpServerConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< 0 binds an ephemeral port (see port())

    /** Acceptor/IO threads. Every one polls the listening socket and
     *  owns the connections it accepted. 0 resolves to half the
     *  hardware threads, at least 1. */
    std::size_t io_threads = 0;

    std::size_t max_connections = 1024; ///< across all IO threads
    int idle_timeout_ms = 30000;        ///< keep-alive idle cutoff
    HttpParser::Limits limits;

    /**
     * Seconds for the Retry-After header on connection-limit 503s.
     * The transport has no engine reference, so the owner wires this to
     * `InferenceEngine::retryAfterSeconds` and all three shed paths
     * (connection limit, engine shed, submit-time overload) advertise
     * one consistently derived backoff. Unset falls back to 1s.
     * Called from IO threads — must be thread-safe and non-blocking.
     */
    std::function<int()> retry_after_hint;
};

/** Transport-level counters (rendered under /metrics next to the
 *  engine's serving counters). */
struct HttpTransportStats
{
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected = 0; ///< over max_connections
    std::uint64_t requests = 0;             ///< HTTP requests handled
    std::uint64_t parse_errors = 0;         ///< malformed/oversized
};

/**
 * Minimal-dependency HTTP/1.1 server: poll() event loop, N acceptor/IO
 * threads, keep-alive with pipelining, incremental parsing, deferred
 * (async) replies. Start with start(); stop() (or destruction) closes
 * the listener, flushes nothing further, and joins the IO threads.
 */
class HttpServer
{
  public:
    HttpServer(HttpServerConfig config, HttpHandler handler);
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bind + listen + spawn the IO threads.
     *  @throws std::runtime_error on bind/listen failure */
    void start();

    /** Close the listener, drop connections, join the IO threads.
     *  Idempotent. */
    void stop();

    bool running() const { return running_.load(); }

    /** Resolved port (after start(); meaningful with config port 0). */
    std::uint16_t port() const { return port_; }

    /** Resolved IO-thread count (after construction). */
    std::size_t ioThreads() const { return io_threads_; }

    HttpTransportStats transportStats() const;

    /** Prometheus-style text lines for the transport counters. */
    std::string transportMetricsText() const;

  private:
    struct Connection;

    void ioLoop();
    void acceptReady(std::vector<std::unique_ptr<Connection>> &conns);
    /** @return false when the connection should be destroyed */
    bool serviceRead(Connection &conn);
    bool serviceWrite(Connection &conn);
    void processParsed(Connection &conn);

    HttpServerConfig config_;
    HttpHandler handler_;
    std::size_t io_threads_ = 1;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<std::size_t> open_connections_{0};
    std::atomic<std::uint64_t> connections_accepted_{0};
    std::atomic<std::uint64_t> connections_rejected_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> parse_errors_{0};
    std::vector<std::thread> threads_;
};

// ---------------------------------------------------------------------
// Serving service: routes HTTP onto the registry + engine
// ---------------------------------------------------------------------

struct ServingServiceConfig
{
    bool with_logits = true; ///< include logits in response JSON

    /** Applied when a request carries no deadline_ms (0 = none). */
    double default_deadline_ms = 0;
};

/** The HTTP handler of the serving front end. Also exposes the shared
 *  parse/render core so the stdin mode goes through exactly the same
 *  code path as the socket mode. */
class ServingService
{
  public:
    ServingService(ModelRegistry &registry, InferenceEngine &engine,
                   ServingServiceConfig config = {});

    /** HTTP routing entry point (bind into an HttpServer). */
    HttpHandlerResult handle(HttpRequest &&request);

    /** Shared core: parse one request of the common JSON schema. */
    ParsedServeRequest parseLine(const Json &j, std::uint64_t fallback_id,
                                 const std::string &model_hint = {});

    /** Shared core: render one response of the common JSON schema. */
    Json responseJson(const InferResponse &response, int label) const;

    /** Map a resolved engine response onto the HTTP representation
     *  (status code, Retry-After on sheds, JSON body). */
    HttpResponse renderHttp(const InferResponse &response,
                            int label) const;

    /** Extra /metrics text appended after the engine's exposition
     *  (the HttpServer's transport counters, typically). */
    void setExtraMetrics(std::function<std::string()> extra);

    InferenceEngine &engine() { return engine_; }

  private:
    HttpHandlerResult inferRoute(const std::string &model,
                                 HttpRequest &&request);

    ModelRegistry &registry_;
    InferenceEngine &engine_;
    ServingServiceConfig config_;
    SampleSource samples_;
    std::function<std::string()> extra_metrics_;
    std::atomic<std::uint64_t> next_id_{1};
};

// ---------------------------------------------------------------------
// Minimal blocking client (bench, tests, CI drivers)
// ---------------------------------------------------------------------

/** Blocking keep-alive HTTP/1.1 client for loopback drivers: one
 *  connection, sequential request/response. Not a general client —
 *  just enough to close-loop the server in benches and tests. */
class HttpClient
{
  public:
    HttpClient(std::string host, std::uint16_t port);
    ~HttpClient();

    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    /** Send one request and block for the response (connects lazily,
     *  reconnects after a server-side close).
     *  @throws std::runtime_error on connect/IO/parse failure */
    HttpResponse request(const std::string &method,
                         const std::string &target,
                         const std::string &body = {},
                         const std::string &content_type =
                             "application/json");

    void close();

  private:
    void ensureConnected();

    std::string host_;
    std::uint16_t port_;
    int fd_ = -1;
    std::string leftover_; ///< bytes past the previous response
};

} // namespace lightridge
