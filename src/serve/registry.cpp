#include "serve/registry.hpp"

#include <algorithm>

namespace lightridge {

void
ModelRegistry::registerModel(const std::string &name, DonnModel model)
{
    registerShared(name,
                   std::make_shared<const DonnModel>(std::move(model)));
}

void
ModelRegistry::registerShared(const std::string &name,
                              std::shared_ptr<const DonnModel> model)
{
    if (!model)
        throw std::invalid_argument("ModelRegistry: null model for " + name);
    MutexLock lock(mutex_);
    if (ensembles_.count(name) > 0)
        throw std::invalid_argument(
            "ModelRegistry: \"" + name +
            "\" is an ensemble; cannot register a model under it");
    models_[name] = std::move(model);
}

void
ModelRegistry::registerCheckpoint(const std::string &name,
                                  const std::string &path)
{
    // Load outside the lock: checkpoint I/O can be slow and must not
    // stall concurrent acquire() calls.
    registerModel(name, DonnModel::load(path));
}

void
ModelRegistry::registerEnsemble(EnsembleSpec spec)
{
    if (spec.members.empty())
        throw std::invalid_argument("ensemble \"" + spec.name +
                                    "\" has no members");
    MutexLock lock(mutex_);
    if (models_.count(spec.name) > 0)
        throw std::invalid_argument(
            "ensemble \"" + spec.name +
            "\" collides with a registered model of the same name");
    std::size_t classes = 0;
    for (const std::string &member : spec.members) {
        if (member == spec.name)
            throw std::invalid_argument("ensemble \"" + spec.name +
                                        "\" names itself as a member");
        if (ensembles_.count(member) > 0)
            throw std::invalid_argument(
                "ensemble \"" + spec.name + "\" member \"" + member +
                "\" is itself an ensemble (nesting is not supported)");
        auto it = models_.find(member);
        if (it == models_.end())
            throw std::invalid_argument("ensemble \"" + spec.name +
                                        "\" member \"" + member +
                                        "\" is not a registered model");
        const std::size_t member_classes =
            it->second->detector().numClasses();
        if (classes == 0)
            classes = member_classes;
        else if (member_classes != classes)
            throw std::invalid_argument(
                "ensemble \"" + spec.name + "\" member \"" + member +
                "\" has " + std::to_string(member_classes) +
                " classes, expected " + std::to_string(classes));
    }
    ensembles_[spec.name] = std::move(spec);
}

bool
ModelRegistry::isEnsemble(const std::string &name) const
{
    MutexLock lock(mutex_);
    return ensembles_.count(name) > 0;
}

ResolvedEnsemble
ModelRegistry::resolveEnsemble(const std::string &name) const
{
    MutexLock lock(mutex_);
    auto it = ensembles_.find(name);
    if (it == ensembles_.end())
        throw UnknownModelError(name);
    ResolvedEnsemble resolved;
    resolved.spec = it->second;
    resolved.members.reserve(resolved.spec.members.size());
    for (const std::string &member : resolved.spec.members) {
        auto model = models_.find(member);
        if (model == models_.end())
            throw UnknownModelError(name + " (ensemble member " + member +
                                    ")");
        resolved.members.push_back(model->second);
    }
    return resolved;
}

bool
ModelRegistry::unload(const std::string &name)
{
    MutexLock lock(mutex_);
    return models_.erase(name) + ensembles_.erase(name) > 0;
}

std::shared_ptr<const DonnModel>
ModelRegistry::acquire(const std::string &name) const
{
    MutexLock lock(mutex_);
    auto it = models_.find(name);
    if (it == models_.end())
        throw UnknownModelError(name);
    return it->second;
}

bool
ModelRegistry::has(const std::string &name) const
{
    MutexLock lock(mutex_);
    return models_.count(name) > 0 || ensembles_.count(name) > 0;
}

std::vector<std::string>
ModelRegistry::names() const
{
    MutexLock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(models_.size() + ensembles_.size());
    for (const auto &entry : models_)
        out.push_back(entry.first);
    for (const auto &entry : ensembles_)
        out.push_back(entry.first);
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t
ModelRegistry::size() const
{
    MutexLock lock(mutex_);
    return models_.size() + ensembles_.size();
}

std::size_t
ModelRegistry::externalRefCount(const std::string &name) const
{
    MutexLock lock(mutex_);
    auto it = models_.find(name);
    if (it == models_.end())
        return 0;
    const long uses = it->second.use_count();
    return uses > 1 ? static_cast<std::size_t>(uses - 1) : 0;
}

} // namespace lightridge
