#include "serve/registry.hpp"

namespace lightridge {

void
ModelRegistry::registerModel(const std::string &name, DonnModel model)
{
    registerShared(name,
                   std::make_shared<const DonnModel>(std::move(model)));
}

void
ModelRegistry::registerShared(const std::string &name,
                              std::shared_ptr<const DonnModel> model)
{
    if (!model)
        throw std::invalid_argument("ModelRegistry: null model for " + name);
    MutexLock lock(mutex_);
    models_[name] = std::move(model);
}

void
ModelRegistry::registerCheckpoint(const std::string &name,
                                  const std::string &path)
{
    // Load outside the lock: checkpoint I/O can be slow and must not
    // stall concurrent acquire() calls.
    registerModel(name, DonnModel::load(path));
}

bool
ModelRegistry::unload(const std::string &name)
{
    MutexLock lock(mutex_);
    return models_.erase(name) > 0;
}

std::shared_ptr<const DonnModel>
ModelRegistry::acquire(const std::string &name) const
{
    MutexLock lock(mutex_);
    auto it = models_.find(name);
    if (it == models_.end())
        throw UnknownModelError(name);
    return it->second;
}

bool
ModelRegistry::has(const std::string &name) const
{
    MutexLock lock(mutex_);
    return models_.count(name) > 0;
}

std::vector<std::string>
ModelRegistry::names() const
{
    MutexLock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(models_.size());
    for (const auto &entry : models_)
        out.push_back(entry.first);
    return out;
}

std::size_t
ModelRegistry::size() const
{
    MutexLock lock(mutex_);
    return models_.size();
}

std::size_t
ModelRegistry::externalRefCount(const std::string &name) const
{
    MutexLock lock(mutex_);
    auto it = models_.find(name);
    if (it == models_.end())
        return 0;
    const long uses = it->second.use_count();
    return uses > 1 ? static_cast<std::size_t>(uses - 1) : 0;
}

} // namespace lightridge
