#include "serve/engine.hpp"

#include <algorithm>
#include <utility>

#include "optics/workspace.hpp"

namespace lightridge {

namespace {

double
millisecondsBetween(std::chrono::steady_clock::time_point from,
                    std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from).count();
}

} // namespace

InferenceEngine::InferenceEngine(ModelRegistry &registry,
                                 BatchingConfig config, ThreadPool *pool)
    : registry_(registry), config_(config),
      pool_(pool != nullptr ? pool : &ThreadPool::global())
{
    if (config_.max_batch == 0)
        config_.max_batch = 1;
    if (config_.max_queue == 0)
        config_.max_queue = 1;
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

InferenceEngine::~InferenceEngine()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    queued_cv_.notify_all();
    space_cv_.notify_all();
    if (dispatcher_.joinable())
        dispatcher_.join();
}

std::future<InferResponse>
InferenceEngine::submit(InferRequest request)
{
    return enqueue(std::move(request), /*legacy=*/false);
}

std::future<InferResponse>
InferenceEngine::submitLegacy(InferRequest request)
{
    return enqueue(std::move(request), /*legacy=*/true);
}

std::future<InferResponse>
InferenceEngine::enqueue(InferRequest request, bool legacy)
{
    Pending pending;
    pending.request = std::move(request);
    pending.legacy = legacy;
    pending.enqueued = std::chrono::steady_clock::now();
    std::future<InferResponse> future = pending.promise.get_future();

    // Victims resolved outside the lock: the evicted queue entry (when
    // a newcomer outranks queued work at quota) or the newcomer itself.
    std::vector<Pending> shed;
    bool queued = false;
    {
        MutexLock lock(mutex_);
        if (stop_)
            throw std::runtime_error(
                "InferenceEngine: submit after shutdown");

        const std::string &model = pending.request.model;
        const std::size_t quota = quotaForLocked(model);
        if (quota > 0 && queued_per_model_[model] >= quota) {
            // Admission control: evict the least-urgent (and among
            // ties, youngest) queued request of this model that the
            // newcomer strictly outranks; otherwise shed the newcomer.
            std::size_t victim = queue_.size();
            for (std::size_t i = 0; i < queue_.size(); ++i) {
                const InferRequest &r = queue_[i].request;
                if (r.model != model ||
                    r.priority <= pending.request.priority)
                    continue;
                if (victim == queue_.size() ||
                    r.priority >= queue_[victim].request.priority)
                    victim = i;
            }
            if (victim < queue_.size()) {
                shed.push_back(std::move(queue_[victim]));
                queue_.erase(queue_.begin() +
                             static_cast<std::ptrdiff_t>(victim));
                metrics_.queueDepthAdd(-1);
                queue_.push_back(std::move(pending));
                metrics_.queueDepthAdd(+1);
                queued = true;
            } else {
                shed.push_back(std::move(pending));
            }
            stats_.requests += 1;
            stats_.failed += 1;
            stats_.shed += 1;
        } else {
            while (!stop_ && queue_.size() >= config_.max_queue)
                space_cv_.wait(mutex_);
            if (stop_)
                throw std::runtime_error(
                    "InferenceEngine: submit after shutdown");
            queued_per_model_[model] += 1;
            queue_.push_back(std::move(pending));
            metrics_.queueDepthAdd(+1);
            queued = true;
        }
    }
    if (queued)
        queued_cv_.notify_one();
    const auto now = std::chrono::steady_clock::now();
    for (Pending &victim : shed) {
        const double ms = millisecondsBetween(victim.enqueued, now);
        metrics_.recordResponse(ServeStatus::Overloaded, ms);
        failPending(victim, ServeStatus::Overloaded,
                    "queue quota exceeded for model: " +
                        victim.request.model,
                    ms);
    }
    return future;
}

InferResponse
InferenceEngine::inferNow(InferRequest request)
{
    return submit(std::move(request)).get();
}

void
InferenceEngine::drain()
{
    MutexLock lock(mutex_);
    while (!(queue_.empty() && in_flight_ == 0))
        idle_cv_.wait(mutex_);
}

void
InferenceEngine::pause()
{
    MutexLock lock(mutex_);
    paused_ = true;
}

void
InferenceEngine::resume()
{
    {
        MutexLock lock(mutex_);
        paused_ = false;
    }
    queued_cv_.notify_all();
}

void
InferenceEngine::setModelQuota(const std::string &model,
                               std::size_t max_queued)
{
    MutexLock lock(mutex_);
    quota_overrides_[model] = max_queued;
}

std::size_t
InferenceEngine::quotaForLocked(const std::string &model) const
{
    auto it = quota_overrides_.find(model);
    return it != quota_overrides_.end() ? it->second
                                        : config_.max_queued_per_model;
}

EngineStats
InferenceEngine::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

void
InferenceEngine::failPending(Pending &pending, ServeStatus status,
                             const std::string &error, double latency_ms)
{
    if (pending.legacy) {
        // v1 semantics: failures travel as exceptions through the
        // future, with the same exception types v1 threw.
        std::exception_ptr ep;
        if (status == ServeStatus::UnknownModel)
            ep = std::make_exception_ptr(
                UnknownModelError(pending.request.model));
        else
            ep = std::make_exception_ptr(ServeStatusError(status, error));
        pending.promise.set_exception(ep);
        return;
    }
    InferResponse response;
    response.id = pending.request.id;
    response.model = pending.request.model;
    response.status = status;
    response.error = error;
    response.latency_ms = latency_ms;
    response.batch_size = 0;
    pending.promise.set_value(std::move(response));
}

void
InferenceEngine::dispatchLoop()
{
    // Explicit lock()/unlock() instead of a scoped lock: the loop
    // releases the mutex around batch execution and failure delivery,
    // and the thread-safety analysis verifies the lock is reacquired on
    // every path back to the loop head.
    mutex_.lock();
    for (;;) {
        while (!(stop_ || (!paused_ && !queue_.empty())))
            queued_cv_.wait(mutex_);
        if (queue_.empty()) {
            if (stop_)
                break; // queue drained, shutdown complete
            continue;
        }
        if (paused_ && !stop_)
            continue;

        // Deadline sweep: anything whose budget elapsed while queued is
        // answered now and never occupies a batch slot. Runs before
        // every batch formation (and first thing after resume()), so an
        // expired-on-arrival request cannot reach a batch.
        const auto now = std::chrono::steady_clock::now();
        std::vector<Pending> expired;
        for (auto it = queue_.begin(); it != queue_.end();) {
            const InferRequest &r = it->request;
            if (r.deadline.count() != 0 && now - it->enqueued >= r.deadline) {
                queued_per_model_[r.model] -= 1;
                metrics_.queueDepthAdd(-1);
                expired.push_back(std::move(*it));
                it = queue_.erase(it);
            } else {
                ++it;
            }
        }
        if (!expired.empty()) {
            in_flight_ += expired.size();
            stats_.requests += expired.size();
            stats_.failed += expired.size();
            stats_.expired += expired.size();
            mutex_.unlock();
            space_cv_.notify_all();
            for (Pending &pending : expired) {
                const double ms =
                    millisecondsBetween(pending.enqueued, now);
                metrics_.recordResponse(ServeStatus::DeadlineExceeded, ms);
                failPending(pending, ServeStatus::DeadlineExceeded,
                            "deadline exceeded before dispatch", ms);
            }
            mutex_.lock();
            in_flight_ -= expired.size();
            if (queue_.empty() && in_flight_ == 0)
                idle_cv_.notify_all();
            continue; // re-evaluate: queue changed while unlocked
        }

        // Dynamic micro-batching, most-urgent-first: the batch model is
        // the one of the highest-priority oldest request, and the batch
        // pulls that model's requests in priority-class order (arrival
        // order within a class) up to max_batch. Under load the queue
        // backs up and batches grow; an idle engine degrades to batch
        // size 1 with no added latency.
        std::size_t best = 0;
        for (std::size_t i = 1; i < queue_.size(); ++i)
            if (queue_[i].request.priority < queue_[best].request.priority)
                best = i;
        const std::string model_name = queue_[best].request.model;

        std::vector<std::size_t> chosen;
        chosen.reserve(std::min(queue_.size(), config_.max_batch));
        for (std::size_t cls = 0;
             cls < kPriorityCount && chosen.size() < config_.max_batch;
             ++cls) {
            for (std::size_t i = 0;
                 i < queue_.size() && chosen.size() < config_.max_batch;
                 ++i) {
                if (queue_[i].request.model == model_name &&
                    static_cast<std::size_t>(queue_[i].request.priority) ==
                        cls)
                    chosen.push_back(i);
            }
        }
        std::vector<Pending> batch;
        batch.reserve(chosen.size());
        std::vector<bool> taken(queue_.size(), false);
        for (std::size_t i : chosen) {
            batch.push_back(std::move(queue_[i]));
            taken[i] = true;
        }
        std::deque<Pending> rest;
        for (std::size_t i = 0; i < queue_.size(); ++i)
            if (!taken[i])
                rest.push_back(std::move(queue_[i]));
        queue_.swap(rest);

        const std::size_t batch_size = batch.size();
        queued_per_model_[model_name] -= batch_size;
        metrics_.queueDepthAdd(
            -static_cast<std::ptrdiff_t>(batch_size));
        in_flight_ += batch_size;
        mutex_.unlock();
        space_cv_.notify_all();

        runBatch(model_name, std::move(batch));

        mutex_.lock();
        in_flight_ -= batch_size;
        if (queue_.empty() && in_flight_ == 0)
            idle_cv_.notify_all();
    }
    mutex_.unlock();
}

void
InferenceEngine::runBatch(const std::string &model_name,
                          std::vector<Pending> batch)
{
    std::shared_ptr<const DonnModel> model;
    try {
        model = registry_.acquire(model_name);
    } catch (...) {
        const auto done = std::chrono::steady_clock::now();
        {
            MutexLock lock(mutex_);
            stats_.requests += batch.size();
            stats_.failed += batch.size();
        }
        for (Pending &pending : batch) {
            const double ms = millisecondsBetween(pending.enqueued, done);
            metrics_.recordResponse(ServeStatus::UnknownModel, ms);
            failPending(pending, ServeStatus::UnknownModel,
                        "unknown model: " + model_name, ms);
        }
        return;
    }

    const Grid grid = model->spec().grid();
    std::vector<InferResponse> responses(batch.size());
    std::vector<std::exception_ptr> errors(batch.size());
    std::vector<std::string> messages(batch.size());
    pool_->parallelFor(batch.size(), [&](std::size_t i) {
        try {
            // Each pool worker leases scratch from its own thread-local
            // arena; the model instance itself is shared and const.
            PropagationWorkspace &workspace =
                PropagationWorkspace::threadLocal();
            WorkspaceField u(workspace, grid.n, grid.n);
            model->encodeInto(batch[i].request.image, u.get());
            InferResponse &response = responses[i];
            response.logits = model->inferLogitsInPlace(u.get(), workspace);
            response.prediction = static_cast<int>(
                std::max_element(response.logits.begin(),
                                 response.logits.end()) -
                response.logits.begin());
        } catch (const std::exception &e) {
            errors[i] = std::current_exception();
            messages[i] = e.what();
        } catch (...) {
            errors[i] = std::current_exception();
            messages[i] = "unknown inference error";
        }
    });

    const auto done = std::chrono::steady_clock::now();
    std::size_t failed = 0;
    for (const std::exception_ptr &error : errors)
        failed += error ? 1 : 0;

    // Stats are committed before any promise resolves, so a client that
    // just observed its future complete reads consistent counters.
    {
        MutexLock lock(mutex_);
        stats_.batches += 1;
        stats_.max_batch = std::max(stats_.max_batch, batch.size());
        stats_.requests += batch.size();
        stats_.failed += failed;
    }
    metrics_.recordBatch(batch.size());

    for (std::size_t i = 0; i < batch.size(); ++i) {
        const double ms = millisecondsBetween(batch[i].enqueued, done);
        if (errors[i]) {
            metrics_.recordResponse(ServeStatus::BadInput, ms);
            if (batch[i].legacy) {
                batch[i].promise.set_exception(errors[i]);
            } else {
                failPending(batch[i], ServeStatus::BadInput, messages[i],
                            ms);
            }
            continue;
        }
        metrics_.recordResponse(ServeStatus::Ok, ms);
        InferResponse &response = responses[i];
        response.id = batch[i].request.id;
        response.model = model_name;
        response.status = ServeStatus::Ok;
        response.batch_size = batch.size();
        response.latency_ms = ms;
        batch[i].promise.set_value(std::move(response));
    }
}

} // namespace lightridge
