#include "serve/engine.hpp"

#include <algorithm>
#include <utility>

#include "optics/workspace.hpp"

namespace lightridge {

InferenceEngine::InferenceEngine(ModelRegistry &registry,
                                 BatchingConfig config, ThreadPool *pool)
    : registry_(registry), config_(config),
      pool_(pool != nullptr ? pool : &ThreadPool::global())
{
    if (config_.max_batch == 0)
        config_.max_batch = 1;
    if (config_.max_queue == 0)
        config_.max_queue = 1;
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

InferenceEngine::~InferenceEngine()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    queued_cv_.notify_all();
    space_cv_.notify_all();
    if (dispatcher_.joinable())
        dispatcher_.join();
}

std::future<InferResponse>
InferenceEngine::submit(InferRequest request)
{
    Pending pending;
    pending.request = std::move(request);
    pending.enqueued = std::chrono::steady_clock::now();
    std::future<InferResponse> future = pending.promise.get_future();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        space_cv_.wait(lock, [this] {
            return stop_ || queue_.size() < config_.max_queue;
        });
        if (stop_)
            throw std::runtime_error(
                "InferenceEngine: submit after shutdown");
        queue_.push_back(std::move(pending));
    }
    queued_cv_.notify_one();
    return future;
}

InferResponse
InferenceEngine::inferNow(InferRequest request)
{
    return submit(std::move(request)).get();
}

void
InferenceEngine::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock,
                  [this] { return queue_.empty() && in_flight_ == 0; });
}

EngineStats
InferenceEngine::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
InferenceEngine::dispatchLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        queued_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stop_)
                return; // queue drained, shutdown complete
            continue;
        }

        // Dynamic micro-batching: everything queued for the first
        // pending request's model (up to max_batch, arrival order
        // preserved) rides one dispatch. Under load the queue backs up
        // and batches grow; an idle engine degrades to batch size 1
        // with no added latency.
        const std::string model_name = queue_.front().request.model;
        std::vector<Pending> batch;
        batch.reserve(std::min(queue_.size(), config_.max_batch));
        for (auto it = queue_.begin();
             it != queue_.end() && batch.size() < config_.max_batch;) {
            if (it->request.model == model_name) {
                batch.push_back(std::move(*it));
                it = queue_.erase(it);
            } else {
                ++it;
            }
        }
        const std::size_t batch_size = batch.size();
        in_flight_ += batch_size;
        lock.unlock();
        space_cv_.notify_all();

        runBatch(model_name, std::move(batch));

        lock.lock();
        in_flight_ -= batch_size;
        if (queue_.empty() && in_flight_ == 0)
            idle_cv_.notify_all();
    }
}

void
InferenceEngine::runBatch(const std::string &model_name,
                          std::vector<Pending> batch)
{
    // Stats are committed before any promise resolves, so a client that
    // just observed its future complete reads consistent counters.
    auto commitStats = [this](std::size_t served, std::size_t failed) {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.batches += 1;
        stats_.max_batch = std::max(stats_.max_batch, served);
        stats_.requests += served;
        stats_.failed += failed;
    };

    std::shared_ptr<const DonnModel> model;
    try {
        model = registry_.acquire(model_name);
    } catch (...) {
        std::exception_ptr error = std::current_exception();
        commitStats(batch.size(), batch.size());
        for (Pending &pending : batch)
            pending.promise.set_exception(error);
        return;
    }

    const Grid grid = model->spec().grid();
    std::vector<InferResponse> responses(batch.size());
    std::vector<std::exception_ptr> errors(batch.size());
    pool_->parallelFor(batch.size(), [&](std::size_t i) {
        try {
            // Each pool worker leases scratch from its own thread-local
            // arena; the model instance itself is shared and const.
            PropagationWorkspace &workspace =
                PropagationWorkspace::threadLocal();
            WorkspaceField u(workspace, grid.n, grid.n);
            model->encodeInto(batch[i].request.image, u.get());
            InferResponse &response = responses[i];
            response.logits = model->inferLogitsInPlace(u.get(), workspace);
            response.prediction = static_cast<int>(
                std::max_element(response.logits.begin(),
                                 response.logits.end()) -
                response.logits.begin());
        } catch (...) {
            errors[i] = std::current_exception();
        }
    });

    const auto done = std::chrono::steady_clock::now();
    std::size_t failed = 0;
    for (const std::exception_ptr &error : errors)
        failed += error ? 1 : 0;
    commitStats(batch.size(), failed);

    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (errors[i]) {
            batch[i].promise.set_exception(errors[i]);
            continue;
        }
        InferResponse &response = responses[i];
        response.id = batch[i].request.id;
        response.model = model_name;
        response.batch_size = batch.size();
        response.latency_ms =
            std::chrono::duration<double, std::milli>(done -
                                                      batch[i].enqueued)
                .count();
        batch[i].promise.set_value(std::move(response));
    }
}

} // namespace lightridge
