#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "optics/workspace.hpp"

namespace lightridge {

namespace {

double
millisecondsBetween(std::chrono::steady_clock::time_point from,
                    std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from).count();
}

} // namespace

InferenceEngine::InferenceEngine(ModelRegistry &registry,
                                 BatchingConfig config, ThreadPool *pool)
    : registry_(registry), config_(config),
      pool_(pool != nullptr ? pool : &ThreadPool::global())
{
    if (config_.max_batch == 0)
        config_.max_batch = 1;
    if (config_.max_queue == 0)
        config_.max_queue = 1;
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

InferenceEngine::~InferenceEngine()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    queued_cv_.notify_all();
    space_cv_.notify_all();
    if (dispatcher_.joinable())
        dispatcher_.join();
}

std::future<InferResponse>
InferenceEngine::submit(InferRequest request)
{
    return enqueue(std::move(request), /*legacy=*/false);
}

std::future<InferResponse>
InferenceEngine::submitLegacy(InferRequest request)
{
    return enqueue(std::move(request), /*legacy=*/true);
}

std::future<InferResponse>
InferenceEngine::enqueue(InferRequest request, bool legacy)
{
    if (registry_.isEnsemble(request.model))
        return enqueueEnsemble(std::move(request), legacy);

    Pending pending;
    pending.request = std::move(request);
    pending.legacy = legacy;
    pending.enqueued = std::chrono::steady_clock::now();
    std::future<InferResponse> future = pending.promise.get_future();

    // Victims resolved outside the lock: the evicted queue entry (when
    // a newcomer outranks queued work at quota) or the newcomer itself.
    std::vector<Pending> shed;
    bool queued = false;
    {
        MutexLock lock(mutex_);
        if (stop_)
            throw std::runtime_error(
                "InferenceEngine: submit after shutdown");
        queued = admitLocked(std::move(pending), shed);
    }
    if (queued)
        queued_cv_.notify_one();
    const auto now = std::chrono::steady_clock::now();
    for (Pending &victim : shed) {
        const double ms = millisecondsBetween(victim.enqueued, now);
        metrics_.recordResponse(ServeStatus::Overloaded, ms);
        deliverFailure(victim, ServeStatus::Overloaded,
                       "queue quota exceeded for model: " +
                           victim.request.model,
                       ms);
    }
    return future;
}

std::future<InferResponse>
InferenceEngine::enqueueEnsemble(InferRequest request, bool legacy)
{
    auto job = std::make_shared<EnsembleJob>();
    job->parent.request = std::move(request);
    job->parent.legacy = legacy;
    job->parent.enqueued = std::chrono::steady_clock::now();
    std::future<InferResponse> future = job->parent.promise.get_future();

    ResolvedEnsemble resolved;
    try {
        resolved = registry_.resolveEnsemble(job->parent.request.model);
    } catch (const UnknownModelError &e) {
        // The ensemble (or one of its members) was unloaded since the
        // caller's lookup: a typed UnknownModel response naming the
        // missing member, mirroring the plain-model unload race.
        {
            MutexLock lock(mutex_);
            if (stop_)
                throw std::runtime_error(
                    "InferenceEngine: submit after shutdown");
            stats_.requests += 1;
            stats_.failed += 1;
        }
        metrics_.recordResponse(ServeStatus::UnknownModel, 0.0);
        failPending(job->parent, ServeStatus::UnknownModel, e.what(), 0.0);
        return future;
    }
    job->spec = std::move(resolved.spec);
    job->members = std::move(resolved.members);
    const std::size_t fan = job->spec.members.size();
    {
        MutexLock lock(job->mutex);
        job->remaining = fan;
        job->member_logits.resize(fan);
        job->member_status.assign(fan, ServeStatus::Ok);
        job->member_error.resize(fan);
    }

    // Fan out: one member sub-request per member, admitted under a
    // single lock hold so the members enter the queue back to back.
    // Each inherits the parent's priority and deadline budget measured
    // from the parent's enqueue time (one shared clock), and carries no
    // image of its own — batches read the parent's frame in place.
    std::vector<Pending> shed;
    bool queued_any = false;
    {
        MutexLock lock(mutex_);
        if (stop_)
            throw std::runtime_error(
                "InferenceEngine: submit after shutdown");
        for (std::size_t m = 0; m < fan; ++m) {
            Pending member;
            member.request.model = job->spec.members[m];
            member.request.id = job->parent.request.id;
            member.request.deadline = job->parent.request.deadline;
            member.request.priority = job->parent.request.priority;
            member.enqueued = job->parent.enqueued;
            member.job = job;
            member.member_index = m;
            if (admitLocked(std::move(member), shed))
                queued_any = true;
        }
    }
    if (queued_any)
        queued_cv_.notify_all();
    const auto now = std::chrono::steady_clock::now();
    for (Pending &victim : shed) {
        const double ms = millisecondsBetween(victim.enqueued, now);
        metrics_.recordResponse(ServeStatus::Overloaded, ms);
        deliverFailure(victim, ServeStatus::Overloaded,
                       "queue quota exceeded for model: " +
                           victim.request.model,
                       ms);
    }
    return future;
}

bool
InferenceEngine::admitLocked(Pending &&pending, std::vector<Pending> &shed)
{
    const std::string &model = pending.request.model;
    const std::size_t quota = quotaForLocked(model);
    if (quota > 0 && queued_per_model_[model] >= quota) {
        // Admission control: evict the least-urgent (and among
        // ties, youngest) queued request of this model that the
        // newcomer strictly outranks; otherwise shed the newcomer.
        std::size_t victim = queue_.size();
        for (std::size_t i = 0; i < queue_.size(); ++i) {
            const InferRequest &r = queue_[i].request;
            if (r.model != model ||
                r.priority <= pending.request.priority)
                continue;
            if (victim == queue_.size() ||
                r.priority >= queue_[victim].request.priority)
                victim = i;
        }
        bool queued = false;
        if (victim < queue_.size()) {
            shed.push_back(std::move(queue_[victim]));
            queue_.erase(queue_.begin() +
                         static_cast<std::ptrdiff_t>(victim));
            metrics_.queueDepthAdd(-1);
            queue_.push_back(std::move(pending));
            metrics_.queueDepthAdd(+1);
            queued = true;
        } else {
            shed.push_back(std::move(pending));
        }
        stats_.requests += 1;
        stats_.failed += 1;
        stats_.shed += 1;
        return queued;
    }
    while (!stop_ && queue_.size() >= config_.max_queue)
        space_cv_.wait(mutex_);
    if (stop_)
        throw std::runtime_error("InferenceEngine: submit after shutdown");
    queued_per_model_[model] += 1;
    queue_.push_back(std::move(pending));
    metrics_.queueDepthAdd(+1);
    return true;
}

InferResponse
InferenceEngine::inferNow(InferRequest request)
{
    return submit(std::move(request)).get();
}

void
InferenceEngine::drain()
{
    MutexLock lock(mutex_);
    while (!(queue_.empty() && in_flight_ == 0))
        idle_cv_.wait(mutex_);
}

void
InferenceEngine::pause()
{
    MutexLock lock(mutex_);
    paused_ = true;
}

void
InferenceEngine::resume()
{
    {
        MutexLock lock(mutex_);
        paused_ = false;
    }
    queued_cv_.notify_all();
}

void
InferenceEngine::setModelQuota(const std::string &model,
                               std::size_t max_queued)
{
    MutexLock lock(mutex_);
    quota_overrides_[model] = max_queued;
}

std::size_t
InferenceEngine::quotaForLocked(const std::string &model) const
{
    auto it = quota_overrides_.find(model);
    return it != quota_overrides_.end() ? it->second
                                        : config_.max_queued_per_model;
}

int
InferenceEngine::retryAfterSeconds() const
{
    const double per_request_ms =
        service_ms_ewma_.load(std::memory_order_relaxed);
    std::size_t backlog;
    {
        MutexLock lock(mutex_);
        backlog = queue_.size() + in_flight_;
    }
    // Expected drain time of the current backlog at the recent batch
    // cadence, rounded up to whole seconds and clamped to [1, 60] (an
    // idle or freshly started engine answers the minimum 1s).
    const double wait_s =
        std::ceil(static_cast<double>(backlog) * per_request_ms / 1e3);
    if (wait_s <= 1.0)
        return 1;
    return wait_s >= 60.0 ? 60 : static_cast<int>(wait_s);
}

EngineStats
InferenceEngine::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

void
InferenceEngine::failPending(Pending &pending, ServeStatus status,
                             const std::string &error, double latency_ms)
{
    if (pending.legacy) {
        // v1 semantics: failures travel as exceptions through the
        // future, with the same exception types v1 threw.
        std::exception_ptr ep;
        if (status == ServeStatus::UnknownModel)
            ep = std::make_exception_ptr(
                UnknownModelError(pending.request.model));
        else
            ep = std::make_exception_ptr(ServeStatusError(status, error));
        pending.promise.set_exception(ep);
        return;
    }
    InferResponse response;
    response.id = pending.request.id;
    response.model = pending.request.model;
    response.status = status;
    response.error = error;
    response.latency_ms = latency_ms;
    response.batch_size = 0;
    pending.promise.set_value(std::move(response));
}

void
InferenceEngine::deliverFailure(Pending &pending, ServeStatus status,
                                const std::string &error,
                                double latency_ms)
{
    if (pending.job) {
        ensembleMemberDone(pending, status, std::vector<Real>(), 0, error);
        return;
    }
    failPending(pending, status, error, latency_ms);
}

void
InferenceEngine::ensembleMemberDone(Pending &pending, ServeStatus status,
                                    std::vector<Real> &&logits,
                                    std::size_t batch_size,
                                    const std::string &error)
{
    std::shared_ptr<EnsembleJob> job = std::move(pending.job);
    bool last = false;
    {
        MutexLock lock(job->mutex);
        if (status == ServeStatus::Ok) {
            job->member_logits[pending.member_index] = std::move(logits);
            job->max_member_batch =
                std::max(job->max_member_batch, batch_size);
        } else {
            job->member_status[pending.member_index] = status;
            job->member_error[pending.member_index] =
                error.empty() ? serveStatusName(status) : error;
        }
        job->remaining -= 1;
        last = job->remaining == 0;
    }
    if (last)
        finishEnsemble(*job);
}

void
InferenceEngine::finishEnsemble(EnsembleJob &job)
{
    const auto done = std::chrono::steady_clock::now();
    const double ms = millisecondsBetween(job.parent.enqueued, done);
    const std::size_t fan = job.spec.members.size();

    InferResponse response;
    response.id = job.parent.request.id;
    response.model = job.spec.name;
    response.fan_out = fan;
    ServeStatus status = ServeStatus::Ok;
    std::string error;
    {
        // Every member has resolved, so the job is quiescent; the lock
        // is still taken (uncontended) for the guarded fields.
        MutexLock lock(job.mutex);
        for (std::size_t m = 0; m < fan; ++m) {
            if (job.member_status[m] != ServeStatus::Ok) {
                status = job.member_status[m];
                error = "ensemble member \"" + job.spec.members[m] +
                        "\": " + job.member_error[m];
                break;
            }
        }
        if (status == ServeStatus::Ok) {
            try {
                fuseLogits(job.spec.fusion, job.member_logits,
                           response.logits);
                response.batch_size = job.max_member_batch;
            } catch (const std::exception &e) {
                // Members disagreed on class count: a member hot-swap
                // between ensemble validation and this request.
                status = ServeStatus::BadInput;
                error = e.what();
                response.logits.clear();
            }
        }
    }
    if (status == ServeStatus::Ok) {
        response.prediction = static_cast<int>(
            std::max_element(response.logits.begin(),
                             response.logits.end()) -
            response.logits.begin());
        response.latency_ms = ms;
    }

    // Parent stats commit before the parent promise resolves, same as
    // the batch path (a client observing its future sees consistent
    // counters); the lock order is job.mutex released above, then
    // mutex_ — never both.
    {
        MutexLock lock(mutex_);
        stats_.requests += 1;
        stats_.ensembles += 1;
        stats_.fan_out += fan;
        if (status != ServeStatus::Ok)
            stats_.failed += 1;
    }
    metrics_.recordResponse(status, ms);
    metrics_.recordEnsemble(fan);

    if (status != ServeStatus::Ok) {
        failPending(job.parent, status, error, ms);
        return;
    }
    job.parent.promise.set_value(std::move(response));
}

void
InferenceEngine::dispatchLoop()
{
    // Explicit lock()/unlock() instead of a scoped lock: the loop
    // releases the mutex around batch execution and failure delivery,
    // and the thread-safety analysis verifies the lock is reacquired on
    // every path back to the loop head.
    mutex_.lock();
    for (;;) {
        while (!(stop_ || (!paused_ && !queue_.empty())))
            queued_cv_.wait(mutex_);
        if (queue_.empty()) {
            if (stop_)
                break; // queue drained, shutdown complete
            continue;
        }
        if (paused_ && !stop_)
            continue;

        // Deadline sweep: anything whose budget elapsed while queued is
        // answered now and never occupies a batch slot. Runs before
        // every batch formation (and first thing after resume()), so an
        // expired-on-arrival request cannot reach a batch.
        const auto now = std::chrono::steady_clock::now();
        std::vector<Pending> expired;
        for (auto it = queue_.begin(); it != queue_.end();) {
            const InferRequest &r = it->request;
            if (r.deadline.count() != 0 && now - it->enqueued >= r.deadline) {
                queued_per_model_[r.model] -= 1;
                metrics_.queueDepthAdd(-1);
                expired.push_back(std::move(*it));
                it = queue_.erase(it);
            } else {
                ++it;
            }
        }
        if (!expired.empty()) {
            in_flight_ += expired.size();
            stats_.requests += expired.size();
            stats_.failed += expired.size();
            stats_.expired += expired.size();
            mutex_.unlock();
            space_cv_.notify_all();
            for (Pending &pending : expired) {
                const double ms =
                    millisecondsBetween(pending.enqueued, now);
                metrics_.recordResponse(ServeStatus::DeadlineExceeded, ms);
                deliverFailure(pending, ServeStatus::DeadlineExceeded,
                               "deadline exceeded before dispatch", ms);
            }
            mutex_.lock();
            in_flight_ -= expired.size();
            if (queue_.empty() && in_flight_ == 0)
                idle_cv_.notify_all();
            continue; // re-evaluate: queue changed while unlocked
        }

        // Dynamic micro-batching, most-urgent-first: the batch model is
        // the one of the highest-priority oldest request, and the batch
        // pulls that model's requests in priority-class order (arrival
        // order within a class) up to max_batch. Under load the queue
        // backs up and batches grow; an idle engine degrades to batch
        // size 1 with no added latency.
        std::size_t best = 0;
        for (std::size_t i = 1; i < queue_.size(); ++i)
            if (queue_[i].request.priority < queue_[best].request.priority)
                best = i;
        const std::string model_name = queue_[best].request.model;

        std::vector<std::size_t> chosen;
        chosen.reserve(std::min(queue_.size(), config_.max_batch));
        for (std::size_t cls = 0;
             cls < kPriorityCount && chosen.size() < config_.max_batch;
             ++cls) {
            for (std::size_t i = 0;
                 i < queue_.size() && chosen.size() < config_.max_batch;
                 ++i) {
                if (queue_[i].request.model == model_name &&
                    static_cast<std::size_t>(queue_[i].request.priority) ==
                        cls)
                    chosen.push_back(i);
            }
        }
        std::vector<Pending> batch;
        batch.reserve(chosen.size());
        std::vector<bool> taken(queue_.size(), false);
        for (std::size_t i : chosen) {
            batch.push_back(std::move(queue_[i]));
            taken[i] = true;
        }
        std::deque<Pending> rest;
        for (std::size_t i = 0; i < queue_.size(); ++i)
            if (!taken[i])
                rest.push_back(std::move(queue_[i]));
        queue_.swap(rest);

        const std::size_t batch_size = batch.size();
        queued_per_model_[model_name] -= batch_size;
        metrics_.queueDepthAdd(
            -static_cast<std::ptrdiff_t>(batch_size));
        in_flight_ += batch_size;
        mutex_.unlock();
        space_cv_.notify_all();

        runBatch(model_name, std::move(batch));

        mutex_.lock();
        in_flight_ -= batch_size;
        if (queue_.empty() && in_flight_ == 0)
            idle_cv_.notify_all();
    }
    mutex_.unlock();
}

void
InferenceEngine::runBatch(const std::string &model_name,
                          std::vector<Pending> batch)
{
    // One batch can mix plain requests with ensemble member
    // sub-requests for the same model name. Plain requests run on the
    // instance acquired here (hot-swaps take effect per batch); member
    // sub-requests run on the instance their job pinned at submit, so
    // an ensemble request stays deterministic across a member
    // unload/hot-swap mid-flight.
    bool has_plain = false;
    bool has_member = false;
    for (const Pending &pending : batch) {
        if (pending.job)
            has_member = true;
        else
            has_plain = true;
    }

    std::shared_ptr<const DonnModel> shared;
    if (has_plain) {
        try {
            shared = registry_.acquire(model_name);
        } catch (...) {
            if (!has_member) {
                const auto done = std::chrono::steady_clock::now();
                {
                    MutexLock lock(mutex_);
                    stats_.requests += batch.size();
                    stats_.failed += batch.size();
                }
                for (Pending &pending : batch) {
                    const double ms =
                        millisecondsBetween(pending.enqueued, done);
                    metrics_.recordResponse(ServeStatus::UnknownModel, ms);
                    failPending(pending, ServeStatus::UnknownModel,
                                "unknown model: " + model_name, ms);
                }
                return;
            }
            // Mixed batch racing an unload: the plain requests fail
            // UnknownModel below, the pinned member work still runs.
        }
    }

    const auto started = std::chrono::steady_clock::now();
    std::vector<InferResponse> responses(batch.size());
    std::vector<ServeStatus> statuses(batch.size(), ServeStatus::Ok);
    std::vector<std::exception_ptr> errors(batch.size());
    std::vector<std::string> messages(batch.size());
    pool_->parallelFor(batch.size(), [&](std::size_t i) {
        const Pending &pending = batch[i];
        const DonnModel *model =
            pending.job ? pending.job->members[pending.member_index].get()
                        : shared.get();
        if (model == nullptr) {
            statuses[i] = ServeStatus::UnknownModel;
            messages[i] = "unknown model: " + model_name;
            return;
        }
        try {
            // Each pool worker leases scratch from its own thread-local
            // arena; the model instance itself is shared and const.
            PropagationWorkspace &workspace =
                PropagationWorkspace::threadLocal();
            const Grid grid = model->spec().grid();
            WorkspaceField u(workspace, grid.n, grid.n);
            // Member sub-requests carry no frame of their own; encode
            // straight from the parent's image (no per-member copy).
            const RealMap &image = pending.job
                                       ? pending.job->parent.request.image
                                       : pending.request.image;
            model->encodeInto(image, u.get());
            InferResponse &response = responses[i];
            response.logits = model->inferLogitsInPlace(u.get(), workspace);
            response.prediction = static_cast<int>(
                std::max_element(response.logits.begin(),
                                 response.logits.end()) -
                response.logits.begin());
        } catch (const std::exception &e) {
            statuses[i] = ServeStatus::BadInput;
            errors[i] = std::current_exception();
            messages[i] =
                e.what()[0] != '\0' ? e.what() : "inference failed";
        } catch (...) {
            statuses[i] = ServeStatus::BadInput;
            errors[i] = std::current_exception();
            messages[i] = "unknown inference error";
        }
    });

    const auto done = std::chrono::steady_clock::now();
    std::size_t failed = 0;
    for (const ServeStatus status : statuses)
        failed += status == ServeStatus::Ok ? 0 : 1;

    // Recent per-request service time feeds retryAfterSeconds(). The
    // dispatcher is the only writer, so load+store is race-free.
    const double per_request_ms = millisecondsBetween(started, done) /
                                  static_cast<double>(batch.size());
    const double prev = service_ms_ewma_.load(std::memory_order_relaxed);
    service_ms_ewma_.store(prev == 0.0
                               ? per_request_ms
                               : 0.8 * prev + 0.2 * per_request_ms,
                           std::memory_order_relaxed);

    // Stats are committed before any promise resolves, so a client that
    // just observed its future complete reads consistent counters.
    {
        MutexLock lock(mutex_);
        stats_.batches += 1;
        stats_.max_batch = std::max(stats_.max_batch, batch.size());
        stats_.requests += batch.size();
        stats_.failed += failed;
    }
    metrics_.recordBatch(batch.size());

    for (std::size_t i = 0; i < batch.size(); ++i) {
        const double ms = millisecondsBetween(batch[i].enqueued, done);
        metrics_.recordResponse(statuses[i], ms);
        if (batch[i].job) {
            // The last member to resolve fuses and answers the parent.
            ensembleMemberDone(batch[i], statuses[i],
                               std::move(responses[i].logits),
                               batch.size(), messages[i]);
            continue;
        }
        if (statuses[i] != ServeStatus::Ok) {
            if (errors[i] && batch[i].legacy) {
                batch[i].promise.set_exception(errors[i]);
            } else {
                failPending(batch[i], statuses[i], messages[i], ms);
            }
            continue;
        }
        InferResponse &response = responses[i];
        response.id = batch[i].request.id;
        response.model = model_name;
        response.status = ServeStatus::Ok;
        response.batch_size = batch.size();
        response.latency_ms = ms;
        batch[i].promise.set_value(std::move(response));
    }
}

} // namespace lightridge
