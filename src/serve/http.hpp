/**
 * @file
 * Minimal-dependency HTTP/1.1 message layer for the socket serving
 * front end: an incremental request parser plus response serialization.
 * No sockets here — the parser consumes whatever byte spans the event
 * loop hands it (split across arbitrarily many reads, or several
 * pipelined requests in one read) and the server layer (serve/server)
 * owns the file descriptors.
 *
 * Scope is deliberately the subset a serving API needs: request line +
 * headers + Content-Length body, keep-alive negotiation, hard limits on
 * line/header/body sizes so a hostile peer cannot balloon memory, and a
 * clean typed rejection (501) of chunked transfer-encoding rather than
 * a hang or a mis-framed read.
 */
#pragma once

#include <cstddef>
#include <map>
#include <string>

namespace lightridge {

/** One parsed HTTP request. Header names are lowercased. */
struct HttpRequest
{
    std::string method;  ///< "GET", "POST", ...
    std::string target;  ///< request target, e.g. "/v1/models/m/infer"
    std::string version; ///< "HTTP/1.0" or "HTTP/1.1"
    std::map<std::string, std::string> headers;
    std::string body;

    /** Keep-alive per the version default and Connection header. */
    bool keepAlive() const;

    /** Header value or empty string (name must be lowercase). */
    const std::string &header(const std::string &name) const;
};

/** One HTTP response to serialize. */
struct HttpResponse
{
    int status = 200;
    std::string content_type = "application/json";
    std::map<std::string, std::string> headers; ///< extra headers
    std::string body;
};

/** Reason phrase for the status codes this server emits. */
const char *httpStatusText(int status);

/**
 * Serialize a response with Content-Length framing and the requested
 * Connection disposition.
 */
std::string serializeHttpResponse(const HttpResponse &response,
                                  bool keep_alive);

/**
 * Incremental HTTP/1.1 request parser. Feed it bytes as they arrive;
 * it answers NeedMore until a full request (including any
 * Content-Length body) is buffered, Complete when `request()` is
 * valid, or Error with an HTTP status + reason describing the
 * rejection. After consuming a Complete request, call `next()` — bytes
 * of a pipelined follow-up request that arrived in the same read are
 * retained and re-parsed, so `state()` may be Complete again
 * immediately.
 */
/** Hard limits a hostile peer cannot push the parser past. (Namespace
 *  scope so it can be a default argument — nested classes with default
 *  member initializers cannot, per the standard's completeness rules.) */
struct HttpParserLimits
{
    std::size_t max_request_line = 8192;  ///< method + target + version
    std::size_t max_header_bytes = 16384; ///< all header lines
    std::size_t max_headers = 64;
    std::size_t max_body = 8u << 20; ///< 8 MiB
};

class HttpParser
{
  public:
    enum class State { NeedMore, Complete, Error };

    using Limits = HttpParserLimits;

    explicit HttpParser(Limits limits = Limits());

    /** Append bytes and advance the parse. Returns the new state. */
    State feed(const char *data, std::size_t size);

    State state() const { return state_; }

    /** Parsed request; valid only when state() == Complete. */
    const HttpRequest &request() const { return request_; }

    /** HTTP status to answer with when state() == Error. */
    int errorStatus() const { return error_status_; }

    /** Human-readable rejection reason when state() == Error. */
    const std::string &errorReason() const { return error_reason_; }

    /**
     * Done with the current Complete request: reset for the next one on
     * the same connection, re-parsing any already-buffered pipelined
     * bytes. Returns the new state.
     */
    State next();

    /** Buffered-but-unparsed byte count (diagnostics/tests). */
    std::size_t bufferedBytes() const { return buffer_.size(); }

  private:
    enum class Phase { RequestLine, Headers, Body };

    State advance();
    State fail(int status, std::string reason);
    bool takeLine(std::string &line);

    Limits limits_;
    std::string buffer_;
    Phase phase_ = Phase::RequestLine;
    State state_ = State::NeedMore;
    HttpRequest request_;
    std::size_t header_bytes_ = 0;
    std::size_t body_expected_ = 0;
    int error_status_ = 0;
    std::string error_reason_;
};

} // namespace lightridge
