/**
 * @file
 * Multi-model inference serving engine (the deployment half of the
 * paper's end-to-end story: train once, then serve DONN inference at
 * high throughput).
 *
 * An InferenceEngine accepts asynchronous InferRequests from any number
 * of client threads and executes them through a dynamic micro-batcher: a
 * dispatcher thread coalesces queued same-model requests into batches of
 * up to `max_batch` and fans each batch out across the shared ThreadPool,
 * where every worker runs the const, thread-safe in-place inference path
 * (`DonnModel::inferLogitsInPlace`) against the one registered model
 * instance, leasing scratch from its own per-thread PropagationWorkspace
 * arena. The process-wide FFT-plan and transfer-function caches are
 * shared across all models and clients, and no model is ever cloned per
 * request — results are bitwise-identical to calling
 * `model.inferField(model.encode(image))` directly.
 *
 * Scheduling is SLA-aware (serving API v2, serve/api.hpp): every
 * request carries a steady-clock deadline budget and a Priority class.
 * The dispatcher sweeps expired requests out of the queue before every
 * batch — they are answered with ServeStatus::DeadlineExceeded and
 * never occupy a batch slot — and forms batches most-urgent-first. Per
 * -model admission quotas shed load with ServeStatus::Overloaded
 * (lowest-priority, youngest queued work is evicted first) before the
 * bounded queue can collapse into unbounded waiting. All failures are
 * typed ServeStatus codes on the response; the futures themselves only
 * carry exceptions through the deprecated legacy path.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/api.hpp"
#include "serve/metrics.hpp"
#include "serve/registry.hpp"
#include "tensor/field.hpp"
#include "utils/sync.hpp"
#include "utils/thread_pool.hpp"

namespace lightridge {

/** Micro-batching and admission-control knobs of the serving engine. */
struct BatchingConfig
{
    /** Largest micro-batch one dispatch coalesces (per model). */
    std::size_t max_batch = 64;

    /** Bound on queued requests; submit() blocks when the queue is full
     *  (backpressure instead of unbounded memory growth). */
    std::size_t max_queue = 4096;

    /**
     * Default per-model admission quota: at most this many requests of
     * one model may be queued; past it, load is shed with
     * ServeStatus::Overloaded instead of queueing (lowest-priority
     * youngest queued request of that model is evicted first when the
     * newcomer outranks it). 0 disables admission control and keeps the
     * v1 blocking-backpressure behavior. Socket front ends should set a
     * quota — a shed is a 503 the client can retry; a blocked submit is
     * an IO thread doing nothing.
     */
    std::size_t max_queued_per_model = 0;
};

/** Aggregate serving counters. Ensemble member sub-requests ride the
 *  ordinary queue and count like any other request; the fused parent
 *  response adds one more `requests` tick plus the ensemble counters,
 *  so one 3-member ensemble call contributes 4 to `requests`. */
struct EngineStats
{
    std::uint64_t requests = 0; ///< responses delivered (every status)
    std::uint64_t failed = 0;   ///< responses with status != Ok
    std::uint64_t shed = 0;     ///< of failed: admission-control sheds
    std::uint64_t expired = 0;  ///< of failed: deadline sweep victims
    std::uint64_t batches = 0;  ///< micro-batches dispatched
    std::size_t max_batch = 0;  ///< largest micro-batch observed
    std::uint64_t ensembles = 0; ///< fused ensemble responses delivered
    std::uint64_t fan_out = 0;   ///< member sub-requests fanned out

    double
    meanBatch() const
    {
        return batches > 0
                   ? static_cast<double>(requests - failed) /
                         static_cast<double>(batches)
                   : 0.0;
    }
};

/** Asynchronous multi-client, multi-model inference engine. */
class InferenceEngine
{
  public:
    /**
     * @param registry model source; must outlive the engine. Hot-swaps
     *        and unloads take effect at the next micro-batch; in-flight
     *        batches keep their acquired instance alive.
     * @param config micro-batching + admission knobs
     * @param pool execution pool; nullptr uses ThreadPool::global()
     */
    explicit InferenceEngine(ModelRegistry &registry,
                             BatchingConfig config = {},
                             ThreadPool *pool = nullptr);

    /** Drains every accepted request, then stops the dispatcher. */
    ~InferenceEngine();

    InferenceEngine(const InferenceEngine &) = delete;
    InferenceEngine &operator=(const InferenceEngine &) = delete;

    /**
     * Enqueue a request. Thread-safe. The future always resolves with a
     * response; failures are typed `ServeStatus` codes (unknown model,
     * deadline expired, shed by admission control, bad input), never
     * exceptions. A request past its deadline or shed by a quota may
     * resolve before this call returns. Blocks only when the *global*
     * queue is at max_queue and no per-model quota shed applied.
     *
     * A request naming a declared ensemble fans out to one sub-request
     * per member; sub-requests inherit the request's priority and
     * deadline budget (one shared clock, started at this submit), ride
     * the ordinary per-member-model micro-batching alongside plain
     * traffic, and the future resolves with one fused response once
     * every member has (fusion per the ensemble's FusionRule; any
     * member failure fails the fused response with that member's
     * status — see serve/api.hpp EnsembleSpec).
     * @throws std::runtime_error when the engine is shutting down
     */
    std::future<InferResponse> submit(InferRequest request)
        LIGHTRIDGE_EXCLUDES(mutex_);

    /**
     * v1 exception-style submit: identical enqueueing, scheduling and
     * (bitwise) results, but a non-Ok outcome is delivered as an
     * exception through the future — UnknownModelError for an unknown
     * model, the original worker exception for an inference failure,
     * ServeStatusError otherwise.
     * @deprecated Thin alias for pre-v2 callers; use submit() and
     *             check `InferResponse::status`. Pinned bitwise against
     *             submit() in tests/test_serve.cpp.
     */
    std::future<InferResponse> submitLegacy(InferRequest request)
        LIGHTRIDGE_EXCLUDES(mutex_);

    /**
     * Synchronous convenience: submit + wait. One-at-a-time callers get
     * singleton batches — this is the "sequential dispatch" baseline the
     * serving benchmark compares micro-batching against.
     */
    InferResponse inferNow(InferRequest request);

    /** Block until every accepted request has completed. */
    void drain() LIGHTRIDGE_EXCLUDES(mutex_);

    /**
     * Hold off forming micro-batches (already-running batches finish;
     * submissions keep queueing and admission control keeps applying).
     * For maintenance windows and deterministic scheduling tests.
     */
    void pause() LIGHTRIDGE_EXCLUDES(mutex_);

    /** Resume batch formation; the deadline sweep runs first, so work
     *  that expired while paused never reaches a batch. */
    void resume() LIGHTRIDGE_EXCLUDES(mutex_);

    /** Override the admission quota for one model (0 = no quota). Takes
     *  effect for subsequent submissions. */
    void setModelQuota(const std::string &model, std::size_t max_queued)
        LIGHTRIDGE_EXCLUDES(mutex_);

    /**
     * Seconds a shed client should wait before retrying, derived from
     * the live backlog (queued + in-flight requests) times the recent
     * per-request batch service time (an EWMA the dispatcher maintains),
     * clamped to [1, 60]. Every 503 path of the HTTP front end returns
     * this same value so clients back off consistently.
     */
    int retryAfterSeconds() const LIGHTRIDGE_EXCLUDES(mutex_);

    /** Serving counters (consistent snapshot). */
    EngineStats stats() const LIGHTRIDGE_EXCLUDES(mutex_);

    /** Lock-cheap metric registry (latency/batch histograms, per-status
     *  counters, queue-depth gauge) — what GET /metrics renders. */
    const ServeMetrics &metrics() const { return metrics_; }

    const BatchingConfig &config() const { return config_; }

  private:
    struct EnsembleJob;

    struct Pending
    {
        InferRequest request;
        std::promise<InferResponse> promise;
        std::chrono::steady_clock::time_point enqueued;
        bool legacy = false; ///< deliver failures as exceptions (v1)

        /** Fan-out bookkeeping: member sub-requests of an ensemble
         *  carry the shared job and their member slot; their `request`
         *  holds the member model name but an *empty* image (batches
         *  read the parent's frame in place — no per-member copy). */
        std::shared_ptr<EnsembleJob> job;
        std::size_t member_index = 0;
    };

    /**
     * Shared state of one in-flight ensemble request. Created at
     * submit, referenced by every member sub-request; the last member
     * to resolve (any status, any thread) fuses and answers the parent.
     * Member model instances are pinned at submit, so unloading or
     * hot-swapping a member mid-request never changes this request's
     * results.
     */
    struct EnsembleJob
    {
        Pending parent; ///< client-facing promise + original request
        EnsembleSpec spec;
        std::vector<std::shared_ptr<const DonnModel>> members;

        Mutex mutex;
        std::size_t remaining LIGHTRIDGE_GUARDED_BY(mutex) = 0;
        std::vector<std::vector<Real>> member_logits
            LIGHTRIDGE_GUARDED_BY(mutex);
        /** Per-member outcome; the fused failure is the first non-Ok
         *  in *member order*, independent of completion order. */
        std::vector<ServeStatus> member_status
            LIGHTRIDGE_GUARDED_BY(mutex);
        std::vector<std::string> member_error
            LIGHTRIDGE_GUARDED_BY(mutex);
        std::size_t max_member_batch LIGHTRIDGE_GUARDED_BY(mutex) = 0;
    };

    std::future<InferResponse> enqueue(InferRequest request, bool legacy)
        LIGHTRIDGE_EXCLUDES(mutex_);
    std::future<InferResponse> enqueueEnsemble(InferRequest request,
                                               bool legacy)
        LIGHTRIDGE_EXCLUDES(mutex_);

    /**
     * Admission-control core shared by plain and ensemble submits:
     * queue `pending` under quota + backpressure rules, moving quota
     * victims (an evicted queued entry or the newcomer itself) into
     * `shed` for the caller to resolve outside the lock.
     * @return true when `pending` was queued
     * @throws std::runtime_error when the engine stops while blocked
     */
    bool admitLocked(Pending &&pending, std::vector<Pending> &shed)
        LIGHTRIDGE_REQUIRES(mutex_);

    std::size_t quotaForLocked(const std::string &model) const
        LIGHTRIDGE_REQUIRES(mutex_);
    void dispatchLoop() LIGHTRIDGE_EXCLUDES(mutex_);
    void runBatch(const std::string &model_name, std::vector<Pending> batch)
        LIGHTRIDGE_EXCLUDES(mutex_);

    /** Resolve one pending with a non-Ok status, routing ensemble
     *  member sub-requests to their job. Does not touch stats. */
    void deliverFailure(Pending &pending, ServeStatus status,
                        const std::string &error, double latency_ms)
        LIGHTRIDGE_EXCLUDES(mutex_);

    /** Record one member result on its job; the last member triggers
     *  finishEnsemble. Consumes `pending.job`. */
    void ensembleMemberDone(Pending &pending, ServeStatus status,
                            std::vector<Real> &&logits,
                            std::size_t batch_size,
                            const std::string &error)
        LIGHTRIDGE_EXCLUDES(mutex_);

    /** Fuse member logits (or pick the first member failure), commit
     *  parent stats/metrics, and resolve the parent promise. */
    void finishEnsemble(EnsembleJob &job) LIGHTRIDGE_EXCLUDES(mutex_);

    /** Resolve one pending with a non-Ok status (value or, for legacy
     *  pendings, the matching exception). Does not touch stats. */
    static void failPending(Pending &pending, ServeStatus status,
                            const std::string &error, double latency_ms);

    ModelRegistry &registry_;
    BatchingConfig config_;
    ThreadPool *pool_;

    mutable Mutex mutex_;
    CondVar queued_cv_; ///< dispatcher wakeup
    CondVar space_cv_;  ///< submit backpressure
    CondVar idle_cv_;   ///< drain wakeup
    std::deque<Pending> queue_ LIGHTRIDGE_GUARDED_BY(mutex_);
    std::map<std::string, std::size_t> queued_per_model_
        LIGHTRIDGE_GUARDED_BY(mutex_);
    std::map<std::string, std::size_t> quota_overrides_
        LIGHTRIDGE_GUARDED_BY(mutex_);
    std::size_t in_flight_ LIGHTRIDGE_GUARDED_BY(mutex_) = 0;
    bool stop_ LIGHTRIDGE_GUARDED_BY(mutex_) = false;
    bool paused_ LIGHTRIDGE_GUARDED_BY(mutex_) = false;
    EngineStats stats_ LIGHTRIDGE_GUARDED_BY(mutex_);
    ServeMetrics metrics_; ///< internally wait-free (relaxed atomics)

    /** EWMA of per-request batch service time in ms (dispatcher-only
     *  writer; retryAfterSeconds() reads it relaxed). */
    std::atomic<double> service_ms_ewma_{0.0};

    std::thread dispatcher_;
};

} // namespace lightridge
