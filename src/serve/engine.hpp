/**
 * @file
 * Multi-model inference serving engine (the deployment half of the
 * paper's end-to-end story: train once, then serve DONN inference at
 * high throughput).
 *
 * An InferenceEngine accepts asynchronous InferRequests from any number
 * of client threads and executes them through a dynamic micro-batcher: a
 * dispatcher thread coalesces queued same-model requests into batches of
 * up to `max_batch` and fans each batch out across the shared ThreadPool,
 * where every worker runs the const, thread-safe in-place inference path
 * (`DonnModel::inferLogitsInPlace`) against the one registered model
 * instance, leasing scratch from its own per-thread PropagationWorkspace
 * arena. The process-wide FFT-plan and transfer-function caches are
 * shared across all models and clients, and no model is ever cloned per
 * request — results are bitwise-identical to calling
 * `model.inferField(model.encode(image))` directly.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.hpp"
#include "tensor/field.hpp"
#include "utils/thread_pool.hpp"

namespace lightridge {

/** Micro-batching knobs of the serving engine. */
struct BatchingConfig
{
    /** Largest micro-batch one dispatch coalesces (per model). */
    std::size_t max_batch = 64;

    /** Bound on queued requests; submit() blocks when the queue is full
     *  (backpressure instead of unbounded memory growth). */
    std::size_t max_queue = 4096;
};

/** One inference request: a raw amplitude frame for a named model. */
struct InferRequest
{
    std::string model;  ///< registry name to run against
    RealMap image;      ///< native-resolution amplitude frame (encode
                        ///< resizes to the model's system grid)
    std::uint64_t id = 0; ///< caller-chosen correlation id
};

/** Result of one served request. */
struct InferResponse
{
    std::uint64_t id = 0;
    std::string model;
    std::vector<Real> logits;   ///< detector readout
    int prediction = -1;        ///< argmax class
    double latency_ms = 0;      ///< submit-to-completion wall time
    std::size_t batch_size = 1; ///< micro-batch the request rode in
};

/** Aggregate serving counters. */
struct EngineStats
{
    std::uint64_t requests = 0; ///< responses delivered (incl. failed)
    std::uint64_t failed = 0;   ///< requests completed with an exception
    std::uint64_t batches = 0;  ///< micro-batches dispatched
    std::size_t max_batch = 0;  ///< largest micro-batch observed

    double
    meanBatch() const
    {
        return batches > 0
                   ? static_cast<double>(requests) /
                         static_cast<double>(batches)
                   : 0.0;
    }
};

/** Asynchronous multi-client, multi-model inference engine. */
class InferenceEngine
{
  public:
    /**
     * @param registry model source; must outlive the engine. Hot-swaps
     *        and unloads take effect at the next micro-batch; in-flight
     *        batches keep their acquired instance alive.
     * @param config micro-batching knobs
     * @param pool execution pool; nullptr uses ThreadPool::global()
     */
    explicit InferenceEngine(ModelRegistry &registry,
                             BatchingConfig config = {},
                             ThreadPool *pool = nullptr);

    /** Drains every accepted request, then stops the dispatcher. */
    ~InferenceEngine();

    InferenceEngine(const InferenceEngine &) = delete;
    InferenceEngine &operator=(const InferenceEngine &) = delete;

    /**
     * Enqueue a request. Thread-safe; blocks only when the queue is at
     * max_queue (backpressure). The future resolves with the response,
     * or with an exception (UnknownModelError when the model is not —
     * or no longer — registered).
     * @throws std::runtime_error when the engine is shutting down
     */
    std::future<InferResponse> submit(InferRequest request);

    /**
     * Synchronous convenience: submit + wait. One-at-a-time callers get
     * singleton batches — this is the "sequential dispatch" baseline the
     * serving benchmark compares micro-batching against.
     */
    InferResponse inferNow(InferRequest request);

    /** Block until every accepted request has completed. */
    void drain();

    /** Serving counters (consistent snapshot). */
    EngineStats stats() const;

    const BatchingConfig &config() const { return config_; }

  private:
    struct Pending
    {
        InferRequest request;
        std::promise<InferResponse> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    void dispatchLoop();
    void runBatch(const std::string &model_name,
                  std::vector<Pending> batch);

    ModelRegistry &registry_;
    BatchingConfig config_;
    ThreadPool *pool_;

    mutable std::mutex mutex_;
    std::condition_variable queued_cv_; ///< dispatcher wakeup
    std::condition_variable space_cv_;  ///< submit backpressure
    std::condition_variable idle_cv_;   ///< drain wakeup
    std::deque<Pending> queue_;
    std::size_t in_flight_ = 0;
    bool stop_ = false;
    EngineStats stats_;

    std::thread dispatcher_;
};

} // namespace lightridge
