#include "serve/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <thread>

namespace lightridge {

std::size_t
StripedCounter::stripeIndex() noexcept
{
    // One stripe per thread, fixed for the thread's lifetime. The hash
    // of the thread id spreads pool workers and IO threads across the
    // stripes; collisions only cost a shared cache line, never
    // correctness.
    static thread_local const std::size_t stripe =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        kStripes;
    return stripe;
}

void
LatencyHistogram::record(double ms) noexcept
{
    // Bucket i spans (2^(i-1), 2^i] microseconds; everything at or
    // below 1us lands in bucket 0, everything past the range in the
    // open-ended last bucket.
    const double us = ms * 1e3;
    std::size_t bucket = 0;
    double upper = 1.0;
    while (bucket + 1 < kBuckets && us > upper) {
        upper *= 2.0;
        ++bucket;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
LatencyHistogram::count() const noexcept
{
    std::uint64_t total = 0;
    for (const auto &bucket : buckets_)
        total += bucket.load(std::memory_order_relaxed);
    return total;
}

double
LatencyHistogram::percentileMs(double p) const noexcept
{
    const std::uint64_t total = count();
    if (total == 0)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    const double rank = p * static_cast<double>(total);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        cumulative += buckets_[i].load(std::memory_order_relaxed);
        if (static_cast<double>(cumulative) >= rank)
            return bucketUpperMs(i);
    }
    return bucketUpperMs(kBuckets - 1);
}

double
LatencyHistogram::bucketUpperMs(std::size_t i) noexcept
{
    if (i + 1 >= kBuckets)
        return std::numeric_limits<double>::infinity();
    return std::ldexp(1.0, static_cast<int>(i)) * 1e-3; // 2^i us -> ms
}

void
BatchHistogram::record(std::size_t batch_size) noexcept
{
    std::size_t bucket = 0;
    while (bucket + 1 < kBuckets && batch_size > bucketUpper(bucket))
        ++bucket;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
BatchHistogram::count() const noexcept
{
    std::uint64_t total = 0;
    for (const auto &bucket : buckets_)
        total += bucket.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
ServeMetrics::requestCount() const noexcept
{
    std::uint64_t total = 0;
    for (const StripedCounter &counter : by_status_)
        total += counter.value();
    return total;
}

std::string
ServeMetrics::renderPrometheus(const std::string &extra) const
{
    std::ostringstream out;
    auto line = [&](const char *name, const std::string &labels,
                    double value) {
        out << "lightridge_" << name;
        if (!labels.empty())
            out << "{" << labels << "}";
        char buf[40];
        if (std::isinf(value)) {
            out << " +Inf\n";
            return;
        }
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        out << " " << buf << "\n";
    };

    out << "# TYPE lightridge_requests_total counter\n";
    for (std::size_t s = 0; s < kServeStatusCount; ++s)
        line("requests_total",
             std::string("status=\"") +
                 serveStatusName(static_cast<ServeStatus>(s)) + "\"",
             static_cast<double>(statusCount(static_cast<ServeStatus>(s))));

    out << "# TYPE lightridge_queue_depth gauge\n";
    line("queue_depth", {}, static_cast<double>(queueDepth()));

    out << "# TYPE lightridge_ensemble_requests_total counter\n";
    line("ensemble_requests_total", {},
         static_cast<double>(ensembleCount()));
    out << "# TYPE lightridge_ensemble_fan_out_total counter\n";
    line("ensemble_fan_out_total", {},
         static_cast<double>(ensembleFanOut()));

    out << "# TYPE lightridge_shed_total counter\n";
    line("shed_total", {},
         static_cast<double>(statusCount(ServeStatus::Overloaded)));
    out << "# TYPE lightridge_deadline_expired_total counter\n";
    line("deadline_expired_total", {},
         static_cast<double>(statusCount(ServeStatus::DeadlineExceeded)));

    out << "# TYPE lightridge_latency_ms histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
        cumulative += latency_.bucketCount(i);
        char le[40];
        const double upper = LatencyHistogram::bucketUpperMs(i);
        if (std::isinf(upper))
            std::snprintf(le, sizeof(le), "le=\"+Inf\"");
        else
            std::snprintf(le, sizeof(le), "le=\"%.6g\"", upper);
        line("latency_ms_bucket", le, static_cast<double>(cumulative));
    }
    line("latency_ms_count", {}, static_cast<double>(latency_.count()));
    for (const double p : {0.50, 0.95, 0.99}) {
        char q[40];
        std::snprintf(q, sizeof(q), "quantile=\"%.2f\"", p);
        line("latency_ms", q, latency_.percentileMs(p));
    }

    out << "# TYPE lightridge_batch_size histogram\n";
    cumulative = 0;
    for (std::size_t i = 0; i < BatchHistogram::kBuckets; ++i) {
        cumulative += batch_.bucketCount(i);
        char le[40];
        std::snprintf(le, sizeof(le), "le=\"%zu\"",
                      BatchHistogram::bucketUpper(i));
        line("batch_size_bucket", le, static_cast<double>(cumulative));
    }
    line("batch_size_count", {}, static_cast<double>(batch_.count()));

    out << extra;
    return out.str();
}

} // namespace lightridge
