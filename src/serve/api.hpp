/**
 * @file
 * Versioned public serving API: the request/response surface every
 * LightRidge serving front end speaks — the in-process
 * `InferenceEngine::submit` path, the JSON-lines CLI, and the HTTP/1.1
 * socket server all exchange exactly these types.
 *
 * v2 (this header) foregrounds SLA-aware scheduling: an InferRequest
 * carries a steady-clock `deadline` budget and a `Priority` class, and
 * an InferResponse reports failure through a typed `ServeStatus` code
 * instead of the v1 exception-only path. v1 callers keep working: the
 * new fields default to "no deadline / normal priority", and
 * `InferenceEngine::submitLegacy` preserves the old exception-carrying
 * future semantics bit-for-bit (pinned in tests/test_serve.cpp).
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/field.hpp"

namespace lightridge {

/** Serving API version this header describes (HTTP routes are /v1/...;
 *  the request/response *schema* version is what this tracks). */
inline constexpr int kServeApiVersion = 2;

/** Typed completion code of a served request. */
enum class ServeStatus : std::uint8_t {
    Ok = 0,               ///< inference ran; logits/prediction valid
    DeadlineExceeded = 1, ///< expired before reaching a batch slot
    Overloaded = 2,       ///< shed by admission control (quota/queue)
    UnknownModel = 3,     ///< no such model in the registry
    BadInput = 4,         ///< request rejected or inference failed
};

/** Number of ServeStatus values (metrics arrays are indexed by status). */
inline constexpr std::size_t kServeStatusCount = 5;

/** Stable wire name of a status code ("ok", "deadline_exceeded", ...). */
const char *serveStatusName(ServeStatus status);

/** Scheduling class of a request. Lower value = more urgent; admission
 *  control sheds the least urgent queued work first, and micro-batches
 *  are formed most-urgent-first. */
enum class Priority : std::uint8_t {
    Interactive = 0, ///< latency-sensitive foreground traffic
    Batch = 1,       ///< default: throughput traffic
    BestEffort = 2,  ///< first to shed under pressure
};

/** Number of priority classes. */
inline constexpr std::size_t kPriorityCount = 3;

/** Stable wire name of a priority class ("interactive", "batch",
 *  "best_effort"). */
const char *priorityName(Priority priority);

/**
 * Parse a wire priority name.
 * @throws std::invalid_argument on an unknown name
 */
Priority priorityFromName(const std::string &name);

/** How an ensemble combines its members' detector readouts. */
enum class FusionRule : std::uint8_t {
    MeanLogits = 0, ///< arithmetic mean of the raw member logits
    MeanProbs = 1,  ///< mean of the per-member softmax distributions
    Vote = 2,       ///< one argmax vote per member, fused logits are
                    ///< the per-class vote counts
};

/** Number of fusion rules. */
inline constexpr std::size_t kFusionRuleCount = 3;

/** Stable wire name of a fusion rule ("mean_logits", "mean_probs",
 *  "vote"). */
const char *fusionRuleName(FusionRule rule);

/**
 * Parse a wire fusion-rule name.
 * @throws std::invalid_argument on an unknown name
 */
FusionRule fusionRuleFromName(const std::string &name);

/**
 * Declaration of an ensemble: one logical model name that fans a
 * request out to N registered member models and fuses their logits
 * into one response.
 *
 * Per-member status semantics: the fused response is Ok only when
 * every member produced logits. Any member failure — DeadlineExceeded
 * from the shared budget, Overloaded from a member-model quota shed,
 * UnknownModel from an unload race, BadInput from an inference error —
 * fails the whole fused response with that member's status (the first
 * failure in member order wins) and an `error` naming the member.
 */
struct EnsembleSpec
{
    std::string name;                 ///< logical (routable) model name
    std::vector<std::string> members; ///< registered member model names
    FusionRule fusion = FusionRule::MeanLogits;
};

/**
 * Fuse per-member logit vectors into `out` (resized to the class
 * count). Deterministic operation order — members are consumed in
 * vector order, so two calls over the same inputs are bitwise
 * identical, which is what pins the engine's fused responses against
 * offline fusion in tests:
 *  - mean_logits: sum member logits class-wise, then scale by 1/N.
 *  - mean_probs: per member, a max-stabilized softmax; the per-class
 *    probabilities are accumulated pre-scaled by 1/N.
 *  - vote: per member, argmax (first max wins ties); `out[c]` is the
 *    number of members that voted for class c.
 * @throws std::invalid_argument when `member_logits` is empty or the
 *         member vectors disagree on class count
 */
void fuseLogits(FusionRule rule,
                const std::vector<std::vector<Real>> &member_logits,
                std::vector<Real> &out);

/** One inference request: a raw amplitude frame for a named model. */
struct InferRequest
{
    std::string model;    ///< registry name to run against
    RealMap image;        ///< native-resolution amplitude frame (encode
                          ///< resizes to the model's system grid)
    std::uint64_t id = 0; ///< caller-chosen correlation id

    /**
     * Completion budget measured from submit() on the steady clock.
     * Zero means "no deadline". A request whose budget has elapsed is
     * answered with ServeStatus::DeadlineExceeded by the dispatcher's
     * expiry sweep and never occupies a batch slot (a non-positive
     * budget is therefore expired on arrival).
     */
    std::chrono::steady_clock::duration deadline{};

    /** Scheduling class; see Priority. */
    Priority priority = Priority::Batch;
};

/** Result of one served request. Non-Ok responses carry an empty logits
 *  vector, prediction -1, and a human-readable `error`. */
struct InferResponse
{
    std::uint64_t id = 0;
    std::string model;
    ServeStatus status = ServeStatus::Ok;
    std::string error;          ///< empty when status == Ok
    std::vector<Real> logits;   ///< detector readout
    int prediction = -1;        ///< argmax class
    double latency_ms = 0;      ///< submit-to-completion wall time
    std::size_t batch_size = 0; ///< micro-batch the request rode in
                                ///< (0 when it never reached a batch;
                                ///< largest member batch for ensembles)
    std::size_t fan_out = 0;    ///< member sub-requests an ensemble
                                ///< fanned out to (0 for plain models)

    bool ok() const { return status == ServeStatus::Ok; }
};

/** Exception form of a non-Ok response, thrown by the deprecated
 *  exception-style entry points (submitLegacy / v1 inferNow semantics). */
class ServeStatusError : public std::runtime_error
{
  public:
    ServeStatusError(ServeStatus status, const std::string &what)
        : std::runtime_error(what), status_(status)
    {}

    ServeStatus status() const { return status_; }

  private:
    ServeStatus status_;
};

} // namespace lightridge
