/**
 * @file
 * Versioned public serving API: the request/response surface every
 * LightRidge serving front end speaks — the in-process
 * `InferenceEngine::submit` path, the JSON-lines CLI, and the HTTP/1.1
 * socket server all exchange exactly these types.
 *
 * v2 (this header) foregrounds SLA-aware scheduling: an InferRequest
 * carries a steady-clock `deadline` budget and a `Priority` class, and
 * an InferResponse reports failure through a typed `ServeStatus` code
 * instead of the v1 exception-only path. v1 callers keep working: the
 * new fields default to "no deadline / normal priority", and
 * `InferenceEngine::submitLegacy` preserves the old exception-carrying
 * future semantics bit-for-bit (pinned in tests/test_serve.cpp).
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/field.hpp"

namespace lightridge {

/** Serving API version this header describes (HTTP routes are /v1/...;
 *  the request/response *schema* version is what this tracks). */
inline constexpr int kServeApiVersion = 2;

/** Typed completion code of a served request. */
enum class ServeStatus : std::uint8_t {
    Ok = 0,               ///< inference ran; logits/prediction valid
    DeadlineExceeded = 1, ///< expired before reaching a batch slot
    Overloaded = 2,       ///< shed by admission control (quota/queue)
    UnknownModel = 3,     ///< no such model in the registry
    BadInput = 4,         ///< request rejected or inference failed
};

/** Number of ServeStatus values (metrics arrays are indexed by status). */
inline constexpr std::size_t kServeStatusCount = 5;

/** Stable wire name of a status code ("ok", "deadline_exceeded", ...). */
const char *serveStatusName(ServeStatus status);

/** Scheduling class of a request. Lower value = more urgent; admission
 *  control sheds the least urgent queued work first, and micro-batches
 *  are formed most-urgent-first. */
enum class Priority : std::uint8_t {
    Interactive = 0, ///< latency-sensitive foreground traffic
    Batch = 1,       ///< default: throughput traffic
    BestEffort = 2,  ///< first to shed under pressure
};

/** Number of priority classes. */
inline constexpr std::size_t kPriorityCount = 3;

/** Stable wire name of a priority class ("interactive", "batch",
 *  "best_effort"). */
const char *priorityName(Priority priority);

/**
 * Parse a wire priority name.
 * @throws std::invalid_argument on an unknown name
 */
Priority priorityFromName(const std::string &name);

/** One inference request: a raw amplitude frame for a named model. */
struct InferRequest
{
    std::string model;    ///< registry name to run against
    RealMap image;        ///< native-resolution amplitude frame (encode
                          ///< resizes to the model's system grid)
    std::uint64_t id = 0; ///< caller-chosen correlation id

    /**
     * Completion budget measured from submit() on the steady clock.
     * Zero means "no deadline". A request whose budget has elapsed is
     * answered with ServeStatus::DeadlineExceeded by the dispatcher's
     * expiry sweep and never occupies a batch slot (a non-positive
     * budget is therefore expired on arrival).
     */
    std::chrono::steady_clock::duration deadline{};

    /** Scheduling class; see Priority. */
    Priority priority = Priority::Batch;
};

/** Result of one served request. Non-Ok responses carry an empty logits
 *  vector, prediction -1, and a human-readable `error`. */
struct InferResponse
{
    std::uint64_t id = 0;
    std::string model;
    ServeStatus status = ServeStatus::Ok;
    std::string error;          ///< empty when status == Ok
    std::vector<Real> logits;   ///< detector readout
    int prediction = -1;        ///< argmax class
    double latency_ms = 0;      ///< submit-to-completion wall time
    std::size_t batch_size = 0; ///< micro-batch the request rode in
                                ///< (0 when it never reached a batch)

    bool ok() const { return status == ServeStatus::Ok; }
};

/** Exception form of a non-Ok response, thrown by the deprecated
 *  exception-style entry points (submitLegacy / v1 inferNow semantics). */
class ServeStatusError : public std::runtime_error
{
  public:
    ServeStatusError(ServeStatus status, const std::string &what)
        : std::runtime_error(what), status_(status)
    {}

    ServeStatus status() const { return status_; }

  private:
    ServeStatus status_;
};

} // namespace lightridge
