#include "serve/http.hpp"

#include <algorithm>
#include <cctype>

namespace lightridge {

namespace {

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t begin = s.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return {};
    std::size_t end = s.find_last_not_of(" \t");
    return s.substr(begin, end - begin + 1);
}

/** Case-insensitive comma-list membership ("keep-alive, upgrade"). */
bool
listContains(const std::string &value, const std::string &token)
{
    std::size_t pos = 0;
    while (pos < value.size()) {
        std::size_t comma = value.find(',', pos);
        if (comma == std::string::npos)
            comma = value.size();
        if (toLower(trim(value.substr(pos, comma - pos))) == token)
            return true;
        pos = comma + 1;
    }
    return false;
}

} // namespace

bool
HttpRequest::keepAlive() const
{
    const std::string &connection = header("connection");
    if (listContains(connection, "close"))
        return false;
    if (version == "HTTP/1.0")
        return listContains(connection, "keep-alive");
    return true; // HTTP/1.1 default
}

const std::string &
HttpRequest::header(const std::string &name) const
{
    static const std::string empty;
    auto it = headers.find(name);
    return it != headers.end() ? it->second : empty;
}

const char *
httpStatusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 204: return "No Content";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 413: return "Payload Too Large";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 501: return "Not Implemented";
      case 503: return "Service Unavailable";
      case 504: return "Gateway Timeout";
      default: return "Unknown";
    }
}

std::string
serializeHttpResponse(const HttpResponse &response, bool keep_alive)
{
    std::string out;
    out.reserve(response.body.size() + 256);
    out += "HTTP/1.1 ";
    out += std::to_string(response.status);
    out += " ";
    out += httpStatusText(response.status);
    out += "\r\n";
    out += "Content-Type: ";
    out += response.content_type;
    out += "\r\n";
    out += "Content-Length: ";
    out += std::to_string(response.body.size());
    out += "\r\n";
    out += keep_alive ? "Connection: keep-alive\r\n"
                      : "Connection: close\r\n";
    for (const auto &[name, value] : response.headers) {
        out += name;
        out += ": ";
        out += value;
        out += "\r\n";
    }
    out += "\r\n";
    out += response.body;
    return out;
}

HttpParser::HttpParser(Limits limits) : limits_(limits) {}

HttpParser::State
HttpParser::feed(const char *data, std::size_t size)
{
    if (state_ == State::Error)
        return state_;
    buffer_.append(data, size);
    if (state_ == State::Complete)
        return state_; // pipelined bytes wait for next()
    return advance();
}

HttpParser::State
HttpParser::next()
{
    if (state_ != State::Complete)
        return state_;
    request_ = HttpRequest{};
    phase_ = Phase::RequestLine;
    header_bytes_ = 0;
    body_expected_ = 0;
    state_ = State::NeedMore;
    return advance();
}

HttpParser::State
HttpParser::fail(int status, std::string reason)
{
    state_ = State::Error;
    error_status_ = status;
    error_reason_ = std::move(reason);
    buffer_.clear();
    return state_;
}

/** Pop one CRLF- (or bare-LF-) terminated line off the buffer. */
bool
HttpParser::takeLine(std::string &line)
{
    const std::size_t eol = buffer_.find('\n');
    if (eol == std::string::npos)
        return false;
    line.assign(buffer_, 0, eol);
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    buffer_.erase(0, eol + 1);
    return true;
}

HttpParser::State
HttpParser::advance()
{
    for (;;) {
        if (phase_ == Phase::RequestLine) {
            std::string line;
            if (!takeLine(line)) {
                if (buffer_.size() > limits_.max_request_line)
                    return fail(431, "request line too long");
                return state_ = State::NeedMore;
            }
            if (line.empty())
                continue; // tolerate leading blank lines (RFC 9112 §2.2)
            if (line.size() > limits_.max_request_line)
                return fail(431, "request line too long");
            const std::size_t sp1 = line.find(' ');
            const std::size_t sp2 =
                sp1 == std::string::npos ? std::string::npos
                                         : line.find(' ', sp1 + 1);
            if (sp1 == std::string::npos || sp2 == std::string::npos ||
                line.find(' ', sp2 + 1) != std::string::npos)
                return fail(400, "malformed request line");
            request_.method = line.substr(0, sp1);
            request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
            request_.version = line.substr(sp2 + 1);
            if (request_.method.empty() || request_.target.empty() ||
                request_.target[0] != '/')
                return fail(400, "malformed request line");
            if (request_.version != "HTTP/1.1" &&
                request_.version != "HTTP/1.0")
                return fail(400, "unsupported HTTP version");
            phase_ = Phase::Headers;
            continue;
        }

        if (phase_ == Phase::Headers) {
            std::string line;
            if (!takeLine(line)) {
                if (buffer_.size() > limits_.max_header_bytes)
                    return fail(431, "headers too large");
                return state_ = State::NeedMore;
            }
            if (!line.empty()) {
                header_bytes_ += line.size();
                if (header_bytes_ > limits_.max_header_bytes)
                    return fail(431, "headers too large");
                if (request_.headers.size() >= limits_.max_headers)
                    return fail(431, "too many headers");
                const std::size_t colon = line.find(':');
                if (colon == std::string::npos || colon == 0)
                    return fail(400, "malformed header line");
                request_.headers[toLower(trim(line.substr(0, colon)))] =
                    trim(line.substr(colon + 1));
                continue;
            }
            // End of headers: decide the body framing.
            if (!request_.header("transfer-encoding").empty())
                return fail(501,
                            "transfer-encoding (chunked) not supported; "
                            "use content-length");
            const std::string &length = request_.header("content-length");
            if (!length.empty()) {
                if (length.find_first_not_of("0123456789") !=
                        std::string::npos ||
                    length.size() > 12)
                    return fail(400, "invalid content-length");
                body_expected_ =
                    static_cast<std::size_t>(std::stoull(length));
                if (body_expected_ > limits_.max_body)
                    return fail(413, "body exceeds limit");
            }
            if (body_expected_ == 0) {
                request_.body.clear();
                return state_ = State::Complete;
            }
            phase_ = Phase::Body;
            continue;
        }

        // Body: exactly content-length bytes; any surplus already in
        // the buffer belongs to the next pipelined request.
        if (buffer_.size() < body_expected_)
            return state_ = State::NeedMore;
        request_.body.assign(buffer_, 0, body_expected_);
        buffer_.erase(0, body_expected_);
        return state_ = State::Complete;
    }
}

} // namespace lightridge
