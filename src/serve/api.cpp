#include "serve/api.hpp"

namespace lightridge {

const char *
serveStatusName(ServeStatus status)
{
    switch (status) {
      case ServeStatus::Ok: return "ok";
      case ServeStatus::DeadlineExceeded: return "deadline_exceeded";
      case ServeStatus::Overloaded: return "overloaded";
      case ServeStatus::UnknownModel: return "unknown_model";
      case ServeStatus::BadInput: return "bad_input";
    }
    return "unknown";
}

const char *
priorityName(Priority priority)
{
    switch (priority) {
      case Priority::Interactive: return "interactive";
      case Priority::Batch: return "batch";
      case Priority::BestEffort: return "best_effort";
    }
    return "unknown";
}

Priority
priorityFromName(const std::string &name)
{
    if (name == "interactive")
        return Priority::Interactive;
    if (name == "batch")
        return Priority::Batch;
    if (name == "best_effort")
        return Priority::BestEffort;
    throw std::invalid_argument("unknown priority: " + name);
}

} // namespace lightridge
