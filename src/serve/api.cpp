#include "serve/api.hpp"

#include <cmath>

namespace lightridge {

const char *
serveStatusName(ServeStatus status)
{
    switch (status) {
      case ServeStatus::Ok: return "ok";
      case ServeStatus::DeadlineExceeded: return "deadline_exceeded";
      case ServeStatus::Overloaded: return "overloaded";
      case ServeStatus::UnknownModel: return "unknown_model";
      case ServeStatus::BadInput: return "bad_input";
    }
    return "unknown";
}

const char *
priorityName(Priority priority)
{
    switch (priority) {
      case Priority::Interactive: return "interactive";
      case Priority::Batch: return "batch";
      case Priority::BestEffort: return "best_effort";
    }
    return "unknown";
}

Priority
priorityFromName(const std::string &name)
{
    if (name == "interactive")
        return Priority::Interactive;
    if (name == "batch")
        return Priority::Batch;
    if (name == "best_effort")
        return Priority::BestEffort;
    throw std::invalid_argument("unknown priority: " + name);
}

const char *
fusionRuleName(FusionRule rule)
{
    switch (rule) {
      case FusionRule::MeanLogits: return "mean_logits";
      case FusionRule::MeanProbs: return "mean_probs";
      case FusionRule::Vote: return "vote";
    }
    return "unknown";
}

FusionRule
fusionRuleFromName(const std::string &name)
{
    if (name == "mean_logits")
        return FusionRule::MeanLogits;
    if (name == "mean_probs")
        return FusionRule::MeanProbs;
    if (name == "vote")
        return FusionRule::Vote;
    throw std::invalid_argument("unknown fusion rule: " + name);
}

void
fuseLogits(FusionRule rule,
           const std::vector<std::vector<Real>> &member_logits,
           std::vector<Real> &out)
{
    if (member_logits.empty())
        throw std::invalid_argument("fuseLogits: no member logits");
    const std::size_t classes = member_logits.front().size();
    for (const std::vector<Real> &logits : member_logits)
        if (logits.size() != classes)
            throw std::invalid_argument(
                "fuseLogits: members disagree on class count");
    out.assign(classes, Real(0));
    const Real inv = Real(1) / static_cast<Real>(member_logits.size());
    switch (rule) {
      case FusionRule::MeanLogits:
        for (const std::vector<Real> &logits : member_logits)
            for (std::size_t c = 0; c < classes; ++c)
                out[c] += logits[c];
        for (std::size_t c = 0; c < classes; ++c)
            out[c] *= inv;
        break;
      case FusionRule::MeanProbs:
        for (const std::vector<Real> &logits : member_logits) {
            // Max-stabilized softmax: exp never overflows and the
            // result is invariant to a per-member logit offset.
            Real peak = logits[0];
            for (std::size_t c = 1; c < classes; ++c)
                peak = logits[c] > peak ? logits[c] : peak;
            Real denom = 0;
            for (std::size_t c = 0; c < classes; ++c)
                denom += std::exp(logits[c] - peak);
            for (std::size_t c = 0; c < classes; ++c)
                out[c] += std::exp(logits[c] - peak) / denom * inv;
        }
        break;
      case FusionRule::Vote:
        for (const std::vector<Real> &logits : member_logits) {
            std::size_t vote = 0;
            for (std::size_t c = 1; c < classes; ++c)
                if (logits[c] > logits[vote])
                    vote = c;
            out[vote] += Real(1);
        }
        break;
    }
}

} // namespace lightridge
