/**
 * @file
 * Lock-cheap serving metrics: striped counters and fixed-bucket
 * histograms sized so the request hot path touches one relaxed atomic
 * per event and the `/metrics` endpoint renders a consistent-enough
 * snapshot without ever stalling serving threads.
 *
 * Counters are striped across cache lines to keep concurrent IO/worker
 * threads from bouncing one hot line; histograms use fixed geometric
 * bucket bounds chosen at compile time, so recording is a
 * branch-light bucket search plus one atomic increment and percentile
 * queries are a cumulative scan over 64 slots. Nothing here allocates
 * after construction.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/api.hpp"

namespace lightridge {

/** Monotonic counter striped across cache lines. add() is wait-free
 *  (one relaxed fetch_add on the calling thread's stripe); value() sums
 *  the stripes and may race with concurrent adds, which only makes the
 *  reading thread see a value that was true a moment ago. */
class StripedCounter
{
  public:
    StripedCounter() = default;

    StripedCounter(const StripedCounter &) = delete;
    StripedCounter &operator=(const StripedCounter &) = delete;

    void
    add(std::uint64_t n = 1) noexcept
    {
        stripes_[stripeIndex()].v.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const noexcept
    {
        std::uint64_t sum = 0;
        for (const Stripe &stripe : stripes_)
            sum += stripe.v.load(std::memory_order_relaxed);
        return sum;
    }

  private:
    static constexpr std::size_t kStripes = 8;

    struct alignas(64) Stripe
    {
        std::atomic<std::uint64_t> v{0};
    };

    static std::size_t stripeIndex() noexcept;

    std::array<Stripe, kStripes> stripes_;
};

/**
 * Fixed-bucket latency histogram. Buckets are geometric (x2) spans from
 * 1 microsecond up, so one histogram covers sub-millisecond kernel
 * serving and multi-second overload tails with ~constant relative
 * error. Percentiles are bucket upper bounds — good to within one
 * bucket width, which is what an SLA gate needs.
 */
class LatencyHistogram
{
  public:
    /** 1us..~2200s in x2 steps; the last bucket is open-ended. */
    static constexpr std::size_t kBuckets = 32;

    LatencyHistogram() = default;

    LatencyHistogram(const LatencyHistogram &) = delete;
    LatencyHistogram &operator=(const LatencyHistogram &) = delete;

    void record(double ms) noexcept;

    std::uint64_t count() const noexcept;

    /**
     * Latency below which `p` (0..1) of recorded samples fall, as the
     * matching bucket's upper bound in milliseconds. 0 when empty.
     */
    double percentileMs(double p) const noexcept;

    /** Upper bound of bucket `i` in milliseconds (inf for the last). */
    static double bucketUpperMs(std::size_t i) noexcept;

    /** Raw bucket count (for rendering / tests). */
    std::uint64_t
    bucketCount(std::size_t i) const noexcept
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/**
 * Micro-batch size histogram: bucket i counts batches of size in
 * (2^(i-1), 2^i], i.e. {1}, {2}, {3..4}, {5..8}, ... — enough shape to
 * see whether the batcher is coalescing or degrading to singletons.
 */
class BatchHistogram
{
  public:
    static constexpr std::size_t kBuckets = 12; ///< up to 2^11 = 2048

    BatchHistogram() = default;

    BatchHistogram(const BatchHistogram &) = delete;
    BatchHistogram &operator=(const BatchHistogram &) = delete;

    void record(std::size_t batch_size) noexcept;

    std::uint64_t count() const noexcept;

    /** Inclusive upper bound of bucket `i` (1, 2, 4, 8, ...). */
    static std::size_t
    bucketUpper(std::size_t i) noexcept
    {
        return std::size_t{1} << i;
    }

    std::uint64_t
    bucketCount(std::size_t i) const noexcept
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/**
 * The serving engine's metric registry: per-status request counters,
 * an end-to-end latency histogram for served (Ok) requests, the
 * micro-batch shape, a queue-depth gauge, and shed/expired counters.
 * One instance is owned by each InferenceEngine; the HTTP front end
 * renders it (plus its own transport counters) at GET /metrics.
 */
class ServeMetrics
{
  public:
    ServeMetrics() = default;

    ServeMetrics(const ServeMetrics &) = delete;
    ServeMetrics &operator=(const ServeMetrics &) = delete;

    /** One response delivered with `status`; Ok responses also record
     *  their submit-to-completion latency. */
    void
    recordResponse(ServeStatus status, double latency_ms) noexcept
    {
        by_status_[static_cast<std::size_t>(status)].add();
        if (status == ServeStatus::Ok)
            latency_.record(latency_ms);
    }

    /** One micro-batch dispatched. */
    void
    recordBatch(std::size_t batch_size) noexcept
    {
        batch_.record(batch_size);
    }

    /** One ensemble request fanned out to `fan_out` member
     *  sub-requests (recorded when the fused response resolves). */
    void
    recordEnsemble(std::size_t fan_out) noexcept
    {
        ensembles_.add();
        ensemble_fan_out_.add(fan_out);
    }

    /** Fused ensemble responses delivered. */
    std::uint64_t
    ensembleCount() const noexcept
    {
        return ensembles_.value();
    }

    /** Member sub-requests fanned out across all ensemble responses. */
    std::uint64_t
    ensembleFanOut() const noexcept
    {
        return ensemble_fan_out_.value();
    }

    /** Queue depth gauge (dispatcher queue, pre-batch). */
    void
    queueDepthAdd(std::ptrdiff_t delta) noexcept
    {
        queue_depth_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    queueDepth() const noexcept
    {
        return queue_depth_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    statusCount(ServeStatus status) const noexcept
    {
        return by_status_[static_cast<std::size_t>(status)].value();
    }

    /** All responses, every status. */
    std::uint64_t requestCount() const noexcept;

    const LatencyHistogram &latency() const { return latency_; }
    const BatchHistogram &batches() const { return batch_; }

    /**
     * Prometheus-style text exposition of every counter, histogram and
     * gauge, `lightridge_`-prefixed. `extra` is appended verbatim so a
     * front end can contribute transport-level series (connections,
     * parse errors) to the same page.
     */
    std::string renderPrometheus(const std::string &extra = {}) const;

  private:
    std::array<StripedCounter, kServeStatusCount> by_status_;
    LatencyHistogram latency_;
    BatchHistogram batch_;
    StripedCounter ensembles_;
    StripedCounter ensemble_fan_out_;
    std::atomic<std::int64_t> queue_depth_{0};
};

} // namespace lightridge
