#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "data/synth_digits.hpp"
#include "data/synth_fashion.hpp"

namespace lightridge {

// ---------------------------------------------------------------------
// Shared request-handling core
// ---------------------------------------------------------------------

SampleSource::Sample
SampleSource::sample(const std::string &name, std::uint64_t seed,
                     std::size_t index)
{
    MutexLock lock(mutex_);
    const std::string key = name + ":" + std::to_string(seed);
    ClassDataset &data = cache_[key];
    if (index >= data.size()) {
        // Grow geometrically so monotonically increasing indices stay
        // linear overall instead of regenerating 1,2,...,n.
        const std::size_t count = std::max(index + 1, 2 * data.size());
        if (name == "digits")
            data = makeSynthDigits(count, seed);
        else if (name == "fashion")
            data = makeSynthFashion(count, seed);
        else
            throw JsonError("sample dataset must be digits or fashion, "
                            "got: " +
                            name);
    }
    return Sample{data.images[index], data.labels[index]};
}

namespace {

RealMap
imageFromJson(const Json &j)
{
    const std::size_t rows =
        static_cast<std::size_t>(j.at("rows").asNumber());
    const std::size_t cols =
        static_cast<std::size_t>(j.at("cols").asNumber());
    const Json::Array &data = j.at("data").asArray();
    if (data.size() != rows * cols)
        throw JsonError("request image: data length != rows*cols");
    RealMap image(rows, cols);
    for (std::size_t i = 0; i < data.size(); ++i)
        image[i] = data[i].asNumber();
    return image;
}

} // namespace

ParsedServeRequest
parseServeRequestJson(const Json &j, std::uint64_t fallback_id,
                      SampleSource &samples,
                      const std::string &model_hint)
{
    ParsedServeRequest parsed;
    if (j.has("model")) {
        parsed.request.model = j.at("model").asString();
        if (!model_hint.empty() && parsed.request.model != model_hint)
            throw JsonError("request model \"" + parsed.request.model +
                            "\" does not match URL model \"" +
                            model_hint + "\"");
    } else if (!model_hint.empty()) {
        parsed.request.model = model_hint;
    } else {
        throw JsonError("request needs \"model\"");
    }
    parsed.request.id = static_cast<std::uint64_t>(
        j.numberOr("id", static_cast<double>(fallback_id)));
    if (j.has("image")) {
        parsed.request.image = imageFromJson(j.at("image"));
    } else if (j.has("sample")) {
        const Json &s = j.at("sample");
        SampleSource::Sample drawn = samples.sample(
            s.at("dataset").asString(),
            static_cast<std::uint64_t>(s.numberOr("seed", 1.0)),
            static_cast<std::size_t>(s.numberOr("index", 0.0)));
        parsed.request.image = std::move(drawn.image);
        parsed.label = drawn.label;
    } else {
        throw JsonError("request needs \"image\" or \"sample\"");
    }
    if (j.has("deadline_ms")) {
        // 0 keeps "no deadline"; negative is expired on arrival.
        const double ms = j.at("deadline_ms").asNumber();
        parsed.request.deadline = std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(ms));
    }
    if (j.has("priority")) {
        try {
            parsed.request.priority =
                priorityFromName(j.at("priority").asString());
        } catch (const std::invalid_argument &e) {
            throw JsonError(e.what());
        }
    }
    return parsed;
}

Json
serveResponseJson(const InferResponse &response, int label,
                  bool with_logits)
{
    Json j;
    j["id"] = Json(static_cast<std::size_t>(response.id));
    j["model"] = Json(response.model);
    j["status"] = Json(std::string(serveStatusName(response.status)));
    j["latency_ms"] = Json(response.latency_ms);
    if (response.fan_out > 0)
        j["fan_out"] = Json(response.fan_out);
    if (response.ok()) {
        j["prediction"] = Json(response.prediction);
        if (label >= 0)
            j["label"] = Json(label);
        j["batch_size"] = Json(response.batch_size);
        if (with_logits) {
            Json logits;
            for (Real v : response.logits)
                logits.push(Json(v));
            j["logits"] = std::move(logits);
        }
    } else {
        j["error"] = Json(response.error);
    }
    return j;
}

int
httpStatusForServeStatus(ServeStatus status)
{
    switch (status) {
      case ServeStatus::Ok: return 200;
      case ServeStatus::DeadlineExceeded: return 504;
      case ServeStatus::Overloaded: return 503;
      case ServeStatus::UnknownModel: return 404;
      case ServeStatus::BadInput: return 400;
    }
    return 500;
}

// ---------------------------------------------------------------------
// HTTP server
// ---------------------------------------------------------------------

namespace {

// strerror(3) writes to shared static storage and the server formats
// socket errors from N concurrent IO threads, so it must not be called
// here. These overloads dispatch on the local strerror_r(3) flavour
// (XSI returns int, GNU returns char* and may ignore the buffer)
// without caring which one libc provides.
[[maybe_unused]] std::string
strerrorResult(int rc, const char *buf, int err)
{
    return rc == 0 ? std::string(buf)
                   : "errno " + std::to_string(err);
}

[[maybe_unused]] std::string
strerrorResult(const char *msg, const char *, int)
{
    return std::string(msg);
}

/** Thread-safe strerror(errno) replacement. */
std::string
errnoString(int err)
{
    char buf[256];
    buf[0] = '\0';
    return strerrorResult(::strerror_r(err, buf, sizeof(buf)), buf, err);
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

struct HttpServer::Connection
{
    int fd = -1;
    HttpParser parser;
    std::string outbuf;
    std::size_t outpos = 0;
    std::unique_ptr<PendingHttpReply> deferred;
    bool deferred_keep_alive = true;
    bool close_after_flush = false;
    bool read_closed = false; ///< peer half-closed its write side
    std::chrono::steady_clock::time_point last_active;

    Connection(int f, HttpParser::Limits limits)
        : fd(f), parser(limits),
          last_active(std::chrono::steady_clock::now())
    {}

    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool
    flushed() const
    {
        return outpos >= outbuf.size();
    }
};

HttpServer::HttpServer(HttpServerConfig config, HttpHandler handler)
    : config_(std::move(config)), handler_(std::move(handler))
{
    if (config_.io_threads > 0) {
        io_threads_ = config_.io_threads;
    } else {
        const std::size_t hw = std::thread::hardware_concurrency();
        io_threads_ = std::max<std::size_t>(1, hw / 2);
    }
    io_threads_ = std::min<std::size_t>(io_threads_, 16);
}

HttpServer::~HttpServer() { stop(); }

void
HttpServer::start()
{
    if (running_.load())
        return;
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        throw std::runtime_error("HttpServer: socket() failed: " +
                                 errnoString(errno));
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error(
            "HttpServer: host must be a numeric IPv4 address, got: " +
            config_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 256) != 0) {
        const std::string reason = errnoString(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("HttpServer: cannot listen on " +
                                 config_.host + ":" +
                                 std::to_string(config_.port) + ": " +
                                 reason);
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) == 0)
        port_ = ntohs(bound.sin_port);
    setNonBlocking(listen_fd_);

    running_.store(true);
    threads_.reserve(io_threads_);
    for (std::size_t i = 0; i < io_threads_; ++i)
        threads_.emplace_back([this] { ioLoop(); });
}

void
HttpServer::stop()
{
    running_.store(false);
    for (std::thread &t : threads_)
        if (t.joinable())
            t.join();
    threads_.clear();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

HttpTransportStats
HttpServer::transportStats() const
{
    HttpTransportStats stats;
    stats.connections_accepted = connections_accepted_.load();
    stats.connections_rejected = connections_rejected_.load();
    stats.requests = requests_.load();
    stats.parse_errors = parse_errors_.load();
    return stats;
}

std::string
HttpServer::transportMetricsText() const
{
    const HttpTransportStats stats = transportStats();
    std::ostringstream out;
    out << "# TYPE lightridge_http_connections_total counter\n"
        << "lightridge_http_connections_total{result=\"accepted\"} "
        << stats.connections_accepted << "\n"
        << "lightridge_http_connections_total{result=\"rejected\"} "
        << stats.connections_rejected << "\n"
        << "# TYPE lightridge_http_open_connections gauge\n"
        << "lightridge_http_open_connections "
        << open_connections_.load() << "\n"
        << "# TYPE lightridge_http_requests_total counter\n"
        << "lightridge_http_requests_total " << stats.requests << "\n"
        << "# TYPE lightridge_http_parse_errors_total counter\n"
        << "lightridge_http_parse_errors_total " << stats.parse_errors
        << "\n";
    return out.str();
}

void
HttpServer::acceptReady(std::vector<std::unique_ptr<Connection>> &conns)
{
    // Every IO thread polls the shared listening socket; accept() is
    // atomic per connection, so the threads race benignly and whoever
    // wins owns the connection for its lifetime.
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // EAGAIN (another thread won) or transient error
        }
        setNonBlocking(fd);
        setNoDelay(fd);
        if (open_connections_.load() >= config_.max_connections) {
            connections_rejected_.fetch_add(1);
            HttpResponse reject;
            reject.status = 503;
            reject.content_type = "text/plain";
            reject.headers["Retry-After"] = std::to_string(
                config_.retry_after_hint ? config_.retry_after_hint()
                                         : 1);
            reject.body = "connection limit reached\n";
            const std::string bytes =
                serializeHttpResponse(reject, false);
            ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
            ::close(fd);
            continue;
        }
        open_connections_.fetch_add(1);
        connections_accepted_.fetch_add(1);
        conns.push_back(
            std::make_unique<Connection>(fd, config_.limits));
    }
}

void
HttpServer::processParsed(Connection &conn)
{
    // Answer every fully buffered request in order. A deferred reply
    // parks the connection: later pipelined requests stay buffered in
    // the parser until the deferred response resolves (responses must
    // leave in request order).
    while (!conn.deferred &&
           conn.parser.state() == HttpParser::State::Complete) {
        HttpRequest request = conn.parser.request();
        const bool keep_alive = request.keepAlive();
        requests_.fetch_add(1);
        HttpHandlerResult result = handler_(std::move(request));
        conn.parser.next();
        if (result.deferred) {
            conn.deferred = std::move(result.deferred);
            conn.deferred_keep_alive = keep_alive;
        } else {
            conn.outbuf += serializeHttpResponse(
                result.response, keep_alive && !conn.close_after_flush);
            if (!keep_alive) {
                conn.close_after_flush = true;
                break;
            }
        }
    }
    if (!conn.deferred &&
        conn.parser.state() == HttpParser::State::Error) {
        parse_errors_.fetch_add(1);
        HttpResponse error;
        error.status = conn.parser.errorStatus();
        Json j;
        j["status"] = Json("bad_input");
        j["error"] = Json(conn.parser.errorReason());
        error.body = j.dump() + "\n";
        conn.outbuf += serializeHttpResponse(error, false);
        conn.close_after_flush = true;
    }
}

bool
HttpServer::serviceRead(Connection &conn)
{
    char buf[16384];
    for (;;) {
        const ssize_t got = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (got > 0) {
            conn.last_active = std::chrono::steady_clock::now();
            conn.parser.feed(buf, static_cast<std::size_t>(got));
            continue;
        }
        if (got == 0) {
            // Peer half-closed; it may still be reading our response
            // (a close-after-request client), so finish outstanding
            // work before dropping the connection.
            conn.read_closed = true;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        return false; // reset/ broken pipe
    }
    processParsed(conn);
    return true;
}

bool
HttpServer::serviceWrite(Connection &conn)
{
    while (conn.outpos < conn.outbuf.size()) {
        const ssize_t sent =
            ::send(conn.fd, conn.outbuf.data() + conn.outpos,
                   conn.outbuf.size() - conn.outpos, MSG_NOSIGNAL);
        if (sent > 0) {
            conn.outpos += static_cast<std::size_t>(sent);
            conn.last_active = std::chrono::steady_clock::now();
            continue;
        }
        if (sent < 0 && errno == EINTR)
            continue;
        if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true; // POLLOUT will resume the flush
        return false;
    }
    conn.outbuf.clear();
    conn.outpos = 0;
    return true;
}

void
HttpServer::ioLoop()
{
    std::vector<std::unique_ptr<Connection>> conns;
    std::vector<pollfd> fds;
    while (running_.load(std::memory_order_acquire)) {
        fds.clear();
        fds.push_back(pollfd{listen_fd_, POLLIN, 0});
        bool any_deferred = false;
        for (const auto &conn : conns) {
            short events = 0;
            if (!conn->deferred && !conn->close_after_flush &&
                !conn->read_closed)
                events |= POLLIN;
            if (!conn->flushed())
                events |= POLLOUT;
            fds.push_back(pollfd{conn->fd, events, 0});
            any_deferred = any_deferred || conn->deferred != nullptr;
        }
        // Deferred replies resolve on engine threads; a short timeout
        // keeps response latency bounded without a cross-thread wakeup
        // channel. Idle loops take the long tick.
        const int timeout_ms = any_deferred ? 5 : 100;
        const std::size_t polled = conns.size();
        const int woke = ::poll(fds.data(),
                                static_cast<nfds_t>(fds.size()),
                                timeout_ms);
        if (!running_.load(std::memory_order_acquire))
            break;
        if (woke < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[0].revents & POLLIN)
            acceptReady(conns);

        const auto now = std::chrono::steady_clock::now();
        std::vector<std::unique_ptr<Connection>> alive;
        alive.reserve(conns.size());
        for (std::size_t i = 0; i < conns.size(); ++i) {
            Connection &conn = *conns[i];
            const short revents = i < polled ? fds[i + 1].revents : 0;
            bool keep = (revents & POLLNVAL) == 0;
            if (keep && (revents & (POLLIN | POLLHUP)))
                keep = serviceRead(conn);
            if (keep && conn.deferred && conn.deferred->ready()) {
                HttpResponse response = conn.deferred->take();
                conn.deferred.reset();
                const bool keep_alive = conn.deferred_keep_alive &&
                                        !conn.close_after_flush;
                conn.outbuf +=
                    serializeHttpResponse(response, keep_alive);
                if (!keep_alive)
                    conn.close_after_flush = true;
                else
                    processParsed(conn); // pipelined follow-ups
            }
            if (keep && !conn.flushed())
                keep = serviceWrite(conn);
            if (keep && (revents & POLLERR))
                keep = !conn.flushed() ? keep : false;
            if (keep && conn.close_after_flush && conn.flushed() &&
                !conn.deferred)
                keep = false;
            if (keep && conn.read_closed && conn.flushed() &&
                !conn.deferred &&
                conn.parser.state() != HttpParser::State::Complete)
                keep = false;
            if (keep && !conn.deferred && conn.flushed() &&
                config_.idle_timeout_ms > 0 &&
                now - conn.last_active >
                    std::chrono::milliseconds(config_.idle_timeout_ms))
                keep = false;
            if (keep)
                alive.push_back(std::move(conns[i]));
            else
                open_connections_.fetch_sub(1);
        }
        conns.swap(alive);
    }
    open_connections_.fetch_sub(conns.size());
    conns.clear(); // destructors close the sockets
}

// ---------------------------------------------------------------------
// Serving service
// ---------------------------------------------------------------------

namespace {

/** Deferred infer reply: a parked engine future plus how to render it. */
class InferReply : public PendingHttpReply
{
  public:
    InferReply(std::future<InferResponse> future, int label,
               const ServingService *service)
        : future_(std::move(future)), label_(label), service_(service)
    {}

    bool
    ready() override
    {
        return future_.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready;
    }

    HttpResponse
    take() override
    {
        try {
            return service_->renderHttp(future_.get(), label_);
        } catch (const std::exception &e) {
            // submit() futures are status-coded; an exception here
            // means the engine died mid-request (broken promise).
            HttpResponse error;
            error.status = 500;
            Json j;
            j["status"] = Json("bad_input");
            j["error"] = Json(std::string(e.what()));
            error.body = j.dump() + "\n";
            return error;
        }
    }

  private:
    std::future<InferResponse> future_;
    int label_;
    const ServingService *service_;
};

HttpResponse
jsonError(int status, const std::string &status_name,
          const std::string &message)
{
    HttpResponse response;
    response.status = status;
    Json j;
    j["status"] = Json(status_name);
    j["error"] = Json(message);
    response.body = j.dump() + "\n";
    return response;
}

} // namespace

ServingService::ServingService(ModelRegistry &registry,
                               InferenceEngine &engine,
                               ServingServiceConfig config)
    : registry_(registry), engine_(engine), config_(config)
{}

void
ServingService::setExtraMetrics(std::function<std::string()> extra)
{
    extra_metrics_ = std::move(extra);
}

ParsedServeRequest
ServingService::parseLine(const Json &j, std::uint64_t fallback_id,
                          const std::string &model_hint)
{
    ParsedServeRequest parsed =
        parseServeRequestJson(j, fallback_id, samples_, model_hint);
    if (parsed.request.deadline.count() == 0 &&
        config_.default_deadline_ms > 0)
        parsed.request.deadline = std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(
                config_.default_deadline_ms));
    return parsed;
}

Json
ServingService::responseJson(const InferResponse &response,
                             int label) const
{
    return serveResponseJson(response, label, config_.with_logits);
}

HttpResponse
ServingService::renderHttp(const InferResponse &response,
                           int label) const
{
    HttpResponse http;
    http.status = httpStatusForServeStatus(response.status);
    if (response.status == ServeStatus::Overloaded)
        http.headers["Retry-After"] =
            std::to_string(engine_.retryAfterSeconds());
    http.body = responseJson(response, label).dump() + "\n";
    return http;
}

HttpHandlerResult
ServingService::handle(HttpRequest &&request)
{
    HttpHandlerResult out;
    const std::string path =
        request.target.substr(0, request.target.find('?'));

    if (path == "/healthz") {
        if (request.method != "GET") {
            out.response = jsonError(405, "bad_input",
                                     "method not allowed; use GET");
            return out;
        }
        out.response.content_type = "text/plain";
        out.response.body = "ok\n";
        return out;
    }

    if (path == "/metrics") {
        if (request.method != "GET") {
            out.response = jsonError(405, "bad_input",
                                     "method not allowed; use GET");
            return out;
        }
        out.response.content_type = "text/plain; version=0.0.4";
        out.response.body = engine_.metrics().renderPrometheus(
            extra_metrics_ ? extra_metrics_() : std::string{});
        return out;
    }

    static const std::string prefix = "/v1/models/";
    static const std::string suffix = "/infer";
    if (path.size() > prefix.size() + suffix.size() &&
        path.compare(0, prefix.size(), prefix) == 0 &&
        path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) == 0) {
        const std::string model = path.substr(
            prefix.size(), path.size() - prefix.size() - suffix.size());
        if (model.empty() || model.find('/') != std::string::npos) {
            out.response =
                jsonError(404, "unknown_model", "no such route: " + path);
            return out;
        }
        if (request.method != "POST") {
            out.response = jsonError(405, "bad_input",
                                     "method not allowed; use POST");
            out.response.headers["Allow"] = "POST";
            return out;
        }
        return inferRoute(model, std::move(request));
    }

    out.response = jsonError(404, "bad_input", "no such route: " + path);
    return out;
}

HttpHandlerResult
ServingService::inferRoute(const std::string &model,
                           HttpRequest &&request)
{
    HttpHandlerResult out;
    ParsedServeRequest parsed;
    try {
        parsed = parseLine(Json::parse(request.body),
                           next_id_.fetch_add(1), model);
    } catch (const std::exception &e) {
        out.response = jsonError(400, "bad_input", e.what());
        return out;
    }

    // Fast-path unknown models so they never occupy queue capacity;
    // the engine still answers UnknownModel for unload races.
    if (!registry_.has(parsed.request.model)) {
        InferResponse response;
        response.id = parsed.request.id;
        response.model = parsed.request.model;
        response.status = ServeStatus::UnknownModel;
        response.error = "unknown model: " + parsed.request.model;
        out.response = renderHttp(response, parsed.label);
        return out;
    }

    std::future<InferResponse> future;
    try {
        future = engine_.submit(std::move(parsed.request));
    } catch (const std::exception &e) {
        out.response = jsonError(503, "overloaded", e.what());
        out.response.headers["Retry-After"] =
            std::to_string(engine_.retryAfterSeconds());
        return out;
    }
    out.deferred = std::make_unique<InferReply>(std::move(future),
                                                parsed.label, this);
    return out;
}

// ---------------------------------------------------------------------
// Blocking client
// ---------------------------------------------------------------------

HttpClient::HttpClient(std::string host, std::uint16_t port)
    : host_(std::move(host)), port_(port)
{}

HttpClient::~HttpClient() { close(); }

void
HttpClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    leftover_.clear();
}

void
HttpClient::ensureConnected()
{
    if (fd_ >= 0)
        return;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw std::runtime_error("HttpClient: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const std::string reason = errnoString(errno);
        close();
        throw std::runtime_error("HttpClient: cannot connect to " +
                                 host_ + ":" + std::to_string(port_) +
                                 ": " + reason);
    }
    setNoDelay(fd_);
}

HttpResponse
HttpClient::request(const std::string &method, const std::string &target,
                    const std::string &body,
                    const std::string &content_type)
{
    ensureConnected();

    std::string wire;
    wire.reserve(body.size() + 256);
    wire += method + " " + target + " HTTP/1.1\r\n";
    wire += "Host: " + host_ + "\r\n";
    if (!body.empty())
        wire += "Content-Type: " + content_type + "\r\n";
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    wire += "Connection: keep-alive\r\n\r\n";
    wire += body;

    std::size_t sent_total = 0;
    while (sent_total < wire.size()) {
        const ssize_t sent =
            ::send(fd_, wire.data() + sent_total,
                   wire.size() - sent_total, MSG_NOSIGNAL);
        if (sent < 0 && errno == EINTR)
            continue;
        if (sent <= 0) {
            close();
            throw std::runtime_error("HttpClient: send failed");
        }
        sent_total += static_cast<std::size_t>(sent);
    }

    // Read the response: status line + headers, then a Content-Length
    // body. Anything past it stays buffered for the next request.
    std::string buffer = std::move(leftover_);
    leftover_.clear();
    auto readMore = [&] {
        char chunk[16384];
        const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (got <= 0) {
            close();
            throw std::runtime_error(
                "HttpClient: connection closed mid-response");
        }
        buffer.append(chunk, static_cast<std::size_t>(got));
    };
    std::size_t header_end;
    while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos)
        readMore();

    HttpResponse response;
    std::map<std::string, std::string> headers;
    {
        std::istringstream head(buffer.substr(0, header_end));
        std::string status_line;
        std::getline(head, status_line);
        const std::size_t sp = status_line.find(' ');
        if (status_line.compare(0, 5, "HTTP/") != 0 ||
            sp == std::string::npos) {
            close();
            throw std::runtime_error("HttpClient: bad status line: " +
                                     status_line);
        }
        response.status = std::atoi(status_line.c_str() + sp + 1);
        std::string line;
        while (std::getline(head, line)) {
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            const std::size_t colon = line.find(':');
            if (colon == std::string::npos)
                continue;
            std::string name = line.substr(0, colon);
            std::transform(name.begin(), name.end(), name.begin(),
                           [](unsigned char c) {
                               return static_cast<char>(
                                   std::tolower(c));
                           });
            std::string value = line.substr(colon + 1);
            const std::size_t first = value.find_first_not_of(" \t");
            value = first == std::string::npos ? std::string{}
                                               : value.substr(first);
            headers[name] = value;
        }
    }
    std::size_t body_size = 0;
    if (headers.count("content-length"))
        body_size = static_cast<std::size_t>(
            std::stoull(headers["content-length"]));
    const std::size_t body_start = header_end + 4;
    while (buffer.size() < body_start + body_size)
        readMore();
    response.body = buffer.substr(body_start, body_size);
    leftover_ = buffer.substr(body_start + body_size);
    if (headers.count("content-type"))
        response.content_type = headers["content-type"];
    response.headers = std::move(headers);
    if (response.headers.count("connection") &&
        response.headers["connection"] == "close")
        close();
    return response;
}

} // namespace lightridge
