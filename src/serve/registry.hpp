/**
 * @file
 * Named-model registry for the inference serving subsystem.
 *
 * A ModelRegistry owns the trained DONN systems a serving process exposes,
 * keyed by name. Models are held behind shared_ptr<const DonnModel>, so a
 * registration is an atomic publish and an unload (or hot-swap) never
 * invalidates in-flight work: every request batch acquires its own
 * reference and the old instance lives until the last batch drops it.
 * Because the inference path is const and thread-safe (Layer::inferInPlace
 * plus the shared-instance modulation caches), one registered instance
 * serves every engine worker concurrently — no per-request or per-worker
 * clones.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "serve/api.hpp"
#include "utils/sync.hpp"

namespace lightridge {

/** Error thrown when a request names a model the registry doesn't hold. */
class UnknownModelError : public std::runtime_error
{
  public:
    explicit UnknownModelError(const std::string &name)
        : std::runtime_error("unknown model: " + name)
    {}
};

/** An ensemble resolved for one request: the declared spec plus one
 *  pinned reference per member, acquired atomically under one registry
 *  lock (a concurrent member hot-swap never yields a mixed view). The
 *  pinned instances stay valid across unload/hot-swap for as long as
 *  the holder keeps them, exactly like a plain acquire(). */
struct ResolvedEnsemble
{
    EnsembleSpec spec;
    std::vector<std::shared_ptr<const DonnModel>> members;
};

/** Thread-safe registry of named, ref-counted, hot-swappable models. */
class ModelRegistry
{
  public:
    ModelRegistry() = default;

    ModelRegistry(const ModelRegistry &) = delete;
    ModelRegistry &operator=(const ModelRegistry &) = delete;

    /**
     * Publish a model under `name` (atomic hot-swap when the name is
     * already taken: new requests see the new instance, in-flight batches
     * finish on the old one).
     */
    void registerModel(const std::string &name, DonnModel model);

    /** Publish an already-shared instance (testing / advanced callers). */
    void registerShared(const std::string &name,
                        std::shared_ptr<const DonnModel> model)
        LIGHTRIDGE_EXCLUDES(mutex_);

    /**
     * Load a checkpoint file and publish it under `name`.
     * @throws JsonError on a missing/truncated/wrong-magic file (see
     *         loadCheckpointJson)
     */
    void registerCheckpoint(const std::string &name,
                            const std::string &path);

    /**
     * Declare an ensemble (see serve/api.hpp EnsembleSpec). Validated
     * against the registry's current contents:
     *  - members must be non-empty and each currently registered as a
     *    plain model (ensembles of ensembles are rejected, as is an
     *    ensemble that names itself as a member);
     *  - the ensemble name must not collide with a registered model
     *    (and a later registerModel under an ensemble name throws);
     *  - members must agree on the detector class count, or fusion
     *    would be meaningless.
     * Re-declaring an existing ensemble name hot-swaps the spec, the
     * same way registerModel hot-swaps an instance.
     * @throws std::invalid_argument on any violation
     */
    void registerEnsemble(EnsembleSpec spec) LIGHTRIDGE_EXCLUDES(mutex_);

    /** True when `name` is a declared ensemble. */
    bool isEnsemble(const std::string &name) const
        LIGHTRIDGE_EXCLUDES(mutex_);

    /**
     * Resolve an ensemble for one request: snapshot the spec and pin
     * every member instance under one lock.
     * @throws UnknownModelError when `name` is not an ensemble or a
     *         member was unloaded after the ensemble was declared (the
     *         message names the missing member)
     */
    ResolvedEnsemble resolveEnsemble(const std::string &name) const
        LIGHTRIDGE_EXCLUDES(mutex_);

    /**
     * Drop the registry's reference to `name` (model or ensemble). A
     * member model may be unloaded while its ensembles stay declared:
     * in-flight ensemble requests finish on their pinned instances and
     * later ones are answered UnknownModel at resolution.
     * @return false when the name was not registered
     */
    bool unload(const std::string &name) LIGHTRIDGE_EXCLUDES(mutex_);

    /**
     * Acquire a serving reference to a plain model. The returned
     * instance is immutable and stays valid for as long as the caller
     * holds the pointer, even across unload/hot-swap. Ensemble names
     * have no single instance and are rejected — resolve them with
     * resolveEnsemble().
     * @throws UnknownModelError when the name is not a registered model
     */
    std::shared_ptr<const DonnModel> acquire(const std::string &name) const
        LIGHTRIDGE_EXCLUDES(mutex_);

    /** True when `name` is currently registered (model or ensemble). */
    bool has(const std::string &name) const LIGHTRIDGE_EXCLUDES(mutex_);

    /** Registered names, models and ensembles together (sorted). */
    std::vector<std::string> names() const LIGHTRIDGE_EXCLUDES(mutex_);

    /** Number of registered names (models + ensembles). */
    std::size_t size() const LIGHTRIDGE_EXCLUDES(mutex_);

    /**
     * Outstanding external references to a registered model (0 when only
     * the registry holds it). Diagnostic: an unload is "busy" when this
     * is non-zero, but it is still safe — the instance is freed when the
     * last holder drops it.
     */
    std::size_t externalRefCount(const std::string &name) const
        LIGHTRIDGE_EXCLUDES(mutex_);

  private:
    mutable Mutex mutex_;
    std::map<std::string, std::shared_ptr<const DonnModel>> models_
        LIGHTRIDGE_GUARDED_BY(mutex_);
    std::map<std::string, EnsembleSpec> ensembles_
        LIGHTRIDGE_GUARDED_BY(mutex_);
};

} // namespace lightridge
