/**
 * @file
 * Named-model registry for the inference serving subsystem.
 *
 * A ModelRegistry owns the trained DONN systems a serving process exposes,
 * keyed by name. Models are held behind shared_ptr<const DonnModel>, so a
 * registration is an atomic publish and an unload (or hot-swap) never
 * invalidates in-flight work: every request batch acquires its own
 * reference and the old instance lives until the last batch drops it.
 * Because the inference path is const and thread-safe (Layer::inferInPlace
 * plus the shared-instance modulation caches), one registered instance
 * serves every engine worker concurrently — no per-request or per-worker
 * clones.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "utils/sync.hpp"

namespace lightridge {

/** Error thrown when a request names a model the registry doesn't hold. */
class UnknownModelError : public std::runtime_error
{
  public:
    explicit UnknownModelError(const std::string &name)
        : std::runtime_error("unknown model: " + name)
    {}
};

/** Thread-safe registry of named, ref-counted, hot-swappable models. */
class ModelRegistry
{
  public:
    ModelRegistry() = default;

    ModelRegistry(const ModelRegistry &) = delete;
    ModelRegistry &operator=(const ModelRegistry &) = delete;

    /**
     * Publish a model under `name` (atomic hot-swap when the name is
     * already taken: new requests see the new instance, in-flight batches
     * finish on the old one).
     */
    void registerModel(const std::string &name, DonnModel model);

    /** Publish an already-shared instance (testing / advanced callers). */
    void registerShared(const std::string &name,
                        std::shared_ptr<const DonnModel> model)
        LIGHTRIDGE_EXCLUDES(mutex_);

    /**
     * Load a checkpoint file and publish it under `name`.
     * @throws JsonError on a missing/truncated/wrong-magic file (see
     *         loadCheckpointJson)
     */
    void registerCheckpoint(const std::string &name,
                            const std::string &path);

    /**
     * Drop the registry's reference to `name`.
     * @return false when the name was not registered
     */
    bool unload(const std::string &name) LIGHTRIDGE_EXCLUDES(mutex_);

    /**
     * Acquire a serving reference. The returned instance is immutable
     * and stays valid for as long as the caller holds the pointer, even
     * across unload/hot-swap.
     * @throws UnknownModelError when the name is not registered
     */
    std::shared_ptr<const DonnModel> acquire(const std::string &name) const
        LIGHTRIDGE_EXCLUDES(mutex_);

    /** True when `name` is currently registered. */
    bool has(const std::string &name) const LIGHTRIDGE_EXCLUDES(mutex_);

    /** Registered model names (sorted). */
    std::vector<std::string> names() const LIGHTRIDGE_EXCLUDES(mutex_);

    /** Number of registered models. */
    std::size_t size() const LIGHTRIDGE_EXCLUDES(mutex_);

    /**
     * Outstanding external references to a registered model (0 when only
     * the registry holds it). Diagnostic: an unload is "busy" when this
     * is non-zero, but it is still safe — the instance is freed when the
     * last holder drops it.
     */
    std::size_t externalRefCount(const std::string &name) const
        LIGHTRIDGE_EXCLUDES(mutex_);

  private:
    mutable Mutex mutex_;
    std::map<std::string, std::shared_ptr<const DonnModel>> models_
        LIGHTRIDGE_GUARDED_BY(mutex_);
};

} // namespace lightridge
