/**
 * @file
 * lightridge_serve: multi-model DONN inference server driven by a JSON
 * model manifest and a JSON-lines request stream.
 *
 *   lightridge_serve <manifest.json> [--requests=FILE|-] [--out=FILE]
 *                    [--stats=FILE] [--max-batch=N] [--max-queue=N]
 *                    [--sequential] [--no-logits] [--quiet]
 *
 * Manifest:
 *   {
 *     "models": [
 *       {"name": "digits", "checkpoint": "digits_ckpt.json"},
 *       {"name": "fresh",  "spec": "examples/specs/digits_tiny.json"}
 *     ],
 *     "batching": {"max_batch": 64, "max_queue": 4096}
 *   }
 * "checkpoint" entries load trained models (header-verified); "spec"
 * entries build the architecture of an ExperimentSpec with untrained
 * weights (latency/smoke testing).
 *
 * Requests, one JSON object per line (file or stdin):
 *   {"id": 1, "model": "digits",
 *    "image": {"rows": 28, "cols": 28, "data": [...]}}
 *   {"id": 2, "model": "digits",
 *    "sample": {"dataset": "digits", "seed": 5, "index": 3}}
 * "sample" requests synthesize the referenced dataset sample; their
 * responses carry the ground-truth "label" so accuracy can be scored
 * downstream (the CI serve-smoke job does exactly this).
 *
 * Responses are JSON lines in request order; a final stats JSON records
 * throughput and micro-batch shape. Exit codes: 0 success, 1 usage,
 * 2 manifest/spec error, 3 one or more requests failed.
 */
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "core/task.hpp"
#include "data/synth_digits.hpp"
#include "data/synth_fashion.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "utils/cli.hpp"
#include "utils/timer.hpp"

using namespace lightridge;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: lightridge_serve <manifest.json> [--requests=FILE|-]\n"
        "                        [--out=FILE] [--stats=FILE]\n"
        "                        [--max-batch=N] [--max-queue=N]\n"
        "                        [--sequential] [--no-logits] [--quiet]\n"
        "\n"
        "Serves the models of a JSON manifest against a JSON-lines\n"
        "request stream through the micro-batching InferenceEngine.\n");
}

/** One parsed request plus serve-side bookkeeping. */
struct ParsedRequest
{
    InferRequest request;
    int label = -1; ///< ground truth for "sample" requests, else -1
};

RealMap
imageFromJson(const Json &j)
{
    const std::size_t rows =
        static_cast<std::size_t>(j.at("rows").asNumber());
    const std::size_t cols =
        static_cast<std::size_t>(j.at("cols").asNumber());
    const Json::Array &data = j.at("data").asArray();
    if (data.size() != rows * cols)
        throw JsonError("request image: data length != rows*cols");
    RealMap image(rows, cols);
    for (std::size_t i = 0; i < data.size(); ++i)
        image[i] = data[i].asNumber();
    return image;
}

/** Lazily generated synthetic datasets keyed by "<dataset>:<seed>". */
class SampleSource
{
  public:
    /** Sample `index` of the (dataset, seed) stream; grows the cached
     *  dataset when the index is past what was generated so far. */
    const ClassDataset &
    dataset(const std::string &name, uint64_t seed, std::size_t index)
    {
        const std::string key = name + ":" + std::to_string(seed);
        ClassDataset &data = cache_[key];
        if (index >= data.size()) {
            // Grow geometrically so monotonically increasing indices
            // stay linear overall instead of regenerating 1,2,...,n.
            const std::size_t count =
                std::max(index + 1, 2 * data.size());
            if (name == "digits")
                data = makeSynthDigits(count, seed);
            else if (name == "fashion")
                data = makeSynthFashion(count, seed);
            else
                throw JsonError("sample dataset must be digits or "
                                "fashion, got: " + name);
        }
        return data;
    }

  private:
    std::map<std::string, ClassDataset> cache_;
};

ParsedRequest
parseRequestLine(const Json &j, std::uint64_t fallback_id,
                 SampleSource &samples)
{
    ParsedRequest parsed;
    parsed.request.model = j.at("model").asString();
    parsed.request.id = static_cast<std::uint64_t>(
        j.numberOr("id", static_cast<double>(fallback_id)));
    if (j.has("image")) {
        parsed.request.image = imageFromJson(j.at("image"));
    } else if (j.has("sample")) {
        const Json &s = j.at("sample");
        const std::string &dataset = s.at("dataset").asString();
        const uint64_t seed =
            static_cast<uint64_t>(s.numberOr("seed", 1.0));
        const std::size_t index =
            static_cast<std::size_t>(s.numberOr("index", 0.0));
        const ClassDataset &data = samples.dataset(dataset, seed, index);
        parsed.request.image = data.images[index];
        parsed.label = data.labels[index];
    } else {
        throw JsonError("request needs \"image\" or \"sample\"");
    }
    return parsed;
}

Json
responseJson(const InferResponse &response, int label, bool with_logits)
{
    Json j;
    j["id"] = Json(static_cast<std::size_t>(response.id));
    j["model"] = Json(response.model);
    j["prediction"] = Json(response.prediction);
    if (label >= 0)
        j["label"] = Json(label);
    j["latency_ms"] = Json(response.latency_ms);
    j["batch_size"] = Json(response.batch_size);
    if (with_logits) {
        Json logits;
        for (Real v : response.logits)
            logits.push(Json(v));
        j["logits"] = std::move(logits);
    }
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || argv[1][0] == '-') {
        usage();
        return 1;
    }
    const std::string manifest_path = argv[1];
    CliArgs args(argc, argv);
    const bool quiet = args.getBool("quiet", false);
    const bool sequential = args.getBool("sequential", false);
    const bool with_logits = !args.getBool("no-logits", false);

    // ---- manifest: registry + batching knobs ---------------------------
    ModelRegistry registry;
    BatchingConfig batching;
    try {
        Json manifest = Json::load(manifest_path);
        if (manifest.has("batching")) {
            const Json &b = manifest.at("batching");
            batching.max_batch = static_cast<std::size_t>(
                b.numberOr("max_batch", batching.max_batch));
            batching.max_queue = static_cast<std::size_t>(
                b.numberOr("max_queue", batching.max_queue));
        }
        for (const Json &entry : manifest.at("models").asArray()) {
            const std::string &name = entry.at("name").asString();
            if (entry.has("checkpoint")) {
                registry.registerCheckpoint(
                    name, entry.at("checkpoint").asString());
            } else if (entry.has("spec")) {
                ExperimentSpec spec =
                    ExperimentSpec::load(entry.at("spec").asString());
                std::size_t classes = spec.detector.classes;
                if (classes == 0)
                    classes = makeSynthDigits(1, spec.data.seed).num_classes;
                Rng rng(spec.model_seed);
                DonnModel model = buildSpecModel(spec, classes, &rng);
                // The init rng dies with this scope; the served model
                // must not keep a noise pointer into it (codesign
                // layers store it — noise is a training-only concern).
                bindModelNoiseRng(model, nullptr);
                registry.registerModel(name, std::move(model));
            } else {
                throw JsonError("manifest model \"" + name +
                                "\" needs \"checkpoint\" or \"spec\"");
            }
            if (!quiet)
                std::fprintf(stderr, "[serve] registered %s (%zux%zu)\n",
                             name.c_str(),
                             registry.acquire(name)->spec().size,
                             registry.acquire(name)->spec().size);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "lightridge_serve: bad manifest %s: %s\n",
                     manifest_path.c_str(), e.what());
        return 2;
    }
    if (args.has("max-batch"))
        batching.max_batch =
            static_cast<std::size_t>(args.getInt("max-batch", 64));
    if (args.has("max-queue"))
        batching.max_queue =
            static_cast<std::size_t>(args.getInt("max-queue", 4096));

    // ---- request stream ------------------------------------------------
    const std::string requests_path = args.getString("requests", "-");
    std::ifstream request_file;
    std::istream *request_stream = &std::cin;
    if (requests_path != "-") {
        request_file.open(requests_path);
        if (!request_file) {
            std::fprintf(stderr, "lightridge_serve: cannot open %s\n",
                         requests_path.c_str());
            return 1;
        }
        request_stream = &request_file;
    }

    std::vector<ParsedRequest> parsed;
    SampleSource samples;
    std::string line;
    std::uint64_t line_no = 0;
    try {
        while (std::getline(*request_stream, line)) {
            ++line_no;
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            parsed.push_back(
                parseRequestLine(Json::parse(line), line_no, samples));
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr,
                     "lightridge_serve: bad request on line %llu: %s\n",
                     static_cast<unsigned long long>(line_no), e.what());
        return 2;
    }

    // ---- serve ---------------------------------------------------------
    std::ofstream out_file;
    std::ostream *out = &std::cout;
    if (args.has("out")) {
        out_file.open(args.getString("out", ""));
        if (!out_file) {
            std::fprintf(stderr, "lightridge_serve: cannot write %s\n",
                         args.getString("out", "").c_str());
            return 1;
        }
        out = &out_file;
    }

    InferenceEngine engine(registry, batching);
    std::size_t failed = 0;
    WallTimer wall;

    auto emit = [&](std::future<InferResponse> &future, int label) {
        try {
            Json j = responseJson(future.get(), label, with_logits);
            (*out) << j.dump() << "\n";
        } catch (const std::exception &e) {
            ++failed;
            Json j;
            j["error"] = Json(std::string(e.what()));
            (*out) << j.dump() << "\n";
        }
    };

    if (sequential) {
        // One-at-a-time dispatch: every request is its own micro-batch
        // (the baseline the serving benchmark compares against).
        for (ParsedRequest &p : parsed) {
            std::future<InferResponse> future =
                engine.submit(std::move(p.request));
            emit(future, p.label);
        }
    } else {
        std::vector<std::future<InferResponse>> futures;
        futures.reserve(parsed.size());
        for (ParsedRequest &p : parsed)
            futures.push_back(engine.submit(std::move(p.request)));
        for (std::size_t i = 0; i < futures.size(); ++i)
            emit(futures[i], parsed[i].label);
    }
    // All futures resolved, but the dispatcher finishes its accounting
    // for the last batch after fulfilling the promises — drain() waits
    // for that so the stats snapshot is complete.
    engine.drain();
    const double wall_ms = wall.milliseconds();
    const EngineStats stats = engine.stats();

    Json stats_json;
    stats_json["requests"] = Json(static_cast<std::size_t>(stats.requests));
    stats_json["failed"] = Json(static_cast<std::size_t>(stats.failed));
    stats_json["batches"] = Json(static_cast<std::size_t>(stats.batches));
    stats_json["mean_batch"] = Json(stats.meanBatch());
    stats_json["max_batch"] = Json(stats.max_batch);
    stats_json["wall_ms"] = Json(wall_ms);
    stats_json["throughput_rps"] =
        Json(wall_ms > 0 ? 1e3 * static_cast<double>(stats.requests) /
                               wall_ms
                         : 0.0);
    stats_json["dispatch"] = Json(sequential ? "sequential" : "batched");
    if (args.has("stats"))
        stats_json.save(args.getString("stats", ""));
    if (!quiet)
        std::fprintf(stderr, "[serve] %s\n",
                     stats_json.dump().c_str());

    return failed == 0 ? 0 : 3;
}
