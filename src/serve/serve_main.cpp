/**
 * @file
 * lightridge_serve: multi-model DONN inference server driven by a JSON
 * model manifest, answering either a JSON-lines request stream (stdin
 * mode) or HTTP requests over a socket (--listen mode). Both modes run
 * the same request-handling core (serve/server.hpp ServingService): one
 * JSON schema, one parser, one response renderer, one engine.
 *
 *   lightridge_serve <manifest.json> [--requests=FILE|-] [--out=FILE]
 *                    [--stats=FILE] [--max-batch=N] [--max-queue=N]
 *                    [--quota=N] [--default-deadline-ms=MS]
 *                    [--sequential] [--no-logits] [--quiet]
 *                    [--listen=HOST:PORT] [--io-threads=N]
 *                    [--max-connections=N] [--port-file=FILE]
 *
 * Manifest:
 *   {
 *     "models": [
 *       {"name": "digits", "checkpoint": "digits_ckpt.json"},
 *       {"name": "fresh",  "spec": "examples/specs/digits_tiny.json"}
 *     ],
 *     "batching": {"max_batch": 64, "max_queue": 4096}
 *   }
 * "checkpoint" entries load trained models (header-verified); "spec"
 * entries build the architecture of an ExperimentSpec with untrained
 * weights (latency/smoke testing).
 *
 * Requests, one JSON object per line (file or stdin) — the same schema
 * the HTTP route accepts as a body:
 *   {"id": 1, "model": "digits",
 *    "image": {"rows": 28, "cols": 28, "data": [...]}}
 *   {"id": 2, "model": "digits", "deadline_ms": 50,
 *    "priority": "interactive",
 *    "sample": {"dataset": "digits", "seed": 5, "index": 3}}
 * "sample" requests synthesize the referenced dataset sample; their
 * responses carry the ground-truth "label" so accuracy can be scored
 * downstream (the CI serve-smoke job does exactly this).
 *
 * Socket mode (--listen): serves POST /v1/models/<name>/infer,
 * GET /healthz, GET /metrics until SIGINT/SIGTERM, then shuts down
 * cleanly (stops accepting, joins IO threads, drains the engine) and
 * prints the same stats JSON. PORT 0 binds an ephemeral port;
 * --port-file writes the resolved port for drivers.
 *
 * Responses are JSON lines in request order; a final stats JSON records
 * throughput and micro-batch shape. Exit codes: 0 success, 1 usage,
 * 2 manifest/spec error, 3 one or more requests failed (stdin mode).
 */
#include <csignal>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/experiment.hpp"
#include "core/task.hpp"
#include "data/synth_digits.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "utils/cli.hpp"
#include "utils/timer.hpp"

using namespace lightridge;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: lightridge_serve <manifest.json> [--requests=FILE|-]\n"
        "                        [--out=FILE] [--stats=FILE]\n"
        "                        [--max-batch=N] [--max-queue=N]\n"
        "                        [--quota=N] [--default-deadline-ms=MS]\n"
        "                        [--sequential] [--no-logits] [--quiet]\n"
        "                        [--listen=HOST:PORT] [--io-threads=N]\n"
        "                        [--max-connections=N] [--port-file=FILE]\n"
        "\n"
        "Serves the models of a JSON manifest through the micro-batching\n"
        "InferenceEngine: against a JSON-lines request stream, or (with\n"
        "--listen) over an HTTP/1.1 socket until SIGINT/SIGTERM.\n");
}

volatile std::sig_atomic_t g_shutdown = 0;

void
onSignal(int)
{
    g_shutdown = 1;
}

Json
statsJson(const InferenceEngine &engine, double wall_ms,
          const char *dispatch)
{
    const EngineStats stats = engine.stats();
    Json j;
    j["requests"] = Json(static_cast<std::size_t>(stats.requests));
    j["failed"] = Json(static_cast<std::size_t>(stats.failed));
    j["shed"] = Json(static_cast<std::size_t>(stats.shed));
    j["expired"] = Json(static_cast<std::size_t>(stats.expired));
    j["batches"] = Json(static_cast<std::size_t>(stats.batches));
    j["mean_batch"] = Json(stats.meanBatch());
    j["max_batch"] = Json(stats.max_batch);
    j["ensembles"] = Json(static_cast<std::size_t>(stats.ensembles));
    j["fan_out"] = Json(static_cast<std::size_t>(stats.fan_out));
    j["wall_ms"] = Json(wall_ms);
    j["throughput_rps"] =
        Json(wall_ms > 0
                 ? 1e3 * static_cast<double>(stats.requests) / wall_ms
                 : 0.0);
    j["dispatch"] = Json(std::string(dispatch));
    return j;
}

int
runStdinMode(ServingService &service, InferenceEngine &engine,
             CliArgs &args, bool quiet)
{
    const bool sequential = args.getBool("sequential", false);

    const std::string requests_path = args.getString("requests", "-");
    std::ifstream request_file;
    std::istream *request_stream = &std::cin;
    if (requests_path != "-") {
        request_file.open(requests_path);
        if (!request_file) {
            std::fprintf(stderr, "lightridge_serve: cannot open %s\n",
                         requests_path.c_str());
            return 1;
        }
        request_stream = &request_file;
    }

    std::vector<ParsedServeRequest> parsed;
    std::string line;
    std::uint64_t line_no = 0;
    try {
        while (std::getline(*request_stream, line)) {
            ++line_no;
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            parsed.push_back(
                service.parseLine(Json::parse(line), line_no));
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr,
                     "lightridge_serve: bad request on line %llu: %s\n",
                     static_cast<unsigned long long>(line_no), e.what());
        return 2;
    }

    std::ofstream out_file;
    std::ostream *out = &std::cout;
    if (args.has("out")) {
        out_file.open(args.getString("out", ""));
        if (!out_file) {
            std::fprintf(stderr, "lightridge_serve: cannot write %s\n",
                         args.getString("out", "").c_str());
            return 1;
        }
        out = &out_file;
    }

    std::size_t failed = 0;
    WallTimer wall;

    auto emit = [&](std::future<InferResponse> &future, int label) {
        const InferResponse response = future.get();
        if (!response.ok())
            ++failed;
        (*out) << service.responseJson(response, label).dump() << "\n";
    };

    if (sequential) {
        // One-at-a-time dispatch: every request is its own micro-batch
        // (the baseline the serving benchmark compares against).
        for (ParsedServeRequest &p : parsed) {
            std::future<InferResponse> future =
                service.engine().submit(std::move(p.request));
            emit(future, p.label);
        }
    } else {
        std::vector<std::future<InferResponse>> futures;
        futures.reserve(parsed.size());
        for (ParsedServeRequest &p : parsed)
            futures.push_back(
                service.engine().submit(std::move(p.request)));
        for (std::size_t i = 0; i < futures.size(); ++i)
            emit(futures[i], parsed[i].label);
    }
    // All futures resolved, but the dispatcher finishes its accounting
    // for the last batch after fulfilling the promises — drain() waits
    // for that so the stats snapshot is complete.
    engine.drain();

    Json stats = statsJson(engine, wall.milliseconds(),
                           sequential ? "sequential" : "batched");
    if (args.has("stats"))
        stats.save(args.getString("stats", ""));
    if (!quiet)
        std::fprintf(stderr, "[serve] %s\n", stats.dump().c_str());

    return failed == 0 ? 0 : 3;
}

int
runSocketMode(ServingService &service, InferenceEngine &engine,
              CliArgs &args, const std::string &listen, bool quiet)
{
    HttpServerConfig config;
    const std::size_t colon = listen.rfind(':');
    if (colon == std::string::npos) {
        std::fprintf(stderr,
                     "lightridge_serve: --listen needs HOST:PORT\n");
        return 1;
    }
    config.host = listen.substr(0, colon);
    config.port = static_cast<std::uint16_t>(
        std::atoi(listen.c_str() + colon + 1));
    config.io_threads =
        static_cast<std::size_t>(args.getInt("io-threads", 0));
    config.max_connections =
        static_cast<std::size_t>(args.getInt("max-connections", 1024));
    // All three shed paths (connection limit here, engine sheds and
    // submit-time overloads inside ServingService) advertise the same
    // backlog-derived Retry-After.
    config.retry_after_hint = [&engine] {
        return engine.retryAfterSeconds();
    };

    HttpServer server(config, [&service](HttpRequest &&request) {
        return service.handle(std::move(request));
    });
    service.setExtraMetrics(
        [&server] { return server.transportMetricsText(); });

    try {
        server.start();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "lightridge_serve: %s\n", e.what());
        return 1;
    }
    if (!quiet)
        std::fprintf(stderr,
                     "[serve] listening on %s:%u (%zu io threads)\n",
                     config.host.c_str(), server.port(),
                     server.ioThreads());
    if (args.has("port-file")) {
        std::ofstream port_file(args.getString("port-file", ""));
        port_file << server.port() << "\n";
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    WallTimer wall;
    while (!g_shutdown)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // Clean shutdown: stop accepting + join IO threads first (no new
    // submissions), then let the engine finish what was admitted.
    server.stop();
    engine.drain();
    const double wall_ms = wall.milliseconds();

    Json stats = statsJson(engine, wall_ms, "socket");
    const HttpTransportStats transport = server.transportStats();
    Json t;
    t["connections_accepted"] = Json(
        static_cast<std::size_t>(transport.connections_accepted));
    t["connections_rejected"] = Json(
        static_cast<std::size_t>(transport.connections_rejected));
    t["http_requests"] =
        Json(static_cast<std::size_t>(transport.requests));
    t["parse_errors"] =
        Json(static_cast<std::size_t>(transport.parse_errors));
    t["io_threads"] = Json(server.ioThreads());
    stats["transport"] = std::move(t);
    if (args.has("stats"))
        stats.save(args.getString("stats", ""));
    if (!quiet)
        std::fprintf(stderr, "[serve] %s\n", stats.dump().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || argv[1][0] == '-') {
        usage();
        return 1;
    }
    const std::string manifest_path = argv[1];
    CliArgs args(argc, argv);
    const bool quiet = args.getBool("quiet", false);
    const bool with_logits = !args.getBool("no-logits", false);
    const std::string listen = args.getString("listen", "");

    // ---- manifest: registry + batching knobs ---------------------------
    ModelRegistry registry;
    BatchingConfig batching;
    try {
        Json manifest = Json::load(manifest_path);
        if (manifest.has("batching")) {
            const Json &b = manifest.at("batching");
            batching.max_batch = static_cast<std::size_t>(
                b.numberOr("max_batch", batching.max_batch));
            batching.max_queue = static_cast<std::size_t>(
                b.numberOr("max_queue", batching.max_queue));
        }
        // Two passes: models first, then ensembles, so an ensemble may
        // name members declared later in the file. Duplicate names are
        // a manifest error — silently hot-swapping the earlier entry
        // almost certainly serves the wrong model.
        std::set<std::string> seen;
        for (const Json &entry : manifest.at("models").asArray()) {
            const std::string &name = entry.at("name").asString();
            if (!seen.insert(name).second)
                throw JsonError("manifest declares model \"" + name +
                                "\" more than once");
            if (entry.has("kind") &&
                entry.at("kind").asString() == "ensemble")
                continue;
            if (entry.has("checkpoint")) {
                registry.registerCheckpoint(
                    name, entry.at("checkpoint").asString());
            } else if (entry.has("spec")) {
                ExperimentSpec spec =
                    ExperimentSpec::load(entry.at("spec").asString());
                std::size_t classes = spec.detector.classes;
                if (classes == 0)
                    classes = makeSynthDigits(1, spec.data.seed).num_classes;
                Rng rng(spec.model_seed);
                DonnModel model = buildSpecModel(spec, classes, &rng);
                // The init rng dies with this scope; the served model
                // must not keep a noise pointer into it (codesign
                // layers store it — noise is a training-only concern).
                bindModelNoiseRng(model, nullptr);
                registry.registerModel(name, std::move(model));
            } else {
                throw JsonError("manifest model \"" + name +
                                "\" needs \"checkpoint\" or \"spec\"");
            }
            if (!quiet)
                std::fprintf(stderr, "[serve] registered %s (%zux%zu)\n",
                             name.c_str(),
                             registry.acquire(name)->spec().size,
                             registry.acquire(name)->spec().size);
        }
        for (const Json &entry : manifest.at("models").asArray()) {
            if (!entry.has("kind") ||
                entry.at("kind").asString() != "ensemble")
                continue;
            EnsembleSpec spec;
            spec.name = entry.at("name").asString();
            for (const Json &member : entry.at("members").asArray())
                spec.members.push_back(member.asString());
            if (entry.has("fusion")) {
                try {
                    spec.fusion =
                        fusionRuleFromName(entry.at("fusion").asString());
                } catch (const std::invalid_argument &e) {
                    throw JsonError(e.what());
                }
            }
            const std::size_t fan = spec.members.size();
            // Self-referencing or missing members are rejected here
            // (registerEnsemble validates against the registry).
            registry.registerEnsemble(std::move(spec));
            if (!quiet)
                std::fprintf(stderr,
                             "[serve] registered %s (ensemble of %zu)\n",
                             entry.at("name").asString().c_str(), fan);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "lightridge_serve: bad manifest %s: %s\n",
                     manifest_path.c_str(), e.what());
        return 2;
    }
    if (args.has("max-batch"))
        batching.max_batch =
            static_cast<std::size_t>(args.getInt("max-batch", 64));
    if (args.has("max-queue"))
        batching.max_queue =
            static_cast<std::size_t>(args.getInt("max-queue", 4096));
    if (args.has("quota")) {
        batching.max_queued_per_model =
            static_cast<std::size_t>(args.getInt("quota", 0));
    } else if (!listen.empty()) {
        // Socket default: shed (503 + Retry-After) at the queue bound
        // instead of blocking an IO thread on backpressure.
        batching.max_queued_per_model = batching.max_queue;
    }

    InferenceEngine engine(registry, batching);
    ServingServiceConfig service_config;
    service_config.with_logits = with_logits;
    service_config.default_deadline_ms =
        args.getDouble("default-deadline-ms", 0.0);
    ServingService service(registry, engine, service_config);

    return listen.empty()
               ? runStdinMode(service, engine, args, quiet)
               : runSocketMode(service, engine, args, listen, quiet);
}
