#include "core/detector.hpp"

#include <cmath>
#include <stdexcept>

#include "optics/workspace.hpp"

namespace lightridge {

namespace {

/** Region-integrated intensity of one region over a complex field. */
Real
regionIntensity(const Field &u, const DetectorRegion &reg)
{
    Real total = 0;
    for (std::size_t r = reg.r0; r < reg.r0 + reg.h; ++r)
        for (std::size_t c = reg.c0; c < reg.c0 + reg.w; ++c)
            total += std::norm(u(r, c));
    return total;
}

/** Region-integrated value of one region over a real intensity map. */
Real
regionIntensity(const RealMap &intensity, const DetectorRegion &reg)
{
    Real total = 0;
    for (std::size_t r = reg.r0; r < reg.r0 + reg.h; ++r)
        for (std::size_t c = reg.c0; c < reg.c0 + reg.w; ++c)
            total += intensity(r, c);
    return total;
}

} // namespace

DetectorPlane::DetectorPlane(std::vector<DetectorRegion> regions,
                             Real amp_factor)
    : regions_(std::move(regions)), amp_factor_(amp_factor)
{
    if (regions_.empty())
        throw std::invalid_argument("DetectorPlane: no regions");
}

DetectorPlane::DetectorPlane(std::vector<DetectorRegion> regions,
                             std::vector<DetectorRegion> neg_regions,
                             Real amp_factor)
    : regions_(std::move(regions)), neg_regions_(std::move(neg_regions)),
      mode_(DetectorMode::Differential), amp_factor_(amp_factor)
{
    if (regions_.empty())
        throw std::invalid_argument("DetectorPlane: no regions");
    if (neg_regions_.size() != regions_.size())
        throw std::invalid_argument(
            "DetectorPlane: differential mode needs one negative region "
            "per positive region");
}

std::vector<Real>
DetectorPlane::readout(const Field &u) const
{
    std::vector<Real> logits(regions_.size(), 0.0);
    if (differential()) {
        for (std::size_t k = 0; k < regions_.size(); ++k) {
            Real p = regionIntensity(u, regions_[k]);
            Real n = regionIntensity(u, neg_regions_[k]);
            logits[k] = amp_factor_ * (p - n) / (p + n + kDifferentialEps);
        }
        return logits;
    }
    for (std::size_t k = 0; k < regions_.size(); ++k)
        logits[k] = amp_factor_ * regionIntensity(u, regions_[k]);
    return logits;
}

std::vector<Real>
DetectorPlane::readoutFromIntensity(const RealMap &intensity) const
{
    std::vector<Real> logits(regions_.size(), 0.0);
    if (differential()) {
        for (std::size_t k = 0; k < regions_.size(); ++k) {
            Real p = regionIntensity(intensity, regions_[k]);
            Real n = regionIntensity(intensity, neg_regions_[k]);
            logits[k] = amp_factor_ * (p - n) / (p + n + kDifferentialEps);
        }
        return logits;
    }
    for (std::size_t k = 0; k < regions_.size(); ++k)
        logits[k] = amp_factor_ * regionIntensity(intensity, regions_[k]);
    return logits;
}

std::vector<Real>
DetectorPlane::readoutNoisy(const Field &u, Real noise_frac, Rng *rng) const
{
    RealMap intensity = u.intensity();
    Real bound = noise_frac * intensity.max();
    for (std::size_t i = 0; i < intensity.size(); ++i)
        intensity[i] += rng->uniform(0.0, bound);
    return readoutFromIntensity(intensity);
}

std::vector<Real>
DetectorPlane::forward(const Field &u)
{
    cached_u_ = u;
    return readout(u);
}

Field
DetectorPlane::backward(const std::vector<Real> &dlogits) const
{
    Field grad;
    backwardInto(dlogits, grad);
    return grad;
}

Field
DetectorPlane::backwardFor(const Field &u,
                           const std::vector<Real> &dlogits) const
{
    Field grad;
    backwardForInto(u, dlogits, grad);
    return grad;
}

void
DetectorPlane::backwardInto(const std::vector<Real> &dlogits,
                            Field &grad) const
{
    if (cached_u_.empty())
        throw std::logic_error("DetectorPlane::backward before forward");
    backwardForInto(cached_u_, dlogits, grad);
}

void
DetectorPlane::backwardForInto(const Field &u,
                               const std::vector<Real> &dlogits,
                               Field &grad) const
{
    if (dlogits.size() != regions_.size())
        throw std::invalid_argument("DetectorPlane: dlogits size mismatch");
    ensureFieldShape(grad, u.rows(), u.cols());
    grad.fill(Complex{0, 0});
    if (differential()) {
        // logit = amp * (P - N) / (P + N + eps) with P/N the pos/neg
        // region intensity sums, so per region sum:
        //   dlogit/dP =  amp * (2N + eps) / S^2
        //   dlogit/dN = -amp * (2P + eps) / S^2    with S = P + N + eps,
        // and each pixel contributes d(sum)/du = 2u (Wirtinger).
        for (std::size_t k = 0; k < regions_.size(); ++k) {
            Real p = regionIntensity(u, regions_[k]);
            Real n = regionIntensity(u, neg_regions_[k]);
            Real s = p + n + kDifferentialEps;
            Real wp = amp_factor_ * (2 * n + kDifferentialEps) / (s * s);
            Real wn = -amp_factor_ * (2 * p + kDifferentialEps) / (s * s);
            const DetectorRegion &pos = regions_[k];
            Real pos_scale = 2 * dlogits[k] * wp;
            for (std::size_t r = pos.r0; r < pos.r0 + pos.h; ++r)
                for (std::size_t c = pos.c0; c < pos.c0 + pos.w; ++c)
                    grad(r, c) += pos_scale * u(r, c);
            const DetectorRegion &neg = neg_regions_[k];
            Real neg_scale = 2 * dlogits[k] * wn;
            for (std::size_t r = neg.r0; r < neg.r0 + neg.h; ++r)
                for (std::size_t c = neg.c0; c < neg.c0 + neg.w; ++c)
                    grad(r, c) += neg_scale * u(r, c);
        }
        return;
    }
    for (std::size_t k = 0; k < regions_.size(); ++k) {
        const DetectorRegion &reg = regions_[k];
        // logit = amp * sum |u|^2  =>  G = 2 * amp * dlogit * u.
        Real scale = 2 * amp_factor_ * dlogits[k];
        for (std::size_t r = reg.r0; r < reg.r0 + reg.h; ++r)
            for (std::size_t c = reg.c0; c < reg.c0 + reg.w; ++c)
                grad(r, c) += scale * u(r, c);
    }
}

std::vector<DetectorRegion>
DetectorPlane::gridLayout(std::size_t n, std::size_t num_classes,
                          std::size_t det_size)
{
    if (num_classes == 0 || det_size == 0)
        throw std::invalid_argument("gridLayout: empty layout");
    // Near-square arrangement: cols = ceil(sqrt(k)).
    std::size_t cols = 1;
    while (cols * cols < num_classes)
        ++cols;
    std::size_t rows = (num_classes + cols - 1) / cols;
    if ((rows + 1) * det_size > n || (cols + 1) * det_size > n)
        throw std::invalid_argument("gridLayout: regions do not fit plane");

    std::vector<DetectorRegion> regions;
    regions.reserve(num_classes);
    for (std::size_t k = 0; k < num_classes; ++k) {
        std::size_t row = k / cols;
        std::size_t col = k % cols;
        std::size_t in_row = std::min(cols, num_classes - row * cols);
        // Even spacing: centers at (i+1)/(count+1) of the plane.
        Real cy = static_cast<Real>(row + 1) / (rows + 1) * n;
        Real cx = static_cast<Real>(col + 1) / (in_row + 1) * n;
        DetectorRegion reg;
        reg.h = det_size;
        reg.w = det_size;
        reg.r0 = static_cast<std::size_t>(
            std::min<Real>(std::max<Real>(cy - det_size / 2.0, 0),
                           n - det_size));
        reg.c0 = static_cast<std::size_t>(
            std::min<Real>(std::max<Real>(cx - det_size / 2.0, 0),
                           n - det_size));
        regions.push_back(reg);
    }
    return regions;
}

std::pair<std::vector<DetectorRegion>, std::vector<DetectorRegion>>
DetectorPlane::differentialGridLayout(std::size_t n, std::size_t num_classes,
                                      std::size_t det_size)
{
    // Lay out 2k evenly spaced regions; consecutive slots form each
    // class's positive/negative pair, so pairs sit adjacent on the plane
    // (the geometry of Li et al., arXiv:1906.03417, Fig. 1).
    std::vector<DetectorRegion> all =
        gridLayout(n, 2 * num_classes, det_size);
    std::vector<DetectorRegion> pos, neg;
    pos.reserve(num_classes);
    neg.reserve(num_classes);
    for (std::size_t k = 0; k < num_classes; ++k) {
        pos.push_back(all[2 * k]);
        neg.push_back(all[2 * k + 1]);
    }
    return {std::move(pos), std::move(neg)};
}

} // namespace lightridge
