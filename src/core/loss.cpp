#include "core/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lightridge {

std::vector<Real>
softmax(const std::vector<Real> &logits)
{
    Real peak = *std::max_element(logits.begin(), logits.end());
    std::vector<Real> probs(logits.size());
    Real total = 0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        probs[i] = std::exp(logits[i] - peak);
        total += probs[i];
    }
    for (Real &p : probs)
        p /= total;
    return probs;
}

LossResult
softmaxMseLoss(const std::vector<Real> &logits, int target)
{
    if (target < 0 || static_cast<std::size_t>(target) >= logits.size())
        throw std::invalid_argument("softmaxMseLoss: bad target");
    std::vector<Real> s = softmax(logits);

    LossResult out;
    out.dlogits.assign(logits.size(), 0.0);
    // dL/ds_j = 2 (s_j - t_j); chain through the softmax Jacobian:
    // dL/dI_i = s_i (dL/ds_i - sum_j dL/ds_j s_j).
    std::vector<Real> dlds(logits.size());
    Real inner = 0;
    for (std::size_t j = 0; j < logits.size(); ++j) {
        Real t = (static_cast<int>(j) == target) ? 1.0 : 0.0;
        Real diff = s[j] - t;
        out.value += diff * diff;
        dlds[j] = 2 * diff;
        inner += dlds[j] * s[j];
    }
    for (std::size_t i = 0; i < logits.size(); ++i)
        out.dlogits[i] = s[i] * (dlds[i] - inner);
    return out;
}

LossResult
crossEntropyLoss(const std::vector<Real> &logits, int target)
{
    if (target < 0 || static_cast<std::size_t>(target) >= logits.size())
        throw std::invalid_argument("crossEntropyLoss: bad target");
    std::vector<Real> s = softmax(logits);
    LossResult out;
    out.value = -std::log(std::max(s[target], Real(1e-300)));
    out.dlogits.resize(logits.size());
    for (std::size_t i = 0; i < logits.size(); ++i) {
        Real t = (static_cast<int>(i) == target) ? 1.0 : 0.0;
        out.dlogits[i] = s[i] - t;
    }
    return out;
}

LossResult
classificationLoss(LossKind kind, const std::vector<Real> &logits, int target)
{
    return kind == LossKind::SoftmaxMse ? softmaxMseLoss(logits, target)
                                        : crossEntropyLoss(logits, target);
}

FieldLossResult
intensityMseLoss(const Field &u, const RealMap &target, Real scale)
{
    FieldLossResult out;
    out.grad = u;
    out.value = intensityMseLossInPlace(out.grad, target, scale);
    return out;
}

Real
intensityMseLossInPlace(Field &u, const RealMap &target, Real scale)
{
    if (u.size() != target.size())
        throw std::invalid_argument("intensityMseLoss: shape mismatch");
    Real value = 0;
    const Real inv_n = Real(1) / static_cast<Real>(u.size());
    for (std::size_t i = 0; i < u.size(); ++i) {
        Real intensity = scale * std::norm(u[i]);
        Real diff = intensity - target[i];
        value += diff * diff * inv_n;
        // dL/dI = 2 diff / N; G = dL/dI * scale * 2 * u.
        u[i] = Real(4) * diff * inv_n * scale * u[i];
    }
    return value;
}

Real
predictionConfidence(const std::vector<Real> &logits)
{
    std::vector<Real> s = softmax(logits);
    return *std::max_element(s.begin(), s.end());
}

} // namespace lightridge
