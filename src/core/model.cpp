#include "core/model.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/layer_norm.hpp"
#include "core/skip.hpp"
#include "optics/perturbation.hpp"

namespace lightridge {

void
addCheckpointHeader(Json &j)
{
    j["format"] = Json(kCheckpointMagic);
    j["version"] = Json(kCheckpointVersion);
}

void
verifyCheckpointHeader(const Json &j, const std::string &origin)
{
    if (!j.isObject())
        throw JsonError("checkpoint " + origin +
                        ": not a JSON object (truncated or wrong file?)");
    if (!j.has("format"))
        return; // legacy headerless checkpoint: accepted as version 0
    if (!j.at("format").isString())
        throw JsonError("checkpoint " + origin +
                        ": malformed header (\"format\" is not a string)");
    const std::string &magic = j.at("format").asString();
    if (magic != kCheckpointMagic)
        throw JsonError("checkpoint " + origin +
                        ": wrong magic \"" + magic +
                        "\" (expected \"" + kCheckpointMagic + "\")");
    if (!j.has("version") || !j.at("version").isNumber())
        throw JsonError("checkpoint " + origin +
                        ": malformed header (missing \"version\")");
    const int version = j.at("version").asInt();
    if (version < 1 || version > kCheckpointVersion)
        throw JsonError("checkpoint " + origin + ": unsupported version " +
                        std::to_string(version) + " (this build reads <= " +
                        std::to_string(kCheckpointVersion) + ")");
}

Json
loadCheckpointJson(const std::string &path)
{
    Json j;
    try {
        j = Json::load(path);
    } catch (const JsonError &e) {
        throw JsonError("checkpoint " + path +
                        ": unreadable or truncated (" + e.what() + ")");
    }
    verifyCheckpointHeader(j, path);
    return j;
}

Json
SystemSpec::toJson() const
{
    Json j;
    j["size"] = Json(size);
    j["pixel"] = Json(pixel);
    j["distance"] = Json(distance);
    j["approx"] = Json(static_cast<int>(approx));
    j["method"] = Json(static_cast<int>(method));
    j["pad_factor"] = Json(pad_factor);
    return j;
}

SystemSpec
SystemSpec::fromJson(const Json &j)
{
    SystemSpec spec;
    spec.size = static_cast<std::size_t>(j.at("size").asNumber());
    spec.pixel = j.at("pixel").asNumber();
    spec.distance = j.at("distance").asNumber();
    spec.approx = static_cast<Diffraction>(j.at("approx").asInt());
    spec.method = static_cast<PropagationMethod>(j.at("method").asInt());
    spec.pad_factor = static_cast<std::size_t>(j.at("pad_factor").asNumber());
    return spec;
}

namespace {

Json
regionsToJson(const std::vector<DetectorRegion> &regions)
{
    Json out;
    for (const DetectorRegion &reg : regions) {
        Json r;
        r["r0"] = Json(reg.r0);
        r["c0"] = Json(reg.c0);
        r["h"] = Json(reg.h);
        r["w"] = Json(reg.w);
        out.push(std::move(r));
    }
    return out;
}

std::vector<DetectorRegion>
regionsFromJson(const Json &j)
{
    std::vector<DetectorRegion> regions;
    for (const Json &r : j.asArray()) {
        DetectorRegion reg;
        reg.r0 = static_cast<std::size_t>(r.at("r0").asNumber());
        reg.c0 = static_cast<std::size_t>(r.at("c0").asNumber());
        reg.h = static_cast<std::size_t>(r.at("h").asNumber());
        reg.w = static_cast<std::size_t>(r.at("w").asNumber());
        regions.push_back(reg);
    }
    return regions;
}

} // namespace

DonnModel::DonnModel(SystemSpec spec, Laser laser)
    : spec_(spec), laser_(laser)
{
    PropagatorConfig config;
    config.grid = spec_.grid();
    config.wavelength = laser_.wavelength;
    config.distance = spec_.distance;
    config.approx = spec_.approx;
    config.method = spec_.method;
    config.pad_factor = spec_.pad_factor;
    propagator_ = std::make_shared<Propagator>(config);
    source_profile_ = sourceProfile(laser_, spec_.grid());
}

void
DonnModel::addLayer(LayerPtr layer)
{
    layers_.push_back(std::move(layer));
}

void
DonnModel::setDetector(DetectorPlane detector)
{
    detector_ = std::move(detector);
}

Field
DonnModel::encode(const RealMap &image) const
{
    Field out;
    encodeInto(image, out);
    return out;
}

void
DonnModel::encodeInto(const RealMap &image, Field &out) const
{
    const Grid grid = spec_.grid();
    ensureFieldShape(out, grid.n, grid.n);
    auto window = [&](const RealMap &img) {
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = source_profile_[i] * Complex{img[i], 0};
    };
    if (image.rows() == grid.n && image.cols() == grid.n) {
        window(image);
        return;
    }
    RealMap resized = resizeBilinear(image, grid.n, grid.n);
    window(resized);
}

Field
DonnModel::forwardField(const Field &input, bool training)
{
    Field u = input;
    forwardFieldInPlace(u, training, PropagationWorkspace::threadLocal());
    return u;
}

void
DonnModel::forwardFieldInPlace(Field &u, bool training,
                               PropagationWorkspace &workspace)
{
    if (!training) {
        inferFieldInPlace(u, workspace);
        return;
    }
    for (LayerPtr &layer : layers_)
        layer->forwardInPlace(u, training, workspace);
    propagator_->forwardInto(u, u, workspace,
                             perturb_ ? &perturb_->final_hop : nullptr);
}

Field
DonnModel::inferField(const Field &input) const
{
    Field u = input;
    inferFieldInPlace(u, PropagationWorkspace::threadLocal());
    return u;
}

void
DonnModel::inferFieldInPlace(Field &u, PropagationWorkspace &workspace) const
{
    for (const LayerPtr &layer : layers_)
        layer->inferInPlace(u, workspace);
    propagator_->forwardInto(u, u, workspace,
                             perturb_ ? &perturb_->final_hop : nullptr);
}

std::vector<Field>
DonnModel::forwardFieldBatch(const std::vector<Field> &inputs,
                             ThreadPool *pool) const
{
    std::vector<Field> outputs(inputs.size());
    if (pool == nullptr)
        pool = &ThreadPool::global();
    pool->parallelFor(inputs.size(), [&](std::size_t i) {
        // Each pool worker leases scratch from its own thread-local
        // arena, so concurrent samples never contend on buffers.
        outputs[i] = inputs[i];
        inferFieldInPlace(outputs[i], PropagationWorkspace::threadLocal());
    });
    return outputs;
}

std::vector<std::vector<Real>>
DonnModel::forwardLogitsBatch(const std::vector<Field> &inputs,
                              ThreadPool *pool) const
{
    if (detector_.numClasses() == 0)
        throw std::logic_error("DonnModel: detector not configured");
    std::vector<std::vector<Real>> logits(inputs.size());
    if (pool == nullptr)
        pool = &ThreadPool::global();
    pool->parallelFor(inputs.size(), [&](std::size_t i) {
        PropagationWorkspace &workspace =
            PropagationWorkspace::threadLocal();
        WorkspaceField u(workspace, inputs[i].rows(), inputs[i].cols());
        std::copy(inputs[i].data(), inputs[i].data() + inputs[i].size(),
                  u->data());
        logits[i] = inferLogitsInPlace(u.get(), workspace);
    });
    return logits;
}

std::vector<Real>
DonnModel::forwardLogits(const Field &input, bool training)
{
    Field u = forwardField(input, training);
    if (detector_.numClasses() == 0)
        throw std::logic_error("DonnModel: detector not configured");
    return training ? detector_.forward(u) : detector_.readout(u);
}

int
DonnModel::predict(const Field &input)
{
    std::vector<Real> logits = forwardLogits(input, false);
    return static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
}

void
DonnModel::backwardFromLogits(const std::vector<Real> &dlogits)
{
    backwardField(detector_.backward(dlogits));
}

void
DonnModel::backwardFromLogitsInPlace(const std::vector<Real> &dlogits,
                                     Field &g,
                                     PropagationWorkspace &workspace)
{
    detector_.backwardInto(dlogits, g);
    backwardFieldInPlace(g, workspace);
}

std::vector<Real>
DonnModel::forwardLogitsInPlace(Field &u, bool training,
                                PropagationWorkspace &workspace)
{
    if (!training)
        return inferLogitsInPlace(u, workspace);
    forwardFieldInPlace(u, training, workspace);
    if (detector_.numClasses() == 0)
        throw std::logic_error("DonnModel: detector not configured");
    return detector_.forward(u);
}

std::vector<Real>
DonnModel::inferLogitsInPlace(Field &u,
                              PropagationWorkspace &workspace) const
{
    inferFieldInPlace(u, workspace);
    if (detector_.numClasses() == 0)
        throw std::logic_error("DonnModel: detector not configured");
    return detector_.readout(u);
}

void
DonnModel::backwardField(const Field &grad_at_detector)
{
    Field g = grad_at_detector;
    backwardFieldInPlace(g, PropagationWorkspace::threadLocal());
}

void
DonnModel::backwardFieldInPlace(Field &g, PropagationWorkspace &workspace)
{
    propagator_->adjointInto(g, g, workspace,
                             perturb_ ? &perturb_->final_hop : nullptr);
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        (*it)->backwardInPlace(g, workspace);
}

void
DonnModel::setPerturbation(const PerturbationRealization *realization)
{
    perturb_ = realization;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const LayerPerturbation *lp =
            (realization && i < realization->layers.size())
                ? &realization->layers[i]
                : nullptr;
        layers_[i]->setPerturbation(lp);
    }
}

DonnModel::DonnModel(SystemSpec spec, Laser laser,
                     std::shared_ptr<const Propagator> propagator)
    : spec_(spec), laser_(laser), propagator_(std::move(propagator))
{}

DonnModel
DonnModel::clone() const
{
    DonnModel copy(spec_, laser_, propagator_); // share, don't rebuild
    copy.source_profile_ = source_profile_;     // immutable, copy not rebuild
    copy.layers_.reserve(layers_.size());
    for (const LayerPtr &layer : layers_)
        copy.layers_.push_back(layer->clone());
    copy.detector_ = detector_;
    return copy;
}

std::vector<ParamView>
DonnModel::params()
{
    std::vector<ParamView> all;
    for (LayerPtr &layer : layers_)
        for (ParamView p : layer->params())
            all.push_back(p);
    return all;
}

void
DonnModel::zeroGrad()
{
    for (LayerPtr &layer : layers_)
        layer->zeroGrad();
}

Json
DonnModel::toJson() const
{
    Json j;
    j["spec"] = spec_.toJson();
    Json laser;
    laser["wavelength"] = Json(laser_.wavelength);
    laser["profile"] = Json(static_cast<int>(laser_.profile));
    laser["waist"] = Json(laser_.waist);
    laser["power_watts"] = Json(laser_.power_watts);
    j["laser"] = std::move(laser);

    Json layers;
    for (const LayerPtr &layer : layers_)
        layers.push(layer->toJson());
    j["layers"] = std::move(layers);

    Json det;
    det["amp_factor"] = Json(detector_.ampFactor());
    det["regions"] = regionsToJson(detector_.regions());
    if (detector_.differential()) {
        det["mode"] = Json("differential");
        det["neg_regions"] = regionsToJson(detector_.negRegions());
    }
    j["detector"] = std::move(det);
    return j;
}

DonnModel
DonnModel::fromJson(const Json &j)
{
    SystemSpec spec = SystemSpec::fromJson(j.at("spec"));
    Laser laser;
    const Json &lj = j.at("laser");
    laser.wavelength = lj.at("wavelength").asNumber();
    laser.profile = static_cast<BeamProfile>(lj.at("profile").asInt());
    laser.waist = lj.numberOr("waist", 0.0);
    laser.power_watts = lj.numberOr("power_watts", 5e-3);

    DonnModel model(spec, laser);
    for (const Json &layer_json : j.at("layers").asArray()) {
        const std::string &kind = layer_json.at("kind").asString();
        if (kind == "diffractive") {
            model.addLayer(DiffractiveLayer::fromJson(layer_json,
                                                      model.propagator_));
        } else if (kind == "codesign") {
            model.addLayer(CodesignLayer::fromJson(layer_json,
                                                   model.propagator_));
        } else if (kind == "layernorm") {
            model.addLayer(std::make_unique<LayerNormLayer>(
                layer_json.numberOr("eps", 1e-12),
                layer_json.has("subtract_mean") &&
                    layer_json.at("subtract_mean").asBool()));
        } else if (kind == "skip") {
            // Shortcut path spans the inner block's total optical path.
            std::size_t inner_depth =
                layer_json.at("inner").asArray().size();
            PropagatorConfig sc = model.propagator_->config();
            sc.distance *= static_cast<Real>(inner_depth);
            model.addLayer(OpticalSkipLayer::fromJson(
                layer_json, model.propagator_,
                std::make_shared<Propagator>(sc)));
        } else {
            throw JsonError("unknown layer kind: " + kind);
        }
    }

    if (j.has("detector")) {
        const Json &det = j.at("detector");
        std::vector<DetectorRegion> regions =
            regionsFromJson(det.at("regions"));
        const bool differential =
            det.has("mode") && det.at("mode").asString() == "differential";
        if (!regions.empty() && differential) {
            model.setDetector(DetectorPlane(
                std::move(regions), regionsFromJson(det.at("neg_regions")),
                det.numberOr("amp_factor", 1.0)));
        } else if (!regions.empty()) {
            model.setDetector(DetectorPlane(std::move(regions),
                                            det.numberOr("amp_factor", 1.0)));
        }
    }
    return model;
}

bool
DonnModel::save(const std::string &path) const
{
    Json j = toJson();
    addCheckpointHeader(j);
    return j.save(path);
}

DonnModel
DonnModel::load(const std::string &path)
{
    return fromJson(loadCheckpointJson(path));
}

ModelBuilder::ModelBuilder(SystemSpec spec, Laser laser)
    : model_(spec, laser)
{}

ModelBuilder &
ModelBuilder::diffractiveLayers(std::size_t d, Real gamma, Rng *rng)
{
    for (std::size_t i = 0; i < d; ++i)
        model_.addLayer(std::make_unique<DiffractiveLayer>(
            model_.hopPropagator(), gamma, rng));
    return *this;
}

ModelBuilder &
ModelBuilder::codesignLayers(std::size_t d, const DeviceLut &lut, Real tau,
                             Real gamma, Rng *rng)
{
    for (std::size_t i = 0; i < d; ++i)
        model_.addLayer(std::make_unique<CodesignLayer>(
            model_.hopPropagator(), lut, tau, gamma, rng));
    return *this;
}

ModelBuilder &
ModelBuilder::layerNorm()
{
    model_.addLayer(std::make_unique<LayerNormLayer>());
    return *this;
}

ModelBuilder &
ModelBuilder::detectorGrid(std::size_t num_classes, std::size_t det_size)
{
    model_.setDetector(DetectorPlane(
        DetectorPlane::gridLayout(model_.spec().size, num_classes, det_size)));
    has_detector_ = true;
    return *this;
}

ModelBuilder &
ModelBuilder::detectorRegions(std::vector<DetectorRegion> regions)
{
    model_.setDetector(DetectorPlane(std::move(regions)));
    has_detector_ = true;
    return *this;
}

DonnModel
ModelBuilder::build()
{
    if (!has_detector_)
        throw std::logic_error(
            "ModelBuilder::build: no detector configured; call "
            "detectorGrid() or detectorRegions() before build()");
    return std::move(model_);
}

} // namespace lightridge
