/**
 * @file
 * Hardware-aware diffractive layer (lr.layers.diffractlayer).
 *
 * Implements the physics-aware codesign algorithm of Section 3.2 / [30]:
 * each diffraction unit holds a categorical distribution over the K
 * *measured* modulation states of the target device (DeviceLut). Training
 * relaxes the discrete choice with Gumbel-softmax so gradients flow to the
 * logits ("quantization-aware training without quantization
 * approximations"); deployment takes the argmax state, which is exactly
 * realizable on hardware - eliminating the post-training calibration gap
 * the paper's Figure 1 quantifies.
 */
#pragma once

#include <memory>
#include <vector>

#include "core/device_lut.hpp"
#include "core/layer.hpp"
#include "optics/propagator.hpp"
#include "utils/sync.hpp"

namespace lightridge {

/** Gumbel-softmax quantization-aware diffractive layer. */
class CodesignLayer : public Layer
{
  public:
    /**
     * @param propagator shared pre-hop free-space operator
     * @param lut realizable device modulation states
     * @param tau Gumbel-softmax temperature (annealed by the trainer)
     * @param gamma amplitude regularization factor
     * @param rng source for Gumbel noise; nullptr disables sampling
     */
    CodesignLayer(std::shared_ptr<const Propagator> propagator,
                  DeviceLut lut, Real tau = 1.0, Real gamma = 1.0,
                  Rng *rng = nullptr);

    /** Copy shares the (immutable) published argmax-LUT table. */
    CodesignLayer(const CodesignLayer &other);

    std::string kind() const override { return "codesign"; }

    Field forward(const Field &in, bool training) override;
    Field backward(const Field &grad_out) override;
    Field infer(const Field &in) const override;
    void forwardInPlace(Field &u, bool training,
                        PropagationWorkspace &workspace) override;
    void backwardInPlace(Field &g, PropagationWorkspace &workspace) override;
    void inferInPlace(Field &u,
                      PropagationWorkspace &workspace) const override;
    void setPerturbation(const LayerPerturbation *perturbation) override
    {
        perturb_ = perturbation;
    }
    LayerPtr clone() const override;
    std::vector<ParamView> params() override;
    Json toJson() const override;

    /** Current Gumbel-softmax temperature. */
    Real tau() const { return tau_; }
    void setTau(Real tau) { tau_ = tau; }

    /** Rewire the Gumbel-noise source (per-replica rngs in parallel
     *  training). */
    void setRng(Rng *rng) { rng_ = rng; }

    /** Whether Gumbel sampling is enabled (a noise source is attached). */
    bool hasRng() const { return rng_ != nullptr; }

    Real gamma() const { return gamma_; }
    void setGamma(Real gamma) { gamma_ = gamma; }

    const DeviceLut &lut() const { return lut_; }

    const Propagator &propagator() const { return *propagator_; }

    /** Per-unit argmax device-level indices (the deployable weights). */
    std::vector<std::size_t> levelIndices() const;

    /**
     * Initialize logits so the argmax state approximates a target phase
     * mask (used to warm-start codesign from a raw-trained model).
     */
    void initFromPhase(const RealMap &phase, Real confidence = 4.0);

    /** Number of diffraction units per side. */
    std::size_t sideLength() const;

    static std::unique_ptr<CodesignLayer>
    fromJson(const Json &j, std::shared_ptr<const Propagator> propagator);

  private:
    /** Softmax over the K logits of unit i into out. */
    void unitSoftmax(std::size_t i, bool with_noise, Real *out);

    /** Immutable published argmax modulation + the logits it encodes. */
    struct InferModulation
    {
        Field table;               ///< lut.levels[argmax] per unit
        std::vector<Real> logits;  ///< snapshot the table was built from
    };

    /**
     * Thread-safe shared-instance argmax-LUT cache for the inference
     * path (the codesign counterpart of DiffractiveLayer's modulation
     * cache): the per-unit argmax device state is resolved once per
     * weight update instead of once per request per worker. Values are
     * exactly lut.levels[argmax], so inference stays bitwise-identical.
     */
    std::shared_ptr<const InferModulation> inferModulation() const
        LIGHTRIDGE_EXCLUDES(infer_cache_mutex_);

    /** Currently published table (no rebuild); for the copy constructor,
     *  which shares the immutable snapshot across instances. */
    std::shared_ptr<const InferModulation> publishedModulation() const
        LIGHTRIDGE_EXCLUDES(infer_cache_mutex_);

    std::shared_ptr<const Propagator> propagator_;
    DeviceLut lut_;
    Real tau_;
    Real gamma_;
    Rng *rng_;

    std::vector<Real> logits_;      // n*n*K
    std::vector<Real> logits_grad_; // n*n*K

    // Shared-instance inference cache (see inferModulation()).
    mutable Mutex infer_cache_mutex_;
    mutable std::shared_ptr<const InferModulation> infer_modulation_
        LIGHTRIDGE_GUARDED_BY(infer_cache_mutex_);

    // Training caches.
    std::vector<Real> cached_probs_; // n*n*K soft assignments
    Field cached_diffracted_;
    Field cached_modulation_; // per-unit soft modulation M_i

    // Attached misalignment realization (externally owned; see
    // Layer::setPerturbation). Clones start detached.
    const LayerPerturbation *perturb_ = nullptr;
};

} // namespace lightridge
