#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/skip.hpp"
#include "utils/log.hpp"
#include "utils/thread_pool.hpp"
#include "utils/timer.hpp"

namespace lightridge {

namespace {

/** Shuffled index order for one epoch. */
std::vector<std::size_t>
epochOrder(std::size_t n, bool shuffle, Rng *rng)
{
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (shuffle)
        std::shuffle(order.begin(), order.end(), rng->engine());
    return order;
}

/** Visit every layer of a model, descending into skip-block interiors. */
void
forEachLayer(DonnModel &model, const std::function<void(Layer *)> &fn)
{
    std::function<void(Layer *)> visit = [&](Layer *layer) {
        fn(layer);
        if (auto *s = dynamic_cast<OpticalSkipLayer *>(layer))
            for (std::size_t i = 0; i < s->innerDepth(); ++i)
                visit(s->innerLayer(i));
    };
    for (std::size_t i = 0; i < model.depth(); ++i)
        visit(model.layer(i));
}

/** Apply gamma to every diffractive/codesign layer of a model. */
void
applyGamma(DonnModel &model, Real gamma)
{
    forEachLayer(model, [gamma](Layer *layer) {
        if (auto *d = dynamic_cast<DiffractiveLayer *>(layer))
            d->setGamma(gamma);
        else if (auto *c = dynamic_cast<CodesignLayer *>(layer))
            c->setGamma(gamma);
    });
}

/** Set Gumbel-softmax temperature on every codesign layer. */
void
applyTau(DonnModel &model, Real tau)
{
    forEachLayer(model, [tau](Layer *layer) {
        if (auto *c = dynamic_cast<CodesignLayer *>(layer))
            c->setTau(tau);
    });
}

} // namespace

/**
 * One data-parallel training worker: a full model replica (parameters
 * copied, propagators shared) plus a private noise source so Gumbel
 * sampling never races across threads. Parameter views are cached because
 * the layer set of a replica is fixed.
 */
struct Trainer::Replica
{
    DonnModel model;
    Rng rng;
    std::vector<ParamView> params;

    Replica(const DonnModel &source, uint64_t seed)
        : model(source.clone()), rng(seed)
    {
        // clone() copies rng_ pointers as-is; point every noise-enabled
        // codesign layer (skip interiors included) at this replica's own
        // source instead, so replicas never share the trainer's
        // (non-thread-safe) rng. Noiseless layers stay noiseless,
        // matching the serial path exactly.
        forEachLayer(model, [this](Layer *layer) {
            if (auto *c = dynamic_cast<CodesignLayer *>(layer))
                if (c->hasRng())
                    c->setRng(&rng);
        });
        params = model.params();
    }
};

Trainer::Trainer(DonnModel &model, TrainConfig config)
    : model_(model), config_(config), optimizer_(config.lr),
      rng_(config.seed)
{
    optimizer_.attach(model_.params());
}

Trainer::~Trainer() = default;

void
Trainer::calibrate(const ClassDataset &data, std::size_t probe)
{
    if (config_.gamma > 0)
        applyGamma(model_, config_.gamma);

    probe = std::min(probe, data.size());
    if (probe == 0)
        return;
    Real mean_top = 0;
    model_.detector().setAmpFactor(1.0);
    for (std::size_t i = 0; i < probe; ++i) {
        Field input = model_.encode(data.images[i]);
        std::vector<Real> logits = model_.forwardLogits(input, false);
        mean_top += *std::max_element(logits.begin(), logits.end());
    }
    mean_top /= static_cast<Real>(probe);
    if (mean_top > 0)
        model_.detector().setAmpFactor(config_.calib_target / mean_top);
    calibrated_ = true;
    LR_LOG(Debug) << "calibrated amp_factor="
                  << model_.detector().ampFactor();
}

void
Trainer::annealTau(int epoch)
{
    if (config_.epochs <= 1) {
        applyTau(model_, config_.tau_end);
        return;
    }
    Real t = static_cast<Real>(epoch) / (config_.epochs - 1);
    applyTau(model_, config_.tau_start +
                         t * (config_.tau_end - config_.tau_start));
}

EpochStats
Trainer::trainEpoch(const ClassDataset &train)
{
    ++epoch_counter_;
    std::size_t workers = config_.workers;
    if (workers == 0)
        workers = std::max<std::size_t>(
            ThreadPool::global().workerCount(), 1);
    workers = std::min({workers, config_.batch, train.size()});
    if (workers >= 2)
        return trainEpochParallel(train, workers);
    return trainEpochSerial(train);
}

EpochStats
Trainer::trainEpochSerial(const ClassDataset &train)
{
    EpochStats stats;
    WallTimer timer;
    std::vector<std::size_t> order =
        epochOrder(train.size(), config_.shuffle, &rng_);

    std::size_t correct = 0;
    std::size_t in_batch = 0;
    model_.zeroGrad();
    for (std::size_t idx : order) {
        Field input = model_.encode(train.images[idx]);
        std::vector<Real> logits = model_.forwardLogits(input, true);
        LossResult loss =
            classificationLoss(config_.loss, logits, train.labels[idx]);
        stats.train_loss += loss.value;
        int pred = static_cast<int>(
            std::max_element(logits.begin(), logits.end()) - logits.begin());
        if (pred == train.labels[idx])
            ++correct;
        model_.backwardFromLogits(loss.dlogits);
        if (++in_batch == config_.batch) {
            optimizer_.step();
            model_.zeroGrad();
            in_batch = 0;
        }
    }
    if (in_batch > 0) {
        optimizer_.step();
        model_.zeroGrad();
    }
    stats.train_loss /= std::max<std::size_t>(train.size(), 1);
    stats.train_acc = static_cast<Real>(correct) /
                      std::max<std::size_t>(train.size(), 1);
    stats.seconds = timer.seconds();
    return stats;
}

void
Trainer::buildReplicas(std::size_t count)
{
    // Rebuilt every epoch: clones capture the current tau/gamma annealing
    // state and detector calibration, and per-epoch seeds keep Gumbel
    // noise streams deterministic for a fixed worker count.
    replicas_.clear();
    replicas_.reserve(count);
    for (std::size_t r = 0; r < count; ++r) {
        // Epoch and replica index occupy disjoint bit ranges so no two
        // (epoch, replica) pairs ever alias to the same noise stream.
        uint64_t tag = (static_cast<uint64_t>(epoch_counter_) << 32) |
                       static_cast<uint64_t>(r + 1);
        uint64_t seed = config_.seed ^ (0x9e3779b97f4a7c15ull * tag);
        replicas_.push_back(std::make_unique<Replica>(model_, seed));
    }
}

void
Trainer::syncReplicaParams()
{
    std::vector<ParamView> main_params = model_.params();
    for (auto &replica : replicas_) {
        for (std::size_t p = 0; p < main_params.size(); ++p)
            *replica->params[p].value = *main_params[p].value;
        replica->model.detector().setAmpFactor(model_.detector().ampFactor());
    }
}

EpochStats
Trainer::trainEpochParallel(const ClassDataset &train, std::size_t workers)
{
    EpochStats stats;
    WallTimer timer;
    std::vector<std::size_t> order =
        epochOrder(train.size(), config_.shuffle, &rng_);

    buildReplicas(workers); // clones carry the current params/calibration
    std::vector<ParamView> main_params = model_.params();
    ThreadPool &pool = ThreadPool::global();

    std::size_t correct = 0;
    std::vector<Real> loss_part(workers);
    std::vector<std::size_t> correct_part(workers);
    model_.zeroGrad();

    for (std::size_t start = 0; start < order.size();
         start += config_.batch) {
        const std::size_t batch =
            std::min(config_.batch, order.size() - start);
        const std::size_t active = std::min(workers, batch);

        std::fill(loss_part.begin(), loss_part.end(), Real(0));
        std::fill(correct_part.begin(), correct_part.end(), std::size_t{0});

        // Round-robin sample assignment: replica r trains samples
        // r, r+active, ... of the batch, sequentially (each layer caches
        // one sample's activations between forward and backward).
        pool.parallelFor(active, [&](std::size_t r) {
            Replica &rep = *replicas_[r];
            for (std::size_t j = r; j < batch; j += active) {
                const std::size_t idx = order[start + j];
                Field input = rep.model.encode(train.images[idx]);
                std::vector<Real> logits =
                    rep.model.forwardLogits(input, true);
                LossResult loss = classificationLoss(config_.loss, logits,
                                                     train.labels[idx]);
                loss_part[r] += loss.value;
                int pred = static_cast<int>(
                    std::max_element(logits.begin(), logits.end()) -
                    logits.begin());
                if (pred == train.labels[idx])
                    ++correct_part[r];
                rep.model.backwardFromLogits(loss.dlogits);
            }
        });

        // Merge replica gradients in fixed replica order (deterministic
        // for a given worker count), step, and redistribute parameters.
        for (std::size_t r = 0; r < active; ++r) {
            stats.train_loss += loss_part[r];
            correct += correct_part[r];
            for (std::size_t p = 0; p < main_params.size(); ++p) {
                const std::vector<Real> &src = *replicas_[r]->params[p].grad;
                std::vector<Real> &dst = *main_params[p].grad;
                for (std::size_t i = 0; i < dst.size(); ++i)
                    dst[i] += src[i];
            }
            replicas_[r]->model.zeroGrad();
        }
        optimizer_.step();
        model_.zeroGrad();
        syncReplicaParams();
    }

    stats.train_loss /= std::max<std::size_t>(train.size(), 1);
    stats.train_acc = static_cast<Real>(correct) /
                      std::max<std::size_t>(train.size(), 1);
    stats.seconds = timer.seconds();
    return stats;
}

std::vector<EpochStats>
Trainer::fit(const ClassDataset &train, const ClassDataset *test)
{
    if (config_.calibrate && !calibrated_)
        calibrate(train);
    std::vector<EpochStats> history;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        annealTau(epoch);
        EpochStats stats = trainEpoch(train);
        stats.epoch = epoch;
        if (test != nullptr)
            stats.test_acc = evaluateAccuracy(model_, *test);
        if (config_.verbose) {
            LR_LOG(Info) << "epoch " << epoch << " loss=" << stats.train_loss
                         << " train_acc=" << stats.train_acc
                         << " test_acc=" << stats.test_acc << " ("
                         << stats.seconds << "s)";
        }
        history.push_back(stats);
    }
    return history;
}

Real
evaluateAccuracy(DonnModel &model, const ClassDataset &data, Real noise_frac,
                 Rng *rng)
{
    return evaluateWithConfidence(model, data, noise_frac, rng).accuracy;
}

EvalResult
evaluateWithConfidence(DonnModel &model, const ClassDataset &data,
                       Real noise_frac, Rng *rng)
{
    EvalResult result;
    if (data.size() == 0)
        return result;
    const bool noisy = noise_frac > 0 && rng != nullptr;

    std::vector<std::uint8_t> hit(data.size(), 0);
    std::vector<Real> conf(data.size(), 0);
    auto evalOne = [&](std::size_t i) {
        Field u = model.inferField(model.encode(data.images[i]));
        std::vector<Real> logits =
            noisy ? model.detector().readoutNoisy(u, noise_frac, rng)
                  : model.detector().readout(u);
        int pred = static_cast<int>(
            std::max_element(logits.begin(), logits.end()) - logits.begin());
        hit[i] = pred == data.labels[i] ? 1 : 0;
        conf[i] = predictionConfidence(logits);
    };

    if (noisy) {
        // The shared rng makes noisy readout order-dependent; keep serial.
        for (std::size_t i = 0; i < data.size(); ++i)
            evalOne(i);
    } else {
        ThreadPool::global().parallelFor(data.size(), evalOne);
    }

    // Accumulate in index order so the result is independent of scheduling.
    std::size_t correct = 0;
    Real confidence = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        correct += hit[i];
        confidence += conf[i];
    }
    result.accuracy = static_cast<Real>(correct) / data.size();
    result.confidence = confidence / data.size();
    return result;
}

SegTrainer::SegTrainer(DonnModel &model, TrainConfig config)
    : model_(model), config_(config), optimizer_(config.lr),
      rng_(config.seed)
{
    optimizer_.attach(model_.params());
}

void
SegTrainer::calibrate(const SegDataset &data, std::size_t probe)
{
    probe = std::min(probe, data.size());
    if (probe == 0)
        return;
    Real mean_intensity = 0;
    Real mean_mask = 0;
    for (std::size_t i = 0; i < probe; ++i) {
        // Training-path statistics (LayerNorm active) so the loss scale
        // matches what the optimizer will actually see.
        Field u = model_.forwardField(model_.encode(data.images[i]), true);
        mean_intensity += u.intensity().mean();
        mean_mask += data.masks[i].mean();
    }
    mean_intensity /= static_cast<Real>(probe);
    mean_mask /= static_cast<Real>(probe);
    if (mean_mask > 0)
        mask_mean_ = mean_mask;
    // Aim the mean training-path intensity at the mask brightness.
    if (mean_intensity > 0)
        intensity_scale_ = mask_mean_ / mean_intensity;
    calibrated_ = true;
}

EpochStats
SegTrainer::trainEpoch(const SegDataset &train)
{
    EpochStats stats;
    WallTimer timer;
    std::vector<std::size_t> order =
        epochOrder(train.size(), config_.shuffle, &rng_);

    std::size_t in_batch = 0;
    model_.zeroGrad();
    for (std::size_t idx : order) {
        const Grid grid = model_.spec().grid();
        Field input = model_.encode(train.images[idx]);
        Field u = model_.forwardField(input, true);
        RealMap target = (train.masks[idx].rows() == grid.n)
                             ? train.masks[idx]
                             : resizeBilinear(train.masks[idx], grid.n,
                                              grid.n);
        FieldLossResult loss = intensityMseLoss(u, target, intensity_scale_);
        stats.train_loss += loss.value;
        model_.backwardField(loss.grad);
        if (++in_batch == config_.batch) {
            optimizer_.step();
            model_.zeroGrad();
            in_batch = 0;
        }
    }
    if (in_batch > 0) {
        optimizer_.step();
        model_.zeroGrad();
    }
    stats.train_loss /= std::max<std::size_t>(train.size(), 1);
    stats.seconds = timer.seconds();
    return stats;
}

std::vector<EpochStats>
SegTrainer::fit(const SegDataset &train, const SegDataset *test)
{
    if (config_.calibrate && !calibrated_)
        calibrate(train);
    std::vector<EpochStats> history;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        EpochStats stats = trainEpoch(train);
        stats.epoch = epoch;
        if (test != nullptr)
            stats.test_acc = evaluateIou(*test);
        if (config_.verbose) {
            LR_LOG(Info) << "seg epoch " << epoch << " loss="
                         << stats.train_loss << " iou=" << stats.test_acc
                         << " (" << stats.seconds << "s)";
        }
        history.push_back(stats);
    }
    return history;
}

RealMap
SegTrainer::predictMask(const RealMap &image)
{
    Field u = model_.forwardField(model_.encode(image), false);
    RealMap intensity = u.intensity();
    // Auto-exposure: match the mean prediction brightness to the
    // expected mask brightness (LayerNorm is training-only, so the raw
    // inference intensity scale is otherwise arbitrary).
    Real mean = intensity.mean();
    if (mean > 0)
        intensity *= mask_mean_ / mean;
    return intensity;
}

Real
SegTrainer::evaluateIou(const SegDataset &data, Real threshold)
{
    if (data.size() == 0)
        return 0;
    const Grid grid = model_.spec().grid();
    Real total = 0;
    std::vector<Real> sorted;
    for (std::size_t i = 0; i < data.size(); ++i) {
        RealMap pred = predictMask(data.images[i]);
        RealMap target = (data.masks[i].rows() == grid.n)
                             ? data.masks[i]
                             : resizeBilinear(data.masks[i], grid.n, grid.n);
        // Predictions are uncalibrated analog intensities; binarize at
        // the quantile matching the target's positive fraction so IoU
        // scores spatial agreement, not exposure.
        Real positive_frac =
            target.sum() / static_cast<Real>(target.size());
        sorted.assign(pred.raw().begin(), pred.raw().end());
        std::sort(sorted.begin(), sorted.end());
        std::size_t cut = static_cast<std::size_t>(
            std::min<Real>(sorted.size() - 1.0,
                           (1 - positive_frac) * sorted.size()));
        Real pred_threshold = sorted[cut];

        std::size_t inter = 0, uni = 0;
        for (std::size_t p = 0; p < pred.size(); ++p) {
            bool a = pred[p] >= pred_threshold;
            bool b = target[p] >= threshold;
            inter += (a && b) ? 1 : 0;
            uni += (a || b) ? 1 : 0;
        }
        total += uni == 0 ? 1.0 : static_cast<Real>(inter) / uni;
    }
    return total / data.size();
}

Real
SegTrainer::evaluateMse(const SegDataset &data)
{
    if (data.size() == 0)
        return 0;
    const Grid grid = model_.spec().grid();
    Real total = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        RealMap pred = predictMask(data.images[i]);
        RealMap target = (data.masks[i].rows() == grid.n)
                             ? data.masks[i]
                             : resizeBilinear(data.masks[i], grid.n, grid.n);
        Real err = 0;
        for (std::size_t p = 0; p < pred.size(); ++p) {
            Real d = pred[p] - target[p];
            err += d * d;
        }
        total += err / pred.size();
    }
    return total / data.size();
}

RgbTrainer::RgbTrainer(MultiChannelDonn &model, TrainConfig config)
    : model_(model), config_(config), optimizer_(config.lr),
      rng_(config.seed)
{
    optimizer_.attach(model_.params());
}

void
RgbTrainer::calibrate(const RgbDataset &data, std::size_t probe)
{
    probe = std::min(probe, data.size());
    if (probe == 0)
        return;
    Real mean_top = 0;
    for (std::size_t ch = 0; ch < model_.numChannels(); ++ch)
        model_.channel(ch).detector().setAmpFactor(1.0);
    for (std::size_t i = 0; i < probe; ++i) {
        std::vector<Real> logits =
            model_.forwardLogits(model_.encode(data.images[i]), false);
        mean_top += *std::max_element(logits.begin(), logits.end());
    }
    mean_top /= static_cast<Real>(probe);
    if (mean_top > 0) {
        Real amp = config_.calib_target / mean_top;
        for (std::size_t ch = 0; ch < model_.numChannels(); ++ch)
            model_.channel(ch).detector().setAmpFactor(amp);
    }
    calibrated_ = true;
}

EpochStats
RgbTrainer::trainEpoch(const RgbDataset &train)
{
    EpochStats stats;
    WallTimer timer;
    std::vector<std::size_t> order =
        epochOrder(train.size(), config_.shuffle, &rng_);

    std::size_t correct = 0;
    std::size_t in_batch = 0;
    model_.zeroGrad();
    for (std::size_t idx : order) {
        std::vector<Field> inputs = model_.encode(train.images[idx]);
        std::vector<Real> logits = model_.forwardLogits(inputs, true);
        LossResult loss =
            classificationLoss(config_.loss, logits, train.labels[idx]);
        stats.train_loss += loss.value;
        int pred = static_cast<int>(
            std::max_element(logits.begin(), logits.end()) - logits.begin());
        if (pred == train.labels[idx])
            ++correct;
        model_.backwardFromLogits(loss.dlogits);
        if (++in_batch == config_.batch) {
            optimizer_.step();
            model_.zeroGrad();
            in_batch = 0;
        }
    }
    if (in_batch > 0) {
        optimizer_.step();
        model_.zeroGrad();
    }
    stats.train_loss /= std::max<std::size_t>(train.size(), 1);
    stats.train_acc = static_cast<Real>(correct) /
                      std::max<std::size_t>(train.size(), 1);
    stats.seconds = timer.seconds();
    return stats;
}

std::vector<EpochStats>
RgbTrainer::fit(const RgbDataset &train, const RgbDataset *test)
{
    if (config_.calibrate && !calibrated_)
        calibrate(train);
    std::vector<EpochStats> history;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        EpochStats stats = trainEpoch(train);
        stats.epoch = epoch;
        if (test != nullptr)
            stats.test_acc = evaluateRgbAccuracy(model_, *test);
        if (config_.verbose) {
            LR_LOG(Info) << "rgb epoch " << epoch << " loss="
                         << stats.train_loss << " train_acc="
                         << stats.train_acc << " test_acc=" << stats.test_acc
                         << " (" << stats.seconds << "s)";
        }
        history.push_back(stats);
    }
    return history;
}

Real
evaluateRgbAccuracy(MultiChannelDonn &model, const RgbDataset &data)
{
    return evaluateRgbTopK(model, data, 1);
}

Real
evaluateRgbTopK(MultiChannelDonn &model, const RgbDataset &data,
                std::size_t k)
{
    if (data.size() == 0)
        return 0;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        std::vector<Real> logits =
            model.forwardLogits(model.encode(data.images[i]), false);
        if (topKContains(logits, data.labels[i], k))
            ++hits;
    }
    return static_cast<Real>(hits) / data.size();
}

} // namespace lightridge
