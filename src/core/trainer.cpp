#include "core/trainer.hpp"

namespace lightridge {

namespace {

/** Run a task's calibration with an explicit probe-size override. */
template <typename TaskT>
void
calibrateWithProbe(TaskT &task, TrainConfig config, std::size_t probe)
{
    config.calib_probe = probe;
    task.configure(config);
    task.calibrate();
    config.calib_probe = 0;
    task.configure(config);
}

} // namespace

// --------------------------------------------------------------------------
// Trainer shim
// --------------------------------------------------------------------------

Trainer::Trainer(DonnModel &model, TrainConfig config)
    : model_(model), config_(config)
{}

Trainer::~Trainer() = default;

Session &
Trainer::ensure(const ClassDataset &train, const ClassDataset *test)
{
    if (task_ != nullptr && bound_train_ == &train &&
        task_->trainSize() == train.size()) {
        task_->setTest(test);
        return *session_;
    }
    session_.reset();
    task_ = std::make_unique<ClassificationTask>(model_, train, test);
    session_ = std::make_unique<Session>(*task_, config_);
    bound_train_ = &train;
    if (calibrated_)
        session_->markCalibrated();
    return *session_;
}

void
Trainer::calibrate(const ClassDataset &data, std::size_t probe)
{
    if (probe == 0 || data.size() == 0) {
        // Legacy no-op path: gamma still applies, amp calibration does
        // not, and fit() will calibrate later.
        if (config_.gamma > 0)
            applyModelGamma(model_, config_.gamma);
        return;
    }
    Session &session = ensure(data, nullptr);
    calibrateWithProbe(*task_, config_, probe);
    calibrated_ = true;
    session.markCalibrated();
}

EpochStats
Trainer::trainEpoch(const ClassDataset &train)
{
    return ensure(train, nullptr).trainEpoch();
}

std::vector<EpochStats>
Trainer::fit(const ClassDataset &train, const ClassDataset *test)
{
    return ensure(train, test).fit();
}

// --------------------------------------------------------------------------
// SegTrainer shim
// --------------------------------------------------------------------------

SegTrainer::SegTrainer(DonnModel &model, TrainConfig config)
    : model_(model), config_(config)
{}

SegTrainer::~SegTrainer() = default;

Session &
SegTrainer::ensure(const SegDataset &train, const SegDataset *test)
{
    if (task_ != nullptr && bound_train_ == &train &&
        task_->trainSize() == train.size()) {
        task_->setTest(test);
        return *session_;
    }
    // Carry calibration state (intensity scale, mask brightness) across a
    // dataset rebind, like the legacy trainer's member state did.
    Real intensity_scale = 1.0, mask_mean = 0.25;
    bool carry = false;
    if (task_ != nullptr && calibrated_) {
        intensity_scale = task_->intensityScale();
        mask_mean = task_->maskMean();
        carry = true;
    }
    session_.reset();
    task_ = std::make_unique<SegmentationTask>(model_, train, test);
    session_ = std::make_unique<Session>(*task_, config_);
    bound_train_ = &train;
    if (carry)
        task_->setCalibration(intensity_scale, mask_mean);
    if (calibrated_)
        session_->markCalibrated();
    return *session_;
}

SegmentationTask &
SegTrainer::taskFor(const SegDataset &data)
{
    ensure(data, nullptr);
    return *task_;
}

void
SegTrainer::calibrate(const SegDataset &data, std::size_t probe)
{
    if (probe == 0 || data.size() == 0)
        return; // legacy no-op path
    Session &session = ensure(data, nullptr);
    calibrateWithProbe(*task_, config_, probe);
    calibrated_ = true;
    session.markCalibrated();
}

EpochStats
SegTrainer::trainEpoch(const SegDataset &train)
{
    return ensure(train, nullptr).trainEpoch();
}

std::vector<EpochStats>
SegTrainer::fit(const SegDataset &train, const SegDataset *test)
{
    return ensure(train, test).fit();
}

Real
SegTrainer::intensityScale() const
{
    return task_ != nullptr ? task_->intensityScale() : 1.0;
}

RealMap
SegTrainer::predictMask(const RealMap &image)
{
    static const SegDataset empty;
    return taskFor(bound_train_ != nullptr ? *bound_train_ : empty)
        .predictMask(image);
}

Real
SegTrainer::evaluateIou(const SegDataset &data, Real threshold)
{
    return taskFor(bound_train_ != nullptr ? *bound_train_ : data)
        .evaluateIou(data, threshold);
}

Real
SegTrainer::evaluateMse(const SegDataset &data)
{
    return taskFor(bound_train_ != nullptr ? *bound_train_ : data)
        .evaluateMse(data);
}

// --------------------------------------------------------------------------
// RgbTrainer shim
// --------------------------------------------------------------------------

RgbTrainer::RgbTrainer(MultiChannelDonn &model, TrainConfig config)
    : model_(model), config_(config)
{}

RgbTrainer::~RgbTrainer() = default;

Session &
RgbTrainer::ensure(const RgbDataset &train, const RgbDataset *test)
{
    if (task_ != nullptr && bound_train_ == &train &&
        task_->trainSize() == train.size()) {
        task_->setTest(test);
        return *session_;
    }
    session_.reset();
    task_ = std::make_unique<RgbTask>(model_, train, test);
    session_ = std::make_unique<Session>(*task_, config_);
    bound_train_ = &train;
    if (calibrated_)
        session_->markCalibrated();
    return *session_;
}

void
RgbTrainer::calibrate(const RgbDataset &data, std::size_t probe)
{
    if (probe == 0 || data.size() == 0)
        return; // legacy no-op path
    Session &session = ensure(data, nullptr);
    calibrateWithProbe(*task_, config_, probe);
    calibrated_ = true;
    session.markCalibrated();
}

EpochStats
RgbTrainer::trainEpoch(const RgbDataset &train)
{
    return ensure(train, nullptr).trainEpoch();
}

std::vector<EpochStats>
RgbTrainer::fit(const RgbDataset &train, const RgbDataset *test)
{
    return ensure(train, test).fit();
}

} // namespace lightridge
