/**
 * @file
 * Deprecated training front end (lr.train of the paper).
 *
 * Trainer, SegTrainer, and RgbTrainer were three copy-pasted recipes; the
 * engine now lives in Session driving a polymorphic Task
 * (core/session.hpp, core/task.hpp). These classes remain as thin
 * compatibility shims — each one binds the matching Task on first use and
 * delegates — so existing call sites keep compiling, but new code should
 * construct a Task and a Session directly:
 *
 *   ClassificationTask task(model, train, &test);
 *   Session session(task, config);
 *   auto history = session.fit();
 *
 * TrainConfig / EpochStats and the evaluate* helpers moved to
 * core/task.hpp (re-exported here).
 *
 * Shim limitation: each instance binds the training set passed to its
 * first fit()/trainEpoch()/calibrate() call, identified by address (and
 * size), and that dataset must outlive the shim. Passing a *different*
 * dataset object later starts a fresh Session (optimizer moments, epoch
 * counter, and shuffle stream restart); segmentation calibration state
 * is carried across such rebinds. Do not pass temporaries, and construct
 * a Task + Session per dataset when interleaving datasets.
 */
#pragma once

#include <memory>
#include <vector>

#include "core/session.hpp"
#include "core/task.hpp"

namespace lightridge {

/**
 * @deprecated Compatibility shim over ClassificationTask + Session.
 * Use those directly in new code.
 */
class Trainer
{
  public:
    Trainer(DonnModel &model, TrainConfig config);
    ~Trainer();

    /** Calibrate on a probe of the dataset (fit() does this once). */
    void calibrate(const ClassDataset &data, std::size_t probe = 16);

    /** One pass over the training set; returns loss/accuracy. */
    EpochStats trainEpoch(const ClassDataset &train);

    /** Full run; evaluates on test after each epoch when non-null. */
    std::vector<EpochStats> fit(const ClassDataset &train,
                                const ClassDataset *test = nullptr);

  private:
    Session &ensure(const ClassDataset &train, const ClassDataset *test);

    DonnModel &model_;
    TrainConfig config_;
    const ClassDataset *bound_train_ = nullptr;
    bool calibrated_ = false;
    std::unique_ptr<ClassificationTask> task_;
    std::unique_ptr<Session> session_;
};

/**
 * @deprecated Compatibility shim over SegmentationTask + Session.
 * Use those directly in new code.
 */
class SegTrainer
{
  public:
    SegTrainer(DonnModel &model, TrainConfig config);
    ~SegTrainer();

    /** Calibrate the intensity scale so outputs can reach mask range. */
    void calibrate(const SegDataset &data, std::size_t probe = 8);

    EpochStats trainEpoch(const SegDataset &train);
    std::vector<EpochStats> fit(const SegDataset &train,
                                const SegDataset *test = nullptr);

    /** Scale applied to |U|^2 before comparing against masks. */
    Real intensityScale() const;

    /** Predicted mask (auto-exposed detector-plane intensity). */
    RealMap predictMask(const RealMap &image);

    /** Mean IoU of thresholded predictions (Fig. 13 metric). */
    Real evaluateIou(const SegDataset &data, Real threshold = 0.5);

    /** Mean per-pixel MSE against the masks. */
    Real evaluateMse(const SegDataset &data);

  private:
    Session &ensure(const SegDataset &train, const SegDataset *test);
    SegmentationTask &taskFor(const SegDataset &data);

    DonnModel &model_;
    TrainConfig config_;
    const SegDataset *bound_train_ = nullptr;
    bool calibrated_ = false;
    std::unique_ptr<SegmentationTask> task_;
    std::unique_ptr<Session> session_;
};

/**
 * @deprecated Compatibility shim over RgbTask + Session.
 * Use those directly in new code.
 */
class RgbTrainer
{
  public:
    RgbTrainer(MultiChannelDonn &model, TrainConfig config);
    ~RgbTrainer();

    void calibrate(const RgbDataset &data, std::size_t probe = 8);

    EpochStats trainEpoch(const RgbDataset &train);
    std::vector<EpochStats> fit(const RgbDataset &train,
                                const RgbDataset *test = nullptr);

  private:
    Session &ensure(const RgbDataset &train, const RgbDataset *test);

    MultiChannelDonn &model_;
    TrainConfig config_;
    const RgbDataset *bound_train_ = nullptr;
    bool calibrated_ = false;
    std::unique_ptr<RgbTask> task_;
    std::unique_ptr<Session> session_;
};

} // namespace lightridge
