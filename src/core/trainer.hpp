/**
 * @file
 * Training loops and evaluation utilities (lr.train of the paper).
 *
 * Trainer drives classification training of a DonnModel; SegTrainer
 * drives image-to-image (segmentation) training; RgbTrainer drives the
 * multi-channel architecture. All three share the same recipe: per-sample
 * forward/backward with batch-accumulated gradients and an Adam step per
 * batch, plus the physics-aware calibration pass that implements the
 * paper's complex-valued regularization (Section 3.2): the detector
 * amplitude factor and per-layer gamma are set so logits land in a
 * numerically healthy softmax range regardless of system depth.
 */
#pragma once

#include <functional>
#include <vector>

#include "core/dataset.hpp"
#include "core/loss.hpp"
#include "core/model.hpp"
#include "core/multichannel.hpp"
#include "core/optimizer.hpp"

namespace lightridge {

/** Hyperparameters shared by all training loops. */
struct TrainConfig
{
    int epochs = 5;
    std::size_t batch = 32;
    Real lr = 0.01;
    LossKind loss = LossKind::SoftmaxMse;
    uint64_t seed = 7;
    bool shuffle = true;

    /**
     * Enable the physics-aware calibration (complex-valued regularization).
     * Disabled reproduces the [34]/[68] baseline training behaviour.
     */
    bool calibrate = true;

    /** Target mean top-logit after calibration. */
    Real calib_target = 4.0;

    /** Per-layer gamma; <= 0 keeps layer defaults. */
    Real gamma = 0.0;

    /** Gumbel-softmax temperature annealing (codesign layers only). */
    Real tau_start = 2.0;
    Real tau_end = 0.5;

    /**
     * Data-parallel workers per batch: independent samples of one batch
     * propagate concurrently on per-worker model replicas, and their
     * gradients are merged (in fixed replica order) before each optimizer
     * step. 0 sizes from the global thread pool; 1 forces the serial loop.
     *
     * Results are deterministic for a fixed worker count, but gradient
     * accumulation order (and per-replica noise streams) depend on it, so
     * runs on machines with different core counts diverge under the
     * default 0. Set workers explicitly (1 = the bit-reproducible serial
     * reference) when cross-machine reproducibility matters more than
     * throughput.
     */
    std::size_t workers = 0;

    /** Print per-epoch progress lines. */
    bool verbose = false;
};

/** Per-epoch training statistics. */
struct EpochStats
{
    int epoch = 0;
    Real train_loss = 0;
    Real train_acc = 0;
    Real test_acc = 0;
    double seconds = 0;
};

/** Classification trainer for a single-stack DONN. */
class Trainer
{
  public:
    Trainer(DonnModel &model, TrainConfig config);
    ~Trainer();

    /**
     * Calibrate detector amp_factor (and optionally per-layer gamma) on a
     * probe of the dataset. Called automatically by fit() when
     * config.calibrate is set.
     */
    void calibrate(const ClassDataset &data, std::size_t probe = 16);

    /**
     * One pass over the training set; returns loss/accuracy. Runs the
     * data-parallel batch pipeline when config.workers allows (see
     * TrainConfig::workers), otherwise the reference serial loop.
     */
    EpochStats trainEpoch(const ClassDataset &train);

    /** Full run; evaluates on test after each epoch when non-null. */
    std::vector<EpochStats> fit(const ClassDataset &train,
                                const ClassDataset *test = nullptr);

  private:
    struct Replica;

    void annealTau(int epoch);
    EpochStats trainEpochSerial(const ClassDataset &train);
    EpochStats trainEpochParallel(const ClassDataset &train,
                                  std::size_t workers);
    void buildReplicas(std::size_t count);
    void syncReplicaParams();

    DonnModel &model_;
    TrainConfig config_;
    Adam optimizer_;
    Rng rng_;
    bool calibrated_ = false;
    int epoch_counter_ = 0;
    std::vector<std::unique_ptr<Replica>> replicas_;
};

/** Accuracy of a model over a dataset (optionally with detector noise). */
Real evaluateAccuracy(DonnModel &model, const ClassDataset &data,
                      Real noise_frac = 0.0, Rng *rng = nullptr);

/** Accuracy and mean prediction confidence (Fig. 7). */
struct EvalResult
{
    Real accuracy = 0;
    Real confidence = 0;
};
EvalResult evaluateWithConfidence(DonnModel &model, const ClassDataset &data,
                                  Real noise_frac = 0.0, Rng *rng = nullptr);

/** Image-to-image trainer (all-optical segmentation, Section 5.6.2). */
class SegTrainer
{
  public:
    SegTrainer(DonnModel &model, TrainConfig config);

    /** Calibrate the intensity scale so outputs can reach mask range. */
    void calibrate(const SegDataset &data, std::size_t probe = 8);

    EpochStats trainEpoch(const SegDataset &train);
    std::vector<EpochStats> fit(const SegDataset &train,
                                const SegDataset *test = nullptr);

    /** Scale applied to |U|^2 before comparing against masks. */
    Real intensityScale() const { return intensity_scale_; }

    /**
     * Predicted mask: detector-plane intensity auto-exposed so its mean
     * matches the expected mask brightness (camera exposure control;
     * also bridges the training-only LayerNorm scale at inference).
     */
    RealMap predictMask(const RealMap &image);

    /**
     * Mean intersection-over-union of thresholded predictions, the
     * segmentation quality metric reported for Fig. 13.
     */
    Real evaluateIou(const SegDataset &data, Real threshold = 0.5);

    /** Mean per-pixel MSE against the masks. */
    Real evaluateMse(const SegDataset &data);

  private:
    DonnModel &model_;
    TrainConfig config_;
    Adam optimizer_;
    Rng rng_;
    Real intensity_scale_ = 1.0;
    Real mask_mean_ = 0.25; ///< expected mask brightness (auto-exposure)
    bool calibrated_ = false;
};

/** Multi-channel RGB classification trainer (Section 5.6.1). */
class RgbTrainer
{
  public:
    RgbTrainer(MultiChannelDonn &model, TrainConfig config);

    void calibrate(const RgbDataset &data, std::size_t probe = 8);

    EpochStats trainEpoch(const RgbDataset &train);
    std::vector<EpochStats> fit(const RgbDataset &train,
                                const RgbDataset *test = nullptr);

  private:
    MultiChannelDonn &model_;
    TrainConfig config_;
    Adam optimizer_;
    Rng rng_;
    bool calibrated_ = false;
};

/** Top-1 accuracy for an RGB model. */
Real evaluateRgbAccuracy(MultiChannelDonn &model, const RgbDataset &data);

/** Top-k accuracy for an RGB model (Table 5 reports top-1/3/5). */
Real evaluateRgbTopK(MultiChannelDonn &model, const RgbDataset &data,
                     std::size_t k);

} // namespace lightridge
