/**
 * @file
 * Optical skip connection (Section 5.6.2, Figure 13a).
 *
 * A beam splitter diverts a fraction of the light around a block of
 * diffractive layers; mirrors route it over the equivalent free-space
 * distance and a second splitter recombines the two paths. Inspired by
 * ResNet residual blocks, the less-diffracted shortcut restores features
 * of the original input, improving segmentation detail. Energy is
 * conserved across the splitters: alpha^2 + beta^2 = 1.
 */
#pragma once

#include <memory>
#include <vector>

#include "core/layer.hpp"
#include "optics/propagator.hpp"

namespace lightridge {

/** Residual-style optical block: out = alpha*branch(in) + beta*P(in). */
class OpticalSkipLayer : public Layer
{
  public:
    /**
     * @param inner the diffractive block the shortcut bypasses
     * @param shortcut free-space propagator over the bypass path (its
     *        distance should equal the block's total optical path)
     * @param alpha amplitude fraction through the block
     * @param beta amplitude fraction through the shortcut
     */
    OpticalSkipLayer(std::vector<LayerPtr> inner,
                     std::shared_ptr<const Propagator> shortcut,
                     Real alpha = 0.707106781186548,  // 50:50 splitter
                     Real beta = 0.707106781186548);

    std::string kind() const override { return "skip"; }

    Field forward(const Field &in, bool training) override;
    Field backward(const Field &grad_out) override;
    Field infer(const Field &in) const override;
    void forwardInPlace(Field &u, bool training,
                        PropagationWorkspace &workspace) override;
    void backwardInPlace(Field &g, PropagationWorkspace &workspace) override;
    void inferInPlace(Field &u,
                      PropagationWorkspace &workspace) const override;
    LayerPtr clone() const override;
    std::vector<ParamView> params() override;
    Json toJson() const override;

    std::size_t innerDepth() const { return inner_.size(); }
    Layer *innerLayer(std::size_t i) { return inner_[i].get(); }

    static std::unique_ptr<OpticalSkipLayer>
    fromJson(const Json &j, std::shared_ptr<const Propagator> hop,
             std::shared_ptr<const Propagator> shortcut);

  private:
    std::vector<LayerPtr> inner_;
    std::shared_ptr<const Propagator> shortcut_;
    Real alpha_;
    Real beta_;
};

} // namespace lightridge
