#include "core/layer_norm.hpp"

#include <cmath>

namespace lightridge {

Field
LayerNormLayer::forward(const Field &in, bool training)
{
    if (!training) {
        active_ = false;
        return in;
    }
    const std::size_t n = in.size();
    Complex mean{0, 0};
    if (subtract_mean_) {
        for (std::size_t i = 0; i < n; ++i)
            mean += in[i];
        mean /= static_cast<Real>(n);
    }

    Real var = 0;
    for (std::size_t i = 0; i < n; ++i)
        var += std::norm(in[i] - mean);
    var /= static_cast<Real>(n);

    cached_sigma_ = std::sqrt(var + eps_);
    Field out(in.rows(), in.cols());
    for (std::size_t i = 0; i < n; ++i)
        out[i] = (in[i] - mean) / cached_sigma_;
    cached_y_ = out;
    active_ = true;
    return out;
}

Field
LayerNormLayer::backward(const Field &grad_out)
{
    if (!active_)
        return grad_out;
    // Wirtinger adjoint. Mean-subtracting mode (y = (x - mu)/sigma):
    //   G_x = (1/sigma) * (G_y - S/N - rho * y / N),
    // RMS mode (y = x/sigma, sigma^2 = mean|x|^2):
    //   G_x = (1/sigma) * (G_y - rho * y / N),
    // with S = sum(G_y) and rho = Re(sum conj(G_y) * y).
    const std::size_t n = grad_out.size();
    Complex s{0, 0};
    Real rho = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (subtract_mean_)
            s += grad_out[i];
        rho += std::real(std::conj(grad_out[i]) * cached_y_[i]);
    }
    const Real inv_n = Real(1) / static_cast<Real>(n);
    Field grad_in(grad_out.rows(), grad_out.cols());
    for (std::size_t i = 0; i < n; ++i)
        grad_in[i] = (grad_out[i] - s * inv_n -
                      rho * cached_y_[i] * inv_n) /
                     cached_sigma_;
    return grad_in;
}

Json
LayerNormLayer::toJson() const
{
    Json j;
    j["kind"] = Json(kind());
    j["eps"] = Json(eps_);
    j["subtract_mean"] = Json(subtract_mean_);
    return j;
}

} // namespace lightridge
