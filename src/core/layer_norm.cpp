#include "core/layer_norm.hpp"

#include <cmath>

namespace lightridge {

Field
LayerNormLayer::forward(const Field &in, bool training)
{
    Field u = in;
    forwardInPlace(u, training, PropagationWorkspace::threadLocal());
    return u;
}

void
LayerNormLayer::forwardInPlace(Field &u, bool training,
                               PropagationWorkspace &)
{
    if (!training) {
        active_ = false;
        return;
    }
    const std::size_t n = u.size();
    Complex mean{0, 0};
    if (subtract_mean_) {
        for (std::size_t i = 0; i < n; ++i)
            mean += u[i];
        mean /= static_cast<Real>(n);
    }

    Real var = 0;
    for (std::size_t i = 0; i < n; ++i)
        var += std::norm(u[i] - mean);
    var /= static_cast<Real>(n);

    cached_sigma_ = std::sqrt(var + eps_);
    ensureFieldShape(cached_y_, u.rows(), u.cols());
    for (std::size_t i = 0; i < n; ++i) {
        Complex y = (u[i] - mean) / cached_sigma_;
        cached_y_[i] = y;
        u[i] = y;
    }
    active_ = true;
}

Field
LayerNormLayer::backward(const Field &grad_out)
{
    Field g = grad_out;
    backwardInPlace(g, PropagationWorkspace::threadLocal());
    return g;
}

void
LayerNormLayer::backwardInPlace(Field &g, PropagationWorkspace &)
{
    if (!active_)
        return;
    // Wirtinger adjoint. Mean-subtracting mode (y = (x - mu)/sigma):
    //   G_x = (1/sigma) * (G_y - S/N - rho * y / N),
    // RMS mode (y = x/sigma, sigma^2 = mean|x|^2):
    //   G_x = (1/sigma) * (G_y - rho * y / N),
    // with S = sum(G_y) and rho = Re(sum conj(G_y) * y).
    const std::size_t n = g.size();
    Complex s{0, 0};
    Real rho = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (subtract_mean_)
            s += g[i];
        rho += std::real(std::conj(g[i]) * cached_y_[i]);
    }
    const Real inv_n = Real(1) / static_cast<Real>(n);
    for (std::size_t i = 0; i < n; ++i)
        g[i] = (g[i] - s * inv_n - rho * cached_y_[i] * inv_n) /
               cached_sigma_;
}

Json
LayerNormLayer::toJson() const
{
    Json j;
    j["kind"] = Json(kind());
    j["eps"] = Json(eps_);
    j["subtract_mean"] = Json(subtract_mean_);
    return j;
}

} // namespace lightridge
