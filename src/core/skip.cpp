#include "core/skip.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/codesign_layer.hpp"
#include "core/diffractive_layer.hpp"

namespace lightridge {

OpticalSkipLayer::OpticalSkipLayer(std::vector<LayerPtr> inner,
                                   std::shared_ptr<const Propagator> shortcut,
                                   Real alpha, Real beta)
    : inner_(std::move(inner)), shortcut_(std::move(shortcut)),
      alpha_(alpha), beta_(beta)
{
    if (inner_.empty())
        throw std::invalid_argument("OpticalSkipLayer: empty block");
}

Field
OpticalSkipLayer::forward(const Field &in, bool training)
{
    Field u = in;
    forwardInPlace(u, training, PropagationWorkspace::threadLocal());
    return u;
}

Field
OpticalSkipLayer::infer(const Field &in) const
{
    Field u = in;
    inferInPlace(u, PropagationWorkspace::threadLocal());
    return u;
}

void
OpticalSkipLayer::forwardInPlace(Field &u, bool training,
                                 PropagationWorkspace &workspace)
{
    // The shortcut needs the block input after the branch has overwritten
    // u, so it is staged in a leased buffer held across the inner layers'
    // own workspace use (the arena supports nested leases).
    WorkspaceField shortcut(workspace, u.rows(), u.cols());
    std::copy(u.data(), u.data() + u.size(), shortcut->data());
    for (LayerPtr &layer : inner_)
        layer->forwardInPlace(u, training, workspace);
    shortcut_->forwardInto(shortcut.get(), shortcut.get(), workspace);

    for (std::size_t i = 0; i < u.size(); ++i)
        u[i] = alpha_ * u[i] + beta_ * shortcut.get()[i];
}

void
OpticalSkipLayer::inferInPlace(Field &u,
                               PropagationWorkspace &workspace) const
{
    WorkspaceField shortcut(workspace, u.rows(), u.cols());
    std::copy(u.data(), u.data() + u.size(), shortcut->data());
    for (const LayerPtr &layer : inner_)
        layer->inferInPlace(u, workspace);
    shortcut_->forwardInto(shortcut.get(), shortcut.get(), workspace);

    for (std::size_t i = 0; i < u.size(); ++i)
        u[i] = alpha_ * u[i] + beta_ * shortcut.get()[i];
}

LayerPtr
OpticalSkipLayer::clone() const
{
    std::vector<LayerPtr> inner;
    inner.reserve(inner_.size());
    for (const LayerPtr &layer : inner_)
        inner.push_back(layer->clone());
    return std::make_unique<OpticalSkipLayer>(std::move(inner), shortcut_,
                                              alpha_, beta_);
}

Field
OpticalSkipLayer::backward(const Field &grad_out)
{
    Field g = grad_out;
    backwardInPlace(g, PropagationWorkspace::threadLocal());
    return g;
}

void
OpticalSkipLayer::backwardInPlace(Field &g, PropagationWorkspace &workspace)
{
    // Stage the shortcut gradient before the branch unwind overwrites g.
    WorkspaceField g_short(workspace, g.rows(), g.cols());
    std::copy(g.data(), g.data() + g.size(), g_short->data());

    // Branch path: scale by alpha, then unwind the inner block.
    g *= alpha_;
    for (auto it = inner_.rbegin(); it != inner_.rend(); ++it)
        (*it)->backwardInPlace(g, workspace);

    // Shortcut path: adjoint of the bypass propagator.
    g_short.get() *= beta_;
    shortcut_->adjointInto(g_short.get(), g_short.get(), workspace);

    g += g_short.get();
}

std::vector<ParamView>
OpticalSkipLayer::params()
{
    std::vector<ParamView> all;
    for (LayerPtr &layer : inner_)
        for (ParamView p : layer->params())
            all.push_back(p);
    return all;
}

Json
OpticalSkipLayer::toJson() const
{
    Json j;
    j["kind"] = Json(kind());
    j["alpha"] = Json(alpha_);
    j["beta"] = Json(beta_);
    Json inner;
    for (const LayerPtr &layer : inner_)
        inner.push(layer->toJson());
    j["inner"] = std::move(inner);
    return j;
}

std::unique_ptr<OpticalSkipLayer>
OpticalSkipLayer::fromJson(const Json &j,
                           std::shared_ptr<const Propagator> hop,
                           std::shared_ptr<const Propagator> shortcut)
{
    std::vector<LayerPtr> inner;
    for (const Json &layer_json : j.at("inner").asArray()) {
        const std::string &kind = layer_json.at("kind").asString();
        if (kind == "diffractive")
            inner.push_back(DiffractiveLayer::fromJson(layer_json, hop));
        else if (kind == "codesign")
            inner.push_back(CodesignLayer::fromJson(layer_json, hop));
        else
            throw JsonError("skip: unsupported inner layer " + kind);
    }
    return std::make_unique<OpticalSkipLayer>(
        std::move(inner), std::move(shortcut), j.numberOr("alpha", 1.0),
        j.numberOr("beta", 0.0));
}

} // namespace lightridge
