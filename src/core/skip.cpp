#include "core/skip.hpp"

#include <stdexcept>

#include "core/codesign_layer.hpp"
#include "core/diffractive_layer.hpp"

namespace lightridge {

OpticalSkipLayer::OpticalSkipLayer(std::vector<LayerPtr> inner,
                                   std::shared_ptr<const Propagator> shortcut,
                                   Real alpha, Real beta)
    : inner_(std::move(inner)), shortcut_(std::move(shortcut)),
      alpha_(alpha), beta_(beta)
{
    if (inner_.empty())
        throw std::invalid_argument("OpticalSkipLayer: empty block");
}

Field
OpticalSkipLayer::forward(const Field &in, bool training)
{
    Field branch = in;
    for (LayerPtr &layer : inner_)
        branch = layer->forward(branch, training);
    Field shortcut = shortcut_->forward(in);

    Field out(branch.rows(), branch.cols());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = alpha_ * branch[i] + beta_ * shortcut[i];
    return out;
}

Field
OpticalSkipLayer::infer(const Field &in) const
{
    Field branch = in;
    for (const LayerPtr &layer : inner_)
        branch = layer->infer(branch);
    Field shortcut = shortcut_->forward(in);

    Field out(branch.rows(), branch.cols());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = alpha_ * branch[i] + beta_ * shortcut[i];
    return out;
}

LayerPtr
OpticalSkipLayer::clone() const
{
    std::vector<LayerPtr> inner;
    inner.reserve(inner_.size());
    for (const LayerPtr &layer : inner_)
        inner.push_back(layer->clone());
    return std::make_unique<OpticalSkipLayer>(std::move(inner), shortcut_,
                                              alpha_, beta_);
}

Field
OpticalSkipLayer::backward(const Field &grad_out)
{
    // Branch path: scale by alpha, then unwind the inner block.
    Field g_branch = grad_out;
    g_branch *= alpha_;
    for (auto it = inner_.rbegin(); it != inner_.rend(); ++it)
        g_branch = (*it)->backward(g_branch);

    // Shortcut path: adjoint of the bypass propagator.
    Field g_short = grad_out;
    g_short *= beta_;
    g_short = shortcut_->adjoint(g_short);

    g_branch += g_short;
    return g_branch;
}

std::vector<ParamView>
OpticalSkipLayer::params()
{
    std::vector<ParamView> all;
    for (LayerPtr &layer : inner_)
        for (ParamView p : layer->params())
            all.push_back(p);
    return all;
}

Json
OpticalSkipLayer::toJson() const
{
    Json j;
    j["kind"] = Json(kind());
    j["alpha"] = Json(alpha_);
    j["beta"] = Json(beta_);
    Json inner;
    for (const LayerPtr &layer : inner_)
        inner.push(layer->toJson());
    j["inner"] = std::move(inner);
    return j;
}

std::unique_ptr<OpticalSkipLayer>
OpticalSkipLayer::fromJson(const Json &j,
                           std::shared_ptr<const Propagator> hop,
                           std::shared_ptr<const Propagator> shortcut)
{
    std::vector<LayerPtr> inner;
    for (const Json &layer_json : j.at("inner").asArray()) {
        const std::string &kind = layer_json.at("kind").asString();
        if (kind == "diffractive")
            inner.push_back(DiffractiveLayer::fromJson(layer_json, hop));
        else if (kind == "codesign")
            inner.push_back(CodesignLayer::fromJson(layer_json, hop));
        else
            throw JsonError("skip: unsupported inner layer " + kind);
    }
    return std::make_unique<OpticalSkipLayer>(
        std::move(inner), std::move(shortcut), j.numberOr("alpha", 1.0),
        j.numberOr("beta", 0.0));
}

} // namespace lightridge
