/**
 * @file
 * Task abstraction for the unified training front end (lr.train).
 *
 * A Task binds one workload — model, training data, loss, and metrics —
 * behind a polymorphic interface the Session engine can drive without
 * knowing whether it is classifying digits on a single stack, mapping
 * street scenes to masks, or training the three-channel RGB architecture.
 * Tasks also own the data-parallel replica machinery (cloned models with
 * private noise streams) so every workload gets the batched training
 * pipeline, not just classification.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "core/loss.hpp"
#include "core/model.hpp"
#include "core/multichannel.hpp"
#include "data/source.hpp"
#include "optics/perturbation.hpp"

namespace lightridge {

/** Hyperparameters shared by all training loops. */
struct TrainConfig
{
    int epochs = 5;
    std::size_t batch = 32;
    Real lr = 0.01;
    LossKind loss = LossKind::SoftmaxMse;
    uint64_t seed = 7;
    bool shuffle = true;

    /**
     * Enable the physics-aware calibration (complex-valued regularization).
     * Disabled reproduces the [34]/[68] baseline training behaviour.
     */
    bool calibrate = true;

    /** Target mean top-logit after calibration. */
    Real calib_target = 4.0;

    /** Calibration probe size; 0 keeps the task default (16 / 8). */
    std::size_t calib_probe = 0;

    /** Per-layer gamma; <= 0 keeps layer defaults. */
    Real gamma = 0.0;

    /** Gumbel-softmax temperature annealing (codesign layers only). */
    Real tau_start = 2.0;
    Real tau_end = 0.5;

    /**
     * Data-parallel workers per batch: independent samples of one batch
     * propagate concurrently on per-worker model replicas, and their
     * gradients are merged (in fixed replica order) before each optimizer
     * step. 0 sizes from the global thread pool; 1 forces the serial loop.
     *
     * Results are deterministic for a fixed worker count, but gradient
     * accumulation order (and per-replica noise streams) depend on it, so
     * runs on machines with different core counts diverge under the
     * default 0. Set workers explicitly (1 = the bit-reproducible serial
     * reference) when cross-machine reproducibility matters more than
     * throughput.
     */
    std::size_t workers = 0;

    /**
     * Overlap the main thread's gradient merge + Adam step for batch t
     * with the replica pool's forward/backward passes for batch t+1
     * (software pipelining of the data-parallel engine). Replicas then
     * compute batch t+1 against parameters that are one optimizer step
     * stale — standard one-step-delayed data parallelism, so pipelined
     * losses are NOT bitwise-equal to the synchronous schedule (they
     * converge equivalently; see tests/test_session.cpp). Results remain
     * deterministic for a fixed worker count, independent of machine and
     * thread timing. Off by default: pipeline=false keeps today's fully
     * synchronous, bitwise-reproducible behaviour. Requires workers >= 2
     * to have any effect.
     */
    bool pipeline = false;

    /**
     * Evaluate on the dev (test) set every N batches inside an epoch, on
     * top of the end-of-epoch evaluation. Mid-epoch stats flow through
     * the same epoch-callback machinery tagged mid_epoch (their return
     * value does not stop training; only end-of-epoch callbacks do). 0
     * (the default) disables the cadence and is bitwise identical to not
     * having the feature: evaluation allocates no training state and the
     * optimizer path is untouched.
     */
    std::size_t dev_eval_every_batches = 0;

    /** Print per-epoch progress lines. */
    bool verbose = false;
};

/** Per-epoch training statistics. */
struct EpochStats
{
    int epoch = 0;
    Real train_loss = 0;
    Real train_acc = 0;
    Real test_acc = 0;  ///< primary test metric (top-1 accuracy or IoU)
    Real test_top3 = 0; ///< top-3 accuracy (classification tasks only)
    double seconds = 0;

    /**
     * True for a dev-eval snapshot taken mid-epoch (see
     * TrainConfig::dev_eval_every_batches); `batch` is then the number of
     * batches consumed when the snapshot was taken, and the train
     * loss/accuracy cover only the batches seen so far this epoch.
     */
    bool mid_epoch = false;
    std::size_t batch = 0;
};

/** Outcome of one training sample's forward/backward pass. */
struct SampleResult
{
    Real loss = 0;
    bool hit = false; ///< top-1 correct (classification-style tasks)
};

/** Reduced test-set metrics of a task. */
struct TaskMetrics
{
    Real primary = 0; ///< top-1 accuracy or mean IoU
    Real top3 = 0;    ///< top-3 accuracy (classification-style tasks)
};

/**
 * One training/evaluation workload the Session engine can drive.
 *
 * The contract mirrors the shared trainer recipe: the Session shuffles
 * sample indices, asks the task to run forward/backward per sample
 * (accumulating parameter gradients), steps its optimizer over params(),
 * and reduces test metrics through evaluate(). For the data-parallel
 * path the task materializes N independent replicas; replica gradients
 * are merged into the primary model in fixed order.
 */
class Task
{
  public:
    virtual ~Task();

    /** Stable task-kind tag ("classification", "segmentation", "rgb"). */
    virtual std::string kind() const = 0;

    /** Number of training samples. */
    virtual std::size_t trainSize() const = 0;

    /**
     * The training-data source behind this task. The Session drives its
     * epoch/staging lifecycle (two-level shuffle layout, batch staging,
     * prefetch) on the main thread between batches; in-memory sources
     * make every lifecycle call a no-op, so tasks over synthesized
     * datasets train exactly as before. A null stream (the default for
     * task stubs) trains over the flat index order with no staging.
     */
    virtual DataSource *trainStream() { return nullptr; }

    /** True when a held-out test set is bound. */
    virtual bool hasTest() const = 0;

    /** Stash the hyperparameters (called once by the Session). */
    void configure(const TrainConfig &config) { config_ = config; }
    const TrainConfig &config() const { return config_; }

    /** Physics-aware calibration pass over a probe of the data. */
    virtual void calibrate() = 0;

    /** Trainable parameters of the primary model. */
    virtual std::vector<ParamView> params() = 0;

    /** Zero the primary model's parameter gradients. */
    virtual void zeroGrad() = 0;

    /** Forward/backward one training sample on the primary model. */
    virtual SampleResult trainSample(std::size_t index) = 0;

    /** Build per-worker model replicas (one seed per replica). */
    virtual void buildReplicas(const std::vector<uint64_t> &seeds) = 0;

    /** Number of live replicas. */
    virtual std::size_t replicaCount() const = 0;

    /** Parameter views of replica r (cached, stable per epoch). */
    virtual std::vector<ParamView> replicaParams(std::size_t r) = 0;

    /** Zero replica r's parameter gradients. */
    virtual void zeroReplicaGrad(std::size_t r) = 0;

    /** Forward/backward one training sample on replica r. */
    virtual SampleResult trainSampleOn(std::size_t r, std::size_t index) = 0;

    /** Push primary parameters (and calibration state) to every replica. */
    virtual void syncReplicas() = 0;

    /** Gumbel-softmax temperature annealing hook (codesign layers). */
    virtual void setTau(Real tau) = 0;

    /**
     * True when a misalignment spec with at least one active error axis
     * is bound (vaccinated training). The Session then draws one
     * realization per batch through samplePerturbation().
     */
    virtual bool perturbationActive() const { return false; }

    /**
     * Draw the per-batch misalignment realization from the given seed
     * and attach it to the primary model and every live replica. The
     * seed is a pure function of (train seed, epoch, batch index), so
     * the drawn error sequence is identical at any worker count.
     * No-op on tasks without a bound spec.
     */
    virtual void samplePerturbation(uint64_t draw_seed)
    {
        (void)draw_seed;
    }

    /** Detach perturbations everywhere (evaluation runs clean). */
    virtual void clearPerturbation() {}

    /** Test metrics; zeros when !hasTest(). */
    virtual TaskMetrics evaluate() = 0;

    /** Checkpoint the primary model (epoch-callback checkpointing). */
    virtual bool save(const std::string &path) const = 0;

  protected:
    TrainConfig config_;
};

/** Visit every layer of a model, descending into skip-block interiors. */
void forEachModelLayer(DonnModel &model,
                       const std::function<void(Layer *)> &fn);

/** Apply gamma to every diffractive/codesign layer of a model. */
void applyModelGamma(DonnModel &model, Real gamma);

/** Set Gumbel-softmax temperature on every codesign layer of a model. */
void applyModelTau(DonnModel &model, Real tau);

/** Re-point every noise-enabled codesign layer at the given rng. */
void bindModelNoiseRng(DonnModel &model, Rng *rng);

/**
 * Hop propagators feeding each top-level layer of a model (nullptr for
 * non-optical slots, e.g. layer norms and skip blocks, which take no
 * perturbation): the layer-slot geometry a PerturbationSampler is built
 * from. The final layer->detector hop is model.hopPropagator().
 */
std::vector<const Propagator *> modelLayerHops(const DonnModel &model);

/**
 * Shared replica machinery for tasks whose primary model is a DonnModel
 * (classification, segmentation). Derived tasks implement sampleStep()
 * against whichever model instance (primary or replica) the Session
 * schedules.
 */
class DonnTaskBase : public Task
{
  public:
    DonnModel &model() { return model_; }

    std::vector<ParamView> params() override { return model_.params(); }
    void zeroGrad() override { model_.zeroGrad(); }
    SampleResult trainSample(std::size_t index) override
    {
        return sampleStep(model_, index);
    }

    void buildReplicas(const std::vector<uint64_t> &seeds) override;
    std::size_t replicaCount() const override { return replicas_.size(); }
    std::vector<ParamView> replicaParams(std::size_t r) override;
    void zeroReplicaGrad(std::size_t r) override;
    SampleResult trainSampleOn(std::size_t r, std::size_t index) override;
    void syncReplicas() override;

    void setTau(Real tau) override { applyModelTau(model_, tau); }
    bool save(const std::string &path) const override
    {
        return model_.save(path);
    }

    /**
     * Bind a misalignment spec for vaccinated training: builds the
     * per-batch sampler from the model's hop geometry. A spec with no
     * active axis unbinds (training reverts to the exact unperturbed
     * path). Throws for Fraunhofer systems.
     */
    void setPerturbationSpec(const PerturbationSpec &spec);

    bool perturbationActive() const override
    {
        return perturb_sampler_ != nullptr;
    }
    void samplePerturbation(uint64_t draw_seed) override;
    void clearPerturbation() override;

    /** Realization currently attached (nullptr when clean); tests. */
    const PerturbationRealization *currentPerturbation() const
    {
        return model_.perturbation();
    }

  protected:
    explicit DonnTaskBase(DonnModel &model) : model_(model) {}

    /** Forward/backward one sample against the given model instance. */
    virtual SampleResult sampleStep(DonnModel &model, std::size_t index) = 0;

    /**
     * One data-parallel training worker: a full model replica (parameters
     * copied, propagators shared) plus a private noise source so Gumbel
     * sampling never races across threads. Parameter views are cached
     * because the layer set of a replica is fixed.
     */
    struct Replica
    {
        DonnModel model;
        Rng rng;
        std::vector<ParamView> params;

        Replica(const DonnModel &source, uint64_t seed);
    };

    DonnModel &model_;
    std::vector<std::unique_ptr<Replica>> replicas_;

    /**
     * Vaccination state: the sampler (null = no spec bound) and the one
     * shared realization storage every batch draw overwrites. Replicas
     * attach to the same storage — it is read-only during compute and
     * the Session only redraws between batches, when no worker is in
     * flight.
     */
    std::unique_ptr<PerturbationSampler> perturb_sampler_;
    PerturbationRealization perturb_realization_;
};

/** Single-stack image classification workload (the paper's main task). */
class ClassificationTask : public DonnTaskBase
{
  public:
    /** Train from an in-memory dataset (borrowed; wrapped in a source). */
    ClassificationTask(DonnModel &model, const ClassDataset &train,
                       const ClassDataset *test = nullptr);

    /** Train from any classification source (borrowed; e.g. sharded). */
    ClassificationTask(DonnModel &model, ClassSource &train,
                       const ClassDataset *test = nullptr);

    std::string kind() const override { return "classification"; }
    std::size_t trainSize() const override { return source_->size(); }
    DataSource *trainStream() override { return source_; }
    bool hasTest() const override { return test_ != nullptr; }

    /**
     * Calibrate detector amp_factor (and optionally per-layer gamma) on a
     * probe of the training set so logits land in a numerically healthy
     * softmax range regardless of system depth (Section 3.2).
     */
    void calibrate() override;

    /** Top-1 and top-3 accuracy over the bound test set. */
    TaskMetrics evaluate() override;

    /** Re-bind (or clear) the held-out test set. */
    void setTest(const ClassDataset *test) { test_ = test; }

  protected:
    SampleResult sampleStep(DonnModel &model, std::size_t index) override;

  private:
    std::unique_ptr<InMemoryClassSource> own_source_; ///< legacy ctor only
    ClassSource *source_;
    const ClassDataset *test_;
};

/** Image-to-image workload (all-optical segmentation, Section 5.6.2). */
class SegmentationTask : public DonnTaskBase
{
  public:
    /** Train from an in-memory dataset (borrowed; wrapped in a source). */
    SegmentationTask(DonnModel &model, const SegDataset &train,
                     const SegDataset *test = nullptr);

    /** Train from any segmentation source (borrowed; e.g. sharded). */
    SegmentationTask(DonnModel &model, SegSource &train,
                     const SegDataset *test = nullptr);

    std::string kind() const override { return "segmentation"; }
    std::size_t trainSize() const override { return source_->size(); }
    DataSource *trainStream() override { return source_; }
    bool hasTest() const override { return test_ != nullptr; }

    /** Calibrate the intensity scale so outputs can reach mask range. */
    void calibrate() override;

    /** Mean IoU over the bound test set. */
    TaskMetrics evaluate() override;

    /** Scale applied to |U|^2 before comparing against masks. */
    Real intensityScale() const { return intensity_scale_; }

    /** Expected mask brightness used for auto-exposure. */
    Real maskMean() const { return mask_mean_; }

    /** Adopt previously computed calibration state (trainer shims). */
    void setCalibration(Real intensity_scale, Real mask_mean)
    {
        intensity_scale_ = intensity_scale;
        mask_mean_ = mask_mean;
    }

    /**
     * Predicted mask: detector-plane intensity auto-exposed so its mean
     * matches the expected mask brightness (camera exposure control;
     * also bridges the training-only LayerNorm scale at inference).
     */
    RealMap predictMask(const RealMap &image);

    /**
     * Mean intersection-over-union of thresholded predictions, the
     * segmentation quality metric reported for Fig. 13.
     */
    Real evaluateIou(const SegDataset &data, Real threshold = 0.5);

    /** Mean per-pixel MSE against the masks. */
    Real evaluateMse(const SegDataset &data);

    /** Re-bind (or clear) the held-out test set. */
    void setTest(const SegDataset *test) { test_ = test; }

  protected:
    SampleResult sampleStep(DonnModel &model, std::size_t index) override;

  private:
    std::unique_ptr<InMemorySegSource> own_source_; ///< legacy ctor only
    SegSource *source_;
    const SegDataset *test_;
    Real intensity_scale_ = 1.0;
    Real mask_mean_ = 0.25; ///< expected mask brightness (auto-exposure)
};

/** Multi-channel RGB classification workload (Section 5.6.1). */
class RgbTask : public Task
{
  public:
    /** Train from an in-memory dataset (borrowed; wrapped in a source). */
    RgbTask(MultiChannelDonn &model, const RgbDataset &train,
            const RgbDataset *test = nullptr);

    /** Train from any RGB source (borrowed; e.g. sharded). */
    RgbTask(MultiChannelDonn &model, RgbSource &train,
            const RgbDataset *test = nullptr);

    std::string kind() const override { return "rgb"; }
    std::size_t trainSize() const override { return source_->size(); }
    DataSource *trainStream() override { return source_; }
    bool hasTest() const override { return test_ != nullptr; }

    void calibrate() override;
    std::vector<ParamView> params() override { return model_.params(); }
    void zeroGrad() override { model_.zeroGrad(); }
    SampleResult trainSample(std::size_t index) override;

    void buildReplicas(const std::vector<uint64_t> &seeds) override;
    std::size_t replicaCount() const override { return replicas_.size(); }
    std::vector<ParamView> replicaParams(std::size_t r) override;
    void zeroReplicaGrad(std::size_t r) override;
    SampleResult trainSampleOn(std::size_t r, std::size_t index) override;
    void syncReplicas() override;

    void setTau(Real tau) override;

    /** Top-1 and top-3 accuracy over the bound test set. */
    TaskMetrics evaluate() override;

    bool save(const std::string &path) const override;

    /** Re-bind (or clear) the held-out test set. */
    void setTest(const RgbDataset *test) { test_ = test; }

    MultiChannelDonn &model() { return model_; }

  private:
    SampleResult sampleStep(MultiChannelDonn &model, std::size_t index);

    struct Replica
    {
        MultiChannelDonn model;
        Rng rng;
        std::vector<ParamView> params;

        Replica(const MultiChannelDonn &source, uint64_t seed);
    };

    MultiChannelDonn &model_;
    std::unique_ptr<InMemoryRgbSource> own_source_; ///< legacy ctor only
    RgbSource *source_;
    const RgbDataset *test_;
    std::vector<std::unique_ptr<Replica>> replicas_;
};

/** Accuracy of a model over a dataset (optionally with detector noise). */
Real evaluateAccuracy(DonnModel &model, const ClassDataset &data,
                      Real noise_frac = 0.0, Rng *rng = nullptr);

/** Accuracy and mean prediction confidence (Fig. 7). */
struct EvalResult
{
    Real accuracy = 0;
    Real confidence = 0;
};
EvalResult evaluateWithConfidence(DonnModel &model, const ClassDataset &data,
                                  Real noise_frac = 0.0, Rng *rng = nullptr);

/**
 * Top-k accuracy for a single-stack classification model (top-k existed
 * only for the RGB architecture before; Table 5 reports top-1/3/5).
 */
Real evaluateTopK(DonnModel &model, const ClassDataset &data, std::size_t k);

/** Top-1 accuracy for an RGB model. */
Real evaluateRgbAccuracy(MultiChannelDonn &model, const RgbDataset &data);

/** Top-k accuracy for an RGB model (Table 5 reports top-1/3/5). */
Real evaluateRgbTopK(MultiChannelDonn &model, const RgbDataset &data,
                     std::size_t k);

} // namespace lightridge
