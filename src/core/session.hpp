/**
 * @file
 * Unified training engine driving a polymorphic Task (lr.train).
 *
 * One Session implements the recipe formerly copy-pasted across three
 * trainers: the physics-aware calibration pass, Gumbel-softmax tau
 * annealing, the shuffled epoch loop with per-batch Adam steps, per-epoch
 * callbacks (logging / early stop / checkpointing), and the shared
 * data-parallel replica pipeline — per-worker model replicas propagate
 * disjoint slices of each batch and their gradients are merged in fixed
 * replica order before every optimizer step, so classification,
 * segmentation, and RGB training all parallelize identically.
 */
#pragma once

#include <functional>
#include <vector>

#include "core/optimizer.hpp"
#include "core/task.hpp"
#include "utils/rng.hpp"

namespace lightridge {

/** Task-polymorphic training engine. */
class Session
{
  public:
    /**
     * Per-epoch hook, invoked after evaluation with the epoch's stats.
     * Return false to stop training after the current epoch (early stop).
     */
    using Callback = std::function<bool(const EpochStats &, Session &)>;

    /**
     * @param task workload to train; must outlive the session
     * @param config hyperparameters (also forwarded to the task)
     */
    Session(Task &task, TrainConfig config);
    ~Session();

    Task &task() { return task_; }
    const TrainConfig &config() const { return config_; }

    /** Register a per-epoch callback (run in registration order). */
    void addCallback(Callback callback);

    /** Run the task's calibration pass now (fit() calls this once). */
    void calibrate();

    /** Mark calibration as already applied externally (trainer shims). */
    void markCalibrated() { calibrated_ = true; }
    bool isCalibrated() const { return calibrated_; }

    /**
     * One pass over the training set; returns loss/accuracy. Runs the
     * data-parallel batch pipeline when config.workers allows (see
     * TrainConfig::workers), otherwise the reference serial loop. With
     * config.pipeline set, replica forwards for batch t+1 overlap the
     * main thread's merge + optimizer step for batch t.
     */
    EpochStats trainEpoch();

    /**
     * Full run: calibration (once), tau annealing, epoch loop, per-epoch
     * evaluation when the task has a test set, callbacks. With
     * TrainConfig::dev_eval_every_batches set, mid-epoch dev-eval
     * snapshots (EpochStats::mid_epoch) are interleaved into the history
     * before their epoch's end-of-epoch entry.
     */
    std::vector<EpochStats> fit();

    /**
     * The engine's worker-resolution rule: 0 sizes from the global
     * thread pool, then the count is clamped by batch and training-set
     * size. Exposed so results reports record the worker count training
     * actually used (execution block) without duplicating the rule.
     */
    static std::size_t resolveWorkers(const TrainConfig &config,
                                      std::size_t train_size);

    /**
     * Seed of the misalignment draw for one batch of vaccinated
     * training: a pure function of (train seed, epoch, batch index),
     * mixed on a stream constant disjoint from the replica-seed stream.
     * Independent of worker count and schedule (serial / parallel /
     * pipelined), so the drawn error sequence is too. Exposed static
     * for the determinism tests.
     */
    static uint64_t perturbationDrawSeed(uint64_t seed, int epoch,
                                         std::size_t batch_index);

  private:
    void annealTau(int epoch);
    std::vector<uint64_t> replicaSeeds(std::size_t workers) const;
    uint64_t perturbationSeed(std::size_t batch_index) const
    {
        return perturbationDrawSeed(config_.seed, epoch_counter_,
                                    batch_index);
    }

    /** True when the mid-epoch dev-eval cadence fires after this batch. */
    bool devEvalDue(std::size_t batch_index) const;

    /**
     * Take a mid-epoch dev-eval snapshot: clear any attached
     * perturbation, evaluate, record the stats (running train loss /
     * accuracy over `seen` samples), and invoke the callbacks (their
     * return value is ignored mid-epoch — only end-of-epoch callbacks
     * stop training). Called between batches with no worker in flight.
     */
    void midEpochEval(Real loss_sum, std::size_t correct, std::size_t seen,
                      std::size_t batch_index, double seconds);

    EpochStats trainEpochSerial(const std::vector<std::size_t> &order);
    EpochStats trainEpochParallel(const std::vector<std::size_t> &order,
                                  std::size_t workers);
    EpochStats trainEpochPipelined(const std::vector<std::size_t> &order,
                                   std::size_t workers);

    Task &task_;
    TrainConfig config_;
    Adam optimizer_;
    Rng rng_;
    bool calibrated_ = false;
    int epoch_counter_ = 0;
    std::vector<Callback> callbacks_;
    std::vector<EpochStats> mid_history_; ///< current epoch's snapshots
};

/**
 * Callback factory: save the task's primary model to path after every
 * epoch whose test metric improved on the best seen so far (checkpointing
 * via DonnModel::save underneath).
 */
Session::Callback checkpointBestCallback(std::string path);

/** Callback factory: stop when train_loss fails to improve for `patience`
 *  consecutive epochs. */
Session::Callback earlyStopCallback(int patience);

} // namespace lightridge
