/**
 * @file
 * DONN system container and fluent builder (lr.models of the paper).
 *
 * A DonnModel is the sequential stack of Figure 2(a): an input encoding
 * plane, D diffractive (or codesign) layers each preceded by a free-space
 * hop, optional auxiliary layers (LayerNorm, optical skip), one final hop,
 * and a detector plane. It owns the trainable parameters and provides the
 * differentiable forward/backward passes the trainer drives.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/codesign_layer.hpp"
#include "core/detector.hpp"
#include "core/device_lut.hpp"
#include "core/diffractive_layer.hpp"
#include "core/layer.hpp"
#include "optics/laser.hpp"
#include "optics/propagator.hpp"
#include "utils/thread_pool.hpp"

namespace lightridge {

struct PerturbationRealization;

/**
 * Stable checkpoint header. Every checkpoint written by save() carries a
 * magic string and a format version at the top of the JSON document, so
 * loaders (and the serving ModelRegistry) can reject wrong or truncated
 * files with a clear error instead of failing mid-read. Headerless files
 * from older versions are still accepted as legacy checkpoints.
 */
inline constexpr const char *kCheckpointMagic = "lightridge-checkpoint";
inline constexpr int kCheckpointVersion = 1;

/** Stamp the checkpoint magic + version onto a serialized model. */
void addCheckpointHeader(Json &j);

/**
 * Validate a loaded checkpoint document's header. Accepts headerless
 * legacy documents; throws JsonError (mentioning `origin`) on a wrong
 * magic or an unsupported version.
 */
void verifyCheckpointHeader(const Json &j, const std::string &origin);

/**
 * Parse a checkpoint file into its JSON document with clear errors:
 * unreadable/truncated/non-JSON input throws JsonError prefixed with the
 * path, and the header (when present) is verified.
 */
Json loadCheckpointJson(const std::string &path);

/** Architectural parameters of a DONN system (the DSE design space). */
struct SystemSpec
{
    std::size_t size = 200;     ///< system resolution per side
    Real pixel = 36e-6;         ///< diffraction unit size [m]
    Real distance = 0.30;       ///< inter-plane distance z [m]
    Diffraction approx = Diffraction::RayleighSommerfeld;
    PropagationMethod method = PropagationMethod::TransferFunction;
    std::size_t pad_factor = 1; ///< 1 = paper's same-size spectral algorithm

    Grid grid() const { return Grid{size, pixel}; }

    Json toJson() const;
    static SystemSpec fromJson(const Json &j);
};

/** Sequential DONN system: layers + final hop + detector. */
class DonnModel
{
  public:
    DonnModel(SystemSpec spec, Laser laser);

    const SystemSpec &spec() const { return spec_; }
    const Laser &laser() const { return laser_; }

    /** Append a layer (takes ownership). */
    void addLayer(LayerPtr layer);

    /** Number of stacked layers. */
    std::size_t depth() const { return layers_.size(); }

    Layer *layer(std::size_t i) { return layers_[i].get(); }
    const Layer *layer(std::size_t i) const { return layers_[i].get(); }

    /** Configure the detector plane. */
    void setDetector(DetectorPlane detector);
    DetectorPlane &detector() { return detector_; }
    const DetectorPlane &detector() const { return detector_; }

    /** Shared propagator used for every hop (same z everywhere). */
    std::shared_ptr<const Propagator> hopPropagator() const
    {
        return propagator_;
    }

    /**
     * Attach one sampled misalignment realization across the stack (or
     * detach with nullptr): entry i of realization->layers goes to layer
     * i, final_hop perturbs the layer->detector hop. The realization is
     * externally owned and must outlive every pass made while attached;
     * it is read-only during compute, so perturbed inference may still
     * run concurrently on a shared instance. Clones start detached.
     */
    void setPerturbation(const PerturbationRealization *realization);

    /** Currently attached realization (nullptr when unperturbed). */
    const PerturbationRealization *perturbation() const
    {
        return perturb_;
    }

    /**
     * Resize a native-resolution image to the system grid and encode it
     * onto the source beam (data_to_cplex). The source profile is
     * computed once at construction and cached, so per-sample encoding
     * no longer re-evaluates the beam transcendentals.
     */
    Field encode(const RealMap &image) const;

    /** In-place encode into a reused buffer (resized at most once). */
    void encodeInto(const RealMap &image, Field &out) const;

    /** Field at the detector plane (after the final hop). */
    Field forwardField(const Field &input, bool training = false);

    /**
     * In-place forward through the stack: `u` holds the encoded input on
     * entry and the detector-plane field on return. With a warm
     * workspace the full pass performs zero heap allocations.
     */
    void forwardFieldInPlace(Field &u, bool training,
                             PropagationWorkspace &workspace);

    /** In-place thread-safe inference counterpart. */
    void inferFieldInPlace(Field &u, PropagationWorkspace &workspace) const;

    /** In-place detector logits over forwardFieldInPlace(); `u` is left
     *  holding the detector-plane field. */
    std::vector<Real> forwardLogitsInPlace(Field &u, bool training,
                                           PropagationWorkspace &workspace);

    /**
     * Const, thread-safe in-place inference logits: propagates `u`
     * through the stack and reads the detector, with no mutable model
     * state touched — the serving engine's per-request path, so one
     * shared model instance serves every worker without cloning.
     * Bitwise-identical to forwardLogitsInPlace(u, false, ws).
     */
    std::vector<Real> inferLogitsInPlace(Field &u,
                                         PropagationWorkspace &workspace)
        const;

    /**
     * In-place backprop from dL/dlogits: `g` is used as the gradient
     * carrier (its entry contents are ignored and overwritten with the
     * detector-plane gradient before the stack unwind). Must not alias
     * the detector's cached forward field.
     */
    void backwardFromLogitsInPlace(const std::vector<Real> &dlogits,
                                   Field &g, PropagationWorkspace &workspace);

    /** In-place backprop from a detector-plane Wirtinger gradient. */
    void backwardFieldInPlace(Field &g, PropagationWorkspace &workspace);

    /**
     * Thread-safe inference forward: numerically identical to
     * forwardField(input, false) but const, so independent samples can
     * run concurrently on one shared model.
     */
    Field inferField(const Field &input) const;

    /**
     * Batched inference: propagates every input through the stack, with
     * independent samples distributed across the thread pool (the paper's
     * batched emulation speedup). Output order matches input order and is
     * bitwise-identical to calling inferField() serially.
     * @param pool worker pool; nullptr uses ThreadPool::global()
     */
    std::vector<Field> forwardFieldBatch(const std::vector<Field> &inputs,
                                         ThreadPool *pool = nullptr) const;

    /** Batched detector logits over forwardFieldBatch(). */
    std::vector<std::vector<Real>>
    forwardLogitsBatch(const std::vector<Field> &inputs,
                       ThreadPool *pool = nullptr) const;

    /** Detector logits; caches activations when training. */
    std::vector<Real> forwardLogits(const Field &input,
                                    bool training = false);

    /** Argmax class for an encoded input. */
    int predict(const Field &input);

    /** Backprop from dL/dlogits through detector, final hop, and layers. */
    void backwardFromLogits(const std::vector<Real> &dlogits);

    /**
     * Backprop from a Wirtinger gradient at the detector plane (used by
     * segmentation losses and the multi-channel container).
     */
    void backwardField(const Field &grad_at_detector);

    /**
     * Deep copy sharing the (immutable) propagators: layers and detector
     * are cloned, parameters and gradients copied. Replicas train
     * independently; see Trainer for the data-parallel batch recipe.
     */
    DonnModel clone() const;

    /** All trainable parameters of all layers. */
    std::vector<ParamView> params();

    /** Zero every parameter gradient. */
    void zeroGrad();

    /** Serialize spec + laser + layers + detector. */
    Json toJson() const;

    /** Reconstruct a model (propagators rebuilt from the spec). */
    static DonnModel fromJson(const Json &j);

    /** Save/load helpers. */
    bool save(const std::string &path) const;
    static DonnModel load(const std::string &path);

  private:
    /** Shell constructor for clone(): adopts an existing propagator. */
    DonnModel(SystemSpec spec, Laser laser,
              std::shared_ptr<const Propagator> propagator);

    SystemSpec spec_;
    Laser laser_;
    std::shared_ptr<const Propagator> propagator_;
    Field source_profile_; ///< cached illumination profile of the laser
    std::vector<LayerPtr> layers_;
    DetectorPlane detector_;
    /** Attached misalignment realization (externally owned). */
    const PerturbationRealization *perturb_ = nullptr;
};

/**
 * Fluent DSL-style builder mirroring the paper's front end:
 *
 *   auto model = ModelBuilder(spec, laser)
 *                    .diffractiveLayers(5, 1.0, &rng)
 *                    .detectorGrid(10, 8)
 *                    .build();
 */
class ModelBuilder
{
  public:
    ModelBuilder(SystemSpec spec, Laser laser);

    /** Append d raw diffractive layers (lr.layers.diffractlayer_raw). */
    ModelBuilder &diffractiveLayers(std::size_t d, Real gamma = 1.0,
                                    Rng *rng = nullptr);

    /** Append d hardware-aware codesign layers (lr.layers.diffractlayer). */
    ModelBuilder &codesignLayers(std::size_t d, const DeviceLut &lut,
                                 Real tau = 1.0, Real gamma = 1.0,
                                 Rng *rng = nullptr);

    /** Append a training-only LayerNorm. */
    ModelBuilder &layerNorm();

    /** Evenly spaced square detector regions for num_classes classes. */
    ModelBuilder &detectorGrid(std::size_t num_classes,
                               std::size_t det_size);

    /** Custom detector regions. */
    ModelBuilder &detectorRegions(std::vector<DetectorRegion> regions);

    /**
     * Finalize into a model.
     * @throws std::logic_error when no detector was configured (the
     *         failure used to surface only at the first forwardLogits).
     */
    DonnModel build();

  private:
    DonnModel model_;
    bool has_detector_ = false;
};

} // namespace lightridge
