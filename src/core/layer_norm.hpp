/**
 * @file
 * Complex-field layer normalization (Section 5.6.2).
 *
 * The segmentation architecture inserts a LayerNorm before the detector
 * plane *during training only* to smooth gradient scales; inference is the
 * identity (the optical system cannot normalize). Two variants:
 *
 *  - RMS mode (default): y = x / sqrt(mean|x|^2 + eps). A pure global
 *    scale, so the inference-time (un-normalized) output differs from the
 *    training-time output only by exposure - which the detector's
 *    auto-exposure absorbs. This is the variant the segmentation stack
 *    uses.
 *  - Mean-subtracting mode: y = (x - mean(x)) / sqrt(var(x) + eps), the
 *    literal complex analogue of [Ba et al. 2016].
 */
#pragma once

#include "core/layer.hpp"

namespace lightridge {

/** Training-only complex layer normalization. */
class LayerNormLayer : public Layer
{
  public:
    explicit LayerNormLayer(Real eps = 1e-12, bool subtract_mean = false)
        : eps_(eps), subtract_mean_(subtract_mean)
    {}

    std::string kind() const override { return "layernorm"; }

    Field forward(const Field &in, bool training) override;
    Field backward(const Field &grad_out) override;
    /** Inference is the identity: the optical system cannot normalize. */
    Field infer(const Field &in) const override { return in; }
    void forwardInPlace(Field &u, bool training,
                        PropagationWorkspace &workspace) override;
    void backwardInPlace(Field &g, PropagationWorkspace &workspace) override;
    void inferInPlace(Field &, PropagationWorkspace &) const override {}
    LayerPtr clone() const override
    {
        return std::make_unique<LayerNormLayer>(*this);
    }
    Json toJson() const override;

    bool subtractsMean() const { return subtract_mean_; }

  private:
    Real eps_;
    bool subtract_mean_;
    Field cached_y_;
    Real cached_sigma_ = 1.0;
    bool active_ = false;
};

} // namespace lightridge
