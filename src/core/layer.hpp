/**
 * @file
 * Layer abstraction for differentiable DONN graphs.
 *
 * Gradients follow the Wirtinger adjoint convention: for a real loss L and
 * complex field U, the gradient field is G with dL = Re(sum conj(G) * dU).
 * Each layer caches whatever it needs during forward() and consumes/clears
 * it in backward(). Parameter gradients accumulate across a batch until
 * zeroGrad().
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "optics/workspace.hpp"
#include "tensor/field.hpp"
#include "utils/json.hpp"
#include "utils/rng.hpp"
#include "utils/types.hpp"

namespace lightridge {

struct LayerPerturbation;

/** Mutable view of one trainable parameter buffer and its gradient. */
struct ParamView
{
    std::string name;
    std::vector<Real> *value = nullptr;
    std::vector<Real> *grad = nullptr;
};

/** Base class of all differentiable DONN building blocks. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Stable type tag used in serialization. */
    virtual std::string kind() const = 0;

    /**
     * Propagate a field through the layer.
     * @param in input wavefield
     * @param training true during training (enables activation caching,
     *        Gumbel sampling, LayerNorm); false for pure inference
     */
    virtual Field forward(const Field &in, bool training) = 0;

    /**
     * Backpropagate a Wirtinger gradient through the layer, accumulating
     * parameter gradients. Must follow a forward(..., true) call.
     */
    virtual Field backward(const Field &grad_out) = 0;

    /**
     * Pure-inference forward pass. Implementations must not mutate any
     * layer state, so one shared layer instance can propagate independent
     * samples concurrently (the batched emulation path). Numerically
     * identical to forward(in, false).
     */
    virtual Field infer(const Field &in) const = 0;

    /**
     * In-place forward: `u` holds the input on entry and the layer output
     * on return, with propagation scratch leased from the workspace so
     * steady-state execution allocates nothing. Bitwise-identical to
     * forward(). The default delegates to the by-value path; the optical
     * layers override it with true zero-allocation pipelines.
     */
    virtual void
    forwardInPlace(Field &u, bool training, PropagationWorkspace &workspace)
    {
        (void)workspace;
        u = forward(u, training);
    }

    /** In-place backward: `g` holds dL/d(out) on entry, dL/d(in) on
     *  return. Bitwise-identical to backward(). */
    virtual void
    backwardInPlace(Field &g, PropagationWorkspace &workspace)
    {
        (void)workspace;
        g = backward(g);
    }

    /** In-place thread-safe inference; bitwise-identical to infer(). */
    virtual void
    inferInPlace(Field &u, PropagationWorkspace &workspace) const
    {
        (void)workspace;
        u = infer(u);
    }

    /**
     * Attach one sampled misalignment realization (or detach with
     * nullptr). The pointed-to realization must outlive every
     * forward/backward/infer call made while attached; it is read-only
     * during compute, so several threads may evaluate one perturbed
     * layer concurrently. Non-optical layers ignore the call. Clones
     * start detached.
     */
    virtual void
    setPerturbation(const LayerPerturbation *perturbation)
    {
        (void)perturbation;
    }

    /**
     * Deep copy of the layer: parameters and gradients are copied,
     * propagators (immutable) are shared. Used to build per-worker model
     * replicas for data-parallel training.
     */
    virtual std::unique_ptr<Layer> clone() const = 0;

    /** Trainable parameter views (empty for stateless layers). */
    virtual std::vector<ParamView> params() { return {}; }

    /** Reset all parameter gradients to zero. */
    void
    zeroGrad()
    {
        for (ParamView p : params())
            if (p.grad)
                std::fill(p.grad->begin(), p.grad->end(), Real(0));
    }

    /** Serialize structure + weights. */
    virtual Json toJson() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace lightridge
